package streamcard_test

import (
	"fmt"

	streamcard "repro"
)

// The minimal loop: observe edges, query anytime.
func ExampleNewFreeRS() {
	est := streamcard.NewFreeRS(1 << 20)
	for i := 0; i < 1000; i++ {
		est.Observe(42, uint64(i)) // user 42 connects to 1000 distinct items
		est.Observe(42, uint64(i)) // duplicates are free
		est.Observe(7, 99)         // user 7 connects to one item, many times
	}
	fmt.Printf("user42≈%.0f user7≈%.0f\n", est.Estimate(42), est.Estimate(7))
	// Output: user42≈1001 user7≈1
}

// FreeBS: identical API, bit-sharing internals.
func ExampleNewFreeBS() {
	est := streamcard.NewFreeBS(1 << 20)
	for i := 0; i < 500; i++ {
		est.Observe(streamcard.Key("10.0.0.1"), uint64(i))
	}
	fmt.Printf("scanner≈%.0f\n", est.Estimate(streamcard.Key("10.0.0.1")))
	// Output: scanner≈500
}

// Find the heaviest users right now, mid-stream.
func ExampleTopK() {
	est := streamcard.NewFreeRS(1 << 20)
	for u := uint64(1); u <= 5; u++ {
		for i := uint64(0); i < u*1000; i++ {
			est.Observe(u, i|u<<40)
		}
	}
	for _, s := range streamcard.TopK(est, 2) {
		fmt.Printf("user %d ≈ %.0fk\n", s.User, s.Estimate/1000)
	}
	// Output:
	// user 5 ≈ 5k
	// user 4 ≈ 4k
}

// Detect super spreaders on the fly (§V-F of the paper).
func ExampleNewSpreaderDetector() {
	est := streamcard.NewFreeBS(1 << 20)
	for i := 0; i < 10000; i++ {
		est.Observe(1, uint64(i))    // the spreader: 10k distinct items
		est.Observe(2, uint64(i%10)) // normal user
	}
	det := streamcard.NewSpreaderDetector(est, 0.5)
	for _, s := range det.Detect() {
		fmt.Printf("super spreader: user %d\n", s.User)
	}
	// Output: super spreader: user 1
}

// Estimate over the recent past only, by rotating epochs.
func ExampleNewWindowed() {
	w := streamcard.NewWindowed(func() streamcard.Estimator {
		return streamcard.NewFreeRS(1 << 18)
	})
	for i := 0; i < 1000; i++ {
		w.Observe(9, uint64(i))
	}
	w.Rotate()
	w.Rotate() // user 9's activity is now two epochs old
	fmt.Printf("after aging out: %.0f\n", w.Estimate(9))
	// Output: after aging out: 0
}
