// Quickstart: estimate per-user cardinalities over a stream of user-item
// edges with FreeRS, the paper's parameter-free register-sharing estimator.
//
//	go run ./examples/quickstart
//
// The program simulates a web-access log — hosts visiting URLs, with many
// repeat visits — and shows that (1) estimates are available at any moment,
// (2) duplicates are not double counted, and (3) one shared sketch serves
// every host with no per-host tuning.
package main

import (
	"fmt"

	streamcard "repro"
	"repro/internal/hashing"
)

func main() {
	// One million bits (~125 KB) of shared sketch memory is the ONLY
	// parameter. There is no per-user sketch size to guess in advance.
	est := streamcard.NewFreeRS(1 << 20)

	rng := hashing.NewRNG(42)

	// Simulate 3 hosts with very different behaviour:
	//   - host "scanner" touches 50,000 distinct URLs (an anomaly),
	//   - host "crawler" touches 2,000 distinct URLs,
	//   - host "laptop" revisits the same 25 URLs over and over.
	scanner, crawler, laptop := streamcard.Key("scanner"), streamcard.Key("crawler"), streamcard.Key("laptop")

	for i := 0; i < 200000; i++ {
		est.Observe(scanner, uint64(i%50000))
		est.Observe(crawler, uint64(rng.Intn(2000)))
		est.Observe(laptop, uint64(rng.Intn(25)))

		// Anytime property: query mid-stream whenever you like.
		if i == 1000 {
			fmt.Printf("after %6d arrivals: scanner≈%.0f crawler≈%.0f laptop≈%.0f\n",
				3*(i+1), est.Estimate(scanner), est.Estimate(crawler), est.Estimate(laptop))
		}
	}

	fmt.Printf("after %6d arrivals: scanner≈%.0f crawler≈%.0f laptop≈%.0f\n",
		600000, est.Estimate(scanner), est.Estimate(crawler), est.Estimate(laptop))
	fmt.Printf("true cardinalities:       scanner=50000 crawler≈2000 laptop=25\n")
	fmt.Printf("total distinct pairs ≈ %.0f using %d KB of sketch memory\n",
		est.TotalDistinct(), est.MemoryBits()/8/1024)
}
