// Anomaly detection: the paper's motivating application (§I, §V-F).
//
//	go run ./examples/anomaly
//
// A network monitor watches connection records (source IP -> destination
// IP) and must flag super spreaders — sources contacting an outsized number
// of distinct destinations, the signature of scanners and worm propagation —
// while the traffic is flowing, not after the fact.
//
// The example replays a synthetic trace shaped like the paper's CAIDA
// sanjose capture, injects two scanners that ramp up mid-trace, and shows
// FreeBS catching them within moments of their ramp-up, using its anytime
// estimates and its O(1)-per-packet updates.
package main

import (
	"fmt"

	streamcard "repro"
	"repro/internal/datagen"
)

func main() {
	// Background traffic: the sanjose analogue at 1% scale (~84k sources,
	// ~230k distinct flows).
	cfg, err := datagen.PaperConfig("sanjose", 0.01, 7)
	if err != nil {
		panic(err)
	}
	trace := datagen.Generate(cfg)
	edges := trace.Edges

	est := streamcard.NewFreeBS(5_000_000) // the paper's 5e8 bits × 1% scale
	det := streamcard.NewSpreaderDetector(est, 0.005)

	scannerA := streamcard.Key("203.0.113.7")
	scannerB := streamcard.Key("198.51.100.99")

	const reportEvery = 50000
	for t, e := range edges {
		est.Observe(e.User, e.Item)

		// Two scanners wake up at 40% of the trace and sweep addresses.
		if t > 2*len(edges)/5 {
			est.Observe(scannerA, uint64(t)) // fresh destination every packet
			if t%2 == 0 {
				est.Observe(scannerB, uint64(t/2)|1<<40)
			}
		}

		if (t+1)%reportEvery == 0 {
			found := det.Detect()
			fmt.Printf("t=%7d  threshold=%7.1f  flagged=%d", t+1, det.Threshold(), len(found))
			for i, s := range found {
				if i == 3 {
					fmt.Printf(" ...")
					break
				}
				label := "background"
				switch s.User {
				case scannerA:
					label = "SCANNER-A"
				case scannerB:
					label = "SCANNER-B"
				}
				fmt.Printf("  [%s est≈%.0f]", label, s.Estimate)
			}
			fmt.Println()
		}
	}

	fmt.Printf("\nfinal estimates: scanner-A≈%.0f scanner-B≈%.0f (true: %d and %d)\n",
		est.Estimate(scannerA), est.Estimate(scannerB),
		len(edges)-2*len(edges)/5-1, (len(edges)-2*len(edges)/5)/2)
}
