// Compare: all six methods side by side on one stream under equal memory —
// a miniature of the paper's §V-E accuracy evaluation that you can read in
// one screen of output.
//
//	go run ./examples/compare
//
// The program replays the flickr analogue and prints, for a sample of users
// spanning small to large cardinalities, every method's estimate next to the
// truth, plus each method's average relative error.
package main

import (
	"fmt"
	"sort"

	streamcard "repro"
	"repro/internal/datagen"
	"repro/internal/exact"
	"repro/internal/metrics"
)

func main() {
	cfg, err := datagen.PaperConfig("flickr", 0.005, 11)
	if err != nil {
		panic(err)
	}
	trace := datagen.Generate(cfg)

	// §V-B memory accounting: M bits for everyone.
	const M = 2_500_000
	numUsers := trace.NumUsers()
	ests := []streamcard.Estimator{
		streamcard.NewFreeBS(M),
		streamcard.NewFreeRS(M),
		streamcard.NewCSE(M, 1024),
		streamcard.NewVHLL(M, 1024),
		streamcard.NewPerUserLPC(max(1, M/numUsers)),
		streamcard.NewPerUserHLLPP(max(1, M/(6*numUsers))),
	}

	truth := exact.NewTracker()
	for _, e := range trace.Edges {
		truth.Observe(e.User, e.Item)
		for _, est := range ests {
			est.Observe(e.User, e.Item)
		}
	}

	// Sample users at distinct cardinality magnitudes.
	byCard := make(map[int]uint64)
	truth.Users(func(u uint64, card int) {
		if _, ok := byCard[magnitude(card)]; !ok {
			byCard[magnitude(card)] = u
		}
	})
	mags := make([]int, 0, len(byCard))
	for m := range byCard {
		mags = append(mags, m)
	}
	sort.Ints(mags)

	fmt.Printf("%-8s", "true")
	for _, est := range ests {
		fmt.Printf("  %8s", est.Name())
	}
	fmt.Println()
	for _, mg := range mags {
		u := byCard[mg]
		fmt.Printf("%-8d", truth.Cardinality(u))
		for _, est := range ests {
			fmt.Printf("  %8.0f", est.Estimate(u))
		}
		fmt.Println()
	}

	fmt.Println("\naverage relative error over all users:")
	for _, est := range ests {
		var pairs []metrics.Pair
		truth.Users(func(u uint64, card int) {
			pairs = append(pairs, metrics.Pair{Actual: card, Estimate: est.Estimate(u)})
		})
		fmt.Printf("  %-8s %.4f\n", est.Name(), metrics.AvgRelativeError(pairs))
	}
}

// magnitude buckets a cardinality by order of magnitude.
func magnitude(n int) int {
	m := 0
	for n >= 10 {
		n /= 10
		m++
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
