// Checkpoint: persist a running monitor's full estimator state and resume
// after a "crash" in bit-identical lockstep — the operational requirement
// for deploying an anytime estimator on a router or collector that must
// survive restarts without losing its view of the stream.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"os"
	"path/filepath"

	streamcard "repro"
	"repro/internal/atomicfile"
	"repro/internal/hashing"
)

func main() {
	est := streamcard.NewFreeRS(1 << 20)
	rng := hashing.NewRNG(99)

	// Phase 1: a morning of traffic.
	feed(est, rng, 100000)
	fmt.Printf("before checkpoint: users=%d total≈%.0f\n", est.NumUsers(), est.TotalDistinct())

	// Checkpoint to disk.
	data, err := est.MarshalBinary()
	if err != nil {
		panic(err)
	}
	// Atomic write (temp file + fsync + rename): a crash mid-checkpoint must
	// leave the previous complete checkpoint in place, never a torn prefix.
	path := filepath.Join(os.TempDir(), "monitor.ckpt")
	if err := atomicfile.WriteFile(path, data, 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("checkpointed %d KB to %s\n", len(data)/1024, path)

	// "Crash" and restore into a fresh process-equivalent.
	raw, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	restored, err := streamcard.RestoreFreeRS(raw) // sizing comes from the payload
	if err != nil {
		panic(err)
	}

	// Phase 2: the afternoon's traffic hits BOTH instances; they must stay
	// in exact lockstep because the restore is bit-identical.
	rng2a, rng2b := hashing.NewRNG(7), hashing.NewRNG(7)
	feed(est, rng2a, 50000)
	feed(restored, rng2b, 50000)

	fmt.Printf("original:  users=%d total≈%.2f\n", est.NumUsers(), est.TotalDistinct())
	fmt.Printf("restored:  users=%d total≈%.2f\n", restored.NumUsers(), restored.TotalDistinct())
	if est.TotalDistinct() == restored.TotalDistinct() && est.NumUsers() == restored.NumUsers() {
		fmt.Println("lockstep verified: restored monitor is indistinguishable")
	} else {
		fmt.Println("MISMATCH — this should never happen")
	}
	_ = os.Remove(path)
}

func feed(est *streamcard.FreeRS, rng *hashing.RNG, n int) {
	for i := 0; i < n; i++ {
		est.Observe(uint64(rng.Intn(2000)), rng.Uint64()%50000)
	}
}
