// Sliding window: estimating cardinalities over the recent past with a
// k-generation window — the paper's "over time" promise turned into "over
// the last window", so a scanner that went quiet stops being flagged once
// its traffic ages out.
//
//	go run ./examples/slidingwindow
//
// A k=4 window rotates every epoch of traffic. A port scanner is active in
// epochs 0–1 and then goes silent; steady background traffic continues
// throughout. The example prints the scanner's windowed estimate and the
// window's top user after every epoch: the scanner dominates while active,
// persists for the k−1 epochs the window still covers, then vanishes —
// without any per-flow state or deletion support in the sketch.
package main

import (
	"fmt"

	streamcard "repro"
	"repro/internal/hashing"
)

const (
	scanner   = uint64(666)
	epochLen  = 60000 // edges per epoch
	numEpochs = 8
)

func main() {
	w := streamcard.NewWindowed(func() streamcard.Estimator {
		return streamcard.NewFreeRS(1 << 21)
	}, streamcard.WithGenerations(4), streamcard.WithRotateEveryEdges(epochLen))

	rng := hashing.NewRNG(7)
	fmt.Printf("%-6s %-7s %-12s %-14s %s\n", "epoch", "live", "scanner-est", "window-total", "window top user")
	for epoch := 0; epoch < numEpochs; epoch++ {
		batch := make([]streamcard.Edge, 0, epochLen)
		for i := 0; i < epochLen; i++ {
			if epoch < 2 && i%4 == 0 {
				// The scanner probes thousands of distinct targets.
				batch = append(batch, streamcard.Edge{User: scanner, Item: rng.Uint64()})
				continue
			}
			// Background: many users, small cardinalities, heavy repetition.
			u := uint64(rng.Intn(3000) + 1)
			batch = append(batch, streamcard.Edge{User: u, Item: uint64(rng.Intn(40))})
		}
		// One batch per epoch: the rotation policy fires inside ObserveBatch
		// when the epoch's edge budget is reached — no manual Rotate calls.
		w.ObserveBatch(batch)

		top := streamcard.TopK(w, 1)[0]
		fmt.Printf("%-6d %-7d %-12.0f %-14.0f user %d (est %.0f)\n",
			epoch, w.LiveGenerations(), w.Estimate(scanner), w.TotalDistinct(), top.User, top.Estimate)
	}
	fmt.Printf("\nthe scanner went quiet after epoch 1; its traffic left the 4-generation window in epoch 4\n")
	fmt.Printf("final scanner estimate: %.0f (background noise only — no deletion support needed)\n", w.Estimate(scanner))
}
