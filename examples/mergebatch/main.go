// Command mergebatch demonstrates the two scale-out primitives: batched
// ingestion (ObserveBatch through the concurrency-safe Sharded layer) and
// sketch merging (independent per-node FreeRS sketches combined into one
// union reading, the multi-node aggregation pattern).
package main

import (
	"errors"
	"fmt"

	streamcard "repro"
)

func main() {
	// --- Batched ingestion through the sharded layer ---
	s := streamcard.NewSharded(8, func(i int) streamcard.Estimator {
		return streamcard.NewFreeRS(1<<20, streamcard.WithSeed(uint64(i)+1))
	})
	batch := make([]streamcard.Edge, 0, 4096)
	for u := uint64(1); u <= 32; u++ {
		for d := 0; d < 128; d++ { // bursty: each user's edges arrive together
			batch = append(batch, streamcard.Edge{User: u, Item: uint64(d)})
			if len(batch) == cap(batch) {
				s.ObserveBatch(batch)
				batch = batch[:0]
			}
		}
	}
	s.ObserveBatch(batch) // tail
	fmt.Printf("sharded:  user 7 ≈ %.0f (true 128), total ≈ %.0f (true %d)\n",
		s.Estimate(7), s.TotalDistinct(), 32*128)

	// --- Merging independent per-node sketches ---
	// Two monitoring points watch overlapping traffic; same memory and seed
	// make their sketches mergeable.
	nodeA := streamcard.NewFreeRS(1<<20, streamcard.WithSeed(42))
	nodeB := streamcard.NewFreeRS(1<<20, streamcard.WithSeed(42))
	edgesA := make([]streamcard.Edge, 0, 3000)
	edgesB := make([]streamcard.Edge, 0, 3000)
	for d := uint64(0); d < 3000; d++ {
		if d < 2000 {
			edgesA = append(edgesA, streamcard.Edge{User: 99, Item: d}) // items 0..1999
		}
		if d >= 1000 {
			edgesB = append(edgesB, streamcard.Edge{User: 99, Item: d}) // items 1000..2999
		}
	}
	nodeA.ObserveBatch(edgesA)
	nodeB.ObserveBatch(edgesB)

	combined := nodeA.Clone() // non-destructive: nodeA keeps serving
	if err := combined.Merge(nodeB); err != nil {
		panic(err)
	}
	fmt.Printf("merge:    A ≈ %.0f (true 2000), B ≈ %.0f (true 2000), A∪B ≈ %.0f (true 3000)\n",
		nodeA.Estimate(99), nodeB.Estimate(99), combined.Estimate(99))
	fmt.Printf("          union total ≈ %.0f — overlap deduplicated, not 4000\n",
		combined.TotalDistinct())

	// Sketches built with different parameters refuse to merge.
	foreign := streamcard.NewFreeRS(1<<20, streamcard.WithSeed(7))
	if err := combined.Merge(foreign); errors.Is(err, streamcard.ErrIncompatible) {
		fmt.Printf("merge:    mismatched seed rejected: %v\n", err)
	}
}
