// Time series: tracking selected users' cardinalities OVER TIME — the
// "anytime estimation" capability that separates FreeBS/FreeRS from the
// batch-oriented CSE/vHLL (§I, Challenge 2).
//
//	go run ./examples/timeseries
//
// The example follows three users through a social-graph stream (the
// livejournal analogue) and prints each one's estimated vs true cardinality
// at 10 checkpoints, demonstrating that the running estimates track the
// truth throughout the stream, not just at the end.
package main

import (
	"fmt"

	streamcard "repro"
	"repro/internal/datagen"
	"repro/internal/exact"
)

func main() {
	cfg, err := datagen.PaperConfig("livejournal", 0.005, 3)
	if err != nil {
		panic(err)
	}
	trace := datagen.Generate(cfg)

	// Pick the three users with the largest final cardinality so the time
	// series is interesting.
	top := topUsers(trace.Cards, 3)

	est := streamcard.NewFreeRS(2_000_000)
	truth := exact.NewTracker()

	edges := trace.Edges
	const checkpoints = 10
	fmt.Printf("%-10s", "t")
	for _, u := range top {
		fmt.Printf("  user%-7d est/true", u)
	}
	fmt.Println()

	for i, e := range edges {
		est.Observe(e.User, e.Item)
		truth.Observe(e.User, e.Item)
		if (i+1)%(len(edges)/checkpoints) == 0 {
			fmt.Printf("%-10d", i+1)
			for _, u := range top {
				fmt.Printf("  %9.0f/%-8d", est.Estimate(uint64(u)), truth.Cardinality(uint64(u)))
			}
			fmt.Println()
		}
	}
}

// topUsers returns the indices of the k largest cardinalities.
func topUsers(cards []int, k int) []int {
	out := make([]int, 0, k)
	for range make([]struct{}, k) {
		best, bestCard := -1, -1
		for u, c := range cards {
			if c > bestCard && !contains(out, u) {
				best, bestCard = u, c
			}
		}
		out = append(out, best)
	}
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
