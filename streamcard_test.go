package streamcard

import (
	"math"
	"testing"

	"repro/internal/hashing"
)

// allEstimators builds one of each method at a uniform memory budget.
func allEstimators(tb testing.TB) []Estimator {
	tb.Helper()
	const M = 1 << 20
	return []Estimator{
		NewFreeBS(M),
		NewFreeRS(M),
		NewCSE(M, 512),
		NewVHLL(M, 512),
		NewPerUserLPC(1024),
		NewPerUserHLLPP(128),
	}
}

func TestAllEstimatorsBasicAccuracy(t *testing.T) {
	for _, est := range allEstimators(t) {
		const n = 2000
		for i := 0; i < n; i++ {
			est.Observe(1, uint64(i))
			est.Observe(2, uint64(i%7)) // small user, lots of duplicates
		}
		e1 := est.Estimate(1)
		if math.Abs(e1-n) > 0.35*n {
			t.Fatalf("%s: estimate %v for n=%d", est.Name(), e1, n)
		}
		e2 := est.Estimate(2)
		if e2 < 0 || e2 > 60 {
			t.Fatalf("%s: estimate %v for n=7", est.Name(), e2)
		}
		// Unseen users: exactly 0 for per-user sketches and FreeBS/FreeRS
		// (no bit/register ever credited); the virtual-sketch methods CSE
		// and vHLL may report small positive noise because an unseen user's
		// virtual sketch still samples shared (polluted) cells.
		unseen := est.Estimate(999)
		switch est.Name() {
		case "CSE", "vHLL":
			if unseen < 0 || unseen > 100 {
				t.Fatalf("%s: unseen user estimate %v outside noise range", est.Name(), unseen)
			}
		default:
			if unseen != 0 {
				t.Fatalf("%s: unseen user estimate %v, want exactly 0", est.Name(), unseen)
			}
		}
		if est.MemoryBits() <= 0 {
			t.Fatalf("%s: memory accounting broken", est.Name())
		}
	}
}

func TestTotalDistinctAllMethods(t *testing.T) {
	for _, est := range allEstimators(t) {
		for u := uint64(0); u < 50; u++ {
			for i := 0; i < 100; i++ {
				est.Observe(u, uint64(i)+u*1000)
			}
		}
		got := est.TotalDistinct()
		if math.Abs(got-5000) > 0.3*5000 {
			t.Fatalf("%s: total %v, want ~5000", est.Name(), got)
		}
	}
}

func TestNamesMatchPaper(t *testing.T) {
	want := []string{"FreeBS", "FreeRS", "CSE", "vHLL", "LPC", "HLL++"}
	for i, est := range allEstimators(t) {
		if est.Name() != want[i] {
			t.Fatalf("estimator %d name %q, want %q", i, est.Name(), want[i])
		}
	}
}

func TestKeyStringHashing(t *testing.T) {
	if Key("10.0.0.1") == Key("10.0.0.2") {
		t.Fatal("distinct strings must hash differently")
	}
	if Key("example.com") != Key("example.com") {
		t.Fatal("Key must be deterministic")
	}
	est := NewFreeBS(1 << 16)
	for i := 0; i < 100; i++ {
		est.Observe(Key("host-a"), Key("url-"+string(rune('a'+i%26))))
	}
	if est.Estimate(Key("host-a")) < 10 {
		t.Fatal("string-keyed observation failed")
	}
}

func TestWithSeedReplicasAndIndependence(t *testing.T) {
	a := NewFreeRS(1<<16, WithSeed(5))
	b := NewFreeRS(1<<16, WithSeed(5))
	c := NewFreeRS(1<<16, WithSeed(6))
	for i := 0; i < 3000; i++ {
		a.Observe(1, uint64(i))
		b.Observe(1, uint64(i))
		c.Observe(1, uint64(i))
	}
	if a.Estimate(1) != b.Estimate(1) {
		t.Fatal("equal seeds must be exact replicas")
	}
	if a.Estimate(1) == c.Estimate(1) {
		t.Fatal("different seeds should differ (w.h.p.)")
	}
}

func TestAnytimeUsersIteration(t *testing.T) {
	for _, est := range []AnytimeEstimator{NewFreeBS(1 << 16), NewFreeRS(1 << 16)} {
		for u := uint64(0); u < 10; u++ {
			est.Observe(u, 1)
			est.Observe(u, 2)
		}
		if est.NumUsers() != 10 {
			t.Fatalf("%s: NumUsers = %d", est.Name(), est.NumUsers())
		}
		sum := 0.0
		est.Users(func(_ uint64, e float64) { sum += e })
		if math.Abs(sum-est.TotalDistinct()) > 0.25*sum {
			t.Fatalf("%s: user sum %v vs total %v", est.Name(), sum, est.TotalDistinct())
		}
	}
}

func TestAnytimeEstimatesEvolve(t *testing.T) {
	// The anytime property: estimates must be queryable and sane mid-stream,
	// not only at the end.
	est := NewFreeRS(1 << 18)
	for i := 0; i < 10000; i++ {
		est.Observe(7, uint64(i))
		if i == 99 || i == 999 || i == 9999 {
			got := est.Estimate(7)
			want := float64(i + 1)
			if math.Abs(got-want) > 0.2*want+3 {
				t.Fatalf("at t=%d: estimate %v, want ~%v", i+1, got, want)
			}
		}
	}
}

func TestSpreaderDetectorEndToEnd(t *testing.T) {
	est := NewFreeRS(1 << 18)
	rng := hashing.NewRNG(3)
	for i := 0; i < 30000; i++ {
		est.Observe(uint64(rng.Intn(300)), rng.Uint64()%500)
		est.Observe(7777, uint64(i))
	}
	det := NewSpreaderDetector(est, 0.05)
	if det.Threshold() <= 0 {
		t.Fatal("threshold not positive")
	}
	found := det.Detect()
	if len(found) == 0 || found[0].User != 7777 {
		t.Fatalf("heavy user not top detection: %+v", found)
	}
}

func TestFreeBSSaturatedAccessor(t *testing.T) {
	f := NewFreeBS(64)
	if f.Saturated() {
		t.Fatal("fresh array saturated")
	}
	for i := 0; i < 5000; i++ {
		f.Observe(1, uint64(i))
	}
	if !f.Saturated() {
		t.Fatal("tiny array should saturate")
	}
}

func TestDuplicateInsensitivityAllMethods(t *testing.T) {
	for _, est := range allEstimators(t) {
		for i := 0; i < 500; i++ {
			est.Observe(3, uint64(i))
		}
		before := est.Estimate(3)
		for rep := 0; rep < 3; rep++ {
			for i := 0; i < 500; i++ {
				est.Observe(3, uint64(i))
			}
		}
		if est.Estimate(3) != before {
			t.Fatalf("%s: duplicates changed the estimate", est.Name())
		}
	}
}

// TestRegisterFloorPanics pins the unified register-count floor: both
// register-sharing constructors reject memory budgets below two full
// registers (see registerFloor) instead of silently clamping, and budgets at
// the floor work.
func TestRegisterFloorPanics(t *testing.T) {
	mustPanic(t, func() { NewFreeRS(0) })
	mustPanic(t, func() { NewFreeRS(4) })  // less than one 5-bit register
	mustPanic(t, func() { NewFreeRS(9) })  // one register: below the floor of 2
	mustPanic(t, func() { NewVHLL(9, 1) }) // same floor for vHLL
	if got := NewFreeRS(10).MemoryBits(); got != 10 {
		t.Fatalf("floor-sized FreeRS has %d bits", got)
	}
	NewVHLL(20, 2) // 4 registers, m=2 < M: smallest legal vHLL here
}
