package streamcard

// Concurrency hardening for Sharded, the layer whose whole job is to make
// the sketches safe under line-rate multi-threaded ingestion. Two layers of
// assurance:
//
//   - Determinism: a user's edges all land in one shard, so when each worker
//     feeds a shard-pure sub-stream (the deployment shape ShardIndex exists
//     for), per-shard edge order is deterministic regardless of scheduling —
//     and every per-user estimate must be BIT-IDENTICAL to a sequentially
//     fed twin instance. This catches lost updates, torn map writes, and any
//     batch-vs-edge divergence, not just data races.
//
//   - Chaos: workers hammer one instance with overlapping users through both
//     Observe and ObserveBatch, concurrently with readers. This asserts
//     nothing about values; under `go test -race` it is a pure detector for
//     unsynchronized access (queries included, which take the same locks).
//
// Run with -race in CI; the determinism half is also meaningful without it.

import (
	"sync"
	"testing"

	"repro/internal/hashing"
)

const concWorkers = 8 // goroutines = shards in the determinism test

func buildSharded(kind string) *Sharded {
	return NewSharded(concWorkers, func(i int) Estimator {
		seed := WithSeed(uint64(i)*1000 + 7)
		if kind == "FreeBS" {
			return NewFreeBS(1<<16, seed)
		}
		return NewFreeRS(1<<16, seed)
	})
}

// shardPureStreams partitions a deterministic edge stream into one
// sub-stream per shard, preserving relative order.
func shardPureStreams(s *Sharded, nEdges int, seed uint64) [][]Edge {
	rng := hashing.NewRNG(seed)
	streams := make([][]Edge, s.NumShards())
	for total := 0; total < nEdges; {
		u := uint64(rng.Intn(5000) + 1)
		run := rng.Intn(12) + 1
		t := s.ShardIndex(u)
		for r := 0; r < run; r++ {
			streams[t] = append(streams[t], Edge{User: u, Item: rng.Uint64()})
			total++
		}
	}
	return streams
}

func TestShardedConcurrentBitIdentical(t *testing.T) {
	for _, kind := range []string{"FreeBS", "FreeRS"} {
		t.Run(kind, func(t *testing.T) {
			conc := buildSharded(kind)
			ref := buildSharded(kind)
			streams := shardPureStreams(conc, 60000, 99)

			// Reference: same per-shard streams, fed sequentially per edge.
			users := map[uint64]struct{}{}
			for _, st := range streams {
				for _, e := range st {
					ref.Observe(e.User, e.Item)
					users[e.User] = struct{}{}
				}
			}

			// Concurrent: one worker per shard-pure stream, first half per
			// edge, second half in odd-sized batches, racing across shards.
			var wg sync.WaitGroup
			for w := 0; w < concWorkers; w++ {
				wg.Add(1)
				go func(st []Edge) {
					defer wg.Done()
					half := len(st) / 2
					for _, e := range st[:half] {
						conc.Observe(e.User, e.Item)
					}
					for i := half; i < len(st); i += 41 {
						end := i + 41
						if end > len(st) {
							end = len(st)
						}
						conc.ObserveBatch(st[i:end])
					}
				}(streams[w])
			}
			wg.Wait()

			for u := range users {
				if got, want := conc.Estimate(u), ref.Estimate(u); got != want {
					t.Fatalf("user %d: concurrent estimate %v != sequential %v (must be bit-identical)", u, got, want)
				}
			}
			if got, want := conc.TotalDistinct(), ref.TotalDistinct(); got != want {
				t.Fatalf("TotalDistinct: concurrent %v != sequential %v", got, want)
			}
		})
	}
}

// TestShardedWindowedConcurrentBitIdentical extends the determinism contract
// to the time layer: a Sharded(Windowed(FreeRS)) fed shard-pure streams from
// one goroutine per shard, with Sharded.Rotate issued at barriers between
// feeding phases, must produce BIT-IDENTICAL per-user estimates to a
// sequential twin rotated at the same stream positions — rotation fans out
// under the same shard locks as ingestion, so no batch can tear across an
// epoch boundary.
func TestShardedWindowedConcurrentBitIdentical(t *testing.T) {
	mk := func() *Sharded {
		return NewSharded(concWorkers, func(i int) Estimator {
			return NewWindowed(func() Estimator {
				return NewFreeRS(1<<16, WithSeed(uint64(i)*1000+7))
			}, WithGenerations(3))
		})
	}
	conc, ref := mk(), mk()
	streams := shardPureStreams(conc, 60000, 42)
	const phases = 4 // a rotation between consecutive phases

	// Reference: phase by phase, each shard's slice fed sequentially, then
	// one rotation.
	users := map[uint64]struct{}{}
	for p := 0; p < phases; p++ {
		for _, st := range streams {
			lo, hi := len(st)*p/phases, len(st)*(p+1)/phases
			for _, e := range st[lo:hi] {
				ref.Observe(e.User, e.Item)
				users[e.User] = struct{}{}
			}
		}
		if p < phases-1 {
			ref.Rotate()
		}
	}

	// Concurrent: within each phase one worker per shard-pure stream races
	// across shards, mixing per-edge and batched feeding; the rotation is
	// issued between phases, at the same stream positions as the reference.
	for p := 0; p < phases; p++ {
		var wg sync.WaitGroup
		for w := 0; w < concWorkers; w++ {
			wg.Add(1)
			go func(st []Edge) {
				defer wg.Done()
				lo, hi := len(st)*p/phases, len(st)*(p+1)/phases
				seg := st[lo:hi]
				half := len(seg) / 2
				for _, e := range seg[:half] {
					conc.Observe(e.User, e.Item)
				}
				for i := half; i < len(seg); i += 37 {
					end := i + 37
					if end > len(seg) {
						end = len(seg)
					}
					conc.ObserveBatch(seg[i:end])
				}
			}(streams[w])
		}
		wg.Wait()
		if p < phases-1 {
			conc.Rotate()
		}
	}

	for u := range users {
		if got, want := conc.Estimate(u), ref.Estimate(u); got != want {
			t.Fatalf("user %d: concurrent windowed estimate %v != sequential %v", u, got, want)
		}
	}
	if got, want := conc.TotalDistinct(), ref.TotalDistinct(); got != want {
		t.Fatalf("TotalDistinct: concurrent %v != sequential %v", got, want)
	}
}

// TestShardedWindowedRotateChaos races Sharded.Rotate against concurrent
// Observe/ObserveBatch/queries from every worker — the timer-driven
// deployment shape. It asserts only liveness and sane totals; under
// `go test -race` it is the detector for rotation tearing a batch.
func TestShardedWindowedRotateChaos(t *testing.T) {
	s := NewSharded(4, func(i int) Estimator {
		return NewWindowed(func() Estimator {
			return NewFreeRS(1<<14, WithSeed(uint64(i)+1))
		}, WithGenerations(3), WithRotateEveryEdges(5000))
	})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := hashing.NewRNG(uint64(id) + 1)
			batch := make([]Edge, 0, 64)
			for i := 0; i < 3000; i++ {
				u := uint64(rng.Intn(500) + 1)
				switch i % 3 {
				case 0:
					s.Observe(u, rng.Uint64())
				case 1:
					batch = batch[:0]
					for k := 0; k < 32; k++ {
						batch = append(batch, Edge{User: u, Item: rng.Uint64()})
					}
					s.ObserveBatch(batch)
				default:
					_ = s.Estimate(u)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s.Rotate()
		}
	}()
	wg.Wait()
	<-done
	if s.TotalDistinct() < 0 {
		t.Fatal("negative total after rotate chaos")
	}
	mustPanic(t, func() {
		NewSharded(2, func(i int) Estimator { return NewFreeRS(1 << 12) }).Rotate()
	})
}

// TestShardedConcurrentChaos hammers one Sharded instance with overlapping
// users from every worker, mixing Observe, ObserveBatch, and concurrent
// queries. Value assertions are minimal; the point is that `go test -race`
// sees every code path under genuine contention.
func TestShardedConcurrentChaos(t *testing.T) {
	for _, kind := range []string{"FreeBS", "FreeRS"} {
		t.Run(kind, func(t *testing.T) {
			s := buildSharded(kind)
			var wg sync.WaitGroup
			for w := 0; w < concWorkers+2; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := hashing.NewRNG(uint64(id) + 1)
					batch := make([]Edge, 0, 64)
					for i := 0; i < 4000; i++ {
						u := uint64(rng.Intn(500) + 1) // heavy user overlap
						switch i % 3 {
						case 0:
							s.Observe(u, rng.Uint64())
						case 1:
							batch = batch[:0]
							for k := 0; k < 32; k++ {
								batch = append(batch, Edge{User: u, Item: rng.Uint64()})
							}
							s.ObserveBatch(batch)
						default:
							_ = s.Estimate(u)
							if i%31 == 0 {
								_ = s.TotalDistinct()
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if s.TotalDistinct() <= 0 {
				t.Fatal("chaos run produced a non-positive total")
			}
		})
	}
}
