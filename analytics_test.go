package streamcard

// Tests for the shard-concurrent analytics read path: the parallel TopK
// must be bit-identical to the sequential reference across shard counts,
// k values, and tie-heavy inputs; the per-view fold cache must never
// re-fold an unchanged view; and the whole path must be race-free under
// concurrent ingest and rotation.

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/hashing"
)

// analyticsStack builds the serving shape — Sharded(Windowed(FreeRS)) with
// a shared seed (so merged reads work) — filled with the given edges and
// rotated at each boundary index so several generations are live.
func analyticsStack(shards, gens int, edges []Edge, rotations int, opts ...WindowedOption) *Sharded {
	s := NewSharded(shards, func(int) Estimator {
		o := append([]WindowedOption{WithGenerations(gens)}, opts...)
		return NewWindowed(func() Estimator { return NewFreeRS(1<<16, WithSeed(7)) }, o...)
	})
	step := len(edges) / (rotations + 1)
	for i := 0; i <= rotations; i++ {
		lo, hi := i*step, (i+1)*step
		if i == rotations {
			hi = len(edges)
		}
		s.ObserveBatch(edges[lo:hi])
		if i < rotations {
			s.Rotate()
		}
	}
	return s
}

// burstyEdges is a spread-out workload: users with 1..8 items each.
func burstyEdges(users int, seed uint64) []Edge {
	rng := hashing.NewRNG(seed)
	var edges []Edge
	for u := 1; u <= users; u++ {
		for n := 1 + rng.Intn(8); n > 0; n-- {
			edges = append(edges, Edge{User: uint64(u), Item: rng.Uint64()})
		}
	}
	return edges
}

// tieEdges is a tie-rich workload: exactly one item per user. Shards share
// a seed and start identical, so the j-th credited edge in each shard earns
// the same credit — estimates collide exactly across shards, exercising the
// tie-breaking merge.
func tieEdges(users int, seed uint64) []Edge {
	rng := hashing.NewRNG(seed)
	edges := make([]Edge, users)
	for u := 1; u <= users; u++ {
		edges[u-1] = Edge{User: uint64(u), Item: rng.Uint64()}
	}
	return edges
}

func TestParallelTopKBitIdenticalToSerial(t *testing.T) {
	// Force a real worker pool even on single-core hosts: GOMAXPROCS may
	// exceed NumCPU, and the fan-out sizes its pool from GOMAXPROCS.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const users = 3000
	workloads := map[string][]Edge{
		"bursty": burstyEdges(users, 11),
		"ties":   tieEdges(users, 12),
	}
	for name, edges := range workloads {
		for _, shards := range []int{1, 3, 8} {
			s := analyticsStack(shards, 3, edges, 2)
			v := s.Snapshot()
			if v == nil {
				t.Fatalf("%s/%d: no snapshot", name, shards)
			}
			if name == "ties" {
				distinct := map[float64]bool{}
				v.Users(func(_ uint64, e float64) { distinct[e] = true })
				if len(distinct) >= users {
					t.Fatalf("%s/%d: workload produced no estimate ties", name, shards)
				}
			}
			for _, k := range []int{1, 10, users + 7} {
				want := TopKSerial(v, k)
				got := v.TopK(k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s shards=%d k=%d: parallel TopK diverges from serial reference\ngot  %v\nwant %v",
						name, shards, k, got, want)
				}
				// The public entry point must delegate to the same path.
				if free := TopK(v, k); !reflect.DeepEqual(free, want) {
					t.Fatalf("%s shards=%d k=%d: TopK(view) diverges", name, shards, k)
				}
				if live := s.TopK(k); !reflect.DeepEqual(live, want) {
					t.Fatalf("%s shards=%d k=%d: Sharded.TopK diverges", name, shards, k)
				}
			}
		}
	}
}

func TestMergeTopKTieBreaking(t *testing.T) {
	per := [][]Spreader{
		{{User: 5, Estimate: 2}, {User: 9, Estimate: 1}},
		{},
		{{User: 3, Estimate: 2}, {User: 7, Estimate: 2}},
		{{User: 1, Estimate: 0.5}},
	}
	got := mergeTopK(per, 3)
	want := []Spreader{{User: 3, Estimate: 2}, {User: 5, Estimate: 2}, {User: 7, Estimate: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tied merge: got %v want %v", got, want)
	}
	if all := mergeTopK(per, 100); len(all) != 5 {
		t.Fatalf("k beyond candidates: len %d want 5", len(all))
	}
	if mergeTopK([][]Spreader{nil, {}}, 3) != nil {
		t.Fatal("empty merge should be nil")
	}
}

func TestFoldCacheZeroRefoldsOnUnchangedView(t *testing.T) {
	var fst FoldStats
	s := analyticsStack(4, 3, burstyEdges(2000, 21), 2, WithFoldStats(&fst))
	v := s.Snapshot()
	if v == nil {
		t.Fatal("no snapshot")
	}
	_ = v.TopK(5) // cold: every shard folds once
	computes := fst.Computes()
	if computes == 0 {
		t.Fatal("cold top-k executed no folds")
	}
	// Repeated analytics queries on the unchanged view: zero re-folds.
	_ = v.TopK(5)
	_ = v.NumUsers()
	v.Users(func(uint64, float64) {})
	v.RangeUsers(func(uint64, float64) {})
	if got := fst.Computes(); got != computes {
		t.Fatalf("unchanged view re-folded: computes %d -> %d", computes, got)
	}
	if fst.Hits() == 0 {
		t.Fatal("cached reads counted no hits")
	}
	// A write invalidates exactly the written shard's fold: the next
	// publication re-folds one shard, the others stay cached.
	s.Observe(1, 0xBEEF)
	v2 := s.Snapshot()
	_ = v2.TopK(5)
	if got := fst.Computes(); got != computes+1 {
		t.Fatalf("after one-shard write: computes %d -> %d, want +1", computes, got)
	}
}

func TestFoldCacheDefaultCollector(t *testing.T) {
	base := DefaultFoldStats().Computes()
	s := analyticsStack(2, 2, burstyEdges(500, 31), 1)
	_ = s.Snapshot().TopK(3)
	if DefaultFoldStats().Computes() == base {
		t.Fatal("stack without WithFoldStats did not report into the default collector")
	}
}

// TestAnalyticsRaceStorm drives concurrent analytics queries against live
// ingest and rotation — run under -race in CI.
func TestAnalyticsRaceStorm(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	s := NewSharded(8, func(int) Estimator {
		return NewWindowed(func() Estimator { return NewFreeRS(1<<14, WithSeed(7)) },
			WithGenerations(3))
	})
	const (
		writers  = 2
		queriers = 4
		rounds   = 60
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := hashing.NewRNG(seed)
			batch := make([]Edge, 256)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					batch[i] = Edge{User: uint64(rng.Intn(5000)), Item: rng.Uint64()}
				}
				s.ObserveBatch(batch)
			}
		}(uint64(w) + 41)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Rotate()
			}
		}
	}()
	var qwg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for r := 0; r < rounds; r++ {
				v := s.Snapshot()
				if v == nil {
					continue
				}
				top := v.TopK(10)
				for i := 1; i < len(top); i++ {
					if !spreaderWins(top[i-1], top[i]) {
						panic("top-k out of order")
					}
				}
				_ = v.NumUsers()
				n := 0
				v.RangeUsers(func(uint64, float64) { n++ })
				_, _ = v.TotalDistinctMerged()
			}
		}()
	}
	qwg.Wait()
	close(stop)
	wg.Wait()
}
