package streamcard

import (
	"sort"
	"testing"

	"repro/internal/hashing"
)

func TestTopKExactOrdering(t *testing.T) {
	est := NewFreeRS(1 << 20)
	// Users 1..20 with cardinality 100*u each: clear separation.
	for u := uint64(1); u <= 20; u++ {
		for i := 0; i < int(u)*100; i++ {
			est.Observe(u, uint64(i)|u<<40)
		}
	}
	top := TopK(est, 5)
	if len(top) != 5 {
		t.Fatalf("len = %d", len(top))
	}
	want := []uint64{20, 19, 18, 17, 16}
	for i, s := range top {
		if s.User != want[i] {
			t.Fatalf("rank %d: user %d, want %d (estimates: %+v)", i, s.User, want[i], top)
		}
	}
	for i := 1; i < len(top); i++ {
		if top[i].Estimate > top[i-1].Estimate {
			t.Fatal("not descending")
		}
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	est := NewFreeBS(1 << 20)
	rng := hashing.NewRNG(9)
	for i := 0; i < 30000; i++ {
		est.Observe(uint64(rng.Intn(500)), rng.Uint64())
	}
	var all []Spreader
	est.Users(func(u uint64, e float64) { all = append(all, Spreader{User: u, Estimate: e}) })
	sort.Slice(all, func(i, j int) bool {
		if all[i].Estimate != all[j].Estimate {
			return all[i].Estimate > all[j].Estimate
		}
		return all[i].User < all[j].User
	})
	for _, k := range []int{1, 7, 50, 499, 500, 600} {
		got := TopK(est, k)
		wantLen := k
		if wantLen > len(all) {
			wantLen = len(all)
		}
		if len(got) != wantLen {
			t.Fatalf("k=%d: len %d, want %d", k, len(got), wantLen)
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("k=%d rank %d: got %+v want %+v", k, i, got[i], all[i])
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	est := NewFreeRS(1 << 16)
	if got := TopK(est, 5); got != nil {
		t.Fatalf("empty estimator: %v", got)
	}
	if got := TopK(est, 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
	if got := TopK(est, -1); got != nil {
		t.Fatal("negative k must return nil")
	}
	est.Observe(1, 1)
	got := TopK(est, 10)
	if len(got) != 1 || got[0].User != 1 {
		t.Fatalf("singleton: %+v", got)
	}
}
