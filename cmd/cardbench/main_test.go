package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable1Text(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "table1", "-scale", "0.001", "-datasets", "chicago"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table I") || !strings.Contains(s, "chicago") {
		t.Fatalf("unexpected output:\n%s", s)
	}
	if !strings.Contains(s, "completed in") {
		t.Fatal("missing timing line")
	}
}

func TestRunFig2CSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "fig2", "-scale", "0.001", "-datasets", "flickr", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("CSV too short:\n%s", out.String())
	}
	if lines[0] != "dataset,cardinality,CCDF" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "flickr,") {
			t.Fatalf("unexpected CSV row %q", l)
		}
	}
}

func TestRunTable2SubsetMethods(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-exp", "table2", "-scale", "0.001", "-datasets", "livejournal",
		"-methods", "FreeBS,vHLL",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "FreeBS") || !strings.Contains(s, "vHLL") {
		t.Fatalf("missing methods:\n%s", s)
	}
	if strings.Contains(s, "HLL++") {
		t.Fatal("method subset not honored")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList = %v", got)
	}
}
