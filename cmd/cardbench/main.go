// Command cardbench regenerates the tables and figures of the paper's
// evaluation section (§V) at a configurable scale.
//
// Usage:
//
//	cardbench -exp table1|fig2|fig3|fig4|fig5|fig6|table2|all [flags]
//
// Flags:
//
//	-scale f     dataset scale factor relative to Table I (default 0.01)
//	-seed n      master seed (default 1)
//	-mbits n     sketch memory in bits (default: 5e8 × scale, the paper's M)
//	-m n         virtual sketch size for CSE/vHLL (default 1024)
//	-delta f     super-spreader threshold at paper scale (default 5e-5)
//	-datasets s  comma-separated subset of: sanjose,chicago,twitter,flickr,orkut,livejournal
//	-methods s   comma-separated subset of: FreeBS,FreeRS,CSE,vHLL,LPC,HLL++
//	-csv         emit CSV instead of aligned text
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cardbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cardbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: table1|fig2|fig3|fig4|fig5|fig6|table2|all")
		scale    = fs.Float64("scale", 0.01, "dataset scale factor")
		seed     = fs.Uint64("seed", 1, "master seed")
		mbits    = fs.Int("mbits", 0, "sketch memory in bits (0 = 5e8 x scale)")
		m        = fs.Int("m", 1024, "virtual sketch size for CSE/vHLL")
		delta    = fs.Float64("delta", 5e-5, "super-spreader threshold at paper scale")
		datasets = fs.String("datasets", "", "comma-separated dataset subset")
		methods  = fs.String("methods", "", "comma-separated method subset")
		csv      = fs.Bool("csv", false, "emit CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Scale:      *scale,
		Seed:       *seed,
		MemoryBits: *mbits,
		VirtualM:   *m,
		Delta:      *delta,
	}
	if *datasets != "" {
		cfg.Datasets = splitList(*datasets)
	}
	if *methods != "" {
		cfg.Methods = splitList(*methods)
	}

	type runner struct {
		name string
		run  func(experiments.Config) (*metrics.Table, error)
	}
	runners := []runner{
		{"table1", wrap(experiments.RunTable1)},
		{"fig2", wrap(experiments.RunFig2)},
		{"fig3", wrap(experiments.RunFig3)},
		{"fig4", wrap(experiments.RunFig4)},
		{"fig5", wrap(experiments.RunFig5)},
		{"fig6", wrap(experiments.RunFig6)},
		{"table2", wrap(experiments.RunTable2)},
	}

	selected := runners[:0:0]
	for _, r := range runners {
		if *exp == "all" || *exp == r.name {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	for _, r := range selected {
		start := time.Now()
		table, err := r.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		if *csv {
			if err := table.WriteCSV(out); err != nil {
				return err
			}
		} else {
			if _, err := table.WriteTo(out); err != nil {
				return err
			}
			fmt.Fprintf(out, "[%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// tabler is any experiment result that renders itself.
type tabler interface{ Table() *metrics.Table }

// wrap adapts a typed runner to the generic table-producing signature.
func wrap[R tabler](f func(experiments.Config) (R, error)) func(experiments.Config) (*metrics.Table, error) {
	return func(c experiments.Config) (*metrics.Table, error) {
		res, err := f(c)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	}
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
