package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestQueryBenchEmitsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_query.json")
	var out bytes.Buffer
	err := run([]string{
		"-seconds", "0.3", "-edges", "120000", "-mbits", "1048576", "-shards", "2", "-gens", "3",
		"-batch", "4096", "-queriers", "4", "-qps", "2000", "-rotate", "20",
		"-out", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if res.Edges != 120000 || res.Shards != 2 || res.Generations != 3 || res.Queriers != 4 {
		t.Fatalf("config not recorded: %+v", res)
	}
	if res.BaselineEdgesPerSec <= 0 || res.ContendedEdgesPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	if res.QueriesExecuted <= 0 {
		t.Fatal("no queries executed in the contended phase")
	}
	est, ok := res.QueryLatency["estimate"]
	if !ok || est.Count <= 0 || est.P99Us < est.P50Us {
		t.Fatalf("broken latency summary: %+v", res.QueryLatency)
	}
	// The hard assertion of the read-path architecture: snapshot
	// publication allocates O(1) bytes, independent of sketch size.
	if !res.SnapshotPublishO1OK {
		t.Fatalf("snapshot publication not O(1): %v B at M, %v B at 4M",
			res.SnapshotPublishBytes, res.SnapshotPublishBytes4x)
	}
	// The transport phase drove both legs against real listeners: positive
	// throughput on each means every frame was acked end to end over both
	// HTTP and CWT1. The ratio itself is host-dependent and gated in CI,
	// not here.
	if res.TransportHTTPEdgesPerSec <= 0 || res.TransportTCPEdgesPerSec <= 0 {
		t.Fatalf("transport phase legs missing: %+v", res)
	}
	if res.TransportShards <= 0 || res.TransportFrameEdges <= 0 || res.TransportWindow <= 0 {
		t.Fatalf("transport config not recorded: %+v", res)
	}
	// All three WAL legs ran against a real log; the always leg pays an
	// fsync per batch, so it can never beat the interval leg by more than
	// noise.
	if res.WALOffEdgesPerSec <= 0 || res.WALIntervalEdgesPerSec <= 0 || res.WALAlwaysEdgesPerSec <= 0 {
		t.Fatalf("WAL phase legs missing: %+v", res)
	}
	if res.WALAlwaysOverheadPct < res.WALIntervalOverheadPct-10 {
		t.Fatalf("fsync-per-batch measured cheaper than group commit: interval +%.1f%%, always +%.1f%%",
			res.WALIntervalOverheadPct, res.WALAlwaysOverheadPct)
	}
}

func TestQueryBenchStdout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-seconds", "0.2", "-edges", "40000", "-mbits", "524288", "-shards", "2", "-gens", "2",
		"-queriers", "2", "-qps", "1000", "-rotate", "0", "-out", "-",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// stdout mode prints the JSON first, then the human summary lines.
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	var res Result
	if err := dec.Decode(&res); err != nil {
		t.Fatalf("stdout is not JSON-led: %v\n%s", err, out.String())
	}
	if res.Edges != 40000 {
		t.Fatalf("config not recorded: %+v", res)
	}
}

func TestQueryBenchRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-edges", "0"}, &out); err == nil {
		t.Fatal("edges=0 accepted")
	}
	if err := run([]string{"-gens", "1"}, &out); err == nil {
		t.Fatal("gens=1 accepted")
	}
}
