// Command querybench measures what the snapshot-isolated read path buys:
// ingest throughput of the serving stack — Sharded(Windowed(FreeRS)), the
// same shape cardserved runs — with zero versus N concurrent query
// goroutines, plus query latency percentiles for the query mix a monitor
// actually issues (point estimates, top-k, anytime and merged totals, user
// counts). Because the write path publishes each shard's copy-on-write
// snapshot as it releases the shard lock, queries assemble views from
// atomic loads alone: ingest throughput under query load should sit within
// a few percent of the query-free baseline AND query latency should stay
// in the microseconds even while 65k-edge batches are absorbing; the JSON
// this tool emits (BENCH_query.json, uploaded by CI next to
// BENCH_core.json) tracks both per commit. Percentiles are only reported
// for kinds with at least minSamples observations (too_few_samples flags
// the rest) so a 2-sample p99 can never gate anything.
//
// A separate wire phase compares the two ingest protocols end to end —
// decode a pre-encoded request body and absorb the batch — for the text
// line protocol versus the CWB1 binary frame, reporting edges/sec each and
// the binary/text speedup.
//
// A transport phase compares the two ways CWB1 frames reach a real server:
// sequential keep-alive HTTP POSTs (one round trip per frame — the
// request/response transport cardload's -proto binary drives) versus the
// CWT1 persistent TCP transport (one long-lived connection, a window of
// pipelined frames, out-of-band per-frame acks). Both legs carry identical
// frame payloads into identical server.New stacks at -scaling-shards, so
// the ratio isolates what pipelining saves in per-request transport
// overhead; -min-tcp-speedup gates it (skipped with a logged reason on
// single-CPU hosts, where client and server time-slice one core and
// overlap is impossible by construction).
//
// A WAL phase measures what durability costs the same absorb loop: no WAL,
// the interval (group-commit) fsync policy, and the always policy, each
// against a real log on disk, with -max-wal-overhead-pct gating the
// interval leg's overhead over the no-WAL baseline.
//
// It also asserts the publication cost model: taking a snapshot of a
// loaded stack must allocate a small, size-independent number of bytes —
// never a full-array copy. The assertion compares publication cost at the
// configured sketch size and at 4x that size and fails the run (exit 1) if
// either is large or they scale with M.
//
// An analytics phase measures the shard-concurrent analytics read path at
// scale (top-k, sorted user enumeration, user counts, merged totals at
// ≥ 100k users across several live generations): each row runs on a
// freshly dirtied view so every window fold is cold, once through the
// one-goroutine serial reference and once through the parallel fan-out,
// plus a cached row that re-queries an unchanged view and asserts zero
// re-folds. Every row collects enough samples to clear the minSamples
// floor, so the analytics percentiles are real and gateable.
//
// CI gates on the serving targets with -max-estimate-p50-us,
// -max-total-p50-us, -min-wire-speedup, -min-tcp-speedup,
// -max-topk-p50-us, and -min-analytics-scaling (0 disables a gate).
//
//	go run ./cmd/querybench -edges 4000000 -queriers 8 -out BENCH_query.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	streamcard "repro"
	"repro/internal/hashing"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/wal"
)

// LatencySummary is the per-query-kind latency section of the JSON. Kinds
// that collected fewer than minSamples observations report only the count,
// with TooFewSamples set and the percentiles zeroed: a p99 over two
// samples is noise, and gating on it would pass and fail runs at random.
type LatencySummary struct {
	Count         int     `json:"count"`
	P50Us         float64 `json:"p50_us,omitempty"`
	P95Us         float64 `json:"p95_us,omitempty"`
	P99Us         float64 `json:"p99_us,omitempty"`
	TooFewSamples bool    `json:"too_few_samples,omitempty"`
}

// Result is the JSON document querybench emits.
type Result struct {
	PhaseSeconds  float64 `json:"phase_seconds"`
	Edges         int     `json:"edges"`
	MemoryBits    int     `json:"memory_bits"`
	Shards        int     `json:"shards"`
	Generations   int     `json:"generations"`
	BatchSize     int     `json:"batch_size"`
	Ingesters     int     `json:"ingesters"`
	Queriers      int     `json:"queriers"`
	TargetQPS     int     `json:"target_qps"`
	RotateEveryMs int     `json:"rotate_every_ms"`
	// The host's parallelism, recorded so a stored BENCH file is
	// interpretable: every throughput and scaling number below is a
	// function of how many cores the run actually had.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	BaselineEdgesPerSec  float64 `json:"baseline_edges_per_sec"`
	ContendedEdgesPerSec float64 `json:"contended_edges_per_sec"`
	IngestDropPct        float64 `json:"ingest_drop_pct"`

	QueriesExecuted int                       `json:"queries_executed"`
	QueryLatency    map[string]LatencySummary `json:"query_latency"`

	// Wire-to-sketch throughput: request body decoded (text line protocol
	// vs CWB1 binary frame) and the batch absorbed, per protocol, on a
	// fresh stack each — the server-side cost of an ingest request minus
	// HTTP itself.
	WireTextEdgesPerSec   float64 `json:"wire_text_edges_per_sec"`
	WireBinaryEdgesPerSec float64 `json:"wire_binary_edges_per_sec"`
	WireSpeedup           float64 `json:"wire_speedup"`

	// Transport comparison against a real server at TransportShards:
	// identical CWB1 frame payloads delivered as sequential keep-alive HTTP
	// POSTs (an ack round trip per frame) versus the CWT1 persistent TCP
	// transport (one connection, TransportWindow pipelined frames in
	// flight, per-frame acks read out of band). Edges/sec counts acked
	// frames end to end, so the ratio is the per-request transport overhead
	// pipelining removes. -min-tcp-speedup gates TCPSpeedupX; skipped with
	// the logged reason in TCPGateSkipped on single-CPU hosts.
	TransportShards          int     `json:"transport_shards"`
	TransportFrameEdges      int     `json:"transport_frame_edges"`
	TransportWindow          int     `json:"transport_window"`
	TransportHTTPEdgesPerSec float64 `json:"transport_http_edges_per_sec"`
	TransportTCPEdgesPerSec  float64 `json:"transport_tcp_edges_per_sec"`
	TCPSpeedupX              float64 `json:"tcp_speedup_x"`
	TCPGateSkipped           string  `json:"tcp_gate_skipped,omitempty"`

	// Ingest scaling: the same decode→partition→absorb pipeline executed by
	// ONE goroutine (partition a batch, absorb every shard's sub-batch
	// sequentially — the executors=1 reference) versus by one executor
	// goroutine per shard fed from per-shard queues (the cardserved
	// structure). The ratio is what shard-parallel ingest buys on this
	// host; on a single-core runner it is ≈1 by construction, which is why
	// the gate skips below 4 CPUs (see IngestScalingGateSkipped).
	IngestScalingShards       int     `json:"ingest_scaling_shards"`
	IngestSerialEdgesPerSec   float64 `json:"ingest_serial_edges_per_sec"`
	IngestParallelEdgesPerSec float64 `json:"ingest_parallel_edges_per_sec"`
	IngestScalingX            float64 `json:"ingest_scaling_x"`
	// Non-empty when -min-ingest-scaling was requested but not enforced,
	// with the reason (e.g. too few CPUs to certify parallel speedup).
	IngestScalingGateSkipped string `json:"ingest_scaling_gate_skipped,omitempty"`

	// Analytics read path: shard-concurrent top-k / user enumeration /
	// counts versus the one-goroutine serial reference, measured on a
	// scaling-shards-wide stack holding AnalyticsUsers users across the
	// live generations. Every leg runs on a freshly dirtied view (a write
	// lands in every shard first, so all window-fold caches are cold and
	// both legs do identical work); the topk_cached row re-queries an
	// unchanged view, with the phase asserting via fold counters that it
	// re-folded nothing. AnalyticsTopkScalingX is serial p50 over parallel
	// p50; like ingest scaling, the gate skips below 4 CPUs.
	AnalyticsUsers        int                       `json:"analytics_users"`
	AnalyticsShards       int                       `json:"analytics_shards"`
	AnalyticsLatency      map[string]LatencySummary `json:"analytics_latency"`
	AnalyticsTopkScalingX float64                   `json:"analytics_topk_scaling_x"`
	AnalyticsFoldComputes uint64                    `json:"analytics_fold_computes"`
	AnalyticsFoldHits     uint64                    `json:"analytics_fold_hits"`
	AnalyticsGateSkipped  string                    `json:"analytics_gate_skipped,omitempty"`

	// WAL overhead: the per-request ingest cycle (decode a text body, WAL
	// append, group-commit barrier, absorb — the way cardserved's submit
	// path runs it) against a real log on disk, for the no-WAL baseline,
	// the interval (group-commit) policy, and the always (fsync-per-batch)
	// policy. Overhead percentages are relative to the off leg; CI gates
	// the interval one, the durability default.
	WALOffEdgesPerSec      float64 `json:"wal_off_edges_per_sec"`
	WALIntervalEdgesPerSec float64 `json:"wal_interval_edges_per_sec"`
	WALAlwaysEdgesPerSec   float64 `json:"wal_always_edges_per_sec"`
	WALIntervalOverheadPct float64 `json:"wal_interval_overhead_pct"`
	WALAlwaysOverheadPct   float64 `json:"wal_always_overhead_pct"`

	// Snapshot publication cost: bytes allocated by one Snapshot call on a
	// loaded stack after a write made the published view stale, at the
	// configured sketch size and at 4x it. O1OK asserts both are small and
	// size-independent (the copy-on-write contract: publication never
	// copies the arrays; the writer pays its lazy copy outside the call).
	SnapshotPublishBytes   float64 `json:"snapshot_publish_bytes"`
	SnapshotPublishBytes4x float64 `json:"snapshot_publish_bytes_4x"`
	SnapshotPublishO1OK    bool    `json:"snapshot_publish_o1_ok"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "querybench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("querybench", flag.ContinueOnError)
	var (
		seconds   = fs.Float64("seconds", 3, "measured duration of each phase")
		edges     = fs.Int("edges", 4_000_000, "edges pre-generated and cycled through the window (the pool, not the total ingested)")
		mbits     = fs.Int("mbits", 1<<22, "total sketch memory in bits (split across shards, spent per generation)")
		shards    = fs.Int("shards", 4, "shard count")
		gens      = fs.Int("gens", 4, "window generations k")
		batch     = fs.Int("batch", 65536, "ObserveBatch chunk size")
		users     = fs.Int("users", 50_000, "distinct users in the workload")
		ingesters = fs.Int("ingesters", 2, "concurrent ingest goroutines")
		queriers  = fs.Int("queriers", 8, "concurrent query goroutines in the contended phase")
		qps       = fs.Int("qps", 2000, "total target point-estimate rate across the query fleet (0 = unthrottled)")
		rotatems  = fs.Int("rotate", 50, "rotate every this many milliseconds during both phases (0 = never)")
		out       = fs.String("out", "BENCH_query.json", "output file (- = stdout)")

		scalingShards = fs.Int("scaling-shards", 8, "shard count of the ingest-scaling phase (one executor per shard in the parallel leg)")

		analyticsUsers = fs.Int("analytics-users", 120_000, "distinct users in the analytics read-path phase")

		maxEstP50           = fs.Float64("max-estimate-p50-us", 0, "fail if estimate p50 exceeds this many microseconds (0 = no gate)")
		maxTotalP50         = fs.Float64("max-total-p50-us", 0, "fail if total p50 exceeds this many microseconds (0 = no gate)")
		minSpeedup          = fs.Float64("min-wire-speedup", 0, "fail if binary/text wire-to-sketch speedup falls below this (0 = no gate)")
		minTCPSpeedup       = fs.Float64("min-tcp-speedup", 0, "fail if the pipelined-TCP/HTTP-binary transport speedup falls below this (0 = no gate; skipped with a logged reason on hosts with fewer than 2 CPUs)")
		minScaling          = fs.Float64("min-ingest-scaling", 0, "fail if shard-parallel/serial ingest throughput falls below this (0 = no gate; skipped with a logged reason on hosts with fewer than 4 CPUs)")
		maxWALOver          = fs.Float64("max-wal-overhead-pct", 0, "fail if the interval-policy WAL ingest overhead exceeds this percent of the no-WAL baseline (0 = no gate)")
		maxTopkP50          = fs.Float64("max-topk-p50-us", 0, "fail if the parallel analytics top-k p50 exceeds this many microseconds (0 = no gate)")
		minAnalyticsScaling = fs.Float64("min-analytics-scaling", 0, "fail if the parallel/serial analytics top-k speedup falls below this (0 = no gate; skipped with a logged reason on hosts with fewer than 4 CPUs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seconds <= 0 || *edges <= 0 || *shards <= 0 || *gens < 2 || *batch <= 0 || *users <= 0 || *ingesters <= 0 || *queriers < 0 {
		return fmt.Errorf("need seconds, edges, shards, batch, users, ingesters > 0 and gens >= 2")
	}

	batches := makeBatches(*edges, *batch, *users, 1)

	// Warm up code paths and fault in the edge slices before timing.
	warmup(buildStack(*mbits, *shards, *gens), batches)

	res := Result{
		PhaseSeconds: *seconds,
		Edges:        *edges, MemoryBits: *mbits, Shards: *shards, Generations: *gens,
		BatchSize: *batch, Ingesters: *ingesters, Queriers: *queriers,
		TargetQPS: *qps, RotateEveryMs: *rotatems,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		IngestScalingShards: *scalingShards,
	}

	cfg := phaseConfig{
		mbits: *mbits, shards: *shards, gens: *gens, users: *users,
		ingesters: *ingesters, qps: *qps, rotatems: *rotatems,
		seconds: *seconds,
	}
	res.BaselineEdgesPerSec, _, _ = runPhase(cfg, batches, 0)
	var lat map[string][]float64
	var queries int
	res.ContendedEdgesPerSec, lat, queries = runPhase(cfg, batches, *queriers)

	res.IngestDropPct = (1 - res.ContendedEdgesPerSec/res.BaselineEdgesPerSec) * 100
	res.QueriesExecuted = queries
	res.QueryLatency = summarize(lat)

	var err error
	res.WireTextEdgesPerSec, res.WireBinaryEdgesPerSec, err = wirePhase(cfg, batches)
	if err != nil {
		return err
	}
	res.WireSpeedup = res.WireBinaryEdgesPerSec / res.WireTextEdgesPerSec

	res.TransportShards = *scalingShards
	res.TransportFrameEdges = transportFrameEdges
	res.TransportWindow = transportWindow
	res.TransportHTTPEdgesPerSec, res.TransportTCPEdgesPerSec, err =
		transportPhase(cfg, batches, *scalingShards)
	if err != nil {
		return err
	}
	res.TCPSpeedupX = res.TransportTCPEdgesPerSec / res.TransportHTTPEdgesPerSec
	if *minTCPSpeedup > 0 && res.NumCPU < 2 {
		// On one core the client, the HTTP server, and the shard executors
		// time-slice the same CPU: pipelined frames cannot overlap anything,
		// so the ratio certifies scheduling luck, not the transport. Recorded
		// in the JSON like the other skips so a stored BENCH file says why
		// the gate did not run.
		res.TCPGateSkipped = fmt.Sprintf(
			"host has %d CPUs; certifying pipelined-transport speedup needs at least 2", res.NumCPU)
	}

	res.IngestSerialEdgesPerSec, res.IngestParallelEdgesPerSec =
		ingestScalingPhase(cfg, batches, *scalingShards)
	res.IngestScalingX = res.IngestParallelEdgesPerSec / res.IngestSerialEdgesPerSec
	if *minScaling > 0 && res.NumCPU < 4 {
		// One or two cores cannot certify parallel speedup: the executors
		// time-slice the same cores the serial leg had, so the ratio is ≈1
		// by construction, not by regression. Record the skip in the JSON so
		// a stored BENCH file says why the gate did not run.
		res.IngestScalingGateSkipped = fmt.Sprintf(
			"host has %d CPUs; certifying shard-parallel scaling needs at least 4", res.NumCPU)
	}

	alat, fst, err := analyticsPhase(*mbits, *scalingShards, *gens, *analyticsUsers)
	if err != nil {
		return err
	}
	res.AnalyticsUsers = *analyticsUsers
	res.AnalyticsShards = *scalingShards
	res.AnalyticsLatency = summarize(alat)
	if s, p := res.AnalyticsLatency["topk_serial"], res.AnalyticsLatency["topk"]; p.P50Us > 0 {
		res.AnalyticsTopkScalingX = s.P50Us / p.P50Us
	}
	res.AnalyticsFoldComputes = fst.Computes()
	res.AnalyticsFoldHits = fst.Hits()
	if *minAnalyticsScaling > 0 && res.NumCPU < 4 {
		// Same reasoning as the ingest-scaling skip: with the fan-out
		// time-slicing the serial leg's cores, the ratio is ≈1 by
		// construction and certifies nothing.
		res.AnalyticsGateSkipped = fmt.Sprintf(
			"host has %d CPUs; certifying shard-parallel analytics scaling needs at least 4", res.NumCPU)
	}

	res.WALOffEdgesPerSec, res.WALIntervalEdgesPerSec, res.WALAlwaysEdgesPerSec, err =
		walPhase(cfg, batches)
	if err != nil {
		return err
	}
	res.WALIntervalOverheadPct = (1 - res.WALIntervalEdgesPerSec/res.WALOffEdgesPerSec) * 100
	res.WALAlwaysOverheadPct = (1 - res.WALAlwaysEdgesPerSec/res.WALOffEdgesPerSec) * 100

	// The O(1)-publication assertion, at M and 4M.
	small, err := snapshotPublishBytes(*mbits, *shards, *gens)
	if err != nil {
		return err
	}
	large, err := snapshotPublishBytes(*mbits*4, *shards, *gens)
	if err != nil {
		return err
	}
	res.SnapshotPublishBytes = small
	res.SnapshotPublishBytes4x = large
	// "Small": far below one generation's array (mbits/shards/8 bytes).
	// "Size-independent": 4x the sketch must not even double the cost.
	arrayBytes := float64(*mbits / *shards / 8)
	res.SnapshotPublishO1OK = small < 64<<10 && small < arrayBytes/4 &&
		large < 2*small+4096

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		if _, err := stdout.Write(doc); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}

	fmt.Fprintf(stdout,
		"querybench: ingest %.1fM edges/s alone, %.1fM with %d queriers (%.1f%% drop), %d queries, estimate p50 %.0fus p99 %.0fus, total p50 %.0fus\n",
		res.BaselineEdgesPerSec/1e6, res.ContendedEdgesPerSec/1e6, *queriers,
		res.IngestDropPct, queries, res.QueryLatency["estimate"].P50Us,
		res.QueryLatency["estimate"].P99Us, res.QueryLatency["total"].P50Us)
	fmt.Fprintf(stdout, "querybench: wire-to-sketch %.1fM edges/s text, %.1fM binary (%.1fx)\n",
		res.WireTextEdgesPerSec/1e6, res.WireBinaryEdgesPerSec/1e6, res.WireSpeedup)
	fmt.Fprintf(stdout, "querybench: transport at %d shards: %.1fM edges/s http binary, %.1fM tcp pipelined (%.2fx, window %d, %d-edge frames)\n",
		*scalingShards, res.TransportHTTPEdgesPerSec/1e6, res.TransportTCPEdgesPerSec/1e6,
		res.TCPSpeedupX, transportWindow, transportFrameEdges)
	fmt.Fprintf(stdout, "querybench: ingest scaling at %d shards: %.1fM edges/s serial, %.1fM shard-parallel (%.2fx on %d CPUs)\n",
		*scalingShards, res.IngestSerialEdgesPerSec/1e6, res.IngestParallelEdgesPerSec/1e6,
		res.IngestScalingX, res.NumCPU)
	fmt.Fprintf(stdout, "querybench: analytics at %d shards / %d users: topk p50 %.0fus serial, %.0fus parallel (%.2fx), cached %.0fus; folds %d computed %d hit\n",
		*scalingShards, *analyticsUsers,
		res.AnalyticsLatency["topk_serial"].P50Us, res.AnalyticsLatency["topk"].P50Us,
		res.AnalyticsTopkScalingX, res.AnalyticsLatency["topk_cached"].P50Us,
		res.AnalyticsFoldComputes, res.AnalyticsFoldHits)
	fmt.Fprintf(stdout, "querybench: WAL ingest %.1fM edges/s off, %.1fM interval (+%.1f%%), %.1fM always (+%.1f%%)\n",
		res.WALOffEdgesPerSec/1e6,
		res.WALIntervalEdgesPerSec/1e6, res.WALIntervalOverheadPct,
		res.WALAlwaysEdgesPerSec/1e6, res.WALAlwaysOverheadPct)
	fmt.Fprintf(stdout, "querybench: snapshot publication %.0f B at M, %.0f B at 4M (o1_ok=%v)\n",
		small, large, res.SnapshotPublishO1OK)
	if *out != "-" {
		fmt.Fprintf(stdout, "querybench: wrote %s\n", *out)
	}
	if !res.SnapshotPublishO1OK {
		return fmt.Errorf("snapshot publication is not O(1): %.0f bytes at M=%d, %.0f at 4x (one shard generation's array is %.0f bytes)",
			small, *mbits, large, arrayBytes)
	}

	// The serving-target gates. A kind with too few samples cannot pass its
	// gate — refusing to certify a latency from a 2-sample percentile is
	// the point of the minSamples floor.
	var violations []string
	gateP50 := func(kind string, limit float64) {
		if limit <= 0 {
			return
		}
		ls, ok := res.QueryLatency[kind]
		switch {
		case !ok || ls.TooFewSamples:
			violations = append(violations,
				fmt.Sprintf("%s: %d samples is below the %d-sample floor, cannot certify p50", kind, ls.Count, minSamples))
		case ls.P50Us > limit:
			violations = append(violations, fmt.Sprintf("%s p50 %.0fus > limit %.0fus", kind, ls.P50Us, limit))
		}
	}
	gateP50("estimate", *maxEstP50)
	gateP50("total", *maxTotalP50)
	if *minSpeedup > 0 && res.WireSpeedup < *minSpeedup {
		violations = append(violations,
			fmt.Sprintf("wire speedup %.2fx < limit %.2fx", res.WireSpeedup, *minSpeedup))
	}
	if *minTCPSpeedup > 0 {
		if res.TCPGateSkipped != "" {
			fmt.Fprintf(stdout, "querybench: tcp-speedup gate skipped: %s\n", res.TCPGateSkipped)
		} else if res.TCPSpeedupX < *minTCPSpeedup {
			violations = append(violations,
				fmt.Sprintf("tcp transport speedup %.2fx < limit %.2fx at %d shards on %d CPUs",
					res.TCPSpeedupX, *minTCPSpeedup, *scalingShards, res.NumCPU))
		}
	}
	if *minScaling > 0 {
		if res.IngestScalingGateSkipped != "" {
			fmt.Fprintf(stdout, "querybench: ingest-scaling gate skipped: %s\n", res.IngestScalingGateSkipped)
		} else if res.IngestScalingX < *minScaling {
			violations = append(violations,
				fmt.Sprintf("ingest scaling %.2fx < limit %.2fx at %d shards on %d CPUs",
					res.IngestScalingX, *minScaling, *scalingShards, res.NumCPU))
		}
	}
	gateAnalyticsP50 := func(kind string, limit float64) {
		if limit <= 0 {
			return
		}
		ls, ok := res.AnalyticsLatency[kind]
		switch {
		case !ok || ls.TooFewSamples:
			violations = append(violations,
				fmt.Sprintf("analytics %s: %d samples is below the %d-sample floor, cannot certify p50", kind, ls.Count, minSamples))
		case ls.P50Us > limit:
			violations = append(violations, fmt.Sprintf("analytics %s p50 %.0fus > limit %.0fus", kind, ls.P50Us, limit))
		}
	}
	gateAnalyticsP50("topk", *maxTopkP50)
	if *minAnalyticsScaling > 0 {
		if res.AnalyticsGateSkipped != "" {
			fmt.Fprintf(stdout, "querybench: analytics-scaling gate skipped: %s\n", res.AnalyticsGateSkipped)
		} else if res.AnalyticsTopkScalingX < *minAnalyticsScaling {
			violations = append(violations,
				fmt.Sprintf("analytics top-k scaling %.2fx < limit %.2fx at %d shards on %d CPUs",
					res.AnalyticsTopkScalingX, *minAnalyticsScaling, *scalingShards, res.NumCPU))
		}
	}
	if *maxWALOver > 0 && res.WALIntervalOverheadPct > *maxWALOver {
		violations = append(violations,
			fmt.Sprintf("interval-policy WAL overhead %.1f%% > limit %.1f%%",
				res.WALIntervalOverheadPct, *maxWALOver))
	}
	if len(violations) > 0 {
		return fmt.Errorf("gates failed: %s", strings.Join(violations, "; "))
	}
	return nil
}

// wireSecondsCap bounds each protocol leg of the wire phase; the ratio
// stabilizes well before the latency phases' full duration.
const wireSecondsCap = 1.5

// wirePhase measures wire-to-sketch ingest for both protocols: each leg
// pre-encodes a slice of the batch pool as request bodies, then decodes
// and absorbs them in a loop against a fresh stack — the work an ingest
// request costs the server after HTTP framing. Text pays a per-edge
// decimal parse and an edges-slice append; CWB1 validates a CRC and hands
// the payload bytes straight to ObserveBatch (zero-copy decode).
func wirePhase(cfg phaseConfig, batches [][]streamcard.Edge) (textEPS, binEPS float64, err error) {
	if len(batches) > 16 {
		batches = batches[:16] // bound the encoded-body memory
	}
	seconds := cfg.seconds
	if seconds > wireSecondsCap {
		seconds = wireSecondsCap
	}
	textBodies := make([][]byte, len(batches))
	binBodies := make([][]byte, len(batches))
	for i, b := range batches {
		var buf bytes.Buffer
		if err := stream.WriteText(&buf, b); err != nil {
			return 0, 0, err
		}
		textBodies[i] = buf.Bytes()
		binBodies[i] = stream.AppendWire(nil, b)
	}
	textEPS, err = wireToSketch(cfg, seconds, textBodies, func(body []byte) ([]streamcard.Edge, error) {
		return stream.ParseTextBatch(bytes.NewReader(body))
	})
	if err != nil {
		return 0, 0, err
	}
	binEPS, err = wireToSketch(cfg, seconds, binBodies, stream.DecodeWire)
	return textEPS, binEPS, err
}

func wireToSketch(cfg phaseConfig, seconds float64, bodies [][]byte, decode func([]byte) ([]streamcard.Edge, error)) (float64, error) {
	s := buildStack(cfg.mbits, cfg.shards, cfg.gens)
	deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	start := time.Now()
	var edges int64
	for i := 0; time.Now().Before(deadline); i++ {
		b, err := decode(bodies[i%len(bodies)])
		if err != nil {
			return 0, err
		}
		s.ObserveBatch(b)
		edges += int64(len(b))
	}
	return float64(edges) / time.Since(start).Seconds(), nil
}

// Transport phase sizing: each leg-rep is time-bounded like the wire
// phase, frames are small enough that per-request overhead — the thing the
// phase measures — is a visible fraction of each request, and the TCP
// window matches cardload's default pipelining depth. transportReps
// interleaved repetitions run and the best rep per leg is kept, the same
// noise discipline as walPhase.
const (
	transportSecondsCap = 1.0
	transportReps       = 3
	transportFrameEdges = 2048
	transportWindow     = 64
)

// transportPhase measures how CWB1 frames reach a real server: identical
// frame payloads are driven into identical server stacks (server.New at
// `shards`, no WAL — durability is walPhase's subject) once as sequential
// keep-alive HTTP POSTs and once over one CWT1 connection with
// transportWindow pipelined frames in flight. Both acks mean the same
// thing — batch validated and queued on the shard executors — so
// acked-edges-per-second is an apples-to-apples transport number: the HTTP
// leg pays a full request/response round trip per frame, the TCP leg
// streams frames back to back and reads compact acks out of band.
func transportPhase(cfg phaseConfig, batches [][]streamcard.Edge, shards int) (httpEPS, tcpEPS float64, err error) {
	seconds := cfg.seconds
	if seconds > transportSecondsCap {
		seconds = transportSecondsCap
	}
	dur := time.Duration(seconds * float64(time.Second))

	// Re-slice the pool into transport-sized frames and pre-encode the CWB1
	// bodies both legs share.
	var frames [][]streamcard.Edge
	for _, b := range batches {
		for len(b) >= transportFrameEdges && len(frames) < 64 {
			frames = append(frames, b[:transportFrameEdges])
			b = b[transportFrameEdges:]
		}
	}
	if len(frames) == 0 {
		return 0, 0, fmt.Errorf("transport: batch pool smaller than one %d-edge frame", transportFrameEdges)
	}
	bodies := make([][]byte, len(frames))
	for i, f := range frames {
		bodies[i] = stream.AppendWire(nil, f)
	}

	newServer := func() (*server.Server, net.Listener, error) {
		s, err := server.New(server.Config{
			MemoryBits: cfg.mbits, Shards: shards, Generations: cfg.gens, Seed: 1,
		})
		if err != nil {
			return nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, nil, err
		}
		return s, ln, nil
	}

	httpLeg := func() (float64, error) {
		s, ln, err := newServer()
		if err != nil {
			return 0, err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		defer func() { hs.Close(); s.Close() }()
		client := &http.Client{}
		defer client.CloseIdleConnections()
		url := "http://" + ln.Addr().String() + "/ingest"
		deadline := time.Now().Add(dur)
		start := time.Now()
		var edges int64
		for i := 0; time.Now().Before(deadline); i++ {
			resp, err := client.Post(url, stream.WireContentType, bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				return 0, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				return 0, fmt.Errorf("transport: http ingest status %d", resp.StatusCode)
			}
			edges += int64(len(frames[i%len(frames)]))
		}
		return float64(edges) / time.Since(start).Seconds(), nil
	}

	tcpLeg := func() (float64, error) {
		s, ln, err := newServer()
		if err != nil {
			return 0, err
		}
		go s.ServeTCP(ln)
		defer s.Close()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return 0, err
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(stream.TCPMagic)); err != nil {
			return 0, err
		}
		// The reader drains acks until the server's half-close EOF (every
		// frame acked), releasing the writer's window as they land; elapsed
		// time runs until the last ack, so the tail drain is counted exactly
		// like the other phases count their absorption tails.
		sem := make(chan struct{}, transportWindow)
		var ackedEdges atomic.Int64
		ackErr := make(chan error, 1)
		ackDone := make(chan struct{})
		go func() {
			defer close(ackDone)
			br := bufio.NewReaderSize(conn, 32<<10)
			var rec [stream.AckLen]byte
			for {
				if _, err := io.ReadFull(br, rec[:]); err != nil {
					if err != io.EOF {
						ackErr <- err
					}
					return
				}
				seq, status, err := stream.ParseAck(rec[:])
				if err != nil {
					ackErr <- err
					return
				}
				if status != stream.AckOK {
					ackErr <- fmt.Errorf("transport: tcp ack status %d for frame %d", status, seq)
					return
				}
				ackedEdges.Add(int64(len(frames[int((seq-1))%len(frames)])))
				<-sem
			}
		}()
		deadline := time.Now().Add(dur)
		start := time.Now()
		var buf []byte
	write:
		for seq := uint64(1); time.Now().Before(deadline); seq++ {
			select {
			case sem <- struct{}{}:
			case <-ackDone:
				break write
			}
			body := bodies[int((seq-1))%len(bodies)]
			buf = stream.AppendFrameHeader(buf[:0], seq, len(body))
			buf = append(buf, body...)
			if _, err := conn.Write(buf); err != nil {
				break
			}
		}
		conn.(*net.TCPConn).CloseWrite()
		<-ackDone
		elapsed := time.Since(start)
		select {
		case err := <-ackErr:
			return 0, err
		default:
		}
		return float64(ackedEdges.Load()) / elapsed.Seconds(), nil
	}

	// Interleaved best-of-N, exactly like walPhase: a slow scheduler slice
	// landing on one leg must not masquerade as transport overhead.
	for rep := 0; rep < transportReps; rep++ {
		h, err := httpLeg()
		if err != nil {
			return 0, 0, err
		}
		tcp, err := tcpLeg()
		if err != nil {
			return 0, 0, err
		}
		httpEPS = math.Max(httpEPS, h)
		tcpEPS = math.Max(tcpEPS, tcp)
	}
	return httpEPS, tcpEPS, nil
}

// walSecondsCap bounds each leg-rep of the WAL-overhead phase; walReps
// interleaved repetitions of the three legs are run and the best rep per
// leg kept (see the bottom of walPhase).
const (
	walSecondsCap = 0.75
	walReps       = 3
)

// walPhase measures what durability costs an ingest request: each leg
// runs the server's per-request cycle — decode a pre-encoded text body
// (the protocol CI's smoke jobs drive), append the batch to a real
// on-disk log, pass the policy's group-commit barrier, absorb — on a
// fresh stack. Three legs: no WAL at all (the request-cost baseline), the
// interval policy (append is one buffered write(2); fsync rides the
// background group-committer), and the always policy (a synchronous
// fsync bounds every batch — the price of zero power-loss exposure,
// reported but not gated).
//
// The leg has the cardserved pipeline's shape, in miniature:
// cfg.ingesters driver goroutines (the server handles requests
// concurrently) each decode a request body, append to the log, pass the
// commit barrier, and hand the batch to an absorber goroutine — because
// that is where the server runs these steps (submit on request
// goroutines, absorption on the shard executors), and the WAL's write
// and fsync stalls are kernel waits that OVERLAP other requests' decode
// and the executors' absorption there. A single-threaded
// decode-append-absorb loop would charge every page-cache writeback
// stall to the WAL serially and report disk bandwidth, not the overhead
// the deployed ack path actually pays. Decode stays inside the loop for
// the same fidelity: a request pays it before submit either way.
func walPhase(cfg phaseConfig, batches [][]streamcard.Edge) (offEPS, intervalEPS, alwaysEPS float64, err error) {
	if len(batches) > 16 {
		batches = batches[:16]
	}
	seconds := cfg.seconds
	if seconds > walSecondsCap {
		seconds = walSecondsCap
	}
	bodies := make([][]byte, len(batches))
	for i, b := range batches {
		var buf bytes.Buffer
		if err := stream.WriteText(&buf, b); err != nil {
			return 0, 0, 0, err
		}
		bodies[i] = buf.Bytes()
	}
	leg := func(policy wal.Policy, logged bool) (float64, error) {
		s := buildStack(cfg.mbits, cfg.shards, cfg.gens)
		var w *wal.WAL
		if logged {
			dir, err := os.MkdirTemp("", "querybench-wal-")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			w, err = wal.Open(wal.Options{Dir: dir, Fingerprint: []byte("querybench"), Policy: policy})
			if err != nil {
				return 0, err
			}
			defer w.Close()
		}
		queue := make(chan []streamcard.Edge, 16)
		var absorbWG sync.WaitGroup
		absorbWG.Add(1)
		go func() {
			defer absorbWG.Done()
			for b := range queue {
				s.ObserveBatch(b)
			}
		}()
		drivers := cfg.ingesters
		if drivers < 2 {
			drivers = 2
		}
		var (
			driverWG sync.WaitGroup
			edges    atomic.Int64
			legMu    sync.Mutex
			legErr   error
		)
		deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
		start := time.Now()
		for d := 0; d < drivers; d++ {
			driverWG.Add(1)
			go func(d int) {
				defer driverWG.Done()
				fail := func(err error) {
					legMu.Lock()
					if legErr == nil {
						legErr = err
					}
					legMu.Unlock()
				}
				for i := d; time.Now().Before(deadline); i += drivers {
					b, err := stream.ParseTextBatch(bytes.NewReader(bodies[i%len(bodies)]))
					if err != nil {
						fail(err)
						return
					}
					if w != nil {
						seq, err := w.AppendBatch(b)
						if err != nil {
							fail(err)
							return
						}
						if err := w.Commit(seq); err != nil {
							fail(err)
							return
						}
					}
					queue <- b
					edges.Add(int64(len(b)))
				}
			}(d)
		}
		driverWG.Wait()
		close(queue)
		absorbWG.Wait() // throughput counts the tail drain, like the server's /flush
		if legErr != nil {
			return 0, legErr
		}
		return float64(edges.Load()) / time.Since(start).Seconds(), nil
	}
	// Interleaved best-of-N: the host's spare CPU varies on the scale of a
	// leg, and a slow slice landing on one leg would masquerade as WAL
	// overhead (or hide it). Each rep runs all three legs back to back and
	// the best rep per leg is kept — the standard way to measure cost, not
	// contention.
	for rep := 0; rep < walReps; rep++ {
		off, err := leg(wal.SyncNever, false)
		if err != nil {
			return 0, 0, 0, err
		}
		interval, err := leg(wal.SyncInterval, true)
		if err != nil {
			return 0, 0, 0, err
		}
		always, err := leg(wal.SyncAlways, true)
		if err != nil {
			return 0, 0, 0, err
		}
		offEPS = math.Max(offEPS, off)
		intervalEPS = math.Max(intervalEPS, interval)
		alwaysEPS = math.Max(alwaysEPS, always)
	}
	return offEPS, intervalEPS, alwaysEPS, nil
}

// scalingSecondsCap bounds each leg of the ingest-scaling phase; like the
// wire phase, the ratio stabilizes well before the full phase duration.
const scalingSecondsCap = 1.5

// ingestScalingPhase measures what the shard-executor pipeline buys over a
// single ingest thread, on identical work: both legs run the same
// partition-then-absorb-via-ObserveShardBatch path over the same batch
// pool against a fresh stack each.
//
// The serial leg is executors=1: one goroutine splits each batch and
// absorbs every shard's sub-batch in shard order. The parallel leg is the
// cardserved structure in miniature: the same goroutine splits and fans
// sub-batches out to per-shard bounded queues, one executor goroutine per
// shard absorbs, and a per-batch refcount returns the partition buffers to
// the pool when the last shard finishes. Identical instructions, identical
// per-shard sub-streams — the legs differ only in how many cores may work
// at once, so the ratio isolates the pipeline's parallel speedup.
func ingestScalingPhase(cfg phaseConfig, batches [][]streamcard.Edge, shards int) (serialEPS, parEPS float64) {
	seconds := cfg.seconds
	if seconds > scalingSecondsCap {
		seconds = scalingSecondsCap
	}
	dur := time.Duration(seconds * float64(time.Second))

	// Serial leg.
	s := buildStack(cfg.mbits, shards, cfg.gens)
	part := stream.NewPartitioner(shards, s.ShardIndex)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var edges int64
	for i := 0; time.Now().Before(deadline); i++ {
		src := batches[i%len(batches)]
		b := part.Split(src)
		for t := 0; t < shards; t++ {
			if sub := b.Shard(t); len(sub) > 0 {
				s.ObserveShardBatch(t, sub)
			}
		}
		b.Release()
		edges += int64(len(src))
	}
	serialEPS = float64(edges) / time.Since(start).Seconds()

	// Parallel leg.
	type scaleBatch struct {
		part      *stream.Partitioned
		remaining atomic.Int32
	}
	type scaleItem struct {
		sub []streamcard.Edge
		b   *scaleBatch
	}
	s = buildStack(cfg.mbits, shards, cfg.gens)
	part = stream.NewPartitioner(shards, s.ShardIndex)
	queues := make([]chan scaleItem, shards)
	var wg sync.WaitGroup
	for i := range queues {
		queues[i] = make(chan scaleItem, 64)
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for it := range queues[idx] {
				s.ObserveShardBatch(idx, it.sub)
				if it.b.remaining.Add(-1) == 0 {
					it.b.part.Release()
				}
			}
		}(i)
	}
	deadline = time.Now().Add(dur)
	start = time.Now()
	edges = 0
	for i := 0; time.Now().Before(deadline); i++ {
		src := batches[i%len(batches)]
		b := &scaleBatch{part: part.Split(src)}
		touched := 0
		for t := 0; t < shards; t++ {
			if len(b.part.Shard(t)) > 0 {
				touched++
			}
		}
		if touched == 0 {
			b.part.Release()
			continue
		}
		b.remaining.Store(int32(touched))
		for t := 0; t < shards; t++ {
			if sub := b.part.Shard(t); len(sub) > 0 {
				queues[t] <- scaleItem{sub: sub, b: b}
			}
		}
		edges += int64(len(src))
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait() // throughput counts the tail drain: all submitted edges absorbed
	parEPS = float64(edges) / time.Since(start).Seconds()
	return serialEPS, parEPS
}

func buildStack(mbits, shards, gens int) *streamcard.Sharded {
	per := mbits / shards
	return streamcard.NewSharded(shards, func(int) streamcard.Estimator {
		return streamcard.NewWindowed(func() streamcard.Estimator {
			return streamcard.NewFreeRS(per, streamcard.WithSeed(1))
		}, streamcard.WithGenerations(gens))
	})
}

// Analytics phase sizing: enough iterations per row to clear the
// minSamples floor with headroom, and a serving-realistic k.
const (
	analyticsIters = 20
	analyticsK     = 10
)

// serialView is the one-goroutine analytics reference: it walks the
// shards of a published view sequentially, exactly as the read path did
// before the fan-out. It deliberately holds the view in a named field, not
// an embedded one, so the view's own TopK method is never promoted —
// TopKSerial over a serialView cannot accidentally dispatch into the
// parallel path, and the serial legs time genuinely serial work.
type serialView struct{ v *streamcard.ShardedView }

func (s serialView) Observe(user, item uint64)            { panic("read-only") }
func (s serialView) ObserveBatch(edges []streamcard.Edge) { panic("read-only") }
func (s serialView) Estimate(user uint64) float64         { return s.v.Estimate(user) }
func (s serialView) TotalDistinct() float64               { return s.v.TotalDistinct() }
func (s serialView) MemoryBits() int64                    { return s.v.MemoryBits() }
func (s serialView) Name() string                         { return s.v.Name() }

func (s serialView) Users(fn func(user uint64, estimate float64)) {
	for i := 0; i < s.v.NumShards(); i++ {
		s.v.ShardView(i).(streamcard.AnytimeEstimator).Users(fn)
	}
}

func (s serialView) RangeUsers(fn func(user uint64, estimate float64)) {
	for i := 0; i < s.v.NumShards(); i++ {
		if r, ok := s.v.ShardView(i).(streamcard.UserRanger); ok {
			r.RangeUsers(fn)
		} else {
			s.v.ShardView(i).(streamcard.AnytimeEstimator).Users(fn)
		}
	}
}

func (s serialView) NumUsers() int {
	n := 0
	for i := 0; i < s.v.NumShards(); i++ {
		n += s.v.ShardView(i).(streamcard.AnytimeEstimator).NumUsers()
	}
	return n
}

// analyticsPhase measures the analytics read path — top-k, sorted user
// enumeration, user counts, merged totals — serial versus shard-parallel,
// on a stack holding `users` distinct users spread across the live
// generations. Each timed iteration runs on a freshly dirtied view: a
// one-edge write lands in every shard first, so all fold caches are cold
// and both legs pay the same fold work. The topk_cached row re-queries an
// unchanged view; the phase fails if those repeats re-fold anything.
func analyticsPhase(mbits, shards, gens, users int) (map[string][]float64, *streamcard.FoldStats, error) {
	var fst streamcard.FoldStats
	per := mbits / shards
	s := streamcard.NewSharded(shards, func(int) streamcard.Estimator {
		return streamcard.NewWindowed(func() streamcard.Estimator {
			return streamcard.NewFreeRS(per, streamcard.WithSeed(1))
		}, streamcard.WithGenerations(gens), streamcard.WithFoldStats(&fst))
	})

	// Fill: every user observed with 1..4 items, split across the window's
	// generations so the folds sum several live sketches per shard.
	rng := hashing.NewRNG(9)
	fills := gens - 1
	batch := make([]streamcard.Edge, 0, 1<<16)
	flush := func() {
		if len(batch) > 0 {
			s.ObserveBatch(batch)
			batch = batch[:0]
		}
	}
	for g := 0; g < fills; g++ {
		for u := g; u < users; u += fills {
			for n := 1 + rng.Intn(4); n > 0; n-- {
				batch = append(batch, streamcard.Edge{User: uint64(u) + 1, Item: rng.Uint64()})
				if len(batch) == cap(batch) {
					flush()
				}
			}
		}
		flush()
		if g < fills-1 {
			s.Rotate()
		}
	}

	// One resident user per shard, so a round of touch writes dirties every
	// shard and the next snapshot publishes all-cold folds.
	touch := make([]uint64, 0, shards)
	seen := make(map[int]bool, shards)
	for u := uint64(1); len(touch) < shards && u < uint64(users)+1; u++ {
		if i := s.ShardIndex(u); !seen[i] {
			seen[i] = true
			touch = append(touch, u)
		}
	}
	freshView := func() *streamcard.ShardedView {
		for _, u := range touch {
			s.Observe(u, rng.Uint64())
		}
		return s.Snapshot()
	}

	// Bit-identity spot check before timing anything.
	{
		v := freshView()
		if !reflect.DeepEqual(v.TopK(analyticsK), streamcard.TopKSerial(serialView{v}, analyticsK)) {
			return nil, nil, fmt.Errorf("analytics: parallel top-k diverges from the serial reference")
		}
	}

	lat := map[string][]float64{}
	row := func(kind string, fn func(v *streamcard.ShardedView)) {
		for i := 0; i < analyticsIters; i++ {
			v := freshView()
			t0 := time.Now()
			fn(v)
			lat[kind] = append(lat[kind], float64(time.Since(t0).Microseconds()))
		}
	}
	row("topk_serial", func(v *streamcard.ShardedView) { streamcard.TopKSerial(serialView{v}, analyticsK) })
	row("topk", func(v *streamcard.ShardedView) { v.TopK(analyticsK) })
	row("users_serial", func(v *streamcard.ShardedView) { serialView{v}.RangeUsers(func(uint64, float64) {}) })
	row("users", func(v *streamcard.ShardedView) { v.RangeUsers(func(uint64, float64) {}) })
	row("numusers_serial", func(v *streamcard.ShardedView) { serialView{v}.NumUsers() })
	row("numusers", func(v *streamcard.ShardedView) { v.NumUsers() })
	row("merged_total", func(v *streamcard.ShardedView) { v.TotalDistinctMerged() })

	// Cached repeats: one fresh view, one warming query, then timed repeats
	// that must re-fold nothing.
	v := freshView()
	_ = v.TopK(analyticsK)
	computes := fst.Computes()
	for i := 0; i < analyticsIters; i++ {
		t0 := time.Now()
		_ = v.TopK(analyticsK)
		lat["topk_cached"] = append(lat["topk_cached"], float64(time.Since(t0).Microseconds()))
	}
	if got := fst.Computes(); got != computes {
		return nil, nil, fmt.Errorf("analytics: repeated top-k on an unchanged view re-folded (computes %d -> %d)", computes, got)
	}
	return lat, &fst, nil
}

// makeBatches pre-generates a bursty stream sliced into ObserveBatch-sized
// chunks, so the measured phases do no generation work.
func makeBatches(edges, batch, users int, seed uint64) [][]streamcard.Edge {
	rng := hashing.NewRNG(seed)
	all := make([]streamcard.Edge, 0, edges)
	for len(all) < edges {
		u := uint64(rng.Intn(users) + 1)
		run := rng.Intn(8) + 1
		for r := 0; r < run && len(all) < edges; r++ {
			all = append(all, streamcard.Edge{User: u, Item: rng.Uint64()})
		}
	}
	var batches [][]streamcard.Edge
	for i := 0; i < len(all); i += batch {
		end := i + batch
		if end > len(all) {
			end = len(all)
		}
		batches = append(batches, all[i:end])
	}
	return batches
}

func warmup(s *streamcard.Sharded, batches [][]streamcard.Edge) {
	n := len(batches)
	if n > 16 {
		n = 16
	}
	for _, b := range batches[:n] {
		s.ObserveBatch(b)
	}
	_ = s.Snapshot()
	_ = s.Estimate(1)
}

// phaseConfig carries the shared knobs of both measured phases.
type phaseConfig struct {
	mbits, shards, gens, users int
	ingesters, qps, rotatems   int
	seconds                    float64
}

// Heavy-query pacing: real monitors scrape aggregates on wall-clock
// schedules, not per point query, so the contended phase issues them the
// same way — one ops querier fires top-k, totals, and user counts at these
// periods while the rest of the fleet runs paced point estimates. The
// periods are chosen so a default 3 s phase collects ≥ minSamples of each
// gated kind (earlier 1–2 s periods yielded 2–3 samples, which made the
// reported p95/p99 pure noise). The merged total — a register-level fold
// over every generation, milliseconds by design — keeps a slow scrape-rate
// cadence; its handful of samples is exactly what the minSamples
// suppression exists for.
const (
	topkEvery        = 150 * time.Millisecond
	totalEvery       = 120 * time.Millisecond
	numusersEvery    = 130 * time.Millisecond
	mergedTotalEvery = 1 * time.Second
)

// runPhase cycles the batch pool through the ingester goroutines for the
// configured duration (the window keeps every cycle write-heavy: each
// rotation opens a fresh generation that re-absorbs recurring pairs), with
// an optional rotation ticker and an optional query fleet, and returns the
// ingest throughput plus the query latencies by kind.
func runPhase(cfg phaseConfig, batches [][]streamcard.Edge, queriers int) (edgesPerSec float64, lat map[string][]float64, queries int) {
	s := buildStack(cfg.mbits, cfg.shards, cfg.gens)

	var done atomic.Bool
	var stopRot chan struct{}
	var rotWG sync.WaitGroup
	if cfg.rotatems > 0 {
		stopRot = make(chan struct{})
		rotWG.Add(1)
		go func() {
			defer rotWG.Done()
			t := time.NewTicker(time.Duration(cfg.rotatems) * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.Rotate()
				case <-stopRot:
					return
				}
			}
		}()
	}

	lat = map[string][]float64{}
	var latMu sync.Mutex
	merge := func(local map[string][]float64) {
		latMu.Lock()
		for k, v := range local {
			lat[k] = append(lat[k], v...)
		}
		latMu.Unlock()
	}
	timed := func(local map[string][]float64, kind string, fn func()) {
		t0 := time.Now()
		fn()
		local[kind] = append(local[kind], float64(time.Since(t0).Microseconds()))
	}

	var queryWG sync.WaitGroup
	if queriers > 0 {
		// Querier 0 is the ops querier: the heavy aggregate kinds on their
		// wall-clock schedules.
		queryWG.Add(1)
		go func() {
			defer queryWG.Done()
			local := map[string][]float64{}
			var lastTopk, lastTotal, lastNum, lastMerged time.Time
			for !done.Load() {
				now := time.Now()
				switch {
				case now.Sub(lastTopk) >= topkEvery:
					lastTopk = now
					timed(local, "topk", func() { _ = streamcard.TopK(s.Snapshot(), 10) })
				case now.Sub(lastTotal) >= totalEvery:
					lastTotal = now
					// The anytime total: what a plain GET /total serves.
					timed(local, "total", func() { _ = s.Snapshot().TotalDistinct() })
				case now.Sub(lastNum) >= numusersEvery:
					lastNum = now
					timed(local, "numusers", func() { _ = s.NumUsers() })
				case now.Sub(lastMerged) >= mergedTotalEvery:
					lastMerged = now
					// The union reading (/total?method=merged); falls back
					// to the sum when a rotation drifts epochs mid-merge.
					timed(local, "merged_total", func() {
						v := s.Snapshot()
						if _, err := v.TotalDistinctMerged(); err != nil {
							_ = v.TotalDistinct()
						}
					})
				default:
					time.Sleep(5 * time.Millisecond)
				}
			}
			merge(local)
		}()
	}
	estimators := queriers - 1
	var interval time.Duration
	if cfg.qps > 0 && estimators > 0 {
		interval = time.Duration(float64(estimators) / float64(cfg.qps) * float64(time.Second))
	}
	for q := 0; q < estimators; q++ {
		queryWG.Add(1)
		go func(seed uint64) {
			defer queryWG.Done()
			rng := hashing.NewRNG(seed)
			local := map[string][]float64{}
			for !done.Load() {
				timed(local, "estimate", func() { _ = s.Estimate(uint64(rng.Intn(cfg.users) + 1)) })
				if interval > 0 {
					time.Sleep(interval)
				}
			}
			merge(local)
		}(uint64(1000 + q))
	}
	// Give the query fleet a beat to spin up before timing ingest.
	if queriers > 0 {
		time.Sleep(10 * time.Millisecond)
	}

	var next atomic.Int64
	var ingested atomic.Int64
	var ingestWG sync.WaitGroup
	deadline := time.Now().Add(time.Duration(cfg.seconds * float64(time.Second)))
	start := time.Now()
	for w := 0; w < cfg.ingesters; w++ {
		ingestWG.Add(1)
		go func() {
			defer ingestWG.Done()
			for time.Now().Before(deadline) {
				b := batches[int(next.Add(1)-1)%len(batches)]
				s.ObserveBatch(b)
				ingested.Add(int64(len(b)))
			}
		}()
	}
	ingestWG.Wait()
	elapsed := time.Since(start).Seconds()

	done.Store(true)
	queryWG.Wait()
	if stopRot != nil {
		close(stopRot)
		rotWG.Wait()
	}
	for _, v := range lat {
		queries += len(v)
	}
	return float64(ingested.Load()) / elapsed, lat, queries
}

// snapshotPublishBytes measures the allocation cost of assembling a view:
// a single-user write dirties the stack, then the Snapshot call — and only
// it — is bracketed by allocation readings. With writer-side publication
// armed (the warm-up Snapshot in round one arms it), the write itself
// publishes the shard's fresh snapshot and pays the lazy copy-on-write
// detach, both inside the write and outside the bracket — so the bracket
// isolates exactly what a reader pays, which the cost model says is
// assembly of already-published pointers: small and size-independent.
func snapshotPublishBytes(mbits, shards, gens int) (float64, error) {
	s := buildStack(mbits, shards, gens)
	for _, b := range makeBatches(200_000, 8192, 100_000, 3) {
		s.ObserveBatch(b)
	}
	const rounds = 64
	var ms1, ms2 runtime.MemStats
	var total uint64
	for i := 0; i < rounds; i++ {
		s.Observe(uint64(i%1000+1), uint64(i)|1<<40)
		runtime.ReadMemStats(&ms1)
		v := s.Snapshot()
		runtime.ReadMemStats(&ms2)
		if v == nil {
			return 0, fmt.Errorf("stack is not snapshottable")
		}
		total += ms2.TotalAlloc - ms1.TotalAlloc
	}
	return float64(total) / rounds, nil
}

// minSamples is the floor below which summarize refuses to extract
// percentiles: an index into a 2-sample sorted slice is not a p99, and the
// gates refuse to certify kinds that stayed under the floor.
const minSamples = 16

// summarize sorts each kind's latencies and extracts percentiles, marking
// kinds with fewer than minSamples observations instead of reporting
// meaningless quantiles.
func summarize(lat map[string][]float64) map[string]LatencySummary {
	out := map[string]LatencySummary{}
	for kind, v := range lat {
		if len(v) == 0 {
			continue
		}
		if len(v) < minSamples {
			out[kind] = LatencySummary{Count: len(v), TooFewSamples: true}
			continue
		}
		sort.Float64s(v)
		pct := func(p float64) float64 {
			i := int(p * float64(len(v)-1))
			return v[i]
		}
		out[kind] = LatencySummary{
			Count: len(v),
			P50Us: pct(0.50),
			P95Us: pct(0.95),
			P99Us: pct(0.99),
		}
	}
	return out
}
