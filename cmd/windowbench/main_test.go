package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWindowBenchEmitsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_window.json")
	var out bytes.Buffer
	if err := run([]string{"-edges", "20000", "-mbits", "65536", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if res.Edges != 20000 || res.Generations != 4 {
		t.Fatalf("config not recorded: %+v", res)
	}
	if res.PlainEdgesPerSec <= 0 || res.WindowEdgesPerSec <= 0 || res.NsPerRotation <= 0 {
		t.Fatalf("non-positive measurements: %+v", res)
	}
}

func TestWindowBenchStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-edges", "5000", "-mbits", "65536", "-out", "-"}, &out); err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out.String())
	}
}

func TestWindowBenchRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-edges", "0"}, &out); err == nil {
		t.Fatal("edges=0 accepted")
	}
	if err := run([]string{"-gens", "1"}, &out); err == nil {
		t.Fatal("gens=1 accepted")
	}
}
