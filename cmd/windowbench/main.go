// Command windowbench measures what the time layer costs: ingest throughput
// of a k-generation windowed FreeRS versus the bare estimator on the same
// bursty stream, and the price of one rotation (allocating and installing a
// fresh generation). It writes the results as JSON — CI runs it and uploads
// BENCH_window.json so the windowing perf trajectory is tracked per commit.
//
//	go run ./cmd/windowbench -edges 2000000 -out BENCH_window.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	streamcard "repro"
	"repro/internal/hashing"
)

// Result is the JSON document windowbench emits.
type Result struct {
	Edges             int     `json:"edges"`
	MemoryBits        int     `json:"memory_bits"`
	Generations       int     `json:"generations"`
	EpochEdges        int     `json:"epoch_edges"`
	PlainEdgesPerSec  float64 `json:"plain_edges_per_sec"`
	WindowEdgesPerSec float64 `json:"windowed_edges_per_sec"`
	WindowOverheadPct float64 `json:"windowed_overhead_pct"`
	Rotations         int     `json:"rotations"`
	NsPerRotation     float64 `json:"ns_per_rotation"`
	PlainNsPerEdge    float64 `json:"plain_ns_per_edge"`
	WindowedNsPerEdge float64 `json:"windowed_ns_per_edge"`
	BatchSize         int     `json:"batch_size"`
	// Host parallelism, so stored BENCH files are comparable across runners.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// Snapshot publication on the loaded window: nanoseconds and allocated
	// bytes per Windowed.Snapshot call taken right after a write (the
	// stale-view worst case). Both must stay small and independent of the
	// sketch size — the copy-on-write read-path contract; cmd/querybench
	// asserts the size-independence explicitly.
	NsPerSnapshot    float64 `json:"ns_per_snapshot"`
	BytesPerSnapshot float64 `json:"bytes_per_snapshot"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "windowbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("windowbench", flag.ContinueOnError)
	var (
		edges = fs.Int("edges", 2_000_000, "edges to ingest per variant")
		mbits = fs.Int("mbits", 1<<22, "sketch memory in bits (per generation)")
		gens  = fs.Int("gens", 4, "window generations k")
		epoch = fs.Int("epoch", 0, "edges per epoch (0 = edges/16)")
		batch = fs.Int("batch", 1024, "ObserveBatch chunk size")
		out   = fs.String("out", "BENCH_window.json", "output file (- = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *edges <= 0 || *gens < 2 || *batch <= 0 {
		return fmt.Errorf("need edges > 0, gens >= 2, batch > 0")
	}
	if *epoch == 0 {
		*epoch = *edges / 16
		if *epoch == 0 {
			*epoch = 1
		}
	}

	stream := burstEdges(*edges, 1)
	build := func() streamcard.Estimator { return streamcard.NewFreeRS(*mbits) }

	// Warm up code paths and the edge slice before timing anything.
	warm := stream
	if len(warm) > 100_000 {
		warm = warm[:100_000]
	}
	ingest(build(), warm, *batch)

	plainSec := ingest(build(), stream, *batch)
	w := streamcard.NewWindowed(build,
		streamcard.WithGenerations(*gens),
		streamcard.WithRotateEveryEdges(uint64(*epoch)))
	windowSec := ingest(w, stream, *batch)

	// Per-rotation cost on a loaded window: allocate + install a fresh
	// generation, retire the oldest.
	const rotations = 32
	start := time.Now()
	for i := 0; i < rotations; i++ {
		w.Rotate()
	}
	rotNs := float64(time.Since(start).Nanoseconds()) / rotations

	// Snapshot publication cost on the loaded window, write-staled each
	// round so every call rebuilds and republishes the frozen view.
	const snaps = 64
	var ms1, ms2 runtime.MemStats
	var snapNs, snapBytes float64
	for i := 0; i < snaps; i++ {
		w.Observe(uint64(i%977+1), uint64(i)|1<<40)
		runtime.ReadMemStats(&ms1)
		t0 := time.Now()
		v := w.Snapshot()
		dt := time.Since(t0)
		runtime.ReadMemStats(&ms2)
		if v == nil {
			return fmt.Errorf("windowed FreeRS must be snapshottable")
		}
		snapNs += float64(dt.Nanoseconds())
		snapBytes += float64(ms2.TotalAlloc - ms1.TotalAlloc)
	}

	n := float64(*edges)
	res := Result{
		Edges:             *edges,
		MemoryBits:        *mbits,
		Generations:       *gens,
		EpochEdges:        *epoch,
		PlainEdgesPerSec:  n / plainSec,
		WindowEdgesPerSec: n / windowSec,
		WindowOverheadPct: (windowSec/plainSec - 1) * 100,
		Rotations:         rotations,
		NsPerRotation:     rotNs,
		PlainNsPerEdge:    plainSec / n * 1e9,
		WindowedNsPerEdge: windowSec / n * 1e9,
		BatchSize:         *batch,
		NumCPU:            runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NsPerSnapshot:     snapNs / snaps,
		BytesPerSnapshot:  snapBytes / snaps,
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "windowbench: plain %.1fM edges/s, windowed(k=%d) %.1fM edges/s (%.1f%% overhead), %.0f ns/rotation, %.0f ns + %.0f B/snapshot -> %s\n",
		res.PlainEdgesPerSec/1e6, *gens, res.WindowEdgesPerSec/1e6, res.WindowOverheadPct, rotNs,
		res.NsPerSnapshot, res.BytesPerSnapshot, *out)
	return nil
}

// ingest feeds the stream in chunks and returns the elapsed seconds.
func ingest(est streamcard.Estimator, edges []streamcard.Edge, chunk int) float64 {
	start := time.Now()
	for i := 0; i < len(edges); i += chunk {
		end := i + chunk
		if end > len(edges) {
			end = len(edges)
		}
		est.ObserveBatch(edges[i:end])
	}
	return time.Since(start).Seconds()
}

// burstEdges builds a bursty stream: users emit runs of 1..24 consecutive
// edges, the arrival shape the batch fast path amortizes over.
func burstEdges(n int, seed uint64) []streamcard.Edge {
	rng := hashing.NewRNG(seed)
	edges := make([]streamcard.Edge, 0, n)
	for len(edges) < n {
		u := uint64(rng.Intn(100000) + 1)
		run := rng.Intn(24) + 1
		for r := 0; r < run && len(edges) < n; r++ {
			edges = append(edges, streamcard.Edge{User: u, Item: rng.Uint64()})
		}
	}
	return edges
}
