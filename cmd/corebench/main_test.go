package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestCorebenchEndToEnd runs a scaled-down bench and validates the JSON
// document: both methods bit-identical to their map twins, every workload
// user present, and the memory/throughput fields populated sanely. The
// headline ≥2x bytes-per-user claim is asserted only at the full 1M-user
// scale (the CI run), not here — at small scale both stores sit at
// different points of their growth sawtooths.
func TestCorebenchEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_core.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-edges", "600000", "-users", "100000", "-mbits", "1048576", "-out", out,
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatalf("BENCH_core.json is not valid JSON: %v", err)
	}
	if res.Edges != 600000 || res.Users != 100000 {
		t.Fatalf("parameters not recorded: %+v", res)
	}
	for name, m := range map[string]MethodResult{"freebs": res.FreeBS, "freers": res.FreeRS} {
		if !m.BitIdenticalToMap {
			t.Fatalf("%s: table-backed estimator diverged from the map twin", name)
		}
		// Not every user earns a credit — a user whose few pairs all land
		// on already-set bits (or raise no register: FreeRS credits less
		// often on a loaded array) keeps estimate 0 — but the bulk must.
		if m.NumUsers < 85000 || m.NumUsers > 100000 {
			t.Fatalf("%s: %d users credited of 100000", name, m.NumUsers)
		}
		if m.TableEdgesPerSec <= 0 || m.MapEdgesPerSec <= 0 {
			t.Fatalf("%s: missing throughput: %+v", name, m)
		}
		if m.TableBytesPerUser <= 0 || m.MapBytesPerUser <= 0 {
			t.Fatalf("%s: missing memory figures: %+v", name, m)
		}
		// The exact accounting and the measured heap must roughly agree —
		// the table IS its backing arrays.
		if m.TableBytesPerUser < 0.5*m.TableBytesPerUserExact ||
			m.TableBytesPerUser > 2*m.TableBytesPerUserExact {
			t.Fatalf("%s: measured %v B/user vs exact %v", name,
				m.TableBytesPerUser, m.TableBytesPerUserExact)
		}
		// Loose sanity on the headline ratio at this small scale.
		if m.BytesPerUserReductionX < 0.8 {
			t.Fatalf("%s: bytes/user reduction %vx — the flat table lost to the map",
				name, m.BytesPerUserReductionX)
		}
	}
}

// TestCoverageWorkload pins the workload generator's contract: exactly the
// requested distinct users, exactly the requested edge count, deterministic
// in the seed.
func TestCoverageWorkload(t *testing.T) {
	edges := coverageBurstEdges(50000, 10000, 3)
	if len(edges) != 50000 {
		t.Fatalf("%d edges, want 50000", len(edges))
	}
	users := make(map[uint64]bool)
	for _, e := range edges {
		users[e.User] = true
		if e.User == 0 || e.User > 10000 {
			t.Fatalf("user %d out of range", e.User)
		}
	}
	if len(users) != 10000 {
		t.Fatalf("%d distinct users, want 10000", len(users))
	}
	again := coverageBurstEdges(50000, 10000, 3)
	for i := range edges {
		if edges[i] != again[i] {
			t.Fatal("workload not deterministic")
		}
	}
	// The tight-budget extreme: edges == users still covers every user
	// (bursts are capped so nobody is starved of their first edge).
	tight := coverageBurstEdges(5000, 5000, 11)
	seen := make(map[uint64]bool)
	for _, e := range tight {
		seen[e.User] = true
	}
	if len(tight) != 5000 || len(seen) != 5000 {
		t.Fatalf("tight budget: %d edges, %d distinct users, want 5000/5000", len(tight), len(seen))
	}
}

// TestMapTwinMatchesCore is the cheap direct check that the in-bench map
// twins replicate the core semantics (the full bench asserts it too, but
// this pins it at test speed with a different shape).
func TestMapTwinMatchesCore(t *testing.T) {
	edges := coverageBurstEdges(30000, 2000, 9)
	for _, method := range []string{"freebs", "freers"} {
		tab := newCoreEstimator(method, 1<<16, 7)
		twin := newMapEstimator(method, 1<<16, 7)
		ingest(tab.observeBatch, edges, 512)
		ingest(twin.observeBatch, edges, 512)
		if !crossCheck(tab, twin) {
			t.Fatalf("%s: map twin diverged from core", method)
		}
	}
}

// TestRejectsBadFlags: the edges>=users precondition keeps the coverage
// pass honest.
func TestRejectsBadFlags(t *testing.T) {
	var sink bytes.Buffer
	if err := run([]string{"-edges", "100", "-users", "200", "-out", "-"}, &sink); err == nil {
		t.Fatal("edges < users accepted")
	}
}

var _ = core.DefaultRegisterWidth // keep the import if checks above change
