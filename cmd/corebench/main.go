// Command corebench measures what the per-user estimate store costs at the
// ROADMAP's "millions of users" scale: ingest throughput, resident bytes per
// user, allocation counts, and GC pause time for FreeBS and FreeRS on a
// ≥1M-user bursty workload — each against a twin that keeps its estimates in
// the map[uint64]float64 the flat table (internal/usertab) replaced. The map
// twins replicate the sketch update rule operation for operation, so the
// comparison is store-vs-store on bit-identical work, and the bench asserts
// that bit-identity before reporting.
//
// Each leg is timed ingestReps times, legs interleaved and alternating which
// goes first, and the best rep of each leg is what the ratio reports. A
// single-shot ratio on a shared one-or-two-core runner swings tens of
// percent with GC timing and scheduler luck: an early BENCH_core.json
// shipped a 0.59x FreeRS "regression" that a CPU profile traced not to the
// store (the per-run Ref/write-back is cheaper than the map twin's
// access+assign) but to the second-timed leg absorbing the GC cycles that
// mark the first leg's still-live multi-megabyte map — best-of-interleaved
// reps is the same treatment querybench's WAL phase uses for its ratios.
//
// It writes the results as JSON — CI runs it and uploads BENCH_core.json
// alongside BENCH_window.json, so the core memory/throughput trajectory is
// tracked per commit.
//
//	go run ./cmd/corebench -edges 16000000 -users 1000000 -out BENCH_core.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/hashing"
	"repro/internal/regarray"
	"repro/internal/stream"
)

// MethodResult is the per-method section of the JSON document.
type MethodResult struct {
	NumUsers int `json:"num_users"`

	TableEdgesPerSec float64 `json:"table_edges_per_sec"`
	MapEdgesPerSec   float64 `json:"map_edges_per_sec"`
	IngestSpeedupX   float64 `json:"ingest_speedup_x"` // table vs map; >= 1 means no regression

	TableBytesPerUser      float64 `json:"table_bytes_per_user"`       // measured live heap
	TableBytesPerUserExact float64 `json:"table_bytes_per_user_exact"` // table backing arrays (PerUserBytes)
	MapBytesPerUser        float64 `json:"map_bytes_per_user"`         // measured live heap
	BytesPerUserReductionX float64 `json:"bytes_per_user_reduction_x"`

	TableMallocsPerUser float64 `json:"table_mallocs_per_user"`
	MapMallocsPerUser   float64 `json:"map_mallocs_per_user"`
	TableGCPauseMs      float64 `json:"table_gc_pause_ms"`
	MapGCPauseMs        float64 `json:"map_gc_pause_ms"`
	TableNumGC          uint32  `json:"table_num_gc"`
	MapNumGC            uint32  `json:"map_num_gc"`

	// SnapshotBytesPerCall is what one copy-on-write Snapshot of the loaded
	// estimator allocates — a few hundred bytes at any user count, since a
	// snapshot shares the arrays instead of copying them. The read path of
	// the serving stack leans on exactly this number staying flat.
	SnapshotBytesPerCall float64 `json:"snapshot_bytes_per_call"`

	BitIdenticalToMap bool `json:"bit_identical_to_map"`
}

// Result is the JSON document corebench emits.
type Result struct {
	Edges      int `json:"edges"`
	Users      int `json:"users"`
	MemoryBits int `json:"memory_bits"`
	BatchSize  int `json:"batch_size"`
	// Host parallelism, so stored BENCH files are comparable across runners.
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	FreeBS     MethodResult `json:"freebs"`
	FreeRS     MethodResult `json:"freers"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "corebench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("corebench", flag.ContinueOnError)
	var (
		edges = fs.Int("edges", 16_000_000, "edges to ingest per variant")
		users = fs.Int("users", 1_000_000, "distinct users in the workload (every one appears)")
		mbits = fs.Int("mbits", 1<<23, "sketch memory in bits")
		batch = fs.Int("batch", 1024, "ObserveBatch chunk size")
		seed  = fs.Uint64("seed", 1, "workload and sketch seed")
		out   = fs.String("out", "BENCH_core.json", "output file (- = stdout)")
		prof  = fs.String("cpuprofile", "", "write a CPU profile of the measured ingest runs to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *edges <= 0 || *users <= 0 || *batch <= 0 {
		return fmt.Errorf("need edges, users, batch > 0")
	}
	if *edges < *users {
		return fmt.Errorf("need edges >= users (%d < %d): every user must appear", *edges, *users)
	}

	stream := coverageBurstEdges(*edges, *users, *seed)
	res := Result{Edges: *edges, Users: *users, MemoryBits: *mbits, BatchSize: *batch,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	if *prof != "" {
		pf, err := os.Create(*prof)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var err error
	if res.FreeBS, err = benchMethod("freebs", stream, *mbits, *seed, *batch); err != nil {
		return err
	}
	if res.FreeRS, err = benchMethod("freers", stream, *mbits, *seed, *batch); err != nil {
		return err
	}

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	for name, m := range map[string]MethodResult{"FreeBS": res.FreeBS, "FreeRS": res.FreeRS} {
		fmt.Fprintf(stdout,
			"corebench: %s %d users: %.1f B/user (map %.1f, %.2fx less), %.1fM edges/s (map %.1fM), gc pause %.1fms (map %.1fms), %.0f B/snapshot, bit-identical=%v\n",
			name, m.NumUsers, m.TableBytesPerUser, m.MapBytesPerUser, m.BytesPerUserReductionX,
			m.TableEdgesPerSec/1e6, m.MapEdgesPerSec/1e6, m.TableGCPauseMs, m.MapGCPauseMs,
			m.SnapshotBytesPerCall, m.BitIdenticalToMap)
	}
	fmt.Fprintf(stdout, "corebench: wrote %s\n", *out)
	return nil
}

// ingestReps is how many times each ingest leg is timed; the best rep per
// leg feeds the reported throughputs and the speedup ratio.
const ingestReps = 3

// benchMethod runs the map twin and the table-backed estimator over the
// same stream and cross-checks them entry for entry.
func benchMethod(method string, edges []core.Edge, mbits int, seed uint64, batch int) (MethodResult, error) {
	// Warm code paths and fault in the edge slice before any timing.
	warm := edges
	if len(warm) > 200_000 {
		warm = warm[:200_000]
	}
	warmTab := newCoreEstimator(method, mbits, seed)
	warmTab.observeBatch(warm)
	warmMap := newMapEstimator(method, mbits, seed)
	warmMap.observeBatch(warm)
	warmTab, warmMap = nil, nil

	// Interleaved best-of-N (see the package comment): fresh estimators per
	// rep, alternating which leg runs first so each leg gets at least one
	// rep where the other twin's structures are not yet live. Ingest is
	// deterministic, so every rep ends in the identical state and keeping
	// the last rep's estimators for the cross-check loses nothing.
	var (
		mapEst, tabEst     estimator
		mapStats, tabStats runStats
	)
	runMap := func() {
		mapEst = newMapEstimator(method, mbits, seed)
		s := measure(func() { ingest(mapEst.observeBatch, edges, batch) })
		if mapStats.seconds == 0 || s.seconds < mapStats.seconds {
			mapStats = s
		}
	}
	runTab := func() {
		tabEst = newCoreEstimator(method, mbits, seed)
		s := measure(func() { ingest(tabEst.observeBatch, edges, batch) })
		if tabStats.seconds == 0 || s.seconds < tabStats.seconds {
			tabStats = s
		}
	}
	for r := 0; r < ingestReps; r++ {
		if r%2 == 0 {
			runMap()
			runTab()
		} else {
			runTab()
			runMap()
		}
	}

	identical := crossCheck(tabEst, mapEst)
	if !identical {
		// A divergence means the flat table changed estimator semantics —
		// numbers for a broken estimator must fail the run (and CI), not
		// ship in the JSON as a footnote.
		return MethodResult{}, fmt.Errorf("%s: table-backed estimator diverged from the map twin", method)
	}
	numUsers := tabEst.numUsers()
	if numUsers == 0 {
		return MethodResult{}, fmt.Errorf("%s: workload produced no users", method)
	}
	u := float64(numUsers)
	n := float64(len(edges))
	// Post-GC heap deltas can read 0 on tiny runs or under GC noise; fall
	// back to the table's exact accounting so the ratio stays a finite,
	// JSON-encodable number (json.Marshal rejects Inf/NaN outright).
	tabBytes := float64(tabStats.heapDelta)
	if tabBytes == 0 {
		tabBytes = float64(tabEst.perUserBytes())
	}
	reduction := 0.0
	if tabBytes > 0 {
		reduction = float64(mapStats.heapDelta) / tabBytes
	}
	res := MethodResult{
		NumUsers:               numUsers,
		TableEdgesPerSec:       n / tabStats.seconds,
		MapEdgesPerSec:         n / mapStats.seconds,
		IngestSpeedupX:         mapStats.seconds / tabStats.seconds,
		TableBytesPerUser:      tabBytes / u,
		TableBytesPerUserExact: float64(tabEst.perUserBytes()) / u,
		MapBytesPerUser:        float64(mapStats.heapDelta) / u,
		BytesPerUserReductionX: reduction,
		TableMallocsPerUser:    float64(tabStats.mallocs) / u,
		MapMallocsPerUser:      float64(mapStats.mallocs) / u,
		TableGCPauseMs:         float64(tabStats.pauseNs) / 1e6,
		MapGCPauseMs:           float64(mapStats.pauseNs) / 1e6,
		TableNumGC:             tabStats.numGC,
		MapNumGC:               mapStats.numGC,
		BitIdenticalToMap:      identical,
	}
	res.SnapshotBytesPerCall, _ = tabEst.snapshotBytes()
	runtime.KeepAlive(mapEst)
	runtime.KeepAlive(tabEst)
	return res, nil
}

// runStats captures one measured ingest run.
type runStats struct {
	seconds   float64
	heapDelta int64 // live-heap growth across the run, after a full GC
	mallocs   uint64
	pauseNs   uint64
	numGC     uint32
}

// measure times fn between two garbage-collected heap readings, so
// heapDelta is the live bytes fn's data structures retain (transient
// garbage — rehash churn, map growth — shows up in mallocs and GC pauses,
// not in the delta).
func measure(fn func()) runStats {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	seconds := time.Since(start).Seconds()
	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if delta < 0 {
		delta = 0
	}
	return runStats{
		seconds:   seconds,
		heapDelta: delta,
		mallocs:   after.Mallocs - before.Mallocs,
		pauseNs:   after.PauseTotalNs - before.PauseTotalNs,
		numGC:     after.NumGC - before.NumGC,
	}
}

func ingest(observeBatch func([]core.Edge), edges []core.Edge, chunk int) {
	for i := 0; i < len(edges); i += chunk {
		end := i + chunk
		if end > len(edges) {
			end = len(edges)
		}
		observeBatch(edges[i:end])
	}
}

// coverageBurstEdges builds a bursty stream over exactly `users` distinct
// users: a first pass visits every user once in shuffled order (a short run
// each), then random bursts fill the remaining budget — so the distinct-user
// count is the workload parameter, not a side effect of sampling.
func coverageBurstEdges(n, users int, seed uint64) []core.Edge {
	rng := hashing.NewRNG(seed)
	edges := make([]core.Edge, 0, n)
	perm := rng.Perm(users)
	for i, u := range perm {
		run := rng.Intn(3) + 1
		// Never let a burst starve the users still waiting for their first
		// edge: cap it so one edge per remaining user always fits. With a
		// roomy budget (the n >= users precondition plus slack) the cap
		// never engages and the RNG stream is untouched.
		if room := n - len(edges) - (users - i - 1); run > room {
			run = room
		}
		for r := 0; r < run; r++ {
			edges = append(edges, core.Edge{User: uint64(u) + 1, Item: rng.Uint64()})
		}
	}
	for len(edges) < n {
		u := uint64(rng.Intn(users) + 1)
		run := rng.Intn(16) + 1
		for r := 0; r < run && len(edges) < n; r++ {
			edges = append(edges, core.Edge{User: u, Item: rng.Uint64()})
		}
	}
	return edges
}

// estimator is the narrow surface both store variants expose to the bench.
type estimator interface {
	observeBatch([]core.Edge)
	numUsers() int
	estimate(user uint64) float64
	total() float64
	perUserBytes() int64
	rangeUsers(fn func(u uint64, e float64))
	// snapshotBytes returns the bytes one Snapshot call allocates on the
	// loaded estimator (0, false for stores without snapshot support — the
	// map twins). At 1M users this must stay a few hundred bytes: snapshots
	// are copy-on-write forks, never table copies.
	snapshotBytes() (float64, bool)
}

// snapSink keeps the measured snapshots heap-allocated: an unused Snapshot
// result would be stack-allocated away and the measurement would read 0.
var snapSink any

// measureSnapshotBytes brackets repeated Snapshot calls with allocation
// readings. No writes interleave, so the measurement is pure publication
// cost (and the estimator's logical state is untouched).
func measureSnapshotBytes(snap func() any) float64 {
	const rounds = 32
	var ms1, ms2 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	for i := 0; i < rounds; i++ {
		snapSink = snap()
	}
	runtime.ReadMemStats(&ms2)
	return float64(ms2.TotalAlloc-ms1.TotalAlloc) / rounds
}

// ---- table-backed (the real core estimators) ----

type coreBS struct{ f *core.FreeBS }

func (c coreBS) observeBatch(e []core.Edge)          { c.f.ObserveBatch(e) }
func (c coreBS) numUsers() int                       { return c.f.NumUsers() }
func (c coreBS) estimate(u uint64) float64           { return c.f.Estimate(u) }
func (c coreBS) total() float64                      { return c.f.TotalDistinct() }
func (c coreBS) perUserBytes() int64                 { return c.f.PerUserBytes() }
func (c coreBS) rangeUsers(fn func(uint64, float64)) { c.f.RangeUsers(fn) }
func (c coreBS) snapshotBytes() (float64, bool) {
	return measureSnapshotBytes(func() any { return c.f.Snapshot() }), true
}

type coreRS struct{ f *core.FreeRS }

func (c coreRS) observeBatch(e []core.Edge)          { c.f.ObserveBatch(e) }
func (c coreRS) numUsers() int                       { return c.f.NumUsers() }
func (c coreRS) estimate(u uint64) float64           { return c.f.Estimate(u) }
func (c coreRS) total() float64                      { return c.f.TotalDistinct() }
func (c coreRS) perUserBytes() int64                 { return c.f.PerUserBytes() }
func (c coreRS) rangeUsers(fn func(uint64, float64)) { c.f.RangeUsers(fn) }
func (c coreRS) snapshotBytes() (float64, bool) {
	return measureSnapshotBytes(func() any { return c.f.Snapshot() }), true
}

func newCoreEstimator(method string, mbits int, seed uint64) estimator {
	if method == "freebs" {
		return coreBS{core.NewFreeBS(mbits, seed)}
	}
	return coreRS{core.NewFreeRS(mbits/core.DefaultRegisterWidth, seed)}
}

// ---- map-backed twins ----
//
// These replicate the core update rules (the pre-update q of Theorems 1 and
// 2, the per-run hash-prefix and estimate hoisting of ObserveBatch) with the
// per-user store the seed implementation used: a plain Go map. The sketch
// arrays and hash seeds are derived exactly as core derives them, so every
// credit is issued at the same instant with the same value and the twins
// must end bit-identical to the table-backed estimators — crossCheck fails
// the bench otherwise.

// Seed-mixing constants, as in core.NewFreeBS / core.NewFreeRS.
const (
	bsSeedMix     = 0x6a09e667f3bcc908
	rsSeedIdxMix  = 0xbb67ae8584caa73b
	rsSeedRankMix = 0x3c6ef372fe94f82b
)

type mapBS struct {
	bits  *bitarray.BitArray
	seed  uint64
	est   map[uint64]float64
	sum   float64
	edges uint64
}

func (m *mapBS) observeBatch(edges []core.Edge) {
	m.edges += uint64(len(edges))
	size := m.bits.Size()
	stream.ForEachRun(edges, func(user uint64, run []core.Edge) {
		prefix := hashing.HashPairPrefix(user)
		e := m.est[user]
		credited := false
		for _, ed := range run {
			idx := hashing.UniformIndex(hashing.HashPairFinish(prefix, ed.Item, m.seed), size)
			m0 := m.bits.ZeroCount()
			if !m.bits.Set(idx) {
				continue
			}
			inc := float64(size) / float64(m0)
			e += inc
			m.sum += inc
			credited = true
		}
		if credited {
			m.est[user] = e
		}
	})
}

func (m *mapBS) numUsers() int                  { return len(m.est) }
func (m *mapBS) estimate(u uint64) float64      { return m.est[u] }
func (m *mapBS) total() float64                 { return m.sum }
func (m *mapBS) perUserBytes() int64            { return -1 } // opaque: that's the point
func (m *mapBS) snapshotBytes() (float64, bool) { return 0, false }
func (m *mapBS) rangeUsers(fn func(uint64, float64)) {
	for u, e := range m.est {
		fn(u, e)
	}
}

type mapRS struct {
	regs  *regarray.Array
	sIdx  uint64
	sRank uint64
	est   map[uint64]float64
	sum   float64
}

func (m *mapRS) observeBatch(edges []core.Edge) {
	size := m.regs.Size()
	maxVal := m.regs.MaxValue()
	stream.ForEachRun(edges, func(user uint64, run []core.Edge) {
		prefix := hashing.HashPairPrefix(user)
		e := m.est[user]
		credited := false
		for _, ed := range run {
			idx := hashing.UniformIndex(hashing.HashPairFinish(prefix, ed.Item, m.sIdx), size)
			rank := hashing.Rho(hashing.HashPairFinish(prefix, ed.Item, m.sRank), maxVal)
			q := m.regs.ChangeProbability()
			if _, changed := m.regs.UpdateMax(idx, rank); !changed {
				continue
			}
			inc := 1 / q
			e += inc
			m.sum += inc
			credited = true
		}
		if credited {
			m.est[user] = e
		}
	})
}

func (m *mapRS) numUsers() int                  { return len(m.est) }
func (m *mapRS) estimate(u uint64) float64      { return m.est[u] }
func (m *mapRS) total() float64                 { return m.sum }
func (m *mapRS) perUserBytes() int64            { return -1 }
func (m *mapRS) snapshotBytes() (float64, bool) { return 0, false }
func (m *mapRS) rangeUsers(fn func(uint64, float64)) {
	for u, e := range m.est {
		fn(u, e)
	}
}

func newMapEstimator(method string, mbits int, seed uint64) estimator {
	if method == "freebs" {
		return &mapBS{
			bits: bitarray.New(mbits),
			seed: hashing.Mix64(seed ^ bsSeedMix),
			est:  make(map[uint64]float64),
		}
	}
	return &mapRS{
		regs:  regarray.New(mbits/core.DefaultRegisterWidth, core.DefaultRegisterWidth),
		sIdx:  hashing.Mix64(seed ^ rsSeedIdxMix),
		sRank: hashing.Mix64(seed ^ rsSeedRankMix),
		est:   make(map[uint64]float64),
	}
}

// crossCheck verifies the two stores hold bit-identical estimator state:
// same user count, same total, same estimate for every user.
func crossCheck(a, b estimator) bool {
	if a.numUsers() != b.numUsers() || a.total() != b.total() {
		return false
	}
	ok := true
	b.rangeUsers(func(u uint64, e float64) {
		if a.estimate(u) != e {
			ok = false
		}
	})
	return ok
}
