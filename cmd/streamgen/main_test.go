package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exact"
	"repro/internal/stream"
)

func TestGenerateBinaryAndReplay(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.edges")
	var log bytes.Buffer
	err := run([]string{"-dataset", "chicago", "-scale", "0.001", "-out", out}, &log)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "users") {
		t.Fatalf("missing stats:\n%s", log.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := stream.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.NewTracker()
	if err := truth.ObserveStream(r); err != nil {
		t.Fatal(err)
	}
	if truth.NumUsers() < 1000 {
		t.Fatalf("replayed only %d users", truth.NumUsers())
	}
}

func TestGenerateCustomText(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.txt")
	var log bytes.Buffer
	err := run([]string{
		"-users", "100", "-maxcard", "50", "-totalcard", "500",
		"-out", out, "-text", "-seed", "9",
	}, &log)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	edges, err := stream.Collect(stream.NewTextReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) < 500 {
		t.Fatalf("only %d edges", len(edges))
	}
}

func TestErrors(t *testing.T) {
	var log bytes.Buffer
	if err := run([]string{"-dataset", "chicago"}, &log); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run([]string{"-out", "/tmp/x"}, &log); err == nil {
		t.Fatal("missing dataset/custom config accepted")
	}
	if err := run([]string{"-dataset", "nosuch", "-out", "/tmp/x"}, &log); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
