// Command streamgen materializes a synthetic graph stream — either one of
// the six Table I dataset analogues or a custom configuration — and writes
// it to a file in the binary edge format (or as "user item" text lines),
// printing the realized summary statistics.
//
// Usage:
//
//	streamgen -dataset orkut -scale 0.01 -out orkut.edges
//	streamgen -users 100000 -maxcard 5000 -totalcard 1000000 -out custom.edges -text
//
// The binary format is replayable by cmd/spreaderwatch and by
// stream.NewReader; the text format can be consumed by any tool.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/datagen"
	"repro/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "streamgen:", err)
		os.Exit(1)
	}
}

func run(args []string, log io.Writer) error {
	fs := flag.NewFlagSet("streamgen", flag.ContinueOnError)
	var (
		dataset   = fs.String("dataset", "", "paper dataset analogue (sanjose|chicago|twitter|flickr|orkut|livejournal)")
		scale     = fs.Float64("scale", 0.01, "scale factor for -dataset")
		users     = fs.Int("users", 0, "custom: number of users")
		maxcard   = fs.Int("maxcard", 0, "custom: maximum cardinality")
		totalcard = fs.Int("totalcard", 0, "custom: total cardinality")
		dup       = fs.Float64("dup", datagen.DefaultDuplicateRate, "duplicate-arrival Poisson rate")
		seed      = fs.Uint64("seed", 1, "generator seed")
		out       = fs.String("out", "", "output file (required)")
		text      = fs.Bool("text", false, "write text 'user item' lines instead of binary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var cfg datagen.Config
	switch {
	case *dataset != "":
		var err error
		cfg, err = datagen.PaperConfig(*dataset, *scale, *seed)
		if err != nil {
			return err
		}
		cfg.DuplicateRate = *dup
	case *users > 0 && *maxcard > 0 && *totalcard > 0:
		cfg = datagen.Config{
			Name: "custom", Users: *users, MaxCard: *maxcard,
			TotalCard: *totalcard, DuplicateRate: *dup, Seed: *seed,
		}
	default:
		return fmt.Errorf("need -dataset, or all of -users/-maxcard/-totalcard")
	}

	d := datagen.Generate(cfg)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if *text {
		err = stream.WriteText(f, d.Edges)
	} else {
		err = stream.Write(f, d.Edges)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(log, "dataset    %s\n", cfg.Name)
	fmt.Fprintf(log, "users      %d\n", d.NumUsers())
	fmt.Fprintf(log, "max card   %d\n", d.MaxCard())
	fmt.Fprintf(log, "total card %d\n", d.TotalCard())
	fmt.Fprintf(log, "arrivals   %d (duplicates included)\n", d.NumEdges())
	fmt.Fprintf(log, "alpha      %.4f\n", d.Alpha)
	fmt.Fprintf(log, "wrote      %s\n", *out)
	return nil
}
