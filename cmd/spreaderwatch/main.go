// Command spreaderwatch is the paper's motivating application made
// runnable: it tails a user-item edge stream and reports super spreaders —
// users whose estimated cardinality reaches delta times the estimated total
// distinct-pair count — on the fly, using FreeRS (or FreeBS) so each edge
// costs O(1) and a report is available at any moment.
//
// Usage:
//
//	streamgen -dataset sanjose -scale 0.01 -out sj.edges
//	spreaderwatch -in sj.edges -delta 0.005 -every 100000
//
//	# or pipe text "user item" lines:
//	cat edges.txt | spreaderwatch -text -delta 0.001
//
//	# sliding window: only the last ~3-4 epochs of 500k edges count, and
//	# each report adds the window's top-k heaviest users
//	spreaderwatch -in sj.edges -epoch 500000 -gens 4 -top 5
//
// Every -every edges (and once at EOF) it prints the current detections.
// With -epoch N the estimator is wrapped in a k-generation sliding window
// (k = -gens) that rotates every N edges, so detections and the per-window
// top-k reflect the recent past instead of the whole stream.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	streamcard "repro"
	"repro/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spreaderwatch:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spreaderwatch", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input edge file (default: stdin)")
		text   = fs.Bool("text", false, "input is text 'user item' lines (default: binary stream format)")
		method = fs.String("method", "freers", "estimator: freers|freebs")
		mbits  = fs.Int("mbits", 1<<24, "sketch memory in bits")
		delta  = fs.Float64("delta", 0.001, "relative spreader threshold in (0,1)")
		every  = fs.Int("every", 100000, "report every N edges")
		top    = fs.Int("top", 10, "print at most N spreaders per report")
		seed   = fs.Uint64("seed", 1, "hash seed")
		epoch  = fs.Int("epoch", 0, "sliding window: rotate every N edges (0 = whole stream)")
		gens   = fs.Int("gens", 4, "sliding window: live generations k (window spans k-1..k epochs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var edges stream.Stream
	if *text {
		edges = stream.NewTextReader(src)
	} else {
		r, err := stream.NewReader(src)
		if err != nil {
			return err
		}
		edges = r
	}

	var build func() streamcard.Estimator
	switch *method {
	case "freers":
		build = func() streamcard.Estimator { return streamcard.NewFreeRS(*mbits, streamcard.WithSeed(*seed)) }
	case "freebs":
		build = func() streamcard.Estimator { return streamcard.NewFreeBS(*mbits, streamcard.WithSeed(*seed)) }
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	var est streamcard.AnytimeEstimator
	var win *streamcard.Windowed
	if *epoch > 0 {
		if *gens < 2 {
			return fmt.Errorf("-gens must be at least 2, got %d", *gens)
		}
		win = streamcard.NewWindowed(build,
			streamcard.WithGenerations(*gens),
			streamcard.WithRotateEveryEdges(uint64(*epoch)))
		est = win
	} else {
		est = build().(streamcard.AnytimeEstimator)
	}
	det := streamcard.NewSpreaderDetector(est, *delta)

	report := func(t int) {
		found := det.Detect()
		if win != nil {
			fmt.Fprintf(out, "t=%d epoch=%d users=%d total-distinct=%.0f threshold=%.1f spreaders=%d\n",
				t, win.Epoch(), est.NumUsers(), est.TotalDistinct(), det.Threshold(), len(found))
		} else {
			fmt.Fprintf(out, "t=%d users=%d total-distinct=%.0f threshold=%.1f spreaders=%d\n",
				t, est.NumUsers(), est.TotalDistinct(), det.Threshold(), len(found))
		}
		for i, s := range found {
			if i >= *top {
				fmt.Fprintf(out, "  ... and %d more\n", len(found)-*top)
				break
			}
			fmt.Fprintf(out, "  user %-12d est %.0f\n", s.User, s.Estimate)
		}
		if win != nil {
			for _, s := range streamcard.TopK(est, *top) {
				fmt.Fprintf(out, "  window-top user %-12d est %.0f\n", s.User, s.Estimate)
			}
		}
	}

	t := 0
	for {
		e, err := edges.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		est.Observe(e.User, e.Item)
		t++
		if *every > 0 && t%*every == 0 {
			report(t)
		}
	}
	report(t)
	return nil
}
