package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stream"
)

// writeStream writes a binary edge file with one heavy user among noise.
func writeStream(t *testing.T) string {
	t.Helper()
	var edges []stream.Edge
	for i := 0; i < 5000; i++ {
		edges = append(edges, stream.Edge{User: 777, Item: uint64(i)})
		edges = append(edges, stream.Edge{User: uint64(i % 50), Item: uint64(i % 20)})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "s.edges")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.Write(f, edges); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWatchBinaryFile(t *testing.T) {
	path := writeStream(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-delta", "0.1", "-every", "4000", "-mbits", "1048576"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "user 777") {
		t.Fatalf("heavy user not reported:\n%s", s)
	}
	if strings.Count(s, "t=") < 2 {
		t.Fatalf("expected periodic + final reports:\n%s", s)
	}
}

func TestWatchTextStdinStyle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.txt")
	var buf bytes.Buffer
	for i := 0; i < 300; i++ {
		buf.WriteString("9 ")
		buf.WriteString(itoa(i))
		buf.WriteString("\n1 5\n")
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-in", path, "-text", "-delta", "0.5", "-every", "0", "-method", "freebs"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "user 9") {
		t.Fatalf("heavy user not flagged:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-in", "/does/not/exist"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeStream(t)
	if err := run([]string{"-in", path, "-method", "nosuch"}, &out); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := run([]string{"-in", path, "-text"}, &out); err == nil {
		t.Fatal("binary file parsed as text")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestWatchWindowed exercises the sliding-window path: the stream's first
// half is dominated by user 555, the second half by user 777; with an epoch
// shorter than a half, the final windowed report must rank 777 on top and
// have aged 555 out of the detections.
func TestWatchWindowed(t *testing.T) {
	var edges []stream.Edge
	for i := 0; i < 4000; i++ {
		edges = append(edges, stream.Edge{User: 555, Item: uint64(i)})
		edges = append(edges, stream.Edge{User: uint64(i % 40), Item: uint64(i % 20)})
	}
	for i := 0; i < 4000; i++ {
		edges = append(edges, stream.Edge{User: 777, Item: uint64(i) | 1<<40})
		edges = append(edges, stream.Edge{User: uint64(i % 40), Item: uint64(i % 20)})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "w.edges")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Write(f, edges); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	err = run([]string{"-in", path, "-epoch", "2000", "-gens", "3", "-delta", "0.2",
		"-every", "0", "-top", "3", "-mbits", "1048576"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "epoch=") {
		t.Fatalf("windowed report missing epoch counter:\n%s", s)
	}
	if !strings.Contains(s, "window-top user 777") {
		t.Fatalf("recent heavy hitter missing from window top-k:\n%s", s)
	}
	if strings.Contains(s, "window-top user 555") {
		t.Fatalf("aged-out heavy hitter still in window top-k:\n%s", s)
	}

	if err := run([]string{"-in", path, "-epoch", "100", "-gens", "1"}, &out); err == nil {
		t.Fatal("gens=1 accepted")
	}
}
