package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stream"
)

// writeStream writes a binary edge file with one heavy user among noise.
func writeStream(t *testing.T) string {
	t.Helper()
	var edges []stream.Edge
	for i := 0; i < 5000; i++ {
		edges = append(edges, stream.Edge{User: 777, Item: uint64(i)})
		edges = append(edges, stream.Edge{User: uint64(i % 50), Item: uint64(i % 20)})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "s.edges")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.Write(f, edges); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWatchBinaryFile(t *testing.T) {
	path := writeStream(t)
	var out bytes.Buffer
	err := run([]string{"-in", path, "-delta", "0.1", "-every", "4000", "-mbits", "1048576"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "user 777") {
		t.Fatalf("heavy user not reported:\n%s", s)
	}
	if strings.Count(s, "t=") < 2 {
		t.Fatalf("expected periodic + final reports:\n%s", s)
	}
}

func TestWatchTextStdinStyle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.txt")
	var buf bytes.Buffer
	for i := 0; i < 300; i++ {
		buf.WriteString("9 ")
		buf.WriteString(itoa(i))
		buf.WriteString("\n1 5\n")
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-in", path, "-text", "-delta", "0.5", "-every", "0", "-method", "freebs"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "user 9") {
		t.Fatalf("heavy user not flagged:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-in", "/does/not/exist"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeStream(t)
	if err := run([]string{"-in", path, "-method", "nosuch"}, &out); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := run([]string{"-in", path, "-text"}, &out); err == nil {
		t.Fatal("binary file parsed as text")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
