// Command cardload replays a synthetic workload against a live cardserved
// instance and reports the achieved ingest rate — the load driver that
// turns "the daemon runs" into "the daemon serves N edges/sec", and the
// smoke check CI uses to assert a freshly started server estimates sanely.
//
// Usage:
//
//	cardserved -addr :8080 &
//	cardload -addr http://localhost:8080 -dataset flickr -scale 0.001
//
// The workload comes from the paper-calibrated generators in
// internal/datagen (heavy-tailed per-user cardinalities, shuffled arrival,
// duplicates injected), POSTed as batches over either ingest protocol:
// -proto text sends line-protocol bodies, -proto binary sends CWB1 frames
// (the length-prefixed fixed-width pair format the server decodes
// zero-copy), so the two wire paths can be driven and compared with the
// same workload. With -c > 1 the stream is split into contiguous spans
// sent concurrently — per-span order is preserved, so per-user sub-streams
// stay ordered whenever a user's edges fall in one span.
//
// With -check t the driver also computes the exact distinct-pair total of
// the replayed stream and exits nonzero if the server's /total estimate is
// off by more than the fraction t — only meaningful against a freshly
// started, unrotated server that receives this workload alone.
//
// With -progress FILE (requires -c 1, or -conns 1 over TCP) the driver
// atomically rewrites FILE with the cumulative acked edge count after every
// acked batch, so a crash-recovery harness that kills the server mid-replay
// knows the exact acked prefix to assert against after the WAL replay.
//
// With -transport tcp the driver speaks CWT1 (the persistent pipelined
// binary transport) instead of HTTP: -conns long-lived connections each
// carry a contiguous span of the stream as sequenced CWB1 frames, keeping
// up to -window frames in flight and crediting edges as the out-of-band
// acks come back — so ack latency stops serializing the send path. -addr
// stays the HTTP base URL (health, /flush, /total, -check all still ride
// HTTP); -tcp-addr is the frame endpoint. The report adds per-connection
// rates next to the aggregate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/exact"
	"repro/internal/stream"
)

// client bounds every request: a wedged server must fail the driver (and
// CI's smoke job) in seconds with a diagnosable error, not hang it. The
// timeout is generous because /flush legitimately blocks while a backlog
// drains.
var client = &http.Client{Timeout: 60 * time.Second}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cardload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cardload", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "cardserved base URL")
		dataset = fs.String("dataset", "flickr", "datagen dataset: sanjose|chicago|twitter|flickr|orkut|livejournal")
		scale   = fs.Float64("scale", 0.001, "dataset scale factor in (0,1]")
		seed    = fs.Uint64("seed", 1, "workload seed")
		maxE    = fs.Int("edges", 0, "replay at most N edges (0 = whole stream)")
		batch   = fs.Int("batch", 5000, "edges per ingest request")
		conc    = fs.Int("c", 1, "concurrent senders (contiguous stream spans)")
		wait    = fs.Bool("wait", false, "use ?wait=1 (response only after the batch is absorbed)")
		check   = fs.Float64("check", 0, "fail if /total deviates from exact truth by more than this fraction (0 = report only)")
		proto   = fs.String("proto", "text", "ingest protocol for -transport http: text|binary (TCP always carries CWB1 frames)")
		prog    = fs.String("progress", "", "file atomically rewritten with the cumulative acked edge count after every acked batch (requires -c 1, or -conns 1 over TCP); a crash-recovery harness reads it to learn exactly how much the server acked before dying")
		trans   = fs.String("transport", "http", "ingest transport: http (one request per batch) | tcp (persistent pipelined CWT1 connections; needs cardserved -tcp-addr)")
		tcpAddr = fs.String("tcp-addr", "127.0.0.1:9090", "CWT1 frame endpoint (host:port) for -transport tcp; -addr stays the HTTP base for health/flush/total")
		conns   = fs.Int("conns", 1, "TCP connections for -transport tcp, each sending a contiguous stream span")
		window  = fs.Int("window", 64, "max unacked frames in flight per TCP connection")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch <= 0 || *conc <= 0 {
		return errors.New("-batch and -c must be positive")
	}
	if *proto != "text" && *proto != "binary" {
		return fmt.Errorf("-proto %q: want text or binary", *proto)
	}
	switch *trans {
	case "http":
		if *prog != "" && *conc != 1 {
			return errors.New("-progress needs -c 1: with concurrent spans the acked count is not a stream prefix")
		}
	case "tcp":
		if *conns <= 0 || *window <= 0 {
			return errors.New("-conns and -window must be positive")
		}
		if *prog != "" && *conns != 1 {
			return errors.New("-progress needs -conns 1: with concurrent spans the acked count is not a stream prefix")
		}
		if *wait {
			return errors.New("-wait is an HTTP ?wait=1 option; over TCP use the final /flush barrier (always applied)")
		}
	default:
		return fmt.Errorf("-transport %q: want http or tcp", *trans)
	}

	cfg, err := datagen.PaperConfig(*dataset, *scale, *seed)
	if err != nil {
		return err
	}
	d := datagen.Generate(cfg)
	edges := d.Edges
	if *maxE > 0 && *maxE < len(edges) {
		edges = edges[:*maxE]
	}
	fmt.Fprintf(out, "cardload: %s scale=%g -> %d users, %d edges to replay\n",
		*dataset, *scale, d.NumUsers(), len(edges))

	// Health first: fail fast with a useful message when nothing listens.
	if err := checkHealth(*addr); err != nil {
		return err
	}

	base := strings.TrimSuffix(*addr, "/")
	ingestURL := base + "/ingest"
	if *wait {
		ingestURL += "?wait=1"
	}
	nSenders := *conc
	if *trans == "tcp" {
		nSenders = *conns
	}
	spans := splitSpans(edges, nSenders)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		batches  int
		firstErr error
	)
	start := time.Now()
	if *trans == "tcp" {
		for id, span := range spans {
			wg.Add(1)
			go func(id int, span []stream.Edge) {
				defer wg.Done()
				t0 := time.Now()
				frames, err := replayTCP(*tcpAddr, span, *batch, *window, *prog)
				elapsed := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("conn %d: %w", id, err)
					}
					return
				}
				batches += frames
				fmt.Fprintf(out, "cardload: conn %d: %d edges in %d frames over %v -> %.0f edges/sec\n",
					id, len(span), frames, elapsed.Round(time.Millisecond),
					float64(len(span))/elapsed.Seconds())
			}(id, span)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	} else {
		for _, span := range spans {
			wg.Add(1)
			go func(span []stream.Edge) {
				defer wg.Done()
				var sb strings.Builder
				var frame []byte
				acked := 0 // per-span; -progress forces a single span, so it is the total
				for i := 0; i < len(span); i += *batch {
					end := i + *batch
					if end > len(span) {
						end = len(span)
					}
					var body []byte
					contentType := "text/plain"
					if *proto == "binary" {
						frame = stream.AppendWire(frame[:0], span[i:end])
						body, contentType = frame, stream.WireContentType
					} else {
						sb.Reset()
						if err := stream.WriteText(&sb, span[i:end]); err != nil {
							panic(err) // strings.Builder writes cannot fail
						}
						body = []byte(sb.String())
					}
					if err := postBatch(ingestURL, contentType, body); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					mu.Lock()
					batches++
					mu.Unlock()
					acked += end - i
					if *prog != "" {
						// Atomic replace: a kill mid-update leaves the previous
						// complete count, never a torn file. The count can lag the
						// server's ack by at most the one batch between its 200 and
						// this write — the crash harness's tolerance window.
						if err := writeProgress(*prog, acked); err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							return
						}
					}
				}
			}(span)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	}
	// Flush barrier: the rate and the /total reading below cover every edge
	// actually absorbed into the sketch, not just queued.
	if err := postBatch(base+"/flush", "text/plain", nil); err != nil {
		return err
	}
	elapsed := time.Since(start)
	rate := float64(len(edges)) / elapsed.Seconds()
	wire := *proto + " protocol"
	if *trans == "tcp" {
		wire = fmt.Sprintf("tcp transport, %d conns, window %d", len(spans), *window)
	}
	fmt.Fprintf(out, "cardload: %d edges in %d batches over %v -> %.0f edges/sec (%s)\n",
		len(edges), batches, elapsed.Round(time.Millisecond), rate, wire)

	total, method, err := fetchTotal(base)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cardload: server /total %.0f (%s)\n", total, method)

	if *check > 0 {
		truth := exact.NewTracker()
		for _, e := range edges {
			truth.Observe(e.User, e.Item)
		}
		want := float64(truth.TotalCardinality())
		dev := math.Abs(total-want) / want
		fmt.Fprintf(out, "cardload: exact %.0f, deviation %.1f%% (limit %.1f%%)\n",
			want, 100*dev, 100**check)
		if dev > *check {
			return fmt.Errorf("estimate deviates %.1f%% > %.1f%%", 100*dev, 100**check)
		}
	}
	return nil
}

// replayTCP drives one CWT1 connection: span is cut into batch-sized
// frames sent with strictly increasing sequence numbers, keeping up to
// window frames unacked in flight; a reader goroutine consumes the
// out-of-band acks in order, maintains the acked-prefix edge count (frame
// k's size is derivable from k alone, so no per-frame bookkeeping is
// needed), and rewrites the -progress file after every ack exactly as the
// HTTP path does after every 200. Any non-200 ack, out-of-order ack, or
// early close is an error. Returns the frame count.
func replayTCP(addr string, span []stream.Edge, batch, window int, prog string) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("no CWT1 listener at %s (cardserved -tcp-addr): %w", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(stream.TCPMagic)); err != nil {
		return 0, err
	}
	nFrames := (len(span) + batch - 1) / batch
	frameEdges := func(seq uint64) int { // edges carried by frame seq (1-based)
		lo := int(seq-1) * batch
		hi := lo + batch
		if hi > len(span) {
			hi = len(span)
		}
		return hi - lo
	}

	sem := make(chan struct{}, window)
	ackDone := make(chan struct{})
	ackErr := make(chan error, 1)
	go func() {
		defer close(ackDone)
		br := bufio.NewReader(conn)
		var rec [stream.AckLen]byte
		acked := 0
		for next := uint64(1); next <= uint64(nFrames); next++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				ackErr <- fmt.Errorf("connection lost waiting for ack %d of %d: %w", next, nFrames, err)
				return
			}
			seq, status, err := stream.ParseAck(rec[:])
			if err != nil {
				ackErr <- err
				return
			}
			if seq != next {
				ackErr <- fmt.Errorf("ack for frame %d, want %d", seq, next)
				return
			}
			if status != stream.AckOK {
				ackErr <- fmt.Errorf("frame %d refused with status %d", seq, status)
				return
			}
			acked += frameEdges(seq)
			if prog != "" {
				if err := writeProgress(prog, acked); err != nil {
					ackErr <- err
					return
				}
			}
			<-sem
		}
		ackErr <- nil
	}()

	var frame []byte
	for seq := uint64(1); seq <= uint64(nFrames); seq++ {
		select {
		case sem <- struct{}{}: // at most `window` unacked frames in flight
		case <-ackDone: // ack stream failed; the error below explains why
			return 0, <-ackErr
		}
		lo := int(seq-1) * batch
		frame = stream.AppendFrameHeader(frame[:0], seq, stream.WireSize(frameEdges(seq)))
		frame = stream.AppendWire(frame, span[lo:lo+frameEdges(seq)])
		if _, err := conn.Write(frame); err != nil {
			<-ackDone // the read side usually says something more specific
			if aerr := <-ackErr; aerr != nil {
				return 0, aerr
			}
			return 0, err
		}
	}
	// Half-close: every frame is on the wire; the server drains, acks, and
	// closes its side once we have the full ack prefix.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	<-ackDone
	if err := <-ackErr; err != nil {
		return 0, err
	}
	return nFrames, nil
}

// writeProgress atomically replaces path with the decimal edge count.
func writeProgress(path string, n int) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%d\n", n)), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func splitSpans(edges []stream.Edge, n int) [][]stream.Edge {
	if n > len(edges) {
		n = len(edges)
	}
	if n <= 1 {
		return [][]stream.Edge{edges}
	}
	spans := make([][]stream.Edge, 0, n)
	size := (len(edges) + n - 1) / n
	for i := 0; i < len(edges); i += size {
		end := i + size
		if end > len(edges) {
			end = len(edges)
		}
		spans = append(spans, edges[i:end])
	}
	return spans
}

func checkHealth(addr string) error {
	resp, err := client.Get(strings.TrimSuffix(addr, "/") + "/healthz")
	if err != nil {
		return fmt.Errorf("no cardserved at %s: %w", addr, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

func postBatch(url, contentType string, body []byte) error {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("ingest returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// fetchTotal asks for the merged union reading explicitly: the driver
// compares against an exact tracker, so it wants the low-variance total
// (the server still reports "summed" if the shards cannot merge).
func fetchTotal(base string) (float64, string, error) {
	resp, err := client.Get(base + "/total?method=merged")
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	var body struct {
		Total  float64 `json:"total"`
		Method string  `json:"method"`
	}
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("/total returned %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		return 0, "", fmt.Errorf("unparseable /total %q: %w", raw, err)
	}
	return body.Total, body.Method, nil
}
