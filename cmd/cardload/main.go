// Command cardload replays a synthetic workload against a live cardserved
// instance and reports the achieved ingest rate — the load driver that
// turns "the daemon runs" into "the daemon serves N edges/sec", and the
// smoke check CI uses to assert a freshly started server estimates sanely.
//
// Usage:
//
//	cardserved -addr :8080 &
//	cardload -addr http://localhost:8080 -dataset flickr -scale 0.001
//
// The workload comes from the paper-calibrated generators in
// internal/datagen (heavy-tailed per-user cardinalities, shuffled arrival,
// duplicates injected), POSTed as batches over either ingest protocol:
// -proto text sends line-protocol bodies, -proto binary sends CWB1 frames
// (the length-prefixed fixed-width pair format the server decodes
// zero-copy), so the two wire paths can be driven and compared with the
// same workload. With -c > 1 the stream is split into contiguous spans
// sent concurrently — per-span order is preserved, so per-user sub-streams
// stay ordered whenever a user's edges fall in one span.
//
// With -check t the driver also computes the exact distinct-pair total of
// the replayed stream and exits nonzero if the server's /total estimate is
// off by more than the fraction t — only meaningful against a freshly
// started, unrotated server that receives this workload alone.
//
// With -progress FILE (requires -c 1) the driver atomically rewrites FILE
// with the cumulative acked edge count after every acked batch, so a
// crash-recovery harness that kills the server mid-replay knows the exact
// acked prefix to assert against after the WAL replay.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/exact"
	"repro/internal/stream"
)

// client bounds every request: a wedged server must fail the driver (and
// CI's smoke job) in seconds with a diagnosable error, not hang it. The
// timeout is generous because /flush legitimately blocks while a backlog
// drains.
var client = &http.Client{Timeout: 60 * time.Second}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cardload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cardload", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "cardserved base URL")
		dataset = fs.String("dataset", "flickr", "datagen dataset: sanjose|chicago|twitter|flickr|orkut|livejournal")
		scale   = fs.Float64("scale", 0.001, "dataset scale factor in (0,1]")
		seed    = fs.Uint64("seed", 1, "workload seed")
		maxE    = fs.Int("edges", 0, "replay at most N edges (0 = whole stream)")
		batch   = fs.Int("batch", 5000, "edges per ingest request")
		conc    = fs.Int("c", 1, "concurrent senders (contiguous stream spans)")
		wait    = fs.Bool("wait", false, "use ?wait=1 (response only after the batch is absorbed)")
		check   = fs.Float64("check", 0, "fail if /total deviates from exact truth by more than this fraction (0 = report only)")
		proto   = fs.String("proto", "text", "ingest protocol: text|binary")
		prog    = fs.String("progress", "", "file atomically rewritten with the cumulative acked edge count after every acked batch (requires -c 1); a crash-recovery harness reads it to learn exactly how much the server acked before dying")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch <= 0 || *conc <= 0 {
		return errors.New("-batch and -c must be positive")
	}
	if *prog != "" && *conc != 1 {
		return errors.New("-progress needs -c 1: with concurrent spans the acked count is not a stream prefix")
	}
	if *proto != "text" && *proto != "binary" {
		return fmt.Errorf("-proto %q: want text or binary", *proto)
	}

	cfg, err := datagen.PaperConfig(*dataset, *scale, *seed)
	if err != nil {
		return err
	}
	d := datagen.Generate(cfg)
	edges := d.Edges
	if *maxE > 0 && *maxE < len(edges) {
		edges = edges[:*maxE]
	}
	fmt.Fprintf(out, "cardload: %s scale=%g -> %d users, %d edges to replay\n",
		*dataset, *scale, d.NumUsers(), len(edges))

	// Health first: fail fast with a useful message when nothing listens.
	if err := checkHealth(*addr); err != nil {
		return err
	}

	base := strings.TrimSuffix(*addr, "/")
	ingestURL := base + "/ingest"
	if *wait {
		ingestURL += "?wait=1"
	}
	spans := splitSpans(edges, *conc)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		batches  int
		firstErr error
	)
	start := time.Now()
	for _, span := range spans {
		wg.Add(1)
		go func(span []stream.Edge) {
			defer wg.Done()
			var sb strings.Builder
			var frame []byte
			acked := 0 // per-span; -progress forces a single span, so it is the total
			for i := 0; i < len(span); i += *batch {
				end := i + *batch
				if end > len(span) {
					end = len(span)
				}
				var body []byte
				contentType := "text/plain"
				if *proto == "binary" {
					frame = stream.AppendWire(frame[:0], span[i:end])
					body, contentType = frame, stream.WireContentType
				} else {
					sb.Reset()
					if err := stream.WriteText(&sb, span[i:end]); err != nil {
						panic(err) // strings.Builder writes cannot fail
					}
					body = []byte(sb.String())
				}
				if err := postBatch(ingestURL, contentType, body); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				batches++
				mu.Unlock()
				acked += end - i
				if *prog != "" {
					// Atomic replace: a kill mid-update leaves the previous
					// complete count, never a torn file. The count can lag the
					// server's ack by at most the one batch between its 200 and
					// this write — the crash harness's tolerance window.
					if err := writeProgress(*prog, acked); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}
		}(span)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Flush barrier: the rate and the /total reading below cover every edge
	// actually absorbed into the sketch, not just queued.
	if err := postBatch(base+"/flush", "text/plain", nil); err != nil {
		return err
	}
	elapsed := time.Since(start)
	rate := float64(len(edges)) / elapsed.Seconds()
	fmt.Fprintf(out, "cardload: %d edges in %d batches over %v -> %.0f edges/sec (%s protocol)\n",
		len(edges), batches, elapsed.Round(time.Millisecond), rate, *proto)

	total, method, err := fetchTotal(base)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cardload: server /total %.0f (%s)\n", total, method)

	if *check > 0 {
		truth := exact.NewTracker()
		for _, e := range edges {
			truth.Observe(e.User, e.Item)
		}
		want := float64(truth.TotalCardinality())
		dev := math.Abs(total-want) / want
		fmt.Fprintf(out, "cardload: exact %.0f, deviation %.1f%% (limit %.1f%%)\n",
			want, 100*dev, 100**check)
		if dev > *check {
			return fmt.Errorf("estimate deviates %.1f%% > %.1f%%", 100*dev, 100**check)
		}
	}
	return nil
}

// writeProgress atomically replaces path with the decimal edge count.
func writeProgress(path string, n int) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%d\n", n)), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func splitSpans(edges []stream.Edge, n int) [][]stream.Edge {
	if n > len(edges) {
		n = len(edges)
	}
	if n <= 1 {
		return [][]stream.Edge{edges}
	}
	spans := make([][]stream.Edge, 0, n)
	size := (len(edges) + n - 1) / n
	for i := 0; i < len(edges); i += size {
		end := i + size
		if end > len(edges) {
			end = len(edges)
		}
		spans = append(spans, edges[i:end])
	}
	return spans
}

func checkHealth(addr string) error {
	resp, err := client.Get(strings.TrimSuffix(addr, "/") + "/healthz")
	if err != nil {
		return fmt.Errorf("no cardserved at %s: %w", addr, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

func postBatch(url, contentType string, body []byte) error {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("ingest returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// fetchTotal asks for the merged union reading explicitly: the driver
// compares against an exact tracker, so it wants the low-variance total
// (the server still reports "summed" if the shards cannot merge).
func fetchTotal(base string) (float64, string, error) {
	resp, err := client.Get(base + "/total?method=merged")
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	var body struct {
		Total  float64 `json:"total"`
		Method string  `json:"method"`
	}
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("/total returned %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		return 0, "", fmt.Errorf("unparseable /total %q: %w", raw, err)
	}
	return body.Total, body.Method, nil
}
