package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/server"
)

func startBackend(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{
		MemoryBits: 1 << 20, Shards: 2, Generations: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts
}

// TestCardloadReplaysAndChecks drives a scaled paper workload through a
// live server and lets -check assert the estimate — the same invocation
// CI's smoke job uses.
func TestCardloadReplaysAndChecks(t *testing.T) {
	ts := startBackend(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-dataset", "flickr", "-scale", "0.0005", "-seed", "5",
		"-batch", "2000", "-wait",
		"-check", "0.25",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{"edges/sec", "server /total", "deviation"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestCardloadBinaryProtocol replays the same checked workload over CWB1
// frames — the -proto binary leg CI's smoke job drives.
func TestCardloadBinaryProtocol(t *testing.T) {
	ts := startBackend(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-dataset", "flickr", "-scale", "0.0005", "-seed", "5",
		"-batch", "2000", "-wait", "-proto", "binary",
		"-check", "0.25",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "(binary protocol)") {
		t.Fatalf("report does not name the protocol:\n%s", out.String())
	}
}

// TestCardloadConcurrentSenders exercises the span-splitting path.
func TestCardloadConcurrentSenders(t *testing.T) {
	ts := startBackend(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-dataset", "chicago", "-scale", "0.0002",
		"-edges", "5000", "-batch", "500", "-c", "4",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
}

// TestCardloadProgressFile: -progress tracks the acked prefix exactly —
// the final value equals the full replayed stream, and the file is the
// bare decimal a shell harness can read after killing the server.
func TestCardloadProgressFile(t *testing.T) {
	ts := startBackend(t)
	prog := filepath.Join(t.TempDir(), "acked")
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-dataset", "chicago", "-scale", "0.0002",
		"-edges", "4000", "-batch", "500",
		"-progress", prog,
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	b, err := os.ReadFile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(\d+) edges to replay`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no edge count in report:\n%s", out.String())
	}
	if got := strings.TrimSpace(string(b)); got != m[1] {
		t.Fatalf("progress file reads %q after a fully acked replay of %s edges", got, m[1])
	}
}

func TestCardloadBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "nope"}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-batch", "0"}, &out); err == nil {
		t.Fatal("batch=0 accepted")
	}
	if err := run([]string{"-scale", "2"}, &out); err == nil {
		t.Fatal("scale=2 accepted")
	}
	if err := run([]string{"-proto", "grpc"}, &out); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run([]string{"-progress", "p", "-c", "4"}, &out); err == nil {
		t.Fatal("-progress with concurrent senders accepted")
	}
}

func TestCardloadNoServer(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-addr", "http://127.0.0.1:1", "-dataset", "flickr", "-scale", "0.0002"}, &out)
	if err == nil || !strings.Contains(err.Error(), "no cardserved") {
		t.Fatalf("dead address: %v", err)
	}
}
