package main

// The -transport tcp leg: cardload must drive the CWT1 pipelined transport
// end to end — windowed in-flight frames, per-connection spans, the same
// -check truth assertion, and acked-prefix -progress accounting — against a
// real server.ServeTCP listener.

import (
	"bytes"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/server"
)

// startTCPBackend runs a server with both the HTTP surface (health, flush,
// total) and a CWT1 listener, returning the two addresses.
func startTCPBackend(t *testing.T) (httpURL, tcpAddr string) {
	t.Helper()
	s, err := server.New(server.Config{
		MemoryBits: 1 << 20, Shards: 2, Generations: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeTCP(ln)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts.URL, ln.Addr().String()
}

// TestCardloadTCPTransportChecks: the CI smoke invocation over TCP — the
// -check truth assertion must hold identically to HTTP.
func TestCardloadTCPTransportChecks(t *testing.T) {
	httpURL, tcpAddr := startTCPBackend(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", httpURL, "-transport", "tcp", "-tcp-addr", tcpAddr,
		"-dataset", "flickr", "-scale", "0.0005", "-seed", "5",
		"-batch", "2000", "-window", "8",
		"-check", "0.25",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{"conn 0:", "tcp transport, 1 conns, window 8", "deviation"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestCardloadTCPMultipleConnections: -conns splits the stream into
// per-connection spans, each reported individually plus the aggregate.
func TestCardloadTCPMultipleConnections(t *testing.T) {
	httpURL, tcpAddr := startTCPBackend(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", httpURL, "-transport", "tcp", "-tcp-addr", tcpAddr,
		"-dataset", "chicago", "-scale", "0.0002",
		"-edges", "6000", "-batch", "500", "-conns", "3", "-window", "4",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{"conn 0:", "conn 1:", "conn 2:", "tcp transport, 3 conns"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestCardloadTCPProgressFile: acked-prefix accounting over TCP lands on
// exactly the full stream, same contract as HTTP.
func TestCardloadTCPProgressFile(t *testing.T) {
	httpURL, tcpAddr := startTCPBackend(t)
	prog := filepath.Join(t.TempDir(), "acked")
	var out bytes.Buffer
	err := run([]string{
		"-addr", httpURL, "-transport", "tcp", "-tcp-addr", tcpAddr,
		"-dataset", "chicago", "-scale", "0.0002",
		"-edges", "4000", "-batch", "500", "-window", "4",
		"-progress", prog,
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	b, err := os.ReadFile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(\d+) edges to replay`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no edge count in report:\n%s", out.String())
	}
	if got := strings.TrimSpace(string(b)); got != m[1] {
		t.Fatalf("progress file reads %q after a fully acked replay of %s edges", got, m[1])
	}
}

func TestCardloadTCPBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-transport", "quic"}, &out); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if err := run([]string{"-transport", "tcp", "-window", "0"}, &out); err == nil {
		t.Fatal("window=0 accepted")
	}
	if err := run([]string{"-transport", "tcp", "-conns", "0"}, &out); err == nil {
		t.Fatal("conns=0 accepted")
	}
	if err := run([]string{"-transport", "tcp", "-progress", "p", "-conns", "2"}, &out); err == nil {
		t.Fatal("-progress with multiple connections accepted")
	}
	if err := run([]string{"-transport", "tcp", "-wait"}, &out); err == nil {
		t.Fatal("-wait over tcp accepted")
	}
}

// TestCardloadTCPNoListener: an HTTP-healthy server without a CWT1
// listener must fail with a pointer at the missing -tcp-addr, not hang.
func TestCardloadTCPNoListener(t *testing.T) {
	ts := startBackend(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-transport", "tcp", "-tcp-addr", "127.0.0.1:1",
		"-dataset", "chicago", "-scale", "0.0002", "-edges", "1000",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "CWT1") {
		t.Fatalf("dead tcp address: %v", err)
	}
}
