// Command cardserved runs the cardinality service as a daemon: an HTTP
// server over a Sharded(Windowed(FreeRS|FreeBS)) stack that ingests
// user-item edges continuously and answers per-user cardinality queries at
// any moment, with wall-clock epoch rotation and checkpoint-backed
// durability.
//
// Usage:
//
//	cardserved -addr :8080 -mbits 67108864 -shards 8 -gens 4 \
//	    -epoch 5m -spool /var/spool/cardserved -checkpoint-every 1m
//
// Ingest is newline-delimited "user item" decimal pairs (blank lines and
// #-comments skipped); a batch with any malformed line is refused
// atomically with 400. Queries: /estimate?user=N (or ?key=string),
// /total, /topk?k=N, /users, /healthz, /metrics (Prometheus text). Ops:
// POST /rotate forces an epoch boundary, POST /checkpoint forces a spool
// write, POST /flush blocks until every accepted batch is absorbed.
//
//	curl -XPOST --data-binary $'1 100\n1 101\n2 100\n' 'localhost:8080/ingest?wait=1'
//	curl 'localhost:8080/estimate?user=1'
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains the ingest
// pipeline, writes a final checkpoint, and exits; a restart with the same
// configuration and spool directory resumes in bit-identical lockstep.
//
// With -wal-dir set, every acked batch is also appended to a write-ahead
// log before the ack, so even kill -9 loses nothing acked: the restart
// replays the log tail on top of the newest checkpoint. -wal-sync picks
// the fsync policy (always|interval|never — how much POWER loss can take;
// process crashes are covered under all three), -wal-flush-interval the
// group-commit cadence, and each checkpoint truncates the log's
// fully-covered segments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sig); err != nil {
		fmt.Fprintln(os.Stderr, "cardserved:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives (or the listener
// fails); factored from main so tests can drive the full lifecycle.
func run(args []string, out io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("cardserved", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		tcpAddr  = fs.String("tcp-addr", "", "CWT1 persistent TCP ingest listen address (empty = disabled); long-lived connections carrying pipelined CWB1 frames with per-frame acks")
		method   = fs.String("method", "freers", "estimator: freers|freebs")
		mbits    = fs.Int("mbits", 1<<26, "total sketch memory in bits (split across shards, spent once per generation)")
		shards   = fs.Int("shards", 4, "independently locked shards")
		gens     = fs.Int("gens", 4, "live window generations k (queries cover k-1..k epochs)")
		seed     = fs.Uint64("seed", 1, "hash seed shared across shards (enables merged /total)")
		epoch    = fs.Duration("epoch", 0, "wall-clock epoch length (0 = rotate only via POST /rotate)")
		ckEvery  = fs.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 = only on shutdown)")
		spool    = fs.String("spool", "", "checkpoint spool directory (empty = no persistence)")
		walDir   = fs.String("wal-dir", "", "write-ahead log directory (empty = no WAL); with a WAL, every acked batch survives kill -9 and a restart replays the log tail on top of the newest checkpoint")
		walSync  = fs.String("wal-sync", "interval", "WAL fsync policy: always|interval|never (power-loss durability; process crashes are covered under all three)")
		walFlush = fs.Duration("wal-flush-interval", 50*time.Millisecond, "WAL group-commit fsync cadence for -wal-sync interval")
		walSeg   = fs.Int64("wal-segment-bytes", 64<<20, "WAL segment file size bound (checkpoints delete fully-covered segments whole)")
		retain   = fs.Int("retain", 3, "checkpoint history files kept in the spool (newest N; current.ckpt is always the newest)")
		workers  = fs.Int("workers", 0, "deprecated and ignored: the pipeline runs one executor per shard (-shards)")
		queue    = fs.Int("queue", 64, "per-shard executor queue depth (full queue = backpressure)")
		maxBody  = fs.Int64("max-body", 8<<20, "max ingest request body bytes")
		drainFor = fs.Duration("drain", 10*time.Second, "shutdown grace for in-flight HTTP requests")
		writeTO  = fs.Duration("write-timeout", 2*time.Minute, "per-response write deadline (0 = none); bounds how long a stalled reader of a streaming endpoint like /users can hold the sketch locks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The flag's "0 = none" convention maps to the Config's "negative =
	// disabled" (a zero Config field means the default, like every other
	// field there).
	streamTO := *writeTO
	if streamTO == 0 {
		streamTO = -1
	}
	s, err := server.New(server.Config{
		Method:             *method,
		MemoryBits:         *mbits,
		Shards:             *shards,
		Generations:        *gens,
		Seed:               *seed,
		Epoch:              *epoch,
		CheckpointEvery:    *ckEvery,
		SpoolDir:           *spool,
		WALDir:             *walDir,
		WALSync:            *walSync,
		WALFlushInterval:   *walFlush,
		WALSegmentBytes:    *walSeg,
		Retain:             *retain,
		Workers:            *workers,
		QueueDepth:         *queue,
		MaxBodyBytes:       *maxBody,
		StreamWriteTimeout: streamTO,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		s.Close()
		return err
	}
	// The write deadline is connection hygiene: /users streams from a
	// published snapshot and holds no sketch lock, but a client that stops
	// reading would still pin the handler goroutine and the snapshot's
	// copy-on-write arrays until its connection dies. The streaming handler
	// arms its own deadline from Config.StreamWriteTimeout (plumbed from
	// the same flag above); the server-level WriteTimeout backstops every
	// other endpoint.
	httpSrv := &http.Server{Handler: s.Handler(), WriteTimeout: *writeTO}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	if *tcpAddr != "" {
		tcpLn, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			s.Close()
			return err
		}
		// ServeTCP returns ErrClosed when s.Close tears the listener down —
		// the clean path; anything else (a mid-run accept failure) is fatal
		// like an HTTP serve error.
		go func() {
			if err := s.ServeTCP(tcpLn); err != nil && !errors.Is(err, server.ErrClosed) {
				serveErr <- err
			}
		}()
		fmt.Fprintf(out, "cardserved: tcp ingest on %s\n", tcpLn.Addr())
	}
	if s.Restored() {
		fmt.Fprintf(out, "cardserved: restored checkpoint from %s (epoch=%d)\n", *spool, s.Epoch())
	}
	if recs, edges := s.WALReplayed(); recs > 0 {
		fmt.Fprintf(out, "cardserved: replayed %d WAL records (%d edges) from %s (epoch=%d)\n",
			recs, edges, *walDir, s.Epoch())
	}
	fmt.Fprintf(out, "cardserved: listening on %s (method=%s mbits=%d shards=%d gens=%d epoch=%v spool=%q wal=%q)\n",
		ln.Addr(), *method, *mbits, *shards, *gens, *epoch, *spool, *walDir)

	select {
	case got := <-sig:
		fmt.Fprintf(out, "cardserved: %v — draining\n", got)
	case err := <-serveErr:
		s.Close()
		return err
	}

	// Orderly stop: no new HTTP work, then drain the ingest pipeline and
	// write the final checkpoint.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(out, "cardserved: http shutdown: %v\n", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(out, "cardserved: serve: %v\n", err)
	}
	if err := s.Close(); err != nil {
		return fmt.Errorf("final checkpoint: %w", err)
	}
	fmt.Fprintf(out, "cardserved: stopped (epoch=%d)\n", s.Epoch())
	return nil
}
