package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer lets the test read run()'s output while run() still writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRe = regexp.MustCompile(`listening on ([0-9.:\[\]]+)`)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, the signal channel that stops it, and a channel with run's error.
func startDaemon(t *testing.T, args []string) (string, chan os.Signal, <-chan error, *syncBuffer) {
	t.Helper()
	out := &syncBuffer{}
	sig := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), out, sig) }()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], sig, errc, out
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never listened:\n%s", out.String())
	return "", nil, nil, nil
}

func stopDaemon(t *testing.T, sig chan os.Signal, errc <-chan error) {
	t.Helper()
	sig <- syscall.SIGTERM
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not stop on SIGTERM")
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestDaemonLifecycle walks the deployment story: start, ingest, query,
// SIGTERM (final checkpoint), restart from the spool, verify the state
// survived the restart byte for byte.
func TestDaemonLifecycle(t *testing.T) {
	spool := t.TempDir()
	args := []string{"-mbits", "1048576", "-shards", "2", "-gens", "2", "-spool", spool}

	base, sig, errc, _ := startDaemon(t, args)
	resp, err := http.Post(base+"/ingest?wait=1", "text/plain",
		strings.NewReader("1 100\n1 101\n1 102\n2 100\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest returned %d", resp.StatusCode)
	}
	code, body := httpGet(t, base+"/estimate?user=1")
	if code != http.StatusOK || !strings.Contains(body, `"estimate":3`) {
		t.Fatalf("estimate before restart: %d %s", code, body)
	}
	stopDaemon(t, sig, errc)
	if _, err := os.Stat(filepath.Join(spool, "current.ckpt")); err != nil {
		t.Fatalf("SIGTERM left no checkpoint: %v", err)
	}

	// Restart: the estimate must come back identical from the spool.
	base2, sig2, errc2, _ := startDaemon(t, args)
	code, body2 := httpGet(t, base2+"/estimate?user=1")
	if code != http.StatusOK || body2 != body {
		t.Fatalf("restored estimate differs: %q vs %q", body2, body)
	}
	stopDaemon(t, sig2, errc2)
}

// TestDaemonWallClockRotation: a short -epoch advances epochs without any
// client calling /rotate.
func TestDaemonWallClockRotation(t *testing.T) {
	base, sig, errc, _ := startDaemon(t, []string{
		"-mbits", "1048576", "-shards", "2", "-epoch", "30ms"})
	defer stopDaemon(t, sig, errc)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, body := httpGet(t, base+"/healthz"); !strings.Contains(body, `"epoch":0`) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("epoch never advanced under -epoch 30ms")
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	sig := make(chan os.Signal)
	if err := run([]string{"-method", "nope"}, &out, sig); err == nil {
		t.Fatal("bad -method accepted")
	}
	if err := run([]string{"-gens", "1"}, &out, sig); err == nil {
		t.Fatal("-gens 1 accepted")
	}
	if err := run([]string{"-badflag"}, &out, sig); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestDaemonListenFailure(t *testing.T) {
	var out bytes.Buffer
	sig := make(chan os.Signal)
	if err := run([]string{"-addr", "256.0.0.1:bad"}, &out, sig); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
