package main

// The durability acceptance test: a REAL cardserved process — the built
// binary, not an in-process run() — is killed with SIGKILL at a random
// point mid-ingest, restarted on the same spool and WAL directories, and
// must come back bit-identical (serialized checkpoint bytes, not just
// estimates) to a twin that absorbed exactly the effective prefix. "kill
// -9 durability" here means: every batch the client saw acked is present
// after restart, and at most the single in-flight unacked batch may
// additionally have reached the log before the kill landed.

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

const (
	crashBatchEdges = 700 // edges per batch; constant so replay arithmetic is exact
	crashBatches    = 150 // ~105k edges total, per the acceptance bar
	crashRotateMod  = 20  // POST /rotate after every 20th batch
	crashCkptBatch  = 40  // mid-feed POST /checkpoint, so replay rides ON TOP of a checkpoint
)

// crashBatchBody renders batch i of the deterministic edge stream as the
// text ingest protocol.
func crashBatchBody(i int) string {
	var sb strings.Builder
	sb.Grow(crashBatchEdges * 12)
	for j := 0; j < crashBatchEdges; j++ {
		fmt.Fprintf(&sb, "%d %d\n", (i*7+j)%500, i*crashBatchEdges+j)
	}
	return sb.String()
}

func crashPost(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

var metricRe = regexp.MustCompile(`(?m)^cardserved_edges_ingested_total (\d+)$`)

// TestDaemonSIGKILLRecovery runs under -race in CI's test job; the killed
// child is the plainly built binary, while the restarted server and the
// twin run in-process so the replay and comparison paths get race
// coverage.
func TestDaemonSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "cardserved")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building cardserved: %v\n%s", err, out)
	}

	spool, walDir := t.TempDir(), t.TempDir()
	args := []string{"-mbits", "1048576", "-shards", "2", "-gens", "2",
		"-spool", spool, "-wal-dir", walDir, "-wal-sync", "never",
		"-wal-segment-bytes", "65536"}
	// -wal-sync never is deliberate: SIGKILL durability must come from the
	// write(2)-before-ack discipline alone (the page cache survives the
	// process), not from fsync. fsync policy only narrows POWER-loss
	// exposure, which no test can simulate.

	seed := time.Now().UnixNano()
	t.Logf("kill-point seed %d (re-run with this logged seed to reproduce)", seed)
	rng := rand.New(rand.NewSource(seed))
	killAfter := 90 + rng.Intn(crashBatches-90) // batches acked before the kill

	// --- Phase 1: the victim, as a real process.
	victimOut := &syncBuffer{}
	victim := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	victim.Stdout = victimOut
	victim.Stderr = victimOut
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	var base string
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		if m := listenRe.FindStringSubmatch(victimOut.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		victim.Process.Kill()
		t.Fatalf("victim never listened:\n%s", victimOut.String())
	}

	for i := 0; i < killAfter; i++ {
		if code := crashPost(t, base+"/ingest?wait=1", crashBatchBody(i)); code != http.StatusOK {
			t.Fatalf("batch %d acked with %d", i, code)
		}
		if i%crashRotateMod == crashRotateMod-1 {
			if code := crashPost(t, base+"/rotate", ""); code != http.StatusOK {
				t.Fatalf("rotate after batch %d: %d", i, code)
			}
		}
		if i == crashCkptBatch {
			if code := crashPost(t, base+"/checkpoint", ""); code != http.StatusOK {
				t.Fatalf("mid-feed checkpoint: %d", code)
			}
		}
	}
	// One more batch in flight, unacked, when the kill lands: the client
	// may or may not see it after restart — both are legal, and the metric
	// read below tells us which world we are in.
	var inflight sync.WaitGroup
	inflight.Add(1)
	go func() {
		defer inflight.Done()
		resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(crashBatchBody(killAfter)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
	if err := victim.Process.Kill(); err != nil { // SIGKILL — no handler runs
		t.Fatal(err)
	}
	victim.Wait() // reaps the zombie; a kill error is the expected exit
	inflight.Wait()

	// --- Phase 2: restart on the same directories (in-process, so replay
	// runs under the race detector when the suite does).
	base2, sig2, errc2, out2 := startDaemon(t, args)
	defer stopDaemon(t, sig2, errc2)
	if !strings.Contains(out2.String(), "restored checkpoint") {
		t.Fatalf("restart did not restore the mid-feed checkpoint:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), "replayed") {
		t.Fatalf("restart replayed nothing:\n%s", out2.String())
	}
	_, metricsBody := httpGet(t, base2+"/metrics")
	m := metricRe.FindStringSubmatch(metricsBody)
	if m == nil {
		t.Fatalf("edges_ingested missing from /metrics:\n%s", metricsBody)
	}
	var tail int
	fmt.Sscan(m[1], &tail)
	// The counter is process-local: after restart it counts exactly the
	// replayed tail — acked batches above the checkpoint, plus possibly the
	// one in-flight batch if its record reached the log intact.
	ackedTail := (killAfter - crashCkptBatch - 1) * crashBatchEdges
	finalIncluded := false
	switch tail {
	case ackedTail:
	case ackedTail + crashBatchEdges:
		finalIncluded = true
	default:
		t.Fatalf("replayed %d edges; acked tail is %d — kill -9 %s acked data (seed %d)",
			tail, ackedTail,
			map[bool]string{true: "duplicated", false: "lost"}[tail > ackedTail], seed)
	}
	t.Logf("killed after batch %d; in-flight batch logged before kill: %v", killAfter, finalIncluded)

	// --- Phase 3: the twin absorbs the effective prefix uninterrupted.
	twinSpool, twinWAL := t.TempDir(), t.TempDir()
	twinArgs := []string{"-mbits", "1048576", "-shards", "2", "-gens", "2",
		"-spool", twinSpool, "-wal-dir", twinWAL, "-wal-sync", "never",
		"-wal-segment-bytes", "65536"}
	base3, sig3, errc3, _ := startDaemon(t, twinArgs)
	defer stopDaemon(t, sig3, errc3)
	for i := 0; i < killAfter; i++ {
		if code := crashPost(t, base3+"/ingest?wait=1", crashBatchBody(i)); code != http.StatusOK {
			t.Fatalf("twin batch %d: %d", i, code)
		}
		if i%crashRotateMod == crashRotateMod-1 {
			crashPost(t, base3+"/rotate", "")
		}
	}
	if finalIncluded {
		crashPost(t, base3+"/ingest?wait=1", crashBatchBody(killAfter))
	}

	// Live answers agree...
	for _, q := range []string{"/total", "/estimate?user=3", "/estimate?user=250", "/healthz"} {
		_, got := httpGet(t, base2+q)
		_, want := httpGet(t, base3+q)
		if got != want {
			t.Fatalf("%s diverged after crash recovery:\n restored: %s\n twin:     %s", q, got, want)
		}
	}
	// ...and so does the full serialized state: checkpoint both and compare
	// the envelope byte for byte (same sketch bytes, same WAL position,
	// same in-epoch edge baseline).
	crashPost(t, base2+"/checkpoint", "")
	crashPost(t, base3+"/checkpoint", "")
	restoredCkpt, err := os.ReadFile(filepath.Join(spool, "current.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	twinCkpt, err := os.ReadFile(filepath.Join(twinSpool, "current.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restoredCkpt, twinCkpt) {
		t.Fatalf("serialized state after crash recovery differs from the twin (%d vs %d bytes, seed %d)",
			len(restoredCkpt), len(twinCkpt), seed)
	}
}
