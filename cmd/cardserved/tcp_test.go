package main

// CWT1 daemon coverage: the -tcp-addr listener serves pipelined binary
// ingest alongside HTTP, survives the full SIGTERM lifecycle, and — the
// acceptance bar — holds the ack contract across SIGKILL: every frame the
// client saw acked over TCP is present after a crash restart, with at most
// the client's in-flight window additionally logged.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stream"
)

var tcpListenRe = regexp.MustCompile(`tcp ingest on ([0-9.:\[\]]+)`)

// waitForTCPAddr polls the daemon's output for the CWT1 listener line.
func waitForTCPAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := tcpListenRe.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never announced a tcp listener:\n%s", out.String())
	return ""
}

// dialCWT1 connects and sends the protocol preamble.
func dialCWT1(t *testing.T, addr string) *net.TCPConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(stream.TCPMagic)); err != nil {
		t.Fatal(err)
	}
	return conn.(*net.TCPConn)
}

// TestDaemonTCPIngest: frames sent over -tcp-addr are acked, absorbed, and
// visible to HTTP queries; the daemon still stops cleanly on SIGTERM with
// the connection open.
func TestDaemonTCPIngest(t *testing.T) {
	base, sig, errc, out := startDaemon(t, []string{
		"-mbits", "1048576", "-shards", "2", "-tcp-addr", "127.0.0.1:0"})
	tcpAddr := waitForTCPAddr(t, out)

	conn := dialCWT1(t, tcpAddr)
	defer conn.Close()
	payload := stream.AppendWire(nil, []stream.Edge{
		{User: 1, Item: 100}, {User: 1, Item: 101}, {User: 1, Item: 102}, {User: 2, Item: 100}})
	frame := stream.AppendFrameHeader(nil, 1, len(payload))
	if _, err := conn.Write(append(frame, payload...)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var rec [stream.AckLen]byte
	if _, err := io.ReadFull(conn, rec[:]); err != nil {
		t.Fatal(err)
	}
	seq, status, err := stream.ParseAck(rec[:])
	if err != nil || seq != 1 || status != stream.AckOK {
		t.Fatalf("ack (%d, %d, %v)", seq, status, err)
	}

	// The ack means logged-and-queued; /flush is the absorption barrier.
	resp, err := http.Post(base+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	code, body := httpGet(t, base+"/estimate?user=1")
	if code != http.StatusOK || !strings.Contains(body, `"estimate":3`) {
		t.Fatalf("estimate after TCP ingest: %d %s", code, body)
	}
	_, metricsBody := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"cardserved_tcp_connections_active 1",
		"cardserved_tcp_frames_total 1",
		`cardserved_tcp_acks_total{status="200"} 1`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
	stopDaemon(t, sig, errc)
}

// crashBatch renders batch i of the same deterministic stream
// crashBatchBody emits, as binary edges.
func crashBatch(i int) []stream.Edge {
	edges := make([]stream.Edge, crashBatchEdges)
	for j := range edges {
		edges[j] = stream.Edge{User: uint64((i*7 + j) % 500), Item: uint64(i*crashBatchEdges + j)}
	}
	return edges
}

// TestDaemonSIGKILLRecoveryTCP: the TCP ack contract under kill -9. A real
// cardserved process takes pipelined CWT1 frames (window W in flight);
// SIGKILL lands mid-stream. After an in-process restart on the same WAL,
// the replayed edge count E must sit in the acked-prefix window
//
//	A*batch <= E <= (A+W)*batch, E ≡ 0 (mod batch)
//
// where A is the number of 200 acks the client had READ — an acked frame
// may never be lost, and only the unacked in-flight window may have
// additionally reached the log. A twin absorbing exactly the logged prefix
// must then match the restored daemon byte for byte.
func TestDaemonSIGKILLRecoveryTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "cardserved")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building cardserved: %v\n%s", err, out)
	}

	spool, walDir := t.TempDir(), t.TempDir()
	args := []string{"-mbits", "1048576", "-shards", "2", "-gens", "2",
		"-spool", spool, "-wal-dir", walDir, "-wal-sync", "never",
		"-wal-segment-bytes", "65536", "-tcp-addr", "127.0.0.1:0"}
	// -wal-sync never: as in the HTTP variant, SIGKILL durability must come
	// from write(2)-before-ack alone.

	seed := time.Now().UnixNano()
	t.Logf("kill-point seed %d", seed)
	rng := rand.New(rand.NewSource(seed))

	victimOut := &syncBuffer{}
	victim := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	victim.Stdout = victimOut
	victim.Stderr = victimOut
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	tcpAddr := waitForTCPAddr(t, victimOut)

	conn := dialCWT1(t, tcpAddr)
	defer conn.Close()
	const window = 4
	sem := make(chan struct{}, window)
	var acked atomic.Int64
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		br := bufio.NewReader(conn)
		var rec [stream.AckLen]byte
		for {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return // kill lands: reset/EOF; acked holds the read prefix
			}
			if _, status, err := stream.ParseAck(rec[:]); err != nil || status != stream.AckOK {
				return
			}
			acked.Add(1)
			<-sem
		}
	}()
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var buf []byte
		for i := 0; i < crashBatches; i++ {
			select {
			case sem <- struct{}{}: // at most `window` unacked frames in flight
			case <-readerDone: // kill landed; nothing will drain the window
				return
			}
			payload := stream.AppendWire(buf[:0], crashBatch(i))
			frame := stream.AppendFrameHeader(nil, uint64(i+1), len(payload))
			if _, err := conn.Write(append(frame, payload...)); err != nil {
				return // killed mid-stream — expected
			}
			buf = payload
		}
	}()
	time.Sleep(time.Duration(5+rng.Intn(40)) * time.Millisecond)
	if err := victim.Process.Kill(); err != nil { // SIGKILL — no handler runs
		t.Fatal(err)
	}
	victim.Wait()
	conn.CloseRead() // unblock the ack reader if the RST was swallowed
	<-readerDone
	conn.Close()
	<-writerDone
	ackedN := int(acked.Load())
	t.Logf("client had read %d acks at kill time", ackedN)

	// Restart in-process on the same directories; the WAL tail IS the
	// ingest history (no mid-feed checkpoint in this variant).
	base2, sig2, errc2, out2 := startDaemon(t, args)
	defer stopDaemon(t, sig2, errc2)
	if ackedN > 0 && !strings.Contains(out2.String(), "replayed") {
		t.Fatalf("restart replayed nothing after %d acked frames:\n%s", ackedN, out2.String())
	}
	_, metricsBody := httpGet(t, base2+"/metrics")
	m := metricRe.FindStringSubmatch(metricsBody)
	if m == nil {
		t.Fatalf("edges_ingested missing from /metrics:\n%s", metricsBody)
	}
	var replayed int
	fmt.Sscan(m[1], &replayed)
	if replayed%crashBatchEdges != 0 {
		t.Fatalf("replayed %d edges — not whole frames (frame = %d edges, seed %d)",
			replayed, crashBatchEdges, seed)
	}
	logged := replayed / crashBatchEdges
	if logged < ackedN || logged > ackedN+window {
		t.Fatalf("replayed %d frames, acked prefix %d, window %d: kill -9 %s acked data (seed %d)",
			logged, ackedN, window,
			map[bool]string{true: "duplicated", false: "lost"}[logged > ackedN+window], seed)
	}
	t.Logf("%d frames logged (acked prefix %d, window %d)", logged, ackedN, window)

	// The twin absorbs exactly the logged prefix, uninterrupted, over HTTP:
	// transport must not matter to the replayed state.
	twinSpool, twinWAL := t.TempDir(), t.TempDir()
	twinArgs := []string{"-mbits", "1048576", "-shards", "2", "-gens", "2",
		"-spool", twinSpool, "-wal-dir", twinWAL, "-wal-sync", "never",
		"-wal-segment-bytes", "65536"}
	base3, sig3, errc3, _ := startDaemon(t, twinArgs)
	defer stopDaemon(t, sig3, errc3)
	for i := 0; i < logged; i++ {
		if code := crashPost(t, base3+"/ingest?wait=1", crashBatchBody(i)); code != http.StatusOK {
			t.Fatalf("twin batch %d: %d", i, code)
		}
	}
	for _, q := range []string{"/total", "/estimate?user=3", "/estimate?user=250", "/healthz"} {
		_, got := httpGet(t, base2+q)
		_, want := httpGet(t, base3+q)
		if got != want {
			t.Fatalf("%s diverged after TCP crash recovery:\n restored: %s\n twin:     %s", q, got, want)
		}
	}
	crashPost(t, base2+"/checkpoint", "")
	crashPost(t, base3+"/checkpoint", "")
	restoredCkpt, err := os.ReadFile(filepath.Join(spool, "current.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	twinCkpt, err := os.ReadFile(filepath.Join(twinSpool, "current.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restoredCkpt, twinCkpt) {
		t.Fatalf("serialized state after TCP crash recovery differs from the twin (%d vs %d bytes, seed %d)",
			len(restoredCkpt), len(twinCkpt), seed)
	}
}
