package streamcard

// Tests for the user-enumeration contracts introduced with the flat
// estimate table: Users is sorted (per shard, for Sharded) and fully
// deterministic; RangeUsers visits the same entries without the sort.

import (
	"slices"
	"testing"
)

func collectUsers(est AnytimeEstimator) ([]uint64, map[uint64]float64) {
	var order []uint64
	sums := make(map[uint64]float64)
	est.Users(func(u uint64, e float64) {
		order = append(order, u)
		sums[u] = e
	})
	return order, sums
}

// TestUsersSortedAndRangeUsersAgree: for every AnytimeEstimator layer,
// Users enumerates in ascending order (within a shard, for Sharded) and
// RangeUsers reports exactly the same user→estimate assignment.
func TestUsersSortedAndRangeUsersAgree(t *testing.T) {
	edges := randomEdges(77, 40000, 500, 3000)
	stacks := map[string]AnytimeEstimator{
		"FreeBS": NewFreeBS(1 << 18),
		"FreeRS": NewFreeRS(1 << 18),
		"Windowed": NewWindowed(func() Estimator { return NewFreeRS(1 << 18) },
			WithGenerations(3), WithRotateEveryEdges(9000)),
		"Sharded": NewSharded(4, func(i int) Estimator {
			return NewFreeRS(1<<18, WithSeed(uint64(i)+1))
		}),
	}
	for name, est := range stacks {
		est.ObserveBatch(edges)
		order, sums := collectUsers(est)
		if len(order) == 0 {
			t.Fatalf("%s: no users enumerated", name)
		}
		sortedWithin := slices.IsSorted(order)
		if name == "Sharded" {
			// Sorted within each shard; across shards the order is the
			// fixed shard order, not global. Verified via determinism below
			// plus the per-shard sortedness the estimate table guarantees —
			// here just check there are no duplicates.
			unique := make(map[uint64]bool, len(order))
			for _, u := range order {
				if unique[u] {
					t.Fatalf("%s: user %d enumerated twice", name, u)
				}
				unique[u] = true
			}
		} else if !sortedWithin {
			t.Fatalf("%s: Users not in ascending order", name)
		}
		r, ok := est.(UserRanger)
		if !ok {
			t.Fatalf("%s does not implement UserRanger", name)
		}
		seen := 0
		r.RangeUsers(func(u uint64, e float64) {
			seen++
			if want, okU := sums[u]; !okU || want != e {
				t.Fatalf("%s: RangeUsers reports %d=%v, Users reported %v (present %v)",
					name, u, e, sums[u], okU)
			}
		})
		if seen != len(sums) {
			t.Fatalf("%s: RangeUsers visited %d users, Users %d", name, seen, len(sums))
		}
	}
}

// TestUsersDeterministicAcrossTwins: two identically configured stacks fed
// the same stream enumerate users in exactly the same order with exactly
// the same estimates — the reproducibility /users consumers rely on.
func TestUsersDeterministicAcrossTwins(t *testing.T) {
	edges := randomEdges(91, 30000, 400, 2500)
	build := func() AnytimeEstimator {
		return NewSharded(4, func(int) Estimator {
			return NewWindowed(func() Estimator { return NewFreeRS(1<<17, WithSeed(5)) },
				WithGenerations(3), WithRotateEveryEdges(7000))
		})
	}
	a, b := build(), build()
	a.ObserveBatch(edges)
	b.ObserveBatch(edges)
	orderA, sumsA := collectUsers(a)
	orderB, sumsB := collectUsers(b)
	if !slices.Equal(orderA, orderB) {
		t.Fatal("twin stacks enumerate users in different orders")
	}
	for u, e := range sumsA {
		if sumsB[u] != e {
			t.Fatalf("user %d: %v vs %v", u, e, sumsB[u])
		}
	}
}
