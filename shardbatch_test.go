package streamcard

// ObserveShardBatch is the shard-direct fast path the server's ingest
// pipeline absorbs through: the caller partitions a batch once (with the
// same routing ObserveBatch uses) and feeds each shard its pure sub-batch
// directly. The contract is the same bit-identical one every other batch
// path carries — as long as each shard receives its sub-batches in batch
// order, it does not matter which goroutine delivers them or how the
// shards interleave with each other.

import (
	"sync"
	"testing"

	"repro/internal/stream"
)

// TestObserveShardBatchMatchesObserveBatch: partition + per-shard
// ObserveShardBatch (shards visited in reverse, to prove cross-shard order
// is free) == ObserveBatch == sequential Observe, exactly.
func TestObserveShardBatchMatchesObserveBatch(t *testing.T) {
	build := func() *Sharded { return newShardedFreeRS(8) }
	seq, bat, direct := build(), build(), build()
	part := stream.NewPartitioner(direct.NumShards(), direct.ShardIndex)

	edges := burstStream(12000, 77)
	for _, e := range edges {
		seq.Observe(e.User, e.Item)
	}
	for i, chunks := 0, []int{1, 9, 512, 83, 2048}; i < len(edges); {
		c := chunks[i%len(chunks)]
		if i+c > len(edges) {
			c = len(edges) - i
		}
		chunk := edges[i : i+c]
		bat.ObserveBatch(chunk)
		b := part.Split(chunk)
		for s := direct.NumShards() - 1; s >= 0; s-- {
			if sub := b.Shard(s); len(sub) > 0 {
				direct.ObserveShardBatch(s, sub)
			}
		}
		b.Release()
		i += c
	}

	seen := map[uint64]struct{}{}
	for _, e := range edges {
		if _, ok := seen[e.User]; ok {
			continue
		}
		seen[e.User] = struct{}{}
		want := seq.Estimate(e.User)
		if got := bat.Estimate(e.User); got != want {
			t.Fatalf("user %d: ObserveBatch %v != sequential %v", e.User, got, want)
		}
		if got := direct.Estimate(e.User); got != want {
			t.Fatalf("user %d: ObserveShardBatch %v != sequential %v", e.User, got, want)
		}
	}
	if got, want := direct.TotalDistinct(), seq.TotalDistinct(); got != want {
		t.Fatalf("TotalDistinct: shard-direct %v != sequential %v", got, want)
	}
}

// TestObserveShardBatchConcurrentExecutors models the server's pipeline in
// miniature: one goroutine per shard draining a FIFO of shard-pure
// sub-batches. Per-shard FIFO is the only ordering — under -race this
// proves the single-writer discipline, and the exact-equality check proves
// it is enough for bit-identical results.
func TestObserveShardBatchConcurrentExecutors(t *testing.T) {
	const shards = 8
	seq := newShardedFreeRS(shards)
	conc := newShardedFreeRS(shards)
	part := stream.NewPartitioner(shards, conc.ShardIndex)

	queues := make([]chan []Edge, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		queues[s] = make(chan []Edge, 4)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for sub := range queues[s] {
				conc.ObserveShardBatch(s, sub)
			}
		}(s)
	}

	edges := burstStream(20000, 13)
	for _, e := range edges {
		seq.Observe(e.User, e.Item)
	}
	for i := 0; i < len(edges); i += 731 {
		end := min(i+731, len(edges))
		b := part.Split(edges[i:end])
		for s := 0; s < shards; s++ {
			if sub := b.Shard(s); len(sub) > 0 {
				// Copy: the executor may still be reading when b is released.
				queues[s] <- append([]Edge(nil), sub...)
			}
		}
		b.Release()
	}
	for s := range queues {
		close(queues[s])
	}
	wg.Wait()

	seen := map[uint64]struct{}{}
	for _, e := range edges {
		if _, ok := seen[e.User]; ok {
			continue
		}
		seen[e.User] = struct{}{}
		if got, want := conc.Estimate(e.User), seq.Estimate(e.User); got != want {
			t.Fatalf("user %d: concurrent executors %v != sequential %v", e.User, got, want)
		}
	}
	if got, want := conc.TotalDistinct(), seq.TotalDistinct(); got != want {
		t.Fatalf("TotalDistinct: %v != %v", got, want)
	}
}

func TestObserveShardBatchPanicsOutOfRange(t *testing.T) {
	s := newShardedFreeRS(4)
	edges := []Edge{{User: 1, Item: 1}}
	mustPanic(t, func() { s.ObserveShardBatch(-1, edges) })
	mustPanic(t, func() { s.ObserveShardBatch(4, edges) })
}
