package streamcard

// Tests for writer-side snapshot publication: query latency must stay flat
// while large batches absorb (the reader never takes a shard lock on the
// serving path), read-your-writes must survive the inversion, and the
// cross-shard view publication must never let a slower assembler overwrite
// a fresher view (the CompareAndSwap in publishView).

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/hashing"
)

func freshTestStack(shards, gens, mbits int) *Sharded {
	per := mbits / shards
	return NewSharded(shards, func(int) Estimator {
		return NewWindowed(func() Estimator {
			return NewFreeRS(per, WithSeed(1))
		}, WithGenerations(gens))
	})
}

func freshTestBatch(seed uint64, n, users int) []Edge {
	rng := hashing.NewRNG(seed)
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{User: uint64(rng.Intn(users) + 1), Item: rng.Uint64()}
	}
	return edges
}

// TestSnapshotFreshUnderWritePressure asserts the core serving property of
// writer-side publication: a query issued while 65k-edge batches are
// absorbing does not queue behind the batch. It measures every batch
// absorb and every query, then requires the queries' p90 to sit far below
// the median batch — under the old reader-pays design the snapshot was
// stale on essentially every query, so queries waited out whole batches
// and query latency tracked batch latency instead.
func TestSnapshotFreshUnderWritePressure(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive torture test")
	}
	s := freshTestStack(4, 4, 1<<22)
	batch := freshTestBatch(1, 65536, 50_000)
	s.ObserveBatch(batch)
	if s.Snapshot() == nil { // warm the view and arm writer publication
		t.Fatal("stack is not snapshottable")
	}

	var (
		stop     sync.WaitGroup
		done     = make(chan struct{})
		batchMu  sync.Mutex
		batchDur []float64
	)
	for w := 0; w < 2; w++ {
		stop.Add(1)
		go func(seed uint64) {
			defer stop.Done()
			b := freshTestBatch(seed, 65536, 50_000)
			for {
				select {
				case <-done:
					return
				default:
				}
				t0 := time.Now()
				s.ObserveBatch(b)
				d := time.Since(t0).Seconds()
				batchMu.Lock()
				batchDur = append(batchDur, d)
				batchMu.Unlock()
			}
		}(uint64(2 + w))
	}

	var queryDur []float64
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		t0 := time.Now()
		v := s.Snapshot()
		_ = v.Estimate(uint64(len(queryDur)%50_000 + 1))
		queryDur = append(queryDur, time.Since(t0).Seconds())
	}
	close(done)
	stop.Wait()

	if len(queryDur) < 100 || len(batchDur) < 4 {
		t.Fatalf("degenerate run: %d queries, %d batches", len(queryDur), len(batchDur))
	}
	sort.Float64s(queryDur)
	sort.Float64s(batchDur)
	q90 := queryDur[len(queryDur)*9/10]
	batchMed := batchDur[len(batchDur)/2]
	// Queries are atomic-load assembly (microseconds); batches are
	// millisecond-scale absorbs. Allow generous scheduler noise with an
	// absolute floor, but a reader-pays regression — where q90 rises to
	// roughly a batch absorb — must fail.
	bound := batchMed / 4
	if floor := 2e-3; bound < floor {
		bound = floor
	}
	if q90 > bound {
		t.Fatalf("query p90 %.3fms vs median batch %.3fms: queries are waiting out batch absorbs",
			q90*1e3, batchMed*1e3)
	}
}

// TestSnapshotReadYourWritesAfterBatch pins the ?wait=1 contract under
// writer publication: once ObserveBatch returns, a Snapshot taken by any
// goroutine reflects the batch with no extra synchronization.
func TestSnapshotReadYourWritesAfterBatch(t *testing.T) {
	s := freshTestStack(4, 3, 1<<18)
	s.ObserveBatch(freshTestBatch(7, 20_000, 5_000))
	_ = s.Snapshot() // arm publication

	const user = 999_999_937 // fresh user, not in the workload range
	batch := make([]Edge, 64)
	for i := range batch {
		batch[i] = Edge{User: user, Item: uint64(i)}
	}
	s.ObserveBatch(batch)
	if got := s.Snapshot().Estimate(user); got <= 0 {
		t.Fatalf("estimate %v for a user whose batch already returned", got)
	}
	// And per-edge writes publish too. (Several items: a single observation
	// can legitimately estimate 0 when it lands on an already-set shared
	// register — the sketch property, not a publication question.)
	const user2 = 999_999_991
	for i := 0; i < 64; i++ {
		s.Observe(user2, uint64(i))
	}
	if got := s.Snapshot().Estimate(user2); got <= 0 {
		t.Fatalf("estimate %v for a user whose Observe calls already returned", got)
	}
}

// TestPublishViewLoserNeverOverwrites drives the publishView CAS through
// its three deterministic outcomes. The regression it pins: with a plain
// Store, a slow assembler that collected before a newer write could
// overwrite the fresher published view — later readers would re-assemble
// (correct but wasted work) and the fresher view's cached merged total
// would be discarded.
func TestPublishViewLoserNeverOverwrites(t *testing.T) {
	s := freshTestStack(2, 2, 1<<16)
	s.ObserveBatch(freshTestBatch(11, 5_000, 1_000))

	vOld := s.Snapshot()
	s.Observe(42, 42) // vOld is now stale
	vFresh := s.Snapshot()
	if vFresh == vOld {
		t.Fatal("Snapshot reused a stale view")
	}
	if got := s.set.Load(); got != vFresh {
		t.Fatalf("fresh view not published: %p != %p", got, vFresh)
	}

	// A slow assembler replays: it had loaded prev=vOld and assembled the
	// pre-write cut (vOld itself stands in for it). CAS(vOld->vOld) must
	// fail against the published vFresh, and since vFresh is fresh the
	// loser adopts it; the published pointer must not move.
	if got := s.publishView(vOld, vOld); got != vFresh {
		t.Fatalf("loser did not adopt the fresh winner: %p != %p", got, vFresh)
	}
	if got := s.set.Load(); got != vFresh {
		t.Fatal("stale view overwrote the fresh published one")
	}

	// Now the winner itself goes stale: a losing assembler holding a view
	// collected AFTER the staling write must return its own view (its cut
	// reflects the caller's writes; the stale winner does not) and still
	// must not dislodge the published pointer with a plain store.
	s.Observe(43, 43) // vFresh is now stale
	vNew, ok := s.collect()
	if !ok {
		t.Fatal("collect failed on a quiescent stack")
	}
	if got := s.publishView(vOld, vNew); got != vNew {
		t.Fatalf("loser with the freshest cut did not return it: %p != %p", got, vNew)
	}
	if got := s.set.Load(); got != vFresh {
		t.Fatal("publishView stored through a failed CAS")
	}

	// The straight win: CAS from the current published pointer installs.
	if got := s.publishView(vFresh, vNew); got != vNew || s.set.Load() != vNew {
		t.Fatal("CAS from the current published view did not install")
	}
}

// TestPublishViewRaceStorm hammers Snapshot from many goroutines against
// concurrent writers and rotations — the -race regression test for the
// publication CAS — and then checks the system settles on a stable fresh
// view once writes stop.
func TestPublishViewRaceStorm(t *testing.T) {
	s := freshTestStack(4, 3, 1<<18)
	s.ObserveBatch(freshTestBatch(13, 10_000, 2_000))

	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			b := freshTestBatch(seed, 2_048, 2_000)
			for {
				select {
				case <-done:
					return
				default:
					s.ObserveBatch(b)
				}
			}
		}(uint64(17 + w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
				s.Rotate()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := hashing.NewRNG(seed)
			for {
				select {
				case <-done:
					return
				default:
					v := s.Snapshot()
					_ = v.Estimate(uint64(rng.Intn(2_000) + 1))
					if rng.Intn(8) == 0 {
						_, _ = v.TotalDistinctMerged()
					}
				}
			}
		}(uint64(31 + r))
	}
	time.Sleep(300 * time.Millisecond)
	close(done)
	wg.Wait()

	final := s.Snapshot()
	if final == nil || !final.fresh(s) {
		t.Fatal("settled stack does not publish a fresh view")
	}
	if again := s.Snapshot(); again != final {
		t.Fatal("repeated Snapshot of an unwritten stack did not reuse the published view")
	}
}
