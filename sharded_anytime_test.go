package streamcard

// Tests for the AnytimeEstimator fan-out on Sharded (Users/NumUsers and
// therefore TopK) and for merged totals over Windowed shards — the surfaces
// the cardinality service queries on a sharded deployment.

import (
	"math"
	"sync"
	"testing"

	"repro/internal/hashing"
	"repro/internal/stream"
)

func randomEdges(seed uint64, n, users, items int) []Edge {
	rng := hashing.NewRNG(seed)
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{User: uint64(rng.Intn(users)), Item: rng.Uint64() % uint64(items)}
	}
	return edges
}

// TestShardedUsersMatchesUnshardedTwin pins the determinism contract: a
// one-shard Sharded is byte-for-byte the wrapped estimator, so Users,
// NumUsers, and TopK must be bit-identical to an unsharded twin fed the
// same stream with the same seed.
func TestShardedUsersMatchesUnshardedTwin(t *testing.T) {
	edges := randomEdges(11, 30000, 300, 5000)
	twin := NewFreeRS(1<<20, WithSeed(7))
	s := NewSharded(1, func(int) Estimator { return NewFreeRS(1<<20, WithSeed(7)) })
	twin.ObserveBatch(edges)
	s.ObserveBatch(edges)

	if s.NumUsers() != twin.NumUsers() {
		t.Fatalf("NumUsers %d vs twin %d", s.NumUsers(), twin.NumUsers())
	}
	want := make(map[uint64]float64)
	twin.Users(func(u uint64, e float64) { want[u] = e })
	seen := 0
	s.Users(func(u uint64, e float64) {
		seen++
		if want[u] != e {
			t.Fatalf("user %d: sharded estimate %v, twin %v", u, e, want[u])
		}
	})
	if seen != len(want) {
		t.Fatalf("enumerated %d users, twin has %d", seen, len(want))
	}
	st, tt := TopK(s, 10), TopK(twin, 10)
	if len(st) != len(tt) {
		t.Fatalf("TopK lengths %d vs %d", len(st), len(tt))
	}
	for i := range st {
		if st[i] != tt[i] {
			t.Fatalf("TopK[%d] %+v vs twin %+v", i, st[i], tt[i])
		}
	}
}

// TestShardedUsersPartition checks the multi-shard union: every observed
// user is reported exactly once, with the estimate the wrapper itself
// reports, and the count is the sum over shards.
func TestShardedUsersPartition(t *testing.T) {
	const users = 500
	edges := randomEdges(23, 60000, users, 4000)
	s := newShardedFreeRS(8)
	s.ObserveBatch(edges)

	reported := make(map[uint64]float64, users)
	s.Users(func(u uint64, e float64) {
		if _, dup := reported[u]; dup {
			t.Fatalf("user %d reported twice", u)
		}
		reported[u] = e
	})
	if len(reported) != users {
		t.Fatalf("enumerated %d users, want %d", len(reported), users)
	}
	if s.NumUsers() != users {
		t.Fatalf("NumUsers %d, want %d", s.NumUsers(), users)
	}
	for u, e := range reported {
		if got := s.Estimate(u); got != e {
			t.Fatalf("user %d: Users reported %v, Estimate returns %v", u, e, got)
		}
	}
}

// TestShardedTopKDeterministic: two identically built sharded instances —
// one fed sequentially, one from 8 goroutines with shard-pure sub-batches —
// must agree exactly on TopK, because users partition across shards and
// each shard's sub-stream arrives in order.
func TestShardedTopKDeterministic(t *testing.T) {
	edges := randomEdges(31, 40000, 400, 3000)
	build := func() *Sharded {
		return NewSharded(4, func(i int) Estimator { return NewFreeRS(1<<19, WithSeed(uint64(i)+1)) })
	}
	seq, conc := build(), build()
	seq.ObserveBatch(edges)

	perShard := make([][]Edge, conc.NumShards())
	stream.ForEachRun(edges, func(u uint64, run []Edge) {
		i := conc.ShardIndex(u)
		perShard[i] = append(perShard[i], run...)
	})
	var wg sync.WaitGroup
	for _, sub := range perShard {
		wg.Add(1)
		go func(sub []Edge) {
			defer wg.Done()
			for len(sub) > 0 {
				n := 1000
				if n > len(sub) {
					n = len(sub)
				}
				conc.ObserveBatch(sub[:n])
				sub = sub[n:]
			}
		}(sub)
	}
	wg.Wait()

	a, b := TopK(seq, 20), TopK(conc, 20)
	if len(a) != len(b) {
		t.Fatalf("TopK lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopK[%d]: sequential %+v vs concurrent %+v", i, a[i], b[i])
		}
	}
}

// TestShardedUsersPanicsOnNonAnytime mirrors Windowed's contract: shard
// estimators without maintained per-user estimates cannot enumerate users.
func TestShardedUsersPanicsOnNonAnytime(t *testing.T) {
	s := NewSharded(2, func(int) Estimator { return NewCSE(1<<16, 64) })
	mustPanic(t, func() { s.Users(func(uint64, float64) {}) })
	mustPanic(t, func() { s.NumUsers() })
}

// TestShardedWindowedMergedTotal: with a shared seed, merging the per-shard
// windowed sketches generation by generation reconstructs exactly the
// single-window twin fed the whole stream and rotated at the same
// positions — so the merged total must be bit-identical, not just close.
func TestShardedWindowedMergedTotal(t *testing.T) {
	const seed = 9
	buildWin := func() *Windowed {
		return NewWindowed(func() Estimator { return NewFreeRS(1<<18, WithSeed(seed)) },
			WithGenerations(3))
	}
	s := NewSharded(4, func(int) Estimator { return buildWin() })
	twin := buildWin()

	edges := randomEdges(41, 45000, 250, 2500)
	for i := 0; i < 3; i++ {
		chunk := edges[i*15000 : (i+1)*15000]
		s.ObserveBatch(chunk)
		twin.ObserveBatch(chunk)
		s.Rotate()
		twin.Rotate()
	}
	merged, err := s.TotalDistinctMerged()
	if err != nil {
		t.Fatalf("TotalDistinctMerged over Windowed shards: %v", err)
	}
	if want := twin.TotalDistinct(); merged != want {
		t.Fatalf("merged total %v, single-window twin %v", merged, want)
	}
	// Per-user estimates also survive the sharding (exactness of
	// user-partitioning under a shared seed is NOT expected — other users'
	// edges shape the shared array — but totals above are exact and the
	// window epochs must agree).
	if s.shards[0].est.(*Windowed).Epoch() != twin.Epoch() {
		t.Fatalf("epochs diverged")
	}
}

// TestShardedWindowedMergedTotalEpochMismatch: a shard rotated out of line
// must surface ErrIncompatible rather than a blended-time-range number.
func TestShardedWindowedMergedTotalEpochMismatch(t *testing.T) {
	s := NewSharded(2, func(int) Estimator {
		return NewWindowed(func() Estimator { return NewFreeRS(1<<16, WithSeed(3)) })
	})
	s.ObserveBatch(randomEdges(5, 1000, 50, 500))
	s.shards[1].est.(*Windowed).Rotate() // bypass Sharded.Rotate: desync
	if _, err := s.TotalDistinctMerged(); err == nil {
		t.Fatal("merged total over desynced windows succeeded")
	}
	sum := s.TotalDistinct() // the fallback keeps working
	if sum <= 0 || math.IsNaN(sum) {
		t.Fatalf("fallback TotalDistinct %v", sum)
	}
}
