package streamcard

// Integration tests: exercise the full pipeline — dataset synthesis, stream
// codec round trip, every estimator, ground truth, metrics — across module
// boundaries, the paths a downstream user strings together.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/exact"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// TestEndToEndDatasetToMetrics replays a generated dataset through every
// estimator and checks the headline accuracy ordering on RSE bins.
func TestEndToEndDatasetToMetrics(t *testing.T) {
	cfg, err := datagen.PaperConfig("flickr", 0.002, 21)
	if err != nil {
		t.Fatal(err)
	}
	d := datagen.Generate(cfg)
	truth := exact.NewTracker()
	if err := truth.ObserveStream(d.Stream()); err != nil {
		t.Fatal(err)
	}
	const M = 1000000 // 5e8 × 0.002
	ests := []Estimator{
		NewFreeBS(M),
		NewFreeRS(M),
		NewCSE(M, 1024),
		NewVHLL(M, 1024),
	}
	for _, e := range d.Edges {
		for _, est := range ests {
			est.Observe(e.User, e.Item)
		}
	}
	rse := make(map[string][]metrics.RSEBin, len(ests))
	for _, est := range ests {
		var pairs []metrics.Pair
		truth.Users(func(u uint64, card int) {
			pairs = append(pairs, metrics.Pair{Actual: card, Estimate: est.Estimate(u)})
		})
		rse[est.Name()] = metrics.RSEBinned(pairs, 5)
	}
	// Paper ordering in the smallest bin: FreeBS < CSE, FreeRS < vHLL.
	if rse["FreeBS"][0].RSE >= rse["CSE"][0].RSE {
		t.Fatalf("FreeBS %v !< CSE %v at small cardinalities",
			rse["FreeBS"][0].RSE, rse["CSE"][0].RSE)
	}
	if rse["FreeRS"][0].RSE >= rse["vHLL"][0].RSE {
		t.Fatalf("FreeRS %v !< vHLL %v at small cardinalities",
			rse["FreeRS"][0].RSE, rse["vHLL"][0].RSE)
	}
}

// TestEndToEndStreamCodec generates a dataset, writes it through the binary
// codec, replays it from bytes, and checks an estimator sees the identical
// stream (same estimates).
func TestEndToEndStreamCodec(t *testing.T) {
	cfg := datagen.Config{
		Name: "codec", Users: 2000, MaxCard: 300, TotalCard: 15000,
		DuplicateRate: 0.2, Seed: 5,
	}
	d := datagen.Generate(cfg)

	var buf bytes.Buffer
	if err := stream.Write(&buf, d.Edges); err != nil {
		t.Fatal(err)
	}
	r, err := stream.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}

	direct := NewFreeRS(1<<20, WithSeed(9))
	replayed := NewFreeRS(1<<20, WithSeed(9))
	for _, e := range d.Edges {
		direct.Observe(e.User, e.Item)
	}
	if err := stream.ForEach(r, func(e stream.Edge) { replayed.Observe(e.User, e.Item) }); err != nil {
		t.Fatal(err)
	}
	if direct.TotalDistinct() != replayed.TotalDistinct() {
		t.Fatal("codec replay diverged from direct feed")
	}
	for u := 0; u < cfg.Users; u += 97 {
		if direct.Estimate(uint64(u)) != replayed.Estimate(uint64(u)) {
			t.Fatalf("user %d estimate differs after codec round trip", u)
		}
	}
}

// TestEndToEndCheckpointFacade round-trips the facade-level checkpoint under
// live traffic.
func TestEndToEndCheckpointFacade(t *testing.T) {
	for _, build := range []func() interface {
		Estimator
		MarshalBinary() ([]byte, error)
	}{
		func() interface {
			Estimator
			MarshalBinary() ([]byte, error)
		} {
			return NewFreeBS(1 << 16)
		},
		func() interface {
			Estimator
			MarshalBinary() ([]byte, error)
		} {
			return NewFreeRS(1 << 16)
		},
	} {
		orig := build()
		for i := 0; i < 20000; i++ {
			orig.Observe(uint64(i%300), uint64(i))
		}
		data, err := orig.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		switch o := orig.(type) {
		case *FreeBS:
			restored := NewFreeBS(64)
			if err := restored.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			if restored.TotalDistinct() != o.TotalDistinct() {
				t.Fatal("FreeBS facade restore mismatch")
			}
			if err := restored.UnmarshalBinary([]byte("junk")); err == nil {
				t.Fatal("junk accepted")
			}
			// Failed restore must not clobber previous state.
			if restored.TotalDistinct() != o.TotalDistinct() {
				t.Fatal("failed restore clobbered state")
			}
		case *FreeRS:
			restored := NewFreeRS(64)
			if err := restored.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			if restored.TotalDistinct() != o.TotalDistinct() {
				t.Fatal("FreeRS facade restore mismatch")
			}
		}
	}
}

// TestDeterministicEndToEnd pins the full pipeline: same config, same seed,
// same estimates — across dataset generation, shuffling, and estimation.
func TestDeterministicEndToEnd(t *testing.T) {
	runOnce := func() (float64, float64) {
		cfg, err := datagen.PaperConfig("chicago", 0.001, 33)
		if err != nil {
			t.Fatal(err)
		}
		d := datagen.Generate(cfg)
		est := NewFreeBS(500000, WithSeed(4))
		for _, e := range d.Edges {
			est.Observe(e.User, e.Item)
		}
		return est.TotalDistinct(), est.Estimate(0)
	}
	t1, e1 := runOnce()
	t2, e2 := runOnce()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("pipeline not deterministic: (%v,%v) vs (%v,%v)", t1, e1, t2, e2)
	}
}

// TestWindowedSpreaderPipeline chains the windowed wrapper with TopK on a
// stream whose heavy hitter changes between epochs — the "recent anomaly"
// monitoring pattern.
func TestWindowedSpreaderPipeline(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 20) })
	// Epoch 0: user 100 is the heavy hitter.
	for i := 0; i < 20000; i++ {
		w.Observe(100, uint64(i))
		w.Observe(uint64(i%50), uint64(i%40))
	}
	w.Rotate()
	w.Rotate() // age epoch 0 out entirely
	// Epoch 2: user 200 takes over.
	for i := 0; i < 20000; i++ {
		w.Observe(200, uint64(i)|1<<42)
		w.Observe(uint64(i%50), uint64(i%40))
	}
	if old := w.Estimate(100); old != 0 {
		t.Fatalf("stale heavy hitter still visible: %v", old)
	}
	if now := w.Estimate(200); math.Abs(now-20000) > 2000 {
		t.Fatalf("current heavy hitter estimate %v", now)
	}
}

// TestShardedFullPipeline feeds a generated dataset through the sharded
// wrapper and compares per-user accuracy with ground truth.
func TestShardedFullPipeline(t *testing.T) {
	cfg := datagen.Config{
		Name: "sharded", Users: 5000, MaxCard: 1000, TotalCard: 60000,
		DuplicateRate: 0.15, Seed: 8,
	}
	d := datagen.Generate(cfg)
	truth := exact.NewTracker()
	s := NewSharded(4, func(i int) Estimator {
		return NewFreeBS(1<<20, WithSeed(uint64(i)+100))
	})
	for _, e := range d.Edges {
		s.Observe(e.User, e.Item)
		truth.Observe(e.User, e.Item)
	}
	var pairs []metrics.Pair
	truth.Users(func(u uint64, card int) {
		pairs = append(pairs, metrics.Pair{Actual: card, Estimate: s.Estimate(u)})
	})
	if are := metrics.AvgRelativeError(pairs); are > 0.25 {
		t.Fatalf("sharded ARE %v too high", are)
	}
}
