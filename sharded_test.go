package streamcard

import (
	"math"
	"sync"
	"testing"

	"repro/internal/exact"
	"repro/internal/hashing"
)

func newShardedFreeRS(n int) *Sharded {
	return NewSharded(n, func(i int) Estimator {
		return NewFreeRS(1<<20, WithSeed(uint64(i)+1))
	})
}

func TestShardedBasicAccuracy(t *testing.T) {
	s := newShardedFreeRS(4)
	truth := exact.NewTracker()
	rng := hashing.NewRNG(5)
	for i := 0; i < 50000; i++ {
		u, d := uint64(rng.Intn(200)), rng.Uint64()%3000
		s.Observe(u, d)
		truth.Observe(u, d)
	}
	bad := 0
	truth.Users(func(u uint64, card int) {
		if card < 50 {
			return
		}
		if math.Abs(s.Estimate(u)-float64(card)) > 0.3*float64(card) {
			bad++
		}
	})
	if bad > 3 {
		t.Fatalf("%d users badly estimated", bad)
	}
	total := s.TotalDistinct()
	want := float64(truth.TotalCardinality())
	if math.Abs(total-want) > 0.1*want {
		t.Fatalf("total %v, truth %v", total, want)
	}
}

func TestShardedConcurrentUse(t *testing.T) {
	// Hammer the wrapper from many goroutines; run under -race this test
	// proves the locking discipline. Each goroutine owns a user-ID range so
	// the final estimates are deterministic facts we can check.
	s := newShardedFreeRS(8)
	const (
		workers = 16
		perUser = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := uint64(w + 1)
			for i := 0; i < perUser; i++ {
				s.Observe(user, uint64(i)|user<<32)
				if i%100 == 0 {
					_ = s.Estimate(user)
					_ = s.TotalDistinct()
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		got := s.Estimate(uint64(w + 1))
		if math.Abs(got-perUser) > 0.25*perUser {
			t.Fatalf("user %d estimate %v, want ~%d", w+1, got, perUser)
		}
	}
}

func TestShardedSameUserSameShard(t *testing.T) {
	// All edges of one user must reach a single underlying estimator:
	// feeding a user through the wrapper equals feeding one shard directly.
	s := newShardedFreeRS(8)
	for i := 0; i < 2000; i++ {
		s.Observe(42, uint64(i))
	}
	nonZero := 0
	for i := range s.shards {
		if s.shards[i].est.Estimate(42) > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Fatalf("user 42 landed in %d shards, want exactly 1", nonZero)
	}
}

func TestShardedAccessors(t *testing.T) {
	s := newShardedFreeRS(3)
	if s.NumShards() != 3 {
		t.Fatalf("shards = %d", s.NumShards())
	}
	if s.Name() != "Sharded(FreeRS,3)" {
		t.Fatalf("name = %q", s.Name())
	}
	if s.MemoryBits() != 3*(1<<20)/5*5 {
		t.Fatalf("memory = %d", s.MemoryBits())
	}
}

func TestShardedPanics(t *testing.T) {
	mustPanic(t, func() { NewSharded(0, func(int) Estimator { return NewFreeBS(64) }) })
	mustPanic(t, func() { NewSharded(2, nil) })
	mustPanic(t, func() { NewSharded(2, func(int) Estimator { return nil }) })
}
