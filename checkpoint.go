package streamcard

// Checkpoint/restore for the headline estimators: a long-running monitor can
// persist its complete state (shared array + every user's running estimate +
// incremental bookkeeping) and resume after a restart in bit-identical
// lockstep with an uninterrupted instance. The underlying format is
// versioned and validated; see internal/core.

// MarshalBinary serializes the complete FreeBS state.
func (f *FreeBS) MarshalBinary() ([]byte, error) { return f.inner.MarshalBinary() }

// UnmarshalBinary restores state produced by MarshalBinary. The receiver's
// previous state (if any) is replaced only on success.
func (f *FreeBS) UnmarshalBinary(data []byte) error {
	restored := NewFreeBS(64) // placeholder; fully overwritten below
	if err := restored.inner.UnmarshalBinary(data); err != nil {
		return err
	}
	f.inner = restored.inner
	return nil
}

// MarshalBinary serializes the complete FreeRS state.
func (f *FreeRS) MarshalBinary() ([]byte, error) { return f.inner.MarshalBinary() }

// UnmarshalBinary restores state produced by MarshalBinary. The receiver's
// previous state (if any) is replaced only on success.
func (f *FreeRS) UnmarshalBinary(data []byte) error {
	restored := NewFreeRS(64)
	if err := restored.inner.UnmarshalBinary(data); err != nil {
		return err
	}
	f.inner = restored.inner
	return nil
}
