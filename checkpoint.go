package streamcard

// Checkpoint/restore for the headline estimators: a long-running monitor can
// persist its complete state (shared array + every user's running estimate +
// incremental bookkeeping) and resume after a restart in bit-identical
// lockstep with an uninterrupted instance. The underlying format is
// versioned and validated; see internal/core. Windowed adds its own envelope
// on top (all live generations plus epoch bookkeeping; see window.go).

import "repro/internal/core"

// MarshalBinary serializes the complete FreeBS state.
func (f *FreeBS) MarshalBinary() ([]byte, error) { return f.inner.MarshalBinary() }

// UnmarshalBinary restores state produced by MarshalBinary. The receiver's
// previous state (if any) is replaced only on success.
func (f *FreeBS) UnmarshalBinary(data []byte) error {
	inner, err := core.RestoreFreeBS(data)
	if err != nil {
		return err
	}
	f.inner = inner
	return nil
}

// RestoreFreeBS reconstructs a FreeBS directly from a MarshalBinary payload
// — the restore path for fresh processes, with no placeholder sketch to
// size and immediately overwrite.
func RestoreFreeBS(data []byte) (*FreeBS, error) {
	inner, err := core.RestoreFreeBS(data)
	if err != nil {
		return nil, err
	}
	return &FreeBS{inner: inner}, nil
}

// MarshalBinary serializes the complete FreeRS state.
func (f *FreeRS) MarshalBinary() ([]byte, error) { return f.inner.MarshalBinary() }

// UnmarshalBinary restores state produced by MarshalBinary. The receiver's
// previous state (if any) is replaced only on success.
func (f *FreeRS) UnmarshalBinary(data []byte) error {
	inner, err := core.RestoreFreeRS(data)
	if err != nil {
		return err
	}
	f.inner = inner
	return nil
}

// RestoreFreeRS reconstructs a FreeRS directly from a MarshalBinary payload;
// see RestoreFreeBS.
func RestoreFreeRS(data []byte) (*FreeRS, error) {
	inner, err := core.RestoreFreeRS(data)
	if err != nil {
		return nil, err
	}
	return &FreeRS{inner: inner}, nil
}
