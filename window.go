package streamcard

import "fmt"

// Windowed adapts any Estimator to approximate cardinalities over the recent
// past instead of the whole stream — the practical need behind the paper's
// future-work note on monitoring anomalies continuously (a scanner from last
// week should not keep a host flagged today).
//
// It uses epoch rotation, the standard windowing scheme for sketches that do
// not support deletion: two generations of the underlying estimator are
// kept, every edge feeds the current generation, and Rotate() (called every
// epoch, e.g. by a timer) discards the older generation and starts a fresh
// one. Queries sum the two live generations, so an estimate covers between
// one and two epochs of history.
//
// Semantics: a pair observed in both live generations is counted in both, so
// Estimate is an upper approximation of the distinct count over the window
// (at most 2× for a pathological stream that repeats every pair each epoch;
// in monitoring practice the overlap is the steady traffic one usually wants
// weighted anyway). Within one generation duplicates are still free.
type Windowed struct {
	build    func() Estimator
	current  Estimator
	previous Estimator // nil during the first epoch
	epoch    int
}

// NewWindowed returns a windowed wrapper; build must return a fresh
// estimator (it is called on construction and at every rotation). Example:
//
//	w := streamcard.NewWindowed(func() streamcard.Estimator {
//	    return streamcard.NewFreeRS(1 << 22)
//	})
func NewWindowed(build func() Estimator) *Windowed {
	if build == nil {
		panic("streamcard: NewWindowed requires a build function")
	}
	w := &Windowed{build: build}
	w.current = build()
	if w.current == nil {
		panic("streamcard: build returned nil estimator")
	}
	return w
}

// Observe implements Estimator (feeds the current generation).
func (w *Windowed) Observe(user, item uint64) { w.current.Observe(user, item) }

// ObserveBatch implements Estimator (feeds the current generation). A batch
// is attributed to the epoch current when the call starts; callers that
// rotate on a timer should rotate between batches, not during them.
func (w *Windowed) ObserveBatch(edges []Edge) { w.current.ObserveBatch(edges) }

// Estimate implements Estimator: the sum over live generations.
func (w *Windowed) Estimate(user uint64) float64 {
	e := w.current.Estimate(user)
	if w.previous != nil {
		e += w.previous.Estimate(user)
	}
	return e
}

// TotalDistinct implements Estimator (same windowed semantics).
func (w *Windowed) TotalDistinct() float64 {
	t := w.current.TotalDistinct()
	if w.previous != nil {
		t += w.previous.TotalDistinct()
	}
	return t
}

// MemoryBits implements Estimator (both live generations).
func (w *Windowed) MemoryBits() int64 {
	m := w.current.MemoryBits()
	if w.previous != nil {
		m += w.previous.MemoryBits()
	}
	return m
}

// Name implements Estimator.
func (w *Windowed) Name() string { return fmt.Sprintf("Windowed(%s)", w.current.Name()) }

// Rotate closes the current epoch: the oldest generation is discarded, the
// current one becomes read-only history, and a fresh estimator starts
// receiving edges. Call it once per epoch length.
func (w *Windowed) Rotate() {
	w.previous = w.current
	w.current = w.build()
	if w.current == nil {
		panic("streamcard: build returned nil estimator")
	}
	w.epoch++
}

// Epoch returns how many rotations have happened.
func (w *Windowed) Epoch() int { return w.epoch }

var _ Estimator = (*Windowed)(nil)
