package streamcard

import (
	"encoding"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/usertab"
	"repro/internal/window"
)

// Windowed adapts any Estimator to approximate cardinalities over the recent
// past instead of the whole stream — the practical need behind the paper's
// future-work note on monitoring anomalies continuously (a scanner from last
// week should not keep a host flagged today).
//
// It uses k-generation epoch rotation, the standard windowing scheme for
// sketches that do not support deletion: k generations of the underlying
// estimator are kept live, every edge feeds the newest, and each epoch
// boundary discards the oldest and starts a fresh one. Queries sum the live
// generations, so an estimate covers between k−1 and k epochs of history —
// size epochs so that k−1 of them span the window you care about, and the
// slop (extra history, and double counting of pairs re-observed across
// epochs) is bounded by 1/(k−1): 100% for the classic k=2, ≤⅓ for k=4,
// shrinking as k buys finer-grained aging at k× the memory. Within one
// generation duplicates are still free.
//
// Epoch boundaries are pluggable: rotate explicitly (Rotate), by traffic
// volume (WithRotateEveryEdges), or by wall time (WithRotateEvery, checked
// on every observation and on Tick for timer goroutines). All mutation and
// rotation run under one internal lock, so a rotation can never tear a
// batch: an ObserveBatch is attributed wholly to the epoch current when the
// call starts. Windowed is therefore safe for concurrent use; for multi-core
// scaling wrap it per shard — Sharded(Windowed(...)) — and advance all
// shards together with Sharded.Rotate.
//
// The write path is the only lock domain: when the underlying estimator is
// FreeBS or FreeRS, every read (Estimate, TotalDistinct, Users, NumUsers,
// TopK over the window) is served from an atomically published snapshot —
// all live generations forked copy-on-write, logically frozen as one
// consistent (generations, epoch) cut — so a long user enumeration never
// holds the ring lock, and a rotation publishes the next epoch's snapshot
// set instead of quiescing readers. See Snapshot for the mechanism and the
// freshness contract.
//
// When the underlying estimator is FreeBS or FreeRS, Windowed additionally
// supports Users/NumUsers (so TopK and SpreaderDetector run on windows),
// generation-wise Merge/Clone, and MarshalBinary/UnmarshalBinary
// checkpointing of all live generations plus the epoch bookkeeping.
type Windowed struct {
	build func() Estimator // nil-checked wrapper around the user's build
	ring  *window.Ring[Estimator]
	cfg   windowedConfig
	name  string

	// canSnap reports whether the generations support O(1) copy-on-write
	// snapshots (FreeBS/FreeRS). When true, every read routes through the
	// published snapshot below instead of holding the ring lock for the
	// duration of the read.
	canSnap bool
	// pub is the published snapshot: a frozen *Windowed stamped with the
	// ring version it was taken at. Readers reuse it while the stamp still
	// matches ring.Version() (one atomic load, no lock) and refresh it —
	// O(k) generation snapshots under a brief ring-lock hold — when a write
	// has advanced the version. A frozen view's pub points at itself, so
	// reads on views resolve in one hop.
	pub atomic.Pointer[windowedPub]

	// frozen marks a view built by Snapshot: its ring never moves again, so
	// the cross-generation user fold can be computed once and cached below.
	// Clone assembles a Windowed from existing generations through the same
	// adoptWindowed path but returns a mutable window, so the marker is set
	// only where Snapshot constructs the view.
	frozen bool
	// foldOnce/fold cache userSums on frozen views: computed at most once
	// per published view and served to every later analytics read of that
	// view. A new publication is a new frozen view, so invalidation is
	// automatic — the same pattern as ShardedView's cached merged union.
	foldOnce sync.Once
	fold     *usertab.Table
}

// windowedPub pairs a frozen view with the ring version it freezes.
type windowedPub struct {
	win *Windowed
	ver uint64
}

type windowedConfig struct {
	k         int
	boundary  window.Boundary
	clock     window.Clock
	onRetire  func(Estimator)
	foldStats *FoldStats
}

// WindowedOption configures NewWindowed.
type WindowedOption func(*windowedConfig)

// WithGenerations sets the number of live generations k (default 2, minimum
// 2). The window covers between k−1 and k epochs, so the relative slop is
// 1/(k−1); memory is k live sketches.
func WithGenerations(k int) WindowedOption {
	return func(c *windowedConfig) { c.k = k }
}

// WithRotateEveryEdges rotates automatically once an epoch has absorbed n
// edges — the volume-driven policy. A batch that crosses the boundary is
// attributed wholly to the epoch it started in; rotation happens after it.
func WithRotateEveryEdges(n uint64) WindowedOption {
	return func(c *windowedConfig) { c.boundary = window.ByEdges{N: n} }
}

// WithRotateEvery rotates automatically once an epoch is d old — the
// wall-time policy. The boundary is checked on every observation; call Tick
// from a timer so epochs also end during traffic lulls.
func WithRotateEvery(d time.Duration) WindowedOption {
	return func(c *windowedConfig) { c.boundary = window.ByDuration{D: d} }
}

// WithWindowClock substitutes the time source used by WithRotateEvery
// (default time.Now); tests use it to drive wall-time epochs
// deterministically.
func WithWindowClock(now func() time.Time) WindowedOption {
	return func(c *windowedConfig) { c.clock = now }
}

// WithOnRetire registers fn to be called with each generation the moment a
// rotation evicts it from the window — a monitor's last chance to read an
// epoch's totals (retired.TotalDistinct(), its user set, ...) before that
// history is discarded, instead of losing it silently. fn runs under the
// window's internal lock on whichever goroutine triggered the rotation, so
// it must be fast and must not call back into the Windowed or the Sharded
// wrapping it (the locks are not reentrant); querying the retired generation
// itself is safe — nothing else references it anymore. Rotations before the
// ring is full retire nothing (the window is still growing), and
// restore-from-checkpoint replaces generations without retiring them. Clones
// inherit the hook.
func WithOnRetire(fn func(retired Estimator)) WindowedOption {
	return func(c *windowedConfig) { c.onRetire = fn }
}

// WithFoldStats scopes the window's fold-cache counters to st, so a serving
// stack can export its own compute/hit counts (the server wires one per
// process into /metrics). Snapshots and clones inherit the same collector.
// Windows built without this option report into a package-level default,
// readable via DefaultFoldStats.
func WithFoldStats(st *FoldStats) WindowedOption {
	return func(c *windowedConfig) { c.foldStats = st }
}

// NewWindowed returns a windowed wrapper; build must return a fresh
// estimator (it is called on construction and at every rotation). Example:
//
//	w := streamcard.NewWindowed(func() streamcard.Estimator {
//	    return streamcard.NewFreeRS(1 << 22)
//	}, streamcard.WithGenerations(4), streamcard.WithRotateEveryEdges(1e6))
func NewWindowed(build func() Estimator, opts ...WindowedOption) *Windowed {
	if build == nil {
		panic("streamcard: NewWindowed requires a build function")
	}
	cfg := windowedConfig{k: 2, boundary: window.Manual{}, clock: time.Now}
	for _, o := range opts {
		o(&cfg)
	}
	return newWindowed(build, cfg)
}

func newWindowed(build func() Estimator, cfg windowedConfig) *Windowed {
	wrapped := func() Estimator {
		e := build()
		if e == nil {
			panic("streamcard: build returned nil estimator")
		}
		return e
	}
	w := &Windowed{build: wrapped, cfg: cfg}
	w.ring = window.New(cfg.k, wrapped,
		window.WithBoundary(cfg.boundary), window.WithClock(cfg.clock))
	if cfg.onRetire != nil {
		w.ring.OnRetire(cfg.onRetire)
	}
	w.ring.View(func(live []Estimator) {
		w.name = fmt.Sprintf("Windowed(%s,k=%d)", live[0].Name(), cfg.k)
		w.canSnap = genSnapshottable(live[0])
	})
	return w
}

// genSnapshottable reports whether a generation supports O(1) copy-on-write
// snapshots, without taking one (marking a fresh generation shared would
// make its first write pay a pointless full-array copy).
func genSnapshottable(e Estimator) bool {
	switch e.(type) {
	case *FreeBS, *FreeRS:
		return true
	}
	return false
}

// snapshotGen forks one generation copy-on-write. Callers have checked
// genSnapshottable.
func snapshotGen(e Estimator) Estimator {
	switch g := e.(type) {
	case *FreeBS:
		return g.Snapshot()
	case *FreeRS:
		return g.Snapshot()
	}
	panic(fmt.Sprintf("streamcard: %s generations do not support Snapshot", e.Name()))
}

// adoptWindowed assembles a Windowed directly around existing generations —
// no throwaway initial generation is built — at the given epoch
// bookkeeping. It is the constructor behind Snapshot and Clone.
func adoptWindowed(build func() Estimator, cfg windowedConfig, name string, gens []Estimator, epoch, edges uint64) (*Windowed, error) {
	ring, err := window.NewAdopted(cfg.k, build, gens, epoch, edges,
		window.WithBoundary(cfg.boundary), window.WithClock(cfg.clock))
	if err != nil {
		return nil, err
	}
	w := &Windowed{build: build, ring: ring, cfg: cfg, name: name, canSnap: true}
	if cfg.onRetire != nil {
		ring.OnRetire(cfg.onRetire)
	}
	return w, nil
}

// Snapshot returns an O(1), logically frozen view of the whole window — all
// live generations forked copy-on-write, plus the epoch bookkeeping — or
// nil when the underlying estimator does not support snapshots (CSE, vHLL,
// per-user baselines). The view is itself a *Windowed, so every read
// surface (Estimate, TotalDistinct, Users, TopK, MarshalBinary, Merge
// sources) works on it unchanged, with no synchronization against ongoing
// ingestion: the writer detaches onto private arrays before its first
// post-snapshot write, and old generations are never written at all, so
// only the current generation's arrays are ever re-copied.
//
// Snapshots are published: while no write has advanced the ring, repeated
// calls return the same view via one atomic load, and a view taken after a
// write always reflects every Feed and Rotate that completed before the
// call — the read-your-writes contract the serving layer's ?wait=1 relies
// on. Rotation therefore publishes a fresh snapshot set (the next Snapshot
// call observes the new epoch) instead of quiescing readers.
//
// On a standalone Windowed the refresh after a write is paid by whichever
// reader calls Snapshot first (a brief ring-lock hold); per-edge ingest
// stays cheap because nothing is forked until somebody asks. Inside a
// Sharded(Windowed(...)) serving stack the roles invert: the shard's write
// path calls Snapshot itself right after mutating — while it still holds
// the shard lock, so the ring is uncontended — and publishes the result, so
// serving-path readers never pay the refresh (see snapshot.go).
func (w *Windowed) Snapshot() *Windowed {
	if !w.canSnap {
		return nil
	}
	if p := w.pub.Load(); p != nil && p.ver == w.ring.Version() {
		return p.win
	}
	var (
		frozen *Windowed
		ver    uint64
		err    error
	)
	w.ring.ViewStamped(func(gens []Estimator, epoch, edges, v uint64) {
		// Re-check under the lock: a concurrent reader may have already
		// rebuilt the view for this exact version while we waited.
		if p := w.pub.Load(); p != nil && p.ver == v {
			frozen, ver = p.win, v
			return
		}
		snaps := make([]Estimator, len(gens))
		for i, g := range gens {
			snaps[i] = snapshotGen(g)
		}
		ver = v
		frozen, err = adoptWindowed(w.build, w.cfg, w.name, snaps, epoch, edges)
		if err == nil {
			// Mark the view frozen before publishing it: its ring never
			// moves again, which is what licenses the per-view fold cache
			// (userSums). Publication's atomic store orders the write.
			frozen.frozen = true
			// A view answers Snapshot with itself (its ring never moves),
			// so reads routed through Snapshot resolve in one hop on
			// views.
			frozen.pub.Store(&windowedPub{win: frozen, ver: frozen.ring.Version()})
			w.pub.Store(&windowedPub{win: frozen, ver: ver})
		}
	})
	if err != nil {
		panic(fmt.Sprintf("streamcard: Windowed.Snapshot: %v", err)) // ring invariants guarantee this cannot happen
	}
	return frozen
}

// SnapshotView implements Snapshotter.
func (w *Windowed) SnapshotView() Estimator {
	if v := w.Snapshot(); v != nil {
		return v
	}
	return nil
}

// Observe implements Estimator (feeds the newest generation).
func (w *Windowed) Observe(user, item uint64) {
	w.ring.Feed(1, func(e Estimator) { e.Observe(user, item) })
}

// ObserveBatch implements Estimator. The batch is attributed to the epoch
// current when the call starts: the ring lock holds off any concurrent
// Rotate or Tick until the whole batch has been absorbed, and an automatic
// boundary the batch crosses takes effect only after it.
func (w *Windowed) ObserveBatch(edges []Edge) {
	if len(edges) == 0 {
		return
	}
	w.ring.Feed(uint64(len(edges)), func(e Estimator) { e.ObserveBatch(edges) })
}

// Estimate implements Estimator: the sum over live generations. When the
// underlying estimator supports snapshots, the sum is taken over the
// published frozen view — the ring lock is held (if at all) only for the
// O(k) snapshot refresh, never for the read itself.
func (w *Windowed) Estimate(user uint64) float64 {
	if v := w.Snapshot(); v != nil && v != w {
		return v.Estimate(user)
	}
	sum := 0.0
	w.ring.View(func(live []Estimator) {
		for _, g := range live {
			sum += g.Estimate(user)
		}
	})
	return sum
}

// TotalDistinct implements Estimator (same windowed semantics and the same
// snapshot routing as Estimate).
func (w *Windowed) TotalDistinct() float64 {
	if v := w.Snapshot(); v != nil && v != w {
		return v.TotalDistinct()
	}
	sum := 0.0
	w.ring.View(func(live []Estimator) {
		for _, g := range live {
			sum += g.TotalDistinct()
		}
	})
	return sum
}

// MemoryBits implements Estimator (all live generations).
func (w *Windowed) MemoryBits() int64 {
	var sum int64
	w.ring.View(func(live []Estimator) {
		for _, g := range live {
			sum += g.MemoryBits()
		}
	})
	return sum
}

// Name implements Estimator.
func (w *Windowed) Name() string { return w.name }

// Rotate closes the current epoch: the oldest of k live generations is
// discarded, every survivor ages one slot, and a fresh estimator starts
// receiving edges. Explicit-rotation deployments call it once per epoch
// length; automatic policies (WithRotateEveryEdges, WithRotateEvery) call it
// internally.
func (w *Windowed) Rotate() { w.ring.Rotate() }

// Tick re-checks the rotation policy without observing anything and reports
// whether it rotated. Wall-time deployments call it from a timer so epochs
// also end while no edges arrive; under WithRotateEveryEdges or manual
// rotation it never fires.
func (w *Windowed) Tick() bool { return w.ring.Tick() }

// Epoch returns how many rotations have happened.
func (w *Windowed) Epoch() int { return int(w.ring.Epoch()) }

// Generations returns the configured generation count k.
func (w *Windowed) Generations() int { return w.ring.K() }

// LiveGenerations returns how many generations currently hold data (1 before
// the first rotation, growing to k).
func (w *Windowed) LiveGenerations() int { return w.ring.Live() }

// Users implements AnytimeEstimator: fn is called once per user with a
// nonzero windowed estimate — the sum of that user's estimates across live
// generations — in ascending user order. It requires the underlying
// estimator to be an AnytimeEstimator (FreeBS or FreeRS) and panics
// otherwise. Cost is O(users log users) time and O(users) memory (a flat
// merge table plus its sort, since one user may appear in several
// generations); RangeUsers skips the sort.
// The per-user fold itself (O(users)) runs over the frozen view when
// snapshots are available, holding no lock at all — a slow consumer of fn
// can no longer stall ingestion.
func (w *Windowed) Users(fn func(user uint64, estimate float64)) {
	if v := w.Snapshot(); v != nil && v != w {
		v.Users(fn)
		return
	}
	w.userSums().SortedRange(fn)
}

// RangeUsers implements UserRanger: the same per-user windowed sums as
// Users, in the merge table's layout order (deterministic per history, not
// sorted). The fold across generations still costs O(users); only Users'
// sort is skipped.
func (w *Windowed) RangeUsers(fn func(user uint64, estimate float64)) {
	if v := w.Snapshot(); v != nil && v != w {
		v.RangeUsers(fn)
		return
	}
	w.userSums().Range(fn)
}

// NumUsers implements AnytimeEstimator: the number of users with a nonzero
// estimate in any live generation. Costs a full O(users) generation fold;
// UserEntries is the O(k) upper bound for cheap occupancy gauges.
func (w *Windowed) NumUsers() int {
	if v := w.Snapshot(); v != nil && v != w {
		return v.NumUsers()
	}
	return w.userSums().Len()
}

// UserEntries returns the total number of per-user estimate entries across
// live generations — a user active in g generations contributes g entries,
// so this is an upper bound on NumUsers that costs O(k) map-length reads
// instead of NumUsers' O(users) merge map. Occupancy gauges scraped every
// few seconds want this reading; exact distinct-user counts want NumUsers.
// Same AnytimeEstimator requirement as Users.
// Deliberately NOT snapshot-routed: the whole point of this reading is
// that a periodic scrape costs O(k) counter loads — forcing a snapshot
// refresh here would make every scrape re-mark the live arrays shared and
// bill the writer a fresh copy-on-write detach for a gauge.
func (w *Windowed) UserEntries() int {
	total := 0
	w.ring.View(func(live []Estimator) {
		for _, g := range live {
			a, ok := g.(AnytimeEstimator)
			if !ok {
				panic(fmt.Sprintf("streamcard: Windowed.UserEntries needs an AnytimeEstimator underlying (FreeBS/FreeRS), not %s", g.Name()))
			}
			total += a.NumUsers()
		}
	})
	return total
}

// foldStatsOut returns the collector this window's fold-cache outcomes are
// counted into: the injected one (WithFoldStats) or the package default.
func (w *Windowed) foldStatsOut() *FoldStats {
	if w.cfg.foldStats != nil {
		return w.cfg.foldStats
	}
	return &defaultFoldStats
}

// userSums returns the window's merged per-user estimate table. On a frozen
// view (the only place analytics reads land once snapshots are published —
// Users/RangeUsers/NumUsers route through Snapshot) the fold is computed at
// most once and cached for the view's lifetime: repeated analytics queries
// within one publication epoch re-fold nothing, and the next publication is
// a new view, so invalidation is automatic. Mutable windows fold fresh —
// their ring can move under them.
func (w *Windowed) userSums() *usertab.Table {
	if !w.frozen {
		return w.computeUserSums()
	}
	hit := true
	w.foldOnce.Do(func() {
		w.runFold()
		hit = false
	})
	if hit {
		w.foldStatsOut().hits.Add(1)
	}
	return w.fold
}

// warmFold populates a frozen view's fold cache if it is still cold,
// counting a compute but never a hit — the shard-concurrent fan-out uses it
// to move fold work onto pool goroutines; the query that follows does the
// counted read. No-op on mutable windows, which have no cache.
func (w *Windowed) warmFold() {
	if !w.frozen {
		return
	}
	w.foldOnce.Do(w.runFold)
}

// runFold executes the fold under foldOnce.
func (w *Windowed) runFold() {
	w.fold = w.computeUserSums()
	w.foldStatsOut().computes.Add(1)
}

// computeUserSums folds the live generations' per-user estimates into one
// flat table, generation order outermost — the same summation order Estimate
// uses for a single user, so the folded value matches Estimate bit for bit.
// The fold reads each generation through its unordered allocation-free
// iterator; only the result table is allocated, pre-sized to the entry
// upper bound (Σ per-generation entries) so the fold never rehashes.
func (w *Windowed) computeUserSums() *usertab.Table {
	var merged *usertab.Table
	w.ring.View(func(live []Estimator) {
		entries := 0
		for _, g := range live {
			a, ok := g.(AnytimeEstimator)
			if !ok {
				panic(fmt.Sprintf("streamcard: Windowed.Users needs an AnytimeEstimator underlying (FreeBS/FreeRS), not %s", g.Name()))
			}
			entries += a.NumUsers()
		}
		merged = usertab.NewWithCapacity(entries)
		for _, g := range live {
			rangeUsers(g.(AnytimeEstimator), func(u uint64, e float64) { merged.Add(u, e) })
		}
	})
	return merged
}

// Merge folds other into w generation by generation, so each of w's live
// generations summarizes the union of the corresponding epoch's streams;
// other is unchanged. Both windows must have the same generation count and
// be at the same epoch (ErrIncompatible otherwise — merging sketches of
// different epochs would blend different time ranges), their underlying
// estimators must be mergeable (FreeBS or FreeRS) and built with identical
// parameters, and both should be quiescent (no concurrent ingestion) for
// the duration of the call. On error w is unchanged.
func (w *Windowed) Merge(other *Windowed) error {
	if other == nil {
		return fmt.Errorf("streamcard: Windowed.Merge(nil): %w", ErrIncompatible)
	}
	if other == w {
		return fmt.Errorf("streamcard: Windowed.Merge with itself: %w", ErrIncompatible)
	}
	if w.Generations() != other.Generations() {
		return fmt.Errorf("streamcard: windows with k=%d vs k=%d: %w",
			w.Generations(), other.Generations(), ErrIncompatible)
	}
	mine, myEpoch, myEdges := w.ring.Snapshot()
	theirs, otherEpoch, otherEdges := other.ring.Snapshot()
	if myEpoch != otherEpoch {
		return fmt.Errorf("streamcard: windows at epoch %d vs %d: %w", myEpoch, otherEpoch, ErrIncompatible)
	}
	// Merge into clones and adopt the result atomically: a failure on any
	// generation (e.g. mismatched seeds) leaves the receiver untouched.
	merged := make([]Estimator, len(mine))
	for i := range mine {
		g, err := mergeGeneration(mine[i], theirs[i])
		if err != nil {
			return fmt.Errorf("streamcard: window generation %d: %w", i, err)
		}
		merged[i] = g
	}
	return w.ring.Adopt(merged, myEpoch, myEdges+otherEdges)
}

// foldFrom folds other's generations into w in place — the fast path
// behind Sharded.TotalDistinctMerged, whose accumulator is a private clone
// nobody else references: it needs none of Merge's failure atomicity (on
// error the whole accumulator is discarded) and must not pay Merge's
// clone-of-every-generation per fold, which on a k-generation window would
// copy the accumulator k times per shard. Same compatibility rules as
// Merge: equal generation counts, equal epochs, mergeable generations
// built with identical parameters. other must be quiescent (the caller
// holds its shard lock); w must be private to the caller.
func (w *Windowed) foldFrom(other *Windowed) error {
	if w.Generations() != other.Generations() {
		return fmt.Errorf("streamcard: windows with k=%d vs k=%d: %w",
			w.Generations(), other.Generations(), ErrIncompatible)
	}
	mine, myEpoch, _ := w.ring.Snapshot()
	theirs, otherEpoch, _ := other.ring.Snapshot()
	if myEpoch != otherEpoch {
		return fmt.Errorf("streamcard: windows at epoch %d vs %d: %w", myEpoch, otherEpoch, ErrIncompatible)
	}
	for i := range mine {
		if err := foldGen(mine[i], theirs[i]); err != nil {
			return fmt.Errorf("streamcard: window generation %d: %w", i, err)
		}
	}
	return nil
}

func foldGen(mine, theirs Estimator) error {
	switch m := mine.(type) {
	case *FreeBS:
		o, ok := theirs.(*FreeBS)
		if !ok {
			return fmt.Errorf("generation types %s vs %s: %w", mine.Name(), theirs.Name(), ErrIncompatible)
		}
		return m.Merge(o)
	case *FreeRS:
		o, ok := theirs.(*FreeRS)
		if !ok {
			return fmt.Errorf("generation types %s vs %s: %w", mine.Name(), theirs.Name(), ErrIncompatible)
		}
		return m.Merge(o)
	default:
		return fmt.Errorf("%s generations are not mergeable: %w", mine.Name(), ErrIncompatible)
	}
}

func mergeGeneration(mine, theirs Estimator) (Estimator, error) {
	switch m := mine.(type) {
	case *FreeBS:
		return mergeGen(m, theirs)
	case *FreeRS:
		return mergeGen(m, theirs)
	default:
		return nil, fmt.Errorf("%s generations are not mergeable: %w", mine.Name(), ErrIncompatible)
	}
}

// mergeGen clones m and folds the matching-typed theirs into the clone — the
// same clone-then-fold shape as Sharded's mergeShards, written once over the
// shared mergeable constraint.
func mergeGen[T interface {
	Estimator
	mergeable[T]
}](m T, theirs Estimator) (Estimator, error) {
	o, ok := theirs.(T)
	if !ok {
		return nil, fmt.Errorf("generation types %s vs %s: %w", m.Name(), theirs.Name(), ErrIncompatible)
	}
	c := m.Clone()
	if err := c.Merge(o); err != nil {
		return nil, err
	}
	return c, nil
}

// Clone returns an independent deep copy of w: same configuration, every
// live generation cloned, epoch bookkeeping preserved. It requires a
// cloneable underlying estimator (FreeBS or FreeRS) and panics otherwise.
func (w *Windowed) Clone() *Windowed {
	gens, epoch, edges := w.ring.Snapshot()
	clones := make([]Estimator, len(gens))
	for i, g := range gens {
		switch e := g.(type) {
		case *FreeBS:
			clones[i] = e.Clone()
		case *FreeRS:
			clones[i] = e.Clone()
		default:
			panic(fmt.Sprintf("streamcard: %s generations do not support Clone", g.Name()))
		}
	}
	c, err := adoptWindowed(w.build, w.cfg, w.name, clones, epoch, edges)
	if err != nil {
		panic(fmt.Sprintf("streamcard: Windowed.Clone: %v", err)) // ring invariants guarantee this cannot happen
	}
	return c
}

// MarshalBinary serializes every live generation plus the epoch bookkeeping
// through the versioned window envelope in internal/core. It requires the
// underlying estimator to support checkpointing (FreeBS or FreeRS).
func (w *Windowed) MarshalBinary() ([]byte, error) {
	gens, epoch, edges := w.ring.Snapshot()
	payloads := make([][]byte, len(gens))
	for i, g := range gens {
		m, ok := g.(encoding.BinaryMarshaler)
		if !ok {
			return nil, fmt.Errorf("streamcard: %s does not support checkpointing", g.Name())
		}
		p, err := m.MarshalBinary()
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	return core.MarshalWindow(w.Generations(), epoch, edges, payloads)
}

// UnmarshalBinary restores state produced by MarshalBinary: every live
// generation, the epoch number, and the edges absorbed by the current epoch
// (so an edge-driven rotation policy resumes in lockstep). The receiver must
// be configured with the same generation count as the checkpoint
// (ErrIncompatible otherwise) and a build function matching the
// checkpointed sketches' parameters, so post-restore rotations stay
// compatible. The receiver's previous state is replaced only on success.
func (w *Windowed) UnmarshalBinary(data []byte) error {
	k, epoch, edges, payloads, err := core.UnmarshalWindow(data)
	if err != nil {
		return err
	}
	if k != w.Generations() {
		return fmt.Errorf("streamcard: checkpoint of a k=%d window into a k=%d window: %w",
			k, w.Generations(), ErrIncompatible)
	}
	gens := make([]Estimator, len(payloads))
	for i, p := range payloads {
		g := w.build()
		u, ok := g.(encoding.BinaryUnmarshaler)
		if !ok {
			return fmt.Errorf("streamcard: %s does not support checkpointing", g.Name())
		}
		if err := u.UnmarshalBinary(p); err != nil {
			return fmt.Errorf("streamcard: window generation %d: %w", i, err)
		}
		gens[i] = g
	}
	return w.ring.Adopt(gens, epoch, edges)
}

var (
	_ Estimator        = (*Windowed)(nil)
	_ AnytimeEstimator = (*Windowed)(nil)
	_ UserRanger       = (*Windowed)(nil)
	_ Rotator          = (*Windowed)(nil)
)
