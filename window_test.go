package streamcard

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/hashing"
)

func TestWindowedFirstEpochMatchesPlain(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1<<18, WithSeed(3)) })
	plain := NewFreeRS(1<<18, WithSeed(3))
	for i := 0; i < 5000; i++ {
		w.Observe(1, uint64(i))
		plain.Observe(1, uint64(i))
	}
	if w.Estimate(1) != plain.Estimate(1) {
		t.Fatal("first epoch must match an unwrapped estimator exactly")
	}
	if w.Epoch() != 0 || w.LiveGenerations() != 1 || w.Generations() != 2 {
		t.Fatalf("epoch=%d live=%d k=%d", w.Epoch(), w.LiveGenerations(), w.Generations())
	}
}

func TestWindowedRotationForgetsOldEpochs(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 18) })
	// Epoch 0: user 1 is a heavy hitter.
	for i := 0; i < 10000; i++ {
		w.Observe(1, uint64(i))
	}
	heavy := w.Estimate(1)
	if heavy < 8000 {
		t.Fatalf("epoch-0 estimate %v", heavy)
	}
	// One rotation: epoch-0 data still visible (previous generation).
	w.Rotate()
	if got := w.Estimate(1); math.Abs(got-heavy) > 1e-9 {
		t.Fatalf("after one rotation estimate %v, want still %v", got, heavy)
	}
	// Second rotation: epoch-0 data fully aged out (k = 2).
	w.Rotate()
	if got := w.Estimate(1); got != 0 {
		t.Fatalf("after two rotations estimate %v, want 0", got)
	}
	if w.Epoch() != 2 {
		t.Fatalf("epoch = %d", w.Epoch())
	}
}

func TestWindowedKGenerationsAgeOut(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 18) }, WithGenerations(4))
	for i := 0; i < 1000; i++ {
		w.Observe(1, uint64(i))
	}
	first := w.Estimate(1)
	for r := 1; r <= 3; r++ {
		w.Rotate()
		if got := w.Estimate(1); got != first {
			t.Fatalf("after %d rotations estimate %v, want still %v (k=4 keeps 4 generations)", r, got, first)
		}
	}
	w.Rotate() // 4th rotation ages the data out
	if got := w.Estimate(1); got != 0 {
		t.Fatalf("after 4 rotations estimate %v, want 0", got)
	}
	if w.LiveGenerations() != 4 {
		t.Fatalf("live = %d", w.LiveGenerations())
	}
}

func TestWindowedSpansTwoGenerations(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 18) })
	for i := 0; i < 1000; i++ {
		w.Observe(1, uint64(i))
	}
	w.Rotate()
	for i := 1000; i < 2000; i++ { // disjoint items in the new epoch
		w.Observe(1, uint64(i))
	}
	got := w.Estimate(1)
	if math.Abs(got-2000) > 150 {
		t.Fatalf("window estimate %v, want ~2000", got)
	}
	total := w.TotalDistinct()
	if math.Abs(total-2000) > 250 {
		t.Fatalf("window total %v, want ~2000", total)
	}
}

// TestWindowedOvercountShrinksWithGenerations is the headline accuracy claim
// of the k-generation refactor: on a stream that repeats the same pair set
// every period, a window targeting one period overcounts by the slop bound
// 1/(k−1) — ~2× total for the classic k=2 wrapper, ≤ ~4/3 for k=4 — because
// each pair is re-counted once per generation boundary it crosses.
func TestWindowedOvercountShrinksWithGenerations(t *testing.T) {
	const pairs = 1200 // |S|: one period = each of user 1's pairs once
	const periods = 4
	ratio := func(k int) float64 {
		w := NewWindowed(func() Estimator { return NewFreeRS(1<<20, WithSeed(7)) },
			WithGenerations(k))
		epochLen := pairs / (k - 1) // k−1 epochs span exactly one period
		fed := 0
		for p := 0; p < periods; p++ {
			for i := 0; i < pairs; i++ {
				w.Observe(1, uint64(i))
				fed++
				if fed%epochLen == 0 && fed < periods*pairs {
					w.Rotate() // explicit rotation; skip the last so the query
				} // sees k full generations (the worst instant)
			}
		}
		return w.Estimate(1) / pairs
	}
	r2, r4 := ratio(2), ratio(4)
	if r2 < 1.8 || r2 > 2.2 {
		t.Fatalf("k=2 overcount ratio %.3f, want ~2×", r2)
	}
	if r4 > 1.45 {
		t.Fatalf("k=4 overcount ratio %.3f, want ≤ ~4/3", r4)
	}
	if r4 >= r2 {
		t.Fatalf("overcount did not shrink with k: k=2 %.3f vs k=4 %.3f", r2, r4)
	}
}

// TestWindowedErrorShrinksWithGenerations is the property behind the
// k-generation design: against an exact sliding-window counter over the same
// trailing W edges, the windowed estimator's relative error is dominated by
// the 1/(k−1) slop (it covers between k−1 and k epochs of W/(k−1) edges), so
// doubling k must shrink the mean error. Sketch noise is kept negligible
// with a large array; the stream mixes fresh items with recent repeats so
// cross-generation double counting is exercised too.
func TestWindowedErrorShrinksWithGenerations(t *testing.T) {
	const W = 8400 // divisible by k−1 for k ∈ {2, 4, 8}
	const total = 5 * W
	meanErr := func(k int) float64 {
		w := NewWindowed(func() Estimator { return NewFreeRS(1<<20, WithSeed(4)) },
			WithGenerations(k), WithRotateEveryEdges(uint64(W/(k-1))))
		ex := exact.NewWindowTracker(W)
		rng := hashing.NewRNG(12)
		var recent []uint64
		sum, samples := 0.0, 0
		for i := 0; i < total; i++ {
			u := uint64(rng.Intn(500))
			var it uint64
			if len(recent) > 0 && rng.Intn(5) == 0 {
				it = recent[rng.Intn(len(recent))] // ~20% repeats of recent items
			} else {
				it = rng.Uint64()
				if len(recent) < 4096 {
					recent = append(recent, it)
				} else {
					recent[rng.Intn(len(recent))] = it
				}
			}
			w.Observe(u, it)
			ex.Observe(u, it)
			if i > 2*W && i%611 == 0 {
				truth := float64(ex.TotalCardinality())
				sum += math.Abs(w.TotalDistinct()-truth) / truth
				samples++
			}
		}
		return sum / float64(samples)
	}
	e2, e4, e8 := meanErr(2), meanErr(4), meanErr(8)
	t.Logf("mean relative error: k=2 %.3f, k=4 %.3f, k=8 %.3f", e2, e4, e8)
	if e2 < 0.15 {
		t.Fatalf("k=2 error %.3f suspiciously small: the test is not exercising window slop", e2)
	}
	if e4 >= e2 || e8 >= e4 {
		t.Fatalf("error must shrink as k grows: k=2 %.3f, k=4 %.3f, k=8 %.3f", e2, e4, e8)
	}
}

func TestWindowedRotateEveryEdges(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1<<16, WithSeed(2)) },
		WithRotateEveryEdges(10))
	plain := NewFreeRS(1<<16, WithSeed(2))
	// A 25-edge batch crosses the 10-edge boundary but is attributed wholly
	// to the epoch at call start: exactly one rotation fires, after it.
	batch := make([]Edge, 25)
	for i := range batch {
		batch[i] = Edge{User: 1, Item: uint64(i)}
	}
	w.ObserveBatch(batch)
	plain.ObserveBatch(batch)
	if w.Epoch() != 1 {
		t.Fatalf("epoch = %d, want exactly 1 rotation per feed", w.Epoch())
	}
	if w.Estimate(1) != plain.Estimate(1) {
		t.Fatal("batch split across generations: estimate no longer bit-identical to plain")
	}
	// One explicit rotation ages the whole batch out together (k=2).
	w.Rotate()
	if got := w.Estimate(1); got != 0 {
		t.Fatalf("estimate %v after aging, want 0: the batch was torn across generations", got)
	}
}

func TestWindowedRotateInterval(t *testing.T) {
	now := time.Unix(0, 0)
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 16) },
		WithRotateEvery(time.Minute), WithWindowClock(func() time.Time { return now }))
	w.Observe(1, 1)
	if w.Tick() {
		t.Fatal("rotated before the interval elapsed")
	}
	now = now.Add(time.Minute)
	if !w.Tick() {
		t.Fatal("timer tick past the interval must rotate")
	}
	now = now.Add(time.Minute)
	w.Observe(1, 2) // observation path also notices the elapsed interval
	if w.Epoch() != 2 {
		t.Fatalf("epoch = %d", w.Epoch())
	}
}

func TestWindowedUsersTopKSpreaders(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 20) }, WithGenerations(3))
	for i := 0; i < 5000; i++ {
		w.Observe(100, uint64(i)) // heavy in epoch 0
		w.Observe(7, uint64(i%5))
	}
	w.Rotate()
	for i := 0; i < 2000; i++ {
		w.Observe(200, uint64(i)|1<<40) // medium in epoch 1
		w.Observe(7, uint64(i%5))
	}
	if n := w.NumUsers(); n != 3 {
		t.Fatalf("NumUsers = %d, want 3", n)
	}
	sum := 0.0
	w.Users(func(u uint64, e float64) { sum += e })
	// The credit sum and the array-derived TotalDistinct are independent
	// estimators of the same quantity; they agree to a few percent here.
	if math.Abs(sum-w.TotalDistinct()) > 0.05*sum {
		t.Fatalf("Users sum %v far from TotalDistinct %v", sum, w.TotalDistinct())
	}
	top := TopK(w, 2)
	if len(top) != 2 || top[0].User != 100 || top[1].User != 200 {
		t.Fatalf("TopK = %+v, want users 100 then 200", top)
	}
	det := NewSpreaderDetector(w, 0.3)
	found := det.Detect()
	if len(found) != 1 || found[0].User != 100 {
		t.Fatalf("spreaders = %+v, want exactly user 100", found)
	}
	// After the heavy generation ages out, the detector follows the window.
	w.Rotate()
	w.Rotate()
	for _, s := range det.Detect() {
		if s.User == 100 {
			t.Fatal("aged-out spreader still flagged")
		}
	}
}

func TestWindowedCheckpointRoundTrip(t *testing.T) {
	build := func() Estimator { return NewFreeRS(1<<16, WithSeed(11)) }
	w := NewWindowed(build, WithGenerations(3), WithRotateEveryEdges(4000))
	rng := hashing.NewRNG(5)
	for i := 0; i < 10000; i++ {
		w.Observe(uint64(rng.Intn(200)), rng.Uint64())
	}
	if w.Epoch() != 2 {
		t.Fatalf("setup: epoch = %d", w.Epoch())
	}
	data, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewWindowed(build, WithGenerations(3), WithRotateEveryEdges(4000))
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != w.Epoch() || restored.LiveGenerations() != w.LiveGenerations() {
		t.Fatalf("bookkeeping: epoch %d/%d live %d/%d",
			restored.Epoch(), w.Epoch(), restored.LiveGenerations(), w.LiveGenerations())
	}
	// Bit-identical estimates, and bit-identical lockstep afterwards — the
	// restored instance rotates at the same edge counts as the original.
	check := func(stage string) {
		t.Helper()
		for u := uint64(0); u < 200; u++ {
			if got, want := restored.Estimate(u), w.Estimate(u); got != want {
				t.Fatalf("%s: user %d estimate %v != %v", stage, u, got, want)
			}
		}
		if restored.TotalDistinct() != w.TotalDistinct() || restored.Epoch() != w.Epoch() {
			t.Fatalf("%s: totals or epochs diverged", stage)
		}
	}
	check("restore")
	rngA, rngB := hashing.NewRNG(6), hashing.NewRNG(6)
	for i := 0; i < 9000; i++ {
		w.Observe(uint64(rngA.Intn(200)), rngA.Uint64())
		restored.Observe(uint64(rngB.Intn(200)), rngB.Uint64())
	}
	check("lockstep")

	// A k-mismatched receiver refuses the payload and keeps its state.
	other := NewWindowed(build, WithGenerations(4))
	other.Observe(1, 2)
	before := other.Estimate(1)
	if err := other.UnmarshalBinary(data); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("k mismatch accepted: %v", err)
	}
	if other.Estimate(1) != before || other.Epoch() != 0 {
		t.Fatal("failed restore mutated the receiver")
	}
	// Damaged payloads error without mutating.
	if err := restored.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	check("after rejected truncated payload")
}

func TestWindowedMergeClone(t *testing.T) {
	build := func() Estimator { return NewFreeRS(1<<18, WithSeed(21)) }
	mk := func() *Windowed { return NewWindowed(build, WithGenerations(3)) }
	a, b, twin := mk(), mk(), mk()
	rng := hashing.NewRNG(1)
	// Two epochs; a and b see disjoint halves of the same per-epoch stream,
	// the twin sees everything. Rotations stay aligned.
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < 4000; i++ {
			u, it := uint64(rng.Intn(100)), rng.Uint64()
			if i%2 == 0 {
				a.Observe(u, it)
			} else {
				b.Observe(u, it)
			}
			twin.Observe(u, it)
		}
		a.Rotate()
		b.Rotate()
		twin.Rotate()
	}
	clone := a.Clone()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// The FreeRS wrapper's TotalDistinct is array-derived, and per-epoch
	// array union is bit-identical to the twin's arrays.
	if got, want := a.TotalDistinct(), twin.TotalDistinct(); got != want {
		t.Fatalf("merged window total %v != twin %v (array union must be exact)", got, want)
	}
	// Per-user estimates are reconciled, not replayed: approximately right.
	for u := uint64(0); u < 100; u++ {
		got, want := a.Estimate(u), twin.Estimate(u)
		if want > 50 && math.Abs(got-want)/want > 0.35 {
			t.Fatalf("user %d merged estimate %v vs twin %v", u, got, want)
		}
	}
	// The clone was snapshotted before the merge and is unaffected by it.
	if clone.TotalDistinct() == a.TotalDistinct() {
		t.Fatal("clone shares state with the merged original")
	}
	if clone.Epoch() != 2 || clone.LiveGenerations() != a.LiveGenerations() {
		t.Fatal("clone lost epoch bookkeeping")
	}

	// Incompatibilities: epoch mismatch, k mismatch, non-mergeable underlying.
	c := mk()
	if err := a.Merge(c); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("epoch mismatch: %v", err)
	}
	d := NewWindowed(build, WithGenerations(2))
	if err := a.Merge(d); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("k mismatch: %v", err)
	}
	e1 := NewWindowed(func() Estimator { return NewCSE(1<<12, 64) })
	e2 := NewWindowed(func() Estimator { return NewCSE(1<<12, 64) })
	if err := e1.Merge(e2); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("non-mergeable underlying: %v", err)
	}
	// Mismatched seeds surface the inner sketch's incompatibility, and the
	// receiver is untouched (merge-into-clones is atomic).
	f := NewWindowed(func() Estimator { return NewFreeRS(1<<18, WithSeed(99)) }, WithGenerations(3))
	f.Rotate()
	f.Rotate()
	beforeTotal := a.TotalDistinct()
	if err := a.Merge(f); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("seed mismatch: %v", err)
	}
	if a.TotalDistinct() != beforeTotal {
		t.Fatal("failed merge mutated the receiver")
	}
}

func TestWindowedMemoryAndName(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeBS(4096) })
	if w.MemoryBits() != 4096 {
		t.Fatalf("one generation memory = %d", w.MemoryBits())
	}
	w.Rotate()
	if w.MemoryBits() != 8192 {
		t.Fatalf("two generation memory = %d", w.MemoryBits())
	}
	if !strings.Contains(w.Name(), "FreeBS") || !strings.Contains(w.Name(), "k=2") {
		t.Fatalf("name = %q", w.Name())
	}
}

func TestWindowedPanics(t *testing.T) {
	mustPanic(t, func() { NewWindowed(nil) })
	mustPanic(t, func() { NewWindowed(func() Estimator { return nil }) })
	mustPanic(t, func() {
		NewWindowed(func() Estimator { return NewFreeBS(64) }, WithGenerations(1))
	})
	calls := 0
	w := NewWindowed(func() Estimator {
		calls++
		if calls > 1 {
			return nil
		}
		return NewFreeBS(64)
	})
	mustPanic(t, w.Rotate)
	// Users on a non-anytime underlying estimator is a usage error.
	cse := NewWindowed(func() Estimator { return NewCSE(1<<12, 64) })
	mustPanic(t, func() { cse.Users(func(uint64, float64) {}) })
}

// TestWindowedRotateObserveRace is the -race regression test for the
// tentpole's guard: before the refactor nothing stopped a timer goroutine
// from calling Rotate mid-ObserveBatch. Batches, single observes, rotations,
// ticks, and every query path hammer one instance concurrently.
func TestWindowedRotateObserveRace(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1<<14, WithSeed(3)) },
		WithGenerations(3), WithRotateEveryEdges(2000))
	var wg sync.WaitGroup
	for id := 0; id < 6; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := hashing.NewRNG(uint64(id) + 1)
			batch := make([]Edge, 0, 64)
			for i := 0; i < 3000; i++ {
				u := uint64(rng.Intn(300) + 1)
				switch i % 4 {
				case 0:
					w.Observe(u, rng.Uint64())
				case 1:
					batch = batch[:0]
					for k := 0; k < 32; k++ {
						batch = append(batch, Edge{User: u, Item: rng.Uint64()})
					}
					w.ObserveBatch(batch)
				case 2:
					_ = w.Estimate(u)
					_ = w.TotalDistinct()
				default:
					if i%29 == 0 {
						_ = w.NumUsers()
					}
				}
			}
		}(id)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			w.Rotate()
			w.Tick()
		}
	}()
	wg.Wait()
	<-done
	if w.Epoch() < 200 {
		t.Fatalf("epoch = %d", w.Epoch())
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
