package streamcard

import (
	"math"
	"strings"
	"testing"
)

func TestWindowedFirstEpochMatchesPlain(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1<<18, WithSeed(3)) })
	plain := NewFreeRS(1<<18, WithSeed(3))
	for i := 0; i < 5000; i++ {
		w.Observe(1, uint64(i))
		plain.Observe(1, uint64(i))
	}
	if w.Estimate(1) != plain.Estimate(1) {
		t.Fatal("first epoch must match an unwrapped estimator exactly")
	}
	if w.Epoch() != 0 {
		t.Fatalf("epoch = %d", w.Epoch())
	}
}

func TestWindowedRotationForgetsOldEpochs(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 18) })
	// Epoch 0: user 1 is a heavy hitter.
	for i := 0; i < 10000; i++ {
		w.Observe(1, uint64(i))
	}
	heavy := w.Estimate(1)
	if heavy < 8000 {
		t.Fatalf("epoch-0 estimate %v", heavy)
	}
	// One rotation: epoch-0 data still visible (previous generation).
	w.Rotate()
	if got := w.Estimate(1); math.Abs(got-heavy) > 1e-9 {
		t.Fatalf("after one rotation estimate %v, want still %v", got, heavy)
	}
	// Second rotation: epoch-0 data fully aged out.
	w.Rotate()
	if got := w.Estimate(1); got != 0 {
		t.Fatalf("after two rotations estimate %v, want 0", got)
	}
	if w.Epoch() != 2 {
		t.Fatalf("epoch = %d", w.Epoch())
	}
}

func TestWindowedSpansTwoGenerations(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 18) })
	for i := 0; i < 1000; i++ {
		w.Observe(1, uint64(i))
	}
	w.Rotate()
	for i := 1000; i < 2000; i++ { // disjoint items in the new epoch
		w.Observe(1, uint64(i))
	}
	got := w.Estimate(1)
	if math.Abs(got-2000) > 150 {
		t.Fatalf("window estimate %v, want ~2000", got)
	}
	total := w.TotalDistinct()
	if math.Abs(total-2000) > 250 {
		t.Fatalf("window total %v, want ~2000", total)
	}
}

func TestWindowedOverlapUpperBound(t *testing.T) {
	// The same pairs fed in both generations are double counted — the
	// documented upper-approximation semantics.
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 18) })
	for i := 0; i < 1000; i++ {
		w.Observe(1, uint64(i))
	}
	w.Rotate()
	for i := 0; i < 1000; i++ {
		w.Observe(1, uint64(i))
	}
	got := w.Estimate(1)
	if got < 1500 || got > 2500 {
		t.Fatalf("overlap estimate %v, want ~2000 (duplicated across epochs)", got)
	}
}

func TestWindowedMemoryAndName(t *testing.T) {
	w := NewWindowed(func() Estimator { return NewFreeBS(4096) })
	if w.MemoryBits() != 4096 {
		t.Fatalf("one generation memory = %d", w.MemoryBits())
	}
	w.Rotate()
	if w.MemoryBits() != 8192 {
		t.Fatalf("two generation memory = %d", w.MemoryBits())
	}
	if !strings.Contains(w.Name(), "FreeBS") {
		t.Fatalf("name = %q", w.Name())
	}
}

func TestWindowedPanics(t *testing.T) {
	mustPanic(t, func() { NewWindowed(nil) })
	mustPanic(t, func() { NewWindowed(func() Estimator { return nil }) })
	w := NewWindowed(func() Estimator { return NewFreeBS(64) })
	calls := 0
	w.build = func() Estimator {
		calls++
		if calls > 0 {
			return nil
		}
		return NewFreeBS(64)
	}
	mustPanic(t, w.Rotate)
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
