package streamcard

import "sort"

// TopK returns the k users with the largest current estimates, descending
// (ties broken by user ID for determinism). It runs in O(users · log k) over
// an AnytimeEstimator's maintained estimates — the "who are my heaviest
// sources right now" query network monitors issue between edges. The scan
// goes through the unordered allocation-free iteration (UserRanger) when the
// estimator offers it — selection plus the final sort make the result
// independent of scan order, so TopK never pays Users' sorted enumeration.
func TopK(est AnytimeEstimator, k int) []Spreader {
	if k <= 0 {
		return nil
	}
	// A bounded min-heap over (estimate, user).
	heap := make([]Spreader, 0, k+1)
	less := func(a, b Spreader) bool {
		if a.Estimate != b.Estimate {
			return a.Estimate < b.Estimate
		}
		return a.User > b.User // larger IDs evict first on ties
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	rangeUsers(est, func(u uint64, e float64) {
		s := Spreader{User: u, Estimate: e}
		if len(heap) < k {
			heap = append(heap, s)
			siftUp(len(heap) - 1)
			return
		}
		if less(heap[0], s) {
			heap[0] = s
			siftDown()
		}
	})
	if len(heap) == 0 {
		return nil
	}
	sort.Slice(heap, func(i, j int) bool {
		if heap[i].Estimate != heap[j].Estimate {
			return heap[i].Estimate > heap[j].Estimate
		}
		return heap[i].User < heap[j].User
	})
	return heap
}
