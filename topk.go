package streamcard

import (
	"sort"
	"sync"
)

// TopK returns the k users with the largest current estimates, descending
// (ties broken by ascending user ID for determinism). When est natively
// implements TopKer — ShardedView's shard-concurrent selection, Sharded's
// snapshot routing — the call delegates to it; otherwise it runs the
// sequential reference. Either way the result is the same, bit for bit: the
// output order is a strict total order over unique users, so the selected
// set and its order do not depend on the execution strategy.
func TopK(est AnytimeEstimator, k int) []Spreader {
	if t, ok := est.(TopKer); ok {
		return t.TopK(k)
	}
	return TopKSerial(est, k)
}

// TopKer is implemented by estimators with a native top-k selection path.
// Implementations must return exactly what TopKSerial over the same state
// returns — bit-identical, including order — so TopK stays one query with
// interchangeable execution strategies.
type TopKer interface {
	TopK(k int) []Spreader
}

// TopKSerial is the sequential reference selection: one bounded min-heap fed
// by a single scan of the estimator's maintained estimates, O(users · log k)
// — the "who are my heaviest sources right now" query network monitors issue
// between edges. The scan goes through the unordered allocation-free
// iteration (UserRanger) when the estimator offers it — selection plus the
// final sort make the result independent of scan order, so TopKSerial never
// pays Users' sorted enumeration. The parallel sharded path must match this
// function's output exactly; the property tests hold it to that.
func TopKSerial(est AnytimeEstimator, k int) []Spreader {
	if k <= 0 {
		return nil
	}
	h := topkScratch.Get().(*topkHeap)
	h.reset(k)
	rangeUsers(est, h.offer)
	out := h.take()
	topkScratch.Put(h)
	return out
}

// spreaderWins reports whether a outranks b in the output order: descending
// estimate, ascending user ID on ties. Users are unique, so this is a
// strict total order — which is what makes top-k selection independent of
// scan order and of how the candidate set is split across shards.
func spreaderWins(a, b Spreader) bool {
	if a.Estimate != b.Estimate {
		return a.Estimate > b.Estimate
	}
	return a.User < b.User
}

// sortSpreaders sorts s into the output order (best first).
func sortSpreaders(s []Spreader) {
	sort.Slice(s, func(i, j int) bool { return spreaderWins(s[i], s[j]) })
}

// topkScratch recycles selection heaps across queries: the per-shard heaps
// of the parallel fan-out and TopKSerial's single heap come from here, so a
// steady stream of analytics queries allocates only its k-element results.
var topkScratch = sync.Pool{New: func() any { return new(topkHeap) }}

// topkHeap is a bounded min-heap of the best k spreaders seen so far: the
// weakest entry (smallest estimate; largest user on ties — the loser under
// spreaderWins) sits at the root and evicts first.
type topkHeap struct {
	k    int
	heap []Spreader
}

// reset prepares the heap for a fresh selection of size k, keeping the
// backing array from previous uses.
func (h *topkHeap) reset(k int) {
	h.k = k
	h.heap = h.heap[:0]
}

// offer considers one (user, estimate) candidate.
func (h *topkHeap) offer(u uint64, e float64) {
	s := Spreader{User: u, Estimate: e}
	if len(h.heap) < h.k {
		h.heap = append(h.heap, s)
		h.siftUp(len(h.heap) - 1)
		return
	}
	if spreaderWins(s, h.heap[0]) {
		h.heap[0] = s
		h.siftDown()
	}
}

// take sorts the selection into the output order and returns it as a fresh
// slice; the heap's backing array stays with h for reuse through the pool.
func (h *topkHeap) take() []Spreader {
	if len(h.heap) == 0 {
		return nil
	}
	sortSpreaders(h.heap)
	out := make([]Spreader, len(h.heap))
	copy(out, h.heap)
	return out
}

func (h *topkHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !spreaderWins(h.heap[p], h.heap[i]) {
			break
		}
		h.heap[i], h.heap[p] = h.heap[p], h.heap[i]
		i = p
	}
}

func (h *topkHeap) siftDown() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		weakest := i
		if l < len(h.heap) && spreaderWins(h.heap[weakest], h.heap[l]) {
			weakest = l
		}
		if r < len(h.heap) && spreaderWins(h.heap[weakest], h.heap[r]) {
			weakest = r
		}
		if weakest == i {
			return
		}
		h.heap[i], h.heap[weakest] = h.heap[weakest], h.heap[i]
		i = weakest
	}
}
