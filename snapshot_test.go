package streamcard

// Tests for the snapshot-isolated read path: frozen-view semantics,
// published-view reuse (the merged-total cache rides on it), and the
// rotation torture test — queries hammering a sharded windowed stack
// concurrently with ingestion and epoch rotation must always observe ONE
// consistent epoch, never a torn pre/post-rotation mix. Run with -race in
// CI: the same test then doubles as the data-race detector for the whole
// copy-on-write publication machinery.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/hashing"
)

// tortureStack builds the serving shape: sharded windowed FreeRS with a
// shared seed, so the merged union total is available from views.
func tortureStack(shards, gens int) *Sharded {
	return NewSharded(shards, func(int) Estimator {
		return NewWindowed(func() Estimator {
			return NewFreeRS(1<<16, WithSeed(7))
		}, WithGenerations(gens))
	})
}

func randomBatch(rng *hashing.RNG, n int) []Edge {
	edges := make([]Edge, 0, n)
	for len(edges) < n {
		u := uint64(rng.Intn(4000) + 1)
		run := rng.Intn(6) + 1
		for r := 0; r < run && len(edges) < n; r++ {
			edges = append(edges, Edge{User: u, Item: rng.Uint64()})
		}
	}
	return edges
}

// TestSnapshotTortureConsistentEpoch: /estimate-, /topk-, and /total-shaped
// queries racing with ObserveBatch and Rotate. Every view a querier obtains
// must freeze exactly one epoch across all shards (and epochs must be
// monotone per querier); the merged union total must always be computable
// from a view (lockstep rotations can never make it ErrIncompatible).
func TestSnapshotTortureConsistentEpoch(t *testing.T) {
	const (
		shards    = 4
		gens      = 3
		ingesters = 3
		queriers  = 6
		batches   = 150
		rotations = 80
	)
	s := tortureStack(shards, gens)

	var writers sync.WaitGroup
	var done atomic.Bool
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}

	for w := 0; w < ingesters; w++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := hashing.NewRNG(seed)
			for i := 0; i < batches; i++ {
				s.ObserveBatch(randomBatch(rng, 256))
				s.Observe(uint64(rng.Intn(4000)+1), rng.Uint64())
			}
		}(uint64(w + 1))
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < rotations; i++ {
			s.Rotate()
		}
	}()

	var readers sync.WaitGroup
	for q := 0; q < queriers; q++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			rng := hashing.NewRNG(seed)
			lastEpoch := -1
			for !done.Load() && !failed.Load() {
				v := s.Snapshot()
				if v == nil {
					fail("Snapshot returned nil for a snapshottable stack")
					return
				}
				// The single-consistent-epoch invariant, checked two ways:
				// the view's own verdict, and shard by shard.
				if !v.EpochConsistent() {
					fail("view froze a torn epoch mix (EpochConsistent=false)")
					return
				}
				epoch := v.Epoch()
				for i := 0; i < v.NumShards(); i++ {
					w, ok := v.ShardView(i).(*Windowed)
					if !ok {
						fail("shard view %d is not *Windowed", i)
						return
					}
					if w.Epoch() != epoch {
						fail("torn view: shard %d at epoch %d, view epoch %d", i, w.Epoch(), epoch)
						return
					}
				}
				if epoch < lastEpoch {
					fail("epoch went backwards: %d after %d", epoch, lastEpoch)
					return
				}
				lastEpoch = epoch

				// The query mix, all on the frozen view.
				_ = v.Estimate(uint64(rng.Intn(4000) + 1))
				_ = v.TotalDistinct()
				switch rng.Intn(8) {
				case 0:
					if top := TopK(v, 5); len(top) > 1 && top[0].Estimate < top[1].Estimate {
						fail("TopK not descending on a view")
						return
					}
				case 1:
					if _, err := v.TotalDistinctMerged(); err != nil {
						fail("merged total on a consistent lockstep view: %v", err)
						return
					}
				case 2:
					_ = v.NumUsers()
				}
			}
		}(uint64(100 + q))
	}

	writers.Wait()
	done.Store(true)
	readers.Wait()
	if failed.Load() {
		t.FailNow()
	}

	// Post-conditions: the machinery still works after the storm. (The
	// rotator may have fired its last rotations after ingest ended, so the
	// live window can be empty — ingest once more and the view must show
	// it.)
	if got := s.Snapshot().Epoch(); got != rotations {
		t.Fatalf("final epoch %d, want %d", got, rotations)
	}
	rng := hashing.NewRNG(99)
	s.ObserveBatch(randomBatch(rng, 512))
	v := s.Snapshot()
	if v.NumUsers() == 0 || v.TotalDistinct() <= 0 {
		t.Fatal("final view lost the ingested data")
	}
}

// TestShardedSnapshotFrozen: a view is a frozen cut — later ingestion never
// shows through it — and a fresh Snapshot after a completed write always
// reflects that write (read-your-writes).
func TestShardedSnapshotFrozen(t *testing.T) {
	s := tortureStack(3, 2)
	rng := hashing.NewRNG(1)
	s.ObserveBatch(randomBatch(rng, 4096))

	v1 := s.Snapshot()
	users1 := v1.NumUsers()
	total1 := v1.TotalDistinct()
	est1 := v1.Estimate(42)

	// New users from a disjoint range; the frozen view must not move.
	fresh := make([]Edge, 0, 4096)
	for i := 0; i < 4096; i++ {
		fresh = append(fresh, Edge{User: uint64(100000 + i/4), Item: rng.Uint64()})
	}
	s.ObserveBatch(fresh)

	if v1.NumUsers() != users1 || v1.TotalDistinct() != total1 || v1.Estimate(42) != est1 {
		t.Fatal("ingestion after the snapshot leaked into the frozen view")
	}
	v2 := s.Snapshot()
	if v2 == v1 {
		t.Fatal("Snapshot after a write returned the stale published view")
	}
	if v2.NumUsers() <= users1 {
		t.Fatalf("read-your-writes violated: %d users before, %d after ingesting new users",
			users1, v2.NumUsers())
	}
	// Rotation isolation: rotating k=2 twice discards all pre-rotation
	// generations from fresh views; the old view keeps serving its epoch.
	s.Rotate()
	s.Rotate()
	if v2.NumUsers() <= users1 {
		t.Fatal("rotation destroyed a frozen view")
	}
	if got := s.Snapshot().Epoch(); got != 2 {
		t.Fatalf("fresh view at epoch %d, want 2", got)
	}
}

// TestShardedSnapshotPublished: while nothing is written, Snapshot returns
// the SAME published view — which is what makes the per-view merged-total
// cache effective — and the merged total from a view equals the one the
// locked aggregation used to compute.
func TestShardedSnapshotPublished(t *testing.T) {
	s := tortureStack(4, 3)
	rng := hashing.NewRNG(2)
	s.ObserveBatch(randomBatch(rng, 8192))

	v1 := s.Snapshot()
	m1, err := v1.TotalDistinctMerged()
	if err != nil {
		t.Fatal(err)
	}
	v2 := s.Snapshot()
	if v2 != v1 {
		t.Fatal("Snapshot rebuilt the view although nothing was written")
	}
	m2, err := v2.TotalDistinctMerged()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatalf("cached merged total drifted: %v != %v", m1, m2)
	}
	// The facade routes through the same view, so it must agree bit for bit.
	m3, err := s.TotalDistinctMerged()
	if err != nil {
		t.Fatal(err)
	}
	if m3 != m1 {
		t.Fatalf("Sharded.TotalDistinctMerged %v != view's %v", m3, m1)
	}
	// A write invalidates by publication: the next view is a new object.
	s.Observe(1, 1)
	if s.Snapshot() == v1 {
		t.Fatal("write did not publish a fresh view")
	}
}

// TestShardedSnapshotDistinctSeeds: with the customary distinct per-shard
// seeds the merged total stays ErrIncompatible — served from the view, the
// error contract is unchanged.
func TestShardedSnapshotDistinctSeeds(t *testing.T) {
	s := NewSharded(3, func(i int) Estimator {
		return NewFreeRS(1<<14, WithSeed(uint64(i)+1))
	})
	s.Observe(1, 2)
	if _, err := s.TotalDistinctMerged(); !errors.Is(err, ErrIncompatible) {
		t.Fatal("distinct-seed shards must stay unmergeable through the snapshot path")
	}
	if v := s.Snapshot(); v == nil {
		t.Fatal("plain FreeRS shards must be snapshottable")
	} else if v.Estimate(1) <= 0 {
		t.Fatal("view lost the observation")
	}
}

// TestShardedSnapshotDriftingEpochs: shards rotating themselves on
// per-shard edge-count boundaries have no common epoch. Views of such a
// stack must still be served (marked epoch-inconsistent, merged total
// ErrIncompatible — the locked aggregation's historical contract), must
// not spin or deadlock, and must be REUSED while nothing is written: the
// drift diagnosis settles instead of re-escalating to the all-locks cut
// on every read.
func TestShardedSnapshotDriftingEpochs(t *testing.T) {
	s := NewSharded(3, func(int) Estimator {
		return NewWindowed(func() Estimator {
			return NewFreeRS(1<<14, WithSeed(7))
		}, WithGenerations(2), WithRotateEveryEdges(500))
	})
	rng := hashing.NewRNG(5)
	for i := 0; i < 40; i++ {
		s.ObserveBatch(randomBatch(rng, 300))
	}
	// Confirm the shards actually drifted (hash imbalance over 12k edges
	// makes equal per-shard rotation counts wildly unlikely; if they ever
	// tie, the view is simply consistent and the test's second half still
	// holds).
	v := s.Snapshot()
	if v == nil {
		t.Fatal("drifting stack must still be snapshottable")
	}
	if !v.EpochConsistent() {
		if _, err := v.TotalDistinctMerged(); !errors.Is(err, ErrIncompatible) {
			t.Fatalf("merged total on an epoch-torn view: want ErrIncompatible, got %v", err)
		}
	}
	if v.NumUsers() == 0 {
		t.Fatal("drifting view lost the users")
	}
	// Quiescent reuse: with no writes, the same view object is served.
	if s.Snapshot() != v {
		t.Fatal("quiescent drifting stack rebuilt its view (settled diagnosis not reused)")
	}
	// And reads keep working through continued drift.
	for i := 0; i < 10; i++ {
		s.ObserveBatch(randomBatch(rng, 300))
		_ = s.Estimate(uint64(rng.Intn(4000) + 1))
		_ = s.NumUsers()
	}
}

// TestUnsnapshottableFallback: estimators without snapshot support keep the
// locked read path — Snapshot reports nil, queries still work.
func TestUnsnapshottableFallback(t *testing.T) {
	s := NewSharded(2, func(int) Estimator { return NewCSE(1<<14, 256) })
	s.Observe(5, 6)
	if v := s.Snapshot(); v != nil {
		t.Fatal("CSE shards must not claim snapshot support")
	}
	if s.Estimate(5) <= 0 {
		t.Fatal("locked fallback Estimate broken")
	}
	w := NewWindowed(func() Estimator { return NewCSE(1<<14, 256) })
	if w.Snapshot() != nil {
		t.Fatal("Windowed over CSE must not claim snapshot support")
	}
	w.Observe(5, 6)
	if w.Estimate(5) <= 0 {
		t.Fatal("windowed locked fallback Estimate broken")
	}
}
