package streamcard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hashing"
	"repro/internal/stream"
)

// Sharded makes any Estimator safe for concurrent use and scalable across
// cores — the deployment shape the paper's conclusion points at (SDN
// routers and line-rate monitors process packets on many threads).
//
// Users are partitioned by hash across N independent shards, each its own
// estimator behind its own mutex: all edges of a user land in the same
// shard, so per-user estimates are exactly what a single estimator fed that
// user's sub-stream would produce, and shards never contend unless two
// threads hit the same shard simultaneously. TotalDistinct sums the shards
// (the sub-streams partition the pair space, so the sum is exact in
// expectation).
//
// The memory budget given to the constructor is split evenly across shards.
//
// Reads are snapshot-isolated: when the shard estimators support
// copy-on-write snapshots (FreeBS, FreeRS, Windowed over either), every
// query method is served from an atomically published, epoch-consistent
// frozen view (see Snapshot and ShardedView in snapshot.go), so queries,
// user enumerations, top-k scans, and checkpoints never hold the shard
// locks — the write path (Observe/ObserveBatch/Rotate) is the only lock
// domain, and once a reader exists it also publishes each shard's fresh
// snapshot as it releases the lock, so queries stay fast (atomic loads)
// even while large batches are absorbing. Other estimator types fall back
// to the locked read paths.
type Sharded struct {
	shards []shard
	seed   uint64
	name   string
	// part is the run-aware counting-sort partitioner ObserveBatch splits
	// batches with — the same stream.Partitioner pre-partitioning pipelines
	// (the server's shard executors, a cluster router) build over
	// ShardIndex, so there is exactly one grouping implementation and any
	// path through it yields bit-identical per-shard sub-streams.
	part *stream.Partitioner

	// snapshottable is fixed at construction: every shard supports O(1)
	// copy-on-write snapshots, so the read methods route through Snapshot.
	snapshottable bool
	// readers arms writer-side snapshot publication; it is set (once, never
	// cleared) by the first Snapshot call. While unset, writes skip the
	// per-batch publish entirely — a pure-ingest stack (bulk load, spool
	// replay, a benchmark's fill phase) pays nothing for a read path nobody
	// is using. Correctness never depends on the flag: shardView's locked
	// refresh covers any shard written before its publication was armed.
	readers atomic.Bool
	// set is the published epoch-consistent view of all shards; stale (any
	// shard's version moved on, or an epoch race was caught) views are
	// rebuilt incrementally by Snapshot.
	set atomic.Pointer[ShardedView]
	// rotMu serializes whole rotation fan-outs against the fully locked
	// snapshot cut (collectLocked), so an all-locks view can never
	// interleave a rotation and both sides stay deadlock-free by taking
	// rotMu before any shard lock. The ingest paths never touch it.
	rotMu sync.Mutex
}

type shard struct {
	mu  sync.Mutex
	est Estimator

	// ver counts mutations (bumped under mu, read without it): the
	// freshness stamp published snapshots are checked against.
	ver atomic.Uint64
	// snap is the shard's published frozen snapshot; nil until first use.
	snap atomic.Pointer[shardSnap]
}

// NewSharded returns a sharded wrapper with n shards; build(i) must return
// a fresh estimator for shard i (use distinct seeds per shard for hash
// independence). It panics if n <= 0 or build returns nil.
func NewSharded(n int, build func(shard int) Estimator) *Sharded {
	if n <= 0 {
		panic("streamcard: NewSharded requires n > 0")
	}
	if build == nil {
		panic("streamcard: NewSharded requires a build function")
	}
	s := &Sharded{
		shards: make([]shard, n),
		seed:   hashing.Mix64(uint64(n) ^ 0x3779c0ffee),
	}
	s.part = stream.NewPartitioner(n, s.ShardIndex)
	s.snapshottable = true
	for i := range s.shards {
		est := build(i)
		if est == nil {
			panic("streamcard: build returned nil estimator")
		}
		s.shards[i].est = est
		if !estSnapshottable(est) {
			s.snapshottable = false
		}
	}
	s.name = fmt.Sprintf("Sharded(%s,%d)", s.shards[0].est.Name(), n)
	return s
}

func (s *Sharded) shardFor(user uint64) *shard {
	return &s.shards[s.ShardIndex(user)]
}

// ShardIndex returns the shard user's edges are routed to. Exported so
// multi-node deployments can pre-partition traffic the same way (feeding a
// shard-pure batch from one thread keeps that shard's sub-stream ordered and
// its estimates deterministic).
func (s *Sharded) ShardIndex(user uint64) int {
	return hashing.UniformIndex(hashing.HashU64(user, s.seed), len(s.shards))
}

// Observe implements Estimator; safe for concurrent use. Once a reader has
// armed publication, the write publishes the shard's fresh snapshot before
// releasing the lock, so concurrent queries never wait on the write path.
// Note that per-edge Observe on a stack that is being queried makes the
// shard's arrays copy-on-write once per edge — the next write pays the
// detach copy — so hot served stacks should ingest through ObserveBatch,
// which amortizes one publication (and one detach) over the whole batch.
func (s *Sharded) Observe(user, item uint64) {
	sh := s.shardFor(user)
	sh.mu.Lock()
	sh.est.Observe(user, item)
	sh.ver.Add(1)
	if s.snapshottable && s.readers.Load() {
		sh.publishLocked()
	}
	sh.mu.Unlock()
}

// ObserveBatch implements Estimator; safe for concurrent use. The batch is
// grouped by shard with a stable counting sort over runs of consecutive
// same-user edges — a run routes to one shard, so the shard hash is computed
// once per run and edges move with memmove-speed copies — and every touched
// shard's mutex is taken once per batch instead of once per edge, so the
// lock cost and the inner estimator's per-run hoisting amortize over the
// whole batch. Within each shard the batch's edge order is preserved, which
// keeps Sharded.ObserveBatch bit-identical to the per-edge Observe loop.
func (s *Sharded) ObserveBatch(edges []Edge) {
	if len(edges) == 0 {
		return
	}
	// With publication armed (a reader exists), every touched shard's fresh
	// snapshot is published before its lock is released — the inversion that
	// keeps query latency flat under batch ingest: a reader assembling a
	// view mid-batch finds current snapshots waiting instead of queueing
	// behind the absorb for a locked refresh.
	pub := s.snapshottable && s.readers.Load()
	b := s.part.Split(edges)
	for t := range s.shards {
		if sub := b.Shard(t); len(sub) > 0 {
			s.absorbShard(t, sub, pub)
		}
	}
	b.Release()
}

// ObserveShardBatch absorbs a shard-pure batch directly into shard idx,
// taking only that shard's mutex — the fast path for pipelines that
// partitioned upstream (stream.Partitioner over ShardIndex, typically at
// decode time) and so need no re-grouping here: with one feeder goroutine
// per shard the mutex is uncontended by construction, and all touched
// shards of a wire batch absorb concurrently. Every edge MUST route to idx
// per ShardIndex; edges that belong elsewhere silently corrupt per-user
// routing (a user's state splits across shards), which is why only
// partitioner output should ever reach this method. Within one shard,
// feeding the sub-batches of successive batches in order keeps the shard's
// sub-stream — and therefore every estimate — bit-identical to a
// sequential ObserveBatch twin. Safe for concurrent use; same writer-side
// snapshot publication as ObserveBatch.
func (s *Sharded) ObserveShardBatch(idx int, edges []Edge) {
	if idx < 0 || idx >= len(s.shards) {
		panic(fmt.Sprintf("streamcard: shard %d out of range [0,%d)", idx, len(s.shards)))
	}
	if len(edges) == 0 {
		return
	}
	s.absorbShard(idx, edges, s.snapshottable && s.readers.Load())
}

// absorbShard feeds one shard-pure sub-batch to shard t under its lock,
// publishing the shard's fresh snapshot before release when pub is set.
func (s *Sharded) absorbShard(t int, sub []Edge, pub bool) {
	sh := &s.shards[t]
	sh.mu.Lock()
	sh.est.ObserveBatch(sub)
	sh.ver.Add(1)
	if pub {
		sh.publishLocked()
	}
	sh.mu.Unlock()
}

// Estimate implements Estimator; safe for concurrent use. Served from the
// published snapshot when available: no shard lock is held for the read.
func (s *Sharded) Estimate(user uint64) float64 {
	if v := s.Snapshot(); v != nil {
		return v.Estimate(user)
	}
	sh := s.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.est.Estimate(user)
}

// TotalDistinct implements Estimator (sum across shards; snapshot-served
// when available).
func (s *Sharded) TotalDistinct() float64 {
	if v := s.Snapshot(); v != nil {
		return v.TotalDistinct()
	}
	total := 0.0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.est.TotalDistinct()
		sh.mu.Unlock()
	}
	return total
}

// MemoryBits implements Estimator (sum across shards).
func (s *Sharded) MemoryBits() int64 {
	var m int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		m += sh.est.MemoryBits()
		sh.mu.Unlock()
	}
	return m
}

// TotalDistinctMerged combines the shard sketches with Merge and returns the
// combined sketch's total — the array-derived, low-variance reading of the
// union, the way per-shard sketches are merged for a database-wide
// cardinality instead of summing independent estimates. It requires every
// shard to wrap the same mergeable type (FreeBS, FreeRS, or a Windowed over
// either) built with identical parameters, including the seed: build shards
// with a shared seed to use it (user-partitioning keeps per-user estimates
// exact either way). With the customary distinct per-shard seeds it reports
// ErrIncompatible — fall back to TotalDistinct, which sums shard totals and
// needs no compatibility. Windowed shards additionally require every shard
// to sit at the same epoch (ErrIncompatible otherwise), which Rotate
// guarantees as long as rotations go through it. Safe for concurrent use.
// When snapshots are available the merge runs on the published frozen view
// with no shard lock held, and the result is cached on that view until the
// next write publishes a fresh one — repeated totals over an unchanged
// stack pay a single merge.
func (s *Sharded) TotalDistinctMerged() (float64, error) {
	if v := s.Snapshot(); v != nil {
		return v.TotalDistinctMerged()
	}
	switch s.shards[0].est.(type) {
	case *FreeBS:
		return mergeShards(s, func(e Estimator) (*FreeBS, bool) { f, ok := e.(*FreeBS); return f, ok })
	case *FreeRS:
		return mergeShards(s, func(e Estimator) (*FreeRS, bool) { f, ok := e.(*FreeRS); return f, ok })
	case *Windowed:
		return mergeWindowedShards(s)
	default:
		return 0, fmt.Errorf("streamcard: %s shards are not mergeable: %w",
			s.shards[0].est.Name(), ErrIncompatible)
	}
}

// mergeable is the self-referential merge surface both FreeBS and FreeRS
// expose; mergeShards is generic over it so the clone-then-fold aggregation
// is written once.
type mergeable[T any] interface {
	Merge(T) error
	Clone() T
	TotalDistinct() float64
}

// mergeWindowedShards is the Windowed variant of mergeShards: same
// clone-then-fold shape, but folding in place with foldFrom rather than
// through Windowed.Merge, whose per-fold atomicity would re-clone every
// generation of the accumulator once per shard — the accumulator here is
// private, so a failed fold just discards it. At most one shard lock is
// held at a time; a rotation racing between shards makes epochs mismatch,
// which reports ErrIncompatible (callers fall back to TotalDistinct).
func mergeWindowedShards(s *Sharded) (float64, error) {
	var combined *Windowed
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		w, ok := sh.est.(*Windowed)
		var err error
		if ok {
			if i == 0 {
				combined = w.Clone()
			} else {
				err = combined.foldFrom(w)
			}
		}
		sh.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("streamcard: shard %d is not *Windowed: %w", i, ErrIncompatible)
		}
		if err != nil {
			return 0, err
		}
	}
	return combined.TotalDistinct(), nil
}

// mergeShards clones shard 0's estimator and folds every other shard in,
// holding at most one shard lock at a time. cast narrows the interface-typed
// shard estimator to the concrete mergeable type (failing when shards mix
// types, which NewSharded's single build function cannot produce but the
// aggregation refuses to assume).
func mergeShards[T mergeable[T]](s *Sharded, cast func(Estimator) (T, bool)) (float64, error) {
	var combined T
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		est, ok := cast(sh.est)
		var err error
		if ok {
			if i == 0 {
				combined = est.Clone()
			} else {
				err = combined.Merge(est)
			}
		}
		sh.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("streamcard: shard %d is not %T: %w", i, combined, ErrIncompatible)
		}
		if err != nil {
			return 0, err
		}
	}
	return combined.TotalDistinct(), nil
}

// Users implements AnytimeEstimator: fn is called once per user with a
// nonzero estimate, fanning out across the shards. Users partition across
// shards (all of a user's edges land in one shard), so every user is
// reported exactly once and the union of the per-shard user sets is the
// deployment-wide user set — no merge map needed, unlike Windowed. Each
// shard's lock is held while its users stream through fn, so fn must not
// call back into s (the locks are not reentrant). It requires the shard
// estimators to be AnytimeEstimators (FreeBS, FreeRS, or Windowed over
// either) and panics otherwise. Report order is fully deterministic: shards
// in index order, each shard's users in ascending user order (the
// AnytimeEstimator enumeration contract) — so /users-style output is
// reproducible across runs and restarts. RangeUsers skips the per-shard
// sort when order does not matter.
//
// Snapshot-served when available: the enumeration then runs on a frozen
// view with no shard lock held, so fn may be slow (or call back into s)
// without stalling ingest.
func (s *Sharded) Users(fn func(user uint64, estimate float64)) {
	if v := s.Snapshot(); v != nil {
		v.Users(fn)
		return
	}
	s.eachShardUsers(func(a AnytimeEstimator) { a.Users(fn) }, "Users")
}

// RangeUsers implements UserRanger: the same exactly-once fan-out as Users
// (users partition across shards), each shard iterated through its
// unordered allocation-free surface. Same locking caveats as Users.
func (s *Sharded) RangeUsers(fn func(user uint64, estimate float64)) {
	if v := s.Snapshot(); v != nil {
		v.RangeUsers(fn)
		return
	}
	s.eachShardUsers(func(a AnytimeEstimator) { rangeUsers(a, fn) }, "RangeUsers")
}

// eachShardUsers runs visit over every shard's AnytimeEstimator in shard
// order, one shard lock at a time, panicking (outside the lock) on shards
// that maintain no per-user estimates.
func (s *Sharded) eachShardUsers(visit func(AnytimeEstimator), method string) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		a, ok := sh.est.(AnytimeEstimator)
		if ok {
			visit(a)
		}
		sh.mu.Unlock()
		if !ok {
			panic(fmt.Sprintf("streamcard: Sharded.%s needs AnytimeEstimator shards (FreeBS/FreeRS/Windowed), not %s", method, sh.est.Name()))
		}
	}
}

// NumUsers implements AnytimeEstimator: the total number of users with a
// nonzero estimate, the sum of the per-shard counts (exact, since users
// partition across shards). Same requirements as Users; snapshot-served
// when available.
func (s *Sharded) NumUsers() int {
	if v := s.Snapshot(); v != nil {
		return v.NumUsers()
	}
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		a, ok := sh.est.(AnytimeEstimator)
		if ok {
			total += a.NumUsers()
		}
		sh.mu.Unlock()
		if !ok {
			panic(fmt.Sprintf("streamcard: Sharded.NumUsers needs AnytimeEstimator shards (FreeBS/FreeRS/Windowed), not %s", sh.est.Name()))
		}
	}
	return total
}

// Rotator is the epoch-advance surface of time-windowed estimators:
// Windowed implements it, Sharded fans it out, and deployments drive it from
// whatever marks their epochs (a timer, a watermark in the stream, an
// operator command).
type Rotator interface {
	// Rotate closes the current epoch and starts a fresh one.
	Rotate()
}

// Rotate advances every shard's window by one epoch, taking each shard's
// lock as it goes — the same one-lock-per-shard discipline as ingestion, so
// a rotation never tears a concurrent ObserveBatch (the batch's shard lock
// holds the rotation off until the batch is fully absorbed, and the batch is
// attributed to the epoch it started in). All shards end the call at the
// same epoch: a Sharded(Windowed(...)) rotates coherently under one epoch
// as long as rotations are issued from one place, which is also what keeps
// concurrent runs bit-identical to a sequential twin rotated at the same
// stream positions. It panics if the shard estimators do not implement
// Rotator.
//
// Rotation publishes instead of quiescing: each shard's fresh snapshot
// (the new epoch) is published while its lock is still held, and readers
// assembling a cross-shard view mid-fan-out simply retry until every shard
// reports the same epoch (Snapshot) — no reader is ever blocked for the
// whole fan-out. The fan-out runs under rotMu so the fully locked snapshot
// cut can exclude it.
func (s *Sharded) Rotate() {
	s.rotMu.Lock()
	defer s.rotMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		r, ok := sh.est.(Rotator)
		if ok {
			r.Rotate()
			sh.ver.Add(1)
			if s.snapshottable {
				sh.publishLocked()
			}
		}
		sh.mu.Unlock()
		if !ok {
			panic(fmt.Sprintf("streamcard: %s shards do not rotate (wrap a Windowed estimator)", sh.est.Name()))
		}
	}
	// Drop the assembled pre-rotation view: it references every shard's
	// pre-rotation generations — including the ones this rotation just
	// retired — and nothing else would release them until the next query
	// happened to republish. The next Snapshot reassembles from the
	// per-shard snapshots published above.
	s.set.Store(nil)
}

// Name implements Estimator.
func (s *Sharded) Name() string { return s.name }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

var (
	_ Estimator = (*Sharded)(nil)
	// AnytimeEstimator holds whenever the shard estimators are themselves
	// AnytimeEstimators (FreeBS, FreeRS, or Windowed over either); Users and
	// NumUsers panic otherwise. The same caveat applies to UserRanger.
	_ AnytimeEstimator = (*Sharded)(nil)
	_ UserRanger       = (*Sharded)(nil)
)
