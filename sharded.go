package streamcard

import (
	"fmt"
	"sync"

	"repro/internal/hashing"
)

// Sharded makes any Estimator safe for concurrent use and scalable across
// cores — the deployment shape the paper's conclusion points at (SDN
// routers and line-rate monitors process packets on many threads).
//
// Users are partitioned by hash across N independent shards, each its own
// estimator behind its own mutex: all edges of a user land in the same
// shard, so per-user estimates are exactly what a single estimator fed that
// user's sub-stream would produce, and shards never contend unless two
// threads hit the same shard simultaneously. TotalDistinct sums the shards
// (the sub-streams partition the pair space, so the sum is exact in
// expectation).
//
// The memory budget given to the constructor is split evenly across shards.
type Sharded struct {
	shards []shard
	seed   uint64
	name   string
}

type shard struct {
	mu  sync.Mutex
	est Estimator
}

// NewSharded returns a sharded wrapper with n shards; build(i) must return
// a fresh estimator for shard i (use distinct seeds per shard for hash
// independence). It panics if n <= 0 or build returns nil.
func NewSharded(n int, build func(shard int) Estimator) *Sharded {
	if n <= 0 {
		panic("streamcard: NewSharded requires n > 0")
	}
	if build == nil {
		panic("streamcard: NewSharded requires a build function")
	}
	s := &Sharded{
		shards: make([]shard, n),
		seed:   hashing.Mix64(uint64(n) ^ 0x3779c0ffee),
	}
	for i := range s.shards {
		est := build(i)
		if est == nil {
			panic("streamcard: build returned nil estimator")
		}
		s.shards[i].est = est
	}
	s.name = fmt.Sprintf("Sharded(%s,%d)", s.shards[0].est.Name(), n)
	return s
}

func (s *Sharded) shardFor(user uint64) *shard {
	return &s.shards[hashing.UniformIndex(hashing.HashU64(user, s.seed), len(s.shards))]
}

// Observe implements Estimator; safe for concurrent use.
func (s *Sharded) Observe(user, item uint64) {
	sh := s.shardFor(user)
	sh.mu.Lock()
	sh.est.Observe(user, item)
	sh.mu.Unlock()
}

// Estimate implements Estimator; safe for concurrent use.
func (s *Sharded) Estimate(user uint64) float64 {
	sh := s.shardFor(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.est.Estimate(user)
}

// TotalDistinct implements Estimator (sum across shards).
func (s *Sharded) TotalDistinct() float64 {
	total := 0.0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.est.TotalDistinct()
		sh.mu.Unlock()
	}
	return total
}

// MemoryBits implements Estimator (sum across shards).
func (s *Sharded) MemoryBits() int64 {
	var m int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		m += sh.est.MemoryBits()
		sh.mu.Unlock()
	}
	return m
}

// Name implements Estimator.
func (s *Sharded) Name() string { return s.name }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

var _ Estimator = (*Sharded)(nil)
