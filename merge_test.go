package streamcard

// Public-surface merge tests: the wrapper Merge/Clone methods and the
// sharded merged-total aggregation. The deep property testing (bit-for-bit
// array equality against a union sketch across sizes and seeds) lives in
// internal/core; here the concern is the API contract — compatibility
// errors surface, clones are independent, and TotalDistinctMerged combines
// same-seed shards while rejecting the distinct-seed default.

import (
	"errors"
	"math"
	"testing"
)

func TestPublicMergeFreeBS(t *testing.T) {
	a := NewFreeBS(1<<14, WithSeed(9))
	b := NewFreeBS(1<<14, WithSeed(9))
	ea := burstStream(6000, 31)
	eb := burstStream(6000, 32)
	a.ObserveBatch(ea)
	b.ObserveBatch(eb)

	union := NewFreeBS(1<<14, WithSeed(9))
	union.ObserveBatch(ea)
	union.ObserveBatch(eb)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// TotalDistinct is array-derived on the wrapper, and the merged array is
	// bit-identical to the union sketch's: the totals must match exactly.
	if got, want := a.TotalDistinct(), union.TotalDistinct(); got != want {
		t.Fatalf("merged TotalDistinct %v != union %v", got, want)
	}
	if a.NumUsers() != union.NumUsers() {
		t.Fatalf("merged NumUsers %d != union %d", a.NumUsers(), union.NumUsers())
	}

	// Incompatible partners are rejected.
	if err := a.Merge(NewFreeBS(1<<14, WithSeed(10))); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("seed mismatch: want ErrIncompatible, got %v", err)
	}
	if err := a.Merge(NewFreeBS(1<<13, WithSeed(9))); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("size mismatch: want ErrIncompatible, got %v", err)
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merge accepted")
	}
}

func TestPublicMergeFreeRS(t *testing.T) {
	a := NewFreeRS(1<<14, WithSeed(9))
	b := NewFreeRS(1<<14, WithSeed(9))
	ea := burstStream(6000, 41)
	eb := burstStream(6000, 42)
	a.ObserveBatch(ea)
	b.ObserveBatch(eb)

	union := NewFreeRS(1<<14, WithSeed(9))
	union.ObserveBatch(ea)
	union.ObserveBatch(eb)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.TotalDistinct(), union.TotalDistinct(); got != want {
		t.Fatalf("merged TotalDistinct %v != union %v", got, want)
	}
	if err := a.Merge(NewFreeRS(1<<14, WithSeed(10))); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("seed mismatch: want ErrIncompatible, got %v", err)
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merge accepted")
	}
}

func TestPublicClone(t *testing.T) {
	f := NewFreeRS(1<<12, WithSeed(2))
	f.ObserveBatch(burstStream(2000, 8))
	c := f.Clone()
	if c.TotalDistinct() != f.TotalDistinct() {
		t.Fatal("clone total differs")
	}
	c.Observe(1<<40, 1)
	if f.Estimate(1<<40) != 0 {
		t.Fatal("clone shares state with original")
	}
}

// TestShardedTotalDistinctMerged: shards built with a SHARED seed merge into
// one union sketch whose array-derived total is close to the truth, while
// the customary distinct-seed construction is rejected with ErrIncompatible.
func TestShardedTotalDistinctMerged(t *testing.T) {
	for _, kind := range []string{"FreeBS", "FreeRS"} {
		t.Run(kind, func(t *testing.T) {
			build := func(seed uint64) func(int) Estimator {
				return func(int) Estimator {
					if kind == "FreeBS" {
						return NewFreeBS(1<<16, WithSeed(seed))
					}
					return NewFreeRS(1<<16, WithSeed(seed))
				}
			}
			s := NewSharded(4, func(i int) Estimator { return build(77)(i) })
			// Known ground truth: users 1..50 with 200 distinct items each.
			const users, perUser = 50, 200
			for u := uint64(1); u <= users; u++ {
				for d := 0; d < perUser; d++ {
					s.Observe(u, uint64(d))
				}
			}
			merged, err := s.TotalDistinctMerged()
			if err != nil {
				t.Fatal(err)
			}
			truth := float64(users * perUser)
			if rel := math.Abs(merged-truth) / truth; rel > 0.05 {
				t.Fatalf("merged total %v vs truth %v (rel %v)", merged, truth, rel)
			}
			// The summed reading must also be sane, and merging must not
			// have mutated the live shards.
			if rel := math.Abs(s.TotalDistinct()-truth) / truth; rel > 0.10 {
				t.Fatalf("summed total drifted after merge: %v vs %v", s.TotalDistinct(), truth)
			}

			distinct := NewSharded(4, func(i int) Estimator { return build(uint64(i) + 1)(i) })
			distinct.Observe(1, 2)
			if _, err := distinct.TotalDistinctMerged(); !errors.Is(err, ErrIncompatible) {
				t.Fatalf("distinct-seed shards: want ErrIncompatible, got %v", err)
			}
		})
	}

	// Non-mergeable shard types are rejected too.
	cse := NewSharded(2, func(i int) Estimator { return NewCSE(1<<12, 64, WithSeed(1)) })
	if _, err := cse.TotalDistinctMerged(); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("CSE shards: want ErrIncompatible, got %v", err)
	}
}
