package streamcard

// Shard-concurrent analytics read path.
//
// Two invariants the serving stack already guarantees make analytics queries
// embarrassingly parallel:
//
//   - Users are partitioned by hash (Sharded.ShardIndex), so each user's
//     ENTIRE estimate lives in exactly one shard. Any per-user aggregation
//     therefore decomposes exactly: the global top k is contained in the
//     union of per-shard top k's, a user count is the sum of per-shard
//     counts, and no cross-shard reconciliation is ever needed.
//   - Analytics reads run on immutable published snapshots (ShardedView
//     assembles frozen per-shard views), so the per-shard work is lock-free
//     and touches no writer state.
//
// This file fans that per-shard work out over a bounded worker pool sized to
// GOMAXPROCS: TopK runs one bounded min-heap per shard and merges the
// winners, NumUsers sums per-shard counts, and Users/RangeUsers pre-warm the
// per-shard window folds in parallel before their serial in-order
// enumeration (fn is called serially — that contract does not change).
// Results are bit-identical to the sequential reference: the output order is
// a strict total order over unique users, so neither the shard split nor the
// pool's scheduling can reach the output.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachShard runs work(i) for every i in [0, n) on a bounded worker pool
// of min(GOMAXPROCS, n) goroutines pulling indices from a shared counter.
// With one worker (or one shard) it runs inline on the caller's goroutine —
// single-core hosts pay no scheduling overhead and stay easy to reason
// about. work must not panic: a panic on a pool goroutine would kill the
// process, so callers narrow interfaces (anytime) before fanning out.
func forEachShard(n int, work func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
}

// TopK implements TopKer with a shard-concurrent selection: one bounded
// min-heap per shard on the worker pool, then a merge of the per-shard
// winners.
//
// Exactness: each user's entire estimate lives in exactly one shard, so
// every member of the global top k is inside its own shard's top k — the
// union of per-shard winners (≤ shards·k candidates) is a superset of the
// answer, and merging loses nothing. Determinism: (estimate desc, user asc)
// is a strict total order (user IDs are unique), so the selected set and
// its order are unique — bit-identical to TopKSerial over the same view,
// which the property tests assert across shard counts, k, and tie-heavy
// inputs.
func (v *ShardedView) TopK(k int) []Spreader {
	if k <= 0 {
		return nil
	}
	n := len(v.views)
	ests := make([]AnytimeEstimator, n)
	for i := range ests {
		ests[i] = v.anytime(i, "TopK")
	}
	if n == 1 {
		return TopKSerial(ests[0], k)
	}
	per := make([][]Spreader, n)
	forEachShard(n, func(i int) {
		per[i] = TopKSerial(ests[i], k)
	})
	return mergeTopK(per, k)
}

// TopK on the live Sharded routes through the published snapshot like every
// other read, falling back to the locked sequential scan for stacks that
// cannot snapshot.
func (s *Sharded) TopK(k int) []Spreader {
	if v := s.Snapshot(); v != nil {
		return v.TopK(k)
	}
	return TopKSerial(s, k)
}

// mergeTopK merges per-shard top-k selections (each already in output
// order) into the global top k: concatenate the ≤ shards·k winners, sort
// with the same strict total order the per-shard heaps used, truncate to k.
func mergeTopK(per [][]Spreader, k int) []Spreader {
	total := 0
	for _, p := range per {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	all := make([]Spreader, 0, total)
	for _, p := range per {
		all = append(all, p...)
	}
	sortSpreaders(all)
	if len(all) > k {
		all = all[:k:k]
	}
	return all
}

// prepareFolds warms each shard view's window fold on the worker pool, so
// the serial in-order enumeration that follows (Users and RangeUsers call
// fn serially, shard by shard — that contract is kept) reads cached folds
// instead of folding generations one shard at a time on its own goroutine.
// Already-cached folds make this a near-free atomic check per shard;
// non-windowed shard views have no cross-generation fold to warm.
func (v *ShardedView) prepareFolds() {
	if !v.windowed {
		return
	}
	forEachShard(len(v.views), func(i int) {
		if w, ok := v.views[i].(*Windowed); ok {
			w.warmFold()
		}
	})
}

// FoldStats counts window fold-cache outcomes across an estimator stack:
// Computes is the number of cross-generation folds actually executed, Hits
// the number of analytics reads served from a cached fold. Inject one with
// WithFoldStats to scope the counts to a stack (the server does, and
// exports them on /metrics); windows built without the option report into
// a package-level default readable via DefaultFoldStats. All methods are
// safe for concurrent use.
type FoldStats struct {
	computes atomic.Uint64
	hits     atomic.Uint64
}

// Computes returns how many cross-generation folds were executed.
func (s *FoldStats) Computes() uint64 { return s.computes.Load() }

// Hits returns how many analytics reads were served from a cached fold.
func (s *FoldStats) Hits() uint64 { return s.hits.Load() }

// defaultFoldStats absorbs counts from stacks built without WithFoldStats.
var defaultFoldStats FoldStats

// DefaultFoldStats returns the package-level collector used by windows
// built without WithFoldStats.
func DefaultFoldStats() *FoldStats { return &defaultFoldStats }

// Interface conformance: both the live stack and its views answer TopK
// natively.
var (
	_ TopKer = (*Sharded)(nil)
	_ TopKer = (*ShardedView)(nil)
)
