package streamcard

// Tests for the generation-retirement hook: a monitor must be able to read
// each epoch's totals as the window ages it out instead of losing the
// history silently.

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestOnRetireFiresOncePerEviction: with k generations, the first k−1
// rotations only grow the ring; every rotation after that retires exactly
// the oldest generation, whose final state the hook observes.
func TestOnRetireFiresOncePerEviction(t *testing.T) {
	var retired []float64
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 16) },
		WithGenerations(3),
		WithOnRetire(func(g Estimator) { retired = append(retired, g.TotalDistinct()) }))

	// Epoch e gets exactly e+1 distinct pairs, so retired totals identify
	// which generation aged out.
	feedEpoch := func(e int) {
		for i := 0; i <= e; i++ {
			w.Observe(uint64(e+1), uint64(i))
		}
	}
	feedEpoch(0)
	w.Rotate() // ring grows to 2 — nothing retired
	feedEpoch(1)
	w.Rotate() // ring grows to 3 — nothing retired
	if len(retired) != 0 {
		t.Fatalf("retired %d generations before the ring was full", len(retired))
	}
	feedEpoch(2)
	w.Rotate() // evicts epoch 0's generation
	feedEpoch(3)
	w.Rotate() // evicts epoch 1's generation
	if len(retired) != 2 {
		t.Fatalf("retired %d generations, want 2", len(retired))
	}
	// FreeRS totals on a near-empty sketch are essentially exact: epoch 0
	// held 1 pair, epoch 1 held 2.
	if retired[0] < 0.5 || retired[0] > 1.5 {
		t.Fatalf("first retired total %v, want ~1", retired[0])
	}
	if retired[1] < 1.5 || retired[1] > 2.5 {
		t.Fatalf("second retired total %v, want ~2", retired[1])
	}
}

// TestOnRetireAutomaticBoundary: the hook fires on policy-driven rotations
// (here edge-count) just as on explicit ones.
func TestOnRetireAutomaticBoundary(t *testing.T) {
	var fired atomic.Uint64
	w := NewWindowed(func() Estimator { return NewFreeBS(1 << 16) },
		WithGenerations(2),
		WithRotateEveryEdges(100),
		WithOnRetire(func(Estimator) { fired.Add(1) }))
	for i := 0; i < 500; i++ {
		w.Observe(uint64(i%7), uint64(i))
	}
	// 500 edges / 100 per epoch = 5 rotations; the first grows the ring
	// (k=2), the remaining 4 retire.
	if got := fired.Load(); got != 4 {
		t.Fatalf("hook fired %d times, want 4 (epoch=%d)", got, w.Epoch())
	}
}

// TestOnRetireCloneInherits: a clone carries the hook, firing it on the
// clone's own rotations.
func TestOnRetireCloneInherits(t *testing.T) {
	var fired atomic.Uint64
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 16) },
		WithOnRetire(func(Estimator) { fired.Add(1) }))
	w.Observe(1, 1)
	w.Rotate() // grows ring to k=2, no retire
	c := w.Clone()
	c.Rotate() // clone's ring is full: retires
	if got := fired.Load(); got != 1 {
		t.Fatalf("hook fired %d times after clone rotation, want 1", got)
	}
}

// TestOnRetireRace hammers a hooked window with concurrent feeders and
// rotators; under -race this proves the hook runs under the ring lock with
// no unsynchronized access, and the eviction count stays exact:
// every rotation past the first k−1 retires exactly one generation.
func TestOnRetireRace(t *testing.T) {
	const (
		k         = 4
		feeders   = 4
		rotations = 64
		perFeeder = 20000
	)
	var retiredCount atomic.Uint64
	var retiredTotal atomic.Uint64 // float bits not needed; count pairs coarsely
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 16) },
		WithGenerations(k),
		WithOnRetire(func(g Estimator) {
			retiredCount.Add(1)
			retiredTotal.Add(uint64(g.TotalDistinct())) // reading the retired gen is safe
		}))

	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			base := uint64(f) << 40
			batch := make([]Edge, 0, 100)
			for i := 0; i < perFeeder; i++ {
				batch = append(batch, Edge{User: base | uint64(i%13), Item: uint64(i)})
				if len(batch) == cap(batch) {
					w.ObserveBatch(batch)
					batch = batch[:0]
				}
			}
			w.ObserveBatch(batch)
		}(f)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rotations; i++ {
			w.Rotate()
		}
	}()
	wg.Wait()

	if got, want := retiredCount.Load(), uint64(rotations-(k-1)); got != want {
		t.Fatalf("retired %d generations over %d rotations of a k=%d window, want %d",
			got, rotations, k, want)
	}
	_ = retiredTotal.Load() // the value is workload-dependent; the race-free read is the point
}
