package streamcard

// This file holds one benchmark per table and figure of the paper's
// evaluation section, plus ablation benches for the design choices called
// out in DESIGN.md §5. Each experiment bench runs the corresponding
// internal/experiments runner at a reduced scale and reports the headline
// quantities via b.ReportMetric, so `go test -bench=.` regenerates the
// paper's rows/series end to end; `cmd/cardbench` prints the full tables.

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/hashing"
)

// benchScale keeps each bench iteration around a second.
const benchScale = 0.002

func benchConfig() experiments.Config {
	return experiments.Config{Scale: benchScale, Seed: 1}
}

// BenchmarkTable1DatasetGen regenerates Table I (dataset synthesis +
// summary statistics) and reports the realized total cardinality of the
// first dataset.
func BenchmarkTable1DatasetGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].TotalCard), "totalcard")
	}
}

// BenchmarkFig2CCDF regenerates the cardinality CCDFs of Fig. 2 and reports
// the heavy-tail mass P(card >= 100) of the orkut analogue.
func BenchmarkFig2CCDF(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"orkut"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s := res.Series[0]
		for j, x := range s.X {
			if x >= 100 {
				b.ReportMetric(s.Y[j], "ccdf@100")
				break
			}
		}
	}
}

// BenchmarkFig3Update measures the paper's per-edge streaming cost (update
// + tracked-counter refresh) for each method at the paper's m = 1024 —
// the Fig. 3 series at its rightmost decade. FreeBS/FreeRS are O(1); the
// others pay O(m) per edge.
func BenchmarkFig3Update(b *testing.B) {
	const m = 1024
	const M = 1 << 23
	gen := datagen.Generate(datagen.Config{
		Name: "bench", Users: 20000, MaxCard: 1000, TotalCard: 100000,
		DuplicateRate: 0.15, Seed: 1,
	})
	edges := gen.Edges
	for _, name := range experiments.AllMethods {
		b.Run(name, func(b *testing.B) {
			spec := experiments.MethodSpec{
				MemoryBits: M, VirtualM: m,
				NumUsers: gen.NumUsers(), Seed: 1,
			}
			methods, err := experiments.Build(spec, []string{name})
			if err != nil {
				b.Fatal(err)
			}
			mt := methods[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i%len(edges)]
				mt.Observe(e.User, e.Item)
				_ = mt.TrackedEstimate(e.User)
			}
		})
	}
}

// BenchmarkFig4Scatter regenerates the estimated-vs-actual scatter of
// Fig. 4 on the orkut analogue and reports each run's FreeRS average
// relative error.
func BenchmarkFig4Scatter(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"orkut"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ARE[experiments.NameFreeRS], "freers-are")
		b.ReportMetric(res.ARE[experiments.NameVHLL], "vhll-are")
	}
}

// BenchmarkFig5RSE regenerates the RSE-vs-cardinality curves of Fig. 5, one
// sub-bench per dataset, reporting the small-cardinality RSE advantage of
// FreeBS over CSE (the up-to-10^4× claim of §V-E).
func BenchmarkFig5RSE(b *testing.B) {
	for _, ds := range datagen.DatasetNames {
		b.Run(ds, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Datasets = []string{ds}
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig5(cfg)
				if err != nil {
					b.Fatal(err)
				}
				curves := res.Curves[ds]
				fb := curves[experiments.NameFreeBS]
				cs := curves[experiments.NameCSE]
				if len(fb) > 0 && len(cs) > 0 && fb[0].RSE > 0 {
					b.ReportMetric(cs[0].RSE/fb[0].RSE, "cse/freebs-rse@small")
				}
			}
		})
	}
}

// BenchmarkFig6SpreaderTime regenerates the over-time super-spreader
// experiment of Fig. 6 (sanjose, 60 evaluation instants) and reports the
// final-minute FNR of FreeBS and vHLL.
func BenchmarkFig6SpreaderTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Minute == 60 {
				switch p.Method {
				case experiments.NameFreeBS:
					b.ReportMetric(p.FNR, "freebs-fnr@60")
				case experiments.NameVHLL:
					b.ReportMetric(p.FNR, "vhll-fnr@60")
				}
			}
		}
	}
}

// BenchmarkTable2Spreader regenerates Table II, one sub-bench per dataset,
// reporting FreeRS and vHLL FNR.
func BenchmarkTable2Spreader(b *testing.B) {
	for _, ds := range datagen.DatasetNames {
		b.Run(ds, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Datasets = []string{ds}
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunTable2(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range res.Rows {
					switch row.Method {
					case experiments.NameFreeRS:
						b.ReportMetric(row.FNR, "freers-fnr")
					case experiments.NameVHLL:
						b.ReportMetric(row.FNR, "vhll-fnr")
					}
				}
			}
		})
	}
}

// ---- ablation benches (DESIGN.md §5) ----

// BenchmarkAblationPostUpdateQ measures the bias introduced by the literal
// Algorithm-2 update order (crediting 1/q after updating q) versus the
// Theorem-2 order implemented by default. Reported metric: mean relative
// bias of each variant on a known-cardinality stream.
func BenchmarkAblationPostUpdateQ(b *testing.B) {
	const M, n, trials = 512, 2000, 40
	for i := 0; i < b.N; i++ {
		var sumPre, sumPost float64
		for tr := 0; tr < trials; tr++ {
			seed := uint64(i*trials+tr)*7919 + 1
			pre := core.NewFreeRS(M, seed)
			post := core.NewFreeRS(M, seed, core.WithPostUpdateQRS())
			for j := 0; j < n; j++ {
				pre.Observe(1, uint64(j))
				post.Observe(1, uint64(j))
			}
			sumPre += pre.Estimate(1)
			sumPost += post.Estimate(1)
		}
		b.ReportMetric(sumPre/trials/n-1, "pre-bias")
		b.ReportMetric(sumPost/trials/n-1, "post-bias")
	}
}

// BenchmarkAblationCrossover measures the §IV-C crossover between FreeBS
// (M bits) and FreeRS (M/5 registers) under equal memory: RSE of each for a
// user whose pairs arrive late in a long stream, past the theoretical
// crossover position.
func BenchmarkAblationCrossover(b *testing.B) {
	const mBits = 1 << 14
	cross := core.CrossoverPosition(mBits, 5)
	for i := 0; i < b.N; i++ {
		const trials = 30
		const nUser = 300
		var seBS, seRS float64
		for tr := 0; tr < trials; tr++ {
			seed := uint64(i*trials+tr)*104729 + 13
			fb := core.NewFreeBS(mBits, seed)
			fr := core.NewFreeRS(mBits/5, seed)
			rng := hashing.NewRNG(seed)
			// Background noise up to ~1.2x the crossover position, then the
			// late user arrives.
			noise := int(1.2 * cross)
			for j := 0; j < noise; j++ {
				u, d := uint64(rng.Intn(1000)+10), rng.Uint64()
				fb.Observe(u, d)
				fr.Observe(u, d)
			}
			for j := 0; j < nUser; j++ {
				fb.Observe(1, uint64(j))
				fr.Observe(1, uint64(j))
			}
			dbs := fb.Estimate(1) - nUser
			drs := fr.Estimate(1) - nUser
			seBS += dbs * dbs
			seRS += drs * drs
		}
		b.ReportMetric(math.Sqrt(seBS/trials)/nUser, "freebs-rse-late")
		b.ReportMetric(math.Sqrt(seRS/trials)/nUser, "freers-rse-late")
	}
}

// BenchmarkAblationRegisterWidth sweeps FreeRS register widths w ∈ {4,5}
// under equal total memory — the paper fixes w=5; w=4 trades range for
// more registers.
func BenchmarkAblationRegisterWidth(b *testing.B) {
	const memBits = 1 << 16
	for _, w := range []uint8{4, 5} {
		b.Run(string(rune('0'+w))+"bit", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				const trials = 20
				const n = 20000
				var se float64
				for tr := 0; tr < trials; tr++ {
					f := core.NewFreeRS(memBits/int(w), uint64(i*trials+tr)+1,
						core.WithRegisterWidth(w))
					for j := 0; j < n; j++ {
						f.Observe(1, uint64(j))
					}
					d := f.Estimate(1) - n
					se += d * d
				}
				b.ReportMetric(math.Sqrt(se/trials)/n, "rse")
			}
		})
	}
}

// BenchmarkTheoremVarianceBounds checks empirical variance against the
// Theorem 1/2 closed forms at bench scale and reports the ratio (should be
// <= 1 up to sampling noise).
func BenchmarkTheoremVarianceBounds(b *testing.B) {
	const M, nUser, nNoise, trials = 1 << 12, 200, 4000, 60
	for i := 0; i < b.N; i++ {
		var sum, sumsq float64
		for tr := 0; tr < trials; tr++ {
			f := core.NewFreeBS(M, uint64(i*trials+tr)*31+7)
			rng := hashing.NewRNG(uint64(tr) + 99)
			for j := 0; j < nUser; j++ {
				f.Observe(1, uint64(j))
				for k := 0; k < nNoise/nUser; k++ {
					f.Observe(2+uint64(rng.Intn(50)), rng.Uint64())
				}
			}
			e := f.Estimate(1)
			sum += e
			sumsq += e * e
		}
		mean := sum / trials
		empVar := sumsq/trials - mean*mean
		bound := core.FreeBSVarianceBound(nUser, nUser+nNoise, M)
		b.ReportMetric(empVar/bound, "var/bound")
	}
}

// BenchmarkExactTrackerBaseline reports the cost of exact tracking — the
// memory-infeasible baseline whose avoidance motivates the whole paper.
func BenchmarkExactTrackerBaseline(b *testing.B) {
	tr := exact.NewTracker()
	rng := hashing.NewRNG(1)
	users := make([]uint64, 8192)
	items := make([]uint64, 8192)
	for i := range users {
		users[i] = uint64(rng.Intn(50000))
		items[i] = rng.Uint64() % 100000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(users[i&8191], items[i&8191])
	}
}

// ---- batched ingestion benches ----

// benchBurstEdges builds a power-of-two-sized bursty stream: users emit runs
// of 1..24 consecutive edges (the arrival shape of real traces, and what the
// batch fast path amortizes over), drawn from a large user space.
func benchBurstEdges(n int, seed uint64) []Edge {
	rng := hashing.NewRNG(seed)
	edges := make([]Edge, 0, n)
	for len(edges) < n {
		u := uint64(rng.Intn(100000) + 1)
		run := rng.Intn(24) + 1
		for r := 0; r < run && len(edges) < n; r++ {
			edges = append(edges, Edge{User: u, Item: rng.Uint64()})
		}
	}
	return edges
}

// BenchmarkObserveBatch compares per-edge Observe against ObserveBatch for
// the headline methods on the same bursty workload. Both sub-benches are
// measured per edge, so ns/op is directly comparable: the batch win comes
// from hoisting the user half of the pair hash and the estimate-map access
// out of each run.
func BenchmarkObserveBatch(b *testing.B) {
	edges := benchBurstEdges(1<<16, 1)
	mask := len(edges) - 1
	builders := []struct {
		name string
		mk   func() Estimator
	}{
		{"FreeBS", func() Estimator { return NewFreeBS(1 << 22) }},
		{"FreeRS", func() Estimator { return NewFreeRS(1 << 22) }},
	}
	for _, bl := range builders {
		b.Run(bl.name+"/observe", func(b *testing.B) {
			est := bl.mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i&mask]
				est.Observe(e.User, e.Item)
			}
		})
		b.Run(bl.name+"/batch1k", func(b *testing.B) {
			est := bl.mk()
			const chunk = 1024
			b.ResetTimer()
			for i := 0; i < b.N; i += chunk {
				off := i & mask
				c := edges[off : off+chunk]
				if rem := b.N - i; rem < chunk {
					c = c[:rem]
				}
				est.ObserveBatch(c)
			}
		})
	}
}

// BenchmarkShardedBatch quantifies the tentpole claim on the concurrency
// layer: grouping a batch by shard and taking each shard's mutex once per
// batch must beat the per-edge Observe loop (lock per edge) on the same
// workload — sequentially and under contention from GOMAXPROCS goroutines.
// All variants are measured per edge.
func BenchmarkShardedBatch(b *testing.B) {
	edges := benchBurstEdges(1<<16, 2)
	mask := len(edges) - 1
	const chunk = 1024
	builders := []struct {
		name string
		mk   func() *Sharded
	}{
		{"FreeBS", func() *Sharded {
			return NewSharded(8, func(i int) Estimator {
				return NewFreeBS(1<<19, WithSeed(uint64(i)+1))
			})
		}},
		{"FreeRS", func() *Sharded {
			return NewSharded(8, func(i int) Estimator {
				return NewFreeRS(1<<19, WithSeed(uint64(i)+1))
			})
		}},
	}
	for _, bl := range builders {
		b.Run(bl.name+"/observe", func(b *testing.B) {
			s := bl.mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i&mask]
				s.Observe(e.User, e.Item)
			}
		})
		b.Run(bl.name+"/batch1k", func(b *testing.B) {
			s := bl.mk()
			b.ResetTimer()
			for i := 0; i < b.N; i += chunk {
				off := i & mask
				c := edges[off : off+chunk]
				if rem := b.N - i; rem < chunk {
					c = c[:rem]
				}
				s.ObserveBatch(c)
			}
		})
		b.Run(bl.name+"/parallel-observe", func(b *testing.B) {
			s := bl.mk()
			var next uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				off := int(atomic.AddUint64(&next, 9176)) & mask
				for pb.Next() {
					e := edges[off]
					s.Observe(e.User, e.Item)
					off = (off + 1) & mask
				}
			})
		})
		b.Run(bl.name+"/parallel-batch1k", func(b *testing.B) {
			s := bl.mk()
			var next uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				off := int(atomic.AddUint64(&next, uint64(11*chunk))) & mask
				pending := 0
				for pb.Next() {
					pending++
					if pending == chunk {
						s.ObserveBatch(edges[off : off+chunk])
						pending = 0
						off = (off + chunk) & mask
					}
				}
				if pending > 0 {
					s.ObserveBatch(edges[off : off+pending])
				}
			})
		})
	}
}

// ---- windowed benches ----

// BenchmarkWindowedObserve compares the windowed ingest path against the
// bare estimator on the same bursty workload, per edge and per 1k-edge
// batch, at k ∈ {2, 4} with edge-driven rotation. cmd/windowbench emits the
// same comparison as BENCH_window.json for CI's perf trajectory.
func BenchmarkWindowedObserve(b *testing.B) {
	edges := benchBurstEdges(1<<16, 4)
	mask := len(edges) - 1
	builders := []struct {
		name string
		mk   func() Estimator
	}{
		{"plain", func() Estimator { return NewFreeRS(1 << 22) }},
		{"k2", func() Estimator {
			return NewWindowed(func() Estimator { return NewFreeRS(1 << 22) },
				WithGenerations(2), WithRotateEveryEdges(1<<20))
		}},
		{"k4", func() Estimator {
			return NewWindowed(func() Estimator { return NewFreeRS(1 << 22) },
				WithGenerations(4), WithRotateEveryEdges(1<<18))
		}},
	}
	for _, bl := range builders {
		b.Run(bl.name+"/observe", func(b *testing.B) {
			est := bl.mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i&mask]
				est.Observe(e.User, e.Item)
			}
		})
		b.Run(bl.name+"/batch1k", func(b *testing.B) {
			est := bl.mk()
			const chunk = 1024
			b.ResetTimer()
			for i := 0; i < b.N; i += chunk {
				off := i & mask
				c := edges[off : off+chunk]
				if rem := b.N - i; rem < chunk {
					c = c[:rem]
				}
				est.ObserveBatch(c)
			}
		})
	}
}

// BenchmarkWindowedRotate measures one epoch boundary on a loaded window:
// allocate a fresh generation, age the ring, retire the oldest.
func BenchmarkWindowedRotate(b *testing.B) {
	edges := benchBurstEdges(1<<15, 5)
	w := NewWindowed(func() Estimator { return NewFreeRS(1 << 20) }, WithGenerations(4))
	w.ObserveBatch(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Rotate()
	}
}

// BenchmarkMerge measures combining two loaded sketches — the aggregation
// step a coordinator runs per reporting interval, not per edge.
func BenchmarkMerge(b *testing.B) {
	edges := benchBurstEdges(1<<16, 3)
	b.Run("FreeBS", func(b *testing.B) {
		a := NewFreeBS(1 << 20)
		o := NewFreeBS(1 << 20)
		a.ObserveBatch(edges[:1<<15])
		o.ObserveBatch(edges[1<<15:])
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := a.Clone()
			if err := c.Merge(o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FreeRS", func(b *testing.B) {
		a := NewFreeRS(1 << 20)
		o := NewFreeRS(1 << 20)
		a.ObserveBatch(edges[:1<<15])
		o.ObserveBatch(edges[1<<15:])
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := a.Clone()
			if err := c.Merge(o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFacadeObserve measures the public API's per-edge overhead for
// the two headline methods.
func BenchmarkFacadeObserve(b *testing.B) {
	for _, est := range []Estimator{NewFreeBS(1 << 22), NewFreeRS(1 << 22)} {
		b.Run(est.Name(), func(b *testing.B) {
			rng := hashing.NewRNG(1)
			users := make([]uint64, 8192)
			items := make([]uint64, 8192)
			for i := range users {
				users[i] = uint64(rng.Intn(100000))
				items[i] = rng.Uint64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est.Observe(users[i&8191], items[i&8191])
			}
		})
	}
}
