// Package core implements the paper's two contributions:
//
//   - FreeBS (§IV-A, Algorithm 1): parameter-free bit sharing. All users
//     share one bit array B of M bits; each user-item pair e = (s, d) is
//     hashed by h*(e) to a single bit. When that bit flips 0→1, user s's
//     running estimate is credited with 1/q_B, where q_B = m0/M is the
//     fraction of zero bits *before* the flip — the probability that a new
//     pair changes the array. This is a Horvitz–Thompson estimator over the
//     first-occurrence times of s's pairs, so it is unbiased (Theorem 1).
//
//   - FreeRS (§IV-B, Algorithm 2): parameter-free register sharing. All
//     users share M registers; each pair is hashed to a register index h*(e)
//     and a geometric rank ρ*(e). When the register grows, s is credited
//     with 1/q_R, where q_R = Σ_j 2^-R[j] / M is the probability that a new
//     pair changes some register (Theorem 2).
//
// Both process an edge in O(1): q_B is the maintained zero count over M, and
// q_R is the maintained exact scaled harmonic sum over M (see
// internal/regarray). Estimates are therefore available at any time t with
// no per-query work — the anytime property the paper contrasts with the
// O(m)-per-query CSE and vHLL.
//
// # Update-order ablation
//
// The paper's Algorithm 2 pseudocode updates q_R before crediting 1/q_R,
// while the Theorem 2 analysis conditions on the state *before* the edge
// (and Algorithm 1 uses the pre-update m0). The analysis order is the
// default here; WithPostUpdateQ switches to the literal pseudocode order so
// the (small, negative) bias it introduces can be measured.
//
// # Memory model
//
// Estimator state splits into the sketch proper and per-user bookkeeping:
//
//   - The sketch is the shared array (M bits / M registers), fixed at
//     construction; MemoryBits reports it, and it is the only memory the
//     paper's comparison budgets (§V-B grants every method one counter per
//     user on top).
//
//   - The per-user running estimates — the anytime property's cost, one
//     float64 per observed user — live in a flat open-addressing table
//     (internal/usertab; PerUserBytes reports its exact footprint): 16
//     bytes per slot in two pointer-free parallel slices, Robin Hood
//     probing at up to 31/32 occupancy, no tombstones because users are
//     never deleted individually (Reset discards wholesale). At 1M users
//     that is ~17 bytes/user resident versus ~37 for the
//     map[uint64]float64 it replaced (cmd/corebench measures both against
//     bit-identical work), with nothing for the garbage collector to
//     trace.
//
// The table also fixes enumeration semantics: Users (and the serialized
// estimate section, envelope version 2) is key-sorted — equal logical
// states yield equal bytes regardless of history — while RangeUsers is the
// unordered allocation-free scan the aggregation paths use.
package core
