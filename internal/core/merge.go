package core

import (
	"errors"
	"fmt"

	"repro/internal/usertab"
)

// Merging lets independently fed sketches — per-shard, per-node, per-epoch —
// be combined into one sketch of the union stream, the capability that turns
// a single-machine monitor into a fleet (each vantage point keeps its own
// FreeBS/FreeRS and a coordinator merges them on demand, the way time-series
// databases merge per-shard cardinality sketches for a database-wide count).
//
// Two layers of state merge differently:
//
//   - The shared array is a pure function of the SET of distinct pairs it has
//     absorbed (Set and UpdateMax are idempotent and order-free), so bitwise
//     OR / register-wise max reproduces, bit for bit, the array a single
//     sketch fed the union stream would hold. Everything derived from the
//     array alone — TotalDistinctLPC, TotalDistinctHLL, ChangeProbability,
//     Saturated — is therefore exact after a merge.
//
//   - The per-user running estimates are trajectory-dependent (each counted
//     pair was credited 1/q with q read at its own arrival instant), so they
//     are reconciled through the paper's update rule: other's credits are
//     re-issued as if its counted pairs had arrived after everything already
//     in the receiver. For FreeBS the re-crediting is exact in the rule's
//     own terms, because every counted pair decrements the zero count by
//     exactly one — the merged array pins down the credit of each additional
//     flip as M/m0 along the only possible trajectory. For FreeRS the q_R
//     trajectory between two register states is not recoverable, so the
//     re-crediting scale comes from the array-derived HLL totals instead.
//
// Merging requires identical construction (size, width, seeds, update-order
// option): sketches built with different seeds place the same pair at
// different cells and their union means nothing.

// ErrIncompatible is returned (wrapped) by Merge when the two sketches were
// not built with identical parameters, or when a sketch is merged into
// itself.
var ErrIncompatible = errors.New("sketches not mergeable")

// Clone returns a deep copy of f: mutating either sketch never affects the
// other. Non-destructive aggregation clones one shard and merges the rest in.
// The estimate table is copied cell for cell, layout included.
func (f *FreeBS) Clone() *FreeBS {
	return &FreeBS{
		bits:        f.bits.Clone(),
		seed:        f.seed,
		est:         f.est.Clone(),
		total:       f.total,
		edges:       f.edges,
		postUpdateQ: f.postUpdateQ,
	}
}

// Merge folds other into f so that f summarizes the union of both input
// streams. The shared bit array becomes the bitwise OR of the two arrays —
// bit-identical to the array of a single FreeBS fed both streams — and
// other's per-user estimates are re-credited through the paper's update rule
// (see the package comment above): if f held k_f set bits and the union holds
// k_u, other's users share credit Σ_{k=k_f+1}^{k_u} M/(M-k+1) in proportion
// to their standalone estimates. Overlap is thereby handled: pairs counted by
// both sketches set no new bits and add no new credit. other is not modified.
func (f *FreeBS) Merge(other *FreeBS) error {
	if other == nil {
		return fmt.Errorf("core: FreeBS.Merge(nil): %w", ErrIncompatible)
	}
	if other == f {
		return fmt.Errorf("core: FreeBS.Merge with itself: %w", ErrIncompatible)
	}
	if other.bits.Size() != f.bits.Size() {
		return fmt.Errorf("core: FreeBS sizes %d vs %d: %w", f.bits.Size(), other.bits.Size(), ErrIncompatible)
	}
	if other.seed != f.seed {
		return fmt.Errorf("core: FreeBS seeds differ: %w", ErrIncompatible)
	}
	if other.postUpdateQ != f.postUpdateQ {
		return fmt.Errorf("core: FreeBS update-order options differ: %w", ErrIncompatible)
	}
	kF := f.bits.OnesCount()
	kOther := other.bits.OnesCount()
	if err := f.bits.UnionWith(other.bits); err != nil {
		return err
	}
	kU := f.bits.OnesCount()
	f.edges += other.edges
	if kOther == 0 || other.est.Len() == 0 {
		return nil
	}
	scale := harmonicCredit(f.bits.Size(), kF, kU, f.postUpdateQ) /
		harmonicCredit(f.bits.Size(), 0, kOther, f.postUpdateQ)
	if scale > 0 {
		// A zero scale (full overlap: no new bits) must not touch the map at
		// all — `f.est[u] += 0` would create zero-valued entries, and the
		// est map's contract is "users with a nonzero estimate".
		f.reconcile(other.est, scale)
	}
	return nil
}

// harmonicCredit returns the total credit the update rule issues for flips
// number from+1 through to of an M-bit array. Flip number k happens against
// m0 = M-k+1 remaining zeros, so the default (Theorem-2) rule credits
// M/(M-k+1); the WithPostUpdateQ ablation divides by the post-flip zero
// count instead, crediting M/(M-k) with the same ≥1 clamp Observe applies —
// the reconciliation must mirror whichever rule issued the credits being
// rescaled, or merged totals drift off the union sketch's.
func harmonicCredit(m, from, to int, postUpdate bool) float64 {
	s := 0.0
	for k := from + 1; k <= to; k++ {
		q := m - k + 1
		if postUpdate {
			q--
			if q <= 0 {
				q = 1
			}
		}
		s += float64(m) / float64(q)
	}
	return s
}

// reconcile folds a scaled copy of other's per-user credits directly into
// f's estimate table — no intermediate map is rebuilt — keeping the
// TotalDistinct = Σ estimates invariant exact. Iteration is key-sorted, not
// layout-order: f.total accumulates in float, so the summation order must
// be a function of the logical state alone or merging a checkpoint-restored
// sketch (whose table layout is rebuilt key-sorted) would drift from
// merging its never-restored twin in the low bits — exactly the divergence
// the restore-lockstep contract forbids.
func (f *FreeBS) reconcile(est *usertab.Table, scale float64) {
	est.SortedRange(func(u uint64, e float64) {
		d := e * scale
		f.est.Add(u, d)
		f.total += d
	})
}

// Clone returns a deep copy of f; see FreeBS.Clone.
func (f *FreeRS) Clone() *FreeRS {
	return &FreeRS{
		regs:        f.regs.Clone(),
		seedIdx:     f.seedIdx,
		seedRank:    f.seedRank,
		est:         f.est.Clone(),
		total:       f.total,
		edges:       f.edges,
		postUpdateQ: f.postUpdateQ,
		width:       f.width,
	}
}

// Merge folds other into f so that f summarizes the union of both input
// streams. The shared register array becomes the register-wise max of the two
// arrays — bit-identical to the array of a single FreeRS fed both streams —
// and other's per-user estimates are re-credited as if its counted pairs had
// arrived after f's: the register-state trajectory between two FreeRS states
// is not recoverable (unlike FreeBS, where each flip steps the zero count by
// one), so the scale is the array-implied cardinality gain
// (HLL(union) - HLL(f)) / HLL(other), clamped to be non-negative. Overlap is
// handled the same way: shared pairs raise no registers and add no credit.
// other is not modified.
func (f *FreeRS) Merge(other *FreeRS) error {
	if other == nil {
		return fmt.Errorf("core: FreeRS.Merge(nil): %w", ErrIncompatible)
	}
	if other == f {
		return fmt.Errorf("core: FreeRS.Merge with itself: %w", ErrIncompatible)
	}
	if other.regs.Size() != f.regs.Size() || other.width != f.width {
		return fmt.Errorf("core: FreeRS layouts %d×w%d vs %d×w%d: %w",
			f.regs.Size(), f.width, other.regs.Size(), other.width, ErrIncompatible)
	}
	if other.seedIdx != f.seedIdx || other.seedRank != f.seedRank {
		return fmt.Errorf("core: FreeRS seeds differ: %w", ErrIncompatible)
	}
	if other.postUpdateQ != f.postUpdateQ {
		return fmt.Errorf("core: FreeRS update-order options differ: %w", ErrIncompatible)
	}
	tF := f.TotalDistinctHLL()
	tOther := other.TotalDistinctHLL()
	if err := f.regs.UnionWith(other.regs); err != nil {
		return err
	}
	tU := f.TotalDistinctHLL()
	f.edges += other.edges
	if other.est.Len() == 0 || tOther <= 0 {
		return nil
	}
	scale := (tU - tF) / tOther
	if scale <= 0 {
		// No array-implied gain (full overlap, or estimator noise on a
		// low-novelty merge): re-issue no credit, and in particular do not
		// seed zero-valued entries into the estimate table.
		return nil
	}
	// Key-sorted for the same reason as FreeBS.reconcile: the float order of
	// f.total's accumulation must not depend on the source table's layout.
	other.est.SortedRange(func(u uint64, e float64) {
		d := e * scale
		f.est.Add(u, d)
		f.total += d
	})
	return nil
}
