package core

import (
	"bytes"
	"testing"
)

// The determinism property behind the sorted envelope and the flat estimate
// table: the OBSERVABLE per-user state — Users enumeration and MarshalBinary
// bytes — is a pure function of the logical state, not of the path that
// produced it. Equal logical states reached through sequential ingestion,
// batching, Clone, Merge, or a checkpoint/restore round trip must enumerate
// identically (ascending user order) and serialize to identical bytes.

// marshalOf fails the test on error so call sites stay one line.
func marshalOf(t *testing.T, m interface{ MarshalBinary() ([]byte, error) }) []byte {
	t.Helper()
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// assertSortedUsers checks the Users enumeration contract: ascending user
// order, count consistent with NumUsers.
func assertSortedUsers(t *testing.T, name string, est interface {
	Users(func(uint64, float64))
	NumUsers() int
}) {
	t.Helper()
	prev := uint64(0)
	first := true
	n := 0
	est.Users(func(u uint64, _ float64) {
		if !first && u <= prev {
			t.Fatalf("%s: Users out of order: %d after %d", name, u, prev)
		}
		prev, first = u, false
		n++
	})
	if n != est.NumUsers() {
		t.Fatalf("%s: Users visited %d, NumUsers %d", name, n, est.NumUsers())
	}
}

func TestFreeBSDeterministicAcrossPaths(t *testing.T) {
	edges := burstEdges(30000, 400, 16, 5)
	build := func() *FreeBS { return NewFreeBS(1<<13, 11) }

	seq := build()
	for _, e := range edges {
		seq.Observe(e.User, e.Item)
	}
	assertSortedUsers(t, "sequential", seq)
	want := marshalOf(t, seq)

	// Batched ingestion: same bytes.
	bat := build()
	feedChunks(bat.ObserveBatch, edges)
	if !bytes.Equal(marshalOf(t, bat), want) {
		t.Fatal("batched twin serializes differently")
	}

	// Clone: same bytes, and still the same after both sides diverge-proof.
	if !bytes.Equal(marshalOf(t, seq.Clone()), want) {
		t.Fatal("clone serializes differently")
	}

	// Checkpoint/restore round trip: bit-identical re-serialization even
	// though the restored table's internal layout (sorted insertion) differs
	// from the organically grown one.
	restored, err := RestoreFreeBS(want)
	if err != nil {
		t.Fatal(err)
	}
	assertSortedUsers(t, "restored", restored)
	if !bytes.Equal(marshalOf(t, restored), want) {
		t.Fatal("restore round trip changed the serialization")
	}

	// Merge: merging B into a clone of A is reproducible — repeat the same
	// merge from fresh clones and the serialized result is identical, and
	// the merged enumeration stays sorted.
	a, b := build(), build()
	a.ObserveBatch(edges[:15000])
	b.ObserveBatch(edges[15000:])
	m1 := a.Clone()
	if err := m1.Merge(b); err != nil {
		t.Fatal(err)
	}
	m2 := a.Clone()
	if err := m2.Merge(b.Clone()); err != nil {
		t.Fatal(err)
	}
	assertSortedUsers(t, "merged", m1)
	if !bytes.Equal(marshalOf(t, m1), marshalOf(t, m2)) {
		t.Fatal("repeating the same merge serializes differently")
	}
	// Merging a RESTORED source must serialize identically too: the
	// restored table's internal layout differs (key-sorted reinsertion),
	// but reconcile iterates key-sorted, so even the float order of the
	// total's accumulation is layout-independent.
	br, err := RestoreFreeBS(marshalOf(t, b))
	if err != nil {
		t.Fatal(err)
	}
	m3 := a.Clone()
	if err := m3.Merge(br); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalOf(t, m3), marshalOf(t, m1)) {
		t.Fatal("merge of a restored source serializes differently from merge of the original")
	}
}

func TestFreeRSDeterministicAcrossPaths(t *testing.T) {
	edges := burstEdges(30000, 400, 16, 6)
	build := func() *FreeRS { return NewFreeRS(1<<11, 13) }

	seq := build()
	for _, e := range edges {
		seq.Observe(e.User, e.Item)
	}
	assertSortedUsers(t, "sequential", seq)
	want := marshalOf(t, seq)

	bat := build()
	feedChunks(bat.ObserveBatch, edges)
	if !bytes.Equal(marshalOf(t, bat), want) {
		t.Fatal("batched twin serializes differently")
	}
	if !bytes.Equal(marshalOf(t, seq.Clone()), want) {
		t.Fatal("clone serializes differently")
	}
	restored, err := RestoreFreeRS(want)
	if err != nil {
		t.Fatal(err)
	}
	assertSortedUsers(t, "restored", restored)
	if !bytes.Equal(marshalOf(t, restored), want) {
		t.Fatal("restore round trip changed the serialization")
	}

	a, b := build(), build()
	a.ObserveBatch(edges[:15000])
	b.ObserveBatch(edges[15000:])
	m1 := a.Clone()
	if err := m1.Merge(b); err != nil {
		t.Fatal(err)
	}
	m2 := a.Clone()
	if err := m2.Merge(b.Clone()); err != nil {
		t.Fatal(err)
	}
	assertSortedUsers(t, "merged", m1)
	if !bytes.Equal(marshalOf(t, m1), marshalOf(t, m2)) {
		t.Fatal("repeating the same merge serializes differently")
	}
	br, err := RestoreFreeRS(marshalOf(t, b))
	if err != nil {
		t.Fatal(err)
	}
	m3 := a.Clone()
	if err := m3.Merge(br); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalOf(t, m3), marshalOf(t, m1)) {
		t.Fatal("merge of a restored source serializes differently from merge of the original")
	}
}
