package core

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// The merge property: for random streams A and B, Merge(sketch(A), sketch(B))
// must equal sketch(A then B) — a single sketch fed both streams — exactly
// where exactness is possible at all:
//
//   - the shared array (the sketch proper) must match BIT FOR BIT, serialized
//     and compared, because Set/UpdateMax make array state a pure function of
//     the distinct-pair set;
//   - every array-derived statistic (zero counts, LPC/HLL totals, change
//     probability) must therefore be float-identical;
//   - the edge counter must match;
//   - the trajectory-dependent per-user credits are reconciled, not replayed
//     (the union sketch credited B's flips against a fuller array), so the
//     totals must agree to reconciliation accuracy: ~1e-12 relative for
//     FreeBS, whose re-crediting is exact in the update rule's own terms,
//     and estimator-level accuracy for FreeRS.
//
// Swept across memory sizes and seeds per the hardening checklist.

func randStreams(seed uint64, nA, nB, users int) (a, b []Edge) {
	a = burstEdges(nA, users, 16, seed*2+1)
	b = burstEdges(nB, users, 16, seed*2+2)
	return a, b
}

func TestMergePropertyFreeBS(t *testing.T) {
	for _, m := range []int{64, 1 << 9, 1 << 13} {
		for seed := uint64(1); seed <= 4; seed++ {
			nA := 40 * int(seed)
			nB := 30*int(seed) + 25
			if m >= 1<<13 {
				nA, nB = nA*40, nB*40
			}
			a, b := randStreams(seed, nA, nB, 60)

			fa := NewFreeBS(m, seed)
			fa.ObserveBatch(a)
			fb := NewFreeBS(m, seed)
			fb.ObserveBatch(b)
			union := NewFreeBS(m, seed)
			for _, e := range a {
				union.Observe(e.User, e.Item)
			}
			for _, e := range b {
				union.Observe(e.User, e.Item)
			}

			if err := fa.Merge(fb); err != nil {
				t.Fatalf("M=%d seed=%d: %v", m, seed, err)
			}

			gotArr, _ := fa.bits.MarshalBinary()
			wantArr, _ := union.bits.MarshalBinary()
			if !bytes.Equal(gotArr, wantArr) {
				t.Fatalf("M=%d seed=%d: merged bit array not bit-identical to union sketch", m, seed)
			}
			if fa.edges != union.edges {
				t.Fatalf("M=%d seed=%d: edges %d vs %d", m, seed, fa.edges, union.edges)
			}
			if fa.TotalDistinctLPC() != union.TotalDistinctLPC() {
				t.Fatalf("M=%d seed=%d: LPC totals differ on identical arrays", m, seed)
			}
			if fa.ChangeProbability() != union.ChangeProbability() {
				t.Fatalf("M=%d seed=%d: change probabilities differ", m, seed)
			}
			// FreeBS re-crediting is exact in the update rule's own terms:
			// the merged HT total must equal the union sketch's up to float
			// summation order.
			if rel := math.Abs(fa.TotalDistinct()-union.TotalDistinct()) /
				math.Max(union.TotalDistinct(), 1); rel > 1e-9 {
				t.Fatalf("M=%d seed=%d: HT totals diverge: merged %v union %v (rel %v)",
					m, seed, fa.TotalDistinct(), union.TotalDistinct(), rel)
			}
			// Per-user credits are reconciled proportionally, not replayed;
			// they must stay non-negative, finite, and sum to the total.
			sum := 0.0
			fa.Users(func(_ uint64, e float64) {
				if e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
					t.Fatalf("M=%d seed=%d: bad reconciled estimate %v", m, seed, e)
				}
				sum += e
			})
			if rel := math.Abs(sum-fa.total) / math.Max(fa.total, 1); rel > 1e-9 {
				t.Fatalf("M=%d seed=%d: Σ estimates %v != total %v", m, seed, sum, fa.total)
			}
		}
	}
}

func TestMergePropertyFreeRS(t *testing.T) {
	for _, m := range []int{32, 1 << 8, 1 << 12} {
		for seed := uint64(1); seed <= 4; seed++ {
			nA := 60*int(seed) + 40
			nB := 45*int(seed) + 30
			if m >= 1<<12 {
				nA, nB = nA*30, nB*30
			}
			a, b := randStreams(seed+100, nA, nB, 60)

			fa := NewFreeRS(m, seed)
			fa.ObserveBatch(a)
			fb := NewFreeRS(m, seed)
			fb.ObserveBatch(b)
			union := NewFreeRS(m, seed)
			for _, e := range a {
				union.Observe(e.User, e.Item)
			}
			for _, e := range b {
				union.Observe(e.User, e.Item)
			}

			if err := fa.Merge(fb); err != nil {
				t.Fatalf("M=%d seed=%d: %v", m, seed, err)
			}

			gotArr, _ := fa.regs.MarshalBinary()
			wantArr, _ := union.regs.MarshalBinary()
			if !bytes.Equal(gotArr, wantArr) {
				t.Fatalf("M=%d seed=%d: merged register array not bit-identical to union sketch", m, seed)
			}
			if fa.edges != union.edges {
				t.Fatalf("M=%d seed=%d: edges %d vs %d", m, seed, fa.edges, union.edges)
			}
			if fa.TotalDistinctHLL() != union.TotalDistinctHLL() {
				t.Fatalf("M=%d seed=%d: HLL totals differ on identical arrays", m, seed)
			}
			if err := fa.regs.Audit(); err != nil {
				t.Fatalf("M=%d seed=%d: merge corrupted maintained statistics: %v", m, seed, err)
			}
			// The HT totals agree to estimator accuracy (the re-crediting
			// scale is itself HLL-estimated; RSE ~ 1.04/√M per term).
			tol := 6 * 1.04 / math.Sqrt(float64(m))
			if rel := math.Abs(fa.TotalDistinct()-union.TotalDistinct()) /
				math.Max(union.TotalDistinct(), 1); rel > tol {
				t.Fatalf("M=%d seed=%d: HT totals diverge: merged %v union %v (rel %v > %v)",
					m, seed, fa.TotalDistinct(), union.TotalDistinct(), rel, tol)
			}
			sum := 0.0
			fa.Users(func(_ uint64, e float64) {
				if e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
					t.Fatalf("M=%d seed=%d: bad reconciled estimate %v", m, seed, e)
				}
				sum += e
			})
			if rel := math.Abs(sum-fa.total) / math.Max(fa.total, 1); rel > 1e-9 {
				t.Fatalf("M=%d seed=%d: Σ estimates %v != total %v", m, seed, sum, fa.total)
			}
		}
	}
}

// TestMergeDisjointOverlapExtremes pins the two boundary behaviours: fully
// disjoint streams merge to the sum of information, and merging a sketch
// with a copy of an identical stream adds nothing (the array is unchanged,
// so no credit is re-issued).
func TestMergeDisjointOverlapExtremes(t *testing.T) {
	const m = 1 << 12
	a, _ := randStreams(7, 3000, 0, 40)

	// Identical-stream merge: array unchanged ⇒ zero additional credit.
	fa := NewFreeBS(m, 3)
	fa.ObserveBatch(a)
	fb := NewFreeBS(m, 3)
	fb.ObserveBatch(a)
	before := fa.TotalDistinct()
	if err := fa.Merge(fb); err != nil {
		t.Fatal(err)
	}
	if fa.TotalDistinct() != before {
		t.Fatalf("identical-stream merge changed total: %v -> %v", before, fa.TotalDistinct())
	}

	ra := NewFreeRS(m/5, 3)
	ra.ObserveBatch(a)
	rb := NewFreeRS(m/5, 3)
	rb.ObserveBatch(a)
	beforeRS := ra.TotalDistinct()
	if err := ra.Merge(rb); err != nil {
		t.Fatal(err)
	}
	if ra.TotalDistinct() != beforeRS {
		t.Fatalf("identical-stream FreeRS merge changed total: %v -> %v", beforeRS, ra.TotalDistinct())
	}

	// Zero-scale merges must not plant zero-valued entries in the estimate
	// map: the est contract is "users with a nonzero estimate", and phantom
	// users would inflate NumUsers, Users enumeration, and serialized size.
	// A saturated receiver guarantees the union adds no bits (scale 0).
	cov := NewFreeBS(64, 3)
	for d := uint64(0); d < 5000; d++ {
		cov.Observe(1, d)
	}
	if !cov.Saturated() {
		t.Fatal("receiver not saturated; phantom-user scenario not reached")
	}
	beforeUsers := cov.NumUsers()
	sub := NewFreeBS(64, 3)
	sub.Observe(424242, 1) // a user cov never saw; its bit is already set in cov
	if err := cov.Merge(sub); err != nil {
		t.Fatal(err)
	}
	if cov.NumUsers() != beforeUsers {
		t.Fatalf("zero-scale merge changed NumUsers %d -> %d", beforeUsers, cov.NumUsers())
	}
	cov.Users(func(u uint64, e float64) {
		if e == 0 {
			t.Fatalf("zero-scale merge planted zero-estimate user %d", u)
		}
	})

	// Merging into an empty sketch with no overlap reproduces the source's
	// estimates exactly (scale is 1 when nothing precedes the re-credit).
	empty := NewFreeBS(m, 3)
	src := NewFreeBS(m, 3)
	src.ObserveBatch(a)
	if err := empty.Merge(src); err != nil {
		t.Fatal(err)
	}
	// Totals agree up to summation order (the merge accumulates per user in
	// map order, the source accumulated per flip in stream order).
	if rel := math.Abs(empty.TotalDistinct()-src.TotalDistinct()) /
		src.TotalDistinct(); rel > 1e-12 {
		t.Fatalf("merge into empty: total %v != source %v", empty.TotalDistinct(), src.TotalDistinct())
	}
	src.Users(func(u uint64, e float64) {
		if got := empty.Estimate(u); got != e {
			t.Fatalf("merge into empty: user %d estimate %v != %v", u, got, e)
		}
	})
}

// TestMergeIncompatible: every parameter mismatch, nil, and self-merge must
// be rejected with ErrIncompatible and leave the receiver untouched.
func TestMergeIncompatible(t *testing.T) {
	f := NewFreeBS(256, 1)
	f.Observe(1, 2)
	wantTotal := f.TotalDistinct()
	cases := []*FreeBS{
		nil,
		f,
		NewFreeBS(512, 1),
		NewFreeBS(256, 2),
		NewFreeBS(256, 1, WithPostUpdateQ()),
	}
	for i, other := range cases {
		if err := f.Merge(other); !errors.Is(err, ErrIncompatible) {
			t.Fatalf("FreeBS case %d: want ErrIncompatible, got %v", i, err)
		}
		if f.TotalDistinct() != wantTotal {
			t.Fatalf("FreeBS case %d: failed merge mutated receiver", i)
		}
	}

	r := NewFreeRS(64, 1)
	r.Observe(1, 2)
	wantTotalRS := r.TotalDistinct()
	casesRS := []*FreeRS{
		nil,
		r,
		NewFreeRS(128, 1),
		NewFreeRS(64, 2),
		NewFreeRS(64, 1, WithPostUpdateQRS()),
		NewFreeRS(64, 1, WithRegisterWidth(4)),
	}
	for i, other := range casesRS {
		if err := r.Merge(other); !errors.Is(err, ErrIncompatible) {
			t.Fatalf("FreeRS case %d: want ErrIncompatible, got %v", i, err)
		}
		if r.TotalDistinct() != wantTotalRS {
			t.Fatalf("FreeRS case %d: failed merge mutated receiver", i)
		}
	}
}

// TestClone: clones are deep — divergent writes stay private — and
// marshal-equivalent at the moment of cloning.
func TestClone(t *testing.T) {
	f := NewFreeBS(512, 5)
	f.ObserveBatch(burstEdges(500, 20, 8, 1))
	c := f.Clone()
	if c.TotalDistinct() != f.TotalDistinct() || c.EdgesProcessed() != f.EdgesProcessed() {
		t.Fatal("FreeBS clone differs")
	}
	c.Observe(999, 1)
	if f.Estimate(999) != 0 {
		t.Fatal("FreeBS clone shares state with original")
	}

	r := NewFreeRS(128, 5)
	r.ObserveBatch(burstEdges(500, 20, 8, 2))
	rc := r.Clone()
	if rc.TotalDistinct() != r.TotalDistinct() {
		t.Fatal("FreeRS clone differs")
	}
	rc.Observe(999, 1)
	if r.Estimate(999) != 0 {
		t.Fatal("FreeRS clone shares state with original")
	}
	if err := rc.regs.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestHarmonicCredit pins the credit function against its definition and the
// telescoping identity H(0,a) + H(a,b) = H(0,b).
func TestHarmonicCredit(t *testing.T) {
	const m = 100
	direct := 0.0
	for k := 1; k <= 30; k++ {
		direct += float64(m) / float64(m-k+1)
	}
	if got := harmonicCredit(m, 0, 30, false); math.Abs(got-direct) > 1e-12 {
		t.Fatalf("harmonicCredit(100,0,30) = %v, want %v", got, direct)
	}
	if got := harmonicCredit(m, 10, 10, false); got != 0 {
		t.Fatalf("empty range credit = %v, want 0", got)
	}
	lhs := harmonicCredit(m, 0, 12, false) + harmonicCredit(m, 12, 40, false)
	rhs := harmonicCredit(m, 0, 40, false)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("telescoping broken: %v vs %v", lhs, rhs)
	}
	// Saturation endpoint: the M-th flip is credited against one zero.
	last := harmonicCredit(m, m-1, m, false)
	if last != float64(m) {
		t.Fatalf("final flip credit = %v, want %v", last, float64(m))
	}
	// Post-update rule: flip k divides by M-k, clamped to 1 at saturation.
	if got := harmonicCredit(m, 0, 1, true); got != float64(m)/float64(m-1) {
		t.Fatalf("post-update first flip credit = %v, want %v", got, float64(m)/float64(m-1))
	}
	if got := harmonicCredit(m, m-1, m, true); got != float64(m) {
		t.Fatalf("post-update final flip credit = %v, want %v (clamped)", got, float64(m))
	}
}

// TestMergeFreeBSPostUpdateQ pins the reconciliation formula for the
// WithPostUpdateQ ablation: the merged total must match a union sketch built
// with the same option exactly, because total credit is a function of the
// flip count alone — under the post-update rule that is Σ M/(M-k), not the
// default Σ M/(M-k+1).
func TestMergeFreeBSPostUpdateQ(t *testing.T) {
	const m = 64
	a := NewFreeBS(m, 5, WithPostUpdateQ())
	b := NewFreeBS(m, 5, WithPostUpdateQ())
	union := NewFreeBS(m, 5, WithPostUpdateQ())
	for _, e := range burstEdges(400, 30, 8, 1) {
		a.Observe(e.User, e.Item)
		union.Observe(e.User, e.Item)
	}
	for _, e := range burstEdges(400, 30, 8, 2) {
		b.Observe(e.User, e.Item)
		union.Observe(e.User, e.Item)
	}
	merged := a.Clone()
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, want := merged.TotalDistinct(), union.TotalDistinct()
	if rel := (got - want) / want; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("post-update-q merged total %v vs union %v (rel %.2e)", got, want, rel)
	}
}
