package core

import "math"

// This file implements the closed-form error analysis of Theorems 1 and 2,
// used by the statistical tests (to set tolerance bands from predicted
// variance) and by the §IV-C crossover analysis between FreeBS and FreeRS.

// ExpectedInvQB approximates E(1/q_B^(i)) after n distinct pairs have been
// recorded into an M-bit FreeBS array (Theorem 1):
//
//	E(1/q_B) ≈ e^{n/M} · (1 + (e^{n/M} - n/M - 1)/M)
func ExpectedInvQB(n float64, M int) float64 {
	x := n / float64(M)
	return math.Exp(x) * (1 + (math.Exp(x)-x-1)/float64(M))
}

// ExpectedInvQR approximates E(1/q_R^(i)) after n distinct pairs have been
// recorded into an M-register FreeRS array (Theorem 2). The paper gives
// E(1/q_R) ≈ n/(α_M·M) ≈ 1.386·n/M for n > 2.5M; below that the register
// array behaves like a bitmap, E(1/q_R) ≈ e^{n/M}.
func ExpectedInvQR(n float64, M int) float64 {
	if n > 2.5*float64(M) {
		alphaM := 0.7213 / (1 + 1.079/float64(M))
		return n / (alphaM * float64(M))
	}
	return math.Exp(n / float64(M))
}

// FreeBSVarianceBound returns the Theorem 1 upper bound on Var(n̂_s) for a
// user with true cardinality ns when n distinct pairs total have been
// recorded: Var ≤ ns·(E(1/q_B^(t)) - 1).
func FreeBSVarianceBound(ns, n float64, M int) float64 {
	return ns * (ExpectedInvQB(n, M) - 1)
}

// FreeRSVarianceBound returns the Theorem 2 upper bound on Var(n̂_s):
// Var ≤ ns·(E(1/q_R^(t)) - 1).
func FreeRSVarianceBound(ns, n float64, M int) float64 {
	return ns * (ExpectedInvQR(n, M) - 1)
}

// CrossoverPosition returns the stream position (in distinct pairs) beyond
// which FreeRS with mBits/w registers has smaller per-increment variance
// than FreeBS with mBits bits — the §IV-C comparison under equal memory.
// It solves e^x = 1.386·w·x for x = n/mBits (the larger root: where
// E(1/q_B) ≈ e^{n/M} overtakes E(1/q_R) ≈ 1.386·w·n/M) and returns
// x·mBits. The paper quotes the cruder x ≈ 0.772·w for the same crossover;
// the exact root is reported so the ablation bench can test both.
func CrossoverPosition(mBits int, w uint8) float64 {
	target := 1.386 * float64(w)
	lo, hi := 1.0, 100.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if math.Exp(mid) > target*mid {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo * float64(mBits)
}
