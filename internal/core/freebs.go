package core

import (
	"math"

	"repro/internal/bitarray"
	"repro/internal/hashing"
	"repro/internal/usertab"
)

// FreeBS is the parameter-free bit-sharing estimator of §IV-A.
// The zero value is not usable; call NewFreeBS.
type FreeBS struct {
	bits        *bitarray.BitArray
	seed        uint64
	est         *usertab.Table
	total       float64
	edges       uint64 // edges processed (including duplicates)
	postUpdateQ bool
}

// FreeBSOption configures a FreeBS.
type FreeBSOption func(*FreeBS)

// WithPostUpdateQ makes FreeBS divide by the post-flip zero fraction
// (m0-1)/M instead of the pre-flip m0/M, mirroring the literal reading of
// the paper's Algorithm 2 ordering. Ablation only: the post-update q is
// smaller, so every increment is larger and the estimator acquires an
// upward bias of relative order 1/m0 per counted pair.
func WithPostUpdateQ() FreeBSOption { return func(f *FreeBS) { f.postUpdateQ = true } }

// NewFreeBS returns a FreeBS sharing an array of mBits bits among all users.
// mBits (the paper's M) is the only parameter, and it is just the memory
// budget — there is no per-user m to tune. It panics if mBits <= 0.
func NewFreeBS(mBits int, seed uint64, opts ...FreeBSOption) *FreeBS {
	f := &FreeBS{
		bits: bitarray.New(mBits),
		seed: hashing.Mix64(seed ^ 0x6a09e667f3bcc908),
		est:  usertab.New(),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// M returns the shared array size in bits.
func (f *FreeBS) M() int { return f.bits.Size() }

// MemoryBits returns the fixed sketch memory in bits (the per-user estimate
// counters are excluded, matching the paper's accounting in §V-B, which
// grants every compared method one counter per user).
func (f *FreeBS) MemoryBits() int64 { return int64(f.bits.Size()) }

// ChangeProbability returns q_B = m0/M, the probability that the next new
// pair flips a bit. O(1).
func (f *FreeBS) ChangeProbability() float64 { return f.bits.ZeroFraction() }

// Observe processes edge (user, item) in O(1) and reports whether it flipped
// a bit (i.e. was treated as a new pair).
func (f *FreeBS) Observe(user, item uint64) bool {
	f.edges++
	idx := hashing.UniformIndex(hashing.HashPair(user, item, f.seed), f.bits.Size())
	m0 := f.bits.ZeroCount() // zero count before the update: q_B^(t)
	if !f.bits.Set(idx) {
		return false
	}
	q := m0
	if f.postUpdateQ {
		q = m0 - 1
		if q <= 0 {
			q = 1
		}
	}
	inc := float64(f.bits.Size()) / float64(q)
	f.est.Add(user, inc)
	f.total += inc
	return true
}

// Estimate returns the anytime cardinality estimate n̂_s for user (0 if the
// user has produced no bit flips). O(1).
func (f *FreeBS) Estimate(user uint64) float64 { return f.est.Get(user) }

// TotalDistinct returns Σ_s n̂_s, the Horvitz–Thompson estimate of the total
// number of distinct pairs n^(t). It equals the sum of per-user estimates by
// construction.
func (f *FreeBS) TotalDistinct() float64 { return f.total }

// TotalDistinctLPC returns the independent linear-counting estimate
// -M·ln(m0/M) of n^(t) from the global array state. It has far lower
// variance than TotalDistinct for loaded arrays and is what the
// super-spreader detector uses for its threshold.
func (f *FreeBS) TotalDistinctLPC() float64 {
	m0 := f.bits.ZeroCount()
	bigM := f.bits.Size()
	if m0 == 0 {
		return float64(bigM) * math.Log(float64(bigM))
	}
	return -float64(bigM) * math.Log(float64(m0)/float64(bigM))
}

// MaxEstimate returns M·ln M ≈ Σ_{i=1..M} M/i, the estimation range of
// FreeBS (§IV-C): beyond this the shared array saturates.
func (f *FreeBS) MaxEstimate() float64 {
	m := float64(f.bits.Size())
	return m * math.Log(m)
}

// Saturated reports whether every bit is set (no further pairs can be
// counted).
func (f *FreeBS) Saturated() bool { return f.bits.ZeroCount() == 0 }

// EdgesProcessed returns the number of Observe calls (duplicates included).
func (f *FreeBS) EdgesProcessed() uint64 { return f.edges }

// NumUsers returns the number of users with a nonzero estimate. O(1).
func (f *FreeBS) NumUsers() int { return f.est.Len() }

// Users calls fn for every user with a nonzero estimate, in ascending user
// order — deterministic for equal logical states no matter how they were
// reached (ingested, merged, cloned, or restored). Sorting costs
// O(users log users) and one key-slice allocation; order-insensitive
// consumers use RangeUsers.
func (f *FreeBS) Users(fn func(user uint64, estimate float64)) {
	f.est.SortedRange(fn)
}

// RangeUsers calls fn for every user with a nonzero estimate in the
// estimate table's layout order: allocation-free and O(users), but the
// order, while deterministic for a given history, is not sorted and not
// preserved across checkpoint/restore. The fan-in paths (top-k, windowed
// sums, shard aggregation) use this.
func (f *FreeBS) RangeUsers(fn func(user uint64, estimate float64)) {
	f.est.Range(fn)
}

// PerUserBytes returns the exact memory held by the per-user estimate
// table, in bytes — the bookkeeping the paper's accounting grants every
// method (§V-B) but which this implementation also engineers flat; see
// internal/usertab.
func (f *FreeBS) PerUserBytes() int64 { return f.est.MemoryBytes() }

// Reset clears the sketch and all estimates.
func (f *FreeBS) Reset() {
	f.bits.Reset()
	f.est.Reset()
	f.total = 0
	f.edges = 0
}
