package core

import (
	"repro/internal/hashing"
	"repro/internal/stream"
)

// Edge is the user-item pair type shared by all batch ingestion paths. It is
// an alias of stream.Edge so workload generators, the stream codec, and the
// sketches exchange slices without conversion or copying.
type Edge = stream.Edge

// ObserveBatch processes edges exactly as a sequence of Observe calls would —
// per-user estimates, totals, and the shared array end bit-identical — while
// amortizing per-edge overhead over runs of consecutive edges that share a
// user (the shape bursty network traces have):
//
//   - the user half of the pair hash is computed once per run, not per edge
//     (hashing.HashPairPrefix);
//   - the user's running estimate cell is located in the table once per run
//     (usertab.Ref), accumulated in a register, and written back through the
//     same pointer — no second probe. Only a run that credits a previously
//     unseen user pays an insertion.
//
// The within-batch edge order is preserved, which matters: each flip's credit
// M/m0 depends on the zero count at that moment.
func (f *FreeBS) ObserveBatch(edges []Edge) {
	if len(edges) == 0 {
		return
	}
	f.edges += uint64(len(edges))
	size := f.bits.Size()
	stream.ForEachRun(edges, func(user uint64, run []Edge) {
		prefix := hashing.HashPairPrefix(user)
		// No table mutations happen between Ref and the write-back below
		// (other users' cells are untouched during this run), so the cell
		// pointer cannot be invalidated by growth.
		ref := f.est.Ref(user)
		e := 0.0
		if ref != nil {
			e = *ref
		}
		credited := false
		for _, ed := range run {
			idx := hashing.UniformIndex(hashing.HashPairFinish(prefix, ed.Item, f.seed), size)
			m0 := f.bits.ZeroCount()
			if !f.bits.Set(idx) {
				continue
			}
			q := m0
			if f.postUpdateQ {
				q = m0 - 1
				if q <= 0 {
					q = 1
				}
			}
			inc := float64(size) / float64(q)
			e += inc
			f.total += inc
			credited = true
		}
		if credited {
			if ref != nil {
				*ref = e
			} else {
				f.est.Add(user, e)
			}
		}
	})
}

// ObserveBatch processes edges exactly as a sequence of Observe calls would;
// see FreeBS.ObserveBatch for the hoisting scheme. The single user-hash
// prefix feeds both the index hash and the rank hash (they differ only in
// the seed folded in by HashPairFinish).
func (f *FreeRS) ObserveBatch(edges []Edge) {
	if len(edges) == 0 {
		return
	}
	f.edges += uint64(len(edges))
	size := f.regs.Size()
	maxVal := f.regs.MaxValue()
	stream.ForEachRun(edges, func(user uint64, run []Edge) {
		prefix := hashing.HashPairPrefix(user)
		ref := f.est.Ref(user) // see FreeBS.ObserveBatch for pointer validity
		e := 0.0
		if ref != nil {
			e = *ref
		}
		credited := false
		for _, ed := range run {
			idx := hashing.UniformIndex(hashing.HashPairFinish(prefix, ed.Item, f.seedIdx), size)
			rank := hashing.Rho(hashing.HashPairFinish(prefix, ed.Item, f.seedRank), maxVal)
			q := f.regs.ChangeProbability()
			if _, changed := f.regs.UpdateMax(idx, rank); !changed {
				continue
			}
			if f.postUpdateQ {
				q = f.regs.ChangeProbability()
			}
			inc := 1 / q
			e += inc
			f.total += inc
			credited = true
		}
		if credited {
			if ref != nil {
				*ref = e
			} else {
				f.est.Add(user, e)
			}
		}
	})
}
