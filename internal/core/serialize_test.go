package core

import (
	"bytes"
	"testing"

	"repro/internal/hashing"
)

func populateFreeBS(f *FreeBS, n int, seed uint64) {
	rng := hashing.NewRNG(seed)
	for i := 0; i < n; i++ {
		f.Observe(uint64(rng.Intn(100)), rng.Uint64())
	}
}

func populateFreeRS(f *FreeRS, n int, seed uint64) {
	rng := hashing.NewRNG(seed)
	for i := 0; i < n; i++ {
		f.Observe(uint64(rng.Intn(100)), rng.Uint64())
	}
}

func TestFreeBSCheckpointRestore(t *testing.T) {
	orig := NewFreeBS(4096, 7)
	populateFreeBS(orig, 5000, 1)

	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &FreeBS{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}

	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.NumUsers() != orig.NumUsers() ||
		restored.EdgesProcessed() != orig.EdgesProcessed() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("restored summary state differs")
	}
	orig.Users(func(u uint64, e float64) {
		if restored.Estimate(u) != e {
			t.Fatalf("user %d estimate differs", u)
		}
	})

	// Bit-identical continuation: feeding both the same suffix must keep
	// them in lockstep.
	populateFreeBS(orig, 2000, 2)
	populateFreeBS(restored, 2000, 2)
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("continuation diverged after restore")
	}
}

func TestFreeRSCheckpointRestore(t *testing.T) {
	orig := NewFreeRS(2048, 9)
	populateFreeRS(orig, 5000, 3)

	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &FreeRS{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.NumUsers() != orig.NumUsers() ||
		restored.ChangeProbability() != orig.ChangeProbability() ||
		restored.Width() != orig.Width() {
		t.Fatal("restored summary state differs")
	}
	populateFreeRS(orig, 2000, 4)
	populateFreeRS(restored, 2000, 4)
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("continuation diverged after restore")
	}
}

func TestFreeRSCheckpointPreservesOptions(t *testing.T) {
	orig := NewFreeRS(256, 1, WithPostUpdateQRS(), WithRegisterWidth(4))
	populateFreeRS(orig, 500, 5)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &FreeRS{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !restored.postUpdateQ || restored.Width() != 4 {
		t.Fatal("options lost across checkpoint")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	good, err := NewFreeBS(64, 1).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"nil":            nil,
		"short":          []byte("FB"),
		"wrong magic":    append([]byte("XXXX"), good[4:]...),
		"truncated body": good[:len(good)-1],
		"header only":    []byte("FBS1"),
	}
	for name, data := range cases {
		var f FreeBS
		if err := f.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	goodRS, err := NewFreeRS(64, 1).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var fr FreeRS
	if err := fr.UnmarshalBinary(goodRS[:10]); err == nil {
		t.Fatal("truncated FreeRS accepted")
	}
	if err := fr.UnmarshalBinary(append([]byte("FBS1"), goodRS[4:]...)); err == nil {
		t.Fatal("cross-type restore accepted")
	}
}

func TestCrossTypeMagicRejected(t *testing.T) {
	bs, _ := NewFreeBS(64, 1).MarshalBinary()
	var fr FreeRS
	if err := fr.UnmarshalBinary(bs); err == nil {
		t.Fatal("FreeRS accepted FreeBS bytes")
	}
}

func TestRestoreConstructors(t *testing.T) {
	bs := NewFreeBS(2048, 5)
	populateFreeBS(bs, 3000, 2)
	data, err := bs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rbs, err := RestoreFreeBS(data)
	if err != nil {
		t.Fatal(err)
	}
	if rbs.M() != bs.M() || rbs.TotalDistinct() != bs.TotalDistinct() || rbs.NumUsers() != bs.NumUsers() {
		t.Fatal("RestoreFreeBS state differs")
	}
	if _, err := RestoreFreeBS(data[:8]); err == nil {
		t.Fatal("RestoreFreeBS accepted a truncated payload")
	}

	rs := NewFreeRS(256, 5)
	populateFreeRS(rs, 3000, 2)
	data, err = rs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rrs, err := RestoreFreeRS(data)
	if err != nil {
		t.Fatal(err)
	}
	if rrs.M() != rs.M() || rrs.TotalDistinct() != rs.TotalDistinct() || rrs.NumUsers() != rs.NumUsers() {
		t.Fatal("RestoreFreeRS state differs")
	}
	if _, err := RestoreFreeRS(nil); err == nil {
		t.Fatal("RestoreFreeRS accepted nil")
	}
}

func windowGenPayloads(t *testing.T, n int) [][]byte {
	t.Helper()
	gens := make([][]byte, n)
	for i := range gens {
		f := NewFreeRS(64, 9)
		populateFreeRS(f, 200*(i+1), uint64(i)+1)
		p, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		gens[i] = p
	}
	return gens
}

func TestWindowEnvelopeRoundTrip(t *testing.T) {
	gens := windowGenPayloads(t, 3)
	payload, err := MarshalWindow(4, 2, 1234, gens)
	if err != nil {
		t.Fatal(err)
	}
	k, epoch, edges, got, err := UnmarshalWindow(payload)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 || epoch != 2 || edges != 1234 || len(got) != 3 {
		t.Fatalf("k=%d epoch=%d edges=%d live=%d", k, epoch, edges, len(got))
	}
	for i := range gens {
		if !bytes.Equal(got[i], gens[i]) {
			t.Fatalf("generation %d payload changed", i)
		}
	}
	// Saturated ring: live == k.
	full, err := MarshalWindow(2, 900, 0, windowGenPayloads(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if k, _, _, got, err = UnmarshalWindow(full); err != nil || k != 2 || len(got) != 2 {
		t.Fatalf("saturated ring: k=%d live=%d err=%v", k, len(got), err)
	}
}

func TestWindowEnvelopeRejects(t *testing.T) {
	gens := windowGenPayloads(t, 2)
	if _, err := MarshalWindow(1, 1, 0, gens); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := MarshalWindow(1<<20, 1, 0, gens); err == nil {
		t.Fatal("absurd k accepted")
	}
	if _, err := MarshalWindow(4, 0, 0, gens); err == nil {
		t.Fatal("2 live generations at epoch 0 accepted")
	}
	good, err := MarshalWindow(3, 1, 7, gens)
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string][]byte{
		"nil":          nil,
		"wrong magic":  append([]byte("XXXX"), good[4:]...),
		"header only":  good[:10],
		"truncated":    good[:len(good)-2],
		"trailing":     append(append([]byte{}, good...), 0xab),
		"huge gen len": append(append([]byte{}, good[:24]...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for name, data := range bad {
		if _, _, _, _, err := UnmarshalWindow(data); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
