package core

import (
	"testing"

	"repro/internal/hashing"
)

func populateFreeBS(f *FreeBS, n int, seed uint64) {
	rng := hashing.NewRNG(seed)
	for i := 0; i < n; i++ {
		f.Observe(uint64(rng.Intn(100)), rng.Uint64())
	}
}

func populateFreeRS(f *FreeRS, n int, seed uint64) {
	rng := hashing.NewRNG(seed)
	for i := 0; i < n; i++ {
		f.Observe(uint64(rng.Intn(100)), rng.Uint64())
	}
}

func TestFreeBSCheckpointRestore(t *testing.T) {
	orig := NewFreeBS(4096, 7)
	populateFreeBS(orig, 5000, 1)

	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &FreeBS{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}

	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.NumUsers() != orig.NumUsers() ||
		restored.EdgesProcessed() != orig.EdgesProcessed() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("restored summary state differs")
	}
	orig.Users(func(u uint64, e float64) {
		if restored.Estimate(u) != e {
			t.Fatalf("user %d estimate differs", u)
		}
	})

	// Bit-identical continuation: feeding both the same suffix must keep
	// them in lockstep.
	populateFreeBS(orig, 2000, 2)
	populateFreeBS(restored, 2000, 2)
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("continuation diverged after restore")
	}
}

func TestFreeRSCheckpointRestore(t *testing.T) {
	orig := NewFreeRS(2048, 9)
	populateFreeRS(orig, 5000, 3)

	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &FreeRS{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.NumUsers() != orig.NumUsers() ||
		restored.ChangeProbability() != orig.ChangeProbability() ||
		restored.Width() != orig.Width() {
		t.Fatal("restored summary state differs")
	}
	populateFreeRS(orig, 2000, 4)
	populateFreeRS(restored, 2000, 4)
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("continuation diverged after restore")
	}
}

func TestFreeRSCheckpointPreservesOptions(t *testing.T) {
	orig := NewFreeRS(256, 1, WithPostUpdateQRS(), WithRegisterWidth(4))
	populateFreeRS(orig, 500, 5)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &FreeRS{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !restored.postUpdateQ || restored.Width() != 4 {
		t.Fatal("options lost across checkpoint")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	good, err := NewFreeBS(64, 1).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"nil":            nil,
		"short":          []byte("FB"),
		"wrong magic":    append([]byte("XXXX"), good[4:]...),
		"truncated body": good[:len(good)-1],
		"header only":    []byte("FBS1"),
	}
	for name, data := range cases {
		var f FreeBS
		if err := f.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	goodRS, err := NewFreeRS(64, 1).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var fr FreeRS
	if err := fr.UnmarshalBinary(goodRS[:10]); err == nil {
		t.Fatal("truncated FreeRS accepted")
	}
	if err := fr.UnmarshalBinary(append([]byte("FBS1"), goodRS[4:]...)); err == nil {
		t.Fatal("cross-type restore accepted")
	}
}

func TestCrossTypeMagicRejected(t *testing.T) {
	bs, _ := NewFreeBS(64, 1).MarshalBinary()
	var fr FreeRS
	if err := fr.UnmarshalBinary(bs); err == nil {
		t.Fatal("FreeRS accepted FreeBS bytes")
	}
}
