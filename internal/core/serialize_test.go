package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/hashing"
)

func populateFreeBS(f *FreeBS, n int, seed uint64) {
	rng := hashing.NewRNG(seed)
	for i := 0; i < n; i++ {
		f.Observe(uint64(rng.Intn(100)), rng.Uint64())
	}
}

func populateFreeRS(f *FreeRS, n int, seed uint64) {
	rng := hashing.NewRNG(seed)
	for i := 0; i < n; i++ {
		f.Observe(uint64(rng.Intn(100)), rng.Uint64())
	}
}

func TestFreeBSCheckpointRestore(t *testing.T) {
	orig := NewFreeBS(4096, 7)
	populateFreeBS(orig, 5000, 1)

	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &FreeBS{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}

	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.NumUsers() != orig.NumUsers() ||
		restored.EdgesProcessed() != orig.EdgesProcessed() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("restored summary state differs")
	}
	orig.Users(func(u uint64, e float64) {
		if restored.Estimate(u) != e {
			t.Fatalf("user %d estimate differs", u)
		}
	})

	// Bit-identical continuation: feeding both the same suffix must keep
	// them in lockstep.
	populateFreeBS(orig, 2000, 2)
	populateFreeBS(restored, 2000, 2)
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("continuation diverged after restore")
	}
}

func TestFreeRSCheckpointRestore(t *testing.T) {
	orig := NewFreeRS(2048, 9)
	populateFreeRS(orig, 5000, 3)

	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &FreeRS{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.NumUsers() != orig.NumUsers() ||
		restored.ChangeProbability() != orig.ChangeProbability() ||
		restored.Width() != orig.Width() {
		t.Fatal("restored summary state differs")
	}
	populateFreeRS(orig, 2000, 4)
	populateFreeRS(restored, 2000, 4)
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("continuation diverged after restore")
	}
}

func TestFreeRSCheckpointPreservesOptions(t *testing.T) {
	orig := NewFreeRS(256, 1, WithPostUpdateQRS(), WithRegisterWidth(4))
	populateFreeRS(orig, 500, 5)
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &FreeRS{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !restored.postUpdateQ || restored.Width() != 4 {
		t.Fatal("options lost across checkpoint")
	}
}

// reversedEstimates renders f's estimate entries in DESCENDING user order —
// the adversarial far end of "Go map iteration order", which is what the
// version-1 envelope actually contained — so the legacy tests prove the
// decoder needs no ordering at all.
func reversedEstimates(est interface {
	Len() int
	SortedRange(func(uint64, float64))
}) []byte {
	type entry struct {
		u uint64
		e float64
	}
	entries := make([]entry, 0, est.Len())
	est.SortedRange(func(u uint64, e float64) { entries = append(entries, entry{u, e}) })
	out := binary.AppendUvarint(nil, uint64(len(entries)))
	for i := len(entries) - 1; i >= 0; i-- {
		out = binary.LittleEndian.AppendUint64(out, entries[i].u)
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(entries[i].e))
	}
	return out
}

// legacyMarshalFreeBS re-encodes f in the pre-usertab version-1 envelope
// ("FBS1" magic, unordered estimate entries). Byte-for-byte the layout a
// seed-era MarshalBinary produced, so decoding it exercises the exact
// back-compat path a real old checkpoint would.
func legacyMarshalFreeBS(tb testing.TB, f *FreeBS) []byte {
	tb.Helper()
	arr, err := f.bits.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	out := append([]byte{}, freeBSMagicLegacy...)
	out = append(out, boolByte(f.postUpdateQ))
	out = binary.LittleEndian.AppendUint64(out, f.seed)
	out = binary.LittleEndian.AppendUint64(out, f.edges)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.total))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(arr)))
	out = append(out, arr...)
	return append(out, reversedEstimates(f.est)...)
}

// legacyMarshalFreeRS is the register-sharing analogue of
// legacyMarshalFreeBS ("FRS1" magic).
func legacyMarshalFreeRS(tb testing.TB, f *FreeRS) []byte {
	tb.Helper()
	arr, err := f.regs.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	out := append([]byte{}, freeRSMagicLegacy...)
	out = append(out, boolByte(f.postUpdateQ), f.width)
	out = binary.LittleEndian.AppendUint64(out, f.seedIdx)
	out = binary.LittleEndian.AppendUint64(out, f.seedRank)
	out = binary.LittleEndian.AppendUint64(out, f.edges)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.total))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(arr)))
	out = append(out, arr...)
	return append(out, reversedEstimates(f.est)...)
}

// TestLegacyEnvelopeBackCompat: a pre-usertab (version-1, map-order)
// envelope must decode into exactly the state that produced it, and
// re-serializing that state must yield the current sorted envelope whose
// own round trip is bit-identical — an old spool survives the upgrade with
// nothing lost and nothing reordered.
func TestLegacyEnvelopeBackCompat(t *testing.T) {
	orig := NewFreeBS(4096, 7)
	populateFreeBS(orig, 5000, 1)
	legacy := legacyMarshalFreeBS(t, orig)

	restored := new(FreeBS)
	if err := restored.UnmarshalBinary(legacy); err != nil {
		t.Fatalf("legacy FreeBS envelope rejected: %v", err)
	}
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.NumUsers() != orig.NumUsers() ||
		restored.EdgesProcessed() != orig.EdgesProcessed() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("legacy decode lost summary state")
	}
	orig.Users(func(u uint64, e float64) {
		if restored.Estimate(u) != e {
			t.Fatalf("legacy decode changed user %d: %v vs %v", u, restored.Estimate(u), e)
		}
	})
	// Re-encoding the restored state produces the current envelope,
	// bit-identical to serializing the original directly: the unordered
	// legacy entries land in the same sorted order.
	reenc, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, direct) {
		t.Fatal("legacy-restored state re-serializes differently from the original")
	}
	if string(reenc[:4]) != freeBSMagic {
		t.Fatalf("re-encode kept the legacy version: %q", reenc[:4])
	}
	// Bit-identical continuation, the restore-lockstep contract.
	populateFreeBS(orig, 2000, 2)
	populateFreeBS(restored, 2000, 2)
	if restored.TotalDistinct() != orig.TotalDistinct() ||
		restored.ChangeProbability() != orig.ChangeProbability() {
		t.Fatal("continuation diverged after legacy restore")
	}

	origRS := NewFreeRS(2048, 9, WithPostUpdateQRS())
	populateFreeRS(origRS, 5000, 3)
	legacyRS := legacyMarshalFreeRS(t, origRS)
	restoredRS := new(FreeRS)
	if err := restoredRS.UnmarshalBinary(legacyRS); err != nil {
		t.Fatalf("legacy FreeRS envelope rejected: %v", err)
	}
	if restoredRS.TotalDistinct() != origRS.TotalDistinct() ||
		restoredRS.NumUsers() != origRS.NumUsers() ||
		restoredRS.Width() != origRS.Width() || !restoredRS.postUpdateQ {
		t.Fatal("legacy FreeRS decode lost state")
	}
	reencRS, err := restoredRS.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	directRS, err := origRS.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reencRS, directRS) {
		t.Fatal("legacy-restored FreeRS re-serializes differently")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	good, err := NewFreeBS(64, 1).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"nil":            nil,
		"short":          []byte("FB"),
		"wrong magic":    append([]byte("XXXX"), good[4:]...),
		"truncated body": good[:len(good)-1],
		"header only":    []byte("FBS1"),
	}
	for name, data := range cases {
		var f FreeBS
		if err := f.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	goodRS, err := NewFreeRS(64, 1).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var fr FreeRS
	if err := fr.UnmarshalBinary(goodRS[:10]); err == nil {
		t.Fatal("truncated FreeRS accepted")
	}
	if err := fr.UnmarshalBinary(append([]byte("FBS1"), goodRS[4:]...)); err == nil {
		t.Fatal("cross-type restore accepted")
	}
}

func TestCrossTypeMagicRejected(t *testing.T) {
	bs, _ := NewFreeBS(64, 1).MarshalBinary()
	var fr FreeRS
	if err := fr.UnmarshalBinary(bs); err == nil {
		t.Fatal("FreeRS accepted FreeBS bytes")
	}
}

func TestRestoreConstructors(t *testing.T) {
	bs := NewFreeBS(2048, 5)
	populateFreeBS(bs, 3000, 2)
	data, err := bs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rbs, err := RestoreFreeBS(data)
	if err != nil {
		t.Fatal(err)
	}
	if rbs.M() != bs.M() || rbs.TotalDistinct() != bs.TotalDistinct() || rbs.NumUsers() != bs.NumUsers() {
		t.Fatal("RestoreFreeBS state differs")
	}
	if _, err := RestoreFreeBS(data[:8]); err == nil {
		t.Fatal("RestoreFreeBS accepted a truncated payload")
	}

	rs := NewFreeRS(256, 5)
	populateFreeRS(rs, 3000, 2)
	data, err = rs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rrs, err := RestoreFreeRS(data)
	if err != nil {
		t.Fatal(err)
	}
	if rrs.M() != rs.M() || rrs.TotalDistinct() != rs.TotalDistinct() || rrs.NumUsers() != rs.NumUsers() {
		t.Fatal("RestoreFreeRS state differs")
	}
	if _, err := RestoreFreeRS(nil); err == nil {
		t.Fatal("RestoreFreeRS accepted nil")
	}
}

func windowGenPayloads(t *testing.T, n int) [][]byte {
	t.Helper()
	gens := make([][]byte, n)
	for i := range gens {
		f := NewFreeRS(64, 9)
		populateFreeRS(f, 200*(i+1), uint64(i)+1)
		p, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		gens[i] = p
	}
	return gens
}

func TestWindowEnvelopeRoundTrip(t *testing.T) {
	gens := windowGenPayloads(t, 3)
	payload, err := MarshalWindow(4, 2, 1234, gens)
	if err != nil {
		t.Fatal(err)
	}
	k, epoch, edges, got, err := UnmarshalWindow(payload)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 || epoch != 2 || edges != 1234 || len(got) != 3 {
		t.Fatalf("k=%d epoch=%d edges=%d live=%d", k, epoch, edges, len(got))
	}
	for i := range gens {
		if !bytes.Equal(got[i], gens[i]) {
			t.Fatalf("generation %d payload changed", i)
		}
	}
	// Saturated ring: live == k.
	full, err := MarshalWindow(2, 900, 0, windowGenPayloads(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if k, _, _, got, err = UnmarshalWindow(full); err != nil || k != 2 || len(got) != 2 {
		t.Fatalf("saturated ring: k=%d live=%d err=%v", k, len(got), err)
	}
}

func TestWindowEnvelopeRejects(t *testing.T) {
	gens := windowGenPayloads(t, 2)
	if _, err := MarshalWindow(1, 1, 0, gens); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := MarshalWindow(1<<20, 1, 0, gens); err == nil {
		t.Fatal("absurd k accepted")
	}
	if _, err := MarshalWindow(4, 0, 0, gens); err == nil {
		t.Fatal("2 live generations at epoch 0 accepted")
	}
	good, err := MarshalWindow(3, 1, 7, gens)
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string][]byte{
		"nil":          nil,
		"wrong magic":  append([]byte("XXXX"), good[4:]...),
		"header only":  good[:10],
		"truncated":    good[:len(good)-2],
		"trailing":     append(append([]byte{}, good...), 0xab),
		"huge gen len": append(append([]byte{}, good[:24]...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for name, data := range bad {
		if _, _, _, _, err := UnmarshalWindow(data); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
