package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/hashing"
)

func TestFreeBSEmpty(t *testing.T) {
	f := NewFreeBS(1024, 1)
	if f.Estimate(42) != 0 || f.TotalDistinct() != 0 || f.NumUsers() != 0 {
		t.Fatal("fresh FreeBS not empty")
	}
	if f.ChangeProbability() != 1 {
		t.Fatalf("fresh q_B = %v, want 1", f.ChangeProbability())
	}
	if f.M() != 1024 || f.MemoryBits() != 1024 {
		t.Fatal("size accessors wrong")
	}
}

func TestFreeBSPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFreeBS(0, 1)
}

func TestFreeBSFirstPairCountsAsOne(t *testing.T) {
	// The very first pair flips a bit with q_B = 1, so the increment is
	// exactly 1 — the estimator starts exact.
	f := NewFreeBS(1<<16, 2)
	if !f.Observe(7, 100) {
		t.Fatal("first pair must flip a bit")
	}
	if got := f.Estimate(7); got != 1 {
		t.Fatalf("estimate after first pair = %v, want exactly 1", got)
	}
}

func TestFreeBSDuplicatesNeverCount(t *testing.T) {
	f := NewFreeBS(1<<16, 3)
	f.Observe(7, 100)
	before := f.Estimate(7)
	for i := 0; i < 1000; i++ {
		if f.Observe(7, 100) {
			t.Fatal("duplicate flipped a bit")
		}
	}
	if f.Estimate(7) != before {
		t.Fatal("duplicates changed the estimate")
	}
	if f.EdgesProcessed() != 1001 {
		t.Fatalf("edges = %d", f.EdgesProcessed())
	}
}

func TestFreeBSTotalEqualsSumOfUsers(t *testing.T) {
	// Invariant: TotalDistinct is exactly the sum of per-user estimates.
	f := NewFreeBS(1<<14, 4)
	rng := hashing.NewRNG(9)
	for i := 0; i < 20000; i++ {
		f.Observe(uint64(rng.Intn(50)), rng.Uint64())
	}
	sum := 0.0
	f.Users(func(_ uint64, e float64) { sum += e })
	if math.Abs(sum-f.TotalDistinct()) > 1e-6*f.TotalDistinct() {
		t.Fatalf("sum of users %v != total %v", sum, f.TotalDistinct())
	}
}

func TestFreeBSQEqualsZeroFractionQuick(t *testing.T) {
	// Invariant: the incremental q_B always equals ZeroCount/M exactly
	// (the paper's incremental computation of q_B^(t+1)).
	f := func(seed uint64, n uint16) bool {
		fb := NewFreeBS(4096, seed)
		rng := hashing.NewRNG(seed)
		for i := 0; i < int(n); i++ {
			fb.Observe(uint64(rng.Intn(20)), rng.Uint64())
		}
		return fb.ChangeProbability() == float64(fb.bits.ZeroCount())/4096 &&
			fb.bits.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeBSMonotone(t *testing.T) {
	f := NewFreeBS(1<<12, 5)
	rng := hashing.NewRNG(3)
	prev := 0.0
	for i := 0; i < 5000; i++ {
		f.Observe(1, rng.Uint64())
		if e := f.Estimate(1); e < prev {
			t.Fatalf("estimate decreased from %v to %v", prev, e)
		} else {
			prev = e
		}
	}
}

func TestFreeBSUnbiasedAgainstTheorem1(t *testing.T) {
	// Statistical test: across many independent seeds, the mean estimate of
	// a user must sit within 5 standard errors of the truth, with sigma from
	// the Theorem 1 variance bound.
	const (
		M      = 1 << 12
		nUser  = 200
		nNoise = 2000
		trials = 150
	)
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		f := NewFreeBS(M, uint64(tr)*1000003+17)
		rng := hashing.NewRNG(uint64(tr) + 500)
		// Interleave the user's pairs with background noise so q_B decays
		// during the user's lifetime (the regime Theorem 1 is about).
		for i := 0; i < nUser; i++ {
			f.Observe(1, uint64(i))
			for j := 0; j < nNoise/nUser; j++ {
				f.Observe(2+uint64(rng.Intn(30)), rng.Uint64())
			}
		}
		sum += f.Estimate(1)
	}
	mean := sum / trials
	sigma := math.Sqrt(FreeBSVarianceBound(nUser, nUser+nNoise, M) / trials)
	if math.Abs(mean-nUser) > 5*sigma {
		t.Fatalf("mean estimate %v, want %v ± %v (5σ)", mean, nUser, 5*sigma)
	}
}

func TestFreeBSVarianceWithinBound(t *testing.T) {
	const (
		M      = 1 << 12
		nUser  = 300
		nNoise = 3000
		trials = 120
	)
	var sum, sumsq float64
	for tr := 0; tr < trials; tr++ {
		f := NewFreeBS(M, uint64(tr)*7919+3)
		rng := hashing.NewRNG(uint64(tr) + 900)
		for i := 0; i < nUser; i++ {
			f.Observe(1, uint64(i))
			for j := 0; j < nNoise/nUser; j++ {
				f.Observe(2+uint64(rng.Intn(30)), rng.Uint64())
			}
		}
		e := f.Estimate(1)
		sum += e
		sumsq += e * e
	}
	mean := sum / trials
	empVar := sumsq/trials - mean*mean
	bound := FreeBSVarianceBound(nUser, nUser+nNoise, M)
	// Allow 2x the bound to absorb sampling noise of the variance itself.
	if empVar > 2*bound {
		t.Fatalf("empirical variance %v exceeds Theorem-1 bound %v", empVar, bound)
	}
}

func TestFreeBSAccuracyOnRealisticStream(t *testing.T) {
	// End-to-end: heavy user among background, estimate within 10%.
	f := NewFreeBS(1<<20, 6)
	truth := exact.NewTracker()
	rng := hashing.NewRNG(44)
	for i := 0; i < 20000; i++ {
		u := uint64(rng.Intn(500))
		d := rng.Uint64() % 5000
		f.Observe(u, d)
		truth.Observe(u, d)
		f.Observe(1000, uint64(i)) // heavy user: 20k distinct
		truth.Observe(1000, uint64(i))
	}
	got := f.Estimate(1000)
	want := float64(truth.Cardinality(1000))
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("heavy user estimate %v, truth %v", got, want)
	}
}

func TestFreeBSSaturation(t *testing.T) {
	f := NewFreeBS(64, 7)
	for i := 0; i < 10000; i++ {
		f.Observe(1, uint64(i))
	}
	if !f.Saturated() {
		t.Fatal("tiny array should saturate")
	}
	before := f.Estimate(1)
	if f.Observe(1, 999999999) {
		t.Fatal("observe on saturated array flipped a bit")
	}
	if f.Estimate(1) != before {
		t.Fatal("saturated array changed an estimate")
	}
	if math.IsInf(before, 0) || math.IsNaN(before) {
		t.Fatalf("estimate not finite at saturation: %v", before)
	}
}

func TestFreeBSTotalLPCTracksTruth(t *testing.T) {
	f := NewFreeBS(1<<16, 8)
	truth := exact.NewTracker()
	rng := hashing.NewRNG(5)
	for i := 0; i < 30000; i++ {
		u, d := uint64(rng.Intn(100)), rng.Uint64()%2000
		f.Observe(u, d)
		truth.Observe(u, d)
	}
	want := float64(truth.TotalCardinality())
	for name, got := range map[string]float64{
		"HT":  f.TotalDistinct(),
		"LPC": f.TotalDistinctLPC(),
	} {
		if math.Abs(got-want) > 0.05*want {
			t.Fatalf("%s total %v, truth %v", name, got, want)
		}
	}
}

func TestFreeBSPostUpdateQBiasDirection(t *testing.T) {
	// The ablation: post-update q divides by a smaller q, so estimates are
	// systematically larger than the default (and biased upward).
	const M = 512
	sumPre, sumPost := 0.0, 0.0
	for tr := 0; tr < 60; tr++ {
		seed := uint64(tr)*131 + 7
		pre := NewFreeBS(M, seed)
		post := NewFreeBS(M, seed, WithPostUpdateQ())
		for i := 0; i < 600; i++ {
			pre.Observe(1, uint64(i))
			post.Observe(1, uint64(i))
		}
		sumPre += pre.Estimate(1)
		sumPost += post.Estimate(1)
	}
	if sumPost <= sumPre {
		t.Fatalf("post-update q should inflate estimates: pre=%v post=%v", sumPre/60, sumPost/60)
	}
}

func TestFreeBSReset(t *testing.T) {
	f := NewFreeBS(1024, 9)
	f.Observe(1, 1)
	f.Reset()
	if f.Estimate(1) != 0 || f.TotalDistinct() != 0 || f.NumUsers() != 0 ||
		f.ChangeProbability() != 1 || f.EdgesProcessed() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestFreeBSMaxEstimate(t *testing.T) {
	f := NewFreeBS(1000, 10)
	want := 1000 * math.Log(1000)
	if math.Abs(f.MaxEstimate()-want) > 1e-9 {
		t.Fatalf("MaxEstimate = %v, want %v", f.MaxEstimate(), want)
	}
}

func TestFreeBSDistinctStreamsIndependent(t *testing.T) {
	// Two users with disjoint items must have roughly proportional estimates.
	f := NewFreeBS(1<<18, 11)
	for i := 0; i < 10000; i++ {
		f.Observe(1, uint64(i))
		if i%10 == 0 {
			f.Observe(2, uint64(i)|1<<40)
		}
	}
	e1, e2 := f.Estimate(1), f.Estimate(2)
	ratio := e1 / e2
	if ratio < 7 || ratio > 13 {
		t.Fatalf("ratio %v, want ~10 (e1=%v e2=%v)", ratio, e1, e2)
	}
}

func BenchmarkFreeBSObserve(b *testing.B) {
	f := NewFreeBS(1<<24, 1)
	rng := hashing.NewRNG(1)
	users := make([]uint64, 8192)
	items := make([]uint64, 8192)
	for i := range users {
		users[i] = uint64(rng.Intn(100000))
		items[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Observe(users[i&8191], items[i&8191])
	}
}
