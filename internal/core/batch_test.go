package core

import (
	"testing"

	"repro/internal/hashing"
)

// burstEdges generates n edges in user bursts (runs of 1..maxRun edges per
// user, duplicates included), the traffic shape the batch fast path hoists
// over. Deterministic in seed.
func burstEdges(n, users, maxRun int, seed uint64) []Edge {
	rng := hashing.NewRNG(seed)
	edges := make([]Edge, 0, n)
	for len(edges) < n {
		u := uint64(rng.Intn(users) + 1)
		run := rng.Intn(maxRun) + 1
		for r := 0; r < run && len(edges) < n; r++ {
			item := rng.Uint64()
			if rng.Float64() < 0.2 { // duplicates exercise the no-flip path
				item = uint64(rng.Intn(50))
			}
			edges = append(edges, Edge{User: u, Item: item})
		}
	}
	return edges
}

// feedChunks feeds edges through ObserveBatch in uneven chunks so run
// boundaries fall on chunk boundaries too.
func feedChunks(observeBatch func([]Edge), edges []Edge) {
	sizes := []int{1, 37, 5, 256, 3}
	for i, k := 0, 0; i < len(edges); k++ {
		c := sizes[k%len(sizes)]
		if i+c > len(edges) {
			c = len(edges) - i
		}
		observeBatch(edges[i : i+c])
		i += c
	}
}

// TestFreeBSObserveBatchBitIdentical: batched ingestion must leave FreeBS in
// exactly the state per-edge ingestion produces — same bits, same zero count,
// same per-user floats, same totals — for both update-order variants.
func TestFreeBSObserveBatchBitIdentical(t *testing.T) {
	for _, postQ := range []bool{false, true} {
		var opts []FreeBSOption
		if postQ {
			opts = append(opts, WithPostUpdateQ())
		}
		seq := NewFreeBS(1<<12, 9, opts...)
		bat := NewFreeBS(1<<12, 9, opts...)
		edges := burstEdges(20000, 300, 24, 77)
		for _, e := range edges {
			seq.Observe(e.User, e.Item)
		}
		feedChunks(bat.ObserveBatch, edges)
		assertFreeBSEqual(t, seq, bat)
	}
}

func assertFreeBSEqual(t *testing.T, seq, bat *FreeBS) {
	t.Helper()
	if seq.edges != bat.edges {
		t.Fatalf("edges: seq %d, batch %d", seq.edges, bat.edges)
	}
	if seq.total != bat.total {
		t.Fatalf("total: seq %v, batch %v (must be bit-identical)", seq.total, bat.total)
	}
	if seq.est.Len() != bat.est.Len() {
		t.Fatalf("user counts: seq %d, batch %d", seq.est.Len(), bat.est.Len())
	}
	seq.est.Range(func(u uint64, e float64) {
		if be := bat.est.Ref(u); be == nil || *be != e {
			t.Fatalf("user %d: seq %v, batch %v", u, e, bat.est.Get(u))
		}
	})
	sa, err := seq.bits.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ba, err := bat.bits.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(sa) != string(ba) {
		t.Fatal("bit arrays differ")
	}
}

// TestFreeRSObserveBatchBitIdentical: the register-sharing analogue.
func TestFreeRSObserveBatchBitIdentical(t *testing.T) {
	for _, postQ := range []bool{false, true} {
		var opts []FreeRSOption
		if postQ {
			opts = append(opts, WithPostUpdateQRS())
		}
		seq := NewFreeRS(1<<10, 11, opts...)
		bat := NewFreeRS(1<<10, 11, opts...)
		edges := burstEdges(20000, 300, 24, 78)
		for _, e := range edges {
			seq.Observe(e.User, e.Item)
		}
		feedChunks(bat.ObserveBatch, edges)

		if seq.edges != bat.edges {
			t.Fatalf("edges: seq %d, batch %d", seq.edges, bat.edges)
		}
		if seq.total != bat.total {
			t.Fatalf("total: seq %v, batch %v (must be bit-identical)", seq.total, bat.total)
		}
		if seq.est.Len() != bat.est.Len() {
			t.Fatalf("user counts: seq %d, batch %d", seq.est.Len(), bat.est.Len())
		}
		seq.est.Range(func(u uint64, e float64) {
			if be := bat.est.Ref(u); be == nil || *be != e {
				t.Fatalf("user %d: seq %v, batch %v", u, e, bat.est.Get(u))
			}
		})
		sa, err := seq.regs.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		ba, err := bat.regs.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(sa) != string(ba) {
			t.Fatal("register arrays differ")
		}
		if err := bat.regs.Audit(); err != nil {
			t.Fatalf("batch path corrupted maintained statistics: %v", err)
		}
	}
}

// TestObserveBatchEmptyAndSingle covers the trivial batch shapes.
func TestObserveBatchEmptyAndSingle(t *testing.T) {
	f := NewFreeBS(256, 1)
	f.ObserveBatch(nil)
	f.ObserveBatch([]Edge{})
	if f.EdgesProcessed() != 0 || f.NumUsers() != 0 {
		t.Fatal("empty batch mutated state")
	}
	f.ObserveBatch([]Edge{{User: 5, Item: 6}})
	g := NewFreeBS(256, 1)
	g.Observe(5, 6)
	if f.Estimate(5) != g.Estimate(5) || f.EdgesProcessed() != g.EdgesProcessed() {
		t.Fatal("single-edge batch differs from Observe")
	}
}
