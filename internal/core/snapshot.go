package core

// Snapshots are the read side of the serving architecture: an O(1)
// logically frozen fork of a sketch, taken under whatever lock guards the
// writer, then read — estimates, totals, user enumeration, serialization —
// with no lock held at all. The backing arrays (the shared bit/register
// array and the per-user estimate table) are shared copy-on-write: the
// snapshot costs a few struct allocations regardless of M or the user
// count, and the writer pays at most one array copy per mutated array per
// outstanding snapshot generation, amortized across all the edges it
// absorbs between snapshots. Old window generations are never written, so
// in a windowed deployment only the current generation's arrays are ever
// re-copied.
//
// A snapshot is a complete FreeBS/FreeRS value: every read method —
// Estimate, TotalDistinct, TotalDistinctLPC/HLL, NumUsers, Users,
// RangeUsers, MarshalBinary, Clone, Merge sources — behaves exactly as it
// would on an eager Clone taken at the same instant, and the determinism
// contracts (sorted enumeration, serialize-to-equal-bytes) carry over
// unchanged. Mutating a snapshot is permitted (it detaches, leaving the
// parent untouched), but the serving layers treat snapshots as read-only.

// Snapshot returns an O(1) copy-on-write fork of f, logically frozen at the
// current state. See the file comment for the cost model and the
// concurrency contract: the call itself must be serialized with writers
// (take it under the lock that guards Observe), after which reads of the
// snapshot need no synchronization.
func (f *FreeBS) Snapshot() *FreeBS {
	return &FreeBS{
		bits:        f.bits.Snapshot(),
		seed:        f.seed,
		est:         f.est.Snapshot(),
		total:       f.total,
		edges:       f.edges,
		postUpdateQ: f.postUpdateQ,
	}
}

// Snapshot returns an O(1) copy-on-write fork of f; see FreeBS.Snapshot.
func (f *FreeRS) Snapshot() *FreeRS {
	return &FreeRS{
		regs:        f.regs.Snapshot(),
		seedIdx:     f.seedIdx,
		seedRank:    f.seedRank,
		est:         f.est.Snapshot(),
		total:       f.total,
		edges:       f.edges,
		postUpdateQ: f.postUpdateQ,
		width:       f.width,
	}
}
