package core

import (
	"bytes"
	"math"
	"testing"
)

// FuzzUnmarshalBinary hardens the checkpoint decoder against hostile or
// damaged payloads: for arbitrary input bytes, UnmarshalBinary must either
// succeed on a payload that round-trips cleanly, or return an error and
// leave the receiver's state untouched — never panic, never half-restore.
//
// The corpus is seeded with genuine MarshalBinary outputs of both sketch
// types (so the fuzzer starts from the valid format and mutates from there)
// plus truncations, corruptions, and version/magic flips of them.
func FuzzUnmarshalBinary(f *testing.F) {
	fb := NewFreeBS(256, 7)
	fr := NewFreeRS(64, 7)
	for _, e := range burstEdges(300, 20, 8, 3) {
		fb.Observe(e.User, e.Item)
		fr.Observe(e.User, e.Item)
	}
	bsPayload, err := fb.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	rsPayload, err := fr.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range [][]byte{bsPayload, rsPayload} {
		f.Add(p)                          // pristine
		f.Add(p[:len(p)/2])               // truncated mid-payload
		f.Add(p[:4])                      // header only
		f.Add(append([]byte{}, p[4:]...)) // magic stripped
		flipped := append([]byte{}, p...)
		flipped[3] ^= 0x01 // version byte of the magic: "FBS1" -> "FBS0" etc.
		f.Add(flipped)
		corrupt := append([]byte{}, p...)
		corrupt[len(corrupt)/2] ^= 0xff
		f.Add(corrupt)
		// Length-field attacks: blow up the array-length word.
		huge := append([]byte{}, p...)
		for i := 0; i < 8 && 25+i < len(huge); i++ {
			huge[25+i] = 0xff
		}
		f.Add(huge)
	}
	// A payload whose estimate count varint is enormous (overflow bait for
	// the count*16 size check).
	bait := append([]byte{}, bsPayload...)
	f.Add(append(bait[:len(bait)-17], 0x90, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01))
	f.Add([]byte{})
	f.Add([]byte("FBS1"))
	f.Add([]byte("FRS1"))
	f.Add([]byte("FBS2"))
	f.Add([]byte("FRS2"))
	// Legacy (version-1, unordered-estimates) envelopes: pristine, truncated,
	// and corrupted — the back-compat decode path must obey the same
	// error-vs-state contract as the current version.
	for _, p := range [][]byte{legacyMarshalFreeBS(f, fb), legacyMarshalFreeRS(f, fr)} {
		f.Add(p)
		f.Add(p[:len(p)/2])
		corrupt := append([]byte{}, p...)
		corrupt[len(corrupt)/2] ^= 0xff
		f.Add(corrupt)
	}
	// Windowed checkpoint envelopes: a genuine 3-of-4-generation payload, a
	// saturated 2-generation one, plus truncation and a length-field blowup.
	winPayload, err := MarshalWindow(4, 2, 77, [][]byte{rsPayload, rsPayload, rsPayload})
	if err != nil {
		f.Fatal(err)
	}
	winFull, err := MarshalWindow(2, 9, 0, [][]byte{bsPayload, bsPayload})
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range [][]byte{winPayload, winFull} {
		f.Add(p)
		f.Add(p[:len(p)/2])
		hugeGen := append([]byte{}, p[:24]...) // header, then a ~2^63 length
		f.Add(append(hugeGen, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))
	}
	f.Add([]byte("WIN1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		checkFreeBSUnmarshal(t, data)
		checkFreeRSUnmarshal(t, data)
		checkWindowUnmarshal(t, data)
	})
}

// checkWindowUnmarshal decodes data as a window envelope and verifies that
// accepted payloads satisfy the ring invariant and survive a semantic
// round trip. (Byte-identity is not required: the fuzzer may craft
// non-minimal varint length prefixes that re-encode shorter.)
func checkWindowUnmarshal(t *testing.T, data []byte) {
	t.Helper()
	k, epoch, edges, gens, err := UnmarshalWindow(data)
	if err != nil {
		return
	}
	if k < 2 {
		t.Fatalf("accepted window with k=%d", k)
	}
	out, err := MarshalWindow(k, epoch, edges, gens)
	if err != nil {
		t.Fatalf("re-marshal of accepted window failed: %v", err)
	}
	k2, epoch2, edges2, gens2, err := UnmarshalWindow(out)
	if err != nil {
		t.Fatalf("round trip of accepted window rejected: %v", err)
	}
	if k2 != k || epoch2 != epoch || edges2 != edges || len(gens2) != len(gens) {
		t.Fatal("window round trip changed bookkeeping")
	}
	for i := range gens {
		if !bytes.Equal(gens[i], gens2[i]) {
			t.Fatalf("window round trip changed generation %d", i)
		}
	}
}

// checkFreeBSUnmarshal decodes data into a pre-populated FreeBS and verifies
// the error-vs-state contract.
func checkFreeBSUnmarshal(t *testing.T, data []byte) {
	t.Helper()
	f := NewFreeBS(128, 3)
	f.Observe(11, 22)
	f.Observe(11, 23)
	prevM := f.M()
	prevEdges := f.EdgesProcessed()
	prevTotal := f.TotalDistinct()
	prevEst := f.Estimate(11)

	if err := f.UnmarshalBinary(data); err != nil {
		// Failed decode must leave the receiver exactly as it was.
		if f.M() != prevM || f.EdgesProcessed() != prevEdges ||
			f.TotalDistinct() != prevTotal || f.Estimate(11) != prevEst {
			t.Fatalf("FreeBS: failed UnmarshalBinary mutated state (err %v)", err)
		}
		return
	}
	// Accepted payloads must re-marshal and decode to the same semantics.
	verifyFreeBSRoundTrip(t, f)
}

func verifyFreeBSRoundTrip(t *testing.T, f *FreeBS) {
	t.Helper()
	if err := f.bits.Audit(); err != nil {
		t.Fatalf("FreeBS: accepted payload with inconsistent zero count: %v", err)
	}
	out, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("FreeBS: re-marshal of accepted state failed: %v", err)
	}
	g := NewFreeBS(64, 1)
	if err := g.UnmarshalBinary(out); err != nil {
		t.Fatalf("FreeBS: round trip of accepted state rejected: %v", err)
	}
	if g.M() != f.M() || g.EdgesProcessed() != f.EdgesProcessed() || g.NumUsers() != f.NumUsers() {
		t.Fatal("FreeBS: round trip changed dimensions")
	}
	if !floatEqualOrBothNaN(g.TotalDistinct(), f.TotalDistinct()) {
		t.Fatalf("FreeBS: round trip changed total %v -> %v", f.TotalDistinct(), g.TotalDistinct())
	}
	f.Users(func(u uint64, e float64) {
		if !floatEqualOrBothNaN(g.Estimate(u), e) {
			t.Fatalf("FreeBS: round trip changed estimate of %d: %v -> %v", u, e, g.Estimate(u))
		}
	})
	arrF, _ := f.bits.MarshalBinary()
	arrG, _ := g.bits.MarshalBinary()
	if !bytes.Equal(arrF, arrG) {
		t.Fatal("FreeBS: round trip changed the bit array")
	}
}

// checkFreeRSUnmarshal is the register-sharing analogue.
func checkFreeRSUnmarshal(t *testing.T, data []byte) {
	t.Helper()
	f := NewFreeRS(32, 3)
	f.Observe(11, 22)
	f.Observe(11, 23)
	prevM := f.M()
	prevEdges := f.EdgesProcessed()
	prevTotal := f.TotalDistinct()
	prevEst := f.Estimate(11)

	if err := f.UnmarshalBinary(data); err != nil {
		if f.M() != prevM || f.EdgesProcessed() != prevEdges ||
			f.TotalDistinct() != prevTotal || f.Estimate(11) != prevEst {
			t.Fatalf("FreeRS: failed UnmarshalBinary mutated state (err %v)", err)
		}
		return
	}
	if err := f.regs.Audit(); err != nil {
		t.Fatalf("FreeRS: accepted payload with inconsistent statistics: %v", err)
	}
	out, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("FreeRS: re-marshal of accepted state failed: %v", err)
	}
	g := NewFreeRS(16, 1)
	if err := g.UnmarshalBinary(out); err != nil {
		t.Fatalf("FreeRS: round trip of accepted state rejected: %v", err)
	}
	if g.M() != f.M() || g.Width() != f.Width() || g.EdgesProcessed() != f.EdgesProcessed() {
		t.Fatal("FreeRS: round trip changed dimensions")
	}
	if !floatEqualOrBothNaN(g.TotalDistinct(), f.TotalDistinct()) {
		t.Fatalf("FreeRS: round trip changed total %v -> %v", f.TotalDistinct(), g.TotalDistinct())
	}
	arrF, _ := f.regs.MarshalBinary()
	arrG, _ := g.regs.MarshalBinary()
	if !bytes.Equal(arrF, arrG) {
		t.Fatal("FreeRS: round trip changed the register array")
	}
}

// floatEqualOrBothNaN compares floats bit-meaningfully: fuzzed payloads may
// legitimately carry NaN credits, and NaN != NaN would fail a faithful round
// trip.
func floatEqualOrBothNaN(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}
