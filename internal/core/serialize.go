package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitarray"
	"repro/internal/regarray"
	"repro/internal/usertab"
)

// Serialization lets a long-running monitor checkpoint its full estimator
// state — shared array, per-user running estimates, and the incremental
// bookkeeping — and resume after a restart with bit-identical behaviour.
//
// Format (little-endian): magic, version byte, fixed header fields, the
// underlying array's own binary form (length-prefixed), then the per-user
// estimate entries as a varint count followed by (uint64 user, float64
// bits) pairs.
//
// The trailing digit of the magic is the envelope version. Version 2
// ("FBS2"/"FRS2", the only version written) guarantees the estimate
// entries are in ascending user order, so equal logical states always
// serialize to equal bytes. Version 1 payloads — written before the flat
// estimate table, with entries in Go map iteration order — still decode:
// the entry layout is identical and estimates are summable credits whose
// total is stored explicitly, so order carries no information.

const (
	freeBSMagic       = "FBS2"
	freeRSMagic       = "FRS2"
	freeBSMagicLegacy = "FBS1"
	freeRSMagicLegacy = "FRS1"
	windowMagic       = "WIN1"
)

// maxWindowGenerations bounds the generation count a window checkpoint may
// declare; anything larger is a corrupt or hostile payload, not a plausible
// ring (a generation is a whole sketch — thousands of them would dwarf any
// real deployment).
const maxWindowGenerations = 1 << 16

// RestoreFreeBS decodes a MarshalBinary payload directly into a fresh
// FreeBS — the restore path for checkpoints, which unlike UnmarshalBinary on
// an existing sketch never needs a placeholder sketch to overwrite.
func RestoreFreeBS(data []byte) (*FreeBS, error) {
	f := new(FreeBS)
	if err := f.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return f, nil
}

// RestoreFreeRS decodes a MarshalBinary payload directly into a fresh
// FreeRS; see RestoreFreeBS.
func RestoreFreeRS(data []byte) (*FreeRS, error) {
	f := new(FreeRS)
	if err := f.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return f, nil
}

// MarshalBinary serializes the complete FreeBS state.
func (f *FreeBS) MarshalBinary() ([]byte, error) {
	arr, err := f.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 64+len(arr)+f.est.Len()*16)
	out = append(out, freeBSMagic...)
	out = append(out, boolByte(f.postUpdateQ))
	out = binary.LittleEndian.AppendUint64(out, f.seed)
	out = binary.LittleEndian.AppendUint64(out, f.edges)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.total))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(arr)))
	out = append(out, arr...)
	out = appendEstimates(out, f.est)
	return out, nil
}

// UnmarshalBinary restores state serialized by MarshalBinary, current or
// legacy envelope version (see the package comment on versioning).
func (f *FreeBS) UnmarshalBinary(data []byte) error {
	body, err := checkMagicAny(data, freeBSMagic, freeBSMagicLegacy)
	if err != nil {
		return err
	}
	if len(body) < 1+8+8+8+8 {
		return errors.New("core: FreeBS payload truncated")
	}
	postQ := body[0] != 0
	seed := binary.LittleEndian.Uint64(body[1:])
	edges := binary.LittleEndian.Uint64(body[9:])
	total := math.Float64frombits(binary.LittleEndian.Uint64(body[17:]))
	arrLen := int(binary.LittleEndian.Uint64(body[25:]))
	body = body[33:]
	if arrLen < 0 || arrLen > len(body) {
		return errors.New("core: FreeBS array length out of bounds")
	}
	bits := new(bitarray.BitArray)
	if err := bits.UnmarshalBinary(body[:arrLen]); err != nil {
		return fmt.Errorf("core: FreeBS array: %w", err)
	}
	est, err := readEstimates(body[arrLen:])
	if err != nil {
		return err
	}
	f.bits = bits
	f.seed = seed
	f.est = est
	f.total = total
	f.edges = edges
	f.postUpdateQ = postQ
	return nil
}

// MarshalBinary serializes the complete FreeRS state.
func (f *FreeRS) MarshalBinary() ([]byte, error) {
	arr, err := f.regs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 64+len(arr)+f.est.Len()*16)
	out = append(out, freeRSMagic...)
	out = append(out, boolByte(f.postUpdateQ), f.width)
	out = binary.LittleEndian.AppendUint64(out, f.seedIdx)
	out = binary.LittleEndian.AppendUint64(out, f.seedRank)
	out = binary.LittleEndian.AppendUint64(out, f.edges)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.total))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(arr)))
	out = append(out, arr...)
	out = appendEstimates(out, f.est)
	return out, nil
}

// UnmarshalBinary restores state serialized by MarshalBinary, current or
// legacy envelope version (see the package comment on versioning).
func (f *FreeRS) UnmarshalBinary(data []byte) error {
	body, err := checkMagicAny(data, freeRSMagic, freeRSMagicLegacy)
	if err != nil {
		return err
	}
	if len(body) < 2+8+8+8+8+8 {
		return errors.New("core: FreeRS payload truncated")
	}
	postQ := body[0] != 0
	width := body[1]
	seedIdx := binary.LittleEndian.Uint64(body[2:])
	seedRank := binary.LittleEndian.Uint64(body[10:])
	edges := binary.LittleEndian.Uint64(body[18:])
	total := math.Float64frombits(binary.LittleEndian.Uint64(body[26:]))
	arrLen := int(binary.LittleEndian.Uint64(body[34:]))
	body = body[42:]
	if arrLen < 0 || arrLen > len(body) {
		return errors.New("core: FreeRS array length out of bounds")
	}
	regs := new(regarray.Array)
	if err := regs.UnmarshalBinary(body[:arrLen]); err != nil {
		return fmt.Errorf("core: FreeRS array: %w", err)
	}
	if regs.Width() != width {
		return errors.New("core: FreeRS width mismatch")
	}
	if !regs.Exact() {
		return errors.New("core: FreeRS requires an exactly maintained array")
	}
	est, err := readEstimates(body[arrLen:])
	if err != nil {
		return err
	}
	f.regs = regs
	f.seedIdx = seedIdx
	f.seedRank = seedRank
	f.est = est
	f.total = total
	f.edges = edges
	f.postUpdateQ = postQ
	f.width = width
	return nil
}

// windowLive returns the live-generation count a k-generation ring holds at
// the given epoch: epochs fill the ring one generation at a time until all k
// slots are live. Overflow-safe for any epoch.
func windowLive(k int, epoch uint64) uint64 {
	if epoch < uint64(k)-1 {
		return epoch + 1
	}
	return uint64(k)
}

// MarshalWindow wraps the live generations of a k-generation window — each
// already serialized by its own MarshalBinary — together with the epoch
// bookkeeping (epoch number, edges absorbed by the current epoch) into one
// versioned payload. The live count is not stored: it is a function of k and
// epoch (windowLive), so the decoder validates it for free.
//
// Format (little-endian): magic "WIN1", k as uint32, epoch as uint64, edges
// as uint64, then each generation newest-first as a uvarint length prefix
// plus its payload.
func MarshalWindow(k int, epoch, edges uint64, gens [][]byte) ([]byte, error) {
	if k < 2 || k > maxWindowGenerations {
		return nil, fmt.Errorf("core: window generation count %d out of range [2, %d]", k, maxWindowGenerations)
	}
	if uint64(len(gens)) != windowLive(k, epoch) {
		return nil, fmt.Errorf("core: %d live generations inconsistent with epoch %d of a %d-generation window",
			len(gens), epoch, k)
	}
	size := len(windowMagic) + 4 + 8 + 8
	for _, g := range gens {
		size += binary.MaxVarintLen64 + len(g)
	}
	out := make([]byte, 0, size)
	out = append(out, windowMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(k))
	out = binary.LittleEndian.AppendUint64(out, epoch)
	out = binary.LittleEndian.AppendUint64(out, edges)
	for _, g := range gens {
		out = binary.AppendUvarint(out, uint64(len(g)))
		out = append(out, g...)
	}
	return out, nil
}

// UnmarshalWindow validates and splits a MarshalWindow payload. The returned
// generation payloads alias data (newest first); decoding each into a sketch
// is the caller's job, since the envelope does not know the estimator type.
func UnmarshalWindow(data []byte) (k int, epoch, edges uint64, gens [][]byte, err error) {
	body, err := checkMagic(data, windowMagic)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if len(body) < 4+8+8 {
		return 0, 0, 0, nil, errors.New("core: window payload truncated")
	}
	k = int(binary.LittleEndian.Uint32(body))
	epoch = binary.LittleEndian.Uint64(body[4:])
	edges = binary.LittleEndian.Uint64(body[12:])
	body = body[20:]
	if k < 2 || k > maxWindowGenerations {
		return 0, 0, 0, nil, fmt.Errorf("core: window generation count %d out of range [2, %d]", k, maxWindowGenerations)
	}
	live := windowLive(k, epoch)
	gens = make([][]byte, 0, live)
	for i := uint64(0); i < live; i++ {
		glen, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, 0, 0, nil, fmt.Errorf("core: window generation %d: bad length prefix", i)
		}
		body = body[n:]
		if glen > uint64(len(body)) {
			return 0, 0, 0, nil, fmt.Errorf("core: window generation %d: length %d exceeds remaining %d bytes", i, glen, len(body))
		}
		gens = append(gens, body[:glen])
		body = body[glen:]
	}
	if len(body) != 0 {
		return 0, 0, 0, nil, fmt.Errorf("core: window payload has %d trailing bytes", len(body))
	}
	return k, epoch, edges, gens, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func checkMagic(data []byte, magic string) ([]byte, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("core: bad magic (want %s)", magic)
	}
	return data[len(magic):], nil
}

// checkMagicAny accepts any of the given magics (the current envelope
// version first, then the legacy versions still decoded).
func checkMagicAny(data []byte, magics ...string) ([]byte, error) {
	for _, m := range magics {
		if body, err := checkMagic(data, m); err == nil {
			return body, nil
		}
	}
	return nil, fmt.Errorf("core: bad magic (want %s)", magics[0])
}

// appendEstimates writes the estimate entries in ascending user order — the
// version-2 determinism guarantee: equal logical states serialize to equal
// bytes, whatever insertion history shaped the table's layout.
func appendEstimates(out []byte, est *usertab.Table) []byte {
	out = binary.AppendUvarint(out, uint64(est.Len()))
	est.SortedRange(func(u uint64, e float64) {
		out = binary.LittleEndian.AppendUint64(out, u)
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(e))
	})
	return out
}

// readEstimates decodes the entries section into a pre-sized table. Entry
// order is not required or checked (legacy payloads are unordered); on
// duplicate users the last entry wins, as it did for the map this replaces.
func readEstimates(data []byte) (*usertab.Table, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errors.New("core: bad estimate count")
	}
	data = data[n:]
	// Divide rather than multiply: count is attacker-controlled and count*16
	// can wrap around to a value that matches a short payload's length.
	if count != uint64(len(data))/16 || len(data)%16 != 0 {
		return nil, fmt.Errorf("core: estimate payload %d bytes, want %d entries", len(data), count)
	}
	est := usertab.NewWithCapacity(int(count))
	for i := uint64(0); i < count; i++ {
		u := binary.LittleEndian.Uint64(data[i*16:])
		e := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
		est.Set(u, e)
	}
	return est, nil
}
