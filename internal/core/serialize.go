package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitarray"
	"repro/internal/regarray"
)

// Serialization lets a long-running monitor checkpoint its full estimator
// state — shared array, per-user running estimates, and the incremental
// bookkeeping — and resume after a restart with bit-identical behaviour.
//
// Format (little-endian): magic, version byte, fixed header fields, the
// underlying array's own binary form (length-prefixed), then the per-user
// estimate map as a varint count followed by (uint64 user, float64 bits)
// pairs. Map iteration order does not matter: estimates are summable
// credits, and the total is stored explicitly.

const (
	freeBSMagic = "FBS1"
	freeRSMagic = "FRS1"
)

// MarshalBinary serializes the complete FreeBS state.
func (f *FreeBS) MarshalBinary() ([]byte, error) {
	arr, err := f.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 64+len(arr)+len(f.est)*16)
	out = append(out, freeBSMagic...)
	out = append(out, boolByte(f.postUpdateQ))
	out = binary.LittleEndian.AppendUint64(out, f.seed)
	out = binary.LittleEndian.AppendUint64(out, f.edges)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.total))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(arr)))
	out = append(out, arr...)
	out = appendEstimates(out, f.est)
	return out, nil
}

// UnmarshalBinary restores state serialized by MarshalBinary.
func (f *FreeBS) UnmarshalBinary(data []byte) error {
	body, err := checkMagic(data, freeBSMagic)
	if err != nil {
		return err
	}
	if len(body) < 1+8+8+8+8 {
		return errors.New("core: FreeBS payload truncated")
	}
	postQ := body[0] != 0
	seed := binary.LittleEndian.Uint64(body[1:])
	edges := binary.LittleEndian.Uint64(body[9:])
	total := math.Float64frombits(binary.LittleEndian.Uint64(body[17:]))
	arrLen := int(binary.LittleEndian.Uint64(body[25:]))
	body = body[33:]
	if arrLen < 0 || arrLen > len(body) {
		return errors.New("core: FreeBS array length out of bounds")
	}
	bits := new(bitarray.BitArray)
	if err := bits.UnmarshalBinary(body[:arrLen]); err != nil {
		return fmt.Errorf("core: FreeBS array: %w", err)
	}
	est, err := readEstimates(body[arrLen:])
	if err != nil {
		return err
	}
	f.bits = bits
	f.seed = seed
	f.est = est
	f.total = total
	f.edges = edges
	f.postUpdateQ = postQ
	return nil
}

// MarshalBinary serializes the complete FreeRS state.
func (f *FreeRS) MarshalBinary() ([]byte, error) {
	arr, err := f.regs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 64+len(arr)+len(f.est)*16)
	out = append(out, freeRSMagic...)
	out = append(out, boolByte(f.postUpdateQ), f.width)
	out = binary.LittleEndian.AppendUint64(out, f.seedIdx)
	out = binary.LittleEndian.AppendUint64(out, f.seedRank)
	out = binary.LittleEndian.AppendUint64(out, f.edges)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.total))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(arr)))
	out = append(out, arr...)
	out = appendEstimates(out, f.est)
	return out, nil
}

// UnmarshalBinary restores state serialized by MarshalBinary.
func (f *FreeRS) UnmarshalBinary(data []byte) error {
	body, err := checkMagic(data, freeRSMagic)
	if err != nil {
		return err
	}
	if len(body) < 2+8+8+8+8+8 {
		return errors.New("core: FreeRS payload truncated")
	}
	postQ := body[0] != 0
	width := body[1]
	seedIdx := binary.LittleEndian.Uint64(body[2:])
	seedRank := binary.LittleEndian.Uint64(body[10:])
	edges := binary.LittleEndian.Uint64(body[18:])
	total := math.Float64frombits(binary.LittleEndian.Uint64(body[26:]))
	arrLen := int(binary.LittleEndian.Uint64(body[34:]))
	body = body[42:]
	if arrLen < 0 || arrLen > len(body) {
		return errors.New("core: FreeRS array length out of bounds")
	}
	regs := new(regarray.Array)
	if err := regs.UnmarshalBinary(body[:arrLen]); err != nil {
		return fmt.Errorf("core: FreeRS array: %w", err)
	}
	if regs.Width() != width {
		return errors.New("core: FreeRS width mismatch")
	}
	if !regs.Exact() {
		return errors.New("core: FreeRS requires an exactly maintained array")
	}
	est, err := readEstimates(body[arrLen:])
	if err != nil {
		return err
	}
	f.regs = regs
	f.seedIdx = seedIdx
	f.seedRank = seedRank
	f.est = est
	f.total = total
	f.edges = edges
	f.postUpdateQ = postQ
	f.width = width
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func checkMagic(data []byte, magic string) ([]byte, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("core: bad magic (want %s)", magic)
	}
	return data[len(magic):], nil
}

func appendEstimates(out []byte, est map[uint64]float64) []byte {
	out = binary.AppendUvarint(out, uint64(len(est)))
	for u, e := range est {
		out = binary.LittleEndian.AppendUint64(out, u)
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(e))
	}
	return out
}

func readEstimates(data []byte) (map[uint64]float64, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errors.New("core: bad estimate count")
	}
	data = data[n:]
	// Divide rather than multiply: count is attacker-controlled and count*16
	// can wrap around to a value that matches a short payload's length.
	if count != uint64(len(data))/16 || len(data)%16 != 0 {
		return nil, fmt.Errorf("core: estimate payload %d bytes, want %d entries", len(data), count)
	}
	est := make(map[uint64]float64, count)
	for i := uint64(0); i < count; i++ {
		u := binary.LittleEndian.Uint64(data[i*16:])
		e := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
		est[u] = e
	}
	return est, nil
}
