package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/hashing"
)

func TestFreeRSEmpty(t *testing.T) {
	f := NewFreeRS(1024, 1)
	if f.Estimate(42) != 0 || f.TotalDistinct() != 0 || f.NumUsers() != 0 {
		t.Fatal("fresh FreeRS not empty")
	}
	if f.ChangeProbability() != 1 {
		t.Fatalf("fresh q_R = %v, want 1", f.ChangeProbability())
	}
	if f.M() != 1024 || f.Width() != 5 || f.MemoryBits() != 5*1024 {
		t.Fatal("accessors wrong")
	}
}

func TestFreeRSPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewFreeRS(0, 1) },
		// Width 6 at M=2 cannot maintain the exact sum -> must refuse.
		func() { NewFreeRS(2, 1, WithRegisterWidth(6)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFreeRSWidthOption(t *testing.T) {
	f := NewFreeRS(1024, 1, WithRegisterWidth(4))
	if f.Width() != 4 || f.MemoryBits() != 4*1024 {
		t.Fatal("width option ignored")
	}
}

func TestFreeRSFirstPairCountsAsOne(t *testing.T) {
	f := NewFreeRS(1<<14, 2)
	if !f.Observe(7, 100) {
		t.Fatal("first pair must change a register")
	}
	if got := f.Estimate(7); got != 1 {
		t.Fatalf("estimate after first pair = %v, want exactly 1", got)
	}
}

func TestFreeRSDuplicatesNeverCount(t *testing.T) {
	f := NewFreeRS(1<<14, 3)
	f.Observe(7, 100)
	before := f.Estimate(7)
	for i := 0; i < 1000; i++ {
		if f.Observe(7, 100) {
			t.Fatal("duplicate changed a register")
		}
	}
	if f.Estimate(7) != before {
		t.Fatal("duplicates changed the estimate")
	}
}

func TestFreeRSTotalEqualsSumOfUsers(t *testing.T) {
	f := NewFreeRS(1<<12, 4)
	rng := hashing.NewRNG(9)
	for i := 0; i < 20000; i++ {
		f.Observe(uint64(rng.Intn(50)), rng.Uint64())
	}
	sum := 0.0
	f.Users(func(_ uint64, e float64) { sum += e })
	if math.Abs(sum-f.TotalDistinct()) > 1e-6*f.TotalDistinct() {
		t.Fatalf("sum of users %v != total %v", sum, f.TotalDistinct())
	}
}

func TestFreeRSQExactlyMatchesRecomputationQuick(t *testing.T) {
	// The central exactness claim: the O(1)-maintained q_R equals a full
	// O(M) recomputation bit-for-bit after any stream prefix.
	f := func(seed uint64, n uint16) bool {
		fr := NewFreeRS(512, seed)
		rng := hashing.NewRNG(seed)
		for i := 0; i < int(n); i++ {
			fr.Observe(uint64(rng.Intn(20)), rng.Uint64())
		}
		recomputed := 0.0
		for j := 0; j < fr.regs.Size(); j++ {
			recomputed += math.Exp2(-float64(fr.regs.Get(j)))
		}
		recomputed /= float64(fr.regs.Size())
		return fr.ChangeProbability() == recomputed && fr.regs.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeRSMonotone(t *testing.T) {
	f := NewFreeRS(1<<10, 5)
	rng := hashing.NewRNG(3)
	prev := 0.0
	for i := 0; i < 5000; i++ {
		f.Observe(1, rng.Uint64())
		if e := f.Estimate(1); e < prev {
			t.Fatalf("estimate decreased from %v to %v", prev, e)
		} else {
			prev = e
		}
	}
}

func TestFreeRSUnbiasedAgainstTheorem2(t *testing.T) {
	const (
		M      = 1 << 10
		nUser  = 200
		nNoise = 2000
		trials = 150
	)
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		f := NewFreeRS(M, uint64(tr)*1000003+29)
		rng := hashing.NewRNG(uint64(tr) + 800)
		for i := 0; i < nUser; i++ {
			f.Observe(1, uint64(i))
			for j := 0; j < nNoise/nUser; j++ {
				f.Observe(2+uint64(rng.Intn(30)), rng.Uint64())
			}
		}
		sum += f.Estimate(1)
	}
	mean := sum / trials
	sigma := math.Sqrt(FreeRSVarianceBound(nUser, nUser+nNoise, M) / trials)
	if math.Abs(mean-nUser) > 5*sigma {
		t.Fatalf("mean estimate %v, want %v ± %v (5σ)", mean, nUser, 5*sigma)
	}
}

func TestFreeRSVarianceWithinBound(t *testing.T) {
	const (
		M      = 1 << 10
		nUser  = 300
		nNoise = 3000
		trials = 120
	)
	var sum, sumsq float64
	for tr := 0; tr < trials; tr++ {
		f := NewFreeRS(M, uint64(tr)*104729+11)
		rng := hashing.NewRNG(uint64(tr) + 1700)
		for i := 0; i < nUser; i++ {
			f.Observe(1, uint64(i))
			for j := 0; j < nNoise/nUser; j++ {
				f.Observe(2+uint64(rng.Intn(30)), rng.Uint64())
			}
		}
		e := f.Estimate(1)
		sum += e
		sumsq += e * e
	}
	mean := sum / trials
	empVar := sumsq/trials - mean*mean
	bound := FreeRSVarianceBound(nUser, nUser+nNoise, M)
	if empVar > 2*bound {
		t.Fatalf("empirical variance %v exceeds Theorem-2 bound %v", empVar, bound)
	}
}

func TestFreeRSLargeRangeBeyondBitSaturation(t *testing.T) {
	// The range argument of §IV-C: a register array of M=4096 (= 2.5KB)
	// keeps counting far past the ~M·lnM limit of an equal-register bitmap.
	f := NewFreeRS(4096, 6)
	const n = 1 << 20 // a million distinct pairs into 4096 registers
	for i := 0; i < n; i++ {
		f.Observe(1, uint64(i))
	}
	got := f.Estimate(1)
	if math.Abs(got-n) > 0.15*n {
		t.Fatalf("large-range estimate %v, want ~%d", got, n)
	}
}

func TestFreeRSAccuracyOnRealisticStream(t *testing.T) {
	f := NewFreeRS(1<<18, 7)
	truth := exact.NewTracker()
	rng := hashing.NewRNG(44)
	for i := 0; i < 20000; i++ {
		u := uint64(rng.Intn(500))
		d := rng.Uint64() % 5000
		f.Observe(u, d)
		truth.Observe(u, d)
		f.Observe(1000, uint64(i))
		truth.Observe(1000, uint64(i))
	}
	got := f.Estimate(1000)
	want := float64(truth.Cardinality(1000))
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("heavy user estimate %v, truth %v", got, want)
	}
}

func TestFreeRSTotalHLLTracksTruth(t *testing.T) {
	f := NewFreeRS(1<<14, 8)
	truth := exact.NewTracker()
	rng := hashing.NewRNG(5)
	for i := 0; i < 30000; i++ {
		u, d := uint64(rng.Intn(100)), rng.Uint64()%2000
		f.Observe(u, d)
		truth.Observe(u, d)
	}
	want := float64(truth.TotalCardinality())
	for name, got := range map[string]float64{
		"HT":  f.TotalDistinct(),
		"HLL": f.TotalDistinctHLL(),
	} {
		if math.Abs(got-want) > 0.08*want {
			t.Fatalf("%s total %v, truth %v", name, got, want)
		}
	}
}

func TestFreeRSUpdateOrderBias(t *testing.T) {
	// Algorithm-2-literal ordering (post-update q_R) must inflate estimates
	// relative to the analysis ordering — the discrepancy DESIGN.md documents.
	const M = 256
	sumPre, sumPost := 0.0, 0.0
	for tr := 0; tr < 80; tr++ {
		seed := uint64(tr)*131 + 7
		pre := NewFreeRS(M, seed)
		post := NewFreeRS(M, seed, WithPostUpdateQRS())
		for i := 0; i < 2000; i++ {
			pre.Observe(1, uint64(i))
			post.Observe(1, uint64(i))
		}
		sumPre += pre.Estimate(1)
		sumPost += post.Estimate(1)
	}
	if sumPost <= sumPre {
		t.Fatalf("post-update q should inflate estimates: pre=%v post=%v", sumPre/80, sumPost/80)
	}
}

func TestFreeRSReset(t *testing.T) {
	f := NewFreeRS(512, 9)
	f.Observe(1, 1)
	f.Reset()
	if f.Estimate(1) != 0 || f.TotalDistinct() != 0 || f.NumUsers() != 0 ||
		f.ChangeProbability() != 1 || f.EdgesProcessed() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestFreeRSMaxEstimate(t *testing.T) {
	f := NewFreeRS(128, 10)
	if got, want := f.MaxEstimate(), math.Exp2(32); got != want {
		t.Fatalf("MaxEstimate = %v, want 2^32", got)
	}
}

func TestCrossoverPositionSane(t *testing.T) {
	// For w=5 the crossover n/M solves e^x = 6.93x, whose larger root is
	// ~3.1; the paper's cruder 0.772·w gives 3.86. Check the root property
	// and the ballpark.
	const mBits = 1 << 20
	pos := CrossoverPosition(mBits, 5)
	x := pos / mBits
	if x < 2 || x > 4.5 {
		t.Fatalf("crossover x = %v out of plausible range", x)
	}
	if math.Abs(math.Exp(x)-1.386*5*x) > 0.01*math.Exp(x) {
		t.Fatalf("returned x=%v is not a root of e^x = 6.93x", x)
	}
}

func TestExpectedInvQMonotone(t *testing.T) {
	// Both E(1/q) curves grow with n; FreeRS's grows linearly, FreeBS's
	// exponentially — the §IV-C comparison.
	const M = 1 << 16
	if ExpectedInvQB(1000, M) >= ExpectedInvQB(100000, M) {
		t.Fatal("E(1/qB) must grow with n")
	}
	if ExpectedInvQR(float64(3*M), M) >= ExpectedInvQR(float64(10*M), M) {
		t.Fatal("E(1/qR) must grow with n")
	}
	// Deep into the stream, FreeBS's inverse-q explodes past FreeRS's.
	n := float64(8 * M)
	if ExpectedInvQB(n, M) <= ExpectedInvQR(n, M) {
		t.Fatal("e^{n/M} must dominate 1.386n/M for n = 8M")
	}
}

func TestFreeRSVsFreeBSSmallCardinalityRegime(t *testing.T) {
	// §IV-C: under equal memory, early in the stream FreeBS (M bits) has
	// E(1/q) = e^{n/M_bits} ≈ 1 while FreeRS with M/w registers behaves like
	// a w×-smaller bitmap. Check E(1/q) ordering at n = M_bits/10.
	const mBits = 1 << 15
	n := float64(mBits / 10)
	invQB := ExpectedInvQB(n, mBits)
	invQR := ExpectedInvQR(n, mBits/5) // same memory, w=5
	if invQB >= invQR {
		t.Fatalf("early-stream ordering violated: invQB=%v invQR=%v", invQB, invQR)
	}
}

func BenchmarkFreeRSObserve(b *testing.B) {
	f := NewFreeRS(1<<22, 1)
	rng := hashing.NewRNG(1)
	users := make([]uint64, 8192)
	items := make([]uint64, 8192)
	for i := range users {
		users[i] = uint64(rng.Intn(100000))
		items[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Observe(users[i&8191], items[i&8191])
	}
}
