package core

import (
	"bytes"
	"testing"
)

// feedBS ingests a deterministic bursty stream.
func feedBS(f *FreeBS, n int, seed uint64) {
	x := seed
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		f.Observe(x%500+1, x>>17)
	}
}

func feedRS(f *FreeRS, n int, seed uint64) {
	x := seed
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		f.Observe(x%500+1, x>>17)
	}
}

// TestFreeBSSnapshotFrozen: a snapshot equals an eager clone taken at the
// same instant — same estimates, totals, serialized bytes — and stays equal
// while the parent keeps ingesting.
func TestFreeBSSnapshotFrozen(t *testing.T) {
	f := NewFreeBS(1<<12, 7)
	feedBS(f, 20000, 1)
	clone := f.Clone()
	snap := f.Snapshot()
	feedBS(f, 20000, 2) // parent moves on

	if snap.TotalDistinct() != clone.TotalDistinct() ||
		snap.TotalDistinctLPC() != clone.TotalDistinctLPC() ||
		snap.NumUsers() != clone.NumUsers() ||
		snap.EdgesProcessed() != clone.EdgesProcessed() {
		t.Fatal("snapshot diverged from the moment-of-snapshot clone")
	}
	for u := uint64(1); u <= 500; u++ {
		if snap.Estimate(u) != clone.Estimate(u) {
			t.Fatalf("user %d: snapshot %v != clone %v", u, snap.Estimate(u), clone.Estimate(u))
		}
	}
	sb, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := clone.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, cb) {
		t.Fatal("snapshot serializes differently from the clone (frozen-state contract)")
	}
}

// TestFreeRSSnapshotFrozen mirrors the FreeBS test for register sharing.
func TestFreeRSSnapshotFrozen(t *testing.T) {
	f := NewFreeRS(1<<12, 7)
	feedRS(f, 20000, 1)
	clone := f.Clone()
	snap := f.Snapshot()
	feedRS(f, 20000, 2)

	if snap.TotalDistinct() != clone.TotalDistinct() ||
		snap.TotalDistinctHLL() != clone.TotalDistinctHLL() ||
		snap.NumUsers() != clone.NumUsers() {
		t.Fatal("snapshot diverged from the moment-of-snapshot clone")
	}
	for u := uint64(1); u <= 500; u++ {
		if snap.Estimate(u) != clone.Estimate(u) {
			t.Fatalf("user %d: snapshot %v != clone %v", u, snap.Estimate(u), clone.Estimate(u))
		}
	}
	sb, _ := snap.MarshalBinary()
	cb, _ := clone.MarshalBinary()
	if !bytes.Equal(sb, cb) {
		t.Fatal("snapshot serializes differently from the clone")
	}
}

// TestSnapshotChainThroughBatches: repeated snapshot/ingest cycles (the
// serving pattern) never corrupt parent or snapshots; each snapshot holds
// the state of its own instant.
func TestSnapshotChainThroughBatches(t *testing.T) {
	f := NewFreeRS(1<<10, 3)
	var snaps []*FreeRS
	var totals []float64
	for round := 0; round < 8; round++ {
		edges := make([]Edge, 0, 1000)
		x := uint64(round + 1)
		for i := 0; i < 1000; i++ {
			x = x*2862933555777941757 + 3037000493
			edges = append(edges, Edge{User: x % 50, Item: x >> 13})
		}
		f.ObserveBatch(edges)
		s := f.Snapshot()
		snaps = append(snaps, s)
		totals = append(totals, s.TotalDistinct())
	}
	for i, s := range snaps {
		if s.TotalDistinct() != totals[i] {
			t.Fatalf("snapshot %d drifted after later ingestion", i)
		}
	}
	// Totals are non-decreasing across the chain (duplicates aside, the
	// stream only adds pairs).
	for i := 1; i < len(totals); i++ {
		if totals[i] < totals[i-1] {
			t.Fatalf("snapshot totals went backwards: %v", totals)
		}
	}
}

// TestSnapshotO1Core: snapshotting a loaded sketch allocates a handful of
// small objects, never the arrays.
func TestSnapshotO1Core(t *testing.T) {
	f := NewFreeBS(1<<20, 7)
	feedBS(f, 50000, 9)
	allocs := testing.AllocsPerRun(50, func() {
		sinkBS = f.Snapshot()
	})
	if allocs > 4 { // FreeBS struct + BitArray struct + Table struct (+slack)
		t.Fatalf("FreeBS.Snapshot allocates %v objects, want <= 4", allocs)
	}
	r := NewFreeRS(1<<18, 7)
	feedRS(r, 50000, 9)
	allocs = testing.AllocsPerRun(50, func() {
		sinkRS = r.Snapshot()
	})
	if allocs > 4 {
		t.Fatalf("FreeRS.Snapshot allocates %v objects, want <= 4", allocs)
	}
}

var (
	sinkBS *FreeBS
	sinkRS *FreeRS
)
