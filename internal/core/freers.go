package core

import (
	"math"

	"repro/internal/hashing"
	"repro/internal/hll"
	"repro/internal/regarray"
	"repro/internal/usertab"
)

// DefaultRegisterWidth is the register width the paper evaluates FreeRS with
// (w = 5 bits, §V-B).
const DefaultRegisterWidth = 5

// FreeRS is the parameter-free register-sharing estimator of §IV-B.
// The zero value is not usable; call NewFreeRS.
type FreeRS struct {
	regs        *regarray.Array
	seedIdx     uint64
	seedRank    uint64
	est         *usertab.Table
	total       float64
	edges       uint64
	postUpdateQ bool
	width       uint8
}

// FreeRSOption configures a FreeRS.
type FreeRSOption func(*FreeRS)

// WithPostUpdateQRS makes FreeRS divide by the post-update q_R, the literal
// order of the paper's Algorithm 2 pseudocode, instead of the pre-update
// q_R^(t) its Theorem 2 analysis requires. Ablation only: the post-update
// q_R is smaller, so the estimator acquires a small upward bias.
func WithPostUpdateQRS() FreeRSOption { return func(f *FreeRS) { f.postUpdateQ = true } }

// WithRegisterWidth sets the register width w in bits (default 5). The
// paper fixes w = 5; other widths are exposed for the ablation study of the
// memory/accuracy trade-off. Widths whose scaled harmonic sum cannot be
// maintained exactly (w > 5 at realistic M) are rejected because FreeRS's
// O(1) update depends on the maintained sum.
func WithRegisterWidth(w uint8) FreeRSOption { return func(f *FreeRS) { f.width = w } }

// NewFreeRS returns a FreeRS sharing an array of mRegs registers among all
// users. mRegs (the paper's M) is the only parameter. It panics if
// mRegs <= 0 or the width is unsupported.
func NewFreeRS(mRegs int, seed uint64, opts ...FreeRSOption) *FreeRS {
	f := &FreeRS{
		seedIdx:  hashing.Mix64(seed ^ 0xbb67ae8584caa73b),
		seedRank: hashing.Mix64(seed ^ 0x3c6ef372fe94f82b),
		est:      usertab.New(),
		width:    DefaultRegisterWidth,
	}
	for _, o := range opts {
		o(f)
	}
	f.regs = regarray.New(mRegs, f.width)
	if !f.regs.Exact() {
		panic("core: FreeRS requires a width/size combination with an exactly maintained harmonic sum")
	}
	return f
}

// M returns the shared array size in registers.
func (f *FreeRS) M() int { return f.regs.Size() }

// Width returns the register width in bits.
func (f *FreeRS) Width() uint8 { return f.width }

// MemoryBits returns the fixed sketch memory in bits.
func (f *FreeRS) MemoryBits() int64 { return int64(f.regs.Size()) * int64(f.width) }

// ChangeProbability returns q_R = Σ_j 2^-R[j] / M, the probability that the
// next new pair changes a register. O(1) via the maintained exact sum.
func (f *FreeRS) ChangeProbability() float64 { return f.regs.ChangeProbability() }

// Observe processes edge (user, item) in O(1) and reports whether it changed
// a register (i.e. was treated as a new pair).
func (f *FreeRS) Observe(user, item uint64) bool {
	f.edges++
	idx := hashing.UniformIndex(hashing.HashPair(user, item, f.seedIdx), f.regs.Size())
	rank := hashing.Rho(hashing.HashPair(user, item, f.seedRank), f.regs.MaxValue())
	q := f.regs.ChangeProbability() // q_R^(t): state before the edge
	if _, changed := f.regs.UpdateMax(idx, rank); !changed {
		return false
	}
	if f.postUpdateQ {
		q = f.regs.ChangeProbability() // Algorithm-2-literal ordering
	}
	inc := 1 / q
	f.est.Add(user, inc)
	f.total += inc
	return true
}

// Estimate returns the anytime cardinality estimate n̂_s for user (0 if the
// user has produced no register changes). O(1).
func (f *FreeRS) Estimate(user uint64) float64 { return f.est.Get(user) }

// TotalDistinct returns Σ_s n̂_s, the Horvitz–Thompson estimate of the total
// number of distinct pairs n^(t).
func (f *FreeRS) TotalDistinct() float64 { return f.total }

// TotalDistinctHLL returns the independent HLL estimate of n^(t) from the
// global register state (with small-range correction). Lower variance than
// TotalDistinct; used for super-spreader thresholds.
func (f *FreeRS) TotalDistinctHLL() float64 {
	bigM := float64(f.regs.Size())
	raw := hll.Alpha(f.regs.Size()) * bigM * bigM / f.regs.HarmonicSum()
	if raw < 2.5*bigM {
		if z := f.regs.ZeroCount(); z > 0 {
			return bigM * math.Log(bigM/float64(z))
		}
	}
	return raw
}

// MaxEstimate returns the estimation range of FreeRS, about 2^(2^w) (§IV-C):
// with w=5, registers saturate at rank 31, bounding countable cardinality by
// roughly 2^31 per register slot. Far beyond FreeBS's M·ln M in practice.
func (f *FreeRS) MaxEstimate() float64 {
	return math.Exp2(math.Exp2(float64(f.width)))
}

// EdgesProcessed returns the number of Observe calls (duplicates included).
func (f *FreeRS) EdgesProcessed() uint64 { return f.edges }

// NumUsers returns the number of users with a nonzero estimate. O(1).
func (f *FreeRS) NumUsers() int { return f.est.Len() }

// Users calls fn for every user with a nonzero estimate, in ascending user
// order; see FreeBS.Users for the determinism/cost contract.
func (f *FreeRS) Users(fn func(user uint64, estimate float64)) {
	f.est.SortedRange(fn)
}

// RangeUsers calls fn for every user with a nonzero estimate in layout
// order, allocation-free; see FreeBS.RangeUsers.
func (f *FreeRS) RangeUsers(fn func(user uint64, estimate float64)) {
	f.est.Range(fn)
}

// PerUserBytes returns the exact memory held by the per-user estimate
// table, in bytes; see FreeBS.PerUserBytes.
func (f *FreeRS) PerUserBytes() int64 { return f.est.MemoryBytes() }

// Reset clears the sketch and all estimates.
func (f *FreeRS) Reset() {
	f.regs.Reset()
	f.est.Reset()
	f.total = 0
	f.edges = 0
}
