package stream

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"
)

// FuzzTCPFraming hardens the CWT1 stream scanner against hostile or
// damaged connections: for arbitrary input bytes treated as a connection's
// byte stream, the scanner must never panic, must consume frames
// deterministically, and must reach the exact same sequence of
// (seq, payload, verdict) outcomes whether the stream arrives in one read
// or one byte at a time — the property that makes partial TCP reads and
// frames split across read boundaries invisible. Every accepted frame's
// payload goes through DecodeWire too: accept there implies the canonical
// re-encode identity FuzzDecodeWire pins, so a damaged frame can never be
// silently mis-absorbed (and therefore never mis-acked).
//
// The corpus is seeded with genuine multi-frame streams plus truncations,
// header CRC flips, payload corruptions, length-field inflations, and
// sequence-number replays of them.
func FuzzTCPFraming(f *testing.F) {
	streams := [][]byte{
		appendTCPFrame(nil, 1, nil),
		appendTCPFrame(appendTCPFrame(nil, 1, []Edge{{User: 1, Item: 2}}), 2, burstyEdges(50, 5, 9)),
		appendTCPFrame(appendTCPFrame(appendTCPFrame(nil, 3, burstyEdges(20, 2, 1)), 4, nil), 9, burstyEdges(8, 1, 2)),
	}
	for _, s := range streams {
		f.Add(s)
		f.Add(s[:len(s)-1])
		f.Add(s[:len(s)/2])
		f.Add(s[:FrameHeaderLen-1])
		crcFlip := append([]byte{}, s...)
		crcFlip[12] ^= 0xff // header CRC byte of the first frame
		f.Add(crcFlip)
		lenFlip := append([]byte{}, s...)
		lenFlip[8] ^= 0x10 // length field (caught by the header CRC)
		f.Add(lenFlip)
		payloadFlip := append([]byte{}, s...)
		payloadFlip[len(payloadFlip)-1] ^= 0x01
		f.Add(payloadFlip)
		// Sequence replay: the second frame re-sends the first one's seq.
		if len(s) > 2*FrameHeaderLen {
			replay := appendTCPFrame(nil, 5, []Edge{{User: 1, Item: 1}})
			replay = appendTCPFrame(replay, 5, []Edge{{User: 2, Item: 2}})
			f.Add(replay)
		}
	}
	f.Add([]byte{})
	f.Add([]byte(TCPMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		type outcome struct {
			seq     uint64
			payload string
			failed  bool
			clean   bool
		}
		const maxPayload = 1 << 20
		scan := func(r io.Reader) []outcome {
			sc := NewFrameScanner(r, maxPayload)
			var out []outcome
			var buf []byte
			for {
				seq, payload, err := sc.Next(buf)
				if err != nil {
					return append(out, outcome{failed: true, clean: err == io.EOF})
				}
				out = append(out, outcome{seq: seq, payload: string(payload)})
				buf = payload[:0]
				if len(out) > len(data) { // can't happen: every frame consumes >= FrameHeaderLen bytes
					t.Fatalf("scanner yielded more frames than input bytes")
				}
			}
		}
		whole := scan(bytes.NewReader(data))
		bytewise := scan(iotest.OneByteReader(bytes.NewReader(data)))
		if len(whole) != len(bytewise) {
			t.Fatalf("read fragmentation changed the frame count: %d vs %d", len(whole), len(bytewise))
		}
		for i := range whole {
			if whole[i] != bytewise[i] {
				t.Fatalf("read fragmentation changed outcome %d: %+v vs %+v", i, whole[i], bytewise[i])
			}
		}
		// Every accepted frame is delimited by a CRC-valid header, so its
		// payload is exactly what the client framed; if that payload also
		// passes CWB1 validation, the canonical-encoding identity must hold
		// (the mis-ack guard: a frame either absorbs exactly as sent, or is
		// rejected — never a silent in-between).
		for _, o := range whole {
			if o.failed {
				continue
			}
			edges, err := DecodeWire([]byte(o.payload))
			if err != nil {
				continue // rejected frame: the server acks it 400, stream stays in sync
			}
			if re := AppendWire(nil, edges); !bytes.Equal(re, []byte(o.payload)) {
				t.Fatalf("accepted payload is not the canonical encoding of its edges")
			}
		}
	})
}
