package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"
)

// appendTCPFrame encodes one full CWT1 frame (header + CWB1 payload).
func appendTCPFrame(dst []byte, seq uint64, edges []Edge) []byte {
	payload := AppendWire(nil, edges)
	dst = AppendFrameHeader(dst, seq, len(payload))
	return append(dst, payload...)
}

func TestFrameHeaderRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		seq uint64
		n   int
	}{{1, 0}, {1, 12}, {42, 1 << 20}, {^uint64(0), 1}} {
		hdr := AppendFrameHeader(nil, tc.seq, tc.n)
		if len(hdr) != FrameHeaderLen {
			t.Fatalf("header is %d bytes, want %d", len(hdr), FrameHeaderLen)
		}
		seq, n, err := ParseFrameHeader(hdr)
		if err != nil || seq != tc.seq || n != tc.n {
			t.Fatalf("round trip (%d,%d) -> (%d,%d,%v)", tc.seq, tc.n, seq, n, err)
		}
	}
}

func TestFrameHeaderRejectsCorruption(t *testing.T) {
	hdr := AppendFrameHeader(nil, 7, 100)
	for i := range hdr {
		bad := append([]byte{}, hdr...)
		bad[i] ^= 0x40
		if _, _, err := ParseFrameHeader(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	if _, _, err := ParseFrameHeader(hdr[:FrameHeaderLen-1]); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		seq    uint64
		status uint16
	}{{1, AckOK}, {99, AckBad}, {^uint64(0), AckShutdown}} {
		b := AppendAck(nil, tc.seq, tc.status)
		if len(b) != AckLen {
			t.Fatalf("ack is %d bytes, want %d", len(b), AckLen)
		}
		seq, status, err := ParseAck(b)
		if err != nil || seq != tc.seq || status != tc.status {
			t.Fatalf("round trip (%d,%d) -> (%d,%d,%v)", tc.seq, tc.status, seq, status, err)
		}
	}
	bad := AppendAck(nil, 1, AckOK)
	bad[11] = 1
	if _, _, err := ParseAck(bad); err == nil {
		t.Fatal("nonzero reserved byte accepted")
	}
	if _, _, err := ParseAck(bad[:AckLen-1]); err == nil {
		t.Fatal("short ack accepted")
	}
}

// TestFrameScannerStream: a multi-frame stream decodes frame by frame, and
// identically through a one-byte-at-a-time reader — the partial-read
// tolerance a real TCP receive path needs (the kernel hands back whatever
// happens to have arrived, never aligned to frames).
func TestFrameScannerStream(t *testing.T) {
	batches := [][]Edge{
		{{User: 1, Item: 10}, {User: 1, Item: 11}, {User: 2, Item: 10}},
		nil, // empty CWB1 frame is a legal keep-alive
		burstyEdges(200, 3, 7),
	}
	var wire []byte
	for i, b := range batches {
		wire = appendTCPFrame(wire, uint64(i+1), b)
	}

	for name, r := range map[string]io.Reader{
		"whole":    bytes.NewReader(wire),
		"bytewise": iotest.OneByteReader(bytes.NewReader(wire)),
	} {
		sc := NewFrameScanner(r, 0)
		var buf []byte
		for i, want := range batches {
			seq, payload, err := sc.Next(buf)
			if err != nil {
				t.Fatalf("%s: frame %d: %v", name, i, err)
			}
			if seq != uint64(i+1) {
				t.Fatalf("%s: frame %d: seq %d", name, i, seq)
			}
			got, err := DecodeWire(payload)
			if err != nil {
				t.Fatalf("%s: frame %d payload: %v", name, i, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: frame %d: %d edges, want %d", name, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s: frame %d edge %d: %v != %v", name, i, j, got[j], want[j])
				}
			}
			buf = payload[:0] // recycle, as the server's pool does
		}
		if _, _, err := sc.Next(buf); err != io.EOF {
			t.Fatalf("%s: end of stream: %v, want io.EOF", name, err)
		}
	}
}

func TestFrameScannerSequenceDiscipline(t *testing.T) {
	edges := []Edge{{User: 1, Item: 1}}
	for _, seqs := range [][]uint64{{2, 2}, {5, 3}, {0}} {
		var wire []byte
		for _, s := range seqs {
			payload := AppendWire(nil, edges)
			wire = AppendFrameHeader(wire, s, len(payload))
			wire = append(wire, payload...)
		}
		sc := NewFrameScanner(bytes.NewReader(wire), 0)
		var err error
		for range seqs {
			if _, _, err = sc.Next(nil); err != nil {
				break
			}
		}
		if err == nil {
			t.Fatalf("sequence %v accepted", seqs)
		}
	}
	// Gaps are fine: a client may number frames however it likes, as long
	// as numbers only go up (acks stay unambiguous).
	var wire []byte
	wire = appendTCPFrame(wire, 10, edges)
	wire = appendTCPFrame(wire, 1000, edges)
	sc := NewFrameScanner(bytes.NewReader(wire), 0)
	for _, want := range []uint64{10, 1000} {
		seq, _, err := sc.Next(nil)
		if err != nil || seq != want {
			t.Fatalf("gapped seq %d: got %d, %v", want, seq, err)
		}
	}
}

func TestFrameScannerErrors(t *testing.T) {
	edges := []Edge{{User: 1, Item: 1}, {User: 2, Item: 2}}
	frame := appendTCPFrame(nil, 1, edges)

	// Torn header: fatal, not clean EOF.
	sc := NewFrameScanner(bytes.NewReader(frame[:FrameHeaderLen-3]), 0)
	if _, _, err := sc.Next(nil); err == nil || err == io.EOF {
		t.Fatalf("torn header: %v", err)
	}
	// Torn payload: io.ErrUnexpectedEOF wrapped.
	sc = NewFrameScanner(bytes.NewReader(frame[:len(frame)-2]), 0)
	if _, _, err := sc.Next(nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn payload: %v", err)
	}
	// Corrupt header CRC: fatal.
	bad := append([]byte{}, frame...)
	bad[5] ^= 0xff
	sc = NewFrameScanner(bytes.NewReader(bad), 0)
	if _, _, err := sc.Next(nil); err == nil {
		t.Fatal("corrupt header accepted")
	}
	// Oversized payload refused before any allocation or read.
	sc = NewFrameScanner(bytes.NewReader(frame), len(frame)-FrameHeaderLen-1)
	if _, _, err := sc.Next(nil); err == nil {
		t.Fatal("oversized payload accepted")
	}
	// Payload length below the smallest CWB1 frame refused.
	tiny := AppendFrameHeader(nil, 1, WireSize(0)-1)
	sc = NewFrameScanner(bytes.NewReader(append(tiny, make([]byte, 32)...)), 0)
	if _, _, err := sc.Next(nil); err == nil {
		t.Fatal("sub-minimum payload length accepted")
	}
}

// TestFrameScannerBufferReuse: a caller-supplied buffer with enough
// capacity is used in place (the pooled zero-copy path); a too-small one
// is replaced, never overflowed.
func TestFrameScannerBufferReuse(t *testing.T) {
	frame := appendTCPFrame(nil, 1, burstyEdges(64, 2, 3))
	payloadLen := len(frame) - FrameHeaderLen

	big := make([]byte, 0, payloadLen+100)
	sc := NewFrameScanner(bytes.NewReader(frame), 0)
	_, payload, err := sc.Next(big)
	if err != nil {
		t.Fatal(err)
	}
	if &payload[0] != &big[:1][0] {
		t.Fatal("sufficient buffer was not reused")
	}
	sc = NewFrameScanner(bytes.NewReader(frame), 0)
	_, payload, err = sc.Next(make([]byte, 0, 8))
	if err != nil || len(payload) != payloadLen {
		t.Fatalf("small-buffer read: %d bytes, %v", len(payload), err)
	}
}
