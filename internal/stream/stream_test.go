package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

func edges(n int) []Edge {
	out := make([]Edge, n)
	for i := range out {
		out[i] = Edge{User: uint64(i % 17), Item: uint64(i)}
	}
	return out
}

func TestSliceStream(t *testing.T) {
	es := edges(5)
	s := NewSlice(es)
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("collected %d edges", len(got))
	}
	for i := range got {
		if got[i] != es[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatal("exhausted stream must return EOF")
	}
	s.Reset()
	if e, err := s.Next(); err != nil || e != es[0] {
		t.Fatal("reset did not rewind")
	}
}

func TestForEach(t *testing.T) {
	count := 0
	if err := ForEach(NewSlice(edges(10)), func(Edge) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("visited %d edges", count)
	}
}

func TestShuffleDeterministicAndPermutes(t *testing.T) {
	a := edges(100)
	b := edges(100)
	Shuffle(a, 42)
	Shuffle(b, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must shuffle identically")
		}
	}
	c := edges(100)
	Shuffle(c, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical shuffle")
	}
	// Multiset preserved.
	seen := make(map[Edge]int)
	for _, e := range a {
		seen[e]++
	}
	for _, e := range edges(100) {
		seen[e]--
		if seen[e] < 0 {
			t.Fatal("shuffle changed the multiset")
		}
	}
}

func TestInjectDuplicatesRate(t *testing.T) {
	in := edges(20000)
	out := InjectDuplicates(in, 0.15, 7)
	extra := float64(len(out)-len(in)) / float64(len(in))
	if extra < 0.12 || extra > 0.18 {
		t.Fatalf("duplicate rate = %.3f, want ~0.15", extra)
	}
	// Every output edge must exist in the input (duplicates only).
	inSet := make(map[Edge]bool, len(in))
	for _, e := range in {
		inSet[e] = true
	}
	for _, e := range out {
		if !inSet[e] {
			t.Fatal("injector invented an edge")
		}
	}
}

func TestInjectDuplicatesZeroRate(t *testing.T) {
	in := edges(10)
	out := InjectDuplicates(in, 0, 1)
	if len(out) != len(in) {
		t.Fatalf("rate 0 changed length: %d", len(out))
	}
	out[0].User = 999
	if in[0].User == 999 {
		t.Fatal("rate-0 path must copy, not alias")
	}
}

func TestInjectDuplicatesDeterministic(t *testing.T) {
	in := edges(1000)
	a := InjectDuplicates(in, 0.3, 5)
	b := InjectDuplicates(in, 0.3, 5)
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different streams")
		}
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 1000} {
		in := edges(n)
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != n {
			t.Fatalf("reader Len = %d, want %d", r.Len(), n)
		}
		got, err := Collect(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("decoded %d edges, want %d", len(got), n)
		}
		for i := range got {
			if got[i] != in[i] {
				t.Fatalf("edge %d mismatch", i)
			}
		}
	}
}

func TestBinaryCodecLargeIDs(t *testing.T) {
	in := []Edge{{User: 1<<64 - 1, Item: 1<<63 + 12345}}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r)
	if err != nil || len(got) != 1 || got[0] != in[0] {
		t.Fatalf("large ID round trip failed: %v %v", got, err)
	}
}

func TestBinaryCodecRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("JUNKJUNK"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("ED"))); err == nil {
		t.Fatal("short magic accepted")
	}
	// Truncated payload: valid header claiming 5 edges, no data.
	var buf bytes.Buffer
	buf.WriteString("EDG1")
	buf.WriteByte(5)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated edge accepted")
	}
}

func TestBinaryCodecQuick(t *testing.T) {
	f := func(users, items []uint64) bool {
		n := len(users)
		if len(items) < n {
			n = len(items)
		}
		in := make([]Edge, n)
		for i := 0; i < n; i++ {
			in[i] = Edge{User: users[i], Item: items[i]}
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(r)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTextCodecRoundTrip(t *testing.T) {
	in := edges(50)
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("decoded %d edges", len(got))
	}
	for i := range got {
		if got[i] != in[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	input := "# SNAP-style header\n\n1 2\n  \n# comment\n3 4\n"
	got, err := Collect(NewTextReader(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{1, 2}, {3, 4}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v", got)
	}
}

func TestTextReaderErrors(t *testing.T) {
	if _, err := NewTextReader(strings.NewReader("onlyonefield\n")).Next(); err == nil {
		t.Fatal("single field accepted")
	}
	if _, err := NewTextReader(strings.NewReader("a b\n")).Next(); err == nil {
		t.Fatal("non-numeric user accepted")
	}
	if _, err := NewTextReader(strings.NewReader("1 b\n")).Next(); err == nil {
		t.Fatal("non-numeric item accepted")
	}
}

func TestTextReaderTabSeparated(t *testing.T) {
	got, err := Collect(NewTextReader(strings.NewReader("7\t9\n")))
	if err != nil || len(got) != 1 || got[0] != (Edge{7, 9}) {
		t.Fatalf("tab-separated parse failed: %v %v", got, err)
	}
}

func TestShuffleEmptyAndSingle(t *testing.T) {
	Shuffle(nil, 1)
	one := []Edge{{1, 2}}
	Shuffle(one, 1)
	if one[0] != (Edge{1, 2}) {
		t.Fatal("single-element shuffle changed the element")
	}
}

var _ = hashing.NewRNG // keep import if tests above change
