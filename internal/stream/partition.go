package stream

// Shard partitioning. A sharded estimator routes every edge of a user to
// one shard (all of a user's state lives there), so any batched path —
// Sharded.ObserveBatch, the server's ingest pipeline, a cluster router —
// needs the same primitive: split a batch of edges into shard-pure
// sub-batches while preserving, within each shard, the batch's edge order
// (that order-preservation is what keeps batched ingestion bit-identical
// to the per-edge loop). Partitioner is that primitive, hoisted here so it
// is done ONCE per batch, as early as decode time: the server partitions a
// decoded wire batch on the handler goroutine and hands each shard
// executor an already-pure sub-batch, and Sharded.ObserveBatch uses the
// same implementation for the single-call absorb path.
//
// The split is a stable counting sort over maximal runs of consecutive
// same-user edges: one shard-index hash per run (not per edge), one
// memmove-speed copy per run into the grouped buffer. Real streams are
// bursty — a user's edges arrive in clumps — so runs amortize most of the
// routing cost away.

import (
	"fmt"
	"sync"
)

// Partitioner splits edge batches into shard-pure sub-batches for a fixed
// shard count and routing function. It is safe for concurrent use: each
// Split draws its scratch state from an internal pool, so concurrent
// batches neither allocate per call (steady state) nor share buffers.
type Partitioner struct {
	shards int
	index  func(user uint64) int
	pool   sync.Pool // *Partitioned
}

// NewPartitioner returns a partitioner over shards sub-streams; index must
// map a user to its shard in [0, shards) and be pure (same user, same
// shard — determinism of every downstream sub-stream depends on it). It
// panics if shards <= 0 or index is nil.
func NewPartitioner(shards int, index func(user uint64) int) *Partitioner {
	if shards <= 0 {
		panic("stream: NewPartitioner requires shards > 0")
	}
	if index == nil {
		panic("stream: NewPartitioner requires an index function")
	}
	p := &Partitioner{shards: shards, index: index}
	p.pool.New = func() any {
		return &Partitioned{p: p, offsets: make([]int, shards+1)}
	}
	return p
}

// NumShards returns the fixed shard count.
func (p *Partitioner) NumShards() int { return p.shards }

// partRun is one maximal run of consecutive same-user edges; the whole run
// routes to one shard, so the shard hash is computed once per run.
type partRun struct {
	run   []Edge
	shard int
}

// Partitioned is one batch split into shard-pure sub-batches. Sub-batches
// are subslices of a single grouped buffer owned by the Partitioned, so
// the source batch is free for reuse (or, for a zero-copy wire decode, its
// request body free for release) as soon as Split returns — except in the
// one-shard case, where grouping is the identity and the sub-batch aliases
// the source batch to skip the copy.
//
// Call Release when every sub-batch has been absorbed to return the
// buffers to the pool; using any sub-batch after Release is a data race
// with the pool's next Split.
type Partitioned struct {
	p       *Partitioner
	grouped []Edge
	// offsets[t] is the end of shard t's sub-batch in grouped (shard t
	// starts where shard t-1 ends; shard 0 at 0).
	offsets []int
	runs    []partRun // scratch; cleared on Release (runs alias the source)
	aliased bool      // grouped aliases the source batch (one-shard identity)
}

// Split partitions edges by shard. The grouping is a stable counting sort:
// within each shard's sub-batch the edges keep their batch order, so
// feeding every sub-batch (in any shard order, from any goroutine) yields
// per-shard sub-streams bit-identical to routing the batch edge by edge.
func (p *Partitioner) Split(edges []Edge) *Partitioned {
	b := p.pool.Get().(*Partitioned)
	n := len(edges)
	if p.shards == 1 {
		b.aliased = true
		b.grouped = edges
		b.offsets[0] = n
		return b
	}
	runs := b.runs[:0]
	offsets := b.offsets
	for i := range offsets {
		offsets[i] = 0
	}
	ForEachRun(edges, func(u uint64, run []Edge) {
		t := p.index(u)
		runs = append(runs, partRun{run: run, shard: t})
		offsets[t+1] += len(run)
	})
	// Prefix sums turn per-shard counts (offsets[t+1]) into start offsets
	// (offsets[t]); the scatter then advances them to end offsets, which is
	// exactly the layout Shard reads.
	for t := 1; t < len(offsets); t++ {
		offsets[t] += offsets[t-1]
	}
	if cap(b.grouped) < n {
		b.grouped = make([]Edge, n)
	}
	b.grouped = b.grouped[:n]
	for _, r := range runs {
		off := offsets[r.shard]
		copy(b.grouped[off:], r.run)
		offsets[r.shard] = off + len(r.run)
	}
	b.runs = runs
	return b
}

// Shard returns shard t's sub-batch (possibly empty): the batch's edges
// routed to t, in batch order. It panics on a shard index the partitioner
// was not built for.
func (b *Partitioned) Shard(t int) []Edge {
	if t < 0 || t >= b.p.shards {
		panic(fmt.Sprintf("stream: shard %d out of range [0,%d)", t, b.p.shards))
	}
	lo := 0
	if t > 0 {
		lo = b.offsets[t-1]
	}
	return b.grouped[lo:b.offsets[t]]
}

// Len returns the total edge count across all sub-batches.
func (b *Partitioned) Len() int { return b.offsets[b.p.shards-1] }

// NumShards returns the partitioner's shard count.
func (b *Partitioned) NumShards() int { return b.p.shards }

// Release returns the split's buffers to the partitioner's pool. The
// caller must be done with every sub-batch.
func (b *Partitioned) Release() {
	// Zero the run spans before pooling: they alias the source batch, and
	// stale entries past the next Split's run count would keep that whole
	// array reachable from the pool. Same for the one-shard alias.
	clear(b.runs)
	b.runs = b.runs[:0]
	if b.aliased {
		b.aliased = false
		b.grouped = nil
	}
	b.p.pool.Put(b)
}
