package stream

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

func wireEdges(n int) []Edge {
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{User: uint64(i) * 7919, Item: uint64(i)*104729 + 1}
	}
	return edges
}

func TestWireRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 1024} {
		edges := wireEdges(n)
		frame := AppendWire(nil, edges)
		if len(frame) != WireSize(n) {
			t.Fatalf("n=%d: frame is %d bytes, WireSize says %d", n, len(frame), WireSize(n))
		}
		got, err := DecodeWire(frame)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d edges", n, len(got))
		}
		for i := range got {
			if got[i] != edges[i] {
				t.Fatalf("n=%d: edge %d: got %v want %v", n, i, got[i], edges[i])
			}
		}
	}
}

func TestWireAppendReusesBuffer(t *testing.T) {
	a, b := wireEdges(3), wireEdges(5)[3:]
	buf := AppendWire(nil, a)
	frameALen := len(buf)
	buf = AppendWire(buf, b)
	gotA, err := DecodeWire(buf[:frameALen])
	if err != nil {
		t.Fatalf("first frame: %v", err)
	}
	gotB, err := DecodeWire(buf[frameALen:])
	if err != nil {
		t.Fatalf("second frame: %v", err)
	}
	if len(gotA) != 3 || len(gotB) != 2 {
		t.Fatalf("got %d and %d edges, want 3 and 2", len(gotA), len(gotB))
	}
	if gotB[1] != b[1] {
		t.Fatalf("second frame edge 1: got %v want %v", gotB[1], b[1])
	}
}

func TestWireRejectsCorruption(t *testing.T) {
	edges := wireEdges(4)
	frame := AppendWire(nil, edges)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"short", func(f []byte) []byte { return f[:8] }, "too short"},
		{"bad magic", func(f []byte) []byte { f[0] = 'X'; return f }, "bad magic"},
		{"flipped payload bit", func(f []byte) []byte { f[20] ^= 1; return f }, "checksum"},
		{"flipped crc", func(f []byte) []byte { f[len(f)-1] ^= 1; return f }, "checksum"},
		{"truncated pair", func(f []byte) []byte {
			// Drop one pair but re-seal the CRC: only the count/length
			// check can catch it.
			return reseal(f[:len(f)-wireTrailerLen-wirePairLen])
		}, "pairs need"},
		{"trailing garbage", func(f []byte) []byte { return append(f, 0xAA) }, ""},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), frame...)
		mutated := tc.mutate(buf)
		if _, err := DecodeWire(mutated); err == nil {
			t.Errorf("%s: decode accepted a corrupt frame", tc.name)
		} else if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
	if _, err := DecodeWire(frame); err != nil {
		t.Fatalf("pristine frame no longer decodes: %v", err)
	}
}

func TestWireCountLengthMismatch(t *testing.T) {
	// A frame whose count field disagrees with its actual payload, with a
	// valid CRC: only the count/length check can catch it.
	frame := AppendWire(nil, wireEdges(2))
	frame[4] = 3 // claim 3 pairs
	if _, err := DecodeWire(reseal(frame[:len(frame)-wireTrailerLen])); err == nil || !strings.Contains(err.Error(), "pairs need") {
		t.Fatalf("want count/length mismatch error, got %v", err)
	}
}

// reseal copies a frame body and appends a freshly computed CRC trailer, so
// corruption tests can forge frames that pass the checksum.
func reseal(body []byte) []byte {
	out := append([]byte(nil), body...)
	return binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

func TestWireMisalignedFallback(t *testing.T) {
	edges := wireEdges(9)
	frame := AppendWire(nil, edges)
	// Shift the frame by one byte so the pair payload cannot be 8-aligned;
	// the decoder must fall back to the copying loop and still be correct.
	shifted := make([]byte, len(frame)+1)
	copy(shifted[1:], frame)
	got, err := DecodeWire(shifted[1:])
	if err != nil {
		t.Fatalf("decode misaligned: %v", err)
	}
	for i := range got {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: got %v want %v", i, got[i], edges[i])
		}
	}
}

func TestParseTextBatchMatchesWire(t *testing.T) {
	edges := wireEdges(50)
	var sb strings.Builder
	sb.WriteString("# comment\n\n")
	WriteText(&sb, edges)
	fromText, err := ParseTextBatch(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("text: %v", err)
	}
	fromWire, err := DecodeWire(AppendWire(nil, edges))
	if err != nil {
		t.Fatalf("wire: %v", err)
	}
	if !bytes.Equal(AppendWire(nil, fromText), AppendWire(nil, fromWire)) {
		t.Fatal("text and wire decodes of the same batch disagree")
	}
}

func TestParseTextBatchStrict(t *testing.T) {
	if _, err := ParseTextBatch(strings.NewReader("1 2 3\n")); err == nil {
		t.Fatal("three-field line accepted")
	}
	if _, err := ParseTextBatch(strings.NewReader("a 2\n")); err == nil {
		t.Fatal("non-numeric user accepted")
	}
}
