// Package stream defines the graph-stream model of the paper (§II): a
// sequence of user-item edges e(1), e(2), ... in which the same edge may
// occur multiple times. It provides in-memory and file-backed streams, a
// compact binary codec for replaying datasets, and deterministic stream
// transforms (shuffling, duplicate injection) used by the workload
// generators.
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/hashing"
)

// Edge is one user-item pair e = (s, d). In a bipartite stream User and Item
// live in separate ID spaces; for a regular graph stream both are node IDs.
type Edge struct {
	User uint64
	Item uint64
}

// ForEachRun calls fn once per maximal run of consecutive edges sharing a
// user, passing the run as a subslice of edges (not a copy). It is the run
// segmentation every batched ingestion path hoists per-user work over; the
// per-run call overhead is negligible next to per-edge hashing.
func ForEachRun(edges []Edge, fn func(user uint64, run []Edge)) {
	for i, n := 0, len(edges); i < n; {
		user := edges[i].User
		j := i + 1
		for j < n && edges[j].User == user {
			j++
		}
		fn(user, edges[i:j])
		i = j
	}
}

// Stream is a forward-only edge iterator. Next returns io.EOF after the last
// edge. Implementations need not be safe for concurrent use.
type Stream interface {
	Next() (Edge, error)
}

// Slice is an in-memory stream over a slice of edges.
type Slice struct {
	edges []Edge
	pos   int
}

// NewSlice returns a stream over edges (not copied).
func NewSlice(edges []Edge) *Slice { return &Slice{edges: edges} }

// Next implements Stream.
func (s *Slice) Next() (Edge, error) {
	if s.pos >= len(s.edges) {
		return Edge{}, io.EOF
	}
	e := s.edges[s.pos]
	s.pos++
	return e, nil
}

// Reset rewinds the stream to the first edge.
func (s *Slice) Reset() { s.pos = 0 }

// Len returns the total number of edges.
func (s *Slice) Len() int { return len(s.edges) }

// Collect drains a stream into a slice.
func Collect(s Stream) ([]Edge, error) {
	var out []Edge
	for {
		e, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// ForEach applies fn to every edge of s.
func ForEach(s Stream, fn func(Edge)) error {
	for {
		e, err := s.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		fn(e)
	}
}

// Shuffle permutes edges in place with a deterministic seeded PRNG. Arrival
// order is the paper's time axis, so shuffling models users interleaving.
func Shuffle(edges []Edge, seed uint64) {
	rng := hashing.NewRNG(seed)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
}

// InjectDuplicates returns a new edge slice in which each input edge is
// followed by Poisson(rate) extra copies, modelling the paper's observation
// that "an edge in Γ may appear more than once". The result preserves input
// order (shuffle afterwards to interleave).
func InjectDuplicates(edges []Edge, rate float64, seed uint64) []Edge {
	if rate <= 0 {
		out := make([]Edge, len(edges))
		copy(out, edges)
		return out
	}
	rng := hashing.NewRNG(seed)
	out := make([]Edge, 0, int(float64(len(edges))*(1+rate))+16)
	for _, e := range edges {
		out = append(out, e)
		for k := rng.Poisson(rate); k > 0; k-- {
			out = append(out, e)
		}
	}
	return out
}

// ---- binary codec ----
//
// Format: magic "EDG1", then varint edge count, then per edge two uvarints
// (user, item). Compact and fast enough to replay tens of millions of edges.

const codecMagic = "EDG1"

// Write serializes edges to w.
func Write(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(edges)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	for _, e := range edges {
		n = binary.PutUvarint(buf[:], e.User)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], e.Item)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Reader streams edges from a serialized stream without loading them all.
type Reader struct {
	br        *bufio.Reader
	remaining uint64
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("stream: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("stream: bad magic %q", magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: reading count: %w", err)
	}
	return &Reader{br: br, remaining: count}, nil
}

// Len returns the number of edges not yet read.
func (r *Reader) Len() int { return int(r.remaining) }

// Next implements Stream.
func (r *Reader) Next() (Edge, error) {
	if r.remaining == 0 {
		return Edge{}, io.EOF
	}
	u, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Edge{}, fmt.Errorf("stream: truncated edge: %w", err)
	}
	it, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Edge{}, fmt.Errorf("stream: truncated edge: %w", err)
	}
	r.remaining--
	return Edge{User: u, Item: it}, nil
}

// ---- text codec ----

// WriteText writes one "user item" pair per line — the interchange format of
// cmd/spreaderwatch, chosen so real datasets (e.g. SNAP edge lists) can be
// piped in directly.
func WriteText(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.User, e.Item); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TextReader streams whitespace-separated "user item" lines. Blank lines and
// lines starting with '#' are skipped (SNAP datasets carry such comments).
type TextReader struct {
	sc   *bufio.Scanner
	line int
}

// NewTextReader returns a streaming text reader over r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &TextReader{sc: sc}
}

// Next implements Stream.
func (t *TextReader) Next() (Edge, error) {
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return Edge{}, fmt.Errorf("stream: line %d: want 2 fields, have %d", t.line, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return Edge{}, fmt.Errorf("stream: line %d: bad user: %w", t.line, err)
		}
		it, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return Edge{}, fmt.Errorf("stream: line %d: bad item: %w", t.line, err)
		}
		return Edge{User: u, Item: it}, nil
	}
	if err := t.sc.Err(); err != nil {
		return Edge{}, err
	}
	return Edge{}, io.EOF
}
