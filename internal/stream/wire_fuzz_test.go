package stream

import (
	"testing"
)

// FuzzDecodeWire hardens the CWB1 frame decoder against hostile or damaged
// payloads: for arbitrary input bytes, DecodeWire must either reject with an
// error and nil edges, or accept — and an accepted frame must decode to the
// same edges through the copying slow path as through the zero-copy aliasing
// fast path, and must be the byte-for-byte canonical encoding of those edges
// (CWB1 has exactly one encoding per batch: fixed-width fields, mandated
// endianness, no padding — so accept implies re-encode identity).
//
// The corpus is seeded with genuine AppendWire frames (empty, single-edge,
// bursty) plus truncations, CRC corruptions, count-field inflations, and
// magic flips of them.
func FuzzDecodeWire(f *testing.F) {
	seedBatches := [][]Edge{
		nil,
		{{User: 1, Item: 1}},
		{{User: ^uint64(0), Item: ^uint64(0)}, {User: 0, Item: 0}},
		burstyEdges(100, 17, 5),
	}
	for _, edges := range seedBatches {
		frame := AppendWire(nil, edges)
		f.Add(frame) // pristine
		f.Add(frame[:len(frame)-1])
		f.Add(frame[:len(frame)/2])
		f.Add(frame[:wireHeaderLen]) // header only, no trailer
		crcFlip := append([]byte{}, frame...)
		crcFlip[len(crcFlip)-1] ^= 0xff
		f.Add(crcFlip)
		payloadFlip := append([]byte{}, frame...)
		payloadFlip[len(payloadFlip)/2] ^= 0x01
		f.Add(payloadFlip)
		magicFlip := append([]byte{}, frame...)
		magicFlip[3] ^= 0x01 // "CWB1" -> "CWB0"
		f.Add(magicFlip)
		// Count field lies: claims more pairs than the body holds.
		countLie := append([]byte{}, frame...)
		countLie[4], countLie[5], countLie[6], countLie[7] = 0xff, 0xff, 0xff, 0xff
		f.Add(countLie)
		// One stray byte appended after the trailer.
		f.Add(append(append([]byte{}, frame...), 0x00))
		// One extra pair of garbage between payload and trailer.
		padded := append([]byte{}, frame[:len(frame)-wireTrailerLen]...)
		padded = append(padded, make([]byte, wirePairLen)...)
		f.Add(append(padded, frame[len(frame)-wireTrailerLen:]...))
	}
	f.Add([]byte{})
	f.Add([]byte("CWB1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := DecodeWire(data)
		// Force the copying decode path too: shift the frame by one byte so
		// the pair payload cannot be 8-byte aligned. Alignment is an
		// implementation detail — accept/reject and the decoded edges must
		// not depend on it.
		shifted := append(make([]byte, 1, 1+len(data)), data...)
		edges2, err2 := DecodeWire(shifted[1:])
		if (err == nil) != (err2 == nil) {
			t.Fatalf("alignment changed the verdict: aligned err=%v, shifted err=%v", err, err2)
		}
		if err != nil {
			if edges != nil {
				t.Fatalf("rejected frame returned edges (err %v)", err)
			}
			return
		}
		if len(edges) != len(edges2) {
			t.Fatalf("alignment changed edge count: %d vs %d", len(edges), len(edges2))
		}
		for i := range edges {
			if edges[i] != edges2[i] {
				t.Fatalf("edge %d: aliased decode %v != copied decode %v", i, edges[i], edges2[i])
			}
		}
		// Canonical-encoding identity: re-encoding an accepted frame's edges
		// must reproduce the input bytes exactly.
		out := AppendWire(nil, edges)
		if len(out) != len(data) {
			t.Fatalf("re-encode length %d != input length %d", len(out), len(data))
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("re-encode diverges at byte %d", i)
			}
		}
	})
}
