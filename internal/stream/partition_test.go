package stream

import (
	"testing"
)

// refSplit is the obviously correct partitioner: route edge by edge,
// appending in batch order.
func refSplit(edges []Edge, shards int, index func(uint64) int) [][]Edge {
	out := make([][]Edge, shards)
	for _, e := range edges {
		t := index(e.User)
		out[t] = append(out[t], e)
	}
	return out
}

func burstyEdges(n int, users uint64, seed uint64) []Edge {
	// Runs of 1..8 edges per user, like real clumpy streams.
	edges := make([]Edge, 0, n)
	state := seed
	next := func() uint64 { state = state*6364136223846793005 + 1442695040888963407; return state }
	for len(edges) < n {
		u := next()%users + 1
		run := int(next()%8) + 1
		for r := 0; r < run && len(edges) < n; r++ {
			edges = append(edges, Edge{User: u, Item: next()})
		}
	}
	return edges
}

// TestPartitionerMatchesEdgeByEdgeRouting: the counting-sort split must
// produce, for every shard, exactly the edges the per-edge router would,
// in exactly the batch order — that order is what downstream bit-identical
// determinism rests on.
func TestPartitionerMatchesEdgeByEdgeRouting(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8, 16} {
		index := func(u uint64) int { return int(u % uint64(shards)) }
		p := NewPartitioner(shards, index)
		for _, n := range []int{0, 1, 7, 1000, 4096} {
			edges := burstyEdges(n, 97, uint64(n)+3)
			want := refSplit(edges, shards, index)
			b := p.Split(edges)
			if b.NumShards() != shards {
				t.Fatalf("NumShards %d, want %d", b.NumShards(), shards)
			}
			if b.Len() != n {
				t.Fatalf("shards=%d n=%d: Len %d", shards, n, b.Len())
			}
			for s := 0; s < shards; s++ {
				got := b.Shard(s)
				if len(got) != len(want[s]) {
					t.Fatalf("shards=%d n=%d shard %d: %d edges, want %d", shards, n, s, len(got), len(want[s]))
				}
				for i := range got {
					if got[i] != want[s][i] {
						t.Fatalf("shards=%d n=%d shard %d edge %d: %v, want %v", shards, n, s, i, got[i], want[s][i])
					}
					if index(got[i].User) != s {
						t.Fatalf("shard %d holds edge of shard %d", s, index(got[i].User))
					}
				}
			}
			b.Release()
		}
	}
}

// TestPartitionerSingleShardAliases: with one shard grouping is the
// identity, and the sub-batch must alias the input (no copy) — the server
// keeps a zero-copy wire decode zero-copy all the way to the executor.
func TestPartitionerSingleShardAliases(t *testing.T) {
	p := NewPartitioner(1, func(uint64) int { return 0 })
	edges := burstyEdges(100, 10, 1)
	b := p.Split(edges)
	got := b.Shard(0)
	if len(got) != len(edges) || &got[0] != &edges[0] {
		t.Fatal("one-shard split must alias the source batch")
	}
	b.Release()
	// The pool must not hand the aliased slice to the next Split.
	b2 := p.Split(nil)
	if b2.Len() != 0 {
		t.Fatalf("empty split reports %d edges", b2.Len())
	}
	b2.Release()
}

// TestPartitionerSourceFreeAfterSplit: with >1 shard the sub-batches are
// copies, so mutating (or reusing) the source after Split must not change
// them — that property is what lets the server release a wire request body
// the moment Split returns.
func TestPartitionerSourceFreeAfterSplit(t *testing.T) {
	p := NewPartitioner(4, func(u uint64) int { return int(u % 4) })
	edges := burstyEdges(500, 31, 9)
	index := func(u uint64) int { return int(u % 4) }
	want := refSplit(edges, 4, index)
	b := p.Split(edges)
	for i := range edges {
		edges[i] = Edge{User: ^uint64(0), Item: ^uint64(0)} // scribble
	}
	for s := 0; s < 4; s++ {
		got := b.Shard(s)
		for i := range got {
			if got[i] != want[s][i] {
				t.Fatalf("shard %d edge %d changed when the source was scribbled", s, i)
			}
		}
	}
	b.Release()
}

// TestPartitionerReuse: Release/Split cycles must keep producing correct
// output (pooled scratch fully reset between batches).
func TestPartitionerReuse(t *testing.T) {
	shards := 5
	index := func(u uint64) int { return int(u % uint64(shards)) }
	p := NewPartitioner(shards, index)
	for round := 0; round < 50; round++ {
		edges := burstyEdges(10+round*37, 11, uint64(round))
		want := refSplit(edges, shards, index)
		b := p.Split(edges)
		for s := 0; s < shards; s++ {
			got := b.Shard(s)
			if len(got) != len(want[s]) {
				t.Fatalf("round %d shard %d: %d edges, want %d", round, s, len(got), len(want[s]))
			}
			for i := range got {
				if got[i] != want[s][i] {
					t.Fatalf("round %d shard %d edge %d mismatch", round, s, i)
				}
			}
		}
		b.Release()
	}
}

func TestPartitionerPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero shards", func() { NewPartitioner(0, func(uint64) int { return 0 }) })
	mustPanic("nil index", func() { NewPartitioner(2, nil) })
	p := NewPartitioner(2, func(u uint64) int { return int(u % 2) })
	b := p.Split([]Edge{{User: 1, Item: 1}})
	defer b.Release()
	mustPanic("shard out of range", func() { b.Shard(2) })
	mustPanic("negative shard", func() { b.Shard(-1) })
}
