package stream

// The binary batch wire format ("CWB1") used by POST /ingest: the text line
// protocol costs a decimal parse and a slice append per edge, which at
// service ingest rates dominates the sketch work itself. A CWB1 frame is a
// length-prefixed array of fixed-width pairs that a little-endian host
// decodes zero-copy — the payload bytes ARE the []Edge — behind the same
// CRC framing discipline as the spool envelopes ("CSP1"):
//
//	offset  size  field
//	0       4     magic "CWB1"
//	4       4     pair count n, uint32 little-endian
//	8       16*n  pairs: user uint64 LE, item uint64 LE
//	8+16*n  4     CRC-32 (IEEE) over all preceding bytes, big-endian
//
// Little-endian payload because every deployment target is; the CRC trailer
// is big-endian to match the spool envelopes byte for byte in spirit and
// tooling. The frame is self-delimiting, so it can later be streamed
// back-to-back over one connection without HTTP framing.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
	"unsafe"
)

// WireContentType is the Content-Type that selects the binary batch
// protocol on POST /ingest; any other value gets the text line protocol.
const WireContentType = "application/x-streamcard-batch"

const (
	wireMagic      = "CWB1"
	wireHeaderLen  = 8 // magic + pair count
	wireTrailerLen = 4 // CRC-32
	wirePairLen    = PairBytes
)

// PairBytes is the fixed wire width of one edge: user uint64 LE, item
// uint64 LE. Shared by the CWB1 ingest frame and the WAL record format
// (internal/wal), which reuse the same pair payload encoding.
const PairBytes = 16

// WireSize returns the encoded size of a CWB1 frame holding n edges.
func WireSize(n int) int { return wireHeaderLen + n*wirePairLen + wireTrailerLen }

// hostLittleEndian gates the zero-copy fast paths: on a little-endian host
// the in-memory []Edge layout and the wire pair layout are the same bytes.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// AppendWire appends the CWB1 encoding of edges to dst and returns the
// extended slice (append-style, so encoders can reuse one buffer across
// batches). On little-endian hosts the pair payload is one bulk copy of the
// edge memory.
func AppendWire(dst []byte, edges []Edge) []byte {
	start := len(dst)
	dst = append(dst, wireMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(edges)))
	dst = AppendPairs(dst, edges)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// AppendPairs appends the fixed-width pair payload of edges (PairBytes per
// edge, no framing) to dst. On little-endian hosts the payload is one bulk
// copy of the edge memory. This is the shared payload codec behind both the
// CWB1 ingest frame and the WAL batch record.
func AppendPairs(dst []byte, edges []Edge) []byte {
	if hostLittleEndian && len(edges) > 0 {
		pairs := unsafe.Slice((*byte)(unsafe.Pointer(&edges[0])), len(edges)*PairBytes)
		return append(dst, pairs...)
	}
	for _, e := range edges {
		dst = binary.LittleEndian.AppendUint64(dst, e.User)
		dst = binary.LittleEndian.AppendUint64(dst, e.Item)
	}
	return dst
}

// DecodePairs decodes n fixed-width pairs from the front of data (which
// must hold at least n*PairBytes bytes). Like DecodeWire, on little-endian
// hosts with an aligned payload the returned edges ALIAS data — the caller
// must neither modify data while the edges are in use nor modify the edges;
// misaligned or big-endian decodes fall back to a copying loop.
func DecodePairs(data []byte, n int) ([]Edge, error) {
	if n == 0 {
		return nil, nil
	}
	if len(data) < n*PairBytes {
		return nil, fmt.Errorf("wire: %d pairs need %d bytes, have %d", n, n*PairBytes, len(data))
	}
	pairs := data[:n*PairBytes]
	if hostLittleEndian && uintptr(unsafe.Pointer(&pairs[0]))%unsafe.Alignof(Edge{}) == 0 {
		return unsafe.Slice((*Edge)(unsafe.Pointer(&pairs[0])), n), nil
	}
	edges := make([]Edge, n)
	for i := range edges {
		off := i * PairBytes
		edges[i].User = binary.LittleEndian.Uint64(pairs[off:])
		edges[i].Item = binary.LittleEndian.Uint64(pairs[off+8:])
	}
	return edges, nil
}

// DecodeWire decodes one CWB1 frame. On little-endian hosts with an aligned
// payload the returned edges ALIAS data — no copy is made — so the caller
// must neither modify data while the edges are in use nor modify the edges;
// misaligned or big-endian decodes fall back to a copying loop. A frame
// that fails validation (short, wrong magic, CRC mismatch, count
// disagreeing with length, trailing bytes) returns a descriptive error and
// nil edges; the frame is rejected as a unit, mirroring the text protocol's
// atomic-batch contract.
func DecodeWire(data []byte) ([]Edge, error) {
	if len(data) < wireHeaderLen+wireTrailerLen {
		return nil, fmt.Errorf("wire: frame too short (%d bytes)", len(data))
	}
	if string(data[:4]) != wireMagic {
		return nil, fmt.Errorf("wire: bad magic %q", data[:4])
	}
	body, trailer := data[:len(data)-wireTrailerLen], data[len(data)-wireTrailerLen:]
	if sum := crc32.ChecksumIEEE(body); sum != binary.BigEndian.Uint32(trailer) {
		return nil, fmt.Errorf("wire: checksum mismatch")
	}
	n := int(binary.LittleEndian.Uint32(data[4:wireHeaderLen]))
	if want := wireHeaderLen + n*wirePairLen; len(body) != want {
		return nil, fmt.Errorf("wire: %d pairs need %d body bytes, have %d", n, want, len(body))
	}
	return DecodePairs(body[wireHeaderLen:], n)
}

// ParseTextBatch decodes the ingest text line protocol strictly: exactly
// two decimal uint64 fields per line, blank lines and '#' comments skipped.
// This is deliberately stricter than TextReader, which tolerates trailing
// columns for piping SNAP-style files through the CLIs: a service must
// refuse a batch whose lines carry extra fields rather than silently
// misread, say, CSV-ish "user item count" rows as bare pairs. Read errors
// from r (including http.MaxBytesError) propagate unwrapped.
func ParseTextBatch(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want exactly 2 fields, have %d", line, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad user %q", line, fields[0])
		}
		it, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad item %q", line, fields[1])
		}
		edges = append(edges, Edge{User: u, Item: it})
	}
	return edges, sc.Err()
}
