package stream

// The persistent TCP ingest transport ("CWT1"): HTTP gives every batch its
// own request/response round trip, so at service rates the wire path pays
// header parsing, handler dispatch, and an ack's worth of latency per
// batch — constant costs the CWB1 binary frame already exposed as the
// bottleneck. CWT1 removes them: one long-lived connection carries a
// stream of sequenced, length-prefixed CWB1 frames, and the server returns
// compact per-frame acks out-of-band on the same connection, so a client
// keeps many frames in flight (pipelining) and ack latency never
// serializes ingest.
//
// Connection preamble (client -> server, once, immediately after connect):
//
//	offset  size  field
//	0       4     magic "CWT1"
//
// Frame (client -> server, repeated):
//
//	offset  size  field
//	0       8     frame sequence number, uint64 LE (strictly increasing, >= 1)
//	8       4     payload length, uint32 LE (size of the CWB1 frame below)
//	12      4     CRC-32 (IEEE) over bytes 0..11, big-endian
//	16      ...   payload: one CWB1 frame, verbatim (AppendWire/DecodeWire)
//
// Ack (server -> client, one per frame, in frame order):
//
//	offset  size  field
//	0       8     frame sequence number, uint64 LE
//	8       2     status, uint16 LE (HTTP-style: 200 accepted, 400 bad
//	              frame, 500 log failure, 503 server closing)
//	10      2     reserved, zero
//
// Error discipline, chosen so a damaged stream can never be mis-acked: the
// header carries its own CRC, so a corrupt header is detected before its
// length field can de-frame the stream — the connection closes (framing is
// lost; there is no reliable resync point). A frame whose HEADER is valid
// but whose CWB1 payload fails validation is rejected alone — acked with
// status 400 and skipped — because the header's length still delimits it
// exactly; the stream stays in sync and later frames are unaffected,
// mirroring the HTTP path's atomic-batch 400. Sequence numbers must be
// strictly increasing; a violation closes the connection (a client that
// reuses a sequence could otherwise mistake one frame's ack for another's).
//
// The same framing — sequenced, CRC-delimited, self-describing records on
// a long-lived connection — is the planned WAL replication stream: a
// replica tails the primary's log over exactly this kind of transport.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// TCPMagic is the 4-byte connection preamble a CWT1 client sends before
// its first frame; the server refuses connections that open with anything
// else (a stray HTTP request, say) before reading any frame.
const TCPMagic = "CWT1"

const (
	// FrameHeaderLen is the fixed CWT1 frame header size: seq (8) +
	// payload length (4) + header CRC (4).
	FrameHeaderLen = 16
	// AckLen is the fixed CWT1 ack record size: seq (8) + status (2) +
	// reserved (2).
	AckLen = 12
)

// CWT1 ack status codes, HTTP-style so operators read them unaided.
const (
	AckOK       = 200 // frame accepted: appended to the WAL (if on) and queued
	AckBad      = 400 // CWB1 payload failed validation; frame skipped
	AckError    = 500 // server could not log the frame; nothing ingested
	AckShutdown = 503 // server closing; frame not ingested
)

// AppendFrameHeader appends the 16-byte CWT1 frame header for a payload of
// payloadLen bytes to dst and returns the extended slice.
func AppendFrameHeader(dst []byte, seq uint64, payloadLen int) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// ParseFrameHeader decodes a 16-byte CWT1 frame header. A CRC mismatch
// means the 12 bytes it covers — including the length that delimits the
// stream — cannot be trusted, so the caller must close the connection
// rather than resync.
func ParseFrameHeader(b []byte) (seq uint64, payloadLen int, err error) {
	if len(b) < FrameHeaderLen {
		return 0, 0, fmt.Errorf("tcpwire: frame header needs %d bytes, have %d", FrameHeaderLen, len(b))
	}
	if sum := crc32.ChecksumIEEE(b[:12]); sum != binary.BigEndian.Uint32(b[12:FrameHeaderLen]) {
		return 0, 0, fmt.Errorf("tcpwire: frame header checksum mismatch")
	}
	return binary.LittleEndian.Uint64(b), int(binary.LittleEndian.Uint32(b[8:12])), nil
}

// AppendAck appends the 12-byte CWT1 ack record to dst and returns the
// extended slice.
func AppendAck(dst []byte, seq uint64, status uint16) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint16(dst, status)
	return append(dst, 0, 0)
}

// ParseAck decodes a 12-byte CWT1 ack record. Nonzero reserved bytes are
// an error: they would otherwise become impossible to claim later.
func ParseAck(b []byte) (seq uint64, status uint16, err error) {
	if len(b) < AckLen {
		return 0, 0, fmt.Errorf("tcpwire: ack needs %d bytes, have %d", AckLen, len(b))
	}
	if b[10] != 0 || b[11] != 0 {
		return 0, 0, fmt.Errorf("tcpwire: ack reserved bytes nonzero")
	}
	return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint16(b[8:10]), nil
}

// FrameScanner reads CWT1 frames off a connection's byte stream. It
// tolerates arbitrary read fragmentation (a frame split across any number
// of reads decodes identically to one arriving whole — io.ReadFull
// reassembles), enforces the strictly-increasing sequence discipline, and
// bounds payload size so a hostile length field cannot make the server
// allocate unboundedly. It does NOT validate the CWB1 payload itself: the
// caller decodes it (DecodeWire) and decides between rejecting the one
// frame (the header delimited it correctly either way) and closing.
type FrameScanner struct {
	r          io.Reader
	maxPayload int
	lastSeq    uint64
	hdr        [FrameHeaderLen]byte
}

// NewFrameScanner returns a scanner over r, rejecting frames whose payload
// exceeds maxPayload bytes (<= 0 means no bound). r should already be
// buffered if small reads matter; the scanner adds no buffering of its own.
func NewFrameScanner(r io.Reader, maxPayload int) *FrameScanner {
	return &FrameScanner{r: r, maxPayload: maxPayload}
}

// Next reads one frame, returning its sequence number and payload. The
// payload is read into buf when buf's capacity suffices (so callers can
// recycle buffers across frames); otherwise a new slice is allocated. A
// clean EOF at a frame boundary returns io.EOF; EOF mid-frame returns
// io.ErrUnexpectedEOF. Any other error — header CRC, sequence violation,
// oversized payload — is fatal to the stream: framing can no longer be
// trusted, and the caller must close the connection.
func (sc *FrameScanner) Next(buf []byte) (seq uint64, payload []byte, err error) {
	if _, err := io.ReadFull(sc.r, sc.hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF // clean close, exactly between frames
		}
		// A partial header (io.ErrUnexpectedEOF) is a torn stream, like any
		// other read error.
		return 0, nil, fmt.Errorf("tcpwire: reading frame header: %w", err)
	}
	seq, n, err := ParseFrameHeader(sc.hdr[:])
	if err != nil {
		return 0, nil, err
	}
	if seq <= sc.lastSeq {
		return 0, nil, fmt.Errorf("tcpwire: frame seq %d not above %d", seq, sc.lastSeq)
	}
	if n < WireSize(0) {
		return 0, nil, fmt.Errorf("tcpwire: frame payload %d bytes is below a CWB1 frame's minimum %d", n, WireSize(0))
	}
	if sc.maxPayload > 0 && n > sc.maxPayload {
		return 0, nil, fmt.Errorf("tcpwire: frame payload %d bytes exceeds the %d-byte bound", n, sc.maxPayload)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(sc.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("tcpwire: reading %d-byte frame payload: %w", n, err)
	}
	sc.lastSeq = seq
	return seq, buf, nil
}
