// Package hll implements HyperLogLog (Flajolet, Fusy, Gandouet & Meunier,
// AOFA 2007) as described in §III-A2 of the paper, and the HyperLogLog++
// variant (Heule, Nunkesser & Hall, EDBT 2013) used as the "HLL++" baseline
// in §V-B: 6-bit registers, a sparse representation for small cardinalities,
// and small-range correction. A per-user tracker allocates one sketch per
// observed user (M/(6|S|) registers per user in the paper's configuration).
//
// Substitution note (documented in DESIGN.md): the original HLL++ ships
// empirical kNN bias-correction tables for precisions p >= 10 (m >= 1024).
// The paper's per-user HLL++ sketches are far smaller (tens of registers), a
// regime those tables do not cover; this implementation instead relies on
// the sparse representation (exact for small n) plus linear counting, which
// dominates accuracy at that size.
package hll

import (
	"errors"
	"math"

	"repro/internal/hashing"
	"repro/internal/regarray"
	"repro/internal/stream"
)

// Alpha returns the bias-correction constant α_m of §III-A2: tabulated for
// m in {16, 32, 64} and 0.7213/(1 + 1.079/m) for m >= 128. Intermediate m
// use the nearest tabulated value below, the convention of practical
// implementations.
func Alpha(m int) float64 {
	switch {
	case m < 32:
		return 0.673
	case m < 64:
		return 0.697
	case m < 128:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Beta returns the tabulated relative-standard-error constant β_m of
// §III-A2 (RSE of plain HLL ≈ β_m/√m). Used by analytical tests.
func Beta(m int) float64 {
	switch {
	case m <= 16:
		return 1.106
	case m <= 32:
		return 1.070
	case m <= 64:
		return 1.054
	case m <= 128:
		return 1.046
	default:
		return 1.039
	}
}

// Sketch is a plain HyperLogLog sketch with m registers of the given width.
type Sketch struct {
	regs  *regarray.Array
	seed1 uint64 // bucket-selection hash seed
	seed2 uint64 // rank hash seed
}

// New returns an HLL sketch with m registers of width bits (the paper uses
// width 5 inside vHLL and width 6 for HLL++). It panics on invalid sizes.
func New(m int, width uint8, seed uint64) *Sketch {
	return &Sketch{
		regs:  regarray.New(m, width),
		seed1: hashing.Mix64(seed ^ 0x71c9bf1d3a5c28e5),
		seed2: hashing.Mix64(seed ^ 0x2b0fa9c7d481e66d),
	}
}

// M returns the number of registers.
func (s *Sketch) M() int { return s.regs.Size() }

// Add records an item: bucket h(d) uniform over registers, rank ρ(d)
// geometric(1/2), register updated to the max.
func (s *Sketch) Add(item uint64) bool {
	base := hashing.HashU64(item, s.seed1)
	rank := hashing.Rho(hashing.HashU64(item, s.seed2), s.regs.MaxValue())
	_, changed := s.regs.UpdateMax(hashing.UniformIndex(base, s.regs.Size()), rank)
	return changed
}

// addPre records a pre-hashed value (used by the sparse-to-dense conversion,
// which must not need the original items).
func (s *Sketch) addPre(base uint64) {
	idx := hashing.UniformIndex(hashing.Mix64(base^0xd6e8feb86659fd93), s.regs.Size())
	rank := hashing.Rho(hashing.Mix64(base^0xa5a5a5a5a5a5a5a5), s.regs.MaxValue())
	s.regs.UpdateMax(idx, rank)
}

// Estimate returns the HLL cardinality estimate with the small-range
// (linear counting) correction of §III-A2: when the raw estimate is below
// 2.5m and zero registers remain, the sketch is treated as an LPC bitmap.
func (s *Sketch) Estimate() float64 {
	m := float64(s.regs.Size())
	raw := Alpha(s.regs.Size()) * m * m / s.regs.HarmonicSum()
	if raw < 2.5*m {
		if v := s.regs.ZeroCount(); v > 0 {
			return m * math.Log(m/float64(v))
		}
	}
	return raw
}

// EstimateScan is Estimate with the harmonic sum and zero count recomputed
// by scanning all m registers — the paper's O(m) per-query cost model for
// HLL-family estimators (Fig. 3).
func (s *Sketch) EstimateScan() float64 {
	m := float64(s.regs.Size())
	sum := 0.0
	zeros := 0
	for i := 0; i < s.regs.Size(); i++ {
		r := s.regs.Get(i)
		if r == 0 {
			zeros++
		}
		sum += math.Exp2(-float64(r))
	}
	raw := Alpha(s.regs.Size()) * m * m / sum
	if raw < 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}

// Merge unions another sketch into s (register-wise max). Seeds must match.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.seed1 != s.seed1 || other.seed2 != s.seed2 {
		return errors.New("hll: merge requires identical seeds")
	}
	return s.regs.UnionWith(other.regs)
}

// Registers exposes the underlying register array (read-only use).
func (s *Sketch) Registers() *regarray.Array { return s.regs }

// PlusPlus is an HLL++ sketch: 6-bit registers plus a sparse phase that
// stores distinct item hashes exactly until the sparse set would use more
// memory than the dense register array, then converts.
type PlusPlus struct {
	m         int
	seed      uint64
	sparse    map[uint64]struct{} // nil after conversion to dense
	sparseCap int
	dense     *Sketch
}

// PlusPlusWidth is the register width of HLL++ (6 bits, per §V-B).
const PlusPlusWidth = 6

// NewPlusPlus returns an HLL++ sketch with m 6-bit registers.
func NewPlusPlus(m int, seed uint64) *PlusPlus {
	if m <= 0 {
		panic("hll: m must be positive")
	}
	// Memory parity: each sparse entry costs 64 bits vs m*6 bits dense.
	cap := m * PlusPlusWidth / 64
	if cap < 4 {
		cap = 4
	}
	return &PlusPlus{m: m, seed: seed, sparse: make(map[uint64]struct{}), sparseCap: cap}
}

// M returns the number of dense registers.
func (p *PlusPlus) M() int { return p.m }

// Sparse reports whether the sketch is still in its sparse phase.
func (p *PlusPlus) Sparse() bool { return p.sparse != nil }

// Add records an item.
func (p *PlusPlus) Add(item uint64) {
	base := hashing.HashU64(item, p.seed)
	if p.sparse != nil {
		p.sparse[base] = struct{}{}
		if len(p.sparse) > p.sparseCap {
			p.convert()
		}
		return
	}
	p.dense.addPre(base)
}

func (p *PlusPlus) convert() {
	p.dense = New(p.m, PlusPlusWidth, p.seed)
	// Route pre-hashed values through the same derivation as addPre.
	for base := range p.sparse {
		p.dense.addPre(base)
	}
	p.sparse = nil
}

// Estimate returns the cardinality estimate: exact in the sparse phase
// (distinct 64-bit hashes; collision probability < n²/2^65), HLL with
// small-range correction once dense.
func (p *PlusPlus) Estimate() float64 {
	if p.sparse != nil {
		return float64(len(p.sparse))
	}
	return p.dense.Estimate()
}

// EstimateScan mirrors Sketch.EstimateScan in the dense phase.
func (p *PlusPlus) EstimateScan() float64 {
	if p.sparse != nil {
		return float64(len(p.sparse))
	}
	return p.dense.EstimateScan()
}

// PerUser assigns an independent HLL++ sketch to every observed user — the
// paper's "HLL++" baseline (M/(6|S|) registers per user).
type PerUser struct {
	m        int
	seed     uint64
	sketches map[uint64]*PlusPlus
}

// NewPerUser returns a tracker giving each user m 6-bit registers.
func NewPerUser(m int, seed uint64) *PerUser {
	if m <= 0 {
		panic("hll: registers per user must be positive")
	}
	return &PerUser{m: m, seed: seed, sketches: make(map[uint64]*PlusPlus)}
}

// RegistersPerUser returns m.
func (p *PerUser) RegistersPerUser() int { return p.m }

// Observe records edge (user, item).
func (p *PerUser) Observe(user, item uint64) {
	sk := p.sketches[user]
	if sk == nil {
		sk = NewPlusPlus(p.m, hashing.HashU64(user, p.seed))
		p.sketches[user] = sk
	}
	sk.Add(item)
}

// ObserveBatch records a slice of edges, equivalent to calling Observe on
// each in order. The user's sketch is looked up (and, on first arrival,
// allocated) once per run of consecutive same-user edges instead of per edge.
func (p *PerUser) ObserveBatch(edges []stream.Edge) {
	stream.ForEachRun(edges, func(user uint64, run []stream.Edge) {
		sk := p.sketches[user]
		if sk == nil {
			sk = NewPlusPlus(p.m, hashing.HashU64(user, p.seed))
			p.sketches[user] = sk
		}
		for _, e := range run {
			sk.Add(e.Item)
		}
	})
}

// Estimate returns the cardinality estimate for user (0 if never seen).
func (p *PerUser) Estimate(user uint64) float64 {
	if sk := p.sketches[user]; sk != nil {
		return sk.Estimate()
	}
	return 0
}

// EstimateScan is Estimate with the paper's O(m) enumeration cost.
func (p *PerUser) EstimateScan(user uint64) float64 {
	if sk := p.sketches[user]; sk != nil {
		return sk.EstimateScan()
	}
	return 0
}

// NumUsers returns the number of users with allocated sketches.
func (p *PerUser) NumUsers() int { return len(p.sketches) }

// MemoryBits returns total sketch memory in bits under the paper's
// accounting (dense-equivalent per user).
func (p *PerUser) MemoryBits() int64 {
	return int64(len(p.sketches)) * int64(p.m) * PlusPlusWidth
}

// Users calls fn for every user with a sketch.
func (p *PerUser) Users(fn func(user uint64)) {
	for u := range p.sketches {
		fn(u)
	}
}
