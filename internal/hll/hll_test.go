package hll

import (
	"math"
	"testing"

	"repro/internal/hashing"
)

func TestAlphaValues(t *testing.T) {
	if Alpha(16) != 0.673 || Alpha(32) != 0.697 || Alpha(64) != 0.709 {
		t.Fatal("tabulated alpha wrong")
	}
	want := 0.7213 / (1 + 1.079/128)
	if math.Abs(Alpha(128)-want) > 1e-12 {
		t.Fatalf("Alpha(128) = %v, want %v", Alpha(128), want)
	}
	if Alpha(1024) >= 0.7213 || Alpha(1024) <= 0.70 {
		t.Fatalf("Alpha(1024) = %v out of plausible range", Alpha(1024))
	}
}

func TestBetaMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, m := range []int{16, 32, 64, 128, 1024} {
		b := Beta(m)
		if b > prev {
			t.Fatalf("Beta(%d) = %v not non-increasing", m, b)
		}
		prev = b
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(64, 5, 1)
	// Raw estimate of an empty sketch triggers linear counting with V=m,
	// giving m*ln(1) = 0.
	if got := s.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %v", got)
	}
}

func TestDuplicatesIdempotent(t *testing.T) {
	s := New(128, 6, 2)
	s.Add(42)
	before := s.Estimate()
	for i := 0; i < 100; i++ {
		if s.Add(42) {
			t.Fatal("duplicate changed a register")
		}
	}
	if s.Estimate() != before {
		t.Fatal("duplicates changed the estimate")
	}
}

func TestSmallRangeUsesLinearCounting(t *testing.T) {
	// At n << m, estimates should be near-exact thanks to linear counting.
	s := New(1024, 6, 3)
	for i := 0; i < 30; i++ {
		s.Add(uint64(i) * 2654435761)
	}
	got := s.Estimate()
	if math.Abs(got-30) > 6 {
		t.Fatalf("small-range estimate %v, want ~30", got)
	}
}

func TestAccuracyLargeRange(t *testing.T) {
	// RSE of HLL ~ 1.04/sqrt(m) ~ 3.25% at m=1024; require within 6 sigma.
	const m, n = 1024, 200000
	s := New(m, 6, 4)
	for i := 0; i < n; i++ {
		s.Add(uint64(i))
	}
	got := s.Estimate()
	sigma := Beta(m) / math.Sqrt(m) * n
	if math.Abs(got-n) > 6*sigma {
		t.Fatalf("estimate %v for n=%d (sigma %.0f)", got, n, sigma)
	}
}

func TestAccuracyWidth5(t *testing.T) {
	// Width-5 registers (the vHLL/FreeRS configuration) must work too.
	const m, n = 512, 50000
	s := New(m, 5, 5)
	for i := 0; i < n; i++ {
		s.Add(uint64(i) * 11400714819323198485)
	}
	got := s.Estimate()
	sigma := Beta(m) / math.Sqrt(m) * n
	if math.Abs(got-n) > 6*sigma {
		t.Fatalf("estimate %v for n=%d", got, n)
	}
}

func TestEstimateScanAgrees(t *testing.T) {
	s := New(256, 6, 6)
	for i := 0; i < 1000; i++ {
		s.Add(uint64(i))
	}
	a, b := s.Estimate(), s.EstimateScan()
	if math.Abs(a-b) > 1e-9*math.Max(a, 1) {
		t.Fatalf("Estimate %v != EstimateScan %v", a, b)
	}
}

func TestMerge(t *testing.T) {
	a := New(256, 6, 7)
	b := New(256, 6, 7)
	for i := 0; i < 5000; i++ {
		a.Add(uint64(i))
	}
	for i := 2500; i < 7500; i++ {
		b.Add(uint64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	union := New(256, 6, 7)
	for i := 0; i < 7500; i++ {
		union.Add(uint64(i))
	}
	if a.Estimate() != union.Estimate() {
		t.Fatalf("merge %v != union %v", a.Estimate(), union.Estimate())
	}
}

func TestMergeMismatch(t *testing.T) {
	a := New(64, 6, 1)
	if err := a.Merge(New(64, 6, 2)); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestUnbiasedLargeRange(t *testing.T) {
	// Average over independent sketches should approach n (HLL's residual
	// bias at n >> 2.5m is sub-percent).
	const m, n, trials = 256, 20000, 60
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		s := New(m, 6, uint64(tr)+100)
		for i := 0; i < n; i++ {
			s.Add(uint64(i))
		}
		sum += s.Estimate()
	}
	mean := sum / trials
	se := Beta(m) / math.Sqrt(m) * n / math.Sqrt(trials)
	if math.Abs(mean-n) > 5*se {
		t.Fatalf("mean %v, want %v ± %v", mean, n, 5*se)
	}
}

func TestPlusPlusSparsePhaseExact(t *testing.T) {
	p := NewPlusPlus(1024, 1)
	if !p.Sparse() {
		t.Fatal("fresh sketch must be sparse")
	}
	for i := 0; i < 50; i++ {
		p.Add(uint64(i))
		p.Add(uint64(i)) // duplicates
	}
	if !p.Sparse() {
		t.Fatal("50 < cap, should still be sparse")
	}
	if got := p.Estimate(); got != 50 {
		t.Fatalf("sparse estimate = %v, want exactly 50", got)
	}
}

func TestPlusPlusConversion(t *testing.T) {
	p := NewPlusPlus(128, 2)
	capN := p.sparseCap
	for i := 0; i <= capN; i++ {
		p.Add(uint64(i) * 7919)
	}
	if p.Sparse() {
		t.Fatalf("should have converted after %d distinct items", capN+1)
	}
	got := p.Estimate()
	want := float64(capN + 1)
	if math.Abs(got-want) > want/2+3 {
		t.Fatalf("post-conversion estimate %v, want ~%v", got, want)
	}
}

func TestPlusPlusConversionPreservesItems(t *testing.T) {
	// Adding the same items before and after conversion must be equivalent
	// to a dense sketch fed the same pre-hash stream.
	p := NewPlusPlus(64, 3)
	const n = 500
	for i := 0; i < n; i++ {
		p.Add(uint64(i))
	}
	d := New(64, PlusPlusWidth, 3)
	for i := 0; i < n; i++ {
		d.addPre(hashing.HashU64(uint64(i), 3))
	}
	if p.Estimate() != d.Estimate() {
		t.Fatalf("converted %v != direct dense %v", p.Estimate(), d.Estimate())
	}
}

func TestPlusPlusLargeAccuracy(t *testing.T) {
	const m, n = 512, 100000
	p := NewPlusPlus(m, 4)
	for i := 0; i < n; i++ {
		p.Add(uint64(i))
	}
	got := p.Estimate()
	sigma := Beta(m) / math.Sqrt(m) * n
	if math.Abs(got-n) > 6*sigma {
		t.Fatalf("estimate %v for n=%d", got, n)
	}
}

func TestPlusPlusScanAgrees(t *testing.T) {
	p := NewPlusPlus(64, 5)
	for i := 0; i < 10; i++ {
		p.Add(uint64(i))
	}
	if p.Estimate() != p.EstimateScan() {
		t.Fatal("sparse scan disagrees")
	}
	for i := 0; i < 3000; i++ {
		p.Add(uint64(i))
	}
	a, b := p.Estimate(), p.EstimateScan()
	if math.Abs(a-b) > 1e-9*a {
		t.Fatalf("dense scan disagrees: %v vs %v", a, b)
	}
}

func TestPerUser(t *testing.T) {
	pu := NewPerUser(64, 1)
	for i := 0; i < 1000; i++ {
		pu.Observe(1, uint64(i))
	}
	pu.Observe(2, 7)
	e1, e2 := pu.Estimate(1), pu.Estimate(2)
	if math.Abs(e1-1000) > 450 {
		t.Fatalf("user 1 estimate %v", e1)
	}
	if e2 != 1 {
		t.Fatalf("user 2 estimate %v, want exactly 1 (sparse)", e2)
	}
	if pu.Estimate(99) != 0 || pu.EstimateScan(99) != 0 {
		t.Fatal("unseen user must estimate 0")
	}
	if pu.NumUsers() != 2 {
		t.Fatalf("users = %d", pu.NumUsers())
	}
	if pu.MemoryBits() != 2*64*PlusPlusWidth {
		t.Fatalf("memory = %d", pu.MemoryBits())
	}
	if pu.RegistersPerUser() != 64 {
		t.Fatalf("m = %d", pu.RegistersPerUser())
	}
	seen := 0
	pu.Users(func(uint64) { seen++ })
	if seen != 2 {
		t.Fatalf("Users visited %d", seen)
	}
}

func TestPerUserPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPerUser(0, 1)
}

func TestNewPlusPlusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlusPlus(0, 1)
}

func TestRegistersAccessor(t *testing.T) {
	s := New(32, 5, 9)
	s.Add(1)
	if s.Registers().Size() != 32 {
		t.Fatal("Registers accessor broken")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(1024, 6, 1)
	rng := hashing.NewRNG(1)
	items := make([]uint64, 4096)
	for i := range items {
		items[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(items[i&4095])
	}
}

func BenchmarkEstimateScan(b *testing.B) {
	s := New(1024, 6, 1)
	for i := 0; i < 5000; i++ {
		s.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EstimateScan()
	}
}
