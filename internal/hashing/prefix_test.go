package hashing

import "testing"

// TestHashPairPrefixIdentity enforces the contract batch ingestion relies on:
// splitting HashPair into a user-only prefix and a per-item finish must
// reproduce HashPair bit for bit for arbitrary users, items, and seeds.
func TestHashPairPrefixIdentity(t *testing.T) {
	rng := NewRNG(42)
	for i := 0; i < 100000; i++ {
		a, b, seed := rng.Uint64(), rng.Uint64(), rng.Uint64()
		want := HashPair(a, b, seed)
		got := HashPairFinish(HashPairPrefix(a), b, seed)
		if got != want {
			t.Fatalf("HashPairFinish(HashPairPrefix(%#x), %#x, %#x) = %#x, HashPair = %#x",
				a, b, seed, got, want)
		}
	}
	// Degenerate inputs.
	for _, v := range []uint64{0, 1, ^uint64(0)} {
		if HashPairFinish(HashPairPrefix(v), v, v) != HashPair(v, v, v) {
			t.Fatalf("prefix identity broken at %#x", v)
		}
	}
}

// TestIndexFamilyBasisIdentity enforces the analogous contract for the
// double-hashing family: IndexAt over a hoisted basis must agree with Index.
func TestIndexFamilyBasisIdentity(t *testing.T) {
	fam := NewIndexFamily(7, 64, 1<<20)
	rng := NewRNG(43)
	for i := 0; i < 2000; i++ {
		s := rng.Uint64()
		h1, h2 := fam.Basis(s)
		for j := 0; j < fam.M(); j++ {
			if fam.IndexAt(h1, h2, j) != fam.Index(s, j) {
				t.Fatalf("IndexAt(Basis(%#x), %d) != Index(%#x, %d)", s, j, s, j)
			}
		}
	}
}
