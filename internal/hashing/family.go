package hashing

// IndexFamily realizes the group of hash functions f_1(s), ..., f_m(s), each
// mapping a user to a cell index in {0, ..., M-1}, that the virtual-sketch
// methods CSE and vHLL use to scatter a user's m-cell virtual sketch across a
// shared array of M cells.
//
// The paper assumes m independent uniform hash functions. Following standard
// practice for Bloom-filter-style structures (Kirsch & Mitzenmacher, "Less
// Hashing, Same Performance"), we realize the family by double hashing:
//
//	f_i(s) = (h1(s) + i*h2(s)) mod M, with h2 forced odd,
//
// which needs only two hash evaluations per user regardless of m and retains
// the asymptotic behaviour the estimators rely on. Critically, a single
// family member f_i(s) can be evaluated in O(1) without materializing the
// other m-1 indices — this is what lets CSE/vHLL process an edge in O(1) even
// though their *estimation* step remains O(m).
type IndexFamily struct {
	seed1 uint64
	seed2 uint64
	m     int // family size (number of functions)
	space int // index space size M
}

// NewIndexFamily creates a family of m index functions over {0, ..., space-1}.
func NewIndexFamily(seed uint64, m, space int) *IndexFamily {
	if m <= 0 {
		panic("hashing: index family size m must be positive")
	}
	if space <= 0 {
		panic("hashing: index space must be positive")
	}
	return &IndexFamily{
		seed1: Mix64(seed ^ 0xa0761d6478bd642f),
		seed2: Mix64(seed ^ 0xe7037ed1a0b428db),
		m:     m,
		space: space,
	}
}

// M returns the family size m.
func (f *IndexFamily) M() int { return f.m }

// Space returns the index space size M.
func (f *IndexFamily) Space() int { return f.space }

// bases returns the double-hashing base pair (h1, h2) for user s, with h2
// forced odd so the stride is invertible modulo any power of two and shares
// no trivial factor with most moduli.
func (f *IndexFamily) bases(s uint64) (uint64, uint64) {
	h1 := HashU64(s, f.seed1)
	h2 := HashU64(s, f.seed2) | 1
	return h1, h2
}

// Basis returns the double-hashing base pair (h1, h2) for user s, from which
// IndexAt evaluates any family member without re-hashing the user. Batch
// ingestion hoists the basis out of the per-edge loop for runs of edges that
// share one user: IndexAt(Basis(s), i) == Index(s, i) for all i.
func (f *IndexFamily) Basis(s uint64) (h1, h2 uint64) { return f.bases(s) }

// IndexAt returns f_i(s) computed from a basis previously obtained via
// Basis(s). i must be in [0, m); unlike Index it is not range-checked, as the
// batch hot paths only pass indices produced by UniformIndex over [0, m).
func (f *IndexFamily) IndexAt(h1, h2 uint64, i int) int {
	return int((h1 + uint64(i)*h2) % uint64(f.space))
}

// Index returns f_i(s) for i in [0, m).
func (f *IndexFamily) Index(s uint64, i int) int {
	if i < 0 || i >= f.m {
		panic("hashing: index family member out of range")
	}
	h1, h2 := f.bases(s)
	return int((h1 + uint64(i)*h2) % uint64(f.space))
}

// Indices appends all m indices f_0(s), ..., f_{m-1}(s) to dst and returns
// the extended slice. Indices may repeat (the paper's analysis tolerates
// collisions within a virtual sketch; they occur with probability ~m²/2M).
func (f *IndexFamily) Indices(s uint64, dst []int) []int {
	h1, h2 := f.bases(s)
	space := uint64(f.space)
	for i := 0; i < f.m; i++ {
		dst = append(dst, int((h1+uint64(i)*h2)%space))
	}
	return dst
}
