// Package hashing provides the hash-function substrate used by every sketch
// in this repository: seeded 64-bit hashes for integer identifiers and byte
// strings, geometric-rank extraction for HyperLogLog-style registers, fast
// unbiased range reduction, and a double-hashing index family that stands in
// for the m independent hash functions f_1(s), ..., f_m(s) used by the
// virtual-sketch methods (CSE, vHLL) in the paper.
//
// Everything is implemented from scratch on top of the standard library so
// that the repository has no external dependencies and the hash behaviour is
// fully deterministic across platforms.
package hashing

import "math/bits"

// SplitMix64 advances a splitmix64 state and returns the next 64-bit value.
// It is the canonical generator from Steele, Lea & Flood (OOPSLA 2014) and is
// used both as a seeding primitive and as a cheap high-quality mixer.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a bijection on uint64
// with full avalanche, suitable for hashing integer identifiers.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashU64 hashes a 64-bit identifier under the given seed. Distinct seeds
// yield (empirically) independent hash functions; the construction is two
// rounds of the splitmix64 finalizer with the seed folded in between, which
// passes the avalanche and uniformity tests in this package.
func HashU64(x, seed uint64) uint64 {
	h := Mix64(x + 0x9e3779b97f4a7c15)
	h ^= Mix64(seed ^ 0x94d049bb133111eb)
	return Mix64(h)
}

// HashPair hashes an ordered pair of 64-bit identifiers (user, item) under a
// seed. It is the h*(e) function of FreeBS/FreeRS: a uniform hash of the
// user-item pair itself, as opposed to per-user or per-item hashes.
func HashPair(a, b, seed uint64) uint64 {
	h := Mix64(a ^ 0x9e3779b97f4a7c15)
	h = Mix64(h ^ b ^ 0xbf58476d1ce4e5b9)
	return Mix64(h ^ seed)
}

// HashPairPrefix computes the user-dependent, seed-independent first round of
// HashPair. Batch ingestion hoists it out of the per-edge loop when a run of
// edges shares one user, saving one Mix64 per edge:
//
//	HashPairFinish(HashPairPrefix(a), b, seed) == HashPair(a, b, seed)
//
// for all a, b, seed — the equality is enforced by tests.
func HashPairPrefix(a uint64) uint64 {
	return Mix64(a ^ 0x9e3779b97f4a7c15)
}

// HashPairFinish completes a pair hash from a prefix produced by
// HashPairPrefix. See HashPairPrefix for the identity it satisfies.
func HashPairFinish(prefix, b, seed uint64) uint64 {
	h := Mix64(prefix ^ b ^ 0xbf58476d1ce4e5b9)
	return Mix64(h ^ seed)
}

// Hash64 hashes an arbitrary byte string under a seed using the 64-bit half
// of a from-scratch Murmur3-x64-128 implementation.
func Hash64(data []byte, seed uint64) uint64 {
	h1, _ := Hash128(data, seed)
	return h1
}

// Hash128 is a from-scratch implementation of MurmurHash3 x64 128-bit
// (public domain, Austin Appleby). It is used for hashing string identifiers
// so that external datasets with textual user/item IDs can be replayed.
func Hash128(data []byte, seed uint64) (uint64, uint64) {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	h1 := seed
	h2 := seed
	n := len(data)
	nblocks := n / 16

	for i := 0; i < nblocks; i++ {
		k1 := le64(data[i*16:])
		k2 := le64(data[i*16+8:])

		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1

		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2

		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	var k1, k2 uint64
	tail := data[nblocks*16:]
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Rho returns the geometric rank ρ of a 64-bit hash value: one plus the
// number of leading zero bits, so that P(ρ = k) = 2^-k for k = 1, 2, ....
// The result is clamped to max (register capacity). A zero input (probability
// 2^-64) yields max.
func Rho(v uint64, max uint8) uint8 {
	if v == 0 {
		return max
	}
	r := uint8(bits.LeadingZeros64(v)) + 1
	if r > max {
		return max
	}
	return r
}

// RhoBits returns ρ computed from the low `width` bits of v (the bits not
// consumed by bucket selection), matching the footnote-1 construction of the
// paper: ρ(d) is the number of leading zeros of the remaining bit string plus
// one. The result is clamped to max.
func RhoBits(v uint64, width, max uint8) uint8 {
	if width == 0 || width > 64 {
		width = 64
	}
	v <<= 64 - width // move the usable bits to the top
	if v == 0 {
		if uint8(width)+1 < max {
			return uint8(width) + 1
		}
		return max
	}
	r := uint8(bits.LeadingZeros64(v)) + 1
	if r > max {
		return max
	}
	return r
}

// UniformIndex maps a 64-bit hash to {0, ..., m-1} using Lemire's
// multiply-shift range reduction. The bias is at most m/2^64, which is
// negligible for every m used in this repository.
func UniformIndex(h uint64, m int) int {
	hi, _ := bits.Mul64(h, uint64(m))
	return int(hi)
}
