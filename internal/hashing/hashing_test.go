package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// A bijection never collides; spot-check a window plus structured values.
	seen := make(map[uint64]uint64)
	inputs := []uint64{0, 1, 2, 3, math.MaxUint64, math.MaxUint64 - 1, 1 << 32, 1 << 63}
	for i := uint64(0); i < 10000; i++ {
		inputs = append(inputs, i*0x9e3779b97f4a7c15)
	}
	for _, x := range inputs {
		h := Mix64(x)
		if prev, ok := seen[h]; ok && prev != x {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %d", prev, x, h)
		}
		seen[h] = x
	}
}

func TestHashU64Deterministic(t *testing.T) {
	if HashU64(42, 7) != HashU64(42, 7) {
		t.Fatal("HashU64 is not deterministic")
	}
}

func TestHashU64SeedSeparation(t *testing.T) {
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if HashU64(x, 1) == HashU64(x, 2) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("HashU64: %d/1000 values identical under different seeds", same)
	}
}

func TestHashU64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 of 64 output bits on average.
	var total, samples float64
	for x := uint64(1); x < 200; x++ {
		h := HashU64(x, 99)
		for b := 0; b < 64; b += 7 {
			h2 := HashU64(x^(1<<uint(b)), 99)
			total += float64(popcount(h ^ h2))
			samples++
		}
	}
	mean := total / samples
	if mean < 28 || mean > 36 {
		t.Fatalf("avalanche mean flipped bits = %.2f, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestHashPairOrderSensitive(t *testing.T) {
	if HashPair(1, 2, 0) == HashPair(2, 1, 0) {
		t.Fatal("HashPair must depend on argument order")
	}
}

func TestHashPairUniformity(t *testing.T) {
	// Chi-squared over 64 buckets with 64k samples; 99.9% critical value for
	// 63 dof is ~103.4; allow generous slack to avoid flaky CI.
	const buckets = 64
	const samples = 1 << 16
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		h := HashPair(uint64(i), uint64(i*3+1), 12345)
		counts[UniformIndex(h, buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 130 {
		t.Fatalf("HashPair bucket chi2 = %.1f, suspiciously non-uniform", chi2)
	}
}

func TestHash128ReferenceVectors(t *testing.T) {
	// Reference vectors computed with the canonical C++ MurmurHash3_x64_128
	// (seed folded into both lanes as uint64, as this implementation does for
	// seed values that fit in 32 bits the outputs match the original when the
	// original's 32-bit seed is zero-extended).
	h1, h2 := Hash128(nil, 0)
	if h1 == 0 && h2 == 0 {
		// Murmur3 of empty input with zero seed IS (0,0) in the canonical
		// implementation; assert that explicitly.
		t.Log("empty/0 hashes to (0,0) as in canonical murmur3")
	} else {
		t.Fatalf("Hash128(nil,0) = (%#x,%#x), want (0,0)", h1, h2)
	}
	// "hello" with seed 0: canonical x64_128 output.
	h1, h2 = Hash128([]byte("hello"), 0)
	if h1 != 0xcbd8a7b341bd9b02 || h2 != 0x5b1e906a48ae1d19 {
		t.Fatalf("Hash128(hello,0) = (%#x,%#x), want (0xcbd8a7b341bd9b02,0x5b1e906a48ae1d19)", h1, h2)
	}
	// "The quick brown fox jumps over the lazy dog" exercises >2 blocks + tail.
	h1, h2 = Hash128([]byte("The quick brown fox jumps over the lazy dog"), 0)
	if h1 != 0xe34bbc7bbc071b6c || h2 != 0x7a433ca9c49a9347 {
		t.Fatalf("Hash128(fox,0) = (%#x,%#x), want (0xe34bbc7bbc071b6c,0x7a433ca9c49a9347)", h1, h2)
	}
}

func TestHash128AllTailLengths(t *testing.T) {
	// Every tail length 0..15 must be handled; distinct prefixes must hash
	// differently (no truncation bugs in the switch fallthrough chain).
	base := []byte("abcdefghijklmnopqrstuvwxyz012345") // 32 bytes = 2 blocks
	seen := make(map[uint64]int)
	for n := 0; n <= len(base); n++ {
		h, _ := Hash128(base[:n], 77)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Hash128 collision between prefix lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}

func TestHash64MatchesHash128FirstLane(t *testing.T) {
	data := []byte("consistency")
	h1, _ := Hash128(data, 9)
	if Hash64(data, 9) != h1 {
		t.Fatal("Hash64 must equal the first lane of Hash128")
	}
}

func TestRhoDistribution(t *testing.T) {
	// P(Rho = k) should be 2^-k. Check k=1..6 with 2^17 samples.
	const samples = 1 << 17
	counts := make(map[uint8]int)
	for i := 0; i < samples; i++ {
		counts[Rho(HashU64(uint64(i), 3), 32)]++
	}
	for k := uint8(1); k <= 6; k++ {
		want := float64(samples) * math.Pow(0.5, float64(k))
		got := float64(counts[k])
		// 5 sigma of a binomial.
		sigma := math.Sqrt(want)
		if math.Abs(got-want) > 5*sigma+1 {
			t.Fatalf("Rho=%d observed %d times, want %.0f ± %.0f", k, counts[k], want, 5*sigma)
		}
	}
}

func TestRhoClamp(t *testing.T) {
	if got := Rho(0, 31); got != 31 {
		t.Fatalf("Rho(0,31) = %d, want clamp to 31", got)
	}
	if got := Rho(1, 31); got != 31 {
		// 63 leading zeros + 1 = 64 -> clamped to 31.
		t.Fatalf("Rho(1,31) = %d, want 31", got)
	}
	if got := Rho(1<<63, 31); got != 1 {
		t.Fatalf("Rho(msb) = %d, want 1", got)
	}
}

func TestRhoBits(t *testing.T) {
	// With width w, the usable bits are the low w bits of v.
	if got := RhoBits(0, 8, 31); got != 9 {
		t.Fatalf("RhoBits(0,8) = %d, want width+1 = 9", got)
	}
	// Low bits 1000_0000 (bit 7 set): zero leading zeros within width 8.
	if got := RhoBits(1<<7, 8, 31); got != 1 {
		t.Fatalf("RhoBits(1<<7,8) = %d, want 1", got)
	}
	// Low bits 0000_0001: 7 leading zeros within width 8 -> rho 8.
	if got := RhoBits(1, 8, 31); got != 8 {
		t.Fatalf("RhoBits(1,8) = %d, want 8", got)
	}
	if got := RhoBits(1, 8, 4); got != 4 {
		t.Fatalf("RhoBits clamp = %d, want 4", got)
	}
}

func TestUniformIndexRange(t *testing.T) {
	f := func(h uint64, m uint16) bool {
		mm := int(m%1000) + 1
		idx := UniformIndex(h, mm)
		return idx >= 0 && idx < mm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformIndexCoverage(t *testing.T) {
	// Every bucket of a small range must be reachable.
	const m = 7
	hit := make([]bool, m)
	for i := 0; i < 10000; i++ {
		hit[UniformIndex(HashU64(uint64(i), 5), m)] = true
	}
	for b, ok := range hit {
		if !ok {
			t.Fatalf("bucket %d never hit", b)
		}
	}
}

func TestIndexFamilyBounds(t *testing.T) {
	fam := NewIndexFamily(1, 128, 10007)
	for s := uint64(0); s < 100; s++ {
		for i := 0; i < 128; i++ {
			idx := fam.Index(s, i)
			if idx < 0 || idx >= 10007 {
				t.Fatalf("index %d out of range", idx)
			}
		}
	}
}

func TestIndexFamilyIndicesMatchesIndex(t *testing.T) {
	fam := NewIndexFamily(42, 64, 4096)
	for s := uint64(0); s < 50; s++ {
		idxs := fam.Indices(s, nil)
		if len(idxs) != 64 {
			t.Fatalf("got %d indices, want 64", len(idxs))
		}
		for i, v := range idxs {
			if got := fam.Index(s, i); got != v {
				t.Fatalf("Index(%d,%d)=%d but Indices gave %d", s, i, got, v)
			}
		}
	}
}

func TestIndexFamilyDistinctUsersDiffer(t *testing.T) {
	fam := NewIndexFamily(3, 16, 1<<20)
	a := fam.Indices(100, nil)
	b := fam.Indices(101, nil)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/16 virtual cells collide between two users in a 1M space", same)
	}
}

func TestIndexFamilySpreadWithinUser(t *testing.T) {
	// A single user's m cells should be (nearly) distinct in a large space;
	// double hashing with odd stride guarantees distinctness when space is a
	// power of two and m <= space.
	fam := NewIndexFamily(9, 256, 1<<16)
	for s := uint64(0); s < 20; s++ {
		idxs := fam.Indices(s, nil)
		seen := make(map[int]bool, len(idxs))
		for _, v := range idxs {
			if seen[v] {
				t.Fatalf("user %d: duplicate cell in power-of-two space", s)
			}
			seen[v] = true
		}
	}
}

func TestIndexFamilyPanics(t *testing.T) {
	mustPanic(t, func() { NewIndexFamily(0, 0, 10) })
	mustPanic(t, func() { NewIndexFamily(0, 10, 0) })
	fam := NewIndexFamily(0, 4, 16)
	mustPanic(t, func() { fam.Index(1, -1) })
	mustPanic(t, func() { fam.Index(1, 4) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds agreed on %d/100 outputs", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	mustPanic(t, func() { r.Intn(0) })
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	const buckets = 32
	const samples = 1 << 16
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 99.9% critical value for 31 dof ~ 61.1; generous slack.
	if chi2 > 75 {
		t.Fatalf("RNG chi2 = %.1f over %d buckets", chi2, buckets)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(5)
	for _, lambda := range []float64{0.2, 1, 4, 50} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		sigma := math.Sqrt(lambda / n)
		if math.Abs(mean-lambda) > 6*sigma+0.05 {
			t.Fatalf("Poisson(%v) sample mean %.3f", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(6)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean = %.4f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %.4f", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGShuffleUniformFirstPosition(t *testing.T) {
	// Each element should land in position 0 with probability ~1/4.
	r := NewRNG(13)
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		a := []int{0, 1, 2, 3}
		r.Shuffle(4, func(x, y int) { a[x], a[y] = a[y], a[x] })
		counts[a[0]]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-trials/4) > 6*math.Sqrt(trials*0.25*0.75) {
			t.Fatalf("element %d in slot 0 %d times, want ~%d", v, c, trials/4)
		}
	}
}

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values from the splitmix64 reference implementation with
	// state 1234567.
	st := uint64(1234567)
	got := []uint64{SplitMix64(&st), SplitMix64(&st), SplitMix64(&st)}
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i := range want {
		if got[i] != want[i] {
			// Values depend only on the published algorithm; if this fires,
			// the implementation diverged from the reference.
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}
