package datagen

import (
	"math"
	"testing"

	"repro/internal/exact"
)

func TestPaperConfigScaling(t *testing.T) {
	cfg, err := PaperConfig("orkut", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Users != 29974 {
		t.Fatalf("users = %d", cfg.Users)
	}
	// Total/5 = 447068 exceeds the paper's max, so the full range is kept.
	if cfg.MaxCard != 31949 {
		t.Fatalf("maxCard = %d, want the paper's full 31949", cfg.MaxCard)
	}
	if cfg.TotalCard != 2235343 {
		t.Fatalf("totalCard = %d", cfg.TotalCard)
	}
	// At a tiny scale the cap engages: maxCard = totalCard/5.
	tiny, err := PaperConfig("flickr", 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.MaxCard != tiny.TotalCard/5 {
		t.Fatalf("tiny-scale maxCard = %d, want %d", tiny.MaxCard, tiny.TotalCard/5)
	}
}

func TestPaperConfigErrors(t *testing.T) {
	if _, err := PaperConfig("nosuch", 0.1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := PaperConfig("orkut", 0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := PaperConfig("orkut", 1.5, 1); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}

func TestAllPaperConfigsResolve(t *testing.T) {
	for _, name := range DatasetNames {
		cfg, err := PaperConfig(name, 0.005, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Users <= 0 || cfg.TotalCard < cfg.Users {
			t.Fatalf("%s: degenerate config %+v", name, cfg)
		}
	}
}

func TestGenerateHitsTargets(t *testing.T) {
	cfg := Config{
		Name: "test", Users: 20000, MaxCard: 500, TotalCard: 100000,
		DuplicateRate: 0.15, Seed: 42,
	}
	d := Generate(cfg)
	if d.NumUsers() != cfg.Users {
		t.Fatalf("users = %d", d.NumUsers())
	}
	if d.MaxCard() != cfg.MaxCard {
		t.Fatalf("max card = %d, want pinned %d", d.MaxCard(), cfg.MaxCard)
	}
	total := d.TotalCard()
	if math.Abs(float64(total-cfg.TotalCard)) > 0.15*float64(cfg.TotalCard) {
		t.Fatalf("total = %d, want %d ± 15%%", total, cfg.TotalCard)
	}
	// Duplicates: arrivals exceed distinct pairs by ~DuplicateRate.
	extra := float64(d.NumEdges()-total) / float64(total)
	if extra < 0.10 || extra > 0.20 {
		t.Fatalf("duplicate fraction = %.3f", extra)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", Users: 1000, MaxCard: 100, TotalCard: 5000, DuplicateRate: 0.1, Seed: 9}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same config, different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same config, different streams")
		}
	}
	cfg.Seed = 10
	c := Generate(cfg)
	if len(a.Edges) == len(c.Edges) {
		same := true
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

func TestCardsMatchStream(t *testing.T) {
	// The declared Cards must equal the exact distinct counts in the
	// materialized stream — the generator's core invariant.
	cfg := Config{Name: "t", Users: 500, MaxCard: 200, TotalCard: 4000, DuplicateRate: 0.2, Seed: 3}
	d := Generate(cfg)
	truth := exact.NewTracker()
	if err := truth.ObserveStream(d.Stream()); err != nil {
		t.Fatal(err)
	}
	if truth.NumUsers() != cfg.Users {
		t.Fatalf("stream users = %d, want %d", truth.NumUsers(), cfg.Users)
	}
	for u, want := range d.Cards {
		if got := truth.Cardinality(uint64(u)); got != want {
			t.Fatalf("user %d: stream cardinality %d != declared %d", u, got, want)
		}
	}
}

func TestHeavyTail(t *testing.T) {
	// A power law must produce many small users and a few big ones.
	cfg := Config{Name: "t", Users: 50000, MaxCard: 2000, TotalCard: 250000, Seed: 5}
	d := Generate(cfg)
	small, big := 0, 0
	for _, c := range d.Cards {
		if c <= 2 {
			small++
		}
		if c >= 100 {
			big++
		}
	}
	if float64(small) < 0.4*float64(cfg.Users) {
		t.Fatalf("only %d/%d users with card <= 2; tail not heavy", small, cfg.Users)
	}
	if big == 0 {
		t.Fatal("no large users at all")
	}
	if big > cfg.Users/20 {
		t.Fatalf("%d large users; tail too fat", big)
	}
}

func TestItemsSharedAcrossUsers(t *testing.T) {
	cfg := Config{Name: "t", Users: 2000, MaxCard: 300, TotalCard: 20000, Seed: 11}
	d := Generate(cfg)
	itemUsers := make(map[uint64]uint64)
	shared := false
	for _, e := range d.Edges {
		if prev, ok := itemUsers[e.Item]; ok && prev != e.User {
			shared = true
			break
		}
		itemUsers[e.Item] = e.User
	}
	if !shared {
		t.Fatal("no item is shared across users; bipartite overlap missing")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Users: 0, MaxCard: 1, TotalCard: 1},
		{Users: 10, MaxCard: 0, TotalCard: 10},
		{Users: 10, MaxCard: 5, TotalCard: 5},    // total < users
		{Users: 10, MaxCard: 1, TotalCard: 1000}, // mean > max
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestCCDF(t *testing.T) {
	cards := []int{1, 1, 2, 5, 10}
	xs := []int{1, 2, 5, 10, 11}
	got := CCDF(cards, xs)
	want := []float64{1.0, 0.6, 0.4, 0.2, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CCDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCCDFMonotone(t *testing.T) {
	cfg := Config{Name: "t", Users: 10000, MaxCard: 1000, TotalCard: 60000, Seed: 13}
	d := Generate(cfg)
	xs := LogPoints(d.MaxCard(), 10)
	ys := CCDF(d.Cards, xs)
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1] {
			t.Fatalf("CCDF not non-increasing at %d", i)
		}
	}
	if ys[0] != 1.0 {
		t.Fatalf("CCDF(1) = %v, want 1 (every user has card >= 1)", ys[0])
	}
}

func TestLogPoints(t *testing.T) {
	pts := LogPoints(1000, 3)
	if pts[0] != 1 {
		t.Fatalf("first point = %d", pts[0])
	}
	if pts[len(pts)-1] != 1000 {
		t.Fatalf("last point = %d", pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatalf("points not strictly ascending: %v", pts)
		}
	}
	if LogPoints(0, 3) != nil {
		t.Fatal("LogPoints(0) should be nil")
	}
	one := LogPoints(1, 5)
	if len(one) != 1 || one[0] != 1 {
		t.Fatalf("LogPoints(1) = %v", one)
	}
}

func TestFitAlphaMeanAccuracy(t *testing.T) {
	// The fitted exponent should reproduce the target mean within a few
	// percent when sampled.
	for _, target := range []float64{2.75, 5.0, 16.0, 75.0} {
		alpha := fitAlpha(target, 10000)
		got := paretoMean(alpha, 10000)
		if math.Abs(got-target) > 0.02*target {
			t.Fatalf("target mean %v: fitted alpha %v gives mean %v", target, alpha, got)
		}
	}
}

func TestScaledDatasetSanity(t *testing.T) {
	// A very small-scale version of each paper dataset must materialize and
	// roughly match its targets.
	for _, name := range DatasetNames {
		cfg, err := PaperConfig(name, 0.001, 77)
		if err != nil {
			t.Fatal(err)
		}
		d := Generate(cfg)
		if d.NumUsers() != cfg.Users {
			t.Fatalf("%s: users %d != %d", name, d.NumUsers(), cfg.Users)
		}
		if d.MaxCard() != cfg.MaxCard {
			t.Fatalf("%s: max %d != %d", name, d.MaxCard(), cfg.MaxCard)
		}
		err2 := math.Abs(float64(d.TotalCard()-cfg.TotalCard)) / float64(cfg.TotalCard)
		if err2 > 0.25 {
			t.Fatalf("%s: total off by %.0f%%", name, err2*100)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{Name: "bench", Users: 10000, MaxCard: 500, TotalCard: 100000, DuplicateRate: 0.15, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		_ = Generate(cfg)
	}
}
