// Package datagen synthesizes the six evaluation datasets of Table I.
//
// The real traces (CAIDA equinix-sanjose/chicago passive captures and the
// Twitter/Flickr/Orkut/LiveJournal crawls) are not redistributable, so each
// dataset is replaced by a synthetic stream calibrated to its published
// summary statistics: number of users, maximum cardinality, and total
// cardinality (= number of distinct user-item pairs). Per-user cardinalities
// follow a truncated discrete Pareto law — matching the heavy-tailed CCDFs
// of Fig. 2 — whose exponent is fitted by bisection so the mean cardinality
// matches the target. The largest user is pinned at the dataset's maximum
// cardinality.
//
// Items are drawn from a shared global item space: user u's items are the
// contiguous block [offset(u), offset(u)+n_u) modulo the space size, so
// items are exactly distinct within a user (true cardinality is known by
// construction) while overlapping across users, as in the real bipartite
// graphs. Edge duplicates are injected at a configurable Poisson rate
// ("an edge in Γ may appear more than once", §II) and the arrival order is
// a seeded uniform shuffle — arrival position is the paper's time axis.
//
// Everything is deterministic given (Config, Seed).
package datagen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hashing"
	"repro/internal/stream"
)

// Config describes a synthetic dataset.
type Config struct {
	Name          string
	Users         int     // target number of users |S|
	MaxCard       int     // maximum per-user cardinality
	TotalCard     int     // target Σ_s n_s (distinct pairs)
	DuplicateRate float64 // Poisson rate of extra arrivals per distinct pair
	Seed          uint64
}

// paperTarget holds Table I's published statistics at scale 1.0.
type paperTarget struct {
	users, maxCard, totalCard int
}

var paperTargets = map[string]paperTarget{
	"sanjose":     {8387347, 313772, 23073907},
	"chicago":     {1966677, 106026, 9910287},
	"twitter":     {40103281, 2997496, 1468365182},
	"flickr":      {1441431, 26185, 22613980},
	"orkut":       {2997376, 31949, 223534301},
	"livejournal": {4590650, 9186, 76937805},
}

// DatasetNames lists the six paper datasets in Table I order.
var DatasetNames = []string{"sanjose", "chicago", "twitter", "flickr", "orkut", "livejournal"}

// DefaultDuplicateRate is the Poisson rate of repeat arrivals per distinct
// pair (the paper reports duplicates exist but not their rate; 15% extra
// arrivals is typical of the public SNAP multigraph versions).
const DefaultDuplicateRate = 0.15

// PaperConfig returns the configuration for one of the six Table I datasets
// scaled by scale. Users and total cardinality scale jointly (preserving the
// mean cardinality and, together with a jointly scaled memory budget M, the
// dimensionless loads n/M and M/|S| the estimators depend on). The maximum
// cardinality is kept at the paper's full value whenever the scaled total
// allows — preserving the cardinality range of Figs. 4 and 5, including the
// region past CSE's m·ln m limit — and is otherwise capped at TotalCard/5 so
// the pinned largest user cannot dominate the stream. It returns an error
// for unknown names or scales outside (0, 1].
func PaperConfig(name string, scale float64, seed uint64) (Config, error) {
	t, ok := paperTargets[name]
	if !ok {
		return Config{}, fmt.Errorf("datagen: unknown dataset %q", name)
	}
	if scale <= 0 || scale > 1 {
		return Config{}, fmt.Errorf("datagen: scale %v out of (0,1]", scale)
	}
	scaleInt := func(v int) int {
		s := int(math.Round(float64(v) * scale))
		if s < 1 {
			s = 1
		}
		return s
	}
	users := scaleInt(t.users)
	total := scaleInt(t.totalCard)
	if total < users {
		total = users
	}
	mean := float64(total) / float64(users)
	maxCard := total / 5
	if floor := int(50*mean) + 1; maxCard < floor {
		maxCard = floor // keep the Pareto fit feasible at tiny scales
	}
	if maxCard > t.maxCard {
		maxCard = t.maxCard
	}
	return Config{
		Name:          name,
		Users:         users,
		MaxCard:       maxCard,
		TotalCard:     total,
		DuplicateRate: DefaultDuplicateRate,
		Seed:          seed,
	}, nil
}

// Dataset is a fully materialized synthetic dataset.
type Dataset struct {
	Config Config
	// Cards[u] is the exact cardinality of user u (users are 0..len-1).
	Cards []int
	// Edges is the arrival sequence: shuffled, duplicates included.
	Edges []stream.Edge
	// Alpha is the fitted Pareto exponent (for reporting).
	Alpha float64
}

// Generate materializes the dataset described by cfg. It panics on invalid
// configurations (non-positive sizes, MaxCard > TotalCard).
func Generate(cfg Config) *Dataset {
	if cfg.Users <= 0 || cfg.MaxCard <= 0 || cfg.TotalCard < cfg.Users {
		panic("datagen: need Users > 0, MaxCard > 0, TotalCard >= Users")
	}
	targetMean := float64(cfg.TotalCard) / float64(cfg.Users)
	if float64(cfg.MaxCard) < targetMean {
		panic("datagen: MaxCard below mean cardinality is unsatisfiable")
	}
	alpha := fitAlpha(targetMean, float64(cfg.MaxCard))
	rng := hashing.NewRNG(cfg.Seed ^ 0x5bf03635f0a31e21)

	cards := sampleCards(cfg, alpha, rng)
	edges := materializeEdges(cfg, cards, rng)
	return &Dataset{Config: cfg, Cards: cards, Edges: edges, Alpha: alpha}
}

// fitAlpha finds the bounded-Pareto exponent whose continuous mean matches
// targetMean for support [1, maxCard], by bisection. Larger alpha -> smaller
// mean. Exponents below 1 are allowed: high-mean datasets (orkut, twitter)
// need tails heavier than any alpha > 1 can deliver on [1, H].
func fitAlpha(targetMean, maxCard float64) float64 {
	lo, hi := 0.05, 8.0
	if paretoMean(hi, maxCard) > targetMean {
		return hi // extremely light tail requested; clamp
	}
	if paretoMean(lo, maxCard) < targetMean {
		return lo // heaviest supported tail
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if paretoMean(mid, maxCard) > targetMean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// paretoMean is the mean of a continuous bounded Pareto on [1, H] with
// exponent a (the mean of floor(X)+ adjustments is close enough for the
// tolerance the tests enforce).
func paretoMean(a, h float64) float64 {
	if math.Abs(a-1) < 1e-9 {
		return math.Log(h) * h / (h - 1)
	}
	return a / (a - 1) * (1 - math.Pow(h, 1-a)) / (1 - math.Pow(h, -a))
}

// sampleCards assigns per-user cardinalities by stratified quantile
// sampling: user i receives the ((σ(i)+0.5)/n)-quantile of the fitted
// bounded Pareto for a random permutation σ. Unlike i.i.d. sampling — whose
// realized total has enormous variance for the α < 1 tails that orkut and
// twitter require — the quantile set is deterministic, so the realized total
// cardinality tracks the fitted mean tightly at every scale. The largest
// user is pinned to MaxCard, matching Table I's max-cardinality column.
func sampleCards(cfg Config, alpha float64, rng *hashing.RNG) []int {
	h := float64(cfg.MaxCard)
	n := cfg.Users
	cards := make([]int, n)
	hPowNegA := math.Pow(h, -alpha)
	perm := rng.Perm(n)
	for i := range cards {
		// Inverse CDF of the bounded Pareto on [1, H] at a stratified point.
		u := (float64(perm[i]) + 0.5) / float64(n)
		x := math.Pow(1-u*(1-hPowNegA), -1/alpha)
		c := int(x + 0.5)
		if c < 1 {
			c = 1
		}
		if c > cfg.MaxCard {
			c = cfg.MaxCard
		}
		cards[i] = c
	}
	// Pin the maximum: promote the current largest user to exactly MaxCard.
	maxIdx := 0
	for i, c := range cards {
		if c > cards[maxIdx] {
			maxIdx = i
		}
	}
	cards[maxIdx] = cfg.MaxCard
	return cards
}

// materializeEdges builds the shuffled arrival sequence with duplicates.
// User u's distinct items are the contiguous block starting at a random
// offset in a global item space of size >= 4*MaxCard, so they are exactly
// n_u distinct while overlapping with other users' blocks.
func materializeEdges(cfg Config, cards []int, rng *hashing.RNG) []stream.Edge {
	itemSpace := uint64(cfg.MaxCard) * 4
	if itemSpace < 1024 {
		itemSpace = 1024
	}
	totalDistinct := 0
	for _, c := range cards {
		totalDistinct += c
	}
	edges := make([]stream.Edge, 0, totalDistinct)
	for u, c := range cards {
		offset := uint64(rng.Intn(int(itemSpace)))
		for i := 0; i < c; i++ {
			edges = append(edges, stream.Edge{
				User: uint64(u),
				Item: (offset + uint64(i)) % itemSpace,
			})
		}
	}
	edges = stream.InjectDuplicates(edges, cfg.DuplicateRate, cfg.Seed^0x7c15d4a6e38f9b02)
	stream.Shuffle(edges, cfg.Seed^0x2e03f1a79b5c6d84)
	return edges
}

// Stream returns a replayable stream over the arrival sequence.
func (d *Dataset) Stream() *stream.Slice { return stream.NewSlice(d.Edges) }

// NumUsers returns the number of users.
func (d *Dataset) NumUsers() int { return len(d.Cards) }

// TotalCard returns the realized Σ_s n_s.
func (d *Dataset) TotalCard() int {
	total := 0
	for _, c := range d.Cards {
		total += c
	}
	return total
}

// MaxCard returns the realized maximum cardinality.
func (d *Dataset) MaxCard() int {
	maxCard := 0
	for _, c := range d.Cards {
		if c > maxCard {
			maxCard = c
		}
	}
	return maxCard
}

// NumEdges returns the arrival count (duplicates included).
func (d *Dataset) NumEdges() int { return len(d.Edges) }

// CCDF returns P(cardinality >= x) for each x in xs — the curves of Fig. 2.
// xs must be ascending.
func CCDF(cards []int, xs []int) []float64 {
	sorted := make([]int, len(cards))
	copy(sorted, cards)
	sort.Ints(sorted)
	out := make([]float64, len(xs))
	n := float64(len(sorted))
	for i, x := range xs {
		// Index of the first card >= x.
		idx := sort.SearchInts(sorted, x)
		out[i] = float64(len(sorted)-idx) / n
	}
	return out
}

// LogPoints returns ~pointsPerDecade log-spaced integers from 1 to max,
// deduplicated and ascending — the x axes of Figs. 2 and 5.
func LogPoints(max, pointsPerDecade int) []int {
	if max < 1 {
		return nil
	}
	var out []int
	last := 0
	decades := math.Log10(float64(max))
	total := int(decades*float64(pointsPerDecade)) + 1
	for i := 0; i <= total; i++ {
		x := int(math.Round(math.Pow(10, float64(i)/float64(pointsPerDecade))))
		if x > max {
			x = max
		}
		if x != last {
			out = append(out, x)
			last = x
		}
		if x == max {
			break
		}
	}
	return out
}
