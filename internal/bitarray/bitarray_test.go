package bitarray

import (
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

func TestNewAllZero(t *testing.T) {
	b := New(129)
	if b.Size() != 129 || b.ZeroCount() != 129 || b.OnesCount() != 0 {
		t.Fatalf("fresh array: size=%d zeros=%d ones=%d", b.Size(), b.ZeroCount(), b.OnesCount())
	}
	for i := 0; i < 129; i++ {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh array", i)
		}
	}
	if b.ZeroFraction() != 1.0 {
		t.Fatalf("fresh zero fraction = %v", b.ZeroFraction())
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if !b.Set(i) {
			t.Fatalf("Set(%d) reported no change on zero bit", i)
		}
		if !b.Get(i) {
			t.Fatalf("Get(%d) false after Set", i)
		}
		if b.Set(i) {
			t.Fatalf("Set(%d) reported change on one bit", i)
		}
	}
	if b.OnesCount() != 8 {
		t.Fatalf("ones = %d, want 8", b.OnesCount())
	}
}

func TestSetDoesNotDisturbNeighbors(t *testing.T) {
	b := New(256)
	b.Set(100)
	for i := 0; i < 256; i++ {
		if (i == 100) != b.Get(i) {
			t.Fatalf("bit %d has wrong value after Set(100)", i)
		}
	}
}

func TestClear(t *testing.T) {
	b := New(70)
	b.Set(69)
	if !b.Clear(69) {
		t.Fatal("Clear on set bit must report change")
	}
	if b.Get(69) {
		t.Fatal("bit still set after Clear")
	}
	if b.Clear(69) {
		t.Fatal("Clear on zero bit must report no change")
	}
	if b.ZeroCount() != 70 {
		t.Fatalf("zeros = %d after set+clear, want 70", b.ZeroCount())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(64)
	for _, f := range []func(){
		func() { b.Get(-1) }, func() { b.Get(64) },
		func() { b.Set(-1) }, func() { b.Set(64) },
		func() { b.Clear(-1) }, func() { b.Clear(64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on out-of-range index")
				}
			}()
			f()
		}()
	}
}

func TestZeroCountMaintained(t *testing.T) {
	b := New(1000)
	rng := hashing.NewRNG(42)
	for i := 0; i < 5000; i++ {
		b.Set(rng.Intn(1000))
	}
	if err := b.Audit(); err != nil {
		t.Fatalf("audit after random sets: %v", err)
	}
}

func TestZeroCountMaintainedWithClears(t *testing.T) {
	b := New(333)
	rng := hashing.NewRNG(7)
	for i := 0; i < 10000; i++ {
		idx := rng.Intn(333)
		if rng.Intn(3) == 0 {
			b.Clear(idx)
		} else {
			b.Set(idx)
		}
	}
	if err := b.Audit(); err != nil {
		t.Fatalf("audit after mixed ops: %v", err)
	}
}

func TestZeroCountPropertyQuick(t *testing.T) {
	// Property: for any operation sequence, maintained zero count equals the
	// recomputed count.
	f := func(seed uint64, nOps uint16) bool {
		b := New(257) // non-multiple of 64 to exercise the partial word
		rng := hashing.NewRNG(seed)
		for i := 0; i < int(nOps%2000); i++ {
			idx := rng.Intn(257)
			if rng.Intn(4) == 0 {
				b.Clear(idx)
			} else {
				b.Set(idx)
			}
		}
		return b.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	b := New(128)
	for i := 0; i < 128; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.ZeroCount() != 128 {
		t.Fatalf("zeros after reset = %d", b.ZeroCount())
	}
	for i := 0; i < 128; i++ {
		if b.Get(i) {
			t.Fatalf("bit %d survived reset", i)
		}
	}
}

func TestSaturation(t *testing.T) {
	b := New(65)
	for i := 0; i < 65; i++ {
		b.Set(i)
	}
	if b.ZeroCount() != 0 || b.ZeroFraction() != 0 {
		t.Fatalf("saturated array zeros = %d", b.ZeroCount())
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	b := New(100)
	b.Set(5)
	c := b.Clone()
	c.Set(6)
	if b.Get(6) {
		t.Fatal("clone mutation leaked into original")
	}
	if !c.Get(5) {
		t.Fatal("clone lost original bit")
	}
	if b.ZeroCount() != 99 || c.ZeroCount() != 98 {
		t.Fatalf("zero counts: orig=%d clone=%d", b.ZeroCount(), c.ZeroCount())
	}
}

func TestUnionWith(t *testing.T) {
	a := New(130)
	b := New(130)
	a.Set(0)
	a.Set(129)
	b.Set(64)
	b.Set(129)
	if err := a.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 64, 129} {
		if !a.Get(i) {
			t.Fatalf("union missing bit %d", i)
		}
	}
	if a.OnesCount() != 3 {
		t.Fatalf("union ones = %d, want 3", a.OnesCount())
	}
	if err := a.Audit(); err != nil {
		t.Fatalf("union broke zero count: %v", err)
	}
}

func TestUnionSizeMismatch(t *testing.T) {
	a := New(10)
	if err := a.UnionWith(New(11)); err == nil {
		t.Fatal("union of mismatched sizes must error")
	}
	if err := a.UnionWith(nil); err == nil {
		t.Fatal("union with nil must error")
	}
}

func TestUnionEquivalentToSetUnion(t *testing.T) {
	// Property: union of two randomly filled arrays has exactly the bits of
	// the set union.
	f := func(seed uint64) bool {
		rng := hashing.NewRNG(seed)
		a, b := New(191), New(191)
		ref := make(map[int]bool)
		for i := 0; i < 100; i++ {
			x, y := rng.Intn(191), rng.Intn(191)
			a.Set(x)
			b.Set(y)
			ref[x] = true
			ref[y] = true
		}
		if err := a.UnionWith(b); err != nil {
			return false
		}
		for i := 0; i < 191; i++ {
			if a.Get(i) != ref[i] {
				return false
			}
		}
		return a.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, size := range []int{1, 63, 64, 65, 1000} {
		b := New(size)
		rng := hashing.NewRNG(uint64(size))
		for i := 0; i < size/2+1; i++ {
			b.Set(rng.Intn(size))
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var c BitArray
		if err := c.UnmarshalBinary(data); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if c.Size() != b.Size() || c.ZeroCount() != b.ZeroCount() {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		for i := 0; i < size; i++ {
			if b.Get(i) != c.Get(i) {
				t.Fatalf("size %d: bit %d differs", size, i)
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var b BitArray
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE12345678"),
		append([]byte("BARR"), make([]byte, 8)...),           // size 0
		append([]byte("BARR"), 1, 0, 0, 0, 0, 0, 0, 0, 1, 2), // wrong payload len
	}
	for i, c := range cases {
		if err := b.UnmarshalBinary(c); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestAuditRepairs(t *testing.T) {
	b := New(64)
	b.Set(1)
	b.zeros = 0 // corrupt deliberately
	if err := b.Audit(); err == nil {
		t.Fatal("audit must detect corruption")
	}
	if b.ZeroCount() != 63 {
		t.Fatalf("audit did not repair: zeros=%d", b.ZeroCount())
	}
	if err := b.Audit(); err != nil {
		t.Fatalf("audit after repair: %v", err)
	}
}

func BenchmarkSet(b *testing.B) {
	arr := New(1 << 20)
	rng := hashing.NewRNG(1)
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = rng.Intn(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.Set(idx[i&4095])
	}
}

func BenchmarkGet(b *testing.B) {
	arr := New(1 << 20)
	for i := 0; i < 1<<19; i++ {
		arr.Set(i * 2)
	}
	b.ResetTimer()
	acc := false
	for i := 0; i < b.N; i++ {
		acc = acc != arr.Get(i&(1<<20-1))
	}
	_ = acc
}
