package bitarray

import "testing"

// TestSnapshotIsolation: a snapshot is a frozen logical copy — mutations of
// the parent after the snapshot never show through it, in either direction.
func TestSnapshotIsolation(t *testing.T) {
	b := New(257) // odd size exercises the partial final word
	for _, i := range []int{0, 63, 64, 200, 256} {
		b.Set(i)
	}
	snap := b.Snapshot()
	wantZeros := b.ZeroCount()

	// Parent mutations: set new bits, clear an old one.
	b.Set(1)
	b.Set(100)
	b.Clear(63)
	if snap.ZeroCount() != wantZeros {
		t.Fatalf("snapshot zero count drifted: %d != %d", snap.ZeroCount(), wantZeros)
	}
	for _, i := range []int{0, 63, 64, 200, 256} {
		if !snap.Get(i) {
			t.Fatalf("snapshot lost bit %d", i)
		}
	}
	if snap.Get(1) || snap.Get(100) {
		t.Fatal("parent mutation leaked into snapshot")
	}
	if err := snap.Audit(); err != nil {
		t.Fatalf("snapshot audit: %v", err)
	}
	if err := b.Audit(); err != nil {
		t.Fatalf("parent audit: %v", err)
	}

	// Snapshot mutations must not leak back into the parent either.
	snap2 := b.Snapshot()
	snap2.Set(2)
	if b.Get(2) {
		t.Fatal("snapshot mutation leaked into parent")
	}
}

// TestSnapshotReset: Reset on a shared array must leave snapshots intact.
func TestSnapshotReset(t *testing.T) {
	b := New(128)
	b.Set(5)
	snap := b.Snapshot()
	b.Reset()
	if !snap.Get(5) || snap.ZeroCount() != 127 {
		t.Fatal("Reset destroyed the snapshot")
	}
	if b.ZeroCount() != 128 || b.Get(5) {
		t.Fatal("Reset did not clear the parent")
	}
}

// TestSnapshotUnionDetaches: UnionWith writes every word, so it must detach
// from outstanding snapshots first.
func TestSnapshotUnionDetaches(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	b.Set(2)
	snap := a.Snapshot()
	if err := a.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	if snap.Get(2) {
		t.Fatal("union leaked into snapshot")
	}
	if !a.Get(1) || !a.Get(2) {
		t.Fatal("union lost bits")
	}
}

// TestSnapshotO1: taking a snapshot must not copy the backing words — its
// allocation cost is one fixed-size struct, independent of M.
func TestSnapshotO1(t *testing.T) {
	for _, size := range []int{1 << 10, 1 << 20} {
		b := New(size)
		b.Set(3)
		allocs := testing.AllocsPerRun(100, func() {
			sink = b.Snapshot()
		})
		if allocs > 1 {
			t.Fatalf("Snapshot of %d bits allocates %v objects, want <= 1", size, allocs)
		}
	}
}

// TestDetachOncePerSnapshot: after one post-snapshot write detaches, further
// writes are in-place (no repeated copying while unshared).
func TestDetachOncePerSnapshot(t *testing.T) {
	b := New(1 << 12)
	_ = b.Snapshot()
	b.Set(0) // detaches
	allocs := testing.AllocsPerRun(100, func() {
		b.Clear(1)
		b.Set(1)
	})
	if allocs != 0 {
		t.Fatalf("writes on a detached array allocate (%v allocs/run)", allocs)
	}
}

var sink any // defeats dead-code elimination in alloc tests
