// Package bitarray implements the dense bit array shared by all users in the
// bit-sharing sketches (FreeBS, CSE) and by per-user LPC sketches.
//
// Beyond plain set/get, the array maintains its zero-bit count incrementally:
// FreeBS's change probability q_B^(t) = m0^(t-1)/M and CSE's global noise
// term m·ln(U^(t)/M) both need the number of zero bits at every time step,
// and recomputing it would cost O(M) per edge. The maintained count is exact
// (an integer), and Audit() recomputes it from scratch so tests can verify
// the invariant after arbitrary operation sequences.
package bitarray

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// BitArray is a fixed-size array of M bits, all initially zero.
// The zero value is not usable; call New.
type BitArray struct {
	words []uint64
	size  int // number of valid bits
	zeros int // maintained count of zero bits among the first size bits

	// shared marks words as possibly aliased by a Snapshot: the next write
	// must detach (copy the backing array) first. Derived statistics (size,
	// zeros) live in the struct and are copied by Snapshot itself, so only
	// word writes pay the copy-on-write check.
	shared bool
}

// New returns a bit array of size bits, all zero. It panics if size <= 0.
func New(size int) *BitArray {
	if size <= 0 {
		panic("bitarray: size must be positive")
	}
	return &BitArray{
		words: make([]uint64, (size+63)/64),
		size:  size,
		zeros: size,
	}
}

// Size returns the number of bits M.
func (b *BitArray) Size() int { return b.size }

// ZeroCount returns the maintained number of zero bits m0.
func (b *BitArray) ZeroCount() int { return b.zeros }

// OnesCount returns the number of one bits.
func (b *BitArray) OnesCount() int { return b.size - b.zeros }

// ZeroFraction returns m0/M, the fraction of zero bits (FreeBS's q_B).
func (b *BitArray) ZeroFraction() float64 { return float64(b.zeros) / float64(b.size) }

// Get reports whether bit i is set. It panics if i is out of range.
func (b *BitArray) Get(i int) bool {
	if i < 0 || i >= b.size {
		panic(fmt.Sprintf("bitarray: index %d out of range [0,%d)", i, b.size))
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i to one and reports whether the bit changed (was zero).
// It panics if i is out of range.
func (b *BitArray) Set(i int) bool {
	if i < 0 || i >= b.size {
		panic(fmt.Sprintf("bitarray: index %d out of range [0,%d)", i, b.size))
	}
	w, mask := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&mask != 0 {
		return false
	}
	b.detach()
	b.words[w] |= mask
	b.zeros--
	return true
}

// Clear sets bit i to zero and reports whether the bit changed. It exists for
// windowed/decaying extensions and tests; the paper's algorithms never clear.
func (b *BitArray) Clear(i int) bool {
	if i < 0 || i >= b.size {
		panic(fmt.Sprintf("bitarray: index %d out of range [0,%d)", i, b.size))
	}
	w, mask := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&mask == 0 {
		return false
	}
	b.detach()
	b.words[w] &^= mask
	b.zeros++
	return true
}

// Reset zeroes every bit.
func (b *BitArray) Reset() {
	if b.shared {
		// Snapshots keep the old words; start over on a private array
		// instead of paying a copy just to zero it.
		b.words = make([]uint64, len(b.words))
		b.shared = false
	} else {
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.zeros = b.size
}

// Snapshot returns an O(1) logically frozen copy of b: both arrays keep the
// shared backing words and the first mutation on either side copies them
// (copy-on-write), so taking a snapshot costs one small struct allocation
// regardless of M. The snapshot is a fully independent BitArray — reads are
// safe concurrently with mutations of the parent (the parent never writes
// the shared words; it detaches onto a private copy first), and mutating the
// snapshot itself detaches it the same way.
func (b *BitArray) Snapshot() *BitArray {
	b.shared = true
	c := *b
	return &c
}

// detach gives b a private copy of the backing words if a snapshot may still
// alias them. Called before every word write.
func (b *BitArray) detach() {
	if !b.shared {
		return
	}
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	b.words = w
	b.shared = false
}

// Audit recomputes the zero count from the raw words. It returns an error if
// the maintained count disagrees (which would indicate a bug) and repairs the
// maintained count to the recomputed value.
func (b *BitArray) Audit() error {
	ones := 0
	for i, w := range b.words {
		if i == len(b.words)-1 && b.size&63 != 0 {
			w &= (1 << uint(b.size&63)) - 1
		}
		ones += bits.OnesCount64(w)
	}
	recomputed := b.size - ones
	if recomputed != b.zeros {
		old := b.zeros
		b.zeros = recomputed
		return fmt.Errorf("bitarray: maintained zero count %d != recomputed %d", old, recomputed)
	}
	return nil
}

// Clone returns a deep copy (eager, unlike Snapshot's lazy copy-on-write).
func (b *BitArray) Clone() *BitArray {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &BitArray{words: w, size: b.size, zeros: b.zeros}
}

// UnionWith ORs other into b. Both arrays must have the same size. Sketch
// union corresponds to the union of the underlying item sets, which makes
// bit-sharing sketches mergeable across monitoring points.
func (b *BitArray) UnionWith(other *BitArray) error {
	if other == nil || other.size != b.size {
		return errors.New("bitarray: union requires equal sizes")
	}
	b.detach()
	zeros := 0
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
	for i, w := range b.words {
		if i == len(b.words)-1 && b.size&63 != 0 {
			w &= (1 << uint(b.size&63)) - 1
		}
		zeros += 64 - bits.OnesCount64(w)
	}
	// The final partial word contributed (64 - size%64) phantom zeros.
	if b.size&63 != 0 {
		zeros -= 64 - b.size&63
	}
	b.zeros = zeros
	return nil
}

const marshalMagic = "BARR"

// MarshalBinary serializes the array (magic, size, words).
func (b *BitArray) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 4+8+8*len(b.words))
	out = append(out, marshalMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(b.size))
	for _, w := range b.words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out, nil
}

// UnmarshalBinary restores an array serialized by MarshalBinary.
func (b *BitArray) UnmarshalBinary(data []byte) error {
	if len(data) < 12 || string(data[:4]) != marshalMagic {
		return errors.New("bitarray: bad header")
	}
	size := int(binary.LittleEndian.Uint64(data[4:]))
	if size <= 0 {
		return errors.New("bitarray: non-positive size")
	}
	nwords := (size + 63) / 64
	if len(data) != 12+8*nwords {
		return fmt.Errorf("bitarray: want %d payload bytes, have %d", 8*nwords, len(data)-12)
	}
	words := make([]uint64, nwords)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[12+8*i:])
	}
	b.words = words
	b.size = size
	b.shared = false // freshly allocated words; no snapshot aliases them
	b.zeros = 0      // recompute below via Audit repair
	_ = b.Audit()
	return nil
}
