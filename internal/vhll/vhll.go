// Package vhll implements Virtual HyperLogLog (Xiao, Chen, Chen & Ling,
// SIGMETRICS 2015), the register-sharing baseline of §III-B2 of the paper.
//
// vHLL embeds a virtual m-register HLL sketch for every user into one shared
// array of M registers: user s's sketch is (R[f_1(s)], ..., R[f_m(s)]).
// The estimator removes the expected noise contributed by other users:
//
//	n̂_s = M/(M-m) · ( α_m·m² / Σ_i 2^-R[f_i(s)]  -  m·α_M·M / Σ_j 2^-R[j] )
//
// with the first (per-user) term replaced by linear counting -m·ln(Û_s/m)
// when it falls below 2.5m, exactly as in the paper. The global harmonic sum
// Σ_j 2^-R[j] is maintained incrementally (exact integer arithmetic, see
// internal/regarray), so only the per-user term costs O(m) per estimate.
package vhll

import (
	"math"

	"repro/internal/hashing"
	"repro/internal/hll"
	"repro/internal/regarray"
	"repro/internal/stream"
)

// Width is the register width used by the paper for vHLL (w = 5 bits).
const Width = 5

// VHLL is a shared-register-array estimator for all users.
type VHLL struct {
	regs       *regarray.Array
	fam        *hashing.IndexFamily
	itemSeed1  uint64
	itemSeed2  uint64
	m          int
	smallRange bool

	scratch []int
}

// Option configures a VHLL.
type Option func(*VHLL)

// WithoutSmallRange disables the linear-counting replacement of the per-user
// term. This exists as an ablation: it shows why the paper's small-range
// rule matters for the (majority) users with small cardinalities.
func WithoutSmallRange() Option { return func(v *VHLL) { v.smallRange = false } }

// New returns a vHLL with mRegs shared 5-bit registers and virtual sketches
// of m registers per user. It panics if m <= 0, mRegs <= m is violated.
func New(mRegs, m int, seed uint64, opts ...Option) *VHLL {
	if m <= 0 || mRegs <= 0 || m >= mRegs {
		panic("vhll: need 0 < m < M")
	}
	v := &VHLL{
		regs:       regarray.New(mRegs, Width),
		fam:        hashing.NewIndexFamily(seed, m, mRegs),
		itemSeed1:  hashing.Mix64(seed ^ 0x8ebc6af09c88c6e3),
		itemSeed2:  hashing.Mix64(seed ^ 0x589965cc75374cc3),
		m:          m,
		smallRange: true,
	}
	for _, o := range opts {
		o(v)
	}
	return v
}

// M returns the shared array size in registers.
func (v *VHLL) M() int { return v.regs.Size() }

// VirtualSize returns m, the virtual sketch size per user.
func (v *VHLL) VirtualSize() int { return v.m }

// MemoryBits returns the fixed memory footprint in bits.
func (v *VHLL) MemoryBits() int64 { return int64(v.regs.Size()) * Width }

// Observe records edge (user, item): the item selects position h(d) in the
// user's virtual sketch and rank ρ(d); the shared register takes the max.
// O(1) per edge.
func (v *VHLL) Observe(user, item uint64) {
	j := hashing.UniformIndex(hashing.HashU64(item, v.itemSeed1), v.m)
	rank := hashing.Rho(hashing.HashU64(item, v.itemSeed2), v.regs.MaxValue())
	v.regs.UpdateMax(v.fam.Index(user, j), rank)
}

// ObserveBatch records a slice of edges, equivalent to calling Observe on
// each in order. The double-hashing basis of the user's virtual sketch is
// computed once per run of consecutive same-user edges instead of per edge.
func (v *VHLL) ObserveBatch(edges []stream.Edge) {
	maxVal := v.regs.MaxValue()
	stream.ForEachRun(edges, func(user uint64, run []stream.Edge) {
		h1, h2 := v.fam.Basis(user)
		for _, e := range run {
			p := hashing.UniformIndex(hashing.HashU64(e.Item, v.itemSeed1), v.m)
			rank := hashing.Rho(hashing.HashU64(e.Item, v.itemSeed2), maxVal)
			v.regs.UpdateMax(v.fam.IndexAt(h1, h2, p), rank)
		}
	})
}

// Estimate returns the noise-corrected cardinality estimate of user,
// clamped to be non-negative. Cost is O(m) (the per-user term); the global
// term is O(1) thanks to the maintained harmonic sum.
func (v *VHLL) Estimate(user uint64) float64 {
	v.scratch = v.fam.Indices(user, v.scratch[:0])
	sum := 0.0
	zeros := 0
	for _, idx := range v.scratch {
		r := v.regs.Get(idx)
		if r == 0 {
			zeros++
		}
		sum += math.Exp2(-float64(r))
	}
	m := float64(v.m)
	bigM := float64(v.regs.Size())

	first := hll.Alpha(v.m) * m * m / sum
	if v.smallRange && first < 2.5*m && zeros > 0 {
		first = -m * math.Log(float64(zeros)/m)
	}
	// The paper writes the noise term as m·α_M·M/Σ_j 2^-R[j], i.e. (m/M)
	// times the *raw* global HLL estimate. The raw estimate is heavily
	// biased upward when the shared array is lightly loaded (it tends to
	// 0.72·M as the array empties), which would overcorrect every user to
	// zero early in the stream. We therefore apply HLL's standard
	// small-range correction to the global estimate as well — in the loaded
	// regime (raw >= 2.5M) this is exactly the paper's formula.
	second := m / bigM * v.TotalEstimate()
	est := bigM / (bigM - m) * (first - second)
	if est < 0 {
		return 0
	}
	return est
}

// GlobalHarmonicSum exposes Σ_j 2^-R[j] (maintained, O(1)).
func (v *VHLL) GlobalHarmonicSum() float64 { return v.regs.HarmonicSum() }

// TotalEstimate returns the standard HLL estimate of the total number of
// distinct pairs n computed over the whole shared array — the quantity the
// noise-correction term is built from.
func (v *VHLL) TotalEstimate() float64 {
	bigM := float64(v.regs.Size())
	raw := hll.Alpha(v.regs.Size()) * bigM * bigM / v.regs.HarmonicSum()
	if raw < 2.5*bigM {
		if z := v.regs.ZeroCount(); z > 0 {
			return bigM * math.Log(bigM/float64(z))
		}
	}
	return raw
}

// Variance returns the paper's approximate variance of the vHLL estimator
// for a user with true cardinality ns when n distinct pairs total have been
// recorded into M shared registers with virtual size m (§III-B2).
func Variance(ns, n float64, m, M int) float64 {
	mf, Mf := float64(m), float64(M)
	frac := Mf / (Mf - mf)
	noise := (n - ns) * mf / Mf
	term1 := 1.04 * 1.04 / mf * (ns + noise) * (ns + noise)
	term2 := noise * (1 - mf/Mf)
	term3 := (1.04 * n * mf) * (1.04 * n * mf) / (Mf * Mf * Mf)
	return frac * frac * (term1 + term2 + term3)
}
