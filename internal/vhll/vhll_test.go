package vhll

import (
	"math"
	"testing"

	"repro/internal/hashing"
)

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, 0) },
		func() { New(100, 0, 0) },
		func() { New(100, 100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccessors(t *testing.T) {
	v := New(1<<16, 128, 1)
	if v.M() != 1<<16 || v.VirtualSize() != 128 {
		t.Fatal("accessors wrong")
	}
	if v.MemoryBits() != int64(1<<16)*Width {
		t.Fatalf("memory = %d", v.MemoryBits())
	}
	if math.Abs(v.GlobalHarmonicSum()-float64(1<<16)) > 1e-9 {
		t.Fatalf("fresh harmonic sum = %v", v.GlobalHarmonicSum())
	}
}

func TestEmptyUserEstimatesNearZero(t *testing.T) {
	v := New(1<<16, 128, 2)
	if got := v.Estimate(42); got != 0 {
		t.Fatalf("empty estimate = %v", got)
	}
}

func TestSingleUserNoNoise(t *testing.T) {
	v := New(1<<18, 1024, 3)
	const n = 50000
	for i := 0; i < n; i++ {
		v.Observe(7, uint64(i))
	}
	got := v.Estimate(7)
	// RSE ~ 1.04/sqrt(1024) ~ 3.3%; allow 6 sigma.
	if math.Abs(got-n) > 6*0.033*n {
		t.Fatalf("estimate %v for n=%d", got, n)
	}
}

func TestSmallCardinalityUsesLinearCounting(t *testing.T) {
	v := New(1<<18, 1024, 4)
	const n = 40
	for i := 0; i < n; i++ {
		v.Observe(7, uint64(i))
	}
	got := v.Estimate(7)
	if math.Abs(got-n) > 15 {
		t.Fatalf("small-range estimate %v, want ~%d", got, n)
	}
}

func TestSmallRangeAblation(t *testing.T) {
	// Without the linear-counting replacement, small cardinalities are
	// estimated by the raw HLL term, which is biased upward at n << m.
	seedStream := func(v *VHLL) {
		for i := 0; i < 40; i++ {
			v.Observe(7, uint64(i))
		}
	}
	withLC := New(1<<16, 1024, 5)
	withoutLC := New(1<<16, 1024, 5, WithoutSmallRange())
	seedStream(withLC)
	seedStream(withoutLC)
	errWith := math.Abs(withLC.Estimate(7) - 40)
	errWithout := math.Abs(withoutLC.Estimate(7) - 40)
	if errWith >= errWithout {
		t.Fatalf("linear counting did not help: with=%v without=%v", errWith, errWithout)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	v := New(1<<14, 256, 6)
	for i := 0; i < 100; i++ {
		v.Observe(1, uint64(i))
	}
	before := v.Estimate(1)
	for i := 0; i < 100; i++ {
		v.Observe(1, uint64(i))
	}
	if v.Estimate(1) != before {
		t.Fatal("duplicates changed the estimate")
	}
}

func TestNoiseCorrection(t *testing.T) {
	// A modest user among heavy background: the global term must pull the
	// estimate back toward truth.
	v := New(1<<17, 512, 7)
	rng := hashing.NewRNG(9)
	for u := uint64(100); u < 600; u++ {
		for i := 0; i < 300; i++ {
			v.Observe(u, rng.Uint64())
		}
	}
	const n = 2000
	for i := 0; i < n; i++ {
		v.Observe(7, uint64(i))
	}
	got := v.Estimate(7)
	if math.Abs(got-n) > 0.5*n {
		t.Fatalf("corrected estimate %v for n=%d", got, n)
	}
}

func TestEstimateClampedNonNegative(t *testing.T) {
	v := New(1<<14, 512, 8)
	rng := hashing.NewRNG(11)
	for u := uint64(0); u < 200; u++ {
		for i := 0; i < 100; i++ {
			v.Observe(u, rng.Uint64())
		}
	}
	for u := uint64(1000); u < 1200; u++ {
		if got := v.Estimate(u); got < 0 {
			t.Fatalf("negative estimate %v", got)
		}
	}
}

func TestLargeRangeBeyondCSELimit(t *testing.T) {
	// vHLL's selling point vs CSE: it can estimate far beyond m·ln m.
	v := New(1<<18, 1024, 12)
	const n = 500000 // >> 1024·ln(1024) ≈ 7100
	for i := 0; i < n; i++ {
		v.Observe(7, uint64(i))
	}
	got := v.Estimate(7)
	if math.Abs(got-n) > 0.25*n {
		t.Fatalf("large-range estimate %v for n=%d", got, n)
	}
}

func TestTotalEstimate(t *testing.T) {
	// Keep per-user cardinalities well below m: when n_u approaches m,
	// virtual-slot collisions make vHLL's global view systematically
	// undercount total distinct pairs (a structural property of register
	// sharing, not a bug — distinct items sharing a virtual slot look like
	// one element to the shared array).
	v := New(1<<16, 512, 13)
	total := 0
	for u := uint64(0); u < 2500; u++ {
		for i := 0; i < 20; i++ {
			v.Observe(u, uint64(i)+u<<32)
			total++
		}
	}
	got := v.TotalEstimate()
	if math.Abs(got-float64(total)) > 0.1*float64(total) {
		t.Fatalf("total estimate %v, want ~%d", got, total)
	}
}

func TestTotalEstimateSmallRange(t *testing.T) {
	v := New(1<<16, 512, 14)
	for i := 0; i < 100; i++ {
		v.Observe(1, uint64(i))
	}
	got := v.TotalEstimate()
	if math.Abs(got-100) > 30 {
		t.Fatalf("small total estimate %v, want ~100", got)
	}
}

func TestVarianceFormulaShape(t *testing.T) {
	// More background traffic (larger n) must increase variance; so must a
	// larger m/M ratio (more noise per virtual register).
	v1 := Variance(100, 10000, 512, 1<<17)
	v2 := Variance(100, 100000, 512, 1<<17)
	if v2 <= v1 {
		t.Fatalf("variance must grow with n: %v vs %v", v1, v2)
	}
	v3 := Variance(100, 10000, 512, 1<<14)
	if v3 <= v1 {
		t.Fatalf("variance must grow as M shrinks: %v vs %v", v1, v3)
	}
}

func TestGlobalHarmonicSumFalls(t *testing.T) {
	v := New(4096, 64, 15)
	before := v.GlobalHarmonicSum()
	for i := 0; i < 1000; i++ {
		v.Observe(uint64(i), uint64(i))
	}
	if v.GlobalHarmonicSum() >= before {
		t.Fatal("harmonic sum did not fall")
	}
}

func BenchmarkObserve(b *testing.B) {
	v := New(1<<20, 1024, 1)
	rng := hashing.NewRNG(1)
	users := make([]uint64, 4096)
	items := make([]uint64, 4096)
	for i := range users {
		users[i] = uint64(rng.Intn(10000))
		items[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Observe(users[i&4095], items[i&4095])
	}
}

func BenchmarkEstimate(b *testing.B) {
	v := New(1<<20, 1024, 1)
	for i := 0; i < 100000; i++ {
		v.Observe(uint64(i%100), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Estimate(uint64(i % 100))
	}
}
