package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(500)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1500 {
		t.Fatalf("counter %d, want %d", got, 8*1500)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-556.5) > 1e-9 {
		t.Fatalf("sum %v", got)
	}
	// Bucket membership: le=1 gets {0.5, 1}, le=10 adds {5}, le=100 adds
	// {50}, +Inf adds {500}.
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d: %d, want %d", i, got, want[i])
		}
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-8.0) > 1e-6 {
		t.Fatalf("sum %v, want 8.0 (CAS accumulation lost updates?)", got)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	edges := r.Counter("edges_total", "", "Edges ingested.")
	edges.Add(42)
	r.Gauge("occupancy", `shard="0"`, "Users per shard.", func() float64 { return 7 })
	r.Gauge("occupancy", `shard="1"`, "", func() float64 { return 9.5 })
	lat := r.Histogram("req_seconds", `handler="/ingest"`, "Request latency.", []float64{0.01, 0.1})
	lat.Observe(0.005)
	lat.Observe(0.05)
	lat.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE edges_total counter",
		"edges_total 42",
		"# TYPE occupancy gauge",
		`occupancy{shard="0"} 7`,
		`occupancy{shard="1"} 9.5`,
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{handler="/ingest",le="0.01"} 1`,
		`req_seconds_bucket{handler="/ingest",le="0.1"} 2`,
		`req_seconds_bucket{handler="/ingest",le="+Inf"} 3`,
		`req_seconds_sum{handler="/ingest"} 5.055`,
		`req_seconds_count{handler="/ingest"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	// TYPE lines appear once per metric name, not once per series.
	if n := strings.Count(out, "# TYPE occupancy gauge"); n != 1 {
		t.Fatalf("TYPE occupancy emitted %d times", n)
	}
}

func TestRegistryRejectsTypeClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "", "", func() float64 { return 0 })
}
