// Package metrics implements the evaluation metrics of §V: the relative
// standard error RSE(n) grouped by actual cardinality (§V-C), the false
// negative / false positive ratios of super-spreader detection (§V-F), and
// plain-text/CSV table writers used by the experiment harness to print the
// same rows and series the paper reports.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Pair couples a user's true cardinality with an estimate.
type Pair struct {
	Actual   int
	Estimate float64
}

// RSEExact returns the paper's fine-grained metric for each distinct actual
// cardinality n present in pairs:
//
//	RSE(n) = (1/n)·sqrt( Σ_{s: n_s=n} (n̂_s - n)² / #{s: n_s=n} )
//
// keyed by n. Cardinality-0 users are skipped (RSE undefined).
func RSEExact(pairs []Pair) map[int]float64 {
	sums := make(map[int]float64)
	counts := make(map[int]int)
	for _, p := range pairs {
		if p.Actual <= 0 {
			continue
		}
		d := p.Estimate - float64(p.Actual)
		sums[p.Actual] += d * d
		counts[p.Actual]++
	}
	out := make(map[int]float64, len(sums))
	for n, s := range sums {
		out[n] = math.Sqrt(s/float64(counts[n])) / float64(n)
	}
	return out
}

// RSEBin is one geometric cardinality bin of an RSE curve.
type RSEBin struct {
	Lo, Hi   int     // cardinality range [Lo, Hi)
	MeanCard float64 // mean actual cardinality inside the bin
	Count    int     // users in the bin
	RSE      float64 // (1/meanCard)·sqrt(mean squared error)
}

// RSEBinned groups pairs into geometric bins (binsPerDecade bins per factor
// of 10) and computes the RSE within each — the plottable form of Fig. 5,
// where exact-n groups would be too sparse at evaluation scale.
func RSEBinned(pairs []Pair, binsPerDecade int) []RSEBin {
	if binsPerDecade <= 0 {
		binsPerDecade = 5
	}
	type acc struct {
		sumSq, sumCard float64
		count          int
	}
	ratio := math.Pow(10, 1/float64(binsPerDecade))
	binIdx := func(n int) int {
		return int(math.Floor(math.Log(float64(n))/math.Log(ratio) + 1e-9))
	}
	accs := make(map[int]*acc)
	for _, p := range pairs {
		if p.Actual <= 0 {
			continue
		}
		b := binIdx(p.Actual)
		a := accs[b]
		if a == nil {
			a = &acc{}
			accs[b] = a
		}
		d := p.Estimate - float64(p.Actual)
		a.sumSq += d * d
		a.sumCard += float64(p.Actual)
		a.count++
	}
	idxs := make([]int, 0, len(accs))
	for b := range accs {
		idxs = append(idxs, b)
	}
	sort.Ints(idxs)
	out := make([]RSEBin, 0, len(idxs))
	for _, b := range idxs {
		a := accs[b]
		mean := a.sumCard / float64(a.count)
		out = append(out, RSEBin{
			Lo:       int(math.Ceil(math.Pow(ratio, float64(b)) - 1e-9)),
			Hi:       int(math.Ceil(math.Pow(ratio, float64(b+1)) - 1e-9)),
			MeanCard: mean,
			Count:    a.count,
			RSE:      math.Sqrt(a.sumSq/float64(a.count)) / mean,
		})
	}
	return out
}

// AvgRelativeError returns mean(|n̂ - n| / n) over pairs with Actual > 0.
func AvgRelativeError(pairs []Pair) float64 {
	sum, count := 0.0, 0
	for _, p := range pairs {
		if p.Actual <= 0 {
			continue
		}
		sum += math.Abs(p.Estimate-float64(p.Actual)) / float64(p.Actual)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// DetectionCounts tallies a detection experiment (§V-F).
type DetectionCounts struct {
	TruePositives  int // true spreaders detected
	FalseNegatives int // true spreaders missed
	FalsePositives int // non-spreaders flagged
	TotalUsers     int // all occurred users
}

// FNR returns FalseNegatives / (TruePositives + FalseNegatives): the ratio
// of super spreaders not detected to the number of super spreaders.
func (d DetectionCounts) FNR() float64 {
	spreaders := d.TruePositives + d.FalseNegatives
	if spreaders == 0 {
		return 0
	}
	return float64(d.FalseNegatives) / float64(spreaders)
}

// FPR returns FalsePositives / TotalUsers: the ratio of users wrongly
// flagged to the number of all users — the paper's definition, which
// normalizes by all users rather than by true negatives.
func (d DetectionCounts) FPR() float64 {
	if d.TotalUsers == 0 {
		return 0
	}
	return float64(d.FalsePositives) / float64(d.TotalUsers)
}

// Table is a simple column-aligned table with a title, used by the
// experiment harness for every figure/table it regenerates.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns an empty table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of cells (Sprint-ed to strings).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: scientific for very small/large
// magnitudes (the FNR/FPR and RSE columns), fixed otherwise.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case math.Abs(v) < 1e-3 || math.Abs(v) >= 1e7:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// WriteTo writes the table as aligned plain text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// WriteCSV writes the table as CSV (headers + rows, comma-separated, cells
// containing commas or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
