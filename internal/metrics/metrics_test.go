package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRSEExactPerfectEstimates(t *testing.T) {
	pairs := []Pair{{10, 10}, {10, 10}, {5, 5}}
	rse := RSEExact(pairs)
	if rse[10] != 0 || rse[5] != 0 {
		t.Fatalf("perfect estimates should give RSE 0: %v", rse)
	}
}

func TestRSEExactKnownValue(t *testing.T) {
	// Two users with n=10, estimates 8 and 12: MSE = (4+4)/2 = 4, RMSE = 2,
	// RSE = 2/10 = 0.2.
	pairs := []Pair{{10, 8}, {10, 12}}
	rse := RSEExact(pairs)
	if math.Abs(rse[10]-0.2) > 1e-12 {
		t.Fatalf("RSE = %v, want 0.2", rse[10])
	}
}

func TestRSEExactSkipsZeroCardinality(t *testing.T) {
	rse := RSEExact([]Pair{{0, 5}, {-1, 2}})
	if len(rse) != 0 {
		t.Fatalf("zero-cardinality users must be skipped: %v", rse)
	}
}

func TestRSEBinnedGrouping(t *testing.T) {
	var pairs []Pair
	// 100 users at n=10 (estimates 9), 100 at n=1000 (estimates 1100).
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair{10, 9}, Pair{1000, 1100})
	}
	bins := RSEBinned(pairs, 5)
	if len(bins) != 2 {
		t.Fatalf("want 2 bins, got %d: %+v", len(bins), bins)
	}
	if math.Abs(bins[0].RSE-0.1) > 1e-9 {
		t.Fatalf("bin 0 RSE = %v, want 0.1", bins[0].RSE)
	}
	if math.Abs(bins[1].RSE-0.1) > 1e-9 {
		t.Fatalf("bin 1 RSE = %v, want 0.1", bins[1].RSE)
	}
	if bins[0].MeanCard != 10 || bins[1].MeanCard != 1000 {
		t.Fatalf("mean cards: %v %v", bins[0].MeanCard, bins[1].MeanCard)
	}
	if bins[0].Count != 100 || bins[1].Count != 100 {
		t.Fatal("bin counts wrong")
	}
}

func TestRSEBinnedAscendingAndBounded(t *testing.T) {
	var pairs []Pair
	for n := 1; n <= 10000; n *= 2 {
		pairs = append(pairs, Pair{n, float64(n) * 1.1})
	}
	bins := RSEBinned(pairs, 4)
	for i := 1; i < bins[i-1].Lo; i++ {
		_ = i
	}
	prev := 0
	for _, b := range bins {
		if b.Lo < prev {
			t.Fatal("bins not ascending")
		}
		prev = b.Lo
		if b.MeanCard < float64(b.Lo)-1 || (b.Hi > 0 && b.MeanCard > float64(b.Hi)+1) {
			t.Fatalf("mean card %v outside [%d,%d]", b.MeanCard, b.Lo, b.Hi)
		}
	}
}

func TestRSEBinnedDefaultBins(t *testing.T) {
	bins := RSEBinned([]Pair{{5, 5}}, 0)
	if len(bins) != 1 {
		t.Fatal("default binsPerDecade path broken")
	}
}

func TestAvgRelativeError(t *testing.T) {
	pairs := []Pair{{10, 12}, {100, 90}, {0, 5}}
	// |2|/10 = 0.2; |10|/100 = 0.1; zero-card skipped. Mean = 0.15.
	if got := AvgRelativeError(pairs); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("ARE = %v", got)
	}
	if AvgRelativeError(nil) != 0 {
		t.Fatal("empty ARE should be 0")
	}
}

func TestDetectionCounts(t *testing.T) {
	d := DetectionCounts{TruePositives: 8, FalseNegatives: 2, FalsePositives: 5, TotalUsers: 1000}
	if math.Abs(d.FNR()-0.2) > 1e-12 {
		t.Fatalf("FNR = %v", d.FNR())
	}
	if math.Abs(d.FPR()-0.005) > 1e-12 {
		t.Fatalf("FPR = %v", d.FPR())
	}
	empty := DetectionCounts{}
	if empty.FNR() != 0 || empty.FPR() != 0 {
		t.Fatal("empty counts must give 0 ratios")
	}
}

func TestTableWriting(t *testing.T) {
	tb := NewTable("Title", "a", "bbbb", "c")
	tb.AddRow("x", 1.5, "long-cell")
	tb.AddRow("yyyy", 0.00001, 3)
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "1.00e-05") {
		t.Fatalf("small float not in scientific notation:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,1", "has \"quote\"")
	tb.AddRow(2, 3.5)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,1\",\"has \"\"quote\"\"\"\n2,3.5\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		250.123: "250.1",
		1e-8:    "1.00e-08",
		3e9:     "3.00e+09",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if FormatFloat(math.NaN()) != "NaN" || FormatFloat(math.Inf(1)) != "Inf" {
		t.Fatal("special values mishandled")
	}
}
