package metrics

// Runtime metrics: the operational counterpart to this package's evaluation
// metrics. Where RSE and FNR/FPR grade an estimator against ground truth
// after the fact, these instruments watch a live deployment — edges
// ingested, epochs rotated, request latencies — and expose themselves in
// the Prometheus text format so any scraper can graph a cardinality
// service without this module importing one line of client library.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct{ n atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Histogram accumulates observations into cumulative buckets — the
// Prometheus histogram shape (le-labelled bucket counts plus _sum and
// _count), here over fixed upper bounds chosen at construction. Safe for
// concurrent use; Observe is a few atomic adds.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	total  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (an implicit +Inf bucket is always present). It panics on unsorted or
// empty bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must ascend")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// LatencyBuckets is a general-purpose latency bucket ladder in seconds,
// 100µs to ~10s, a factor ~3 apart.
func LatencyBuckets() []float64 {
	return []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Registry holds named instruments and renders them all as Prometheus text
// exposition format. Metric names must match the Prometheus charset; an
// optional label set (`k="v",k2="v2"` — pre-escaped by the caller) keys
// multiple instruments under one name, e.g. one latency histogram per
// handler. Registration order is preserved in the output.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

type metric struct {
	name, help, typ string
	series          []series
}

type series struct {
	labels string
	read   func() snapshot
}

// snapshot is one series' scrape-time reading: either a single sample or a
// full histogram.
type snapshot struct {
	value   float64
	hist    bool
	bounds  []float64
	cumul   []uint64 // cumulative per-bound counts (excluding +Inf)
	sum     float64
	count   uint64
	isCount bool // render as integer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) attach(name, help, typ, labels string, read func() snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		if m.name == name {
			if m.typ != typ {
				panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, m.typ, typ))
			}
			m.series = append(m.series, series{labels: labels, read: read})
			return
		}
	}
	r.metrics = append(r.metrics, &metric{
		name: name, help: help, typ: typ,
		series: []series{{labels: labels, read: read}},
	})
}

// Counter registers and returns a counter. labels may be empty.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.attach(name, help, "counter", labels, func() snapshot {
		return snapshot{value: float64(c.Value()), isCount: true}
	})
	return c
}

// CounterFunc registers fn as a counter read at scrape time — the shape for
// monotonic counts an instrumented subsystem already maintains in its own
// atomics (fold-cache outcomes inside the estimator stack, say), where
// pushing every increment through a *Counter would duplicate the state. fn
// must be monotonic and safe to call from the scrape goroutine.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	r.attach(name, help, "counter", labels, func() snapshot {
		return snapshot{value: float64(fn()), isCount: true}
	})
}

// Gauge registers fn as a gauge read at scrape time — the natural shape for
// values the instrumented system already maintains (shard occupancy, queue
// depth) rather than duplicates into a second variable. fn must be safe to
// call from the scrape goroutine.
func (r *Registry) Gauge(name, labels, help string, fn func() float64) {
	r.attach(name, help, "gauge", labels, func() snapshot {
		return snapshot{value: fn()}
	})
}

// Histogram registers and returns a histogram over bounds (in the unit the
// name declares; seconds for latencies, per Prometheus convention).
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.attach(name, help, "histogram", labels, func() snapshot {
		cumul := make([]uint64, len(h.bounds))
		var running uint64
		for i := range h.bounds {
			running += h.counts[i].Load()
			cumul[i] = running
		}
		return snapshot{
			hist: true, bounds: h.bounds, cumul: cumul,
			sum: h.Sum(), count: h.Count(),
		}
	})
	return h
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4, the format every scraper accepts).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sb strings.Builder
	for _, m := range r.metrics {
		if m.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", m.name, m.typ)
		for _, s := range m.series {
			snap := s.read()
			if !snap.hist {
				fmt.Fprintf(&sb, "%s%s %s\n", m.name, braced(s.labels), sample(snap))
				continue
			}
			for i, b := range snap.bounds {
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", m.name,
					braced(joinLabels(s.labels, fmt.Sprintf(`le="%s"`, formatBound(b)))), snap.cumul[i])
			}
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", m.name,
				braced(joinLabels(s.labels, `le="+Inf"`)), snap.count)
			fmt.Fprintf(&sb, "%s_sum%s %s\n", m.name, braced(s.labels), formatValue(snap.sum))
			fmt.Fprintf(&sb, "%s_count%s %d\n", m.name, braced(s.labels), snap.count)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func sample(s snapshot) string {
	if s.isCount {
		return fmt.Sprintf("%d", uint64(s.value))
	}
	return formatValue(s.value)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}
