package server

// The spool checkpoint envelope: one file holding every shard's complete
// windowed state (each shard is a WIN1 envelope from internal/core — all
// live generations plus epoch bookkeeping) prefixed by the service's
// configuration fingerprint. The fingerprint is load-bearing: a Windowed
// restore adopts whatever sketch sizes the payload carries, so restoring
// into a server configured differently would not fail — it would silently
// rotate fresh generations of the wrong shape forever after. Refusing a
// mismatched fingerprint up front turns that silent divergence into a
// startup error naming both configurations.
//
// Layout (all integers uvarint unless noted):
//
//	magic "CSP2"
//	method byte ('R' FreeRS, 'B' FreeBS)
//	memoryBits, shards, generations, seed
//	walSeq, epochEdges
//	per shard: payload length, payload
//	crc32-IEEE of everything before it (4 bytes big-endian)
//
// walSeq is the newest WAL sequence number this checkpoint covers (0 when
// the WAL is disabled or empty): on restart, replay applies only records
// above it, and a successful checkpoint truncates the log through it.
// epochEdges is the number of edges logged to the WAL during the current
// (unfinished) epoch at the moment of the cut — the baseline replay needs
// to cross-check rotation records against. The envelope magic moved from
// CSP1 to CSP2 when these fields were added; the service has no deployed
// CSP1 spools to migrate, so an old magic is simply a corrupt-checkpoint
// error.
//
// Files are written through the atomic-write helper, so a crash mid-write
// leaves the previous complete checkpoint in place; the trailing CRC
// additionally rejects any file corrupted at rest.
//
// Retention: the newest checkpoint is always current.ckpt, and every write
// also leaves a sequence-numbered history entry (ckpt-<seq>.ckpt, a hard
// link to the same bytes — zero extra data written, with an independent
// copy as the fallback on filesystems without hard links). After each
// successful write, history entries beyond the newest Config.Retain are
// deleted, so the spool holds a bounded short history instead of either a
// single rollback-less file or an unbounded pile. Restore prefers
// current.ckpt and falls back to the newest history entry if only the
// pointer file is missing; a checkpoint that is present but corrupt stays a
// startup error — silently skipping to an older one would un-notice data
// loss.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	streamcard "repro"
	"repro/internal/atomicfile"
)

const (
	spoolMagic = "CSP2"

	// spoolHistPrefix/Suffix frame history file names: ckpt-<seq>.ckpt,
	// zero-padded so lexical and numeric order agree.
	spoolHistPrefix = "ckpt-"
	spoolHistSuffix = ".ckpt"
)

var errSpoolCorrupt = errors.New("server: corrupt spool checkpoint")

func methodByte(method string) byte {
	if method == "freebs" {
		return 'B'
	}
	return 'R'
}

// marshalSpool serializes the full service state from a published snapshot
// view: an epoch-consistent frozen cut, so no sketch lock is needed while
// the (potentially large) payloads are marshaled. Shard order in the view
// matches s.wins by construction (NewSharded consumed the builds in order).
// walSeq/epochEdges tie the snapshot to a WAL position (both 0 when the
// WAL is off); with the WAL on, the caller captured view and position
// under one quiesce cut so they describe the same instant.
func (s *Server) marshalSpool(view *streamcard.ShardedView, walSeq, epochEdges uint64) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(spoolMagic)
	buf.WriteByte(methodByte(s.cfg.Method))
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	putUvarint(uint64(s.cfg.MemoryBits))
	putUvarint(uint64(s.cfg.Shards))
	putUvarint(uint64(s.cfg.Generations))
	putUvarint(s.cfg.Seed)
	putUvarint(walSeq)
	putUvarint(epochEdges)
	for i := 0; i < view.NumShards(); i++ {
		w, ok := view.ShardView(i).(*streamcard.Windowed)
		if !ok {
			return nil, fmt.Errorf("server: checkpointing shard %d: not a windowed view", i)
		}
		payload, err := w.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("server: checkpointing shard %d: %w", i, err)
		}
		putUvarint(uint64(len(payload)))
		buf.Write(payload)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	return buf.Bytes(), nil
}

// unmarshalSpool validates data and restores it into the freshly built
// stack, returning the checkpoint's WAL position (walSeq) and in-epoch
// logged-edge baseline. Called before the server takes traffic; on error
// the stack keeps whatever state it had (a fresh build: empty).
func (s *Server) unmarshalSpool(data []byte) (walSeq, epochEdges uint64, err error) {
	if len(data) < len(spoolMagic)+1+4 {
		return 0, 0, fmt.Errorf("%w: %d bytes", errSpoolCorrupt, len(data))
	}
	body, crc := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return 0, 0, fmt.Errorf("%w: checksum mismatch", errSpoolCorrupt)
	}
	if string(body[:len(spoolMagic)]) != spoolMagic {
		return 0, 0, fmt.Errorf("%w: bad magic %q", errSpoolCorrupt, body[:len(spoolMagic)])
	}
	r := bytes.NewReader(body[len(spoolMagic):])
	method, err := r.ReadByte()
	if err != nil {
		return 0, 0, fmt.Errorf("%w: truncated header", errSpoolCorrupt)
	}
	readUvarint := func(field string) (uint64, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("%w: truncated %s", errSpoolCorrupt, field)
		}
		return v, nil
	}
	mbits, err := readUvarint("memoryBits")
	if err != nil {
		return 0, 0, err
	}
	shards, err := readUvarint("shards")
	if err != nil {
		return 0, 0, err
	}
	gens, err := readUvarint("generations")
	if err != nil {
		return 0, 0, err
	}
	seed, err := readUvarint("seed")
	if err != nil {
		return 0, 0, err
	}
	if walSeq, err = readUvarint("walSeq"); err != nil {
		return 0, 0, err
	}
	if epochEdges, err = readUvarint("epochEdges"); err != nil {
		return 0, 0, err
	}
	if method != methodByte(s.cfg.Method) ||
		mbits != uint64(s.cfg.MemoryBits) ||
		shards != uint64(s.cfg.Shards) ||
		gens != uint64(s.cfg.Generations) ||
		seed != s.cfg.Seed {
		return 0, 0, fmt.Errorf("server: checkpoint of a method=%c mbits=%d shards=%d gens=%d seed=%d service "+
			"cannot restore into method=%c mbits=%d shards=%d gens=%d seed=%d — "+
			"match the configuration or move the spool aside",
			method, mbits, shards, gens, seed,
			methodByte(s.cfg.Method), s.cfg.MemoryBits, s.cfg.Shards, s.cfg.Generations, s.cfg.Seed)
	}
	for i := 0; i < int(shards); i++ {
		n, err := readUvarint("shard payload length")
		if err != nil {
			return 0, 0, err
		}
		if n > uint64(r.Len()) {
			return 0, 0, fmt.Errorf("%w: shard %d claims %d bytes, %d remain", errSpoolCorrupt, i, n, r.Len())
		}
		payload := make([]byte, n)
		if _, err := r.Read(payload); err != nil {
			return 0, 0, fmt.Errorf("%w: shard %d payload", errSpoolCorrupt, i)
		}
		if err := s.wins[i].UnmarshalBinary(payload); err != nil {
			return 0, 0, fmt.Errorf("server: restoring shard %d: %w", i, err)
		}
	}
	if r.Len() != 0 {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes", errSpoolCorrupt, r.Len())
	}
	return walSeq, epochEdges, nil
}

// writeSpool persists one checkpoint atomically.
func writeSpool(path string, data []byte) error {
	return atomicfile.WriteFile(path, data, os.FileMode(0o644))
}

// histPath returns the history file name for sequence number seq.
func (s *Server) histPath(seq uint64) string {
	return filepath.Join(s.cfg.SpoolDir, fmt.Sprintf("%s%012d%s", spoolHistPrefix, seq, spoolHistSuffix))
}

// listHist returns the spool's history checkpoints, oldest first. Files
// whose names merely look similar are ignored rather than deleted later.
func (s *Server) listHist() (seqs []uint64, err error) {
	entries, err := os.ReadDir(s.cfg.SpoolDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, spoolHistPrefix) || !strings.HasSuffix(name, spoolHistSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, spoolHistPrefix), spoolHistSuffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// linkFile hard-links a spool history entry to current.ckpt's bytes. It is
// a variable so tests can force the no-hardlink fallback below: several
// real filesystems (FAT/exFAT mounts, some network and FUSE filesystems,
// object-store gateways) reject link(2), and the fallback must preserve
// the retention contract byte for byte on them.
var linkFile = os.Link

// saveSpool writes one checkpoint: current.ckpt atomically, a history
// entry for it, then pruning down to the newest Retain history files. The
// caller (Checkpoint) holds ckptMu, so sequence numbers and renames cannot
// interleave.
func (s *Server) saveSpool(data []byte) error {
	if err := writeSpool(s.spoolPath(), data); err != nil {
		return err
	}
	s.ckptSeq++
	hist := s.histPath(s.ckptSeq)
	if err := linkFile(s.spoolPath(), hist); err != nil {
		// Hard links can fail on filesystems without link support; fall
		// back to an independent atomic copy (tmp+fsync+rename via
		// internal/atomicfile) rather than losing the history entry.
		if err := writeSpool(hist, data); err != nil {
			return fmt.Errorf("server: spool history: %w", err)
		}
	}
	return s.pruneSpool()
}

// pruneSpool deletes history checkpoints beyond the newest Retain. Only
// runs after a successful write, so a failing disk never eats the history
// it still has.
func (s *Server) pruneSpool() error {
	seqs, err := s.listHist()
	if err != nil {
		return fmt.Errorf("server: spool prune: %w", err)
	}
	for len(seqs) > s.cfg.Retain {
		if err := os.Remove(s.histPath(seqs[0])); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: spool prune: %w", err)
		}
		seqs = seqs[1:]
	}
	return nil
}
