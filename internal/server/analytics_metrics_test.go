package server

// The analytics read path's /metrics surface: latency histograms per query
// and the fold-cache counters — repeated analytics queries on an unchanged
// stack must hit the cached folds, never re-fold.

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/hashing"
	"repro/internal/stream"
)

func scrapeCounter(t *testing.T, base, name string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("metric %s not found in /metrics:\n%s", name, body)
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAnalyticsMetricsAndFoldCache(t *testing.T) {
	s, ts := newTestServer(t, testConfig(t.TempDir()))
	rng := hashing.NewRNG(77)
	edges := make([]stream.Edge, 4000)
	for i := range edges {
		edges[i] = stream.Edge{User: uint64(rng.Intn(800) + 1), Item: rng.Uint64()}
	}
	if code, body := post(t, ts.URL+"/ingest", edgeLines(edges)); code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", code, body)
	}
	s.Drain()

	get := func(path string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}

	get("/topk?k=5")
	computes := scrapeCounter(t, ts.URL, "cardserved_fold_cache_computes_total")
	if computes == 0 {
		t.Fatal("cold /topk executed no folds")
	}
	// Repeats on the unchanged stack: hits rise, computes do not.
	get("/topk?k=5")
	get("/users?limit=0")
	get("/users?limit=3")
	get("/total?method=merged")
	if after := scrapeCounter(t, ts.URL, "cardserved_fold_cache_computes_total"); after != computes {
		t.Fatalf("unchanged stack re-folded: computes %d -> %d", computes, after)
	}
	if hits := scrapeCounter(t, ts.URL, "cardserved_fold_cache_hits_total"); hits == 0 {
		t.Fatal("repeated analytics queries counted no fold-cache hits")
	}

	// The per-query latency histograms observed the work.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, q := range []string{"topk", "users", "numusers", "merged_total"} {
		pat := fmt.Sprintf(`cardserved_analytics_seconds_count{query="%s"}`, q)
		line := ""
		for _, l := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(l, pat) {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("no histogram series for query=%q", q)
		}
		if strings.HasSuffix(line, " 0") {
			t.Fatalf("histogram for query=%q never observed: %s", q, line)
		}
	}
}
