package server

// The shard-parallel ingest pipeline (decode-time partitioning, one
// single-writer executor per shard, drain coalescing, gate-based quiesce
// cuts) is a performance structure, not a semantic one: these tests pin
// that it changes NOTHING observable — async fan-out absorption is
// bit-identical to waited sequential ingestion, coalescing happens and is
// invisible, and the whole machine survives a -race torture of concurrent
// submitters, rotations, checkpoints, and a query storm with exact
// accounting.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

// TestServerPipelineBitIdenticalToSequentialTwin: one client submits a
// batch schedule asynchronously (202 mode, executors absorbing and
// coalescing concurrently across shards, rotations interleaved), a twin
// server takes the identical schedule fully synchronously (?wait=1 each).
// Every per-user estimate, the merged total, and the epoch must agree
// exactly — per-shard FIFO plus order-preserving coalescing make the
// parallel pipeline indistinguishable from the sequential one.
func TestServerPipelineBitIdenticalToSequentialTwin(t *testing.T) {
	async, tsAsync := newTestServer(t, testConfig(""))
	seq, tsSeq := newTestServer(t, testConfig(""))

	edges := zipfEdges(29, 60000, 300, 3000)
	const batch = 1000
	for i := 0; i < len(edges); i += batch {
		end := i + batch
		if end > len(edges) {
			end = len(edges)
		}
		chunk := edges[i:end]
		if code, body := post(t, tsAsync.URL+"/ingest", edgeLines(chunk)); code != http.StatusAccepted {
			t.Fatalf("async ingest returned %d: %s", code, body)
		}
		ingest(t, tsSeq.URL, chunk, true)
		if (i/batch)%13 == 12 { // rotate mid-stream on both, same schedule
			post(t, tsAsync.URL+"/rotate", "")
			post(t, tsSeq.URL+"/rotate", "")
		}
	}
	if code, _ := post(t, tsAsync.URL+"/flush", ""); code != http.StatusOK {
		t.Fatal("flush failed")
	}

	if async.Epoch() != seq.Epoch() {
		t.Fatalf("epochs %d vs %d", async.Epoch(), seq.Epoch())
	}
	want := make(map[uint64]float64)
	seq.Estimator().Users(func(u uint64, e float64) { want[u] = e })
	got := make(map[uint64]float64)
	async.Estimator().Users(func(u uint64, e float64) { got[u] = e })
	if len(got) != len(want) {
		t.Fatalf("user sets differ: %d vs %d", len(got), len(want))
	}
	for u, w := range want {
		if g, ok := got[u]; !ok || g != w {
			t.Fatalf("user %d: async pipeline %v, sequential twin %v", u, got[u], w)
		}
	}
	aTotal, errA := async.Estimator().TotalDistinctMerged()
	sTotal, errS := seq.Estimator().TotalDistinctMerged()
	if errA != nil || errS != nil {
		t.Fatalf("merged totals: %v, %v", errA, errS)
	}
	if aTotal != sTotal {
		t.Fatalf("merged totals %v vs %v", aTotal, sTotal)
	}
}

// TestServerExecutorCoalescing: under a backlog the executor must absorb
// multiple queued sub-batches in one call — the coalesced counter moves —
// and coalescing must be invisible: after the drain the edge accounting is
// exact. A single shard funnels every batch onto one executor; each round
// submits a large head batch (sketch work that keeps the executor busy)
// and then a tight burst of small async batches with no yields in between,
// so the queue piles up behind the head batch. Scheduling is still the
// kernel's, so rounds repeat until a coalesce is observed — in practice
// the first round does it.
func TestServerExecutorCoalescing(t *testing.T) {
	cfg := testConfig("")
	cfg.Shards = 1
	cfg.QueueDepth = 256
	s, ts := newTestServer(t, cfg)

	totalEdges := uint64(0)
	deadline := time.Now().Add(30 * time.Second)
	for round := 0; s.coalesced.Value() == 0; round++ {
		if time.Now().After(deadline) {
			t.Fatal("no coalesced absorption after 30s of bursts")
		}
		head := make([]stream.Edge, 50000)
		for i := range head {
			head[i] = stream.Edge{User: uint64(i % 997), Item: uint64(round)<<32 | uint64(i)}
		}
		if err := s.submit(head, false); err != nil {
			t.Fatal(err)
		}
		totalEdges += uint64(len(head))
		for b := 0; b < 64; b++ {
			small := make([]stream.Edge, 50)
			for i := range small {
				small[i] = stream.Edge{User: uint64(b), Item: uint64(round)<<32 | uint64(b*50+i)}
			}
			if err := s.submit(small, false); err != nil {
				t.Fatal(err)
			}
			totalEdges += uint64(len(small))
		}
		s.Drain()
	}
	// Coalescing changed batching, not accounting.
	if got := s.edgesIngested.Value(); got != totalEdges {
		t.Fatalf("ingested %d edges, want %d", got, totalEdges)
	}
	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(body, "cardserved_coalesced_batches_total") {
		t.Fatalf("coalesce counter missing from /metrics:\n%s", body)
	}
}

// TestServerTorture is the pipeline's -race acceptance test: concurrent
// submitters on BOTH protocols mixing ?wait=1 and async 202 mode, a
// rotator forcing epoch cuts, checkpoint writers, and a query storm
// (estimate/total/topk/users/metrics) — all at once, against the live
// shard executors. After the storm: the edge accounting is exact to the
// last edge, the epoch equals the rotation count, and every shard agrees
// on it (no torn rotation).
func TestServerTorture(t *testing.T) {
	cfg := testConfig(t.TempDir())
	s, ts := newTestServer(t, cfg)
	const (
		clients = 6
		batches = 25
		perB    = 400
		rotes   = 8
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c) << 32
			binary := c%2 == 0 // half the clients speak CWB1
			for b := 0; b < batches; b++ {
				edges := make([]stream.Edge, perB)
				for i := range edges {
					edges[i] = stream.Edge{User: base | uint64(i%40), Item: uint64(b*perB + i)}
				}
				url := ts.URL + "/ingest"
				if b%3 == 0 {
					url += "?wait=1"
				}
				var resp *http.Response
				var err error
				if binary {
					resp, err = http.Post(url, stream.WireContentType,
						bytes.NewReader(stream.AppendWire(nil, edges)))
				} else {
					resp, err = http.Post(url, "text/plain", strings.NewReader(edgeLines(edges)))
				}
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
					t.Errorf("client %d batch %d: status %d", c, b, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	// The rotator: epoch cuts while batches are mid-flight on the executors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rotes; i++ {
			post(t, ts.URL+"/rotate", "")
			time.Sleep(time.Millisecond)
		}
	}()
	// Checkpoint writers racing the rotator and the executors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			post(t, ts.URL+"/checkpoint", "")
		}
	}()
	// The query storm: every read endpoint, continuously, from several
	// goroutines — all snapshot reads, so none of this may block or be torn
	// by the write pipeline.
	stormDone := make(chan struct{})
	var stormWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		stormWG.Add(1)
		go func(g int) {
			defer stormWG.Done()
			paths := []string{"/estimate?user=42", "/total", "/total?method=merged",
				"/topk?k=5", "/users?limit=10", "/metrics", "/healthz"}
			for i := 0; ; i++ {
				select {
				case <-stormDone:
					return
				default:
				}
				code, body := get(t, ts.URL+paths[(g+i)%len(paths)])
				if code != http.StatusOK {
					t.Errorf("query %s returned %d: %s", paths[(g+i)%len(paths)], code, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stormDone)
	stormWG.Wait()

	if code, _ := post(t, ts.URL+"/flush", ""); code != http.StatusOK {
		t.Fatal("flush failed")
	}
	if got := s.edgesIngested.Value(); got != clients*batches*perB {
		t.Fatalf("ingested %d edges, want %d", got, clients*batches*perB)
	}
	if got := s.batches.Value(); got != clients*batches {
		t.Fatalf("absorbed %d batches, want %d", got, clients*batches)
	}
	if s.Epoch() != rotes {
		t.Fatalf("epoch %d after %d rotations", s.Epoch(), rotes)
	}
	// No torn rotation: every shard's window sits at the same epoch.
	for i, w := range s.wins {
		if w.Epoch() != rotes {
			t.Fatalf("shard %d at epoch %d, others at %d", i, w.Epoch(), rotes)
		}
	}
	// And a final checkpoint still writes cleanly after the storm.
	if code, body := post(t, ts.URL+"/checkpoint", ""); code != http.StatusOK {
		t.Fatalf("post-storm checkpoint returned %d: %s", code, body)
	}
}

// TestServerShardQueueMetrics pins the pipeline observability surface:
// per-shard queue-depth gauges and the imbalance gauge exist for every
// shard and read 0/idle values on a drained pipeline.
func TestServerShardQueueMetrics(t *testing.T) {
	s, ts := newTestServer(t, testConfig(""))
	ingest(t, ts.URL, []stream.Edge{{User: 1, Item: 1}}, true)
	post(t, ts.URL+"/flush", "")
	_, body := get(t, ts.URL+"/metrics")
	for i := 0; i < s.cfg.Shards; i++ {
		want := fmt.Sprintf(`cardserved_shard_queue_depth{shard="%d"} 0`, i)
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "cardserved_shard_queue_imbalance 0") {
		t.Fatalf("idle pipeline should report imbalance 0:\n%s", body)
	}
	if !strings.Contains(body, "cardserved_queue_depth 0") {
		t.Fatalf("drained pipeline should report total depth 0:\n%s", body)
	}
}
