package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/hashing"
	"repro/internal/stream"
)

// testConfig is a small, fast stack: 4 shards of FreeRS, 4 generations,
// shared seed, manual rotation unless a test opts in to timers.
func testConfig(spool string) Config {
	return Config{
		Method:      "freers",
		MemoryBits:  1 << 20,
		Shards:      4,
		Generations: 4,
		Seed:        7,
		SpoolDir:    spool,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// edgeLines renders edges in the ingest line protocol.
func edgeLines(edges []stream.Edge) string {
	var sb strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&sb, "%d %d\n", e.User, e.Item)
	}
	return sb.String()
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func ingest(t *testing.T, base string, edges []stream.Edge, wait bool) {
	t.Helper()
	url := base + "/ingest"
	if wait {
		url += "?wait=1"
	}
	code, body := post(t, url, edgeLines(edges))
	wantCode := http.StatusAccepted
	if wait {
		wantCode = http.StatusOK
	}
	if code != wantCode {
		t.Fatalf("ingest returned %d: %s", code, body)
	}
}

// zipfEdges synthesizes a heavy-tailed workload: user u's cardinality is
// ~maxCard/(u+1), so the stream has a few heavy users and a long tail —
// the shape the estimators are built for.
func zipfEdges(seed uint64, n, users, maxCard int) []stream.Edge {
	rng := hashing.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		u := rng.Intn(users)
		card := maxCard / (u + 1)
		if card < 1 {
			card = 1
		}
		edges[i] = stream.Edge{User: uint64(u), Item: uint64(rng.Intn(card))}
	}
	return edges
}

func jsonNumber(t *testing.T, body, field string) float64 {
	t.Helper()
	idx := strings.Index(body, `"`+field+`":`)
	if idx < 0 {
		t.Fatalf("field %q missing in %s", field, body)
	}
	rest := body[idx+len(field)+3:]
	end := strings.IndexAny(rest, ",}")
	if end < 0 {
		t.Fatalf("unterminated field %q in %s", field, body)
	}
	var v float64
	if _, err := fmt.Sscanf(strings.TrimSpace(rest[:end]), "%g", &v); err != nil {
		t.Fatalf("field %q not a number in %s: %v", field, body, err)
	}
	return v
}

// TestServerEndToEnd: ingest a batched workload over HTTP (with one epoch
// rotation in the middle), then check /estimate, /total, /topk, /users
// against exact ground truth within the tolerances the integration suite
// uses elsewhere.
func TestServerEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, testConfig(""))
	edges := zipfEdges(3, 120000, 400, 4000)
	truth := exact.NewTracker()
	for _, e := range edges {
		truth.Observe(e.User, e.Item)
	}

	// Whole-stream accuracy is checked against whole-stream ground truth,
	// so no rotation yet: this workload redraws items uniformly, and a
	// mid-stream epoch boundary would legitimately re-count pairs observed
	// on both sides of it (the window's documented 1/(k−1) slop).
	const batch = 10000
	for i := 0; i < len(edges); i += batch {
		end := i + batch
		if end > len(edges) {
			end = len(edges)
		}
		ingest(t, ts.URL, edges[i:end], true)
	}

	// Per-user estimates on the heavy users.
	bad := 0
	checked := 0
	truth.Users(func(u uint64, card int) {
		if card < 100 {
			return
		}
		checked++
		code, body := get(t, fmt.Sprintf("%s/estimate?user=%d", ts.URL, u))
		if code != http.StatusOK {
			t.Fatalf("estimate returned %d: %s", code, body)
		}
		est := jsonNumber(t, body, "estimate")
		if math.Abs(est-float64(card)) > 0.3*float64(card) {
			bad++
		}
	})
	if checked < 10 {
		t.Fatalf("workload produced only %d heavy users", checked)
	}
	if bad > checked/5 {
		t.Fatalf("%d of %d heavy users estimated outside 30%%", bad, checked)
	}

	// Default total: the O(1) summed reading.
	code, body := get(t, ts.URL+"/total")
	if code != http.StatusOK {
		t.Fatalf("total returned %d: %s", code, body)
	}
	if !strings.Contains(body, `"method":"summed"`) {
		t.Fatalf("plain /total should serve the summed reading: %s", body)
	}
	want := float64(truth.TotalCardinality())
	if total := jsonNumber(t, body, "total"); math.Abs(total-want) > 0.15*want {
		t.Fatalf("summed total %v, truth %v", total, want)
	}

	// Merged total on request.
	code, body = get(t, ts.URL+"/total?method=merged")
	if code != http.StatusOK {
		t.Fatalf("total?method=merged returned %d: %s", code, body)
	}
	if !strings.Contains(body, `"method":"merged"`) {
		t.Fatalf("shared-seed shards did not merge: %s", body)
	}
	if total := jsonNumber(t, body, "total"); math.Abs(total-want) > 0.15*want {
		t.Fatalf("merged total %v, truth %v", total, want)
	}

	// Unknown method is refused.
	if code, body = get(t, ts.URL+"/total?method=nope"); code != http.StatusBadRequest {
		t.Fatalf("total?method=nope returned %d: %s", code, body)
	}

	// User count is exact for FreeRS (every observed user has an entry).
	_, body = get(t, ts.URL+"/users")
	if got := int(jsonNumber(t, body, "count")); got != truth.NumUsers() {
		t.Fatalf("users count %d, truth %d", got, truth.NumUsers())
	}

	// TopK: user 0 has the largest cardinality by construction.
	code, body = get(t, ts.URL+"/topk?k=3")
	if code != http.StatusOK {
		t.Fatalf("topk returned %d: %s", code, body)
	}
	if !strings.Contains(body, `"user":0`) {
		t.Fatalf("top-3 misses the heaviest user: %s", body)
	}

	// Now advance an epoch and confirm the time side is alive end to end.
	if code, body := post(t, ts.URL+"/rotate", ""); code != http.StatusOK {
		t.Fatalf("rotate returned %d: %s", code, body)
	}

	// Health and metrics reflect the traffic.
	_, body = get(t, ts.URL+"/healthz")
	if !strings.Contains(body, `"status":"ok"`) || !strings.Contains(body, `"epoch":1`) {
		t.Fatalf("healthz: %s", body)
	}
	_, body = get(t, ts.URL+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("cardserved_edges_ingested_total %d", len(edges)),
		"cardserved_batches_total 12",
		"cardserved_rotations_total 1",
		`cardserved_shard_user_entries{shard="0"}`,
		`cardserved_http_request_seconds_bucket{handler="/ingest",le="+Inf"} 12`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServerMalformedBatchAtomicallyRefused pins the documented policy: a
// batch with any bad line is rejected with 400 and NOTHING from it is
// ingested — the valid lines do not land either.
func TestServerMalformedBatchAtomicallyRefused(t *testing.T) {
	_, ts := newTestServer(t, testConfig(""))
	code, body := post(t, ts.URL+"/ingest?wait=1", "1 100\n2 200\nnot-a-user 300\n3 300\n")
	if code != http.StatusBadRequest {
		t.Fatalf("malformed batch returned %d: %s", code, body)
	}
	if !strings.Contains(body, "nothing ingested") {
		t.Fatalf("rejection does not state atomic refusal: %s", body)
	}
	if _, users := get(t, ts.URL+"/users"); jsonNumber(t, users, "count") != 0 {
		t.Fatalf("edges leaked from a refused batch: %s", users)
	}
	// The corrected batch goes through.
	if code, _ := post(t, ts.URL+"/ingest?wait=1", "1 100\n2 200\n3 300\n"); code != http.StatusOK {
		t.Fatalf("corrected batch returned %d", code)
	}
	if _, users := get(t, ts.URL+"/users"); jsonNumber(t, users, "count") != 3 {
		t.Fatalf("corrected batch not ingested: %s", users)
	}
	// Comments and blank lines are protocol, not errors.
	if code, _ := post(t, ts.URL+"/ingest?wait=1", "# header\n\n4 100\n"); code != http.StatusOK {
		t.Fatalf("comment lines refused")
	}
	// Extra columns are malformed too — the service must never silently
	// truncate "user item count" rows to bare pairs.
	if code, body := post(t, ts.URL+"/ingest?wait=1", "5 100 7\n"); code != http.StatusBadRequest {
		t.Fatalf("three-field line returned %d: %s", code, body)
	}
}

func TestServerRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"method":  {Method: "nope"},
		"gens":    {Generations: 1},
		"workers": {Workers: -1},
		"queue":   {QueueDepth: -1},
		"body":    {MaxBodyBytes: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad %s accepted", name)
		}
	}
}

func TestServerBadQueries(t *testing.T) {
	_, ts := newTestServer(t, testConfig(""))
	for path, want := range map[string]int{
		"/estimate":          http.StatusBadRequest, // no user
		"/estimate?user=abc": http.StatusBadRequest,
		"/topk?k=0":          http.StatusBadRequest,
		"/topk?k=x":          http.StatusBadRequest,
		"/nosuch":            http.StatusNotFound,
	} {
		if code, body := get(t, ts.URL+path); code != want {
			t.Fatalf("%s returned %d (want %d): %s", path, code, want, body)
		}
	}
	// String keys hash through streamcard.Key.
	if code, _ := get(t, ts.URL+"/estimate?key=10.0.0.7"); code != http.StatusOK {
		t.Fatalf("key= lookup failed")
	}
}

// TestServerGracefulShutdownBitIdenticalRestore is the acceptance e2e:
// ingest 100k+ edges over HTTP in batches, stop the server gracefully (the
// final checkpoint), restart from the spool, continue ingesting — and the
// restarted server's every answer is bit-identical to an uninterrupted
// twin fed the same traffic.
func TestServerGracefulShutdownBitIdenticalRestore(t *testing.T) {
	spool := t.TempDir()
	edges := zipfEdges(17, 120000, 500, 5000)
	half := len(edges) / 2
	const batch = 5000

	feed := func(url string, part []stream.Edge, rotateEvery int) {
		for i := 0; i < len(part); i += batch {
			end := i + batch
			if end > len(part) {
				end = len(part)
			}
			ingest(t, url, part[i:end], true)
			if rotateEvery > 0 && (i/batch+1)%rotateEvery == 0 {
				post(t, url+"/rotate", "")
			}
		}
	}

	// Phase 1: server A takes the first half, rotating every 4 batches.
	a, err := New(testConfig(spool))
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	feed(tsA.URL, edges[:half], 4)
	tsA.Close()
	if err := a.Close(); err != nil { // graceful stop: drain + final checkpoint
		t.Fatal(err)
	}
	if _, err := os.Stat(spool + "/current.ckpt"); err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}

	// Phase 2: server B restarts from the spool and takes the second half.
	b, err := New(testConfig(spool))
	if err != nil {
		t.Fatalf("restart from checkpoint: %v", err)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	defer b.Close()
	if b.Epoch() != a.Epoch() {
		t.Fatalf("restored epoch %d, want %d", b.Epoch(), a.Epoch())
	}
	feed(tsB.URL, edges[half:], 4)

	// The uninterrupted twin sees all traffic in one life, same rotation
	// schedule (every 4 batches across the whole stream — the halves are
	// multiples of 4 batches, so the schedules line up).
	c, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(c.Handler())
	defer tsC.Close()
	defer c.Close()
	feed(tsC.URL, edges[:half], 4)
	feed(tsC.URL, edges[half:], 4)

	// Bit-identical: every user's estimate, the merged total, the user
	// count, and the epoch must agree exactly — restored state plus
	// continued traffic is indistinguishable from never having stopped.
	if b.Epoch() != c.Epoch() {
		t.Fatalf("epochs %d vs %d", b.Epoch(), c.Epoch())
	}
	wantUsers := make(map[uint64]float64)
	c.Estimator().Users(func(u uint64, e float64) { wantUsers[u] = e })
	gotUsers := make(map[uint64]float64)
	b.Estimator().Users(func(u uint64, e float64) { gotUsers[u] = e })
	if len(gotUsers) != len(wantUsers) {
		t.Fatalf("user sets differ: %d vs %d", len(gotUsers), len(wantUsers))
	}
	for u, want := range wantUsers {
		if got, ok := gotUsers[u]; !ok || got != want {
			t.Fatalf("user %d: restored %v, twin %v", u, gotUsers[u], want)
		}
	}
	bTotal, errB := b.Estimator().TotalDistinctMerged()
	cTotal, errC := c.Estimator().TotalDistinctMerged()
	if errB != nil || errC != nil {
		t.Fatalf("merged totals: %v, %v", errB, errC)
	}
	if bTotal != cTotal {
		t.Fatalf("merged totals %v vs %v", bTotal, cTotal)
	}
	// And over HTTP, spot-checking the serving path end to end.
	for _, u := range []uint64{0, 1, 7, 42, 137} {
		_, gotB := get(t, fmt.Sprintf("%s/estimate?user=%d", tsB.URL, u))
		_, gotC := get(t, fmt.Sprintf("%s/estimate?user=%d", tsC.URL, u))
		if gotB != gotC {
			t.Fatalf("user %d over HTTP: %s vs %s", u, gotB, gotC)
		}
	}
}

// TestServerSpoolFingerprintMismatch: a checkpoint must refuse to restore
// into a differently configured service instead of silently adopting it.
func TestServerSpoolFingerprintMismatch(t *testing.T) {
	spool := t.TempDir()
	s, err := New(testConfig(spool))
	if err != nil {
		t.Fatal(err)
	}
	s.submit([]stream.Edge{{User: 1, Item: 2}}, true)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"memory":      func(c *Config) { c.MemoryBits = 1 << 21 },
		"shards":      func(c *Config) { c.Shards = 8 },
		"generations": func(c *Config) { c.Generations = 2 },
		"seed":        func(c *Config) { c.Seed = 99 },
		"method":      func(c *Config) { c.Method = "freebs" },
	} {
		cfg := testConfig(spool)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s mismatch restored silently", name)
		}
	}
	// The matching configuration still restores.
	ok, err := New(testConfig(spool))
	if err != nil {
		t.Fatal(err)
	}
	if ok.Estimator().NumUsers() != 1 {
		t.Fatalf("restore lost the user")
	}
	ok.cfg.SpoolDir = "" // skip the shutdown checkpoint
	ok.Close()
}

// TestServerCorruptSpoolRefused: bit rot in the spool must be a startup
// error, not a silent half-restore.
func TestServerCorruptSpoolRefused(t *testing.T) {
	spool := t.TempDir()
	s, err := New(testConfig(spool))
	if err != nil {
		t.Fatal(err)
	}
	s.submit([]stream.Edge{{User: 1, Item: 2}}, true)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := spool + "/current.ckpt"
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(testConfig(spool)); err == nil {
		t.Fatal("corrupt checkpoint restored")
	}
}

// TestServerConcurrentIngestAndRotation hammers the pipeline from many
// clients while epochs rotate — under -race this proves the ingest gate's
// quiesce-cut discipline, and the edges-ingested counter must account for
// every edge. (TestServerTorture is the heavier sibling: both protocols,
// wait and async, a query storm, and checkpoints in the mix.)
func TestServerConcurrentIngestAndRotation(t *testing.T) {
	s, ts := newTestServer(t, testConfig(""))
	const (
		clients = 8
		batches = 20
		perB    = 500
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c) << 32
			for b := 0; b < batches; b++ {
				var sb strings.Builder
				for i := 0; i < perB; i++ {
					fmt.Fprintf(&sb, "%d %d\n", base|uint64(i%50), uint64(b*perB+i))
				}
				resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(sb.String()))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			post(t, ts.URL+"/rotate", "")
			get(t, ts.URL+"/total")
			get(t, ts.URL+"/topk?k=5")
		}
	}()
	wg.Wait()
	// Flush the async pipeline (a true barrier: queued AND mid-absorption
	// batches), then the counter is exact.
	if code, _ := post(t, ts.URL+"/flush", ""); code != http.StatusOK {
		t.Fatalf("flush returned %d", code)
	}
	if got := s.edgesIngested.Value(); got != clients*batches*perB {
		t.Fatalf("ingested %d edges, want %d", got, clients*batches*perB)
	}
	if s.Epoch() != 10 {
		t.Fatalf("epoch %d after 10 rotations", s.Epoch())
	}
}

// TestServerAsyncFlushBarrier: 202-mode ingestion plus one /flush is
// equivalent to waited ingestion — after the flush returns, queries
// reflect every accepted batch.
func TestServerAsyncFlushBarrier(t *testing.T) {
	s, ts := newTestServer(t, testConfig(""))
	for b := 0; b < 10; b++ {
		var sb strings.Builder
		for i := 0; i < 200; i++ {
			fmt.Fprintf(&sb, "%d %d\n", b*200+i, i)
		}
		if code, body := post(t, ts.URL+"/ingest", sb.String()); code != http.StatusAccepted {
			t.Fatalf("async ingest returned %d: %s", code, body)
		}
	}
	if code, _ := post(t, ts.URL+"/flush", ""); code != http.StatusOK {
		t.Fatal("flush failed")
	}
	// Every accepted edge is in the sketch — the counter only moves after
	// absorption, so it is the barrier's exact witness. (User-count is NOT
	// exactly 2000 here: a few single-pair users deterministically land on
	// already-set shared registers and keep estimate 0.)
	if got := s.edgesIngested.Value(); got != 2000 {
		t.Fatalf("flush returned with %d of 2000 edges absorbed", got)
	}
	if _, body := get(t, ts.URL+"/users"); jsonNumber(t, body, "count") < 1900 {
		t.Fatalf("user count implausibly low after flush: %s", body)
	}
}

// TestServerTimers: wall-clock rotation and periodic checkpointing fire on
// their own. Generous deadlines keep this robust on loaded CI machines.
func TestServerTimers(t *testing.T) {
	spool := t.TempDir()
	cfg := testConfig(spool)
	cfg.Epoch = 20 * time.Millisecond
	cfg.CheckpointEvery = 20 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.submit([]stream.Edge{{User: 1, Item: 1}}, true)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Epoch() >= 1 && s.checkpoints.Value() >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("after 5s: epoch=%d checkpoints=%d", s.Epoch(), s.checkpoints.Value())
}

// TestServerClosedRefusesIngest: after Close, ingestion reports 503 and
// queries keep answering from the final state.
func TestServerClosedRefusesIngest(t *testing.T) {
	cfg := testConfig("")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ingest(t, ts.URL, []stream.Edge{{User: 5, Item: 6}}, true)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if code, _ := post(t, ts.URL+"/ingest", "1 2\n"); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after Close returned %d", code)
	}
	_, body := get(t, ts.URL+"/estimate?user=5")
	if est := jsonNumber(t, body, "estimate"); est <= 0 {
		t.Fatalf("query after Close lost state: %s", body)
	}
}

// TestServerOversizedBatch: the body limit turns runaway batches into 413,
// not memory pressure.
func TestServerOversizedBatch(t *testing.T) {
	cfg := testConfig("")
	cfg.MaxBodyBytes = 64
	_, ts := newTestServer(t, cfg)
	code, _ := post(t, ts.URL+"/ingest", strings.Repeat("1 2\n", 100))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch returned %d", code)
	}
}
