package server

// The WAL's server-level contract: a crash (a server abandoned without
// Close) replays to bit-identical state — serialized bytes, not just
// estimates — on top of whatever checkpoint existed; checkpoints truncate
// the log so disk stays bounded; the observability surface (/metrics
// gauges and counters, POST /flush as a durability barrier) behaves; and
// the WAL-off hot path pays nothing for the feature's existence.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
)

func walConfig(spool, walDir string) Config {
	cfg := testConfig(spool)
	cfg.WALDir = walDir
	cfg.WALSync = "never" // tests force syncs explicitly; policy is orthogonal
	return cfg
}

// shardStates serializes every shard's full windowed state.
func shardStates(t *testing.T, s *Server) [][]byte {
	t.Helper()
	out := make([][]byte, len(s.wins))
	for i, w := range s.wins {
		b, err := w.MarshalBinary()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		out[i] = b
	}
	return out
}

// metricValue scans a /metrics body for an unlabeled series value.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s missing from:\n%s", name, body)
	return 0
}

// TestServerWALCrashReplayBitIdentical is the crash-sim half of the
// SIGKILL story (the cmd/cardserved e2e test kills a real process): a
// server with a WAL takes a schedule of batches, rotations, and one
// mid-stream checkpoint, then is ABANDONED — no Close, no final
// checkpoint, exactly what kill -9 leaves behind. A second server opening
// the same directories must restore the checkpoint, replay the log tail,
// and land on byte-identical serialized shard state — same registers,
// same generations, same epoch — as an uninterrupted twin that absorbed
// the identical schedule. Runs under -race in CI.
func TestServerWALCrashReplayBitIdentical(t *testing.T) {
	spool, walDir := t.TempDir(), t.TempDir()
	cfg := walConfig(spool, walDir)
	cfg.WALSegmentBytes = 8 << 10 // several roll-overs within the schedule
	crash, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No Close: the executors, committer, and open segment file are simply
	// abandoned, as a kill would leave them.

	twin, err := New(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()

	edges := zipfEdges(41, 30000, 250, 2000)
	const batch = 700
	for i, n := 0, 0; i < len(edges); i, n = i+batch, n+1 {
		end := i + batch
		if end > len(edges) {
			end = len(edges)
		}
		chunk := edges[i:end]
		if err := crash.submit(chunk, true); err != nil {
			t.Fatal(err)
		}
		if err := twin.submit(chunk, true); err != nil {
			t.Fatal(err)
		}
		if n%5 == 4 { // rotations mid-stream, same schedule on both
			crash.rotate()
			twin.rotate()
		}
		if n == 17 { // a checkpoint mid-stream: replay must start ABOVE it
			if err := crash.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if !restored.Restored() {
		t.Fatal("restart did not restore the mid-stream checkpoint")
	}
	if recs, replayedEdges := restored.WALReplayed(); recs == 0 || replayedEdges == 0 {
		t.Fatalf("restart replayed %d records / %d edges; the post-checkpoint tail is missing", recs, replayedEdges)
	}
	if restored.Epoch() != twin.Epoch() {
		t.Fatalf("epoch %d after replay, twin at %d", restored.Epoch(), twin.Epoch())
	}
	got, want := shardStates(t, restored), shardStates(t, twin)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("shard %d serialized state diverged after crash replay (%d vs %d bytes)",
				i, len(got[i]), len(want[i]))
		}
	}
	// Counters are process-local (the checkpoint carries sketch state, not
	// metrics), so the fresh process accounts exactly the replayed tail.
	recs, replayedEdges := restored.WALReplayed()
	if recs == 0 || restored.edgesIngested.Value() != uint64(replayedEdges) {
		t.Fatalf("restored server accounts %d edges, replay reported %d",
			restored.edgesIngested.Value(), replayedEdges)
	}
	more := zipfEdges(43, 2000, 50, 100)
	if err := restored.submit(more, true); err != nil {
		t.Fatal(err)
	}
	if err := twin.submit(more, true); err != nil {
		t.Fatal(err)
	}
	got, want = shardStates(t, restored), shardStates(t, twin)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("shard %d diverged on post-replay ingest", i)
		}
	}
}

// TestServerWALDoubleCrashReplay: a second crash WITHOUT any intervening
// checkpoint replays the same log again — replay must be idempotent from
// the checkpoint's fixed position, not consume the log.
func TestServerWALDoubleCrashReplay(t *testing.T) {
	spool, walDir := t.TempDir(), t.TempDir()
	cfg := walConfig(spool, walDir)
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := zipfEdges(47, 5000, 100, 500)
	if err := first.submit(edges, true); err != nil {
		t.Fatal(err)
	}
	first.rotate()
	// Crash #1: abandoned. Crash #2: open, verify, abandon again.
	for round := 0; round < 2; round++ {
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("restart %d: %v", round, err)
		}
		if recs, _ := s.WALReplayed(); recs != 2 { // 1 batch + 1 rotation
			t.Fatalf("restart %d replayed %d records, want 2", round, recs)
		}
		if s.Epoch() != 1 || s.edgesIngested.Value() != uint64(len(edges)) {
			t.Fatalf("restart %d: epoch %d, %d edges", round, s.Epoch(), s.edgesIngested.Value())
		}
	}
}

// TestServerWALCheckpointTruncatesLog pins checkpoint-as-truncation-point:
// across repeated ingest+checkpoint cycles the WAL directory stays at a
// bounded segment count and byte size, and the truncation counter moves.
func TestServerWALCheckpointTruncatesLog(t *testing.T) {
	spool, walDir := t.TempDir(), t.TempDir()
	cfg := walConfig(spool, walDir)
	cfg.WALSegmentBytes = 4 << 10
	s, ts := newTestServer(t, cfg)

	walBytesOnDisk := func() (files int, bytes int64) {
		entries, err := os.ReadDir(walDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			fi, err := os.Stat(filepath.Join(walDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files++
			bytes += fi.Size()
		}
		return
	}
	for cycle := 0; cycle < 12; cycle++ {
		for b := 0; b < 6; b++ {
			if err := s.submit(zipfEdges(uint64(100+cycle*10+b), 800, 60, 300), true); err != nil {
				t.Fatal(err)
			}
		}
		if cycle%3 == 2 {
			s.rotate()
		}
		if code, body := post(t, ts.URL+"/checkpoint", ""); code != 200 {
			t.Fatalf("checkpoint cycle %d: %d %s", cycle, code, body)
		}
		files, size := walBytesOnDisk()
		// Every cycle writes several 4 KiB segments; after each checkpoint
		// only the fresh active segment (and at most one boundary segment)
		// may survive.
		if files > 2 || size > 2*int64(cfg.WALSegmentBytes) {
			t.Fatalf("cycle %d: %d WAL files, %d bytes on disk after checkpoint", cycle, files, size)
		}
	}
	_, body := get(t, ts.URL+"/metrics")
	if metricValue(t, body, "cardserved_wal_segments_truncated_total") == 0 {
		t.Fatal("truncation counter never moved across checkpoint cycles")
	}
	if v := metricValue(t, body, "cardserved_wal_segment_count"); v > 2 {
		t.Fatalf("segment count gauge reads %v after truncation", v)
	}
}

// TestServerWALMetricsAndFlushBarrier: the WAL observability surface —
// append counters move with ingest, unsynced bytes accumulate under a
// never-sync policy, and POST /flush forces the group-commit fsync that
// drops the unsynced gauge to exactly 0 and records a histogram sample.
func TestServerWALMetricsAndFlushBarrier(t *testing.T) {
	s, ts := newTestServer(t, walConfig(t.TempDir(), t.TempDir()))
	ingest(t, ts.URL, zipfEdges(51, 3000, 80, 400), true)

	_, body := get(t, ts.URL+"/metrics")
	if metricValue(t, body, "cardserved_wal_records_appended_total") == 0 {
		t.Fatalf("append counter flat after ingest:\n%s", body)
	}
	if metricValue(t, body, "cardserved_wal_bytes_written_total") == 0 {
		t.Fatal("byte counter flat after ingest")
	}
	if metricValue(t, body, "cardserved_wal_unsynced_bytes") == 0 {
		t.Fatal("no unsynced bytes under the never policy before /flush")
	}
	if code, _ := post(t, ts.URL+"/flush", ""); code != 200 {
		t.Fatal("flush failed")
	}
	_, body = get(t, ts.URL+"/metrics")
	if v := metricValue(t, body, "cardserved_wal_unsynced_bytes"); v != 0 {
		t.Fatalf("unsynced gauge reads %v after /flush, want 0", v)
	}
	if !strings.Contains(body, "cardserved_wal_fsync_seconds") {
		t.Fatalf("fsync histogram missing from /metrics:\n%s", body)
	}
	_ = s
}

// TestServerWALFingerprintMismatch: a WAL written under one configuration
// refuses to start under another — replaying those records into sketches
// of a different shape would silently corrupt every later answer.
func TestServerWALFingerprintMismatch(t *testing.T) {
	walDir := t.TempDir()
	cfg := walConfig("", walDir)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.submit(zipfEdges(53, 100, 10, 50), true); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed = 99
	if _, err := New(cfg2); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("differently seeded server opened the WAL: err = %v", err)
	}
}

// TestServerWALOffHotPathAllocs is the acceptance benchmark-assertion for
// "WAL off costs nothing": the full submit path (partition, fan-out,
// absorb, wait) on a warmed-up server stays at its tiny pre-WAL
// allocation count. The WAL branch is a nil check — taking it can
// allocate nothing — so a regression here means the hot path itself
// changed, not the WAL. (With the WAL ON the same path additionally pays
// the log append; that cost is measured and gated by cmd/querybench's
// WAL-overhead phase, not here.)
func TestServerWALOffHotPathAllocs(t *testing.T) {
	s, err := New(testConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	edges := zipfEdges(57, 2000, 40, 200)
	// Warm up: absorb the same edges until the sketches and the user table
	// stop growing, so steady-state runs measure the pipeline, not sketch
	// resizing.
	for i := 0; i < 50; i++ {
		if err := s.submit(edges, true); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.submit(edges, true); err != nil {
			t.Fatal(err)
		}
	})
	// Today's steady-state path costs a handful of allocations (the batch
	// tracker, the waiter channel, snapshot publication); the bound has
	// headroom for noise but fails loudly if the WAL-off path ever grows a
	// per-batch buffer or log hop.
	const maxAllocs = 12
	if allocs > maxAllocs {
		t.Fatalf("WAL-off submit allocates %.1f/op, want <= %d", allocs, maxAllocs)
	}
}

// TestServerWALSyncAlwaysPolicy: end-to-end under the paranoid policy —
// every acked batch is already fsynced, so the unsynced gauge reads 0
// without any flush, and ingest through HTTP still works on both
// protocols.
func TestServerWALSyncAlwaysPolicy(t *testing.T) {
	cfg := walConfig(t.TempDir(), t.TempDir())
	cfg.WALSync = "always"
	s, ts := newTestServer(t, cfg)
	ingest(t, ts.URL, zipfEdges(59, 1000, 30, 100), true)
	if got := s.wal.UnsyncedBytes(); got != 0 {
		t.Fatalf("%d unsynced bytes after an acked batch under always", got)
	}
	_, body := get(t, ts.URL+"/metrics")
	if metricValue(t, body, "cardserved_wal_unsynced_bytes") != 0 {
		t.Fatal("unsynced gauge nonzero under always policy")
	}
}

// TestServerWALConfigValidation: bad WAL flag values are construction
// errors, not latent runtime surprises.
func TestServerWALConfigValidation(t *testing.T) {
	bad := []Config{
		func() Config { c := testConfig(""); c.WALSync = "sometimes"; return c }(),
		func() Config { c := testConfig(""); c.WALFlushInterval = -time.Second; return c }(),
		func() Config { c := testConfig(""); c.WALSegmentBytes = -1; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	// And the flag values all parse.
	for _, p := range []string{"", "always", "interval", "never"} {
		c := testConfig("")
		c.WALDir = t.TempDir()
		c.WALSync = p
		s, err := New(c)
		if err != nil {
			t.Fatalf("policy %q: %v", p, err)
		}
		s.Close()
	}
}

// TestServerTortureWithWAL re-runs the pipeline's -race acceptance storm
// with the WAL in the loop: concurrent submitters on both protocols,
// rotations, checkpoints (now quiesce cuts + truncations), a query storm —
// then exact accounting, and a crash-replay of whatever the storm logged.
func TestServerTortureWithWAL(t *testing.T) {
	spool, walDir := t.TempDir(), t.TempDir()
	cfg := walConfig(spool, walDir)
	cfg.WALSync = "interval"
	cfg.WALFlushInterval = 2 * time.Millisecond
	cfg.WALSegmentBytes = 32 << 10
	s, ts := newTestServer(t, cfg)
	const (
		clients = 4
		batches = 15
		perB    = 300
	)
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			base := uint64(c) << 32
			for b := 0; b < batches; b++ {
				edges := make([]stream.Edge, perB)
				for i := range edges {
					edges[i] = stream.Edge{User: base | uint64(i%30), Item: uint64(b*perB + i)}
				}
				if err := s.submit(edges, b%2 == 0); err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
			errs <- nil
		}(c)
	}
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/checkpoint", "")
		post(t, ts.URL+"/rotate", "")
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if code, _ := post(t, ts.URL+"/flush", ""); code != 200 {
		t.Fatal("flush failed")
	}
	if got := s.edgesIngested.Value(); got != clients*batches*perB {
		t.Fatalf("ingested %d edges, want %d", got, clients*batches*perB)
	}
	// Close cleanly (final checkpoint + truncation), then restart: nothing
	// to replay, state intact.
	epoch := s.Epoch()
	total := s.edgesIngested.Value()
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if recs, _ := s2.WALReplayed(); recs != 0 {
		t.Fatalf("clean shutdown left %d WAL records to replay", recs)
	}
	if s2.Epoch() != epoch {
		t.Fatalf("epoch %d after clean restart, want %d", s2.Epoch(), epoch)
	}
	_ = total
}
