package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/stream"
)

// spoolFiles returns the spool directory's file names, sorted.
func spoolFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// TestSpoolRetention: every checkpoint leaves current.ckpt plus a history
// entry, and history beyond the newest Retain is pruned after each
// successful write — a long-lived daemon's spool stays bounded.
func TestSpoolRetention(t *testing.T) {
	spool := t.TempDir()
	cfg := testConfig(spool)
	cfg.Retain = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.submit([]stream.Edge{{User: 1, Item: 2}}, true)
	for i := 0; i < 5; i++ {
		s.submit([]stream.Edge{{User: 1, Item: uint64(10 + i)}}, true)
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"ckpt-000000000004.ckpt", "ckpt-000000000005.ckpt", "current.ckpt"}
	if got := spoolFiles(t, spool); !equalStrings(got, want) {
		t.Fatalf("after 5 checkpoints with Retain=2: %v, want %v", got, want)
	}
	// current.ckpt and the newest history entry are the same checkpoint.
	cur, err := os.ReadFile(filepath.Join(spool, "current.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	hist, err := os.ReadFile(filepath.Join(spool, "ckpt-000000000005.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(cur) != string(hist) {
		t.Fatal("newest history entry differs from current.ckpt")
	}
	s.cfg.SpoolDir = "" // skip the shutdown checkpoint
	s.Close()

	// A restart resumes the sequence past the retained files instead of
	// overwriting them.
	cfg2 := testConfig(spool)
	cfg2.Retain = 2
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Restored() {
		t.Fatal("restart did not restore")
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want = []string{"ckpt-000000000005.ckpt", "ckpt-000000000006.ckpt", "current.ckpt"}
	if got := spoolFiles(t, spool); !equalStrings(got, want) {
		t.Fatalf("after restart checkpoint: %v, want %v", got, want)
	}
	s2.cfg.SpoolDir = ""
	s2.Close()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSpoolRestoreFromHistory: if only the current.ckpt pointer file is
// lost, startup falls back to the newest retained history entry.
func TestSpoolRestoreFromHistory(t *testing.T) {
	spool := t.TempDir()
	s, err := New(testConfig(spool))
	if err != nil {
		t.Fatal(err)
	}
	s.submit([]stream.Edge{{User: 42, Item: 7}}, true)
	if err := s.Close(); err != nil { // final checkpoint
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(spool, "current.ckpt")); err != nil {
		t.Fatal(err)
	}
	s2, err := New(testConfig(spool))
	if err != nil {
		t.Fatalf("restore from history: %v", err)
	}
	if !s2.Restored() || s2.Estimator().NumUsers() != 1 {
		t.Fatalf("history fallback lost state (restored=%v users=%d)",
			s2.Restored(), s2.Estimator().NumUsers())
	}
	s2.cfg.SpoolDir = ""
	s2.Close()
}

// TestSpoolRetentionWithoutHardlinks forces the no-hardlink fallback
// (filesystems like FAT/exFAT, some network and FUSE mounts, reject
// link(2)) and asserts the retention contract is preserved byte for byte:
// every checkpoint still leaves a history entry identical to current.ckpt,
// pruning still bounds the spool, and a restart still restores from the
// copied history when the pointer file is lost.
func TestSpoolRetentionWithoutHardlinks(t *testing.T) {
	prev := linkFile
	linkFile = func(oldname, newname string) error {
		return &os.LinkError{Op: "link", Old: oldname, New: newname, Err: errors.New("operation not permitted (forced by test)")}
	}
	t.Cleanup(func() { linkFile = prev })

	spool := t.TempDir()
	cfg := testConfig(spool)
	cfg.Retain = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.submit([]stream.Edge{{User: 9, Item: uint64(100 + i)}}, true)
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d with hardlinks disabled: %v", i, err)
		}
	}
	want := []string{"ckpt-000000000003.ckpt", "ckpt-000000000004.ckpt", "current.ckpt"}
	if got := spoolFiles(t, spool); !equalStrings(got, want) {
		t.Fatalf("fallback retention: %v, want %v", got, want)
	}
	cur, err := os.ReadFile(filepath.Join(spool, "current.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	hist, err := os.ReadFile(filepath.Join(spool, "ckpt-000000000004.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(cur) != string(hist) {
		t.Fatal("copied history entry differs from current.ckpt")
	}
	// The copy must be an independent file, not a link: rewriting
	// current.ckpt must not change the history entry.
	if st, err := os.Stat(filepath.Join(spool, "ckpt-000000000004.ckpt")); err != nil || st.Size() == 0 {
		t.Fatalf("history entry missing or empty: %v", err)
	}
	s.submit([]stream.Edge{{User: 10, Item: 1}}, true)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	hist2, err := os.ReadFile(filepath.Join(spool, "ckpt-000000000004.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(hist2) != string(hist) {
		t.Fatal("older history entry changed when a newer checkpoint was written")
	}
	s.cfg.SpoolDir = "" // skip the shutdown checkpoint
	s.Close()

	// Restore still works from a copied (non-linked) history entry when
	// only current.ckpt is lost.
	if err := os.Remove(filepath.Join(spool, "current.ckpt")); err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(spool)
	cfg2.Retain = 2
	s2, err := New(cfg2)
	if err != nil {
		t.Fatalf("restore from copied history: %v", err)
	}
	if !s2.Restored() || s2.Estimator().NumUsers() < 2 {
		t.Fatalf("copied-history fallback lost state (restored=%v users=%d)",
			s2.Restored(), s2.Estimator().NumUsers())
	}
	s2.cfg.SpoolDir = ""
	s2.Close()
}

func TestSpoolRetainConfigValidation(t *testing.T) {
	cfg := testConfig("")
	cfg.Retain = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative Retain accepted")
	}
}

// usersResponse mirrors the /users JSON document.
type usersResponse struct {
	Users []struct {
		User     uint64  `json:"user"`
		Estimate float64 `json:"estimate"`
	} `json:"users"`
	Count     int  `json:"count"`
	Truncated bool `json:"truncated"`
}

// TestServerUsersStreaming: /users streams the full per-user listing in
// deterministic order, consistent with /estimate, and ?limit bounds the
// entries while still reporting the full count.
func TestServerUsersStreaming(t *testing.T) {
	_, ts := newTestServer(t, testConfig(""))
	var sb strings.Builder
	for u := 1; u <= 50; u++ {
		for i := 0; i < 20; i++ {
			fmt.Fprintf(&sb, "%d %d\n", u, i)
		}
	}
	if code, _ := post(t, ts.URL+"/ingest?wait=1", sb.String()); code != http.StatusOK {
		t.Fatal("ingest failed")
	}

	code, body := get(t, ts.URL+"/users")
	if code != http.StatusOK {
		t.Fatalf("/users returned %d: %s", code, body)
	}
	var resp usersResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/users is not valid JSON: %v\n%s", err, body)
	}
	if resp.Truncated || resp.Count != len(resp.Users) || resp.Count < 45 {
		t.Fatalf("count=%d entries=%d truncated=%v", resp.Count, len(resp.Users), resp.Truncated)
	}
	for _, e := range resp.Users {
		_, est := get(t, fmt.Sprintf("%s/estimate?user=%d", ts.URL, e.User))
		if got := jsonNumber(t, est, "estimate"); got != e.Estimate {
			t.Fatalf("user %d: /users says %v, /estimate says %v", e.User, e.Estimate, got)
		}
	}
	// Two reads stream identically (the deterministic-order contract).
	_, body2 := get(t, ts.URL+"/users")
	if body != body2 {
		t.Fatal("/users output not reproducible")
	}

	code, body = get(t, ts.URL+"/users?limit=7")
	if code != http.StatusOK {
		t.Fatalf("/users?limit returned %d", code)
	}
	var lim usersResponse
	if err := json.Unmarshal([]byte(body), &lim); err != nil {
		t.Fatalf("limited /users is not valid JSON: %v", err)
	}
	if len(lim.Users) != 7 || lim.Count != resp.Count || !lim.Truncated {
		t.Fatalf("limit=7: entries=%d count=%d truncated=%v", len(lim.Users), lim.Count, lim.Truncated)
	}
	for i, e := range lim.Users {
		if e != resp.Users[i] {
			t.Fatalf("limited entry %d differs from full listing", i)
		}
	}

	if code, _ := get(t, ts.URL+"/users?limit=x"); code != http.StatusBadRequest {
		t.Fatal("bad limit accepted")
	}
	// limit=0 is the pure count query: exact count, no entries, and it
	// must short-circuit the sorted enumeration (not observable here, but
	// the contract is the response shape).
	code, body = get(t, ts.URL+"/users?limit=0")
	if code != http.StatusOK {
		t.Fatalf("limit=0 returned %d: %s", code, body)
	}
	var zero usersResponse
	if err := json.Unmarshal([]byte(body), &zero); err != nil {
		t.Fatalf("limit=0 response not valid JSON: %v", err)
	}
	if len(zero.Users) != 0 || zero.Count != resp.Count || !zero.Truncated {
		t.Fatalf("limit=0: entries=%d count=%d truncated=%v", len(zero.Users), zero.Count, zero.Truncated)
	}
}
