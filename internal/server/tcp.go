package server

// The CWT1 persistent TCP ingest transport (spec: internal/stream/tcpwire.go).
//
// HTTP gives every batch a request/response round trip: per-batch header
// parsing, handler dispatch, and — decisive at service rates — an ack's
// worth of latency serializing each client's next send. CWT1 removes all
// three. A connection is a long-lived stream of sequenced CWB1 frames; the
// server runs two goroutines per connection:
//
//   - The READER loop: scan one frame (into a pooled buffer), decode it
//     zero-copy (stream.DecodeWire aliases the buffer), submitAsync it into
//     the same partition→shard-executor pipeline HTTP uses — under the same
//     ingest gate, so rotation/Drain/Close quiesce semantics are identical —
//     and hand the (seq, walSeq) pair to the acker. The reader never waits
//     for fsync or absorption, so frames pipeline.
//   - The ACKER loop: for each accepted frame, wal.Commit(walSeq) — the
//     group-committed durability barrier, off the read path — then write the
//     compact 12-byte ack. Ack order is frame order (one FIFO channel), so
//     the client's acked prefix is exact. An acked frame is durable exactly
//     as an acked HTTP batch is: append (and, under "always", fsync) happen
//     before the ack bytes exist.
//
// Backpressure: submitAsync blocks when a shard queue is full, which stalls
// the reader, which stops draining the socket, which fills the client's
// send window — flow control all the way back to the producer, with nothing
// buffered unboundedly in between. The stall counter makes it observable.
//
// Buffer life cycle: frame buffers come from a sync.Pool. With one shard
// the partitioner ALIASES the decoded frame rather than copying, so a
// buffer returns to the pool only via the batch's onAbsorbed hook — after
// the executor is completely done with it. Rejected or empty frames return
// their buffer immediately.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/stream"
)

// tcpState is the Server's CWT1 listener state: the registry Close tears
// down, plus the shared frame-buffer pool.
type tcpState struct {
	mu      sync.Mutex
	lns     map[net.Listener]struct{}
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup
	active  atomic.Int64
	bufPool sync.Pool // *[]byte frame read buffers
}

// tcpAck is one pending ack, reader → acker, in frame order.
type tcpAck struct {
	seq    uint64
	status uint16
	walSeq uint64 // nonzero: Commit before acking (the durability barrier)
	t0     time.Time
}

// tcpAckQueueDepth bounds reader→acker handoff. When the acker falls behind
// (a slow fsync, a client not draining acks), the reader blocks here — the
// same backpressure-by-stalling-reads discipline as a full shard queue.
const tcpAckQueueDepth = 256

// ServeTCP serves CWT1 ingest on ln until Close. Each accepted connection
// must open with the 4-byte "CWT1" preamble and then carries sequenced
// CWB1 frames; the server acks each frame out-of-band on the same
// connection. Blocks; returns ErrClosed after Close (the clean shutdown),
// or the first Accept error. Multiple listeners may be served concurrently.
func (s *Server) ServeTCP(ln net.Listener) error {
	s.tcp.mu.Lock()
	if s.tcp.closing {
		s.tcp.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	if s.tcp.lns == nil {
		s.tcp.lns = make(map[net.Listener]struct{})
	}
	s.tcp.lns[ln] = struct{}{}
	s.tcp.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.tcp.mu.Lock()
			closing := s.tcp.closing
			delete(s.tcp.lns, ln)
			s.tcp.mu.Unlock()
			if closing {
				return ErrClosed
			}
			return fmt.Errorf("server: tcp accept: %w", err)
		}
		s.tcp.mu.Lock()
		if s.tcp.closing {
			s.tcp.mu.Unlock()
			conn.Close()
			continue // the closed listener ends the loop on the next Accept
		}
		if s.tcp.conns == nil {
			s.tcp.conns = make(map[net.Conn]struct{})
		}
		s.tcp.conns[conn] = struct{}{}
		s.tcp.wg.Add(1)
		s.tcp.mu.Unlock()
		go s.serveTCPConn(conn)
	}
}

// tcpShutdown (from Close) stops the accept loops and half-closes every
// live connection: CloseRead makes each reader see EOF at its next frame
// boundary without cutting the write side, so the acker still delivers the
// acks for every frame already read. Waits for all connection goroutines.
func (s *Server) tcpShutdown() {
	s.tcp.mu.Lock()
	s.tcp.closing = true
	for ln := range s.tcp.lns {
		ln.Close()
	}
	for c := range s.tcp.conns {
		if hc, ok := c.(interface{ CloseRead() error }); ok {
			_ = hc.CloseRead()
		} else {
			_ = c.Close()
		}
	}
	s.tcp.mu.Unlock()
	s.tcp.wg.Wait()
}

// countingReader counts raw socket reads into a metrics counter.
type countingReader struct {
	r io.Reader
	c *metrics.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(uint64(n))
	}
	return n, err
}

func (s *Server) getFrameBuf() *[]byte {
	if b, ok := s.tcp.bufPool.Get().(*[]byte); ok {
		return b
	}
	b := make([]byte, 0, 64<<10)
	return &b
}

// serveTCPConn runs one connection's reader loop (and spawns its acker).
func (s *Server) serveTCPConn(conn net.Conn) {
	s.tcpConnsTotal.Inc()
	s.tcp.active.Add(1)
	defer func() {
		conn.Close()
		s.tcp.mu.Lock()
		delete(s.tcp.conns, conn)
		s.tcp.mu.Unlock()
		s.tcp.active.Add(-1)
		s.tcp.wg.Done()
	}()

	br := bufio.NewReaderSize(&countingReader{r: conn, c: s.tcpBytesRead}, 64<<10)
	var magic [len(stream.TCPMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != stream.TCPMagic {
		return // not a CWT1 client; nothing was acked, so just close
	}

	acks := make(chan tcpAck, tcpAckQueueDepth)
	ackerDone := make(chan struct{})
	go s.tcpAcker(conn, acks, ackerDone)
	// The reader owns the acks channel: closing it (always, on every exit
	// path) tells the acker to flush and quit; waiting on ackerDone keeps
	// the deferred conn.Close from cutting unsent acks.
	defer func() {
		close(acks)
		<-ackerDone
	}()

	sc := stream.NewFrameScanner(br, int(s.cfg.MaxBodyBytes))
	for {
		bp := s.getFrameBuf()
		seq, payload, err := sc.Next((*bp)[:0])
		if err != nil {
			s.tcp.bufPool.Put(bp)
			if err != io.EOF {
				// Torn or hostile stream: framing is lost, close without
				// acking the damage (the spec's close-don't-resync rule).
				fmt.Fprintf(os.Stderr, "cardserved: tcp %s: %v\n", conn.RemoteAddr(), err)
			}
			return
		}
		*bp = payload // Next may have grown the buffer; pool the new one
		t0 := time.Now()
		s.tcpFrames.Inc()

		edges, derr := stream.DecodeWire(payload)
		if derr != nil {
			// The header's CRC and length delimited this frame exactly, so a
			// bad CWB1 payload rejects alone: ack 400, stay in sync.
			s.tcp.bufPool.Put(bp)
			acks <- tcpAck{seq: seq, status: stream.AckBad, t0: t0}
			continue
		}
		if len(edges) == 0 {
			// Keep-alive frame: acked, never logged (matches HTTP, where an
			// empty batch writes no WAL record).
			s.tcp.bufPool.Put(bp)
			acks <- tcpAck{seq: seq, status: stream.AckOK, t0: t0}
			continue
		}
		// edges aliases payload; the buffer returns to the pool only after
		// the batch is fully absorbed. This send is where backpressure
		// bites: a full shard queue blocks it, stalling this reader.
		b, walSeq, serr := s.submitAsync(edges, false, func() { s.tcp.bufPool.Put(bp) }, s.tcpStalls)
		if serr != nil {
			s.tcp.bufPool.Put(bp)
			if errors.Is(serr, ErrClosed) {
				acks <- tcpAck{seq: seq, status: stream.AckShutdown, t0: t0}
				return
			}
			// WAL append failure: nothing ingested, and the WAL's latched
			// error will refuse every later frame too — same as HTTP's 500.
			acks <- tcpAck{seq: seq, status: stream.AckError, t0: t0}
			continue
		}
		_ = b // absorption is tracked by onAbsorbed; acks don't wait for it
		acks <- tcpAck{seq: seq, status: stream.AckOK, walSeq: walSeq, t0: t0}
	}
}

// tcpAcker is a connection's single ack writer: it commits each accepted
// frame's WAL position (the fsync barrier, under the "always" policy) and
// then writes the 12-byte ack, in frame order. Acks are batched into one
// buffered writer and flushed at every lull (empty channel), so a pipelined
// burst costs one syscall's worth of acks, not one per frame. If the client
// stops reading acks, the write eventually blocks, the ack queue fills, and
// the reader stalls — backpressure again, never unbounded buffering.
func (s *Server) tcpAcker(conn net.Conn, acks <-chan tcpAck, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(conn, 8<<10)
	var rec [stream.AckLen]byte
	dead := false
	for a := range acks {
		if dead {
			continue // client unreachable; drain so the reader never blocks
		}
		if a.walSeq != 0 && s.wal != nil {
			if err := s.wal.Commit(a.walSeq); err != nil {
				// Queued and absorbed, but durability unknown: refuse the
				// ack so the client retries (duplicates are tolerated).
				a.status = stream.AckError
			}
		}
		if _, err := bw.Write(stream.AppendAck(rec[:0], a.seq, a.status)); err != nil {
			dead = true
			continue
		}
		s.tcpAckByStatus[a.status].Inc()
		s.tcpAckLatency.Observe(time.Since(a.t0).Seconds())
		if len(acks) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
			}
		}
	}
	if !dead {
		_ = bw.Flush()
	}
}
