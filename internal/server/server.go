// Package server turns the streamcard library into a long-running
// networked cardinality service: an HTTP daemon that ingests user-item
// edges continuously and answers per-user cardinality queries at any
// moment — the deployment the sliding-window line of work assumes (a
// monitor that is fed forever and asked "how many distinct contacts did
// this host have recently?" at arbitrary instants).
//
// The estimator stack is Sharded(Windowed(FreeRS|FreeBS)): sharding for
// multi-core ingest, windowing so answers cover the recent past, and a
// shared hash seed across shards so /total can merge the shard sketches
// into one low-variance union reading.
//
// Ingest speaks two batch protocols, negotiated by Content-Type: the
// newline-delimited "user item" text protocol (the same format the stream
// codec and cmd/spreaderwatch speak, and the same shape as a time-series
// database's line-protocol write path), and the CWB1 binary frame
// (stream.AppendWire/DecodeWire: length-prefixed fixed-width u64 pairs
// behind a CRC, decoded zero-copy into the edge batch), which removes the
// per-edge decimal parse that dominates text ingest at service rates. The
// handler decodes the body into an edge batch, partitions it by shard at
// decode time (stream.Partitioner over Sharded.ShardIndex — one run-aware
// counting sort per batch, on the handler goroutine), and enqueues each
// shard-pure sub-batch on that shard's bounded queue. One executor
// goroutine per shard drains its queue and absorbs through the
// shard-direct fast path (Sharded.ObserveShardBatch), so within a single
// batch all touched shards absorb concurrently and each shard's mutex is
// uncontended by construction — adding shards adds ingest parallelism
// instead of lock contention. Executors coalesce: everything queued is
// drained and absorbed as one call, so per-run hoisting and writer-side
// snapshot publication amortize over multiple wire batches under load. A
// batch containing any malformed line (or a binary frame failing
// validation) is refused atomically with 400: either every edge of a
// batch is ingested or none is, so a client can always retry a rejected
// batch verbatim without double counting concerns beyond the sketch's
// built-in duplicate tolerance.
//
// Reads are snapshot-isolated: every query handler (/estimate, /total,
// /topk, /users), the /metrics gauges, and the checkpoint writer serve
// from the stack's atomically published frozen view
// (streamcard.Sharded.Snapshot) instead of taking the sketch locks — a
// stalled /users reader or a slow checkpoint fsync cannot hold any sketch
// lock at all, and ingest throughput is unaffected by concurrent query
// load (cmd/querybench measures exactly this). The write path — shard
// executors and epoch rotation — is the only lock domain left: rotation
// is a quiesce cut over the whole pipeline (the ingest gate excludes new
// submissions, then the cut waits for every submitted batch to be fully
// absorbed across all of its shards before the epoch advances), so a
// batch is never attributed astride an epoch boundary — not even when its
// sub-batches sit on different shard queues — while queries run through
// rotations (each one sees a single consistent epoch, never a torn
// pre/post-rotation mix).
//
// Time advances by wall-clock epoch rotation (Config.Epoch) fanned out
// through Sharded.Rotate, which publishes each shard's next-epoch snapshot
// as it goes, so all shards always sit at the same epoch. The full
// windowed state checkpoints periodically (and always on graceful
// shutdown) to a spool directory as an atomically-written file; a
// restarted daemon restores it and resumes in bit-identical lockstep with
// an uninterrupted twin.
//
// # The ack contract
//
// What a 200/202 ingest response promises depends on Config.WALDir:
//
//   - WAL off (default): the batch is in the ingest pipeline (202) or
//     absorbed (200 with ?wait=1). A crash loses everything since the last
//     spool checkpoint. The hot path pays nothing for the feature's
//     existence — one nil check, no lock, no allocation.
//   - WAL on: before ANY ack, the batch is appended to the write-ahead log
//     (internal/wal) in a single write(2) — so an acked batch survives
//     kill -9 under every fsync policy — and under WALSync "always" it is
//     also fsynced (group-committed), extending the guarantee to power
//     loss. Rotations are logged the same way, so a restart replays the
//     log tail on top of the newest checkpoint and resumes bit-identical
//     to a never-crashed twin: same registers, same epochs, same answers.
//     A batch the log cannot record is refused with 500 and never
//     absorbed, and the WAL's first error latches, so the service can
//     never ack what the log lost. Checkpoints double as truncation
//     points: once the spool write succeeds, WAL segments it fully covers
//     are deleted, bounding log disk usage between checkpoints.
package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	streamcard "repro"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/wal"
)

// Config describes a cardinality service instance. The sketch parameters
// (Method, MemoryBits, Shards, Generations, Seed) are the service's
// identity: a spool checkpoint records them and refuses to restore into a
// differently configured server, because restoring a sketch into a stack
// that would rotate fresh generations of a different shape silently
// degrades every later answer.
type Config struct {
	// Method selects the estimator: "freers" (default) or "freebs".
	Method string
	// MemoryBits is the total sketch budget, split evenly across shards and
	// spent k times over (once per live generation). Default 1<<26.
	MemoryBits int
	// Shards is the number of independently locked shards. Default 4.
	Shards int
	// Generations is the window's live generation count k (>= 2); queries
	// cover between k-1 and k epochs. Default 4.
	Generations int
	// Seed is the hash seed shared by every shard (sharing it is what makes
	// /total's merged union possible; per-user estimates are exact under
	// user-partitioning either way). Default 1.
	Seed uint64
	// Epoch is the wall-clock rotation period; 0 disables automatic
	// rotation (epochs then advance only through POST /rotate).
	Epoch time.Duration
	// CheckpointEvery is the periodic checkpoint interval; 0 checkpoints
	// only on graceful shutdown. Ignored without a SpoolDir.
	CheckpointEvery time.Duration
	// SpoolDir is where checkpoints live; "" disables persistence.
	SpoolDir string
	// WALDir enables the write-ahead log: every accepted ingest batch and
	// every epoch rotation is logged (internal/wal) before it is acked, and
	// a restart replays the log tail on top of the newest spool checkpoint,
	// so a SIGKILL loses nothing that was acked. "" disables the WAL — the
	// default — and the ingest hot path then takes no WAL lock and makes no
	// WAL allocation at all.
	WALDir string
	// WALSync selects the fsync policy: "interval" (default; a background
	// group-committer fsyncs every WALFlushInterval), "always" (fsync
	// before each ack, group-committed), or "never" (the OS decides).
	// Acked batches survive a process kill under every policy — each
	// record reaches the kernel in one write(2) before the ack; the policy
	// only bounds what power loss or a kernel crash can take.
	WALSync string
	// WALFlushInterval is the "interval" policy's group-commit cadence.
	// Default 50ms.
	WALFlushInterval time.Duration
	// WALSegmentBytes bounds one WAL segment file; checkpoints delete
	// fully-covered segments whole. Default 64 MiB.
	WALSegmentBytes int64
	// Retain bounds the spool: besides current.ckpt (always the newest
	// checkpoint), each write leaves a ckpt-<seq>.ckpt history entry, and
	// entries beyond the newest Retain are deleted after every successful
	// write — without it a long-lived daemon with periodic checkpointing
	// accumulates files without bound. Like every field here, 0 means the
	// default (3); at least one history entry is always kept, since the
	// newest is a free hard link to current.ckpt.
	Retain int
	// Workers is accepted for configuration compatibility but no longer
	// sizes anything: the ingest pipeline runs exactly one executor per
	// shard (decode-time partitioning makes each shard's queue a
	// single-writer sub-stream, so extra workers could only contend).
	// Negative values are still rejected.
	//
	// Deprecated: set Shards to size ingest parallelism.
	Workers int
	// QueueDepth bounds each shard's sub-batch queue; a full queue blocks
	// ingest handlers, which is the service's backpressure. Default 64.
	QueueDepth int
	// MaxBodyBytes bounds one ingest request body. Default 8 MiB.
	MaxBodyBytes int64
	// StreamWriteTimeout bounds how long a streaming response (/users) may
	// spend writing to one client. The stream reads from a published
	// snapshot, so a stalled client holds NO sketch lock — the deadline is
	// connection hygiene: it bounds how long a dead connection can pin the
	// handler goroutine and the snapshot's copy-on-write arrays. Enforced
	// in the handler itself (via the response write deadline), so embedders
	// of Handler() are covered without configuring their http.Server.
	// Default 2m; negative disables.
	StreamWriteTimeout time.Duration
}

func (c *Config) fillDefaults() error {
	if c.Method == "" {
		c.Method = "freers"
	}
	if c.Method != "freers" && c.Method != "freebs" {
		return fmt.Errorf("server: unknown method %q (want freers or freebs)", c.Method)
	}
	if c.MemoryBits == 0 {
		c.MemoryBits = 1 << 26
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards < 0 || c.MemoryBits < 0 {
		return errors.New("server: negative sizes")
	}
	// The sketch constructors panic below their register floor; turn a
	// too-small budget into a config error before any panic can fire.
	if c.MemoryBits/c.Shards < 64 {
		return fmt.Errorf("server: MemoryBits/Shards = %d bits per shard is below the sketch minimum (64)",
			c.MemoryBits/c.Shards)
	}
	if c.Generations == 0 {
		c.Generations = 4
	}
	if c.Generations < 2 {
		return fmt.Errorf("server: need at least 2 generations, got %d", c.Generations)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Workers < 0 || c.QueueDepth < 0 || c.MaxBodyBytes < 0 {
		// A negative queue panics make(chan); a negative worker count was
		// always nonsense (the field is vestigial but still validated so a
		// config that was wrong before stays wrong).
		return errors.New("server: Workers, QueueDepth, and MaxBodyBytes must be positive")
	}
	if _, err := wal.ParsePolicy(c.WALSync); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if c.WALFlushInterval == 0 {
		c.WALFlushInterval = wal.DefaultFlushInterval
	}
	if c.WALFlushInterval < 0 {
		return errors.New("server: negative WALFlushInterval")
	}
	if c.WALSegmentBytes == 0 {
		c.WALSegmentBytes = wal.DefaultSegmentBytes
	}
	if c.WALSegmentBytes < 0 {
		return errors.New("server: negative WALSegmentBytes")
	}
	if c.Retain == 0 {
		c.Retain = 3
	}
	if c.Retain < 1 {
		return fmt.Errorf("server: Retain must keep at least 1 checkpoint, got %d", c.Retain)
	}
	if c.StreamWriteTimeout == 0 {
		c.StreamWriteTimeout = 2 * time.Minute
	}
	return nil
}

// ingestBatch tracks one decoded wire batch across the shard queues its
// sub-batches fanned out to. The batch is "absorbed" — its edges counted,
// its waiter released, its partition buffers pooled — only when the LAST
// shard executor finishes its sub-batch, so the ?wait=1 contract and the
// Drain barrier still mean the whole batch, not a lucky shard of it.
type ingestBatch struct {
	part      *stream.Partitioned
	edges     int
	remaining atomic.Int32  // shard sub-batches not yet absorbed
	done      chan struct{} // non-nil for ?wait=1 requests
	// onAbsorbed, when non-nil, runs once the whole batch is absorbed (after
	// the partition buffers are released). The TCP path hangs its pooled read
	// buffer's return on it: with one shard the partition ALIASES the decoded
	// frame instead of copying it, so the frame's backing buffer must stay
	// untouched until the executor is done with it.
	onAbsorbed func()
}

// shardItem is one shard-pure sub-batch queued for a shard executor.
type shardItem struct {
	edges []stream.Edge
	batch *ingestBatch
}

// coalesceMaxEdges caps how many edges one executor drain may merge into a
// single absorb call. Coalescing amortizes the shard lock, the per-run
// hoisting, and the snapshot publication over every wire batch that queued
// up during the previous absorb; the cap keeps the executor's append
// buffer bounded (16 B/edge) no matter how deep the backlog grows.
const coalesceMaxEdges = 1 << 18

// Server is a runnable cardinality service. Create with New, expose with
// Handler (mount it on any http.Server or httptest), and stop with Close.
type Server struct {
	cfg   Config
	start time.Time

	wins []*streamcard.Windowed // per-shard windows, for checkpointing
	sh   *streamcard.Sharded    // the serving stack over wins

	// part splits each decoded batch into shard-pure sub-batches once, on
	// the handler goroutine (decode-time partitioning), routed exactly as
	// the stack itself routes (Sharded.ShardIndex).
	part *stream.Partitioner
	// queues is the pipeline: one bounded sub-batch queue per shard, each
	// drained by exactly one executor goroutine, so every shard's
	// sub-stream has a single writer and the shard mutex is uncontended by
	// construction. A full queue blocks submitters — backpressure.
	queues []chan shardItem
	execWG sync.WaitGroup

	// gate orders submissions against the two whole-pipeline cuts: a
	// submitter holds it shared from the closed check through its last
	// queue send, so when rotate (or Close) acquires it exclusively, no
	// batch is half-fanned-out — every submitted batch sits entirely in the
	// queues. Rotation then drains pending to zero before advancing the
	// epoch: the cut that guarantees no batch is ever attributed astride an
	// epoch boundary, even though its sub-batches absorb on different
	// executors. Queries and checkpoints never touch the gate — they read
	// the stack's published snapshot, which freezes one consistent epoch on
	// its own.
	gate   sync.RWMutex
	closed bool
	// pending counts batches submitted but not yet fully absorbed (queued
	// sub-batches AND sub-batches an executor is mid-absorb, across all
	// shards of the batch); Drain and the rotation cut wait on it reaching
	// zero.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  int

	// wal is the durability log between checkpoints; nil when disabled
	// (Config.WALDir == ""), and the ingest path then costs one nil check.
	// walMu makes {log append, queue fan-out} one atomic step per batch
	// (held inside the shared gate): the log's record order is then exactly
	// the order batches entered the shard queues, so a sequential replay of
	// the log reproduces every shard's sub-stream — and therefore every
	// register — bit-identically. epochEdges counts edges logged since the
	// last rotation record (guarded by walMu for submitters; rotate and the
	// checkpoint cut read it under the exclusive gate, which excludes all
	// submitters).
	wal        *wal.WAL
	walMu      sync.Mutex
	epochEdges uint64

	tickerWG   sync.WaitGroup
	stopTicker chan struct{}
	closeOnce  sync.Once
	closeErr   error
	restored   bool
	// replayedRecords/Edges report what New re-applied from the WAL tail.
	replayedRecords int
	replayedEdges   int
	// ckptMu serializes whole checkpoints (marshal through rename) so a
	// slow write can never overwrite a newer one. It also guards ckptSeq,
	// the monotonically increasing history sequence number (resumed from
	// the spool's existing files at startup).
	ckptMu  sync.Mutex
	ckptSeq uint64

	mux *http.ServeMux

	// tcp is the CWT1 persistent-transport listener state (tcp.go): the
	// connection/listener registry Close tears down, and the pooled frame
	// read buffers.
	tcp tcpState

	// Instruments.
	reg            *metrics.Registry
	edgesIngested  *metrics.Counter
	batches        *metrics.Counter
	coalesced      *metrics.Counter
	batchesRefused *metrics.Counter
	rotations      *metrics.Counter
	checkpoints    *metrics.Counter
	retiredGens    *metrics.Counter
	retiredPairs   *metrics.Counter // Σ TotalDistinct of retired generations, rounded
	walFsync       *metrics.Histogram
	walBytes       *metrics.Counter
	walRecords     *metrics.Counter
	walTruncated   *metrics.Counter
	latency        map[string]*metrics.Histogram
	analytics      map[string]*metrics.Histogram
	foldStats      *streamcard.FoldStats
	tcpConnsTotal  *metrics.Counter
	tcpFrames      *metrics.Counter
	tcpBytesRead   *metrics.Counter
	tcpAckByStatus map[uint16]*metrics.Counter
	tcpStalls      *metrics.Counter
	tcpAckLatency  *metrics.Histogram
}

// ErrClosed is returned by ingestion paths once Close has begun.
var ErrClosed = errors.New("server: closed")

// New builds the estimator stack, restores the latest spool checkpoint if
// one exists, and starts the ingest workers and (if configured) the
// rotation and checkpoint tickers.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		start:      time.Now(),
		queues:     make([]chan shardItem, cfg.Shards),
		stopTicker: make(chan struct{}),
		reg:        metrics.NewRegistry(),
		latency:    make(map[string]*metrics.Histogram),
		analytics:  make(map[string]*metrics.Histogram),
		foldStats:  &streamcard.FoldStats{},
	}
	for i := range s.queues {
		s.queues[i] = make(chan shardItem, cfg.QueueDepth)
	}
	s.pendCond = sync.NewCond(&s.pendMu)
	s.initMetrics()

	perShardBits := cfg.MemoryBits / cfg.Shards
	buildSketch := func() streamcard.Estimator {
		if cfg.Method == "freebs" {
			return streamcard.NewFreeBS(perShardBits, streamcard.WithSeed(cfg.Seed))
		}
		return streamcard.NewFreeRS(perShardBits, streamcard.WithSeed(cfg.Seed))
	}
	s.wins = make([]*streamcard.Windowed, cfg.Shards)
	for i := range s.wins {
		s.wins[i] = streamcard.NewWindowed(buildSketch,
			streamcard.WithGenerations(cfg.Generations),
			streamcard.WithFoldStats(s.foldStats),
			streamcard.WithOnRetire(func(g streamcard.Estimator) {
				s.retiredGens.Inc()
				s.retiredPairs.Add(uint64(g.TotalDistinct() + 0.5))
			}))
	}
	next := 0
	s.sh = streamcard.NewSharded(cfg.Shards, func(int) streamcard.Estimator {
		w := s.wins[next]
		next++
		return w
	})
	// Decode-time partitioning routes exactly as the stack does: the same
	// hash, the same shard, so ObserveShardBatch never re-groups.
	s.part = stream.NewPartitioner(cfg.Shards, s.sh.ShardIndex)
	for i := range s.wins {
		i := i
		s.reg.Gauge("cardserved_shard_queue_depth", fmt.Sprintf(`shard="%d"`, i),
			"Sub-batches waiting on this shard's executor queue.",
			func() float64 { return float64(len(s.queues[i])) })
		// UserEntries, not NumUsers: a scrape must not pay an O(users)
		// merge map per shard every few seconds. Entries upper-bound users
		// (one per generation a user is active in). UserEntries is the one
		// deliberately non-snapshot read: O(k) counter loads under a brief
		// ring-lock hold, so a scrape neither blocks on a long read nor
		// forces the writer into a fresh copy-on-write detach.
		s.reg.Gauge("cardserved_shard_user_entries", fmt.Sprintf(`shard="%d"`, i),
			"Per-user estimate entries across the shard's live generations (upper bound on distinct users).",
			func() float64 { return float64(s.wins[i].UserEntries()) })
	}

	var restoredWALSeq uint64
	if cfg.SpoolDir != "" {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: spool: %w", err)
		}
		// Resume the history sequence past whatever a previous life left
		// behind, so new checkpoints never collide with retained ones.
		seqs, err := s.listHist()
		if err != nil {
			return nil, fmt.Errorf("server: spool: %w", err)
		}
		if len(seqs) > 0 {
			s.ckptSeq = seqs[len(seqs)-1]
		}
		restored, walSeq, epochEdges, err := s.restore()
		if err != nil {
			return nil, err
		}
		s.restored = restored
		restoredWALSeq, s.epochEdges = walSeq, epochEdges
	}

	if cfg.WALDir != "" {
		if err := s.openWAL(restoredWALSeq); err != nil {
			return nil, err
		}
	}

	s.mux = http.NewServeMux()
	s.routes()

	for i := 0; i < cfg.Shards; i++ {
		s.execWG.Add(1)
		go s.shardExecutor(i)
	}
	if cfg.Epoch > 0 {
		s.tickerWG.Add(1)
		go s.rotateLoop()
	}
	if cfg.SpoolDir != "" && cfg.CheckpointEvery > 0 {
		s.tickerWG.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

func (s *Server) initMetrics() {
	s.edgesIngested = s.reg.Counter("cardserved_edges_ingested_total", "",
		"Edges absorbed into the sketch.")
	s.batches = s.reg.Counter("cardserved_batches_total", "",
		"Ingest batches absorbed.")
	s.coalesced = s.reg.Counter("cardserved_coalesced_batches_total", "",
		"Sub-batches absorbed piggybacked on another sub-batch's lock hold (executor drain coalescing).")
	s.batchesRefused = s.reg.Counter("cardserved_batches_refused_total", "",
		"Ingest batches refused atomically for malformed lines.")
	s.rotations = s.reg.Counter("cardserved_rotations_total", "",
		"Epoch rotations fanned out across all shards.")
	s.checkpoints = s.reg.Counter("cardserved_checkpoints_total", "",
		"Checkpoints written to the spool.")
	s.retiredGens = s.reg.Counter("cardserved_retired_generations_total", "",
		"Generations aged out of the windows.")
	s.retiredPairs = s.reg.Counter("cardserved_retired_pairs_total", "",
		"Estimated distinct pairs held by retired generations (rounded).")
	s.reg.Gauge("cardserved_queue_depth", "",
		"Sub-batches waiting across all shard executor queues.",
		func() float64 {
			total := 0
			for _, q := range s.queues {
				total += len(q)
			}
			return float64(total)
		})
	s.reg.Gauge("cardserved_shard_queue_imbalance", "",
		"Max/mean shard queue occupancy (1 = perfectly balanced, 0 = idle): a hot-shard skew detector.",
		func() float64 {
			total, max := 0, 0
			for _, q := range s.queues {
				n := len(q)
				total += n
				if n > max {
					max = n
				}
			}
			if total == 0 {
				return 0
			}
			return float64(max) * float64(len(s.queues)) / float64(total)
		})
	for _, h := range []string{"/ingest", "/estimate", "/total", "/topk", "/users"} {
		s.latency[h] = s.reg.Histogram("cardserved_http_request_seconds",
			fmt.Sprintf(`handler="%s"`, h),
			"Request latency by handler.", metrics.LatencyBuckets())
	}
	// Analytics computations timed separately from their HTTP envelopes:
	// the histogram brackets only the sketch-side work (selection, fold,
	// merge, enumeration), not request parsing or response encoding.
	for _, q := range []string{"topk", "users", "numusers", "merged_total"} {
		s.analytics[q] = s.reg.Histogram("cardserved_analytics_seconds",
			fmt.Sprintf(`query="%s"`, q),
			"Analytics computation latency (sketch-side work only) by query.",
			metrics.LatencyBuckets())
	}
	s.reg.Gauge("cardserved_tcp_connections_active", "",
		"Open CWT1 ingest connections.",
		func() float64 { return float64(s.tcp.active.Load()) })
	s.tcpConnsTotal = s.reg.Counter("cardserved_tcp_connections_total", "",
		"CWT1 ingest connections accepted since start.")
	s.tcpFrames = s.reg.Counter("cardserved_tcp_frames_total", "",
		"CWT1 frames read off ingest connections (accepted or rejected).")
	s.tcpBytesRead = s.reg.Counter("cardserved_tcp_bytes_read_total", "",
		"Bytes read off CWT1 ingest connections.")
	s.tcpAckByStatus = make(map[uint16]*metrics.Counter)
	for _, st := range []uint16{stream.AckOK, stream.AckBad, stream.AckError, stream.AckShutdown} {
		s.tcpAckByStatus[st] = s.reg.Counter("cardserved_tcp_acks_total",
			fmt.Sprintf(`status="%d"`, st),
			"CWT1 acks written, by status.")
	}
	s.tcpStalls = s.reg.Counter("cardserved_tcp_backpressure_stalls_total", "",
		"CWT1 frame fan-outs that found a shard queue full and blocked (reads stall: backpressure).")
	s.tcpAckLatency = s.reg.Histogram("cardserved_tcp_ack_seconds", "",
		"Frame-read-to-ack-write latency over CWT1 (includes WAL commit).",
		metrics.LatencyBuckets())
	s.reg.CounterFunc("cardserved_fold_cache_computes_total", "",
		"Cross-generation window folds executed on published views.",
		s.foldStats.Computes)
	s.reg.CounterFunc("cardserved_fold_cache_hits_total", "",
		"Analytics reads served from a cached window fold instead of re-folding.",
		s.foldStats.Hits)
}

// observeAnalytics records one analytics computation's latency.
func (s *Server) observeAnalytics(query string, start time.Time) {
	if h := s.analytics[query]; h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Estimator exposes the underlying sharded stack (tests compare it against
// twins; embedding applications can query in-process without HTTP).
func (s *Server) Estimator() *streamcard.Sharded { return s.sh }

// Epoch returns the current epoch (all shards agree by construction).
func (s *Server) Epoch() int { return s.wins[0].Epoch() }

// Restored reports whether New found and restored a spool checkpoint.
func (s *Server) Restored() bool { return s.restored }

// shardExecutor is shard idx's single writer: it drains the shard's queue
// and absorbs each sub-batch through the shard-direct fast path
// (ObserveShardBatch — no re-partitioning, a mutex no other goroutine
// takes on the ingest path). Before absorbing it coalesces: every
// sub-batch already queued (up to coalesceMaxEdges) is drained and
// absorbed as ONE call, so under backlog the shard lock, the estimator's
// per-run hoisting, and the writer-side snapshot publication amortize over
// all the wire batches that arrived during the previous absorb, and the
// pipeline speeds up under load instead of thrashing. Per-shard FIFO is
// preserved — the queue is drained in order and the coalesced slice
// concatenates in that order — which is what keeps every shard's
// sub-stream, and therefore every estimate, bit-identical to a sequential
// twin.
func (s *Server) shardExecutor(idx int) {
	defer s.execWG.Done()
	q := s.queues[idx]
	var buf []stream.Edge
	items := make([]shardItem, 0, 8)
	for it := range q {
		items = append(items[:0], it)
		total := len(it.edges)
	drain:
		for total < coalesceMaxEdges {
			select {
			case more, ok := <-q:
				if !ok {
					break drain // closed and empty; absorb what we hold
				}
				items = append(items, more)
				total += len(more.edges)
			default:
				break drain
			}
		}
		edges := it.edges
		if len(items) > 1 {
			buf = buf[:0]
			for _, x := range items {
				buf = append(buf, x.edges...)
			}
			edges = buf
			s.coalesced.Add(uint64(len(items) - 1))
		}
		s.sh.ObserveShardBatch(idx, edges)
		for i := range items {
			s.finishShardItem(items[i].batch)
			items[i] = shardItem{} // drop the sub-batch reference
		}
	}
}

// finishShardItem marks one shard's sub-batch absorbed; the batch's LAST
// sub-batch settles the whole batch — counters move, the ?wait=1 waiter is
// released, the partition buffers return to the pool, and pending drops.
func (s *Server) finishShardItem(b *ingestBatch) {
	if b.remaining.Add(-1) != 0 {
		return
	}
	s.edgesIngested.Add(uint64(b.edges))
	s.batches.Inc()
	b.part.Release()
	if b.onAbsorbed != nil {
		b.onAbsorbed()
	}
	if b.done != nil {
		close(b.done)
	}
	s.pendMu.Lock()
	s.pending--
	if s.pending == 0 {
		s.pendCond.Broadcast()
	}
	s.pendMu.Unlock()
}

// submit partitions a decoded batch into shard-pure sub-batches (the one
// counting sort of the batch's life) and fans them out to the shard
// queues, optionally waiting for the whole batch to be absorbed (the
// ?wait=1 contract: when the response arrives, queries reflect the batch).
// The fan-out runs under the shared side of the ingest gate, so a rotation
// or Close can never observe — or interleave into — a half-submitted
// batch.
//
// The ack contract with the WAL enabled: the batch is appended to the log
// — one write(2) into the kernel — BEFORE this function can return nil, so
// by the time the handler acks (202 or 200), the batch survives a process
// kill; under the "always" policy it is also fsynced first. Append and
// fan-out happen atomically under walMu, making the log's record order
// identical to every shard queue's arrival order — the property that lets
// a sequential replay reproduce the exact per-shard sub-streams and hence
// bit-identical state. A batch the WAL cannot log is refused (the error
// propagates as HTTP 500) and, because the WAL latches its first error,
// every later batch is refused too: the service never acks what the log
// lost. With the WAL disabled this path is untouched — one nil check.
func (s *Server) submit(edges []stream.Edge, wait bool) error {
	b, walSeq, err := s.submitAsync(edges, wait, nil, nil)
	if err != nil || b == nil {
		return err
	}
	if s.wal != nil {
		// Under the "always" policy this is the group-committed fsync
		// barrier; other policies return immediately. Outside the gate so a
		// slow disk never blocks rotation, and outside walMu so appenders
		// queue behind one leader's fsync instead of serializing on it.
		if err := s.wal.Commit(walSeq); err != nil {
			// The batch is queued and will be absorbed, but its durability
			// is unknown — refuse the ack; the client's retry is safe (the
			// atomic-batch contract tolerates replayed duplicates).
			return fmt.Errorf("server: wal sync: %w", err)
		}
	}
	if wait {
		<-b.done
	}
	return nil
}

// submitAsync is submit's pipelined core: partition, WAL append, and queue
// fan-out — everything up to but NOT including the durability barrier
// (wal.Commit) and the absorption wait. It exists for the TCP transport,
// where the reader goroutine must keep consuming frames while earlier
// frames' fsyncs are still in flight: the reader calls submitAsync and
// hands the returned walSeq to the acker goroutine, which Commits before
// writing each ack — so under WALSync "always" the fsync latency overlaps
// with reading (and appending) later frames instead of serializing ingest.
//
// onAbsorbed, when non-nil, is attached to the batch and runs after full
// absorption (see ingestBatch). stalls, when non-nil, counts queue sends
// that found the shard queue full — the backpressure signal. On error
// nothing is queued and onAbsorbed will never run (the caller keeps
// ownership of the decode buffer); a nil batch with nil error means the
// batch was empty — absorbed trivially, onAbsorbed already called.
func (s *Server) submitAsync(edges []stream.Edge, wait bool, onAbsorbed func(), stalls *metrics.Counter) (*ingestBatch, uint64, error) {
	s.gate.RLock()
	if s.closed {
		s.gate.RUnlock()
		return nil, 0, ErrClosed
	}
	b := &ingestBatch{part: s.part.Split(edges), edges: len(edges), onAbsorbed: onAbsorbed}
	touched := 0
	for t := 0; t < s.cfg.Shards; t++ {
		if len(b.part.Shard(t)) > 0 {
			touched++
		}
	}
	if touched == 0 {
		b.part.Release()
		s.gate.RUnlock()
		if onAbsorbed != nil {
			onAbsorbed()
		}
		return nil, 0, nil
	}
	if wait {
		b.done = make(chan struct{})
	}
	b.remaining.Store(int32(touched))
	var walSeq uint64
	if s.wal != nil {
		s.walMu.Lock()
		seq, err := s.wal.AppendBatch(edges)
		if err != nil {
			s.walMu.Unlock()
			b.part.Release()
			s.gate.RUnlock()
			return nil, 0, fmt.Errorf("server: refusing unlogged batch: %w", err)
		}
		walSeq = seq
		s.epochEdges += uint64(len(edges))
		s.enqueue(b, stalls)
		s.walMu.Unlock()
	} else {
		s.enqueue(b, stalls)
	}
	s.gate.RUnlock()
	return b, walSeq, nil
}

// enqueue fans a counted batch out to its shard queues. Callers hold the
// shared gate (and, with the WAL on, walMu). A full queue blocks the send —
// that block IS the service's backpressure (an HTTP handler stalls its
// request; the TCP reader stops reading and the client's send window
// fills) — and, when a stall counter is supplied, is counted.
func (s *Server) enqueue(b *ingestBatch, stalls *metrics.Counter) {
	s.pendMu.Lock()
	s.pending++
	s.pendMu.Unlock()
	for t := 0; t < s.cfg.Shards; t++ {
		sub := b.part.Shard(t)
		if len(sub) == 0 {
			continue
		}
		item := shardItem{edges: sub, batch: b}
		if stalls == nil {
			s.queues[t] <- item
			continue
		}
		select {
		case s.queues[t] <- item:
		default:
			stalls.Inc()
			s.queues[t] <- item
		}
	}
}

// Drain blocks until the ingest pipeline is empty: every batch submitted
// so far — queued or mid-absorption on an executor, on every shard it
// fanned out to — has landed in the sketch. Concurrent submitters extend
// the wait; Drain returns at the first lull.
func (s *Server) Drain() {
	s.pendMu.Lock()
	for s.pending > 0 {
		s.pendCond.Wait()
	}
	s.pendMu.Unlock()
}

func (s *Server) rotateLoop() {
	defer s.tickerWG.Done()
	t := time.NewTicker(s.cfg.Epoch)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.rotate()
		case <-s.stopTicker:
			return
		}
	}
}

// rotate advances every shard one epoch behind a whole-pipeline quiesce
// cut: the exclusive gate first excludes new submissions (and, because
// submitters hold the gate across their whole fan-out, guarantees no batch
// is half-enqueued), then the drain waits for every already-submitted
// batch to finish absorbing on every shard it touched. Only then does the
// epoch advance — so a batch's sub-batches can never straddle a rotation
// even though they absorb on independent executors, and all shards stay in
// lockstep. The cut costs one queue drain (milliseconds at service depth),
// paid at epoch cadence; queries never wait on it (they read published
// snapshots).
// With the WAL on, the cut is logged as a rotation record BEFORE the epoch
// advances, carrying the closing epoch and the number of edges logged
// during it: replay uses the pair to verify it rotates at exactly the same
// stream position. A rotation the log cannot record still proceeds — the
// WAL's latched error already guarantees no further batch will be acked,
// so nothing after the unlogged cut can diverge — but is reported loudly.
func (s *Server) rotate() {
	s.gate.Lock()
	s.Drain()
	if s.wal != nil {
		// Submitters are excluded by the gate, so epochEdges is stable and
		// the rotation record sits at the exact batch boundary.
		seq, err := s.wal.AppendRotation(uint64(s.Epoch()), s.epochEdges)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cardserved: wal rotation record: %v\n", err)
		} else {
			s.epochEdges = 0
			if err := s.wal.Commit(seq); err != nil {
				fmt.Fprintf(os.Stderr, "cardserved: wal rotation commit: %v\n", err)
			}
		}
	}
	s.sh.Rotate()
	s.gate.Unlock()
	s.rotations.Inc()
}

func (s *Server) checkpointLoop() {
	defer s.tickerWG.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				// A failed periodic checkpoint must not kill the service;
				// the next interval (and shutdown) will retry.
				fmt.Fprintf(os.Stderr, "cardserved: checkpoint: %v\n", err)
			}
		case <-s.stopTicker:
			return
		}
	}
}

// view returns the stack's current published snapshot: one epoch-consistent
// frozen cut across every shard. All query handlers, gauges, and the
// checkpoint writer read from it; none of them take any sketch lock.
func (s *Server) view() *streamcard.ShardedView {
	return s.sh.Snapshot() // never nil: the stack is Windowed(FreeBS|FreeRS)
}

// Checkpoint freezes the full windowed state of every shard from the
// published snapshot (an epoch-consistent cut; each shard a valid frozen
// prefix of its own sub-stream) and writes it atomically to the spool.
// Without a WAL, no sketch lock is held at any point — neither for the
// marshal nor for the disk write — so a slow fsync cannot stall ingest or
// rotation. No-op without a spool directory. Checkpoints are serialized by
// ckptMu so two concurrent calls (POST /checkpoint vs the periodic ticker)
// cannot rename out of order and leave the older snapshot as current.ckpt.
//
// With the WAL on, the checkpoint is also a log truncation point, which
// needs an exact (state, WAL position) pair: the cut briefly quiesces the
// pipeline (exclusive gate + drain — the same cut rotation pays, at
// checkpoint cadence) to capture the snapshot and the log sequence it
// corresponds to, then marshals and writes OUTSIDE the lock as before.
// Only after the spool write succeeds are the log's fully-covered segments
// deleted — a crash between the two leaves extra replayable records below
// the checkpoint, which replay skips; disk stays bounded across repeated
// checkpoint cycles either way.
func (s *Server) Checkpoint() error {
	if s.cfg.SpoolDir == "" {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	var (
		view       *streamcard.ShardedView
		walSeq     uint64
		epochEdges uint64
	)
	if s.wal != nil {
		s.gate.Lock()
		s.Drain()
		walSeq = s.wal.LastSeq()
		epochEdges = s.epochEdges
		view = s.view()
		s.gate.Unlock()
	} else {
		view = s.view()
	}
	data, err := s.marshalSpool(view, walSeq, epochEdges)
	if err != nil {
		return err
	}
	if err := s.saveSpool(data); err != nil {
		return err
	}
	if s.wal != nil {
		if _, err := s.wal.TruncateThrough(walSeq); err != nil {
			// The checkpoint itself landed; failing to prune only costs
			// disk. Report it, don't fail the checkpoint.
			fmt.Fprintf(os.Stderr, "cardserved: wal truncate: %v\n", err)
		}
	}
	s.checkpoints.Inc()
	return nil
}

func (s *Server) spoolPath() string {
	return filepath.Join(s.cfg.SpoolDir, "current.ckpt")
}

// restore loads the newest checkpoint from the spool, if any, into the
// freshly built stack: current.ckpt, or — only when that pointer file
// itself is missing — the newest retained history entry. A checkpoint that
// exists but fails to decode is a startup error, never silently skipped.
// Returns the checkpoint's WAL position and in-epoch baseline alongside.
// Called from New before any traffic, so no locking.
func (s *Server) restore() (bool, uint64, uint64, error) {
	path := s.spoolPath()
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if s.ckptSeq == 0 {
			return false, 0, 0, nil
		}
		path = s.histPath(s.ckptSeq)
		data, err = os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			return false, 0, 0, nil
		}
	}
	if err != nil {
		return false, 0, 0, fmt.Errorf("server: reading spool: %w", err)
	}
	walSeq, epochEdges, err := s.unmarshalSpool(data)
	if err != nil {
		return false, 0, 0, fmt.Errorf("server: restoring %s: %w", path, err)
	}
	return true, walSeq, epochEdges, nil
}

// walFingerprint tags WAL segments with the same configuration identity
// the spool envelope carries, so a log written by a differently configured
// service is refused at open instead of replaying into sketches of the
// wrong shape.
func (s *Server) walFingerprint() []byte {
	fp := []byte{methodByte(s.cfg.Method)}
	for _, v := range []uint64{uint64(s.cfg.MemoryBits), uint64(s.cfg.Shards),
		uint64(s.cfg.Generations), s.cfg.Seed} {
		fp = binary.AppendUvarint(fp, v)
	}
	return fp
}

// openWAL opens the durability log above the restored checkpoint's
// position, registers its instruments, and replays the tail. Called from
// New after the spool restore and before the executors start, so replay
// applies single-threaded into a quiet stack.
func (s *Server) openWAL(restoredSeq uint64) error {
	policy, _ := wal.ParsePolicy(s.cfg.WALSync) // validated by fillDefaults
	s.walFsync = s.reg.Histogram("cardserved_wal_fsync_seconds", "",
		"WAL fsync (group commit) latency.", metrics.LatencyBuckets())
	s.walBytes = s.reg.Counter("cardserved_wal_bytes_written_total", "",
		"Bytes appended to the WAL.")
	s.walRecords = s.reg.Counter("cardserved_wal_records_appended_total", "",
		"Records (ingest batches and rotations) appended to the WAL.")
	s.walTruncated = s.reg.Counter("cardserved_wal_segments_truncated_total", "",
		"WAL segments deleted by checkpoint truncation.")
	w, err := wal.Open(wal.Options{
		Dir:           s.cfg.WALDir,
		Fingerprint:   s.walFingerprint(),
		StartSeq:      restoredSeq,
		SegmentBytes:  s.cfg.WALSegmentBytes,
		FlushInterval: s.cfg.WALFlushInterval,
		Policy:        policy,
		Metrics: wal.Metrics{
			OnAppend: func(records, bytes int) {
				s.walRecords.Add(uint64(records))
				s.walBytes.Add(uint64(bytes))
			},
			OnFsync:    func(seconds float64) { s.walFsync.Observe(seconds) },
			OnTruncate: func(segments int) { s.walTruncated.Add(uint64(segments)) },
		},
	})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.reg.Gauge("cardserved_wal_segment_count", "",
		"WAL segment files on disk.",
		func() float64 { return float64(w.SegmentCount()) })
	s.reg.Gauge("cardserved_wal_unsynced_bytes", "",
		"Bytes appended to the WAL since its last fsync.",
		func() float64 { return float64(w.UnsyncedBytes()) })
	if err := s.walReplay(w, restoredSeq); err != nil {
		w.Close()
		return err
	}
	s.wal = w
	return nil
}

// walReplay applies the log tail above the checkpoint: batch records
// re-absorb through the same whole-batch path a live submit's per-shard
// fan-out projects to (per-shard sub-streams are identical either way —
// the bit-identity the pipeline tests pin), and rotation records re-cut
// epochs at exactly the logged stream positions, cross-checked against the
// epoch and in-epoch edge count the restored state implies. A mismatch
// means the log and the checkpoint describe different histories — a loud
// startup error, never a silent divergence.
func (s *Server) walReplay(w *wal.WAL, after uint64) error {
	err := w.Replay(after, func(rec wal.Record) error {
		switch rec.Type {
		case wal.TypeBatch:
			s.sh.ObserveBatch(rec.Edges)
			s.epochEdges += uint64(len(rec.Edges))
			s.edgesIngested.Add(uint64(len(rec.Edges)))
			s.batches.Inc()
			s.replayedEdges += len(rec.Edges)
		case wal.TypeRotation:
			if uint64(s.Epoch()) != rec.Epoch || s.epochEdges != rec.EpochEdges {
				return fmt.Errorf("rotation record %d closes epoch %d after %d edges, but the restored state sits at epoch %d after %d edges",
					rec.Seq, rec.Epoch, rec.EpochEdges, s.Epoch(), s.epochEdges)
			}
			s.sh.Rotate()
			s.rotations.Inc()
			s.epochEdges = 0
		default:
			return fmt.Errorf("unknown record type %q at seq %d", rec.Type, rec.Seq)
		}
		s.replayedRecords++
		return nil
	})
	if err != nil {
		return fmt.Errorf("server: wal replay: %w", err)
	}
	return nil
}

// WALReplayed reports what New re-applied from the WAL tail on top of the
// restored checkpoint: records (batches + rotations) and total edges.
func (s *Server) WALReplayed() (records, edges int) {
	return s.replayedRecords, s.replayedEdges
}

// Close drains and stops the service: new ingest is refused, queued batches
// are absorbed, tickers stop, and (with a spool) a final checkpoint is
// written so a restart resumes exactly where this process left off. Safe to
// call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		// TCP first: stop accepting, half-close every CWT1 connection so its
		// reader sees EOF at the next frame boundary, and wait for the
		// readers and ackers to drain. Their already-submitted frames sit in
		// the shard queues (executors are still running), and every frame
		// read before the half-close gets its ack before the connection
		// closes.
		s.tcpShutdown()
		s.gate.Lock()
		s.closed = true
		s.gate.Unlock()
		// No submitter can be mid-fan-out now (fan-outs run entirely under
		// the shared gate), so the queues hold only whole batches: closing
		// them lets each executor drain to empty and exit.
		for _, q := range s.queues {
			close(q)
		}
		s.execWG.Wait()
		close(s.stopTicker)
		s.tickerWG.Wait()
		s.closeErr = s.Checkpoint()
		if s.wal != nil {
			// After the final checkpoint (and its truncation): the log now
			// holds only what that checkpoint does not cover — nothing, on a
			// clean shutdown — and closes fsynced.
			if err := s.wal.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// ---- HTTP surface ----

func (s *Server) routes() {
	s.mux.HandleFunc("POST /ingest", s.timed("/ingest", s.handleIngest))
	s.mux.HandleFunc("GET /estimate", s.timed("/estimate", s.handleEstimate))
	s.mux.HandleFunc("GET /total", s.timed("/total", s.handleTotal))
	s.mux.HandleFunc("GET /topk", s.timed("/topk", s.handleTopK))
	s.mux.HandleFunc("GET /users", s.timed("/users", s.handleUsers))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /rotate", s.handleRotate)
	s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /flush", s.handleFlush)
}

func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.latency[name]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		hist.Observe(time.Since(t0).Seconds())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRawJSON writes a pre-rendered JSON body. The hot query handlers
// (/estimate, /total) render their fixed-shape responses with strconv
// appends into a stack buffer instead of building a map[string]any and
// reflecting through the generic encoder, which costs a handful of heap
// allocations per request — measurable at the rates those two endpoints
// are polled (see BenchmarkEstimateHandler).
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleIngest decodes one ingest batch and feeds it through the pipeline.
// The protocol is negotiated by Content-Type: stream.WireContentType
// selects the CWB1 binary frame (fixed-width u64 pairs behind a CRC,
// decoded zero-copy into the edge batch — the whole request body beyond
// the 12 framing bytes IS the batch memory), anything else the
// newline-delimited "user item" text protocol (stream.ParseTextBatch). A
// batch is atomic under both protocols: any malformed line, or a frame
// failing its CRC/length validation, refuses the whole request with 400
// and nothing is ingested — the client fixes and retries the batch as a
// unit, and a retried batch can never half-apply.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var edges []stream.Edge
	var err error
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if strings.TrimSpace(ct) == stream.WireContentType {
		var buf []byte
		if buf, err = io.ReadAll(body); err == nil {
			// edges aliases buf on this host; buf stays reachable through
			// the batch until the workers have absorbed it.
			edges, err = stream.DecodeWire(buf)
		}
	} else {
		edges, err = stream.ParseTextBatch(body)
	}
	if err != nil {
		s.batchesRefused.Inc()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch exceeds %d bytes; split it", s.cfg.MaxBodyBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "batch refused, nothing ingested: %v", err)
		return
	}
	if len(edges) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"edges": 0})
		return
	}
	wait := r.URL.Query().Get("wait") == "1"
	if err := s.submit(edges, wait); err != nil {
		// Shutdown is the retryable 503; a WAL append/sync failure is a 500:
		// the service cannot honor its durability ack and (the WAL error
		// having latched) will keep refusing until operator action.
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, "%v", err)
		return
	}
	status := http.StatusAccepted
	if wait {
		status = http.StatusOK // absorbed: queries now reflect this batch
	}
	writeJSON(w, status, map[string]any{"edges": len(edges)})
}

// parseUser accepts ?user=<uint64> or ?key=<string> (hashed with
// streamcard.Key, for curl-friendly string identifiers).
func parseUser(r *http.Request) (uint64, error) {
	if q := r.URL.Query().Get("user"); q != "" {
		u, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad user %q: %v", q, err)
		}
		return u, nil
	}
	if k := r.URL.Query().Get("key"); k != "" {
		return streamcard.Key(k), nil
	}
	return 0, errors.New("missing user= (uint64) or key= (string) parameter")
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	u, err := parseUser(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	est := s.view().Estimate(u)
	var buf [64]byte
	b := append(buf[:0], `{"user":`...)
	b = strconv.AppendUint(b, u, 10)
	b = append(b, `,"estimate":`...)
	b = strconv.AppendFloat(b, est, 'g', -1, 64)
	b = append(b, '}', '\n')
	writeRawJSON(w, http.StatusOK, b)
}

// handleTotal reports the window's distinct-pair total. The default
// reading, "summed", is the anytime total: the sum of the per-shard frozen
// totals, an O(shards) arithmetic read off the published snapshot that
// never touches the sketch arrays — this is what keeps /total
// sub-millisecond under load. ?method=merged requests the union reading
// instead: the shard sketches merged register-by-register into one sketch
// (lower variance, since shared-seed shards overlap coherently), a fold
// over every live generation that costs milliseconds at serving sizes —
// cached on the snapshot, so repeated merged totals over an unchanged
// stack merge once. When the shards cannot merge (distinct seeds, drifted
// epochs) the merged request falls back to the sum and says so in
// "method"; an unknown method is a 400. The reported epoch is exactly the
// epoch the total was computed over.
func (s *Server) handleTotal(w http.ResponseWriter, r *http.Request) {
	method := r.URL.Query().Get("method")
	if method == "" {
		method = "summed"
	}
	if method != "summed" && method != "merged" {
		httpError(w, http.StatusBadRequest, "bad method %q: want summed or merged", method)
		return
	}
	v := s.view()
	var total float64
	if method == "merged" {
		start := time.Now()
		var err error
		if total, err = v.TotalDistinctMerged(); err != nil {
			total, method = v.TotalDistinct(), "summed"
		}
		s.observeAnalytics("merged_total", start)
	} else {
		total = v.TotalDistinct()
	}
	var buf [96]byte
	b := append(buf[:0], `{"total":`...)
	b = strconv.AppendFloat(b, total, 'g', -1, 64)
	b = append(b, `,"method":"`...)
	b = append(b, method...)
	b = append(b, `","epoch":`...)
	b = strconv.AppendInt(b, int64(v.Epoch()), 10)
	b = append(b, '}', '\n')
	writeRawJSON(w, http.StatusOK, b)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "bad k %q: want a positive integer", q)
			return
		}
		k = v
	}
	// TopK delegates to the view's shard-concurrent selection (TopKer).
	start := time.Now()
	top := streamcard.TopK(s.view(), k)
	s.observeAnalytics("topk", start)
	type entry struct {
		User     uint64  `json:"user"`
		Estimate float64 `json:"estimate"`
	}
	out := make([]entry, len(top))
	for i, t := range top {
		out[i] = entry{User: t.User, Estimate: t.Estimate}
	}
	writeJSON(w, http.StatusOK, map[string]any{"k": k, "top": out})
}

// handleUsers enumerates every user with a nonzero estimate. The response
// is streamed from the estimate-table iterator into a buffered writer — no
// response-sized slice or generic-JSON tree is ever built, which at
// millions of users would briefly double the service's per-user memory on
// every call. (The sorted enumeration itself still uses one shard's entry
// scratch at a time — bounded by the largest shard, not the response.)
// Entries arrive in deterministic order (shards in
// index order, ascending user ID within each); ?limit=N truncates the list
// (first N in that order) while "count" still reports the full total, and
// "truncated" says whether a limit cut the list. The stream reads from the
// published snapshot, so NO sketch lock is held for its duration: a
// stalled or slow reader cannot stall ingest, rotation, or other queries
// at all. The write deadline (Config.StreamWriteTimeout) remains as
// connection hygiene — it bounds how long a dead client can pin the
// snapshot (and its copy-on-write arrays) and the handler goroutine.
// limit=0 is the pure count query and skips the sorted enumeration
// entirely.
func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	limit := -1
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q: want a non-negative integer", q)
			return
		}
		limit = v
	}
	if limit == 0 {
		start := time.Now()
		n := s.view().NumUsers()
		s.observeAnalytics("numusers", start)
		writeJSON(w, http.StatusOK, map[string]any{
			"users": []any{}, "count": n, "truncated": n > 0,
		})
		return
	}
	if s.cfg.StreamWriteTimeout > 0 {
		// Best effort: ResponseController covers net/http servers; exotic
		// ResponseWriters that cannot set a deadline just stay unbounded,
		// as before. The deadline is cleared on the way out — it is set on
		// the CONNECTION, and with an http.Server whose WriteTimeout is 0
		// nothing would re-arm it, so a later response on the same
		// keep-alive connection would spuriously fail once it passed.
		rc := http.NewResponseController(w)
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout))
		defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	}
	w.Header().Set("Content-Type", "application/json")
	bw := bufio.NewWriterSize(w, 64<<10)
	bw.WriteString(`{"users":[`)
	count := 0
	var num [32]byte
	// Timed around the enumeration: the fold pre-warm and sorted stream
	// dominate; encoding rides inside fn but is a few appends per user.
	start := time.Now()
	s.view().Users(func(u uint64, e float64) {
		if limit < 0 || count < limit {
			if count > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`{"user":`)
			bw.Write(strconv.AppendUint(num[:0], u, 10))
			bw.WriteString(`,"estimate":`)
			bw.Write(strconv.AppendFloat(num[:0], e, 'g', -1, 64))
			bw.WriteByte('}')
		}
		count++
	})
	s.observeAnalytics("users", start)
	truncated := limit >= 0 && count > limit
	fmt.Fprintf(bw, `],"count":%d,"truncated":%v}`, count, truncated)
	bw.WriteByte('\n')
	_ = bw.Flush()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"method":      s.cfg.Method,
		"shards":      s.cfg.Shards,
		"generations": s.cfg.Generations,
		"epoch":       s.Epoch(),
		"uptime_s":    int(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleRotate(w http.ResponseWriter, r *http.Request) {
	s.rotate()
	writeJSON(w, http.StatusOK, map[string]any{"epoch": s.Epoch()})
}

// handleFlush waits until every batch accepted so far is absorbed — the
// barrier an async (202-mode) client calls before trusting a query to
// reflect its writes. With the WAL on it is also the durability barrier: a
// group-commit fsync is forced, so on success everything acked so far
// survives power loss too (the wal_unsynced_bytes gauge reads 0).
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	s.Drain()
	if s.wal != nil {
		if err := s.wal.Sync(); err != nil {
			httpError(w, http.StatusInternalServerError, "wal fsync: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"flushed": true})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SpoolDir == "" {
		httpError(w, http.StatusConflict, "no spool directory configured")
		return
	}
	if err := s.Checkpoint(); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"path": s.spoolPath()})
}
