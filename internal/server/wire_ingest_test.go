package server

// Tests for the CWB1 binary ingest protocol negotiated on POST /ingest,
// plus the allocation benchmarks behind the hand-rolled /estimate and
// /total responses.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/stream"
)

func postBinary(t *testing.T, url string, frame []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, stream.WireContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestServerBinaryIngest(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t.TempDir()))

	edges := zipfEdges(3, 20000, 500, 2000)
	frame := stream.AppendWire(nil, edges)
	code, body := postBinary(t, ts.URL+"/ingest?wait=1", frame)
	if code != http.StatusOK {
		t.Fatalf("binary ingest returned %d: %s", code, body)
	}
	if want := fmt.Sprintf(`"edges":%d`, len(edges)); !strings.Contains(body, want) {
		t.Fatalf("binary ingest response %s misses %s", body, want)
	}

	// The batch is queryable after ?wait=1 (read-your-writes), and the two
	// protocols land in the same stack: a text batch for the same user adds
	// only duplicates, so the estimate must not jump.
	code, body = get(t, ts.URL+"/estimate?user=0")
	if code != http.StatusOK {
		t.Fatalf("estimate returned %d: %s", code, body)
	}
	before := jsonNumber(t, body, "estimate")
	if before <= 0 {
		t.Fatalf("binary-ingested user estimates at %v", before)
	}
	var user0 []stream.Edge
	for _, e := range edges {
		if e.User == 0 {
			user0 = append(user0, e)
		}
	}
	ingest(t, ts.URL, user0, true)
	_, body = get(t, ts.URL+"/estimate?user=0")
	if after := jsonNumber(t, body, "estimate"); after != before {
		t.Fatalf("re-ingesting user 0's pairs over text moved the estimate %v -> %v", before, after)
	}
}

func TestServerBinaryIngestRefusesCorruptFrame(t *testing.T) {
	s, ts := newTestServer(t, testConfig(t.TempDir()))

	frame := stream.AppendWire(nil, zipfEdges(4, 100, 10, 50))
	frame[len(frame)/2] ^= 1
	code, body := postBinary(t, ts.URL+"/ingest", frame)
	if code != http.StatusBadRequest {
		t.Fatalf("corrupt frame returned %d: %s", code, body)
	}
	if !strings.Contains(body, "checksum") {
		t.Fatalf("corrupt-frame error does not mention the checksum: %s", body)
	}
	if got := s.view().NumUsers(); got != 0 {
		t.Fatalf("corrupt frame half-applied: %d users ingested", got)
	}

	// An empty frame is a valid no-op, mirroring the empty text batch.
	if code, body = postBinary(t, ts.URL+"/ingest", stream.AppendWire(nil, nil)); code != http.StatusOK {
		t.Fatalf("empty frame returned %d: %s", code, body)
	}
}

func TestServerBinaryOversizedBatch(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.MaxBodyBytes = 1 << 10
	_, ts := newTestServer(t, cfg)
	frame := stream.AppendWire(nil, zipfEdges(5, 1000, 100, 100))
	if code, body := postBinary(t, ts.URL+"/ingest", frame); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized binary batch returned %d: %s", code, body)
	}
}

// benchServer builds a warm server outside the timed section: a few
// thousand edges ingested and one query issued so the published view is
// assembled and the handlers run their steady-state path.
func benchServer(b *testing.B) *Server {
	b.Helper()
	s, err := New(testConfig(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	if err := s.submit(zipfEdges(6, 5000, 200, 500), true); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkEstimateHandler measures allocations per /estimate request —
// the regression guard for the hand-rolled response path (the generic
// map[string]any + encoder path it replaced allocated on every request).
func BenchmarkEstimateHandler(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/estimate?user=7", nil)
	w := httptest.NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Body.Reset()
		h.ServeHTTP(w, req)
	}
}

// BenchmarkTotalHandler measures allocations per default (summed) /total
// request, the polling-rate reading.
func BenchmarkTotalHandler(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/total", nil)
	w := httptest.NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Body.Reset()
		h.ServeHTTP(w, req)
	}
}

// BenchmarkIngestDecodeText and ...Binary isolate the wire-to-edges decode
// the two ingest protocols pay before the sketch sees anything.
func BenchmarkIngestDecodeText(b *testing.B) {
	edges := zipfEdges(8, 65536, 5000, 1000)
	body := edgeLines(edges)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.ParseTextBatch(strings.NewReader(body)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestDecodeBinary(b *testing.B) {
	edges := zipfEdges(8, 65536, 5000, 1000)
	frame := stream.AppendWire(nil, edges)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.DecodeWire(frame); err != nil {
			b.Fatal(err)
		}
	}
}
