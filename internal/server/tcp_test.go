package server

// CWT1 transport tests: the persistent TCP ingest path must be
// semantically invisible — a pipelined connection's accepted frames absorb
// bit-identically to the same batches waited through submit — while its
// error discipline (reject-and-resync on a bad payload, close on a torn
// header, ack-before-close on shutdown) and its durability contract (ack
// implies WAL record) hold exactly as specified in internal/stream.

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
)

// tcpClient is a minimal CWT1 client for tests: it owns the connection,
// numbers frames, and reads acks.
type tcpClient struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	seq  uint64
}

// dialTCP starts a CWT1 listener on s and connects a client to it,
// preamble included.
func dialTCP(t *testing.T, s *Server) *tcpClient {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeTCP(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write([]byte(stream.TCPMagic)); err != nil {
		t.Fatal(err)
	}
	return &tcpClient{t: t, conn: conn, br: bufio.NewReader(conn)}
}

// send writes one frame carrying edges and returns its sequence number.
func (c *tcpClient) send(edges []stream.Edge) uint64 {
	c.t.Helper()
	c.seq++
	payload := stream.AppendWire(nil, edges)
	frame := stream.AppendFrameHeader(nil, c.seq, len(payload))
	if _, err := c.conn.Write(append(frame, payload...)); err != nil {
		c.t.Fatal(err)
	}
	return c.seq
}

// readAck reads one ack, with a deadline so a lost ack fails the test
// instead of hanging it.
func (c *tcpClient) readAck() (seq uint64, status uint16) {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var rec [stream.AckLen]byte
	if _, err := io.ReadFull(c.br, rec[:]); err != nil {
		c.t.Fatalf("reading ack: %v", err)
	}
	seq, status, err := stream.ParseAck(rec[:])
	if err != nil {
		c.t.Fatalf("parsing ack: %v", err)
	}
	return seq, status
}

// expectEOF asserts the server closed the connection (after all pending
// acks were read).
func (c *tcpClient) expectEOF() {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := c.br.ReadByte(); err != io.EOF {
		c.t.Fatalf("want connection close, got %v", err)
	}
}

// approxCard tolerates the sketch's estimation error on small exact
// cardinalities (the bit-identity tests compare twin-vs-twin exactly; here
// only TCP-vs-truth plausibility is at stake).
func approxCard(got, want float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff <= 0.05*want+0.5
}

func newTCPTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestTCPPipelinedIngestBitIdenticalToTwin: a client pushes a whole batch
// schedule down one connection without waiting for acks (pipelining), with
// rotations interleaved; a twin takes the identical schedule through the
// synchronous submit path. Every ack must be 200, and every per-user
// estimate, the merged total, and the epoch must agree exactly — TCP is a
// transport, not a semantic.
func TestTCPPipelinedIngestBitIdenticalToTwin(t *testing.T) {
	tcp := newTCPTestServer(t, testConfig(""))
	twin := newTCPTestServer(t, testConfig(""))
	c := dialTCP(t, tcp)

	edges := zipfEdges(31, 40000, 250, 2000)
	const batch = 500
	sent := 0
	for i := 0; i < len(edges); i += batch {
		end := i + batch
		if end > len(edges) {
			end = len(edges)
		}
		chunk := edges[i:end]
		c.send(chunk)
		sent++
		if err := twin.submit(chunk, true); err != nil {
			t.Fatal(err)
		}
		if sent%17 == 0 {
			// Rotation mid-pipeline: frames already on the wire absorb
			// before the cut (the gate drains pending), later ones after.
			// The twin rotates at the same batch boundary. The acked prefix
			// barrier below makes the schedules identical.
			for ; sent > 0; sent-- {
				if _, status := c.readAck(); status != stream.AckOK {
					t.Fatalf("ack status %d", status)
				}
			}
			tcp.Drain()
			tcp.rotate()
			twin.rotate()
		}
	}
	for ; sent > 0; sent-- {
		if _, status := c.readAck(); status != stream.AckOK {
			t.Fatalf("ack status %d", status)
		}
	}
	tcp.Drain()

	if tcp.Epoch() != twin.Epoch() {
		t.Fatalf("epochs %d vs %d", tcp.Epoch(), twin.Epoch())
	}
	want := make(map[uint64]float64)
	twin.Estimator().Users(func(u uint64, e float64) { want[u] = e })
	got := make(map[uint64]float64)
	tcp.Estimator().Users(func(u uint64, e float64) { got[u] = e })
	if len(got) != len(want) {
		t.Fatalf("user sets differ: %d vs %d", len(got), len(want))
	}
	for u, w := range want {
		if g, ok := got[u]; !ok || g != w {
			t.Fatalf("user %d: tcp %v, twin %v", u, got[u], w)
		}
	}
	a, errA := tcp.Estimator().TotalDistinctMerged()
	b, errB := twin.Estimator().TotalDistinctMerged()
	if errA != nil || errB != nil || a != b {
		t.Fatalf("merged totals %v (%v) vs %v (%v)", a, errA, b, errB)
	}
}

// TestTCPBadPayloadAcks400AndResyncs: a frame whose header is valid but
// whose CWB1 payload is corrupt must be rejected ALONE — acked 400, the
// frames around it acked 200 and absorbed — because the header's length
// still delimits the stream exactly.
func TestTCPBadPayloadAcks400AndResyncs(t *testing.T) {
	s := newTCPTestServer(t, testConfig(""))
	c := dialTCP(t, s)

	good1 := []stream.Edge{{User: 1, Item: 10}, {User: 1, Item: 11}}
	c.send(good1)
	// Hand-build a frame with a payload that fails CWB1 validation.
	c.seq++
	payload := stream.AppendWire(nil, []stream.Edge{{User: 9, Item: 9}})
	payload[len(payload)-1] ^= 0xff // break the CWB1 CRC
	frame := stream.AppendFrameHeader(nil, c.seq, len(payload))
	if _, err := c.conn.Write(append(frame, payload...)); err != nil {
		t.Fatal(err)
	}
	good2 := []stream.Edge{{User: 2, Item: 20}}
	c.send(good2)

	for i, want := range []uint16{stream.AckOK, stream.AckBad, stream.AckOK} {
		seq, status := c.readAck()
		if seq != uint64(i+1) || status != want {
			t.Fatalf("ack %d: (%d, %d), want (%d, %d)", i, seq, status, i+1, want)
		}
	}
	s.Drain()
	if got := s.view().Estimate(1); !approxCard(got, 2) {
		t.Fatalf("user 1 estimate %v, want ~2", got)
	}
	if got := s.view().Estimate(9); got != 0 {
		t.Fatalf("rejected frame leaked: user 9 estimate %v", got)
	}
	if got := s.view().Estimate(2); !approxCard(got, 1) {
		t.Fatalf("user 2 estimate %v, want ~1", got)
	}
}

// TestTCPCorruptHeaderClosesWithoutMisack: once a frame HEADER is corrupt,
// framing is lost — the server must ack everything it accepted before the
// damage, then close the connection, and nothing after the damage may be
// acked or absorbed.
func TestTCPCorruptHeaderClosesWithoutMisack(t *testing.T) {
	s := newTCPTestServer(t, testConfig(""))
	c := dialTCP(t, s)

	c.send([]stream.Edge{{User: 5, Item: 50}})
	// A torn header: flip a byte inside the header of the next frame.
	c.seq++
	payload := stream.AppendWire(nil, []stream.Edge{{User: 6, Item: 60}})
	frame := stream.AppendFrameHeader(nil, c.seq, len(payload))
	frame[3] ^= 0x80
	if _, err := c.conn.Write(append(frame, payload...)); err != nil {
		t.Fatal(err)
	}

	if seq, status := c.readAck(); seq != 1 || status != stream.AckOK {
		t.Fatalf("first ack (%d, %d)", seq, status)
	}
	c.expectEOF()
	s.Drain()
	if got := s.view().Estimate(6); got != 0 {
		t.Fatalf("frame after corrupt header absorbed: estimate %v", got)
	}
}

// TestTCPRejectsBadPreamble: a connection that does not open with "CWT1"
// (an HTTP request aimed at the wrong port, say) is closed before any
// frame is read.
func TestTCPRejectsBadPreamble(t *testing.T) {
	s := newTCPTestServer(t, testConfig(""))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeTCP(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := bufio.NewReader(conn).ReadByte(); err != io.EOF {
		t.Fatalf("want close on bad preamble, got %v", err)
	}
}

// TestTCPClientHalfCloseDrains: a client that finishes (CloseWrite) still
// gets every outstanding ack, then a clean server-side close — the
// graceful end-of-stream path cardload uses.
func TestTCPClientHalfCloseDrains(t *testing.T) {
	s := newTCPTestServer(t, testConfig(""))
	c := dialTCP(t, s)

	const frames = 40
	edges := zipfEdges(7, frames*100, 50, 500)
	for i := 0; i < frames; i++ {
		c.send(edges[i*100 : (i+1)*100])
	}
	if err := c.conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if _, status := c.readAck(); status != stream.AckOK {
			t.Fatalf("ack %d status %d", i, status)
		}
	}
	c.expectEOF()
	s.Drain()
	exact := make(map[uint64]map[uint64]bool)
	for _, e := range edges {
		if exact[e.User] == nil {
			exact[e.User] = make(map[uint64]bool)
		}
		exact[e.User][e.Item] = true
	}
	for u, items := range exact {
		if got := s.view().Estimate(u); !approxCard(got, float64(len(items))) {
			t.Fatalf("user %d: estimate %v, want ~%d", u, got, len(items))
		}
	}
}

// TestTCPServerCloseAcksInFlight: Close half-closes live connections; a
// client mid-pipeline must still receive an ack for every frame it managed
// to send before the cut — and every 200-acked frame must be in the final
// checkpoint's state (here: absorbed before Close returned).
func TestTCPServerCloseAcksInFlight(t *testing.T) {
	s := newTCPTestServer(t, testConfig(""))
	c := dialTCP(t, s)

	const frames = 20
	for i := 0; i < frames; i++ {
		c.send([]stream.Edge{{User: 77, Item: uint64(i)}})
	}
	// Acks confirm the server has READ the frames; Close after that point
	// must still ack-and-absorb all of them (here they are already acked —
	// the invariant under test is that Close never cuts an acked frame).
	acked := 0
	for ; acked < frames; acked++ {
		if _, status := c.readAck(); status != stream.AckOK {
			t.Fatalf("ack %d status %d", acked, status)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	c.expectEOF()
	if got := s.view().Estimate(77); !approxCard(got, frames) {
		t.Fatalf("estimate %v after close, want ~%d (every acked frame absorbed)", got, frames)
	}
	// New listeners are refused outright.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ServeTCP(ln); err != ErrClosed {
		t.Fatalf("ServeTCP after Close: %v, want ErrClosed", err)
	}
}

// TestTCPWALDurability: with the WAL on, a 200 ack over TCP means the
// frame is logged — a server torn down WITHOUT a final checkpoint (no
// spool) must reproduce every acked frame from the log alone.
func TestTCPWALDurability(t *testing.T) {
	cfg := testConfig("")
	cfg.WALDir = t.TempDir()
	s := newTCPTestServer(t, cfg)
	c := dialTCP(t, s)

	edges := zipfEdges(13, 5000, 100, 800)
	for i := 0; i < len(edges); i += 250 {
		c.send(edges[i : i+250])
	}
	for i := 0; i < len(edges)/250; i++ {
		if _, status := c.readAck(); status != stream.AckOK {
			t.Fatalf("ack %d status %d", i, status)
		}
	}
	want := make(map[uint64]float64)
	s.Drain()
	s.view().Users(func(u uint64, e float64) { want[u] = e })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	records, replayed := re.WALReplayed()
	if records == 0 || replayed != len(edges) {
		t.Fatalf("replayed %d records / %d edges, want all %d edges", records, replayed, len(edges))
	}
	got := 0
	re.view().Users(func(u uint64, e float64) {
		if want[u] != e {
			t.Fatalf("user %d: replayed %v, want %v", u, e, want[u])
		}
		got++
	})
	if got != len(want) {
		t.Fatalf("replayed %d users, want %d", got, len(want))
	}
}

// TestTCPMetricsExposed: the cardserved_tcp_* series appear on /metrics
// and move with traffic.
func TestTCPMetricsExposed(t *testing.T) {
	s := newTCPTestServer(t, testConfig(""))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := dialTCP(t, s)
	c.send([]stream.Edge{{User: 1, Item: 2}})
	if _, status := c.readAck(); status != stream.AckOK {
		t.Fatalf("ack status %d", status)
	}

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics returned %d", code)
	}
	for _, want := range []string{
		"cardserved_tcp_connections_active 1",
		"cardserved_tcp_connections_total 1",
		"cardserved_tcp_frames_total 1",
		`cardserved_tcp_acks_total{status="200"} 1`,
		"cardserved_tcp_backpressure_stalls_total",
		"cardserved_tcp_bytes_read_total",
		"cardserved_tcp_ack_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
