package usertab

import "testing"

// TestSnapshotIsolation: a snapshot is a frozen logical copy of the table —
// later Add/Set/Ref mutations of the parent never show through it, and
// mutating the snapshot never leaks back.
func TestSnapshotIsolation(t *testing.T) {
	tb := New()
	for i := uint64(0); i < 100; i++ { // includes the zero-key sidecar
		tb.Add(i, float64(i)+0.5)
	}
	snap := tb.Snapshot()
	wantLen := snap.Len()

	// Parent mutations: updates, inserts (growth included), Ref write-back.
	for i := uint64(50); i < 400; i++ {
		tb.Add(i, 1000)
	}
	if p := tb.Ref(7); p != nil {
		*p = -1
	}
	tb.Set(0, -2)

	if snap.Len() != wantLen {
		t.Fatalf("snapshot length drifted: %d != %d", snap.Len(), wantLen)
	}
	for i := uint64(0); i < 100; i++ {
		if got, want := snap.Get(i), float64(i)+0.5; got != want {
			t.Fatalf("snapshot entry %d: %v != %v", i, got, want)
		}
	}
	if snap.Get(200) != 0 {
		t.Fatal("parent insert leaked into snapshot")
	}

	// Snapshot-side mutation stays private.
	snap2 := tb.Snapshot()
	snap2.Add(9999, 1)
	if tb.Get(9999) != 0 {
		t.Fatal("snapshot mutation leaked into parent")
	}
}

// TestSnapshotReset: wholesale deletion on the parent must not empty
// outstanding snapshots.
func TestSnapshotReset(t *testing.T) {
	tb := New()
	tb.Add(42, 7)
	snap := tb.Snapshot()
	tb.Reset()
	if snap.Get(42) != 7 || snap.Len() != 1 {
		t.Fatal("Reset destroyed the snapshot")
	}
	if tb.Len() != 0 {
		t.Fatal("Reset did not clear the parent")
	}
}

// TestSnapshotGetIsPure: Get on a shared table must not detach it — reads
// of snapshots (and of parents between writes) stay allocation-free.
func TestSnapshotGetIsPure(t *testing.T) {
	tb := New()
	for i := uint64(1); i <= 1000; i++ {
		tb.Add(i, 1)
	}
	snap := tb.Snapshot()
	allocs := testing.AllocsPerRun(100, func() {
		_ = snap.Get(500)
		_ = snap.Get(424242) // miss
		_ = tb.Get(500)
	})
	if allocs != 0 {
		t.Fatalf("Get on a shared table allocates (%v allocs/run)", allocs)
	}
}

// TestSnapshotO1: taking a snapshot must not copy the backing arrays.
func TestSnapshotO1(t *testing.T) {
	for _, n := range []int{1 << 8, 1 << 16} {
		tb := New()
		for i := 1; i <= n; i++ {
			tb.Add(uint64(i), 1)
		}
		allocs := testing.AllocsPerRun(100, func() {
			sink = tb.Snapshot()
		})
		if allocs > 1 {
			t.Fatalf("Snapshot of %d entries allocates %v objects, want <= 1", n, allocs)
		}
	}
}

// TestSnapshotRangeDeterminism: a snapshot preserves the parent's layout, so
// Range order matches the parent's at the moment of the snapshot, and
// SortedRange stays key-sorted.
func TestSnapshotRangeDeterminism(t *testing.T) {
	tb := New()
	for i := uint64(1); i <= 300; i++ {
		tb.Add(i*2654435761%100000, float64(i))
	}
	var parentOrder []uint64
	tb.Range(func(k uint64, _ float64) { parentOrder = append(parentOrder, k) })
	snap := tb.Snapshot()
	tb.Add(123456789, 1) // mutate parent afterwards

	var snapOrder []uint64
	snap.Range(func(k uint64, _ float64) { snapOrder = append(snapOrder, k) })
	if len(snapOrder) != len(parentOrder) {
		t.Fatalf("snapshot Range length %d != %d", len(snapOrder), len(parentOrder))
	}
	for i := range snapOrder {
		if snapOrder[i] != parentOrder[i] {
			t.Fatalf("snapshot Range order diverged at %d", i)
		}
	}
	last := uint64(0)
	first := true
	snap.SortedRange(func(k uint64, _ float64) {
		if !first && k <= last {
			t.Fatalf("SortedRange not ascending: %d after %d", k, last)
		}
		last, first = k, false
	})
}

var sink any
