package usertab

import (
	"math"
	"slices"
	"testing"

	"repro/internal/hashing"
)

// TestTableMatchesMapReference drives a table and a Go map through the same
// random operation sequence (accumulates, overwrites, lookups, including the
// sentinel-colliding key 0) and requires identical contents throughout —
// the table's contract is exactly a map's, minus deletion.
func TestTableMatchesMapReference(t *testing.T) {
	rng := hashing.NewRNG(1)
	tab := New()
	ref := make(map[uint64]float64)
	const keySpace = 5000
	for op := 0; op < 200000; op++ {
		key := uint64(rng.Intn(keySpace)) // includes 0
		switch rng.Intn(4) {
		case 0, 1:
			d := rng.Float64() * 10
			tab.Add(key, d)
			ref[key] += d
		case 2:
			v := rng.Float64() * 100
			tab.Set(key, v)
			ref[key] = v
		case 3:
			want := ref[key]
			if got := tab.Get(key); got != want {
				t.Fatalf("op %d: Get(%d) = %v, want %v", op, key, got, want)
			}
		}
	}
	if tab.Len() != len(ref) {
		t.Fatalf("Len %d, map has %d", tab.Len(), len(ref))
	}
	seen := 0
	tab.Range(func(k uint64, v float64) {
		seen++
		if want, ok := ref[k]; !ok || want != v {
			t.Fatalf("Range reported %d=%v, map has %v (present %v)", k, v, ref[k], ok)
		}
	})
	if seen != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", seen, len(ref))
	}
	for k, v := range ref {
		if got := tab.Get(k); got != v {
			t.Fatalf("final Get(%d) = %v, want %v", k, got, v)
		}
	}
	// Absent keys, including ones beyond the key space.
	for i := 0; i < 1000; i++ {
		k := uint64(keySpace) + uint64(rng.Intn(1<<20))
		if tab.Get(k) != 0 || tab.Ref(k) != nil {
			t.Fatalf("phantom entry for %d", k)
		}
	}
}

func TestTableZeroKeySidecar(t *testing.T) {
	tab := New()
	if tab.Get(0) != 0 || tab.Ref(0) != nil || tab.Len() != 0 {
		t.Fatal("empty table reports user 0")
	}
	tab.Add(0, 2.5)
	if tab.Get(0) != 2.5 || tab.Len() != 1 {
		t.Fatalf("user 0: got %v, len %d", tab.Get(0), tab.Len())
	}
	*tab.Ref(0) += 1.5
	if tab.Get(0) != 4 {
		t.Fatalf("Ref(0) write lost: %v", tab.Get(0))
	}
	// Both iteration orders report user 0 first.
	tab.Add(7, 1)
	var order []uint64
	tab.Range(func(k uint64, _ float64) { order = append(order, k) })
	if order[0] != 0 {
		t.Fatalf("Range order %v, want user 0 first", order)
	}
	order = order[:0]
	tab.SortedRange(func(k uint64, _ float64) { order = append(order, k) })
	if !slices.Equal(order, []uint64{0, 7}) {
		t.Fatalf("SortedRange order %v", order)
	}
	tab.Set(0, -1)
	if tab.Get(0) != -1 {
		t.Fatal("Set(0) did not overwrite")
	}
}

// TestTableSortedRange: ascending key order, every entry exactly once,
// regardless of how the layout was built.
func TestTableSortedRange(t *testing.T) {
	rng := hashing.NewRNG(3)
	tab := New()
	want := make([]uint64, 0, 3000)
	for i := 0; i < 3000; i++ {
		k := rng.Uint64()
		if tab.Ref(k) == nil {
			want = append(want, k)
		}
		tab.Add(k, float64(i))
	}
	slices.Sort(want)
	got := make([]uint64, 0, len(want))
	tab.SortedRange(func(k uint64, _ float64) { got = append(got, k) })
	if !slices.Equal(got, want) {
		t.Fatalf("SortedRange keys differ: %d vs %d entries", len(got), len(want))
	}
}

// TestTableDeterministicLayout: two tables fed the same operations are
// cell-for-cell identical, so Range visits entries in the same order.
func TestTableDeterministicLayout(t *testing.T) {
	build := func() *Table {
		rng := hashing.NewRNG(9)
		tab := New()
		for i := 0; i < 50000; i++ {
			tab.Add(uint64(rng.Intn(4000)+1), 1)
		}
		return tab
	}
	a, b := build(), build()
	var orderA, orderB []uint64
	a.Range(func(k uint64, _ float64) { orderA = append(orderA, k) })
	b.Range(func(k uint64, _ float64) { orderB = append(orderB, k) })
	if !slices.Equal(orderA, orderB) {
		t.Fatal("identical histories produced different layouts")
	}
}

func TestTableCloneIsDeep(t *testing.T) {
	tab := New()
	for i := uint64(0); i < 100; i++ {
		tab.Add(i, float64(i))
	}
	c := tab.Clone()
	if c.Len() != tab.Len() {
		t.Fatalf("clone Len %d, want %d", c.Len(), tab.Len())
	}
	// Clones preserve layout: Range orders agree at clone time.
	var orderA, orderB []uint64
	tab.Range(func(k uint64, _ float64) { orderA = append(orderA, k) })
	c.Range(func(k uint64, _ float64) { orderB = append(orderB, k) })
	if !slices.Equal(orderA, orderB) {
		t.Fatal("clone changed layout")
	}
	c.Add(999, 1)
	c.Add(5, 1)
	if tab.Get(999) != 0 || tab.Get(5) != 5 {
		t.Fatal("clone shares state with original")
	}
}

func TestTableReset(t *testing.T) {
	tab := New()
	for i := uint64(0); i < 10000; i++ {
		tab.Add(i, 1)
	}
	grown := tab.MemoryBytes()
	tab.Reset()
	if tab.Len() != 0 || tab.Get(0) != 0 || tab.Get(42) != 0 {
		t.Fatal("Reset left entries behind")
	}
	if tab.MemoryBytes() >= grown {
		t.Fatal("Reset did not release the backing arrays")
	}
	tab.Add(1, 2)
	if tab.Get(1) != 2 || tab.Len() != 1 {
		t.Fatal("table unusable after Reset")
	}
}

// TestTableHighLoadFactor pins the memory contract this package exists for:
// the table refuses to double before 31/32 occupancy, so a pre-sized table
// holds its advertised entry count in exactly capacity*16 bytes.
func TestTableHighLoadFactor(t *testing.T) {
	const n = 100000
	tab := NewWithCapacity(n)
	cap0 := tab.Cap()
	rng := hashing.NewRNG(5)
	for i := 0; i < n; i++ {
		tab.Add(rng.Uint64()|1, 1) // nonzero keys; dups just accumulate
	}
	if tab.Cap() != cap0 {
		t.Fatalf("pre-sized table grew: %d -> %d", cap0, tab.Cap())
	}
	// Organic growth stays within one doubling of the load-factor floor.
	org := New()
	for i := 0; i < n; i++ {
		org.Add(uint64(i)+1, 1)
	}
	maxSlots := 1
	for maxSlots-grow32nd(maxSlots) < n {
		maxSlots <<= 1
	}
	if org.Cap() > maxSlots {
		t.Fatalf("organic table at %d slots for %d entries (max %d)", org.Cap(), n, maxSlots)
	}
	if got := org.MemoryBytes(); got != int64(org.Cap())*16 {
		t.Fatalf("MemoryBytes %d, want %d", got, int64(org.Cap())*16)
	}
}

// TestTableSpecialValues: NaN, ±Inf, and zero values are stored verbatim —
// hostile checkpoint payloads may carry them, and the decoder must round
// them through the table unchanged.
func TestTableSpecialValues(t *testing.T) {
	tab := New()
	tab.Set(1, math.NaN())
	tab.Set(2, math.Inf(1))
	tab.Set(3, 0)
	if !math.IsNaN(tab.Get(1)) || !math.IsInf(tab.Get(2), 1) {
		t.Fatal("special values mangled")
	}
	if tab.Ref(3) == nil || tab.Len() != 3 {
		t.Fatal("zero-valued entry dropped")
	}
}

func BenchmarkTableAdd(b *testing.B) {
	rng := hashing.NewRNG(1)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = rng.Uint64() | 1
	}
	b.ReportAllocs()
	tab := New()
	for i := 0; i < b.N; i++ {
		tab.Add(keys[i&(1<<16-1)], 1.5)
	}
}

func BenchmarkTableGetHit(b *testing.B) {
	rng := hashing.NewRNG(1)
	keys := make([]uint64, 1<<16)
	tab := New()
	for i := range keys {
		keys[i] = rng.Uint64() | 1
		tab.Add(keys[i], 1.5)
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tab.Get(keys[i&(1<<16-1)])
	}
	_ = sink
}
