// Package usertab provides the flat per-user estimate store shared by the
// FreeBS/FreeRS sketches: an open-addressing hash table specialized for
// uint64 → float64, holding every user's anytime running estimate.
//
// The paper's memory argument is that the SKETCH is one shared array with no
// per-user structure; at millions of users the per-user bookkeeping must be
// held to the same standard, and a Go map is the wrong tool for it — every
// entry pays bucket headers, and the whole structure is opaque to accounting.
// This table stores entries in two parallel slices (keys, values) with no
// per-entry allocation and no pointers for the garbage collector to trace:
// its entire footprint is two flat arrays whose size MemoryBytes reports
// exactly.
//
// Layout and policies:
//
//   - Power-of-two capacity, grown by doubling. Because the sketches never
//     delete individual users (estimates only accumulate; state is discarded
//     wholesale via Reset or by retiring a window generation), the table is
//     tombstone-free, and probing never has to skip deleted slots.
//   - Robin Hood linear probing: an inserted entry displaces any occupant
//     that sits closer to its own home slot, which keeps probe lengths tight
//     and lets lookups of absent keys stop early (at the first occupant
//     closer to home than the probe is long). That bounded miss cost is what
//     allows the high 31/32 maximum load factor — the memory-thrift setting
//     this package exists for — without linear probing's usual collapse of
//     negative lookups near full occupancy.
//   - Layout is a pure function of the insertion sequence, so two tables fed
//     the same operations are cell-for-cell identical and Range visits their
//     entries in the same order. SortedRange visits entries in ascending key
//     order regardless of layout — the order serialization uses, so equal
//     logical states always serialize to equal bytes.
//
// Key 0 is the empty-slot sentinel in the arrays; a real user 0 is held in a
// sidecar (hasZero/zeroVal) and reported first by both iteration orders.
package usertab

import (
	"slices"
	"sync"

	"repro/internal/hashing"
)

// minCapacity is the smallest slot count a table allocates. Small enough
// that short-lived sketches (one per window generation per shard) stay
// cheap, large enough that the first few doublings don't dominate.
const minCapacity = 16

// Table is a flat open-addressing map from user ID to running estimate.
// The zero value is not usable; call New or NewWithCapacity.
type Table struct {
	keys []uint64  // 0 = empty slot
	vals []float64 // parallel to keys
	mask uint64    // len(keys)-1; len is a power of two
	n    int       // occupied slots (excludes the zero-key sidecar)

	// growAt is the occupancy at which the next mutation doubles the
	// arrays: capacity minus max(1, capacity/32), i.e. a 31/32 maximum
	// load factor at realistic sizes.
	growAt int

	hasZero bool    // user 0 present (sidecar; 0 marks empty slots)
	zeroVal float64 // user 0's value

	// shared marks keys/vals as possibly aliased by a Snapshot: the next
	// slot write must detach (copy both arrays) first. The sidecar and the
	// occupancy counters live in the struct and are copied by Snapshot.
	shared bool
}

// New returns an empty table at the minimum capacity.
func New() *Table { return NewWithCapacity(0) }

// NewWithCapacity returns an empty table pre-sized to hold n entries without
// growing — the restore path knows its entry count up front and skips the
// doubling churn.
func NewWithCapacity(n int) *Table {
	c := minCapacity
	for c-grow32nd(c) < n {
		c <<= 1
	}
	t := &Table{}
	t.install(c)
	return t
}

func grow32nd(c int) int {
	g := c / 32
	if g < 1 {
		g = 1
	}
	return g
}

// install points the table at fresh arrays of capacity c (a power of two).
// Fresh arrays are private by construction, so install also clears shared.
func (t *Table) install(c int) {
	t.keys = make([]uint64, c)
	t.vals = make([]float64, c)
	t.mask = uint64(c) - 1
	t.n = 0
	t.growAt = c - grow32nd(c)
	t.shared = false
}

// Snapshot returns an O(1) logically frozen copy of t: both tables keep the
// shared backing arrays and the first slot write on either side copies them
// (copy-on-write), so taking a snapshot costs one small struct allocation
// regardless of occupancy. Reads of the snapshot (Get, Range, SortedRange)
// are safe concurrently with mutations of the parent, which detaches onto
// private arrays before its first write.
func (t *Table) Snapshot() *Table {
	t.shared = true
	c := *t
	return &c
}

// detach gives t private copies of the backing arrays if a snapshot may
// still alias them. Called before every slot write (put, Ref).
func (t *Table) detach() {
	if !t.shared {
		return
	}
	t.keys = slices.Clone(t.keys)
	t.vals = slices.Clone(t.vals)
	t.shared = false
}

// home returns key's preferred slot.
func (t *Table) home(key uint64) uint64 { return hashing.Mix64(key) & t.mask }

// distance returns how far slot is from key's home, in probe steps.
func (t *Table) distance(key, slot uint64) uint64 {
	return (slot - t.home(key)) & t.mask
}

// Len returns the number of stored entries in O(1).
func (t *Table) Len() int {
	if t.hasZero {
		return t.n + 1
	}
	return t.n
}

// Cap returns the current slot capacity (tests and accounting).
func (t *Table) Cap() int { return len(t.keys) }

// MemoryBytes returns the table's backing-array footprint: 16 bytes per
// slot (8 key + 8 value). Unlike a map, the whole structure is these two
// arrays, so this is the exact per-user bookkeeping cost.
func (t *Table) MemoryBytes() int64 { return int64(len(t.keys)) * 16 }

// Get returns key's value, or 0 if absent. It is a pure read: unlike Ref it
// never detaches a snapshot-shared table, so it is safe on frozen views.
func (t *Table) Get(key uint64) float64 {
	if key == 0 {
		if t.hasZero {
			return t.zeroVal
		}
		return 0
	}
	slot := t.home(key)
	var d uint64
	for {
		k := t.keys[slot]
		if k == key {
			return t.vals[slot]
		}
		if k == 0 || t.distance(k, slot) < d {
			return 0
		}
		slot = (slot + 1) & t.mask
		d++
	}
}

// Ref returns a pointer to key's value cell, or nil if key is absent. The
// pointer stays valid until the next Add, Set, Reset, or Snapshot (growth
// and copy-on-write both move the arrays) — the batch ingestion hot path
// reads a user's estimate once per run, accumulates in a register, and
// writes back through the same pointer, paying one probe sequence instead
// of two. Because the returned pointer is writable, Ref detaches the table
// from any outstanding snapshot before probing.
func (t *Table) Ref(key uint64) *float64 {
	if key == 0 {
		if t.hasZero {
			return &t.zeroVal
		}
		return nil
	}
	t.detach()
	slot := t.home(key)
	var d uint64
	for {
		k := t.keys[slot]
		if k == key {
			return &t.vals[slot]
		}
		// Empty slot, or an occupant closer to its home than we are to
		// ours: Robin Hood's invariant says key cannot be further along.
		if k == 0 || t.distance(k, slot) < d {
			return nil
		}
		slot = (slot + 1) & t.mask
		d++
	}
}

// Add accumulates delta into key's value, inserting the entry (at value
// delta) if absent. Amortized O(1).
func (t *Table) Add(key uint64, delta float64) {
	if key == 0 {
		t.zeroVal += delta
		t.hasZero = true
		return
	}
	if t.n >= t.growAt {
		t.rehash()
	}
	t.put(key, delta, true)
}

// Set overwrites key's value, inserting if absent — the restore path, which
// replays serialized entries rather than accumulating credits.
func (t *Table) Set(key uint64, val float64) {
	if key == 0 {
		t.zeroVal = val
		t.hasZero = true
		return
	}
	if t.n >= t.growAt {
		t.rehash()
	}
	t.put(key, val, false)
}

// put inserts (key, val) with Robin Hood displacement, or combines with an
// existing entry (+= when accumulate, overwrite otherwise). key is nonzero
// and the table has a free slot.
func (t *Table) put(key uint64, val float64, accumulate bool) {
	t.detach()
	slot := t.home(key)
	var d uint64
	for {
		k := t.keys[slot]
		if k == 0 {
			t.keys[slot] = key
			t.vals[slot] = val
			t.n++
			return
		}
		if k == key {
			if accumulate {
				t.vals[slot] += val
			} else {
				t.vals[slot] = val
			}
			return
		}
		if ed := t.distance(k, slot); ed < d {
			// The occupant is closer to home than we are: take its slot
			// and keep walking with the displaced entry. Once displaced,
			// the carried entry can no longer equal key (key was not found
			// before this point), so the equality check above stays
			// correct: an already-robbed entry never matches.
			t.keys[slot], key = key, k
			t.vals[slot], val = val, t.vals[slot]
			d = ed
		}
		slot = (slot + 1) & t.mask
		d++
	}
}

// rehash doubles the arrays and reinserts every entry in slot order, which
// keeps the new layout a pure function of the old one.
func (t *Table) rehash() {
	oldKeys, oldVals := t.keys, t.vals
	t.install(len(oldKeys) * 2)
	for i, k := range oldKeys {
		if k != 0 {
			t.put(k, oldVals[i], false)
		}
	}
}

// Range calls fn for every entry in layout order (user 0 first, then slot
// order): allocation-free and deterministic for a given operation history,
// but NOT sorted and not stable across a rehash or a serialize/restore
// round trip. Aggregations that treat each user independently (top-k
// selection, per-user sums, fan-ins) want this; serialization wants
// SortedRange. fn must not mutate the table.
func (t *Table) Range(fn func(key uint64, val float64)) {
	if t.hasZero {
		fn(0, t.zeroVal)
	}
	for i, k := range t.keys {
		if k != 0 {
			fn(k, t.vals[i])
		}
	}
}

// SortedRange calls fn for every entry in ascending key order — the
// deterministic order serialization and user enumeration promise, identical
// for equal logical states regardless of how their layouts were reached.
// It sorts an entry scratch slice (O(n log n)) drawn from a shared pool, so
// repeated sorted enumerations (serialization, /users streams, top-k over
// cached window folds) reuse one buffer instead of allocating 16 bytes per
// entry per call; use Range where order does not matter. fn must not mutate
// the table.
func (t *Table) SortedRange(fn func(key uint64, val float64)) {
	if t.hasZero {
		fn(0, t.zeroVal)
	}
	sp := entryScratch.Get().(*[]entry)
	// Collect values alongside keys in the single slot walk: re-probing the
	// table per key would pay a full probe chain each at 31/32 load.
	entries := (*sp)[:0]
	for i, k := range t.keys {
		if k != 0 {
			entries = append(entries, entry{k, t.vals[i]})
		}
	}
	slices.SortFunc(entries, func(a, b entry) int {
		// Keys are unique, so this is a strict total order.
		if a.key < b.key {
			return -1
		}
		return 1
	})
	for _, e := range entries {
		fn(e.key, e.val)
	}
	*sp = entries[:0]
	entryScratch.Put(sp)
}

// entry is SortedRange's scratch element.
type entry struct {
	key uint64
	val float64
}

// entryScratch pools SortedRange's sort scratch. The buffer never escapes
// the call (fn receives copied key/value pairs), and reentrant or
// concurrent SortedRange calls each draw their own buffer, so pooling is
// safe; a panicking fn leaks at most one buffer to the GC.
var entryScratch = sync.Pool{New: func() any { return new([]entry) }}

// Clone returns a deep copy: same entries, same layout, no shared state
// (eager, unlike Snapshot's lazy copy-on-write).
func (t *Table) Clone() *Table {
	c := *t
	c.keys = slices.Clone(t.keys)
	c.vals = slices.Clone(t.vals)
	c.shared = false
	return &c
}

// Reset discards every entry and releases the backing arrays, returning the
// table to its initial minimum capacity — deletion happens only wholesale,
// which is what keeps the probe sequences tombstone-free.
func (t *Table) Reset() {
	t.install(minCapacity)
	t.hasZero = false
	t.zeroVal = 0
}
