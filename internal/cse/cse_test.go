package cse

import (
	"math"
	"testing"

	"repro/internal/hashing"
)

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, 0) },
		func() { New(100, 0, 0) },
		func() { New(100, 101, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccessors(t *testing.T) {
	c := New(1<<16, 128, 1)
	if c.M() != 1<<16 || c.VirtualSize() != 128 || c.MemoryBits() != 1<<16 {
		t.Fatal("accessors wrong")
	}
	if c.GlobalZeroFraction() != 1 {
		t.Fatalf("fresh zero fraction = %v", c.GlobalZeroFraction())
	}
	if got, want := c.MaxEstimate(), 128*math.Log(128); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxEstimate = %v, want %v", got, want)
	}
}

func TestEmptyUserEstimatesNearZero(t *testing.T) {
	c := New(1<<16, 128, 2)
	if got := c.Estimate(42); got != 0 {
		t.Fatalf("empty estimate = %v", got)
	}
}

func TestSingleUserNoNoise(t *testing.T) {
	// One user alone: CSE reduces to LPC with a (tiny) correction; accuracy
	// should be within LPC-like error.
	c := New(1<<18, 1024, 3)
	const n = 500
	for i := 0; i < n; i++ {
		c.Observe(7, uint64(i))
	}
	got := c.Estimate(7)
	if math.Abs(got-n) > 75 {
		t.Fatalf("estimate %v for n=%d", got, n)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	c := New(1<<14, 256, 4)
	for i := 0; i < 50; i++ {
		c.Observe(1, uint64(i))
	}
	before := c.Estimate(1)
	for i := 0; i < 50; i++ {
		c.Observe(1, uint64(i))
	}
	if c.Estimate(1) != before {
		t.Fatal("duplicates changed the estimate")
	}
}

func TestNoiseCorrectionRemovesOtherUsers(t *testing.T) {
	// A small user among heavy background traffic: without the correction
	// term its virtual sketch would look much fuller than its true set.
	c := New(1<<17, 512, 5)
	rng := hashing.NewRNG(9)
	// Background: 400 users × 200 items = 80k pairs -> shared array fills up.
	for u := uint64(100); u < 500; u++ {
		for i := 0; i < 200; i++ {
			c.Observe(u, rng.Uint64())
		}
	}
	const n = 50
	for i := 0; i < n; i++ {
		c.Observe(7, uint64(i))
	}
	got := c.Estimate(7)
	// The uncorrected LPC estimate over the noisy virtual sketch:
	uncorrected := got - 512*math.Log(c.GlobalZeroFraction())
	if uncorrected <= got {
		t.Fatalf("correction did not reduce the estimate: corrected %v, uncorrected %v", got, uncorrected)
	}
	if math.Abs(got-n) > 100 {
		t.Fatalf("corrected estimate %v for n=%d (uncorrected %v)", got, n, uncorrected)
	}
}

func TestEstimateClampedNonNegative(t *testing.T) {
	// With pure background noise and no own items, the estimator's raw value
	// fluctuates around 0 and can dip negative; the clamp must hold.
	c := New(1<<14, 512, 6)
	rng := hashing.NewRNG(11)
	for u := uint64(0); u < 100; u++ {
		for i := 0; i < 100; i++ {
			c.Observe(u, rng.Uint64())
		}
	}
	for u := uint64(1000); u < 1200; u++ {
		if got := c.Estimate(u); got < 0 {
			t.Fatalf("negative estimate %v", got)
		}
	}
}

func TestSaturatedVirtualSketchPinsAtRangeLimit(t *testing.T) {
	// Overload one user's sketch far past m·ln m: the estimate must stay
	// finite, near the range limit (CSE's known failure mode, Fig. 4c).
	c := New(1<<15, 64, 7)
	for i := 0; i < 200000; i++ {
		c.Observe(1, uint64(i))
	}
	got := c.Estimate(1)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("estimate not finite: %v", got)
	}
	if got > c.MaxEstimate()+1 {
		t.Fatalf("estimate %v above range limit %v", got, c.MaxEstimate())
	}
}

func TestGlobalZeroFractionTracks(t *testing.T) {
	c := New(1024, 64, 8)
	before := c.GlobalZeroFraction()
	for i := 0; i < 500; i++ {
		c.Observe(uint64(i), uint64(i))
	}
	after := c.GlobalZeroFraction()
	if after >= before {
		t.Fatal("zero fraction did not fall")
	}
	if after <= 0 || after >= 1 {
		t.Fatalf("zero fraction = %v", after)
	}
}

func TestVarianceFormula(t *testing.T) {
	// At q=1 (no noise) the formula reduces to the LPC variance.
	v := Variance(100, 1024, 1)
	x := 100.0 / 1024
	want := 1024 * (math.Exp(x) - x - 1)
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("Variance(q=1) = %v, want %v", v, want)
	}
	// Noise (q<1) must increase variance.
	if Variance(100, 1024, 0.5) <= v {
		t.Fatal("noise must increase variance")
	}
}

func TestDifferentUsersIsolated(t *testing.T) {
	// With a large shared array, estimates for two users should roughly
	// reflect their own cardinalities.
	c := New(1<<18, 512, 10)
	for i := 0; i < 1000; i++ {
		c.Observe(1, uint64(i))
	}
	for i := 0; i < 10; i++ {
		c.Observe(2, uint64(i))
	}
	e1, e2 := c.Estimate(1), c.Estimate(2)
	if e1 < e2*10 {
		t.Fatalf("isolation failed: e1=%v e2=%v", e1, e2)
	}
}

func BenchmarkObserve(b *testing.B) {
	c := New(1<<20, 1024, 1)
	rng := hashing.NewRNG(1)
	users := make([]uint64, 4096)
	items := make([]uint64, 4096)
	for i := range users {
		users[i] = uint64(rng.Intn(10000))
		items[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(users[i&4095], items[i&4095])
	}
}

func BenchmarkEstimate(b *testing.B) {
	c := New(1<<20, 1024, 1)
	for i := 0; i < 100000; i++ {
		c.Observe(uint64(i%100), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Estimate(uint64(i % 100))
	}
}
