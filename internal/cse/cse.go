// Package cse implements the Compact Spread Estimator (Yoon, Li, Chen &
// Peir, INFOCOM 2009), the bit-sharing baseline of §III-B1 of the paper.
//
// CSE embeds a virtual m-bit LPC sketch for every user into one shared
// M-bit array A: user s's sketch is (A[f_1(s)], ..., A[f_m(s)]). Sharing
// makes bits "noisy" — other users' items set bits inside s's virtual
// sketch — and CSE removes the expected noise with a global correction term:
//
//	n̂_s = -m·ln(Û_s/m) + m·ln(U/M)
//
// where Û_s counts zero bits in the virtual sketch (O(m) per estimate) and
// U counts zero bits in the whole array (maintained incrementally here).
package cse

import (
	"math"

	"repro/internal/bitarray"
	"repro/internal/hashing"
	"repro/internal/stream"
)

// CSE is a shared-bit-array estimator for all users.
type CSE struct {
	bits     *bitarray.BitArray
	fam      *hashing.IndexFamily
	itemSeed uint64
	m        int

	scratch []int // reusable index buffer for estimates
}

// New returns a CSE with a shared array of mBits bits and virtual sketches
// of m bits per user. It panics if m <= 0, mBits <= 0 or m > mBits.
func New(mBits, m int, seed uint64) *CSE {
	if m <= 0 || mBits <= 0 || m > mBits {
		panic("cse: need 0 < m <= M")
	}
	return &CSE{
		bits:     bitarray.New(mBits),
		fam:      hashing.NewIndexFamily(seed, m, mBits),
		itemSeed: hashing.Mix64(seed ^ 0x9e3779b97f4a7c15),
		m:        m,
	}
}

// M returns the shared array size in bits.
func (c *CSE) M() int { return c.bits.Size() }

// VirtualSize returns m, the virtual sketch size per user.
func (c *CSE) VirtualSize() int { return c.m }

// MemoryBits returns the fixed memory footprint in bits.
func (c *CSE) MemoryBits() int64 { return int64(c.bits.Size()) }

// Observe records edge (user, item): the item selects position h(d) within
// the user's virtual sketch and the corresponding shared bit is set. O(1).
func (c *CSE) Observe(user, item uint64) {
	j := hashing.UniformIndex(hashing.HashU64(item, c.itemSeed), c.m)
	c.bits.Set(c.fam.Index(user, j))
}

// ObserveBatch records a slice of edges, equivalent to calling Observe on
// each in order. The double-hashing basis of the user's virtual sketch is
// computed once per run of consecutive same-user edges instead of per edge.
func (c *CSE) ObserveBatch(edges []stream.Edge) {
	stream.ForEachRun(edges, func(user uint64, run []stream.Edge) {
		h1, h2 := c.fam.Basis(user)
		for _, e := range run {
			p := hashing.UniformIndex(hashing.HashU64(e.Item, c.itemSeed), c.m)
			c.bits.Set(c.fam.IndexAt(h1, h2, p))
		}
	})
}

// GlobalZeroFraction returns U/M, the fraction of zero bits in the shared
// array (the paper's q^(t)).
func (c *CSE) GlobalZeroFraction() float64 { return c.bits.ZeroFraction() }

// Estimate returns the noise-corrected cardinality estimate of user. The
// virtual sketch is enumerated, so the cost is O(m) — this is the cost the
// paper's Challenge 2 refers to. The estimate is clamped to [0, MaxEstimate].
func (c *CSE) Estimate(user uint64) float64 {
	c.scratch = c.fam.Indices(user, c.scratch[:0])
	zeros := 0
	for _, idx := range c.scratch {
		if !c.bits.Get(idx) {
			zeros++
		}
	}
	m := float64(c.m)
	if zeros == 0 {
		zeros = 1 // saturated virtual sketch: pin at the range limit m·ln m
	}
	u := c.bits.ZeroCount()
	if u == 0 {
		u = 1 // fully saturated shared array: correction term pinned
	}
	est := -m*math.Log(float64(zeros)/m) + m*math.Log(float64(u)/float64(c.bits.Size()))
	if est < 0 {
		return 0
	}
	return est
}

// TotalEstimate returns the linear-counting estimate -M·ln(U/M) of the
// total number of distinct pairs recorded, computed from the shared array's
// global zero count. O(1).
func (c *CSE) TotalEstimate() float64 {
	u := c.bits.ZeroCount()
	bigM := c.bits.Size()
	if u == 0 {
		return float64(bigM) * math.Log(float64(bigM))
	}
	return -float64(bigM) * math.Log(float64(u)/float64(bigM))
}

// MaxEstimate returns m·ln m, the estimation-range limit the paper
// attributes to CSE (reached when the virtual sketch saturates).
func (c *CSE) MaxEstimate() float64 { return MaxEstimateFor(c.m) }

// MaxEstimateFor returns the estimation-range limit m·ln m for a virtual
// sketch of m bits, without constructing a CSE.
func MaxEstimateFor(m int) float64 {
	mf := float64(m)
	return mf * math.Log(mf)
}

// Variance returns the paper's approximate variance of the CSE estimator for
// a user with true cardinality ns when the global zero fraction is q:
// Var ≈ m·((1/q)·e^{ns/m} - ns/m - 1). Used by analytical tests and the
// FreeBS-vs-CSE comparison of §IV-C.
func Variance(ns float64, m int, q float64) float64 {
	x := ns / float64(m)
	return float64(m) * (math.Exp(x)/q - x - 1)
}
