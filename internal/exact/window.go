package exact

import "repro/internal/stream"

// WindowTracker maintains exact distinct counts over the last span edges of
// the stream — the sliding-window ground truth the k-generation windowed
// sketches are evaluated against. It keeps every in-window edge in a ring
// buffer plus multiplicity maps, so memory is O(span); like Tracker, it is
// the reference implementation, not a line-rate method.
type WindowTracker struct {
	span int
	buf  []stream.Edge // ring buffer of the last min(n, span) edges
	head int           // slot the next edge overwrites (= oldest edge when full)
	n    int           // edges currently buffered

	pairCount map[stream.Edge]int // in-window multiplicity of each pair
	userCount map[uint64]int      // distinct in-window items per user
	total     int                 // distinct in-window pairs
}

// NewWindowTracker returns a tracker over the trailing span edges; it panics
// if span <= 0.
func NewWindowTracker(span int) *WindowTracker {
	if span <= 0 {
		panic("exact: NewWindowTracker requires span > 0")
	}
	return &WindowTracker{
		span:      span,
		buf:       make([]stream.Edge, span),
		pairCount: make(map[stream.Edge]int),
		userCount: make(map[uint64]int),
	}
}

// Observe slides edge (user, item) into the window, evicting the edge that
// fell off the far end once the window is full.
func (t *WindowTracker) Observe(user, item uint64) {
	e := stream.Edge{User: user, Item: item}
	if t.n == t.span {
		old := t.buf[t.head]
		if c := t.pairCount[old] - 1; c > 0 {
			t.pairCount[old] = c
		} else {
			delete(t.pairCount, old)
			t.total--
			if uc := t.userCount[old.User] - 1; uc > 0 {
				t.userCount[old.User] = uc
			} else {
				delete(t.userCount, old.User)
			}
		}
	} else {
		t.n++
	}
	t.buf[t.head] = e
	t.head = (t.head + 1) % t.span
	if c := t.pairCount[e]; c > 0 {
		t.pairCount[e] = c + 1
	} else {
		t.pairCount[e] = 1
		t.total++
		t.userCount[user]++
	}
}

// Span returns the configured window length in edges.
func (t *WindowTracker) Span() int { return t.span }

// Len returns how many edges are currently in the window (≤ Span).
func (t *WindowTracker) Len() int { return t.n }

// Cardinality returns the exact number of distinct items user connected to
// within the window (0 if the user has no in-window edges).
func (t *WindowTracker) Cardinality(user uint64) int { return t.userCount[user] }

// TotalCardinality returns the exact number of distinct in-window pairs.
func (t *WindowTracker) TotalCardinality() int { return t.total }

// NumUsers returns the number of users with at least one in-window edge.
func (t *WindowTracker) NumUsers() int { return len(t.userCount) }
