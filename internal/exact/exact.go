// Package exact computes exact per-user cardinalities — the ground truth
// n_s^(t) = |N_s^(t)| against which every sketch in the repository is
// evaluated, and the exact total n^(t) = Σ_s n_s^(t) that defines the
// super-spreader threshold Δ·n^(t) in §V-F of the paper.
//
// It is deliberately memory-hungry (a hash set of distinct edges); the whole
// point of the paper is that this is infeasible at line rate, but at
// evaluation scale it is the reference implementation. Each user's item set
// starts as a small sorted slice and upgrades to a map once it grows past a
// threshold, which keeps the common case (most users have tiny cardinality,
// Fig. 2) compact.
package exact

import (
	"sort"

	"repro/internal/stream"
)

// upgradeThreshold is the set size at which a user's item slice becomes a
// map. Linear scans below this size are faster and far smaller than maps.
const upgradeThreshold = 32

type userSet struct {
	small []uint64            // sorted when len <= upgradeThreshold
	large map[uint64]struct{} // non-nil once upgraded
}

func (u *userSet) add(item uint64) bool {
	if u.large != nil {
		if _, ok := u.large[item]; ok {
			return false
		}
		u.large[item] = struct{}{}
		return true
	}
	i := sort.Search(len(u.small), func(i int) bool { return u.small[i] >= item })
	if i < len(u.small) && u.small[i] == item {
		return false
	}
	if len(u.small) < upgradeThreshold {
		u.small = append(u.small, 0)
		copy(u.small[i+1:], u.small[i:])
		u.small[i] = item
		return true
	}
	u.large = make(map[uint64]struct{}, len(u.small)*2)
	for _, v := range u.small {
		u.large[v] = struct{}{}
	}
	u.small = nil
	u.large[item] = struct{}{}
	return true
}

func (u *userSet) size() int {
	if u.large != nil {
		return len(u.large)
	}
	return len(u.small)
}

// Tracker maintains exact distinct-item counts per user.
type Tracker struct {
	sets  map[uint64]*userSet
	total int // Σ_s n_s = number of distinct (user,item) pairs
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{sets: make(map[uint64]*userSet)}
}

// Observe records edge (user, item) and reports whether the pair was new
// (its first occurrence in the stream).
func (t *Tracker) Observe(user, item uint64) bool {
	s := t.sets[user]
	if s == nil {
		s = &userSet{}
		t.sets[user] = s
	}
	if s.add(item) {
		t.total++
		return true
	}
	return false
}

// ObserveStream drains a stream into the tracker.
func (t *Tracker) ObserveStream(s stream.Stream) error {
	return stream.ForEach(s, func(e stream.Edge) { t.Observe(e.User, e.Item) })
}

// Cardinality returns n_s, the exact number of distinct items of user s
// (0 if the user has not appeared).
func (t *Tracker) Cardinality(user uint64) int {
	if s := t.sets[user]; s != nil {
		return s.size()
	}
	return 0
}

// TotalCardinality returns n = Σ_s n_s, the number of distinct pairs seen.
func (t *Tracker) TotalCardinality() int { return t.total }

// NumUsers returns |S|, the number of distinct users seen.
func (t *Tracker) NumUsers() int { return len(t.sets) }

// Users calls fn for every (user, cardinality) pair, in unspecified order.
func (t *Tracker) Users(fn func(user uint64, card int)) {
	for u, s := range t.sets {
		fn(u, s.size())
	}
}

// MaxCardinality returns the largest per-user cardinality (0 if empty).
func (t *Tracker) MaxCardinality() int {
	maxCard := 0
	for _, s := range t.sets {
		if n := s.size(); n > maxCard {
			maxCard = n
		}
	}
	return maxCard
}

// Cardinalities returns every user's cardinality as a slice (order
// unspecified). Used by CCDF computation.
func (t *Tracker) Cardinalities() []int {
	out := make([]int, 0, len(t.sets))
	for _, s := range t.sets {
		out = append(out, s.size())
	}
	return out
}

// SuperSpreaders returns the users whose exact cardinality is at least
// threshold — the ground-truth detection set of §V-F.
func (t *Tracker) SuperSpreaders(threshold float64) map[uint64]bool {
	out := make(map[uint64]bool)
	for u, s := range t.sets {
		if float64(s.size()) >= threshold {
			out[u] = true
		}
	}
	return out
}
