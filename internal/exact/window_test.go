package exact

import (
	"testing"

	"repro/internal/hashing"
	"repro/internal/stream"
)

func TestWindowTrackerSlides(t *testing.T) {
	w := NewWindowTracker(4)
	w.Observe(1, 10)
	w.Observe(1, 10) // duplicate inside the window
	w.Observe(1, 11)
	w.Observe(2, 10)
	if w.Cardinality(1) != 2 || w.Cardinality(2) != 1 || w.TotalCardinality() != 3 || w.NumUsers() != 2 {
		t.Fatalf("full window: card1=%d card2=%d total=%d users=%d",
			w.Cardinality(1), w.Cardinality(2), w.TotalCardinality(), w.NumUsers())
	}
	// Slide: evicts the first (1,10); its duplicate keeps the pair alive.
	w.Observe(3, 30)
	if w.Cardinality(1) != 2 || w.TotalCardinality() != 4 {
		t.Fatalf("after 1 slide: card1=%d total=%d", w.Cardinality(1), w.TotalCardinality())
	}
	// Slide again: evicts the second (1,10); now the pair is gone.
	w.Observe(3, 31)
	if w.Cardinality(1) != 1 || w.TotalCardinality() != 4 {
		t.Fatalf("after 2 slides: card1=%d total=%d", w.Cardinality(1), w.TotalCardinality())
	}
	// Age user 1 out entirely.
	w.Observe(3, 32)
	w.Observe(3, 33)
	if w.Cardinality(1) != 0 || w.NumUsers() != 1 {
		t.Fatalf("aged out: card1=%d users=%d", w.Cardinality(1), w.NumUsers())
	}
	if w.Len() != 4 || w.Span() != 4 {
		t.Fatalf("len=%d span=%d", w.Len(), w.Span())
	}
}

// TestWindowTrackerMatchesNaive cross-checks the incremental maintenance
// against a from-scratch recount of the buffered suffix on a random stream.
func TestWindowTrackerMatchesNaive(t *testing.T) {
	const span = 64
	w := NewWindowTracker(span)
	rng := hashing.NewRNG(7)
	var all []stream.Edge
	for i := 0; i < 1000; i++ {
		e := stream.Edge{User: uint64(rng.Intn(10)), Item: uint64(rng.Intn(40))}
		all = append(all, e)
		w.Observe(e.User, e.Item)
		if i%137 != 0 {
			continue
		}
		start := len(all) - span
		if start < 0 {
			start = 0
		}
		users := map[uint64]map[uint64]struct{}{}
		pairs := map[stream.Edge]struct{}{}
		for _, s := range all[start:] {
			if users[s.User] == nil {
				users[s.User] = map[uint64]struct{}{}
			}
			users[s.User][s.Item] = struct{}{}
			pairs[s] = struct{}{}
		}
		if w.TotalCardinality() != len(pairs) || w.NumUsers() != len(users) {
			t.Fatalf("t=%d: total=%d want %d, users=%d want %d",
				i, w.TotalCardinality(), len(pairs), w.NumUsers(), len(users))
		}
		for u, set := range users {
			if w.Cardinality(u) != len(set) {
				t.Fatalf("t=%d user %d: %d want %d", i, u, w.Cardinality(u), len(set))
			}
		}
	}
}

func TestWindowTrackerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindowTracker(0)
}
