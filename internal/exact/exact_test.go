package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/hashing"
	"repro/internal/stream"
)

func TestEmptyTracker(t *testing.T) {
	tr := NewTracker()
	if tr.TotalCardinality() != 0 || tr.NumUsers() != 0 || tr.MaxCardinality() != 0 {
		t.Fatal("empty tracker not empty")
	}
	if tr.Cardinality(5) != 0 {
		t.Fatal("unknown user must have cardinality 0")
	}
}

func TestObserveBasics(t *testing.T) {
	tr := NewTracker()
	if !tr.Observe(1, 10) {
		t.Fatal("first pair must be new")
	}
	if tr.Observe(1, 10) {
		t.Fatal("duplicate pair must not be new")
	}
	if !tr.Observe(1, 11) {
		t.Fatal("second item must be new")
	}
	if !tr.Observe(2, 10) {
		t.Fatal("same item for another user must be new")
	}
	if tr.Cardinality(1) != 2 || tr.Cardinality(2) != 1 {
		t.Fatalf("cards: %d %d", tr.Cardinality(1), tr.Cardinality(2))
	}
	if tr.TotalCardinality() != 3 || tr.NumUsers() != 2 {
		t.Fatalf("total=%d users=%d", tr.TotalCardinality(), tr.NumUsers())
	}
}

func TestSmallToLargeUpgrade(t *testing.T) {
	tr := NewTracker()
	// Push one user well past the upgrade threshold with interleaved
	// duplicates, in descending order to stress the sorted-insert path.
	for pass := 0; pass < 2; pass++ {
		for i := 200; i > 0; i-- {
			tr.Observe(7, uint64(i))
		}
	}
	if tr.Cardinality(7) != 200 {
		t.Fatalf("card = %d, want 200", tr.Cardinality(7))
	}
	if tr.TotalCardinality() != 200 {
		t.Fatalf("total = %d", tr.TotalCardinality())
	}
}

func TestAgainstNaiveReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewRNG(seed)
		tr := NewTracker()
		ref := make(map[uint64]map[uint64]bool)
		refTotal := 0
		for i := 0; i < 5000; i++ {
			u := uint64(rng.Intn(40))
			d := uint64(rng.Intn(60))
			isNew := tr.Observe(u, d)
			if ref[u] == nil {
				ref[u] = make(map[uint64]bool)
			}
			refNew := !ref[u][d]
			ref[u][d] = true
			if refNew {
				refTotal++
			}
			if isNew != refNew {
				return false
			}
		}
		if tr.TotalCardinality() != refTotal || tr.NumUsers() != len(ref) {
			return false
		}
		for u, items := range ref {
			if tr.Cardinality(u) != len(items) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestObserveStream(t *testing.T) {
	es := []stream.Edge{
		{User: 1, Item: 1}, {User: 1, Item: 1}, {User: 1, Item: 2}, {User: 2, Item: 1},
	}
	tr := NewTracker()
	if err := tr.ObserveStream(stream.NewSlice(es)); err != nil {
		t.Fatal(err)
	}
	if tr.Cardinality(1) != 2 || tr.Cardinality(2) != 1 || tr.TotalCardinality() != 3 {
		t.Fatal("stream observation wrong")
	}
}

func TestUsersIteration(t *testing.T) {
	tr := NewTracker()
	tr.Observe(1, 1)
	tr.Observe(2, 1)
	tr.Observe(2, 2)
	got := make(map[uint64]int)
	tr.Users(func(u uint64, c int) { got[u] = c })
	if len(got) != 2 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("Users gave %v", got)
	}
}

func TestMaxCardinalityAndSlice(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 5; i++ {
		tr.Observe(1, uint64(i))
	}
	for i := 0; i < 3; i++ {
		tr.Observe(2, uint64(i))
	}
	if tr.MaxCardinality() != 5 {
		t.Fatalf("max = %d", tr.MaxCardinality())
	}
	cards := tr.Cardinalities()
	if len(cards) != 2 {
		t.Fatalf("cards len = %d", len(cards))
	}
	sum := cards[0] + cards[1]
	if sum != 8 {
		t.Fatalf("cards = %v", cards)
	}
}

func TestSuperSpreaders(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 10; i++ {
		tr.Observe(100, uint64(i))
	}
	tr.Observe(200, 1)
	ss := tr.SuperSpreaders(5)
	if !ss[100] || ss[200] || len(ss) != 1 {
		t.Fatalf("spreaders = %v", ss)
	}
	ss = tr.SuperSpreaders(1)
	if len(ss) != 2 {
		t.Fatalf("threshold 1 should include everyone: %v", ss)
	}
	ss = tr.SuperSpreaders(100)
	if len(ss) != 0 {
		t.Fatalf("impossible threshold matched: %v", ss)
	}
}

func TestBoundaryAtUpgradeThreshold(t *testing.T) {
	tr := NewTracker()
	// Exactly upgradeThreshold inserts stay in slice mode; one more upgrades.
	for i := 0; i < upgradeThreshold; i++ {
		tr.Observe(1, uint64(i*2)) // even items
	}
	s := tr.sets[1]
	if s.large != nil {
		t.Fatal("upgraded too early")
	}
	// A duplicate at the boundary must not upgrade or recount.
	tr.Observe(1, 0)
	if s.large != nil || tr.Cardinality(1) != upgradeThreshold {
		t.Fatal("duplicate at boundary misbehaved")
	}
	tr.Observe(1, 999)
	if tr.sets[1].large == nil {
		t.Fatal("did not upgrade past threshold")
	}
	if tr.Cardinality(1) != upgradeThreshold+1 {
		t.Fatalf("card after upgrade = %d", tr.Cardinality(1))
	}
	// Membership preserved across the upgrade.
	if tr.Observe(1, 2) {
		t.Fatal("pre-upgrade item forgotten after upgrade")
	}
}

func BenchmarkObserve(b *testing.B) {
	tr := NewTracker()
	rng := hashing.NewRNG(1)
	users := make([]uint64, 4096)
	items := make([]uint64, 4096)
	for i := range users {
		users[i] = uint64(rng.Intn(10000))
		items[i] = uint64(rng.Intn(100000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(users[i&4095], items[i&4095])
	}
}
