// Package regarray implements packed fixed-width register arrays, the
// substrate of every register-sharing sketch in this repository (FreeRS,
// vHLL, HLL, HLL++).
//
// A register array holds M registers of w bits each (w in [1,8]), packed
// into a []uint64. Registers only grow (max-update), which is the
// HyperLogLog update discipline.
//
// Two derived statistics are exposed:
//
//   - the zero-register count, needed by linear-counting small-range
//     corrections (HLL, HLL++, vHLL) and by the FreeBS/FreeRS comparison in
//     §IV-C of the paper; it is always maintained incrementally;
//
//   - the harmonic sum Σ_j 2^-R[j], which drives the HLL raw estimate,
//     vHLL's global noise term, and FreeRS's change probability
//     q_R = Σ_j 2^-R[j] / M.
//
// When size·2^maxVal fits in a uint64 (true for the w=5 registers that
// FreeRS and vHLL use, up to M = 2^32), the harmonic sum is maintained
// incrementally as the exact integer S = Σ_j 2^(maxVal-R[j]) — no float
// drift, so the incremental value is bit-exact against recomputation, which
// the property tests enforce, and FreeRS's O(1)-per-edge claim holds.
// For wider registers (w=6 for HLL++) the sum is recomputed by scanning on
// demand; those sketches only need it inside their O(m) estimation step, so
// nothing is lost.
package regarray

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// pow2neg[k] = 2^-k for k in [0,255].
var pow2neg [256]float64

func init() {
	for k := range pow2neg {
		pow2neg[k] = math.Exp2(-float64(k))
	}
}

// Array is a packed array of M w-bit registers. The zero value is not usable;
// call New.
type Array struct {
	words  []uint64
	size   int   // number of registers M
	width  uint8 // bits per register w
	maxVal uint8 // (1<<w)-1, the register saturation value
	zeros  int   // maintained count of zero registers
	exact  bool  // whether scaled is maintained
	scaled uint64
	// scaled = Σ_j 2^(maxVal-R[j]), maintained incrementally when exact.

	// shared marks words as possibly aliased by a Snapshot: the next write
	// must detach (copy the backing array) first. Derived statistics live in
	// the struct and are copied by Snapshot itself.
	shared bool
}

// New returns an array of size registers of width bits each, all zero.
// It panics unless 1 <= width <= 8 and size > 0.
func New(size int, width uint8) *Array {
	if size <= 0 {
		panic("regarray: size must be positive")
	}
	if width < 1 || width > 8 {
		panic("regarray: width must be in [1,8]")
	}
	maxVal := uint8(1<<width - 1)
	exact := maxVal < 64 && uint64(size) <= math.MaxUint64>>uint(maxVal)
	totalBits := size * int(width)
	a := &Array{
		words:  make([]uint64, (totalBits+63)/64),
		size:   size,
		width:  width,
		maxVal: maxVal,
		zeros:  size,
		exact:  exact,
	}
	if exact {
		a.scaled = uint64(size) << uint(maxVal)
	}
	return a
}

// Size returns the number of registers M.
func (a *Array) Size() int { return a.size }

// Width returns the register width w in bits.
func (a *Array) Width() uint8 { return a.width }

// MaxValue returns the saturation value (1<<w)-1.
func (a *Array) MaxValue() uint8 { return a.maxVal }

// Exact reports whether the harmonic sum is maintained incrementally as an
// exact integer (O(1) HarmonicSum) rather than recomputed by scanning.
func (a *Array) Exact() bool { return a.exact }

// ZeroCount returns the maintained number of zero registers.
func (a *Array) ZeroCount() int { return a.zeros }

// ScaledHarmonicSum returns Σ_j 2^(MaxValue()-R[j]) as an exact integer.
// It panics if the array is not in exact mode (see Exact).
func (a *Array) ScaledHarmonicSum() uint64 {
	if !a.exact {
		panic("regarray: scaled harmonic sum unavailable for this width/size")
	}
	return a.scaled
}

// HarmonicSum returns Σ_j 2^-R[j]. O(1) in exact mode, O(M) otherwise.
func (a *Array) HarmonicSum() float64 {
	if a.exact {
		return float64(a.scaled) / float64(uint64(1)<<uint(a.maxVal))
	}
	sum := 0.0
	for i := 0; i < a.size; i++ {
		sum += pow2neg[a.Get(i)]
	}
	return sum
}

// ChangeProbability returns Σ_j 2^-R[j] / M, the probability that a fresh
// uniformly-placed geometric rank changes some register — FreeRS's q_R.
func (a *Array) ChangeProbability() float64 {
	return a.HarmonicSum() / float64(a.size)
}

// Get returns register i. It panics if i is out of range.
func (a *Array) Get(i int) uint8 {
	if i < 0 || i >= a.size {
		panic(fmt.Sprintf("regarray: index %d out of range [0,%d)", i, a.size))
	}
	bitPos := i * int(a.width)
	w, off := bitPos>>6, uint(bitPos&63)
	v := a.words[w] >> off
	if off+uint(a.width) > 64 {
		v |= a.words[w+1] << (64 - off)
	}
	return uint8(v) & a.maxVal
}

// set stores v into register i without statistics maintenance.
func (a *Array) set(i int, v uint8) {
	bitPos := i * int(a.width)
	w, off := bitPos>>6, uint(bitPos&63)
	mask := uint64(a.maxVal) << off
	a.words[w] = a.words[w]&^mask | uint64(v)<<off
	if off+uint(a.width) > 64 {
		rem := off + uint(a.width) - 64
		mask2 := uint64(a.maxVal) >> (uint(a.width) - rem)
		a.words[w+1] = a.words[w+1]&^mask2 | uint64(v)>>(uint(a.width)-rem)
	}
}

// UpdateMax sets register i to max(R[i], v) and returns the previous value
// together with whether the register changed. v is clamped to MaxValue().
// This is the only mutation the sketch algorithms perform.
func (a *Array) UpdateMax(i int, v uint8) (old uint8, changed bool) {
	if v > a.maxVal {
		v = a.maxVal
	}
	old = a.Get(i)
	if v <= old {
		return old, false
	}
	a.detach()
	a.set(i, v)
	if old == 0 {
		a.zeros--
	}
	if a.exact {
		a.scaled -= uint64(1) << uint(a.maxVal-old)
		a.scaled += uint64(1) << uint(a.maxVal-v)
	}
	return old, true
}

// Reset zeroes every register.
func (a *Array) Reset() {
	if a.shared {
		// Snapshots keep the old words; start over on a private array.
		a.words = make([]uint64, len(a.words))
		a.shared = false
	} else {
		for i := range a.words {
			a.words[i] = 0
		}
	}
	a.zeros = a.size
	if a.exact {
		a.scaled = uint64(a.size) << uint(a.maxVal)
	}
}

// Snapshot returns an O(1) logically frozen copy of a: both arrays keep the
// shared backing words and the first register write on either side copies
// them (copy-on-write), so taking a snapshot costs one small struct
// allocation regardless of M. Reads of the snapshot are safe concurrently
// with mutations of the parent, which detaches onto a private copy before
// its first write.
func (a *Array) Snapshot() *Array {
	a.shared = true
	c := *a
	return &c
}

// detach gives a a private copy of the backing words if a snapshot may still
// alias them. Called before every register write.
func (a *Array) detach() {
	if !a.shared {
		return
	}
	w := make([]uint64, len(a.words))
	copy(w, a.words)
	a.words = w
	a.shared = false
}

// Audit recomputes the zero count (and, in exact mode, the scaled harmonic
// sum) from the packed words, repairs the maintained values, and returns an
// error if either disagreed (indicating a bug).
func (a *Array) Audit() error {
	zeros := 0
	var scaled uint64
	for i := 0; i < a.size; i++ {
		v := a.Get(i)
		if v == 0 {
			zeros++
		}
		if a.exact {
			scaled += uint64(1) << uint(a.maxVal-v)
		}
	}
	var err error
	if zeros != a.zeros || (a.exact && scaled != a.scaled) {
		err = fmt.Errorf("regarray: maintained (zeros=%d, scaled=%d) != recomputed (zeros=%d, scaled=%d)",
			a.zeros, a.scaled, zeros, scaled)
	}
	a.zeros = zeros
	if a.exact {
		a.scaled = scaled
	}
	return err
}

// Clone returns a deep copy (eager, unlike Snapshot's lazy copy-on-write).
func (a *Array) Clone() *Array {
	w := make([]uint64, len(a.words))
	copy(w, a.words)
	return &Array{words: w, size: a.size, width: a.width, maxVal: a.maxVal,
		zeros: a.zeros, exact: a.exact, scaled: a.scaled}
}

// UnionWith takes the register-wise max of a and other (sketch union).
// Both arrays must have identical size and width.
func (a *Array) UnionWith(other *Array) error {
	if other == nil || other.size != a.size || other.width != a.width {
		return errors.New("regarray: union requires equal size and width")
	}
	for i := 0; i < a.size; i++ {
		a.UpdateMax(i, other.Get(i))
	}
	return nil
}

const marshalMagic = "RARR"

// MarshalBinary serializes the array (magic, size, width, words).
func (a *Array) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 4+8+1+8*len(a.words))
	out = append(out, marshalMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(a.size))
	out = append(out, a.width)
	for _, w := range a.words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out, nil
}

// UnmarshalBinary restores an array serialized by MarshalBinary.
func (a *Array) UnmarshalBinary(data []byte) error {
	if len(data) < 13 || string(data[:4]) != marshalMagic {
		return errors.New("regarray: bad header")
	}
	size := int(binary.LittleEndian.Uint64(data[4:]))
	width := data[12]
	if size <= 0 || width < 1 || width > 8 {
		return errors.New("regarray: bad size/width")
	}
	nwords := (size*int(width) + 63) / 64
	if len(data) != 13+8*nwords {
		return fmt.Errorf("regarray: want %d payload bytes, have %d", 8*nwords, len(data)-13)
	}
	words := make([]uint64, nwords)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[13+8*i:])
	}
	maxVal := uint8(1<<width - 1)
	a.words = words
	a.size = size
	a.width = width
	a.maxVal = maxVal
	a.exact = maxVal < 64 && uint64(size) <= math.MaxUint64>>uint(maxVal)
	a.shared = false // freshly allocated words; no snapshot aliases them
	_ = a.Audit()    // recompute maintained statistics
	return nil
}
