package regarray

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

func TestNewAllZero(t *testing.T) {
	for _, w := range []uint8{1, 4, 5, 6, 8} {
		a := New(100, w)
		if a.Size() != 100 || a.Width() != w || a.MaxValue() != 1<<w-1 {
			t.Fatalf("w=%d: bad metadata", w)
		}
		if a.ZeroCount() != 100 {
			t.Fatalf("w=%d: fresh zeros = %d", w, a.ZeroCount())
		}
		for i := 0; i < 100; i++ {
			if a.Get(i) != 0 {
				t.Fatalf("w=%d: register %d nonzero", w, i)
			}
		}
		if got := a.HarmonicSum(); math.Abs(got-100) > 1e-12 {
			t.Fatalf("w=%d: fresh harmonic sum = %v, want 100", w, got)
		}
		if got := a.ChangeProbability(); math.Abs(got-1) > 1e-12 {
			t.Fatalf("w=%d: fresh q = %v, want 1", w, got)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 5) },
		func() { New(-1, 5) },
		func() { New(10, 0) },
		func() { New(10, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestExactModeSelection(t *testing.T) {
	if !New(1<<20, 5).Exact() {
		t.Fatal("w=5 M=1M should be exact")
	}
	if New(2, 6).Exact() {
		t.Fatal("w=6 cannot be exact (2*2^63 overflows)")
	}
	if !New(1, 6).Exact() {
		t.Fatal("w=6 M=1 fits exactly")
	}
	if New(10, 8).Exact() {
		t.Fatal("w=8 cannot be exact")
	}
}

func TestSetGetAllWidths(t *testing.T) {
	// Every register must store and return every representable value, at
	// positions that straddle word boundaries.
	for _, w := range []uint8{1, 3, 5, 6, 7, 8} {
		a := New(300, w)
		maxv := int(a.MaxValue())
		for i := 0; i < 300; i++ {
			v := uint8((i*7 + 1) % (maxv + 1))
			a.set(i, v)
			if got := a.Get(i); got != v {
				t.Fatalf("w=%d reg=%d: set %d got %d", w, i, v, got)
			}
		}
		// Verify neighbours were not disturbed by the last writes.
		for i := 0; i < 300; i++ {
			v := uint8((i*7 + 1) % (maxv + 1))
			if got := a.Get(i); got != v {
				t.Fatalf("w=%d reg=%d: neighbour disturbed, want %d got %d", w, i, v, got)
			}
		}
	}
}

func TestUpdateMaxSemantics(t *testing.T) {
	a := New(10, 5)
	old, changed := a.UpdateMax(3, 7)
	if old != 0 || !changed {
		t.Fatalf("first update: old=%d changed=%v", old, changed)
	}
	old, changed = a.UpdateMax(3, 7)
	if old != 7 || changed {
		t.Fatalf("equal update must not change: old=%d changed=%v", old, changed)
	}
	old, changed = a.UpdateMax(3, 4)
	if old != 7 || changed {
		t.Fatalf("smaller update must not change: old=%d changed=%v", old, changed)
	}
	old, changed = a.UpdateMax(3, 9)
	if old != 7 || !changed {
		t.Fatalf("larger update must change: old=%d changed=%v", old, changed)
	}
	if a.Get(3) != 9 {
		t.Fatalf("register = %d, want 9", a.Get(3))
	}
}

func TestUpdateMaxClamps(t *testing.T) {
	a := New(4, 5)
	a.UpdateMax(0, 200)
	if a.Get(0) != 31 {
		t.Fatalf("clamp failed: %d", a.Get(0))
	}
	if err := a.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCountMaintained(t *testing.T) {
	a := New(64, 5)
	a.UpdateMax(0, 1)
	a.UpdateMax(0, 2) // same register: zeros decremented once
	a.UpdateMax(1, 3)
	if a.ZeroCount() != 62 {
		t.Fatalf("zeros = %d, want 62", a.ZeroCount())
	}
}

func TestScaledHarmonicSumMaintained(t *testing.T) {
	a := New(8, 5)
	// Fresh: 8 * 2^31.
	if a.ScaledHarmonicSum() != 8<<31 {
		t.Fatalf("fresh scaled = %d", a.ScaledHarmonicSum())
	}
	a.UpdateMax(2, 1)
	want := uint64(7)<<31 + 1<<30
	if a.ScaledHarmonicSum() != want {
		t.Fatalf("scaled = %d, want %d", a.ScaledHarmonicSum(), want)
	}
	a.UpdateMax(2, 31)
	want = uint64(7)<<31 + 1
	if a.ScaledHarmonicSum() != want {
		t.Fatalf("scaled = %d, want %d", a.ScaledHarmonicSum(), want)
	}
}

func TestHarmonicSumMatchesDefinition(t *testing.T) {
	for _, w := range []uint8{5, 6} {
		a := New(50, w)
		rng := hashing.NewRNG(uint64(w))
		for i := 0; i < 500; i++ {
			a.UpdateMax(rng.Intn(50), uint8(rng.Intn(int(a.MaxValue())+1)))
		}
		want := 0.0
		for i := 0; i < 50; i++ {
			want += math.Exp2(-float64(a.Get(i)))
		}
		if got := a.HarmonicSum(); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("w=%d: harmonic sum %v, want %v", w, got, want)
		}
	}
}

func TestIncrementalEqualsRecomputedQuick(t *testing.T) {
	// The central exactness property: after any sequence of UpdateMax, the
	// maintained zero count and scaled sum equal full recomputation exactly.
	f := func(seed uint64, nOps uint16) bool {
		a := New(101, 5)
		rng := hashing.NewRNG(seed)
		for i := 0; i < int(nOps%3000); i++ {
			a.UpdateMax(rng.Intn(101), uint8(rng.Intn(40))) // includes clamped values
		}
		return a.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChangeProbabilityDecreases(t *testing.T) {
	// q_R is non-increasing as registers grow — the dynamic property FreeRS
	// exploits.
	a := New(64, 5)
	rng := hashing.NewRNG(3)
	prev := a.ChangeProbability()
	if prev != 1 {
		t.Fatalf("initial q = %v", prev)
	}
	for i := 0; i < 2000; i++ {
		a.UpdateMax(rng.Intn(64), hashing.Rho(rng.Uint64(), 31))
		q := a.ChangeProbability()
		if q > prev+1e-15 {
			t.Fatalf("q increased from %v to %v", prev, q)
		}
		prev = q
	}
}

func TestReset(t *testing.T) {
	a := New(32, 5)
	for i := 0; i < 32; i++ {
		a.UpdateMax(i, uint8(i%31+1))
	}
	a.Reset()
	if a.ZeroCount() != 32 || a.HarmonicSum() != 32 {
		t.Fatalf("reset: zeros=%d hs=%v", a.ZeroCount(), a.HarmonicSum())
	}
	if err := a.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	a := New(16, 5)
	a.UpdateMax(3, 9)
	c := a.Clone()
	c.UpdateMax(4, 2)
	if a.Get(4) != 0 {
		t.Fatal("clone mutation leaked")
	}
	if c.Get(3) != 9 {
		t.Fatal("clone lost value")
	}
	if err := a.Audit(); err != nil {
		t.Fatal(err)
	}
	if err := c.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(8, 5), New(8, 5)
	a.UpdateMax(0, 5)
	a.UpdateMax(1, 2)
	b.UpdateMax(1, 7)
	b.UpdateMax(2, 3)
	if err := a.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	want := []uint8{5, 7, 3, 0, 0, 0, 0, 0}
	for i, w := range want {
		if a.Get(i) != w {
			t.Fatalf("union reg %d = %d, want %d", i, a.Get(i), w)
		}
	}
	if err := a.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestUnionMismatch(t *testing.T) {
	a := New(8, 5)
	if err := a.UnionWith(New(8, 6)); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if err := a.UnionWith(New(9, 5)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := a.UnionWith(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestUnionIsMaxQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewRNG(seed)
		a, b := New(37, 5), New(37, 5)
		ref := make([]uint8, 37)
		for i := 0; i < 200; i++ {
			ia, va := rng.Intn(37), uint8(rng.Intn(32))
			ib, vb := rng.Intn(37), uint8(rng.Intn(32))
			a.UpdateMax(ia, va)
			b.UpdateMax(ib, vb)
			if va > ref[ia] {
				ref[ia] = va
			}
			if vb > ref[ib] {
				ref[ib] = vb
			}
		}
		if err := a.UnionWith(b); err != nil {
			return false
		}
		for i, w := range ref {
			if a.Get(i) != w {
				return false
			}
		}
		return a.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, w := range []uint8{1, 5, 6, 8} {
		for _, size := range []int{1, 12, 64, 100} {
			a := New(size, w)
			rng := hashing.NewRNG(uint64(size) + uint64(w)<<32)
			for i := 0; i < size*3; i++ {
				a.UpdateMax(rng.Intn(size), uint8(rng.Intn(int(a.MaxValue())+1)))
			}
			data, err := a.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var c Array
			if err := c.UnmarshalBinary(data); err != nil {
				t.Fatalf("w=%d size=%d: %v", w, size, err)
			}
			if c.Size() != a.Size() || c.Width() != a.Width() || c.ZeroCount() != a.ZeroCount() {
				t.Fatalf("w=%d size=%d: metadata mismatch", w, size)
			}
			for i := 0; i < size; i++ {
				if a.Get(i) != c.Get(i) {
					t.Fatalf("w=%d size=%d reg=%d differs", w, size, i)
				}
			}
			if math.Abs(a.HarmonicSum()-c.HarmonicSum()) > 1e-12 {
				t.Fatalf("w=%d size=%d: harmonic sum differs", w, size)
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var a Array
	cases := [][]byte{
		nil,
		[]byte("RAR"),
		[]byte("XXXX123456789"),
		append([]byte("RARR"), make([]byte, 9)...),                // size 0
		append([]byte("RARR"), 4, 0, 0, 0, 0, 0, 0, 0, 9),         // width 9
		append([]byte("RARR"), 200, 0, 0, 0, 0, 0, 0, 0, 5, 1, 2), // short payload
	}
	for i, c := range cases {
		if err := a.UnmarshalBinary(c); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestScaledPanicsWhenInexact(t *testing.T) {
	a := New(10, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("ScaledHarmonicSum on inexact array must panic")
		}
	}()
	_ = a.ScaledHarmonicSum()
}

func TestAuditRepairs(t *testing.T) {
	a := New(16, 5)
	a.UpdateMax(0, 3)
	a.zeros = 16 // corrupt
	if err := a.Audit(); err == nil {
		t.Fatal("audit must detect corruption")
	}
	if a.ZeroCount() != 15 {
		t.Fatalf("repair failed: zeros=%d", a.ZeroCount())
	}
	if err := a.Audit(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdateMax(b *testing.B) {
	a := New(1<<20, 5)
	rng := hashing.NewRNG(1)
	idx := make([]int, 4096)
	val := make([]uint8, 4096)
	for i := range idx {
		idx[i] = rng.Intn(1 << 20)
		val[i] = hashing.Rho(rng.Uint64(), 31)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.UpdateMax(idx[i&4095], val[i&4095])
	}
}

func BenchmarkGet(b *testing.B) {
	a := New(1<<20, 5)
	b.ResetTimer()
	var acc uint8
	for i := 0; i < b.N; i++ {
		acc += a.Get(i & (1<<20 - 1))
	}
	_ = acc
}
