package regarray

import "testing"

// TestSnapshotIsolation: a snapshot is a frozen logical copy — register
// updates on the parent after the snapshot never show through it, and the
// maintained statistics (zeros, exact harmonic sum) stay frozen with it.
func TestSnapshotIsolation(t *testing.T) {
	a := New(103, 5) // odd size exercises registers straddling word borders
	a.UpdateMax(0, 7)
	a.UpdateMax(50, 3)
	a.UpdateMax(102, 31)
	snap := a.Snapshot()
	wantZeros := a.ZeroCount()
	wantScaled := a.ScaledHarmonicSum()

	a.UpdateMax(1, 9)
	a.UpdateMax(50, 12) // grow an existing register
	if snap.Get(1) != 0 || snap.Get(50) != 3 {
		t.Fatalf("parent mutation leaked into snapshot: R[1]=%d R[50]=%d", snap.Get(1), snap.Get(50))
	}
	if snap.ZeroCount() != wantZeros || snap.ScaledHarmonicSum() != wantScaled {
		t.Fatal("snapshot statistics drifted")
	}
	if err := snap.Audit(); err != nil {
		t.Fatalf("snapshot audit: %v", err)
	}
	if err := a.Audit(); err != nil {
		t.Fatalf("parent audit: %v", err)
	}

	// Snapshot mutations must not leak back into the parent.
	snap2 := a.Snapshot()
	snap2.UpdateMax(2, 4)
	if a.Get(2) != 0 {
		t.Fatal("snapshot mutation leaked into parent")
	}
}

// TestSnapshotReset: Reset on a shared array must leave snapshots intact.
func TestSnapshotReset(t *testing.T) {
	a := New(64, 5)
	a.UpdateMax(7, 13)
	snap := a.Snapshot()
	a.Reset()
	if snap.Get(7) != 13 {
		t.Fatal("Reset destroyed the snapshot")
	}
	if a.Get(7) != 0 || a.ZeroCount() != 64 {
		t.Fatal("Reset did not clear the parent")
	}
	if err := snap.Audit(); err != nil {
		t.Fatalf("snapshot audit after parent reset: %v", err)
	}
}

// TestSnapshotO1: taking a snapshot must not copy the packed words.
func TestSnapshotO1(t *testing.T) {
	for _, size := range []int{1 << 10, 1 << 18} {
		a := New(size, 5)
		a.UpdateMax(3, 3)
		allocs := testing.AllocsPerRun(100, func() {
			sink = a.Snapshot()
		})
		if allocs > 1 {
			t.Fatalf("Snapshot of %d registers allocates %v objects, want <= 1", size, allocs)
		}
	}
}

// TestDetachOncePerSnapshot: after the first post-snapshot write detaches,
// further writes are in-place.
func TestDetachOncePerSnapshot(t *testing.T) {
	a := New(1<<12, 5)
	_ = a.Snapshot()
	a.UpdateMax(0, 1) // detaches
	v := uint8(2)
	allocs := testing.AllocsPerRun(50, func() {
		a.UpdateMax(0, v)
		v++
	})
	if allocs != 0 {
		t.Fatalf("writes on a detached array allocate (%v allocs/run)", allocs)
	}
}

var sink any
