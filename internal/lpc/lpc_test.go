package lpc

import (
	"math"
	"testing"

	"repro/internal/hashing"
)

func TestEmptyEstimate(t *testing.T) {
	s := New(1024, 1)
	if got := s.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %v", got)
	}
	if s.ZeroCount() != 1024 {
		t.Fatalf("zeros = %d", s.ZeroCount())
	}
}

func TestDuplicatesDoNotGrow(t *testing.T) {
	s := New(256, 1)
	if !s.Add(42) {
		t.Fatal("first add must flip a bit")
	}
	before := s.Estimate()
	for i := 0; i < 100; i++ {
		if s.Add(42) {
			t.Fatal("duplicate flipped a bit")
		}
	}
	if s.Estimate() != before {
		t.Fatal("duplicates changed the estimate")
	}
}

func TestAccuracyMidRange(t *testing.T) {
	// With m=4096 and n=2000 (n/m ~ 0.5), LPC's RSE is ~sqrt(e^x - x - 1)/x
	// per the paper's variance formula — about 1.5%. Require within 6 sigma.
	const m = 4096
	const n = 2000
	s := New(m, 7)
	for i := 0; i < n; i++ {
		s.Add(uint64(i))
	}
	got := s.Estimate()
	sigma := math.Sqrt(Variance(n, m))
	if math.Abs(got-n) > 6*sigma {
		t.Fatalf("estimate %v for n=%d (sigma %.1f)", got, n, sigma)
	}
}

func TestAccuracyAcrossScales(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		s := New(4096, uint64(n))
		for i := 0; i < n; i++ {
			s.Add(uint64(i) * 1000003)
		}
		got := s.Estimate()
		sigma := math.Sqrt(Variance(float64(n), 4096))
		if math.Abs(got-float64(n)) > 6*sigma+1 {
			t.Fatalf("n=%d: estimate %v (sigma %.2f)", n, got, sigma)
		}
	}
}

func TestSaturationReturnsRangeMax(t *testing.T) {
	const m = 64
	s := New(m, 3)
	// Far more distinct items than bits: all bits eventually set.
	for i := 0; i < 100000; i++ {
		s.Add(uint64(i))
	}
	if s.ZeroCount() != 0 {
		t.Fatalf("expected saturation, %d zeros left", s.ZeroCount())
	}
	want := float64(m) * math.Log(m)
	if got := s.Estimate(); got != want {
		t.Fatalf("saturated estimate = %v, want range max %v", got, want)
	}
	if got := s.MaxEstimate(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxEstimate = %v, want %v", got, want)
	}
}

func TestEstimateScanAgreesWithEstimate(t *testing.T) {
	s := New(512, 9)
	for i := 0; i < 300; i++ {
		s.Add(uint64(i * 7))
	}
	if a, b := s.Estimate(), s.EstimateScan(); a != b {
		t.Fatalf("Estimate %v != EstimateScan %v", a, b)
	}
}

func TestUnbiasedInExpectation(t *testing.T) {
	// Mean over many independent sketches should be within the paper's bias
	// formula plus sampling noise.
	const m, n, trials = 512, 300, 200
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		s := New(m, uint64(tr)*977+1)
		for i := 0; i < n; i++ {
			s.Add(uint64(i))
		}
		sum += s.Estimate()
	}
	mean := sum / trials
	wantBias := Bias(n, m)
	se := math.Sqrt(Variance(n, m) / trials)
	if math.Abs(mean-(n+wantBias)) > 5*se {
		t.Fatalf("mean %v, want %v ± %v", mean, n+wantBias, 5*se)
	}
}

func TestVarianceMatchesEmpirical(t *testing.T) {
	const m, n, trials = 1024, 800, 300
	var sum, sumsq float64
	for tr := 0; tr < trials; tr++ {
		s := New(m, uint64(tr)*31+5)
		for i := 0; i < n; i++ {
			s.Add(uint64(i))
		}
		e := s.Estimate()
		sum += e
		sumsq += e * e
	}
	mean := sum / trials
	empVar := sumsq/trials - mean*mean
	anaVar := Variance(n, m)
	if empVar < anaVar/3 || empVar > anaVar*3 {
		t.Fatalf("empirical variance %v vs analytical %v", empVar, anaVar)
	}
}

func TestMerge(t *testing.T) {
	a := New(256, 5)
	b := New(256, 5)
	for i := 0; i < 100; i++ {
		a.Add(uint64(i))
	}
	for i := 50; i < 150; i++ {
		b.Add(uint64(i))
	}
	union := New(256, 5)
	for i := 0; i < 150; i++ {
		union.Add(uint64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != union.Estimate() {
		t.Fatalf("merged estimate %v != union-built estimate %v", a.Estimate(), union.Estimate())
	}
}

func TestMergeSeedMismatch(t *testing.T) {
	a := New(256, 1)
	if err := a.Merge(New(256, 2)); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if err := a.Merge(New(128, 1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestBiasVarianceFormulas(t *testing.T) {
	// At n/m -> 0 both bias and variance must vanish; both grow with n.
	if b := Bias(0, 100); math.Abs(b) > 1e-12 {
		t.Fatalf("Bias(0) = %v", b)
	}
	if v := Variance(0, 100); math.Abs(v) > 1e-12 {
		t.Fatalf("Variance(0) = %v", v)
	}
	if Bias(200, 100) <= Bias(100, 100) {
		t.Fatal("bias must grow with n")
	}
	if Variance(200, 100) <= Variance(100, 100) {
		t.Fatal("variance must grow with n")
	}
}

func TestPerUserIndependence(t *testing.T) {
	p := NewPerUser(256, 1)
	for i := 0; i < 100; i++ {
		p.Observe(1, uint64(i))
	}
	p.Observe(2, 0)
	e1, e2 := p.Estimate(1), p.Estimate(2)
	if e1 < 50 || e1 > 200 {
		t.Fatalf("user 1 estimate %v", e1)
	}
	if e2 < 0.5 || e2 > 3 {
		t.Fatalf("user 2 estimate %v (should be ~1)", e2)
	}
	if p.Estimate(3) != 0 {
		t.Fatal("unseen user must estimate 0")
	}
}

func TestPerUserAccounting(t *testing.T) {
	p := NewPerUser(64, 2)
	p.Observe(1, 1)
	p.Observe(2, 1)
	p.Observe(2, 2)
	if p.NumUsers() != 2 {
		t.Fatalf("users = %d", p.NumUsers())
	}
	if p.MemoryBits() != 128 {
		t.Fatalf("memory = %d bits", p.MemoryBits())
	}
	if p.BitsPerUser() != 64 {
		t.Fatalf("m = %d", p.BitsPerUser())
	}
	seen := map[uint64]bool{}
	p.Users(func(u uint64) { seen[u] = true })
	if !seen[1] || !seen[2] || len(seen) != 2 {
		t.Fatalf("Users iterated %v", seen)
	}
}

func TestPerUserScanMatches(t *testing.T) {
	p := NewPerUser(128, 3)
	for i := 0; i < 50; i++ {
		p.Observe(9, uint64(i))
	}
	if p.Estimate(9) != p.EstimateScan(9) {
		t.Fatal("scan estimate differs")
	}
	if p.EstimateScan(1234) != 0 {
		t.Fatal("unseen user scan must be 0")
	}
}

func TestPerUserPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPerUser(0, 1)
}

func TestDifferentUsersDifferentBits(t *testing.T) {
	// The per-user seed derivation must decorrelate users: the same item
	// stream should produce different bit patterns for different users.
	p := NewPerUser(1024, 11)
	for i := 0; i < 400; i++ {
		p.Observe(1, uint64(i))
		p.Observe(2, uint64(i))
	}
	a := p.sketches[1]
	b := p.sketches[2]
	diff := 0
	for i := 0; i < 1024; i++ {
		if a.bits.Get(i) != b.bits.Get(i) {
			diff++
		}
	}
	if diff < 100 {
		t.Fatalf("only %d bits differ between users with identical items", diff)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(1024, 1)
	rng := hashing.NewRNG(1)
	items := make([]uint64, 4096)
	for i := range items {
		items[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(items[i&4095])
	}
}

func BenchmarkEstimateScan(b *testing.B) {
	s := New(1024, 1)
	for i := 0; i < 500; i++ {
		s.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EstimateScan()
	}
}
