// Package lpc implements Linear-Time Probabilistic Counting (Whang,
// Vander-Zanden & Taylor, TODS 1990), the per-user bitmap baseline of §III-A1
// of the paper, together with the closed-form bias and variance the paper
// quotes and a per-user tracker that allocates one sketch per observed user
// (the "LPC" baseline configuration of §V-B: M/|S| bits per user).
package lpc

import (
	"errors"
	"math"

	"repro/internal/bitarray"
	"repro/internal/hashing"
	"repro/internal/stream"
)

// Sketch is a single LPC sketch: m bits and an item hash.
type Sketch struct {
	bits *bitarray.BitArray
	seed uint64
}

// New returns an LPC sketch with m bits. It panics if m <= 0.
func New(m int, seed uint64) *Sketch {
	return &Sketch{bits: bitarray.New(m), seed: seed}
}

// M returns the number of bits.
func (s *Sketch) M() int { return s.bits.Size() }

// Add records an item and reports whether a bit flipped (the item hashed to a
// previously zero bit).
func (s *Sketch) Add(item uint64) bool {
	h := hashing.HashU64(item, s.seed)
	return s.bits.Set(hashing.UniformIndex(h, s.bits.Size()))
}

// ZeroCount returns U, the number of zero bits (maintained, O(1)).
func (s *Sketch) ZeroCount() int { return s.bits.ZeroCount() }

// Estimate returns the LPC estimate -m·ln(U/m). When the sketch saturates
// (U = 0) it returns the estimation-range maximum m·ln m, the value the
// paper identifies as LPC's range limit.
//
// This implementation maintains the zero count incrementally, so Estimate is
// O(1); the original (and the paper's cost model, Fig. 3) enumerates the m
// bits — use EstimateScan for that cost profile.
func (s *Sketch) Estimate() float64 {
	return estimateFromZeros(s.bits.ZeroCount(), s.bits.Size())
}

// EstimateScan recomputes the zero count by scanning all m bits and then
// estimates. It exists so the runtime experiment can reproduce the paper's
// O(m) per-query cost model for LPC.
func (s *Sketch) EstimateScan() float64 {
	zeros := 0
	for i := 0; i < s.bits.Size(); i++ {
		if !s.bits.Get(i) {
			zeros++
		}
	}
	return estimateFromZeros(zeros, s.bits.Size())
}

func estimateFromZeros(zeros, m int) float64 {
	if zeros <= 0 {
		return float64(m) * math.Log(float64(m))
	}
	return -float64(m) * math.Log(float64(zeros)/float64(m))
}

// MaxEstimate returns the estimation-range limit m·ln m (§III-A1).
func (s *Sketch) MaxEstimate() float64 {
	m := float64(s.bits.Size())
	return m * math.Log(m)
}

// Merge unions another sketch into s (item-set union). Both sketches must
// have identical m and seed, otherwise their bit positions are incompatible.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.seed != s.seed {
		return errors.New("lpc: merge requires identical seeds")
	}
	return s.bits.UnionWith(other.bits)
}

// Bias returns the analytical bias of the LPC estimator for true cardinality
// n with m bits: E(n̂) - n ≈ (e^{n/m} - n/m - 1)/2 (§III-A1).
func Bias(n float64, m int) float64 {
	x := n / float64(m)
	return (math.Exp(x) - x - 1) / 2
}

// Variance returns the analytical variance of the LPC estimator:
// Var(n̂) ≈ m(e^{n/m} - n/m - 1) (§III-A1).
func Variance(n float64, m int) float64 {
	x := n / float64(m)
	return float64(m) * (math.Exp(x) - x - 1)
}

// PerUser assigns an independent m-bit LPC sketch to every observed user —
// the paper's "LPC" baseline. Sketches are allocated lazily on a user's
// first arrival.
type PerUser struct {
	m        int
	seed     uint64
	sketches map[uint64]*Sketch
}

// NewPerUser returns a tracker giving each user m bits.
func NewPerUser(m int, seed uint64) *PerUser {
	if m <= 0 {
		panic("lpc: bits per user must be positive")
	}
	return &PerUser{m: m, seed: seed, sketches: make(map[uint64]*Sketch)}
}

// BitsPerUser returns m.
func (p *PerUser) BitsPerUser() int { return p.m }

// Observe records edge (user, item).
func (p *PerUser) Observe(user, item uint64) {
	sk := p.sketches[user]
	if sk == nil {
		// Derive a per-user seed so identical items land on independent bits
		// for different users, like the paper's independent per-user hashes.
		sk = New(p.m, hashing.HashU64(user, p.seed))
		p.sketches[user] = sk
	}
	sk.Add(item)
}

// ObserveBatch records a slice of edges, equivalent to calling Observe on
// each in order. The user's sketch is looked up (and, on first arrival,
// allocated) once per run of consecutive same-user edges instead of per edge.
func (p *PerUser) ObserveBatch(edges []stream.Edge) {
	stream.ForEachRun(edges, func(user uint64, run []stream.Edge) {
		sk := p.sketches[user]
		if sk == nil {
			sk = New(p.m, hashing.HashU64(user, p.seed))
			p.sketches[user] = sk
		}
		for _, e := range run {
			sk.Add(e.Item)
		}
	})
}

// Estimate returns the cardinality estimate for user (0 if never seen).
func (p *PerUser) Estimate(user uint64) float64 {
	if sk := p.sketches[user]; sk != nil {
		return sk.Estimate()
	}
	return 0
}

// EstimateScan is Estimate with the paper's O(m) enumeration cost.
func (p *PerUser) EstimateScan(user uint64) float64 {
	if sk := p.sketches[user]; sk != nil {
		return sk.EstimateScan()
	}
	return 0
}

// NumUsers returns the number of users with allocated sketches.
func (p *PerUser) NumUsers() int { return len(p.sketches) }

// MemoryBits returns the total sketch memory in bits (excluding per-user
// map overhead, matching the paper's accounting).
func (p *PerUser) MemoryBits() int64 { return int64(len(p.sketches)) * int64(p.m) }

// Users calls fn for every user with a sketch.
func (p *PerUser) Users(fn func(user uint64)) {
	for u := range p.sketches {
		fn(u)
	}
}
