// Package atomicfile writes files that are either fully there or not there
// at all. Checkpoint persistence is the motivating user: a monitor that
// crashes mid-write must find either the previous complete checkpoint or
// the new complete checkpoint at the spool path on restart — never a torn
// prefix, which would fail to restore and throw away the state the spool
// exists to protect.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically: the bytes land in a temporary
// file in path's directory, are fsynced, and only then replace path with a
// rename — the POSIX guarantee that readers (and a post-crash restart) see
// either the old complete file or the new complete file. The directory is
// fsynced afterwards so the rename itself survives a power loss. perm
// applies to newly created files; an existing file at path keeps its mode
// until replaced. On any error the temporary file is removed and path is
// untouched.
func WriteFile(path string, data []byte, perm os.FileMode) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if _, err = tmp.Write(data); err != nil {
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: closing %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	// Sync the directory so the rename is on disk too. Best-effort beyond
	// opening: some filesystems refuse to fsync directories, and the data
	// itself is already durable.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
