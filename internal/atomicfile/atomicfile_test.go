package atomicfile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("one")) {
		t.Fatalf("read back %q", got)
	}
	// Replace: the new content fully displaces the old, even when shorter.
	if err := WriteFile(path, []byte("2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); !bytes.Equal(got, []byte("2")) {
		t.Fatalf("after replace: %q", got)
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := WriteFile(path, []byte("data"), 0o600); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("want exactly the target file, have %d entries", len(entries))
	}
}

func TestWriteFileMissingDirFailsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope", "ckpt.bin")
	if err := WriteFile(path, []byte("data"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target exists after failed write: %v", err)
	}
}

func TestWriteFileSetsMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := WriteFile(path, []byte("data"), 0o600); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Fatalf("mode %v, want 0600", perm)
	}
}
