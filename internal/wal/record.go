package wal

// The WAL record format ("CWL1") reuses the CWB1 framing discipline: a
// magic tag, a uvarint header, a fixed-width u64 LE pair payload, and a
// CRC-32 (IEEE) trailer in big-endian — the same codec the ingest wire and
// the spool envelopes speak, so one set of tooling reads all three.
//
//	offset  size  field
//	0       4     magic "CWL1"
//	4       1     type: 'B' (ingest batch) or 'R' (epoch rotation)
//	5       ...   seq, uvarint (monotonic, +1 per record across segments)
//	        ...   payload:
//	                'B': edge count n uvarint, then n pairs
//	                     (user uint64 LE, item uint64 LE — stream.PairBytes each)
//	                'R': closing epoch uvarint, edges appended this epoch uvarint
//	end-4   4     CRC-32 (IEEE) over all preceding record bytes, big-endian
//
// Records are written back-to-back in a segment with no outer framing: the
// header is self-delimiting and the CRC rejects torn or corrupted tails.
// The encoding is canonical — uvarints are minimal — so DecodeRecord
// followed by AppendRecord reproduces the consumed bytes exactly, which is
// what FuzzWALRecord pins.
//
// The rotation record exists because replay must reproduce generation
// boundaries exactly, not just the edge multiset: a Windowed sketch's state
// depends on WHERE the epoch cuts fell in the stream. The record carries
// the closing epoch and that epoch's appended-edge count so replay can
// cross-check its position before rotating — a mismatch means the log and
// the checkpoint disagree about history and must be a loud error.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/stream"
)

const (
	recordMagic      = "CWL1"
	recordTrailerLen = 4 // CRC-32

	// TypeBatch marks a record carrying one accepted ingest batch.
	TypeBatch = byte('B')
	// TypeRotation marks an epoch-rotation cut.
	TypeRotation = byte('R')
)

// ErrInvalidRecord is wrapped by every DecodeRecord failure: short data
// (a torn tail), bad magic, unknown type, a non-minimal uvarint, or a CRC
// mismatch. Segment scans treat any of these at the tail as the end of the
// durable log.
var ErrInvalidRecord = errors.New("wal: invalid record")

// Record is one WAL entry. Batch records carry Edges; rotation records
// carry Epoch (the epoch being closed) and EpochEdges (edges logged while
// it was current). Seq is the global position, continuous across segments.
type Record struct {
	Seq        uint64
	Type       byte
	Edges      []stream.Edge // TypeBatch
	Epoch      uint64        // TypeRotation: the epoch this rotation closes
	EpochEdges uint64        // TypeRotation: edges appended during that epoch
}

// AppendRecord appends the canonical encoding of rec to dst and returns
// the extended slice (append-style, so the WAL reuses one buffer across
// appends).
func AppendRecord(dst []byte, rec Record) []byte {
	start := len(dst)
	dst = append(dst, recordMagic...)
	dst = append(dst, rec.Type)
	dst = binary.AppendUvarint(dst, rec.Seq)
	switch rec.Type {
	case TypeBatch:
		dst = binary.AppendUvarint(dst, uint64(len(rec.Edges)))
		dst = stream.AppendPairs(dst, rec.Edges)
	case TypeRotation:
		dst = binary.AppendUvarint(dst, rec.Epoch)
		dst = binary.AppendUvarint(dst, rec.EpochEdges)
	default:
		panic(fmt.Sprintf("wal: unknown record type %q", rec.Type))
	}
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// uvarint reads a minimally encoded uvarint from data[pos:]. Non-minimal
// encodings (e.g. 0x80 0x00 for zero) are rejected so that every accepted
// record re-encodes to its exact input bytes — the canonical-form property
// the fuzz target relies on, and cheap insurance against two byte strings
// decoding to the same record.
func uvarint(data []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: truncated uvarint", ErrInvalidRecord)
	}
	if n > 1 && data[pos+n-1] == 0 {
		return 0, 0, fmt.Errorf("%w: non-minimal uvarint", ErrInvalidRecord)
	}
	return v, pos + n, nil
}

// DecodeRecord decodes one record from the front of data, returning the
// record and the number of bytes consumed. Batch edges ALIAS data on
// little-endian hosts (like stream.DecodeWire): callers must consume them
// before reusing the buffer. Any malformed prefix — including a torn tail
// shorter than one whole record — returns an error wrapping
// ErrInvalidRecord and consumes nothing.
func DecodeRecord(data []byte) (Record, int, error) {
	var rec Record
	headLen := len(recordMagic) + 1
	if len(data) < headLen+recordTrailerLen {
		return rec, 0, fmt.Errorf("%w: %d bytes is shorter than any record", ErrInvalidRecord, len(data))
	}
	if string(data[:len(recordMagic)]) != recordMagic {
		return rec, 0, fmt.Errorf("%w: bad magic %q", ErrInvalidRecord, data[:len(recordMagic)])
	}
	rec.Type = data[len(recordMagic)]
	pos := headLen
	var err error
	if rec.Seq, pos, err = uvarint(data, pos); err != nil {
		return Record{}, 0, err
	}
	switch rec.Type {
	case TypeBatch:
		var count uint64
		if count, pos, err = uvarint(data, pos); err != nil {
			return Record{}, 0, err
		}
		// Bound the count by the bytes actually present before doing any
		// arithmetic with it: a corrupt header can claim 2^60 edges.
		if remaining := len(data) - pos - recordTrailerLen; remaining < 0 ||
			count > uint64(remaining)/stream.PairBytes {
			return Record{}, 0, fmt.Errorf("%w: %d edges exceed %d remaining bytes",
				ErrInvalidRecord, count, len(data)-pos)
		}
		if rec.Edges, err = stream.DecodePairs(data[pos:], int(count)); err != nil {
			return Record{}, 0, fmt.Errorf("%w: %v", ErrInvalidRecord, err)
		}
		pos += int(count) * stream.PairBytes
	case TypeRotation:
		if rec.Epoch, pos, err = uvarint(data, pos); err != nil {
			return Record{}, 0, err
		}
		if rec.EpochEdges, pos, err = uvarint(data, pos); err != nil {
			return Record{}, 0, err
		}
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown type %q", ErrInvalidRecord, rec.Type)
	}
	if len(data)-pos < recordTrailerLen {
		return Record{}, 0, fmt.Errorf("%w: torn trailer", ErrInvalidRecord)
	}
	if sum := crc32.ChecksumIEEE(data[:pos]); sum != binary.BigEndian.Uint32(data[pos:]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch at seq %d", ErrInvalidRecord, rec.Seq)
	}
	return rec, pos + recordTrailerLen, nil
}
