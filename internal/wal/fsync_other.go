//go:build !linux

package wal

import "os"

// fdatasync falls back to a full fsync where the data-only syscall is not
// available.
func fdatasync(f *os.File) error { return f.Sync() }

// preallocate is a no-op off Linux; segments grow write by write.
func preallocate(f *os.File, size int64) error { return nil }

// writebackHint is advisory and has no portable equivalent; the policy
// fsyncs simply find more dirty pages to flush.
func writebackHint(f *os.File, off, n int64) {}
