//go:build linux

package wal

import (
	"os"
	"syscall"
)

// fdatasync flushes file data plus only the metadata needed to read it
// back. Segments are preallocated to their full size up front, so the
// group-commit path never extends the file and fdatasync skips the journal
// commit a size-changing fsync would pay — the difference is most of an
// fsync's cost on ext4.
func fdatasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}

// preallocate reserves size bytes for f (extending its length), so that
// appends overwrite reserved extents instead of allocating blocks and
// growing i_size under the group-commit fdatasync. Filesystems without
// fallocate support just fall back to growing writes.
func preallocate(f *os.File, size int64) error {
	err := syscall.Fallocate(int(f.Fd()), 0, 0, size)
	if err == syscall.EOPNOTSUPP || err == syscall.ENOSYS {
		return nil
	}
	return err
}

// writebackHint asks the kernel to start writing back [off, off+n) without
// waiting and without a journal commit. The WAL drops a hint each time the
// active segment crosses a chunk boundary so the pages drain continuously;
// the policy fsync that later makes them durable then orders very little
// data inside its jbd2 commit — and it is that commit, which blocks every
// concurrent append needing a journal handle, that sets the appender-side
// cost of durability on ext4. Purely advisory: errors are ignored because
// a real I/O failure will resurface at the next fsync, which is latched.
func writebackHint(f *os.File, off, n int64) {
	// SYNC_FILE_RANGE_WRITE: submit the dirty pages, do not wait on them.
	_ = syscall.SyncFileRange(int(f.Fd()), off, n, 0x2)
}
