package wal

import (
	"bytes"
	"testing"

	"repro/internal/stream"
)

// FuzzWALRecord pins the two properties segment recovery stands on:
//
//  1. Canonical form: any byte string DecodeRecord accepts re-encodes
//     (AppendRecord) to exactly the consumed bytes — no two encodings
//     decode to the same record, so a replayed log re-serializes
//     byte-identically (what the planned replication stream ships).
//  2. Robust rejection: arbitrary input — torn tails, bit flips, hostile
//     headers claiming 2^60 edges — returns an error without panicking or
//     over-consuming, and decoding resumes cleanly at the next record
//     boundary (the torn-tail truncation path in scanSegment).
func FuzzWALRecord(f *testing.F) {
	seed := func(rec Record) []byte { return AppendRecord(nil, rec) }
	edges := []stream.Edge{{User: 1, Item: 2}, {User: 3, Item: 4}, {User: 1 << 63, Item: ^uint64(0)}}
	f.Add(seed(Record{Seq: 1, Type: TypeBatch, Edges: edges}))
	f.Add(seed(Record{Seq: 0, Type: TypeBatch}))
	f.Add(seed(Record{Seq: 1 << 40, Type: TypeBatch, Edges: edges[:1]}))
	f.Add(seed(Record{Seq: 7, Type: TypeRotation, Epoch: 3, EpochEdges: 123456}))
	f.Add(seed(Record{Seq: ^uint64(0), Type: TypeRotation, Epoch: ^uint64(0), EpochEdges: ^uint64(0)}))
	// Two records back to back, then torn variants of the concatenation.
	both := append(seed(Record{Seq: 5, Type: TypeBatch, Edges: edges}),
		seed(Record{Seq: 6, Type: TypeRotation, Epoch: 1, EpochEdges: 3})...)
	f.Add(both)
	f.Add(both[:len(both)-3])
	f.Add(both[:len(both)/2])
	corrupt := append([]byte(nil), both...)
	corrupt[len(corrupt)/3] ^= 0x40
	f.Add(corrupt)
	// A header claiming vastly more edges than the data holds.
	f.Add([]byte("CWL1B\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	// Non-minimal uvarint seq (0x80 0x00 encodes 0 in two bytes).
	f.Add([]byte("CWL1B\x80\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		for pos < len(data) {
			rec, n, err := DecodeRecord(data[pos:])
			if err != nil {
				// Rejected: nothing consumed, scan stops — the torn-tail
				// contract.
				if n != 0 {
					t.Fatalf("rejected record consumed %d bytes", n)
				}
				return
			}
			if n <= 0 || pos+n > len(data) {
				t.Fatalf("accepted record consumed %d of %d bytes", n, len(data)-pos)
			}
			reenc := AppendRecord(nil, rec)
			if !bytes.Equal(reenc, data[pos:pos+n]) {
				t.Fatalf("accepted record is not canonical:\n in  %x\n out %x", data[pos:pos+n], reenc)
			}
			// And the re-encoding round-trips to an identical record.
			rec2, n2, err := DecodeRecord(reenc)
			if err != nil || n2 != len(reenc) {
				t.Fatalf("re-encoded record failed to decode: %v (consumed %d/%d)", err, n2, len(reenc))
			}
			if rec2.Seq != rec.Seq || rec2.Type != rec.Type ||
				rec2.Epoch != rec.Epoch || rec2.EpochEdges != rec.EpochEdges ||
				len(rec2.Edges) != len(rec.Edges) {
				t.Fatalf("round-trip mismatch: %+v vs %+v", rec, rec2)
			}
			pos += n
		}
	})
}
