package wal

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/stream"
)

// benchAppend measures the appender-side cost of logging one 65536-edge
// batch (1 MiB of record) under a policy — the per-batch price cardserved's
// submit path pays before acking.
func benchAppend(b *testing.B, policy Policy, flush time.Duration) {
	edges := make([]stream.Edge, 65536)
	for i := range edges {
		edges[i] = stream.Edge{User: uint64(i % 500), Item: uint64(i)}
	}
	w, err := Open(Options{Dir: b.TempDir(), Fingerprint: []byte("bench"),
		Policy: policy, FlushInterval: flush})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetBytes(int64(len(edges) * stream.PairBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq, err := w.AppendBatch(edges)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Commit(seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendBatch(b *testing.B) {
	for _, c := range []struct {
		name   string
		policy Policy
		flush  time.Duration
	}{
		{"never", SyncNever, time.Hour},
		{"interval-50ms", SyncInterval, 50 * time.Millisecond},
		{"always", SyncAlways, time.Hour},
	} {
		b.Run(fmt.Sprintf("policy=%s", c.name), func(b *testing.B) {
			benchAppend(b, c.policy, c.flush)
		})
	}
}
