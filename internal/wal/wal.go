// Package wal is the durability layer between spool checkpoints: a
// segmented, CRC-framed write-ahead log of accepted ingest batches and
// epoch rotations, replayed on restart on top of the newest checkpoint so
// a SIGKILLed service resumes in bit-identical lockstep with an
// uninterrupted twin.
//
// The design follows the segmented-WAL shape of time-series storage
// engines crossed with an AOF's fsync policy: records (record.go) are
// appended back-to-back to bounded segment files, each append lands fully
// in the kernel page cache before it returns, and fsync is batched by a
// group-commit policy. The durability ladder, from the server's ack
// contract downward:
//
//   - Process crash (SIGKILL, panic): every acked batch survives under
//     EVERY policy. Each record reaches the kernel page cache before the
//     ack; the page cache outlives the process.
//   - Power loss / kernel crash: bounded by the fsync policy. SyncAlways
//     loses nothing acked; SyncInterval loses at most the last flush
//     interval; SyncNever loses whatever the OS had not written back.
//
// Segments are named wal-<first-seq>.seg; sequence numbers are global and
// continuous across segments, so the file name states exactly which slice
// of history a segment holds and checkpoint truncation (TruncateThrough)
// can delete fully-covered segments by name arithmetic alone. Every open
// creates a fresh active segment and never appends to files from an
// earlier process life: old segments are immutable, which is also what the
// planned replication stream wants to ship.
//
// A torn tail — a partial record at the end of the LAST segment, the
// signature of a crash mid-write — is truncated at the last valid frame
// and is not an error. Corruption anywhere else (an interior segment, a
// mid-file record) IS an error: it means history the caller may have acked
// is gone, and silently skipping it would un-notice data loss.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stream"
)

// Edge aliases the stream edge type the log records carry.
type Edge = stream.Edge

// Policy selects when appends become durable against power loss. Process
// crashes are covered regardless (see the package comment).
type Policy int

const (
	// SyncInterval batches fsyncs: a background group-committer syncs every
	// Options.FlushInterval when there are unsynced bytes. The default.
	SyncInterval Policy = iota
	// SyncAlways fsyncs before an append returns. Group-committed: an
	// append queued behind a completed sync that already covers its record
	// does not pay a second fsync.
	SyncAlways
	// SyncNever issues no per-ack or per-interval fsync; acked-batch
	// power-loss exposure is whatever the OS has not written back. Segment
	// hygiene still holds: the writeback hints (writebackChunk) keep pages
	// draining and the fsync that seals a rolling segment runs under every
	// policy, so an immutable segment is always fully durable.
	SyncNever
)

// ParsePolicy maps the -wal-sync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or never)", s)
}

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

const (
	segMagic  = "CWS1"
	segPrefix = "wal-"
	segSuffix = ".seg"

	// DefaultSegmentBytes bounds one segment file. Rolling at a bounded
	// size keeps truncation granular (checkpoints delete whole segments)
	// and replay memory bounded (segments are read one at a time).
	DefaultSegmentBytes = 64 << 20
	// DefaultFlushInterval is the SyncInterval group-commit cadence.
	DefaultFlushInterval = 50 * time.Millisecond
)

// Metrics are optional observation hooks; nil funcs are skipped. They are
// called with the WAL's internal mutex held, so they must not call back
// into the WAL.
type Metrics struct {
	OnAppend   func(records, bytes int)
	OnFsync    func(seconds float64)
	OnTruncate func(segments int)
}

// Options configure Open.
type Options struct {
	// Dir is the segment directory, created if missing.
	Dir string
	// Fingerprint is an opaque configuration tag written into every
	// segment header and verified on open: replaying a log written by a
	// differently configured service would not fail — it would silently
	// absorb into sketches of the wrong shape — so a mismatch is refused
	// up front, like the spool envelope's fingerprint.
	Fingerprint []byte
	// StartSeq is the newest sequence number already durable elsewhere
	// (the spool checkpoint's WAL position). Appending continues above
	// max(StartSeq, newest on-disk record), so sequence numbers never
	// repeat even after truncation emptied the directory.
	StartSeq uint64
	// SegmentBytes bounds one segment; 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// FlushInterval is the SyncInterval cadence; 0 means
	// DefaultFlushInterval.
	FlushInterval time.Duration
	// Policy is the fsync policy; the zero value is SyncInterval.
	Policy Policy
	// Metrics are optional observation hooks.
	Metrics Metrics
}

// WAL is a segmented write-ahead log. All methods are safe for concurrent
// use. The first write or sync error latches: every later operation
// returns it, so a caller that stops acking on error can never ack a batch
// the log silently dropped.
type WAL struct {
	opts   Options
	header []byte // encoded segment header, reused for every new segment

	// Lock order: syncMu before mu. syncMu serializes fsync and
	// active-file replacement (roll, truncate-roll, close); the group
	// commit takes mu only to snapshot and to publish, so the fsync itself
	// — the slow part — runs with appends still flowing. Holding syncMu
	// across the fsync is what keeps w.f alive under it.
	syncMu sync.Mutex

	mu       sync.Mutex
	f        *os.File // active segment
	segStart uint64   // seq the active segment's first record will carry
	segSize  int64    // bytes written to the active segment, header included
	nextSeq  uint64   // seq the next append will carry
	buf      []byte   // append scratch
	err      error    // sticky failure

	hinted   int64         // offset already handed to writebackHint (see writebackChunk)
	synced   atomic.Uint64 // newest seq known durable via fsync
	unsynced atomic.Int64  // bytes written to the active segment since its last fsync
	segments atomic.Int64  // segment files on disk, active included

	committerWG   sync.WaitGroup
	stopCommitter chan struct{}
}

// Open scans dir, verifies every segment against the fingerprint and the
// global sequence continuity, truncates a torn tail in the last segment at
// the last valid frame, and starts a fresh active segment above everything
// found. Records already on disk are NOT consumed by Open — call Replay.
func Open(opts Options) (*WAL, error) {
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < 1024 {
		return nil, fmt.Errorf("wal: SegmentBytes %d is below the 1 KiB floor", opts.SegmentBytes)
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.FlushInterval < 0 {
		return nil, fmt.Errorf("wal: negative FlushInterval")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{
		opts:          opts,
		header:        appendSegHeader(nil, opts.Fingerprint),
		stopCommitter: make(chan struct{}),
	}

	segs, err := w.listSegments()
	if err != nil {
		return nil, err
	}
	last := opts.StartSeq
	var prevLast uint64
	havePrev := false
	for i, seg := range segs {
		lastSeq, n, err := w.scanSegment(seg, i == len(segs)-1, nil)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			first := lastSeq - uint64(n) + 1
			if first != seg.firstSeq {
				return nil, fmt.Errorf("wal: segment %s starts at seq %d, name claims %d",
					seg.path, first, seg.firstSeq)
			}
			if havePrev && first != prevLast+1 {
				// A hole between segments: records the caller may have acked
				// are gone. (A deleted PREFIX is fine — that is what
				// truncation does — and Replay re-checks against StartSeq.)
				return nil, fmt.Errorf("wal: segment %s starts at seq %d after a gap (previous segment ends at %d)",
					seg.path, first, prevLast)
			}
			prevLast, havePrev = lastSeq, true
			if lastSeq > last {
				last = lastSeq
			}
		} else if i != len(segs)-1 {
			// Only the last segment may be empty (a crash right after a
			// roll); an empty interior segment means files were tampered
			// with or lost.
			return nil, fmt.Errorf("wal: empty interior segment %s", seg.path)
		} else {
			// An empty trailing segment from an earlier life (a crash right
			// after a roll, or a torn header truncated above). This process
			// starts its own fresh active segment — possibly under a
			// different name — so remove the stale one rather than leave a
			// headerless or misnamed file for the next scan to choke on.
			if err := os.Remove(seg.path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			segs = segs[:i]
		}
	}
	w.nextSeq = last + 1
	w.segments.Store(int64(len(segs)))
	if err := w.openActiveLocked(); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		w.committerWG.Add(1)
		go w.committer(w.stopCommitter)
	}
	return w, nil
}

func appendSegHeader(dst, fingerprint []byte) []byte {
	dst = append(dst, segMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(fingerprint)))
	return append(dst, fingerprint...)
}

type segFile struct {
	path     string
	firstSeq uint64
}

// listSegments returns the directory's segments sorted by first sequence
// number. Files merely resembling segments are ignored.
func (w *WAL) listSegments() ([]segFile, error) {
	entries, err := os.ReadDir(w.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segFile{path: filepath.Join(w.opts.Dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

func (w *WAL) segPath(firstSeq uint64) string {
	return filepath.Join(w.opts.Dir, fmt.Sprintf("%s%012d%s", segPrefix, firstSeq, segSuffix))
}

// scanSegment walks one segment's records in order, verifying the header
// fingerprint, per-record CRCs, and seq continuity, calling fn (if
// non-nil) for each record. In the last segment a torn or corrupt tail is
// physically truncated at the last valid frame; anywhere else it is an
// error. Returns the last record's seq and the record count (0, 0 for an
// empty segment).
func (w *WAL) scanSegment(seg segFile, isLast bool, fn func(Record) error) (uint64, int, error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	pos, err := checkSegHeader(data, w.opts.Fingerprint)
	if err != nil {
		if isLast && errors.Is(err, errTornHeader) {
			// Crash while the header itself was in flight: the segment holds
			// no durable records. Truncate to empty rather than refuse.
			return 0, 0, truncateSegment(seg.path, 0)
		}
		return 0, 0, fmt.Errorf("wal: segment %s: %w", seg.path, err)
	}
	var (
		lastSeq uint64
		count   int
	)
	for pos < len(data) {
		rec, n, err := DecodeRecord(data[pos:])
		if err != nil {
			if isLast {
				// The torn tail of a crash mid-append: everything before it
				// is intact, so cut the file there and carry on.
				return lastSeq, count, truncateSegment(seg.path, int64(pos))
			}
			return 0, 0, fmt.Errorf("wal: segment %s offset %d: %w", seg.path, pos, err)
		}
		if count > 0 && rec.Seq != lastSeq+1 {
			return 0, 0, fmt.Errorf("wal: segment %s: seq %d follows %d", seg.path, rec.Seq, lastSeq)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return 0, 0, err
			}
		}
		lastSeq = rec.Seq
		count++
		pos += n
	}
	return lastSeq, count, nil
}

var errTornHeader = errors.New("wal: torn segment header")

// checkSegHeader validates a segment's header and returns the offset of
// its first record.
func checkSegHeader(data, fingerprint []byte) (int, error) {
	if len(data) < len(segMagic)+1 {
		return 0, errTornHeader
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, fmt.Errorf("bad magic %q", data[:len(segMagic)])
	}
	fpLen, n := binary.Uvarint(data[len(segMagic):])
	if n <= 0 || fpLen > uint64(len(data)-len(segMagic)-n) {
		return 0, errTornHeader
	}
	pos := len(segMagic) + n
	fp := data[pos : pos+int(fpLen)]
	if string(fp) != string(fingerprint) {
		return 0, fmt.Errorf("configuration fingerprint mismatch: log was written by a differently configured service (%x vs %x) — match the configuration or move the WAL aside", fp, fingerprint)
	}
	return pos + int(fpLen), nil
}

func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	return f.Sync()
}

// openActiveLocked starts the fresh active segment for this process life
// at w.nextSeq. The file is preallocated to the full segment size so that
// appends overwrite reserved space instead of growing the file — which is
// what lets the group commit use fdatasync without losing data behind an
// uncommitted size (see fsync_linux.go). The header is written and the
// file fully synced once, so the segment exists durably — size included —
// before any record lands in it. Recovery treats the zero-filled
// preallocated tail exactly like a torn tail: truncated in the newest
// segment, impossible elsewhere because rolls seal segments back to their
// data length.
func (w *WAL) openActiveLocked() error {
	path := w.segPath(w.nextSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := preallocate(f, w.opts.SegmentBytes); err != nil {
		f.Close()
		return fmt.Errorf("wal: preallocate: %w", err)
	}
	if _, err := f.Write(w.header); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.segStart = w.nextSeq
	w.segSize = int64(len(w.header))
	w.hinted = 0
	w.unsynced.Store(0)
	w.segments.Add(1)
	return syncDir(w.opts.Dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best effort; not all platforms allow dir fsync
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// AppendBatch logs one accepted ingest batch and returns its sequence
// number. The record is fully in the kernel page cache before this
// returns, so an acked batch survives a process kill under every policy.
// Power-loss durability is the follow-up Commit call (SyncAlways) or the
// background committer (SyncInterval) — split out so a caller that must
// serialize appends for ordering can release its own lock before the
// fsync, letting concurrent committers group-commit instead of queueing
// whole fsyncs behind one another.
func (w *WAL) AppendBatch(edges []Edge) (uint64, error) {
	return w.append(Record{Type: TypeBatch, Edges: edges})
}

// Commit applies the fsync policy to the record at seq: under SyncAlways
// it blocks until seq is durable (group-committed — a sync that already
// covered seq costs nothing); under SyncInterval and SyncNever it returns
// immediately. Call it after append, outside any caller-side ordering
// lock.
func (w *WAL) Commit(seq uint64) error {
	if w.opts.Policy != SyncAlways {
		return nil
	}
	return w.SyncTo(seq)
}

// AppendRotation logs an epoch cut: epoch is the epoch being closed and
// epochEdges the number of edges logged while it was current — replay's
// cross-check that it is rotating at exactly the same point in the stream.
func (w *WAL) AppendRotation(epoch uint64, epochEdges uint64) (uint64, error) {
	return w.append(Record{Type: TypeRotation, Epoch: epoch, EpochEdges: epochEdges})
}

// writebackChunk paces the advisory writeback hints: each time the active
// segment crosses a chunk boundary, the completed chunk is handed to the
// kernel to start draining (writebackHint). The hint excludes the partial
// tail the next append will extend, carries no durability, and involves no
// journal commit — it exists so the policy fsync (and the fsync that seals
// a rolling segment) finds the pages already in flight and its jbd2
// commit, which stalls every concurrent append, stays short.
const writebackChunk = 1 << 20

func (w *WAL) append(rec Record) (uint64, error) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	rec.Seq = w.nextSeq
	w.buf = AppendRecord(w.buf[:0], rec)
	if _, err := w.f.Write(w.buf); err != nil {
		// A short write may have left a torn record on disk; the latch
		// stops all further appends, and the next open truncates the tear.
		w.err = fmt.Errorf("wal: append: %w", err)
		w.mu.Unlock()
		return 0, w.err
	}
	n := len(w.buf)
	w.nextSeq++
	w.segSize += int64(n)
	w.unsynced.Add(int64(n))
	if m := w.opts.Metrics.OnAppend; m != nil {
		m(1, n)
	}
	if w.opts.Policy != SyncAlways { // always keeps the dirty set empty itself
		if boundary := w.segSize / writebackChunk * writebackChunk; boundary > w.hinted {
			writebackHint(w.f, w.hinted, boundary-w.hinted)
			w.hinted = boundary
		}
	}
	needRoll := w.segSize >= w.opts.SegmentBytes
	w.mu.Unlock()
	if needRoll {
		if err := w.roll(); err != nil {
			return 0, err
		}
	}
	return rec.Seq, nil
}

// roll replaces a full active segment outside the append lock (lock order:
// file replacement needs syncMu, which append's mu must not wait on).
// Re-checks under the locks — a concurrent append may have rolled already.
func (w *WAL) roll() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.segSize < w.opts.SegmentBytes {
		return nil
	}
	return w.rollBothLocked()
}

// rollBothLocked seals the active segment and opens the next one. Sealing
// fsyncs the data, cuts the preallocated zero tail back to the data length,
// and fsyncs again so the final size is committed before any newer segment
// exists — an immutable segment is always fully durable and never carries
// padding that a later scan would have to treat as interior corruption.
// Caller holds syncMu AND mu.
func (w *WAL) rollBothLocked() error {
	if err := w.syncBothLocked(); err != nil {
		return err
	}
	if err := w.f.Truncate(w.segSize); err != nil {
		w.err = fmt.Errorf("wal: roll: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: roll: %w", err)
		return w.err
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("wal: roll: %w", err)
		return w.err
	}
	if err := w.openActiveLocked(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// SyncTo makes the record at seq durable, group-committed: if a sync that
// covered seq already completed (or completes while waiting for the
// barrier), this returns without issuing another fsync.
func (w *WAL) SyncTo(seq uint64) error {
	if w.synced.Load() >= seq {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= seq {
		return nil
	}
	return w.syncBarrier()
}

// Sync forces an fsync of the active segment (POST /flush's durability
// barrier). A no-op when nothing is unsynced.
func (w *WAL) Sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncBarrier()
}

// syncBarrier runs one group commit: snapshot the durability target under
// mu, fsync OUTSIDE it so appends keep flowing, then publish under mu.
// The caller holds syncMu, which is what keeps w.f from being rolled or
// closed while the fsync is in flight. Appends racing the fsync land in
// the same file and simply stay in unsynced — fsync only guarantees data
// written before the call, so the barrier never claims them.
func (w *WAL) syncBarrier() error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	f := w.f
	target := w.nextSeq - 1
	pend := w.unsynced.Load()
	if pend == 0 {
		// Everything appended is already durable (the last fsync, or a roll
		// that synced the previous segment); just advance the watermark.
		if w.synced.Load() < target {
			w.synced.Store(target)
		}
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()

	t0 := time.Now()
	err := fdatasync(f) // size is preallocated; data-only flush suffices

	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		if w.err == nil {
			w.err = fmt.Errorf("wal: fsync: %w", err)
		}
		return w.err
	}
	if m := w.opts.Metrics.OnFsync; m != nil {
		m(time.Since(t0).Seconds())
	}
	if w.synced.Load() < target {
		w.synced.Store(target)
	}
	w.unsynced.Add(-pend)
	return nil
}

// syncBothLocked fsyncs with both locks held — the rare paths (roll,
// close, truncate-roll) that are about to replace or drop w.f and cannot
// let appends race it.
func (w *WAL) syncBothLocked() error {
	if w.err != nil {
		return w.err
	}
	upto := w.nextSeq - 1
	if w.unsynced.Load() == 0 {
		if w.synced.Load() < upto {
			w.synced.Store(upto)
		}
		return nil
	}
	t0 := time.Now()
	if err := fdatasync(w.f); err != nil {
		w.err = fmt.Errorf("wal: fsync: %w", err)
		return w.err
	}
	if m := w.opts.Metrics.OnFsync; m != nil {
		m(time.Since(t0).Seconds())
	}
	w.synced.Store(upto)
	w.unsynced.Store(0)
	return nil
}

// committer is the SyncInterval group-commit loop.
func (w *WAL) committer(stop <-chan struct{}) {
	defer w.committerWG.Done()
	t := time.NewTicker(w.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if w.unsynced.Load() == 0 {
				continue
			}
			if err := w.Sync(); err != nil {
				// Latched; appends now fail too. Nothing more to do here.
				return
			}
		case <-stop:
			return
		}
	}
}

// LastSeq returns the newest appended sequence number (0 before any
// append). With the caller holding its own pipeline quiescent, this is the
// checkpoint's WAL position.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// SegmentCount reports the number of segment files on disk (gauge).
func (w *WAL) SegmentCount() int { return int(w.segments.Load()) }

// UnsyncedBytes reports bytes appended to the active segment since its
// last fsync (gauge; what power loss could take under SyncInterval).
func (w *WAL) UnsyncedBytes() int64 { return w.unsynced.Load() }

// Err returns the latched failure, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Replay walks every record with seq > after, in order, calling apply for
// each. The caller replays on top of a checkpoint taken at seq `after`; a
// log whose oldest surviving record leaves a gap above `after` is an error
// (acked history is missing), while records at or below `after` are simply
// skipped (the checkpoint already contains them). Batch record edges alias
// the segment read buffer — apply must consume them before returning.
func (w *WAL) Replay(after uint64, apply func(Record) error) error {
	segs, err := w.listSegments()
	if err != nil {
		return err
	}
	next := after + 1
	for i, seg := range segs {
		// Skip segments wholly covered by the checkpoint without reading
		// them: the next segment's name states where this one ends.
		if i+1 < len(segs) && segs[i+1].firstSeq <= next {
			continue
		}
		_, _, err := w.scanSegment(seg, i == len(segs)-1, func(rec Record) error {
			if rec.Seq < next {
				return nil
			}
			if rec.Seq != next {
				return fmt.Errorf("wal: gap: checkpoint covers through seq %d but the log resumes at %d — acked history is missing", next-1, rec.Seq)
			}
			next++
			return apply(rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// TruncateThrough deletes every segment whose records are all at or below
// seq — the checkpoint-as-truncation-point contract: after a checkpoint at
// WAL position seq succeeds, the log before it is dead weight. If the
// ACTIVE segment is fully covered it is first rolled so it too can go;
// repeated checkpoint cycles therefore keep disk usage bounded at one
// (mostly empty) active segment plus whatever the newest checkpoint does
// not cover. Returns the number of segments removed.
func (w *WAL) TruncateThrough(seq uint64) (int, error) {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.segSize > int64(len(w.header)) && w.nextSeq-1 <= seq {
		// Active segment has records, all covered: roll it to immutable so
		// the sweep below can delete it.
		if err := w.rollBothLocked(); err != nil {
			return 0, err
		}
	}
	segs, err := w.listSegments()
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, seg := range segs {
		// A segment's records end where the next segment begins; the active
		// segment (firstSeq == w.segStart) is never deleted.
		if seg.firstSeq >= w.segStart {
			break
		}
		end := w.segStart - 1
		if i+1 < len(segs) && segs[i+1].firstSeq <= w.segStart {
			end = segs[i+1].firstSeq - 1
		}
		if end > seq {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		removed++
	}
	if removed > 0 {
		w.segments.Add(int64(-removed))
		if m := w.opts.Metrics.OnTruncate; m != nil {
			m(removed)
		}
		_ = syncDir(w.opts.Dir)
	}
	return removed, nil
}

// Close stops the group committer, fsyncs the active segment (unless the
// WAL already latched a failure), and closes it. The WAL is unusable
// afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.stopCommitter != nil {
		close(w.stopCommitter)
		w.stopCommitter = nil
	}
	w.mu.Unlock()
	w.committerWG.Wait()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	syncErr := w.syncBothLocked()
	if syncErr == nil {
		// Cut the preallocated tail so a clean shutdown leaves only data on
		// disk; best effort — the next open truncates a surviving tail too.
		_ = w.f.Truncate(w.segSize)
		_ = w.f.Sync()
	}
	closeErr := w.f.Close()
	w.f = nil
	if w.err == nil {
		w.err = errors.New("wal: closed")
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
