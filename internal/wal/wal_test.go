package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

func testEdges(n int, salt uint64) []stream.Edge {
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{User: salt ^ uint64(i%37), Item: salt<<32 | uint64(i)}
	}
	return edges
}

func mustOpen(t *testing.T, opts Options) *WAL {
	t.Helper()
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	return names
}

// collect replays everything after `after` into a flat record list.
func collect(t *testing.T, w *WAL, after uint64) []Record {
	t.Helper()
	var recs []Record
	if err := w.Replay(after, func(rec Record) error {
		// Batch edges alias the scan buffer; copy them so the collected
		// records stay valid across segments.
		cp := rec
		cp.Edges = append([]stream.Edge(nil), rec.Edges...)
		recs = append(recs, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestWALRoundTripAcrossSegments: appends spanning several roll-overs come
// back from Replay in order, byte-exact, with continuous sequence numbers
// and interleaved rotation records intact.
func TestWALRoundTripAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), SegmentBytes: 2048, Policy: SyncNever})
	var want []Record
	epoch := uint64(0)
	epochEdges := uint64(0)
	for i := 0; i < 40; i++ {
		edges := testEdges(10+i, uint64(i))
		seq, err := w.AppendBatch(edges)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(len(want))+1 {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
		epochEdges += uint64(len(edges))
		want = append(want, Record{Seq: seq, Type: TypeBatch, Edges: edges})
		if i%7 == 6 {
			seq, err := w.AppendRotation(epoch, epochEdges)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, Record{Seq: seq, Type: TypeRotation, Epoch: epoch, EpochEdges: epochEdges})
			epoch++
			epochEdges = 0
		}
	}
	if n := w.SegmentCount(); n < 3 {
		t.Fatalf("2 KiB segments after ~%d records: only %d segments", len(want), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open (as after a crash) replays the identical history.
	w2 := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), SegmentBytes: 2048, Policy: SyncNever})
	defer w2.Close()
	got := collect(t, w2, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, x := got[i], want[i]
		if g.Seq != x.Seq || g.Type != x.Type || g.Epoch != x.Epoch || g.EpochEdges != x.EpochEdges ||
			len(g.Edges) != len(x.Edges) {
			t.Fatalf("record %d: got %+v want %+v", i, g, x)
		}
		for j := range x.Edges {
			if g.Edges[j] != x.Edges[j] {
				t.Fatalf("record %d edge %d: got %v want %v", i, j, g.Edges[j], x.Edges[j])
			}
		}
	}
	// Replay from the middle skips the prefix exactly.
	mid := want[len(want)/2].Seq
	tail := collect(t, w2, mid)
	if len(tail) != len(want)-int(mid) {
		t.Fatalf("replay after %d returned %d records, want %d", mid, len(tail), len(want)-int(mid))
	}
	if tail[0].Seq != mid+1 {
		t.Fatalf("tail starts at seq %d, want %d", tail[0].Seq, mid+1)
	}
	// And appends continue above everything on disk.
	seq, err := w2.AppendBatch(testEdges(3, 99))
	if err != nil {
		t.Fatal(err)
	}
	if seq != want[len(want)-1].Seq+1 {
		t.Fatalf("post-reopen append got seq %d, want %d", seq, want[len(want)-1].Seq+1)
	}
}

// TestWALTornTailTruncated: a partial record at the end of the last
// segment — the crash-mid-write signature — is cut at the last valid frame
// on open, the intact prefix replays, and the file is physically truncated.
func TestWALTornTailTruncated(t *testing.T) {
	for _, tear := range []string{"partial-record", "garbage", "mid-crc"} {
		t.Run(tear, func(t *testing.T) {
			dir := t.TempDir()
			w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), Policy: SyncNever})
			for i := 0; i < 5; i++ {
				if _, err := w.AppendBatch(testEdges(20, uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			w.Close()
			names := segFiles(t, dir)
			path := filepath.Join(dir, names[len(names)-1])
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			intact := len(data)
			switch tear {
			case "partial-record":
				// Half a valid record appended: a write(2) cut short.
				next := AppendRecord(nil, Record{Seq: 6, Type: TypeBatch, Edges: testEdges(20, 9)})
				data = append(data, next[:len(next)/2]...)
			case "garbage":
				data = append(data, 0xDE, 0xAD, 0xBE, 0xEF)
			case "mid-crc":
				// Flip a bit inside the LAST record's CRC: the tail record
				// fails validation, earlier ones survive.
				data[len(data)-1] ^= 0x01
				// Find where the last record starts so we know the expected cut.
				intact = bytes.LastIndex(data[:len(data)-4], []byte(recordMagic))
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			w2 := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), Policy: SyncNever})
			defer w2.Close()
			recs := collect(t, w2, 0)
			wantRecs := 5
			if tear == "mid-crc" {
				wantRecs = 4
			}
			if len(recs) != wantRecs {
				t.Fatalf("replayed %d records after torn tail, want %d", len(recs), wantRecs)
			}
			if got, err := os.ReadFile(path); err != nil || len(got) != intact {
				t.Fatalf("torn segment is %d bytes, want truncated to %d (err %v)", len(got), intact, err)
			}
			// The continuation seq is the first un-durable one.
			seq, err := w2.AppendBatch(testEdges(1, 1))
			if err != nil {
				t.Fatal(err)
			}
			if seq != uint64(wantRecs)+1 {
				t.Fatalf("continuation seq %d, want %d", seq, wantRecs+1)
			}
		})
	}
}

// TestWALInteriorCorruptionIsFatal: corruption in a non-last segment is
// acked history going missing — Open must refuse, not truncate.
func TestWALInteriorCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), SegmentBytes: 1024, Policy: SyncNever})
	for i := 0; i < 30; i++ {
		if _, err := w.AppendBatch(testEdges(15, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	names := segFiles(t, dir)
	if len(names) < 3 {
		t.Fatalf("want >= 3 segments, have %d", len(names))
	}
	path := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(path)
	data[len(data)-10] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := Open(Options{Dir: dir, Fingerprint: []byte("fp"), SegmentBytes: 1024, Policy: SyncNever}); err == nil {
		t.Fatal("corrupt interior segment opened without error")
	}
}

// TestWALMissingSegmentIsGap: deleting an interior segment (acked history)
// fails open; deleting a PREFIX is legal only below the checkpoint seq,
// which Replay enforces.
func TestWALMissingSegmentIsGap(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), SegmentBytes: 1024, Policy: SyncNever})
	for i := 0; i < 30; i++ {
		if _, err := w.AppendBatch(testEdges(15, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	names := segFiles(t, dir)
	if len(names) < 3 {
		t.Fatalf("want >= 3 segments, have %d", len(names))
	}
	// Interior hole: fatal at open.
	if err := os.Remove(filepath.Join(dir, names[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Fingerprint: []byte("fp"), SegmentBytes: 1024, Policy: SyncNever}); err == nil {
		t.Fatal("gapped WAL opened without error")
	}
	// Prefix hole: Open succeeds (truncation legitimately removes prefixes)
	// but a replay claiming a checkpoint OLDER than the hole must fail
	// loudly — that prefix was acked history, not truncated history. Keep
	// the last two segments (two in case the very last is an empty active
	// from the previous life) so the survivors are a contiguous suffix that
	// starts well above seq 1.
	remaining := segFiles(t, dir)
	if len(remaining) < 4 {
		t.Fatalf("want >= 4 remaining segments for the prefix-hole case, have %d", len(remaining))
	}
	for _, n := range remaining[:len(remaining)-2] {
		if err := os.Remove(filepath.Join(dir, n)); err != nil {
			t.Fatal(err)
		}
	}
	w2 := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), SegmentBytes: 1024, Policy: SyncNever})
	defer w2.Close()
	if err := w2.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay over a missing prefix claimed success")
	}
}

// TestWALTruncateThroughBoundsDisk: repeated append+truncate cycles —
// the checkpoint loop's shape — keep the directory at a bounded segment
// count and size, and a fully-covered ACTIVE segment rolls so it can go
// too.
func TestWALTruncateThroughBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), SegmentBytes: 2048, Policy: SyncNever})
	defer w.Close()
	for cycle := 0; cycle < 20; cycle++ {
		var lastSeq uint64
		for i := 0; i < 10; i++ {
			seq, err := w.AppendBatch(testEdges(20, uint64(cycle*100+i)))
			if err != nil {
				t.Fatal(err)
			}
			lastSeq = seq
		}
		if _, err := w.TruncateThrough(lastSeq); err != nil {
			t.Fatal(err)
		}
		if n := w.SegmentCount(); n > 2 {
			t.Fatalf("cycle %d: %d segments survive a full truncation", cycle, n)
		}
		var total int64
		for _, name := range segFiles(t, dir) {
			fi, err := os.Stat(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
		if total > 2*2048 {
			t.Fatalf("cycle %d: %d bytes on disk after truncation", cycle, total)
		}
		// Everything after the truncation point must still replay (nothing).
		if got := collect(t, w, lastSeq); len(got) != 0 {
			t.Fatalf("cycle %d: %d records after full truncation", cycle, len(got))
		}
	}
	// A partial truncation keeps the uncovered suffix.
	var seqs []uint64
	for i := 0; i < 30; i++ {
		seq, err := w.AppendBatch(testEdges(20, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	cut := seqs[10]
	if _, err := w.TruncateThrough(cut); err != nil {
		t.Fatal(err)
	}
	got := collect(t, w, cut)
	if len(got) != len(seqs)-11 {
		t.Fatalf("after partial truncation: %d records, want %d", len(got), len(seqs)-11)
	}
	if got[0].Seq != cut+1 {
		t.Fatalf("suffix starts at %d, want %d", got[0].Seq, cut+1)
	}
}

// TestWALStartSeqContinuation: a WAL whose directory was fully truncated
// (or wiped) must continue numbering above the checkpoint's position, not
// restart at 1 — otherwise a later checkpoint+replay would double-apply.
func TestWALStartSeqContinuation(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), StartSeq: 1000, Policy: SyncNever})
	defer w.Close()
	seq, err := w.AppendBatch(testEdges(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1001 {
		t.Fatalf("first append after StartSeq 1000 got seq %d", seq)
	}
	if got := collect(t, w, 1000); len(got) != 1 || got[0].Seq != 1001 {
		t.Fatalf("replay after 1000: %+v", got)
	}
}

// TestWALFingerprintMismatch: a log written under one configuration
// refuses to open under another.
func TestWALFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("config-A"), Policy: SyncNever})
	if _, err := w.AppendBatch(testEdges(5, 1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Open(Options{Dir: dir, Fingerprint: []byte("config-B"), Policy: SyncNever}); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched fingerprint: err = %v", err)
	}
}

// TestWALSyncAccounting: unsynced bytes rise with appends under SyncNever,
// drop to zero on Sync, and SyncTo group-commits (a covered seq does not
// re-sync).
func TestWALSyncAccounting(t *testing.T) {
	dir := t.TempDir()
	fsyncs := 0
	w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), Policy: SyncNever,
		Metrics: Metrics{OnFsync: func(float64) { fsyncs++ }}})
	defer w.Close()
	seq, err := w.AppendBatch(testEdges(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if w.UnsyncedBytes() == 0 {
		t.Fatal("no unsynced bytes after an unsynced append")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.UnsyncedBytes() != 0 {
		t.Fatalf("%d unsynced bytes after Sync", w.UnsyncedBytes())
	}
	if fsyncs != 1 {
		t.Fatalf("%d fsyncs, want 1", fsyncs)
	}
	// Group commit: the completed sync covers seq; no second fsync.
	if err := w.SyncTo(seq); err != nil {
		t.Fatal(err)
	}
	if fsyncs != 1 {
		t.Fatalf("SyncTo(covered) issued an fsync: %d total", fsyncs)
	}
}

// TestWALAlwaysPolicyConcurrent: concurrent SyncAlways appenders all
// succeed and everything is durable (synced == last) when they finish —
// the group-commit path under contention, run with -race.
func TestWALAlwaysPolicyConcurrent(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), SegmentBytes: 4096, Policy: SyncAlways})
	defer w.Close()
	var wg sync.WaitGroup
	const (
		goroutines = 8
		each       = 25
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := w.AppendBatch(testEdges(7, uint64(g*1000+i)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Commit(seq); err != nil {
					t.Error(err)
					return
				}
				if w.synced.Load() < seq {
					t.Errorf("Commit(%d) returned with synced at %d", seq, w.synced.Load())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if last := w.LastSeq(); last != goroutines*each {
		t.Fatalf("LastSeq %d, want %d", last, goroutines*each)
	}
	if w.UnsyncedBytes() != 0 {
		t.Fatalf("%d unsynced bytes under SyncAlways", w.UnsyncedBytes())
	}
	if got := collect(t, w, 0); len(got) != goroutines*each {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*each)
	}
}

// TestWALIntervalCommitter: the background group-committer drains unsynced
// bytes without any explicit Sync call.
func TestWALIntervalCommitter(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Fingerprint: []byte("fp"), Policy: SyncInterval,
		FlushInterval: 5 * time.Millisecond})
	defer w.Close()
	if _, err := w.AppendBatch(testEdges(10, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.UnsyncedBytes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("committer left %d bytes unsynced after 5s", w.UnsyncedBytes())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWALClosedIsSticky: appends after Close fail, and keep failing.
func TestWALClosedIsSticky(t *testing.T) {
	w := mustOpen(t, Options{Dir: t.TempDir(), Fingerprint: []byte("fp"), Policy: SyncNever})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := w.AppendBatch(testEdges(1, 1)); err == nil {
			t.Fatal("append on a closed WAL succeeded")
		}
	}
	if err := w.Close(); err == nil {
		t.Fatal("second Close did not report the latch")
	}
}

// TestWALRecordScanHelper exercises DecodeRecord over a concatenation the
// way segment scans consume it: records decode back-to-back, and the first
// invalid byte stops the scan without a panic.
func TestWALRecordScanHelper(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, Record{Seq: 1, Type: TypeBatch, Edges: testEdges(3, 1)})
	buf = AppendRecord(buf, Record{Seq: 2, Type: TypeRotation, Epoch: 0, EpochEdges: 3})
	buf = AppendRecord(buf, Record{Seq: 3, Type: TypeBatch})
	full := len(buf)
	buf = append(buf, 0xFF, 0xFF)
	pos, n := 0, 0
	for pos < len(buf) {
		rec, consumed, err := DecodeRecord(buf[pos:])
		if err != nil {
			break
		}
		n++
		if rec.Seq != uint64(n) {
			t.Fatalf("record %d has seq %d", n, rec.Seq)
		}
		pos += consumed
	}
	if n != 3 || pos != full {
		t.Fatalf("scan stopped after %d records at offset %d, want 3 at %d", n, pos, full)
	}
}
