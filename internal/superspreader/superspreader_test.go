package superspreader

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/hashing"
)

// fakeEstimator is a deterministic Estimator for unit tests.
type fakeEstimator struct {
	est   map[uint64]float64
	total float64
}

func (f *fakeEstimator) Estimate(u uint64) float64 { return f.est[u] }
func (f *fakeEstimator) TotalDistinct() float64    { return f.total }
func (f *fakeEstimator) Users(fn func(uint64, float64)) {
	for u, e := range f.est {
		fn(u, e)
	}
}

func TestNewDetectorPanics(t *testing.T) {
	for _, d := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("delta %v accepted", d)
				}
			}()
			NewDetector(&fakeEstimator{}, d)
		}()
	}
}

func TestDetectorThresholdAndDetect(t *testing.T) {
	fe := &fakeEstimator{
		est:   map[uint64]float64{1: 100, 2: 49, 3: 50, 4: 200},
		total: 1000,
	}
	d := NewDetector(fe, 0.05)
	if d.Threshold() != 50 {
		t.Fatalf("threshold = %v", d.Threshold())
	}
	got := d.Detect()
	if len(got) != 3 {
		t.Fatalf("detected %d users: %+v", len(got), got)
	}
	// Sorted by descending estimate: 4 (200), 1 (100), 3 (50).
	if got[0].User != 4 || got[1].User != 1 || got[2].User != 3 {
		t.Fatalf("order wrong: %+v", got)
	}
}

func TestDetectTieBreaksByUser(t *testing.T) {
	fe := &fakeEstimator{est: map[uint64]float64{9: 60, 2: 60}, total: 1000}
	got := NewDetector(fe, 0.05).Detect()
	if len(got) != 2 || got[0].User != 2 || got[1].User != 9 {
		t.Fatalf("tie-break wrong: %+v", got)
	}
}

func TestEvaluatePerfectEstimator(t *testing.T) {
	truth := exact.NewTracker()
	for i := 0; i < 100; i++ {
		truth.Observe(1, uint64(i)) // card 100
	}
	truth.Observe(2, 1) // card 1
	truth.Observe(3, 1)
	// delta*total = 0.5*102 = 51: only user 1 is a spreader.
	counts := Evaluate(func(u uint64) float64 {
		return float64(truth.Cardinality(u))
	}, truth, 0.5)
	if counts.TruePositives != 1 || counts.FalseNegatives != 0 || counts.FalsePositives != 0 {
		t.Fatalf("counts = %+v", counts)
	}
	if counts.TotalUsers != 3 {
		t.Fatalf("total users = %d", counts.TotalUsers)
	}
	if counts.FNR() != 0 || counts.FPR() != 0 {
		t.Fatal("perfect estimator must have zero error ratios")
	}
}

func TestEvaluateMissesAndFalseAlarms(t *testing.T) {
	truth := exact.NewTracker()
	for i := 0; i < 100; i++ {
		truth.Observe(1, uint64(i))
		truth.Observe(2, uint64(i+1000))
	}
	truth.Observe(3, 1)
	// threshold = 0.25 * 201 ≈ 50.25: users 1 and 2 are spreaders.
	est := func(u uint64) float64 {
		switch u {
		case 1:
			return 100 // detected
		case 2:
			return 10 // missed -> FN
		default:
			return 99 // false alarm -> FP
		}
	}
	counts := Evaluate(est, truth, 0.25)
	if counts.TruePositives != 1 || counts.FalseNegatives != 1 || counts.FalsePositives != 1 {
		t.Fatalf("counts = %+v", counts)
	}
	if math.Abs(counts.FNR()-0.5) > 1e-12 {
		t.Fatalf("FNR = %v", counts.FNR())
	}
	if math.Abs(counts.FPR()-1.0/3) > 1e-12 {
		t.Fatalf("FPR = %v", counts.FPR())
	}
}

func TestEndToEndWithFreeRS(t *testing.T) {
	// Integration: FreeRS-backed detection on a synthetic stream catches the
	// heavy user with no false alarms among 500 light users.
	f := core.NewFreeRS(1<<16, 1)
	truth := exact.NewTracker()
	rng := hashing.NewRNG(7)
	for i := 0; i < 15000; i++ {
		u := uint64(rng.Intn(500))
		d := rng.Uint64() % 300
		f.Observe(u, d)
		truth.Observe(u, d)
		f.Observe(999, uint64(i))
		truth.Observe(999, uint64(i))
	}
	const delta = 0.05
	counts := Evaluate(f.Estimate, truth, delta)
	if counts.FNR() != 0 {
		t.Fatalf("missed the heavy user: %+v", counts)
	}
	if counts.FPR() > 0.01 {
		t.Fatalf("FPR = %v too high", counts.FPR())
	}
	// The online detector (no oracle) must agree here.
	det := NewDetector(f, delta)
	found := false
	for _, s := range det.Detect() {
		if s.User == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("online detector missed the heavy user")
	}
}

func TestDetectorOnlineThresholdTracksStream(t *testing.T) {
	f := core.NewFreeBS(1<<16, 2)
	det := NewDetector(f, 0.1)
	if det.Threshold() != 0 {
		t.Fatalf("empty threshold = %v", det.Threshold())
	}
	for i := 0; i < 1000; i++ {
		f.Observe(uint64(i%10), uint64(i))
	}
	thrEarly := det.Threshold()
	for i := 0; i < 10000; i++ {
		f.Observe(uint64(i%10), uint64(i)+5000)
	}
	if det.Threshold() <= thrEarly {
		t.Fatal("threshold must grow with the stream")
	}
}
