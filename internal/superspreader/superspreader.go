// Package superspreader implements the case study of §V-F: detecting super
// spreaders — users whose cardinality reaches Δ·n(t), where n(t) is the sum
// of all user cardinalities at time t and 0 < Δ < 1 a relative threshold —
// on the fly from a cardinality estimator's anytime estimates.
//
// Two components are provided:
//
//   - Detector: the online detection rule a production system would run.
//     It uses the estimator's own estimates for both the per-user
//     cardinalities and the total, so it needs no oracle.
//
//   - Evaluate: the offline scoring used by Fig. 6 and Table II. Following
//     the paper's setup, the threshold Δ·n(t) is computed from the exact
//     total (both the truth set and every method are thresholded against
//     the same Δ·n(t)), isolating per-user estimation error — otherwise a
//     method could look better merely by misestimating the total.
package superspreader

import (
	"sort"

	"repro/internal/exact"
	"repro/internal/metrics"
)

// Estimator is the minimal estimator view the detector needs: per-user
// anytime estimates, an anytime estimate of the total distinct-pair count,
// and iteration over users with nonzero estimates.
type Estimator interface {
	Estimate(user uint64) float64
	TotalDistinct() float64
	Users(fn func(user uint64, estimate float64))
}

// Detector flags users whose estimated cardinality reaches Delta times the
// estimated total.
type Detector struct {
	Est   Estimator
	Delta float64
}

// NewDetector returns a Detector. It panics unless 0 < delta < 1.
func NewDetector(est Estimator, delta float64) *Detector {
	if delta <= 0 || delta >= 1 {
		panic("superspreader: delta must be in (0,1)")
	}
	return &Detector{Est: est, Delta: delta}
}

// Threshold returns the current absolute threshold Δ·n̂(t).
func (d *Detector) Threshold() float64 { return d.Delta * d.Est.TotalDistinct() }

// Detect returns the users currently flagged as super spreaders, sorted by
// descending estimate.
func (d *Detector) Detect() []Spreader {
	thr := d.Threshold()
	var out []Spreader
	d.Est.Users(func(u uint64, e float64) {
		if e >= thr {
			out = append(out, Spreader{User: u, Estimate: e})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].User < out[j].User
	})
	return out
}

// Spreader is one flagged user.
type Spreader struct {
	User     uint64
	Estimate float64
}

// Evaluate scores estimates against ground truth at the current instant.
// The absolute threshold is Δ·n(t) with n(t) the exact total; a user is
// truly a spreader if its exact cardinality reaches the threshold and is
// detected if estimate(user) reaches the same threshold. TotalUsers is the
// number of occurred users (the FPR denominator of §V-F).
func Evaluate(estimate func(user uint64) float64, truth *exact.Tracker, delta float64) metrics.DetectionCounts {
	thr := delta * float64(truth.TotalCardinality())
	var c metrics.DetectionCounts
	truth.Users(func(u uint64, card int) {
		c.TotalUsers++
		isSpreader := float64(card) >= thr
		detected := estimate(u) >= thr
		switch {
		case isSpreader && detected:
			c.TruePositives++
		case isSpreader && !detected:
			c.FalseNegatives++
		case !isSpreader && detected:
			c.FalsePositives++
		}
	})
	return c
}
