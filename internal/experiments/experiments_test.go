package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast: ~0.1% of the paper scale, two
// small datasets unless a test needs a specific one.
func tinyConfig() Config {
	return Config{
		Scale:    0.001,
		Seed:     7,
		Datasets: []string{"chicago", "livejournal"},
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 0.01 || c.Seed != 1 || c.VirtualM != 1024 || c.Delta != 5e-5 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.MemoryBits != 5e6 {
		t.Fatalf("default memory = %d, want 5e6 (paper 5e8 × scale 0.01)", c.MemoryBits)
	}
	if len(c.Datasets) != 6 {
		t.Fatalf("default datasets: %v", c.Datasets)
	}
}

func TestBuildAllMethods(t *testing.T) {
	methods, err := Build(MethodSpec{MemoryBits: 1 << 20, VirtualM: 256, NumUsers: 1000, Seed: 1}, AllMethods)
	if err != nil {
		t.Fatal(err)
	}
	if len(methods) != 6 {
		t.Fatalf("built %d methods", len(methods))
	}
	// Every method must estimate ~100 for a 100-item user (loose check that
	// the adapters are wired to real estimators, not stubs).
	for _, mt := range methods {
		for i := 0; i < 100; i++ {
			mt.Observe(5, uint64(i))
		}
		got := mt.Estimate(5)
		if got < 30 || got > 300 {
			t.Fatalf("%s: estimate %v for n=100", mt.Name, got)
		}
		if mt.Estimate(12345) != 0 {
			t.Fatalf("%s: unseen user estimate nonzero", mt.Name)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(MethodSpec{MemoryBits: 0}, []string{NameFreeBS}); err == nil {
		t.Fatal("zero memory accepted")
	}
	if _, err := Build(MethodSpec{MemoryBits: 100, VirtualM: 0, NumUsers: 1}, []string{NameCSE}); err == nil {
		t.Fatal("CSE with m=0 accepted")
	}
	if _, err := Build(MethodSpec{MemoryBits: 100, VirtualM: 50, NumUsers: 1}, []string{NameVHLL}); err == nil {
		t.Fatal("vHLL with m >= M/5 accepted")
	}
	if _, err := Build(MethodSpec{MemoryBits: 100, VirtualM: 10, NumUsers: 0}, []string{NameLPC}); err == nil {
		t.Fatal("LPC without NumUsers accepted")
	}
	if _, err := Build(MethodSpec{MemoryBits: 100, VirtualM: 10, NumUsers: 1}, []string{"nosuch"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestMemoryAccountingParity(t *testing.T) {
	// §V-B: all methods get (approximately) the same memory budget M.
	const M = 1 << 22
	methods, err := Build(MethodSpec{MemoryBits: M, VirtualM: 1024, NumUsers: 4096, Seed: 1}, AllMethods)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range methods {
		if mt.MemoryBits > M || mt.MemoryBits < M*9/10 {
			t.Fatalf("%s: memory %d not within [0.9M, M] of %d", mt.Name, mt.MemoryBits, M)
		}
	}
}

func TestRunTable1(t *testing.T) {
	res, err := RunTable1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Users <= 0 || row.TotalCard < row.Users || row.Edges < row.TotalCard {
			t.Fatalf("degenerate row: %+v", row)
		}
		if row.MaxCard <= 0 || row.Alpha <= 0 {
			t.Fatalf("bad stats: %+v", row)
		}
	}
	var buf bytes.Buffer
	if _, err := res.Table().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "chicago") {
		t.Fatal("table missing dataset row")
	}
}

func TestRunFig2(t *testing.T) {
	res, err := RunFig2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.X) != len(s.Y) || len(s.X) < 3 {
			t.Fatalf("%s: malformed series", s.Name)
		}
		if s.Y[0] != 1.0 {
			t.Fatalf("%s: CCDF(1) = %v", s.Name, s.Y[0])
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1] {
				t.Fatalf("%s: CCDF increases", s.Name)
			}
		}
	}
}

func TestRunFig3SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime sweep is slow")
	}
	c := Config{Scale: 0.001, Seed: 3, Methods: []string{NameFreeBS, NameCSE}}
	res, err := RunFig3(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(DefaultFig3Ms)*2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Timing assertions are kept weak (shared CI machines), but the headline
	// claim must hold robustly: at m=4096, CSE's per-edge cost (O(m) tracked
	// estimate) exceeds FreeBS's O(1) by a wide margin.
	var freeBS4096, cse4096 float64
	for _, cell := range res.Cells {
		if cell.M == 4096 {
			switch cell.Method {
			case NameFreeBS:
				freeBS4096 = cell.NsPerOp
			case NameCSE:
				cse4096 = cell.NsPerOp
			}
		}
		if cell.NsPerOp <= 0 {
			t.Fatalf("non-positive timing: %+v", cell)
		}
	}
	if cse4096 < 3*freeBS4096 {
		t.Fatalf("CSE@4096 (%v ns) not clearly slower than FreeBS (%v ns)", cse4096, freeBS4096)
	}
}

func TestRunFig4(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"chicago"}
	res, err := RunFig4(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "chicago" {
		t.Fatalf("dataset = %s", res.Dataset)
	}
	if len(res.Pairs) != 6 {
		t.Fatalf("methods = %d", len(res.Pairs))
	}
	// FreeBS and FreeRS must beat the shared-array competitors CSE and vHLL
	// on average relative error. (HLL++ is excluded from this aggregate
	// check: its sparse phase is exact for the many tiny users, so it can
	// win the ARE average while losing badly at the large cardinalities
	// the detection experiments exercise.)
	for _, worse := range []string{NameCSE, NameVHLL} {
		if res.ARE[NameFreeBS] >= res.ARE[worse] {
			t.Fatalf("FreeBS ARE %v not better than %s ARE %v",
				res.ARE[NameFreeBS], worse, res.ARE[worse])
		}
		if res.ARE[NameFreeRS] >= res.ARE[worse] {
			t.Fatalf("FreeRS ARE %v not better than %s ARE %v",
				res.ARE[NameFreeRS], worse, res.ARE[worse])
		}
	}
	var buf bytes.Buffer
	if _, err := res.Table().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig5(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"livejournal"}
	res, err := RunFig5(c)
	if err != nil {
		t.Fatal(err)
	}
	curves := res.Curves["livejournal"]
	if len(curves) != 5 {
		t.Fatalf("methods = %d", len(curves))
	}
	// Small-cardinality supremacy: in the smallest bin, FreeBS RSE must be
	// well below CSE's and vHLL's (the up-to-10000x claim of §V-E).
	first := func(name string) float64 { return curves[name][0].RSE }
	if !(first(NameFreeBS) < first(NameCSE)) {
		t.Fatalf("FreeBS first-bin RSE %v !< CSE %v", first(NameFreeBS), first(NameCSE))
	}
	if !(first(NameFreeRS) < first(NameVHLL)) {
		t.Fatalf("FreeRS first-bin RSE %v !< vHLL %v", first(NameFreeRS), first(NameVHLL))
	}
}

func TestRunFig6(t *testing.T) {
	c := Config{Scale: 0.0005, Seed: 7, Methods: []string{NameFreeBS, NameVHLL}}
	res, err := RunFig6(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "sanjose" {
		t.Fatalf("dataset = %s", res.Dataset)
	}
	if len(res.Points) != 60*2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.FNR < 0 || p.FNR > 1 || p.FPR < 0 || p.FPR > 1 {
			t.Fatalf("ratio out of range: %+v", p)
		}
	}
}

func TestRunTable2(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"chicago"}
	res, err := RunTable2(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rowOf := func(name string) Table2Row {
		for _, r := range res.Rows {
			if r.Method == name {
				return r
			}
		}
		t.Fatalf("method %s missing", name)
		return Table2Row{}
	}
	// FreeBS/FreeRS must dominate vHLL and HLL++ on FNR+FPR (Table II's
	// qualitative result).
	for _, better := range []string{NameFreeBS, NameFreeRS} {
		for _, worse := range []string{NameVHLL, NameHLLPP} {
			b, w := rowOf(better), rowOf(worse)
			if b.FNR+b.FPR > w.FNR+w.FPR {
				t.Fatalf("%s (FNR %v FPR %v) worse than %s (FNR %v FPR %v)",
					better, b.FNR, b.FPR, worse, w.FNR, w.FPR)
			}
		}
	}
	var buf bytes.Buffer
	if _, err := res.Table().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable2RangeExceededMarksNA(t *testing.T) {
	// With a tiny virtual sketch, the spreader threshold exceeds CSE's
	// m·ln m range and the row must be marked N/A, as in the paper's
	// twitter/orkut columns.
	c := Config{
		Scale:    0.001,
		Seed:     7,
		Datasets: []string{"orkut"},
		Methods:  []string{NameCSE},
		VirtualM: 64,
		Delta:    0.01,
	}
	res, err := RunTable2(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0].RangeExceeded {
		t.Fatalf("expected range-exceeded N/A, got %+v", res.Rows[0])
	}
	var buf bytes.Buffer
	if _, err := res.Table().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "N/A") {
		t.Fatal("table missing N/A cell")
	}
}

func TestSortedKeysDeterministic(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := sortedKeys(m)
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("sortedKeys = %v", got)
	}
}
