// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): Table I (datasets), Fig. 2 (CCDFs), Fig. 3 (update time
// vs m), Fig. 4 (estimated-vs-actual scatter), Fig. 5 (RSE vs cardinality),
// Fig. 6 (super-spreader detection over time) and Table II (super-spreader
// detection on all datasets). Each runner returns a structured result that
// can be rendered as an aligned text table or CSV.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cse"
	"repro/internal/hll"
	"repro/internal/lpc"
	"repro/internal/vhll"
)

// Method names as the paper spells them.
const (
	NameFreeBS = "FreeBS"
	NameFreeRS = "FreeRS"
	NameCSE    = "CSE"
	NameVHLL   = "vHLL"
	NameLPC    = "LPC"
	NameHLLPP  = "HLL++"
)

// AllMethods lists all six methods in the paper's presentation order.
var AllMethods = []string{NameFreeBS, NameFreeRS, NameCSE, NameVHLL, NameLPC, NameHLLPP}

// Fig5Methods lists the five methods of Fig. 5 / Fig. 6 / Table II (the
// paper drops LPC after Fig. 4 because of its tiny estimation range).
var Fig5Methods = []string{NameFreeBS, NameFreeRS, NameCSE, NameVHLL, NameHLLPP}

// Method adapts one estimator behind a uniform interface.
//
// Estimate is the batch query used at evaluation instants. TrackedEstimate
// is the per-arrival estimate the paper's streaming adaptation maintains in
// a per-user counter: identical values, but for the sketch-per-user and
// virtual-sketch methods it carries their O(m) per-query cost, which is what
// the Fig. 3 runtime experiment measures.
type Method struct {
	Name            string
	Observe         func(user, item uint64)
	Estimate        func(user uint64) float64
	TrackedEstimate func(user uint64) float64
	TotalDistinct   func() float64
	MemoryBits      int64
}

// MethodSpec sizes the estimators the way §V-B does.
type MethodSpec struct {
	MemoryBits int    // M: total sketch memory in bits, shared by all methods
	VirtualM   int    // m: virtual sketch size for CSE and vHLL
	NumUsers   int    // |S|: used to size the per-user LPC and HLL++ sketches
	Seed       uint64 // hash seed
}

// Build constructs the named methods under the paper's memory accounting:
// FreeBS and CSE get M bits; FreeRS and vHLL get M/5 five-bit registers;
// LPC gets M/|S| bits per user; HLL++ gets M/(6·|S|) six-bit registers per
// user. Unknown names are an error.
func Build(spec MethodSpec, names []string) ([]*Method, error) {
	if spec.MemoryBits <= 0 {
		return nil, fmt.Errorf("experiments: non-positive memory %d", spec.MemoryBits)
	}
	out := make([]*Method, 0, len(names))
	for _, name := range names {
		m, err := buildOne(spec, name)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func buildOne(spec MethodSpec, name string) (*Method, error) {
	switch name {
	case NameFreeBS:
		f := core.NewFreeBS(spec.MemoryBits, spec.Seed)
		return &Method{
			Name:            name,
			Observe:         func(u, d uint64) { f.Observe(u, d) },
			Estimate:        f.Estimate,
			TrackedEstimate: f.Estimate, // already O(1), always fresh
			TotalDistinct:   f.TotalDistinctLPC,
			MemoryBits:      f.MemoryBits(),
		}, nil

	case NameFreeRS:
		regs := spec.MemoryBits / core.DefaultRegisterWidth
		if regs < 1 {
			regs = 1
		}
		f := core.NewFreeRS(regs, spec.Seed)
		return &Method{
			Name:            name,
			Observe:         func(u, d uint64) { f.Observe(u, d) },
			Estimate:        f.Estimate,
			TrackedEstimate: f.Estimate,
			TotalDistinct:   f.TotalDistinctHLL,
			MemoryBits:      f.MemoryBits(),
		}, nil

	case NameCSE:
		if spec.VirtualM <= 0 || spec.VirtualM > spec.MemoryBits {
			return nil, fmt.Errorf("experiments: CSE needs 0 < m <= M, have m=%d M=%d", spec.VirtualM, spec.MemoryBits)
		}
		c := cse.New(spec.MemoryBits, spec.VirtualM, spec.Seed)
		return &Method{
			Name:            name,
			Observe:         c.Observe,
			Estimate:        c.Estimate,
			TrackedEstimate: c.Estimate, // O(m): enumerates the virtual sketch
			TotalDistinct:   c.TotalEstimate,
			MemoryBits:      c.MemoryBits(),
		}, nil

	case NameVHLL:
		regs := spec.MemoryBits / vhll.Width
		if spec.VirtualM <= 0 || spec.VirtualM >= regs {
			return nil, fmt.Errorf("experiments: vHLL needs 0 < m < M/5, have m=%d regs=%d", spec.VirtualM, regs)
		}
		v := vhll.New(regs, spec.VirtualM, spec.Seed)
		return &Method{
			Name:            name,
			Observe:         v.Observe,
			Estimate:        v.Estimate,
			TrackedEstimate: v.Estimate, // O(m)
			TotalDistinct:   v.TotalEstimate,
			MemoryBits:      v.MemoryBits(),
		}, nil

	case NameLPC:
		if spec.NumUsers <= 0 {
			return nil, fmt.Errorf("experiments: LPC needs NumUsers > 0")
		}
		bits := spec.MemoryBits / spec.NumUsers
		if bits < 1 {
			bits = 1
		}
		p := lpc.NewPerUser(bits, spec.Seed)
		return &Method{
			Name:            name,
			Observe:         p.Observe,
			Estimate:        p.Estimate,
			TrackedEstimate: p.EstimateScan, // the paper's O(m) cost model
			TotalDistinct: func() float64 {
				total := 0.0
				p.Users(func(u uint64) { total += p.Estimate(u) })
				return total
			},
			MemoryBits: int64(bits) * int64(spec.NumUsers),
		}, nil

	case NameHLLPP:
		if spec.NumUsers <= 0 {
			return nil, fmt.Errorf("experiments: HLL++ needs NumUsers > 0")
		}
		regs := spec.MemoryBits / (hll.PlusPlusWidth * spec.NumUsers)
		if regs < 1 {
			regs = 1
		}
		p := hll.NewPerUser(regs, spec.Seed)
		return &Method{
			Name:            name,
			Observe:         p.Observe,
			Estimate:        p.Estimate,
			TrackedEstimate: p.EstimateScan, // the paper's O(m) cost model
			TotalDistinct: func() float64 {
				total := 0.0
				p.Users(func(u uint64) { total += p.Estimate(u) })
				return total
			},
			MemoryBits: int64(regs) * hll.PlusPlusWidth * int64(spec.NumUsers),
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown method %q", name)
}
