package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cse"
	"repro/internal/datagen"
	"repro/internal/exact"
	"repro/internal/hll"
	"repro/internal/lpc"
	"repro/internal/metrics"
	"repro/internal/superspreader"
)

// PaperMemoryBits is the paper's memory budget (M = 5×10⁸ bits, §V-E);
// configs scale it by the dataset scale.
const PaperMemoryBits = 5e8

// Config parameterizes every experiment.
type Config struct {
	Scale         float64  // dataset scale factor (default 0.01)
	Seed          uint64   // master seed (default 1)
	MemoryBits    int      // M; 0 -> round(PaperMemoryBits · Scale)
	VirtualM      int      // m for CSE/vHLL (default 1024, §V-E)
	Delta         float64  // super-spreader threshold at paper scale (default 5e-5, §V-F)
	Datasets      []string // default: all six
	Methods       []string // default: per-experiment paper set
	BinsPerDecade int      // RSE bins per decade (default 5)
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MemoryBits <= 0 {
		c.MemoryBits = int(math.Round(PaperMemoryBits * c.Scale))
	}
	if c.VirtualM <= 0 {
		c.VirtualM = 1024
	}
	if c.Delta <= 0 {
		c.Delta = 5e-5
	}
	if len(c.Datasets) == 0 {
		c.Datasets = datagen.DatasetNames
	}
	if c.BinsPerDecade <= 0 {
		c.BinsPerDecade = 5
	}
	return c
}

// effectiveDelta converts the paper-scale Δ into the threshold fraction for
// a scaled run. The absolute spreader threshold in the paper is Δ·n with n
// the full-scale total cardinality; since the total scales by Scale while
// the per-user cardinality distribution is preserved, the equivalent
// fraction at scale s is Δ/s (clamped below 1). At Scale = 1 this is Δ.
func (c Config) effectiveDelta() float64 {
	d := c.Delta / c.Scale
	if d >= 1 {
		d = 0.999999
	}
	return d
}

func (c Config) methodsOr(def []string) []string {
	if len(c.Methods) != 0 {
		return c.Methods
	}
	return def
}

// loadDataset generates a dataset and its ground truth.
func (c Config) loadDataset(name string) (*datagen.Dataset, *exact.Tracker, error) {
	cfg, err := datagen.PaperConfig(name, c.Scale, c.Seed)
	if err != nil {
		return nil, nil, err
	}
	d := datagen.Generate(cfg)
	truth := exact.NewTracker()
	if err := truth.ObserveStream(d.Stream()); err != nil {
		return nil, nil, err
	}
	return d, truth, nil
}

// ---------------------------------------------------------------- Table I

// Table1Row is one dataset summary row.
type Table1Row struct {
	Name      string
	Users     int
	MaxCard   int
	TotalCard int
	Edges     int     // arrivals including duplicates
	Alpha     float64 // fitted Pareto exponent
}

// Table1Result is the regenerated Table I.
type Table1Result struct {
	Scale float64
	Rows  []Table1Row
}

// RunTable1 regenerates Table I at the configured scale.
func RunTable1(c Config) (*Table1Result, error) {
	c = c.withDefaults()
	res := &Table1Result{Scale: c.Scale}
	for _, name := range c.Datasets {
		cfg, err := datagen.PaperConfig(name, c.Scale, c.Seed)
		if err != nil {
			return nil, err
		}
		d := datagen.Generate(cfg)
		res.Rows = append(res.Rows, Table1Row{
			Name:      name,
			Users:     d.NumUsers(),
			MaxCard:   d.MaxCard(),
			TotalCard: d.TotalCard(),
			Edges:     d.NumEdges(),
			Alpha:     d.Alpha,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *Table1Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Table I: summary of datasets (scale %g)", r.Scale),
		"dataset", "#users", "max-cardinality", "total cardinality", "#arrivals", "fitted alpha")
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Users, row.MaxCard, row.TotalCard, row.Edges, row.Alpha)
	}
	return t
}

// ---------------------------------------------------------------- Figure 2

// Fig2Series is the CCDF of one dataset.
type Fig2Series struct {
	Name string
	X    []int     // cardinality
	Y    []float64 // P(cardinality >= x)
}

// Fig2Result holds the CCDF curves of Fig. 2.
type Fig2Result struct {
	Series []Fig2Series
}

// RunFig2 regenerates the CCDF curves of Fig. 2.
func RunFig2(c Config) (*Fig2Result, error) {
	c = c.withDefaults()
	res := &Fig2Result{}
	for _, name := range c.Datasets {
		cfg, err := datagen.PaperConfig(name, c.Scale, c.Seed)
		if err != nil {
			return nil, err
		}
		d := datagen.Generate(cfg)
		xs := datagen.LogPoints(d.MaxCard(), 4)
		res.Series = append(res.Series, Fig2Series{
			Name: name,
			X:    xs,
			Y:    datagen.CCDF(d.Cards, xs),
		})
	}
	return res, nil
}

// Table renders all series as one long table.
func (r *Fig2Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 2: CCDFs of user cardinalities",
		"dataset", "cardinality", "CCDF")
	for _, s := range r.Series {
		for i := range s.X {
			t.AddRow(s.Name, s.X[i], s.Y[i])
		}
	}
	return t
}

// ---------------------------------------------------------------- Figure 3

// Fig3Cell is one (method, m) runtime measurement.
type Fig3Cell struct {
	Method  string
	M       int     // virtual/per-user sketch size (x axis)
	NsPerOp float64 // average wall time per edge, ns
}

// Fig3Result holds the runtime sweep of Fig. 3.
type Fig3Result struct {
	Ms    []int
	Cells []Fig3Cell
	Edges int // stream length measured
}

// DefaultFig3Ms is the sweep of per-user sketch sizes.
var DefaultFig3Ms = []int{16, 64, 256, 1024, 4096}

// RunFig3 measures the per-edge processing time — update plus refreshing the
// arriving user's tracked counter, the paper's streaming cost model — for
// every method across the m sweep. FreeBS and FreeRS have no m, so their
// rows are flat by construction and measured once per m for symmetry.
func RunFig3(c Config) (*Fig3Result, error) {
	c = c.withDefaults()
	// A fixed mid-sized stream; runtime is workload-insensitive.
	gcfg := datagen.Config{
		Name: "runtime", Users: 20000, MaxCard: 2000, TotalCard: 200000,
		DuplicateRate: datagen.DefaultDuplicateRate, Seed: c.Seed,
	}
	d := datagen.Generate(gcfg)
	edges := d.Edges
	methods := c.methodsOr(AllMethods)

	res := &Fig3Result{Ms: DefaultFig3Ms, Edges: len(edges)}
	for _, m := range DefaultFig3Ms {
		for _, name := range methods {
			mt, err := buildForRuntime(c, name, m, gcfg.Users)
			if err != nil {
				return nil, err
			}
			// Warm-up pass to populate maps and page in memory.
			for _, e := range edges[:len(edges)/10] {
				mt.Observe(e.User, e.Item)
				_ = mt.TrackedEstimate(e.User)
			}
			start := time.Now()
			for _, e := range edges {
				mt.Observe(e.User, e.Item)
				_ = mt.TrackedEstimate(e.User)
			}
			elapsed := time.Since(start)
			res.Cells = append(res.Cells, Fig3Cell{
				Method:  name,
				M:       m,
				NsPerOp: float64(elapsed.Nanoseconds()) / float64(len(edges)),
			})
		}
	}
	return res, nil
}

// buildForRuntime sizes per-user/virtual sketches directly from the swept m
// (Fig. 3's x axis), unlike Build, which derives them from M and |S|.
func buildForRuntime(c Config, name string, m, numUsers int) (*Method, error) {
	bigM := c.MemoryBits
	if bigM < 16*m {
		bigM = 16 * m // keep M >> m so CSE/vHLL stay constructible
	}
	switch name {
	case NameCSE, NameVHLL, NameFreeBS, NameFreeRS:
		return buildOne(MethodSpec{MemoryBits: bigM, VirtualM: m, NumUsers: numUsers, Seed: c.Seed}, name)
	case NameLPC:
		p := lpc.NewPerUser(m, c.Seed)
		return &Method{
			Name:            name,
			Observe:         p.Observe,
			Estimate:        p.Estimate,
			TrackedEstimate: p.EstimateScan,
			TotalDistinct:   func() float64 { return 0 },
			MemoryBits:      int64(m) * int64(numUsers),
		}, nil
	case NameHLLPP:
		p := hll.NewPerUser(m, c.Seed)
		return &Method{
			Name:            name,
			Observe:         p.Observe,
			Estimate:        p.Estimate,
			TrackedEstimate: p.EstimateScan,
			TotalDistinct:   func() float64 { return 0 },
			MemoryBits:      int64(m) * hll.PlusPlusWidth * int64(numUsers),
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown method %q", name)
}

// Table renders the sweep with one row per (m, method).
func (r *Fig3Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 3: update time per edge (ns) vs m, %d-edge stream", r.Edges),
		"m", "method", "ns/edge")
	for _, cell := range r.Cells {
		t.AddRow(cell.M, cell.Method, cell.NsPerOp)
	}
	return t
}

// ---------------------------------------------------------------- Figure 4

// Fig4Result holds per-method (actual, estimated) pairs on one dataset.
type Fig4Result struct {
	Dataset string
	// Pairs maps method name to all users' (actual, estimate).
	Pairs map[string][]metrics.Pair
	// ARE maps method name to average relative error (scatter summary).
	ARE map[string]float64
}

// RunFig4 regenerates the estimated-vs-actual scatter of Fig. 4 (orkut by
// default; set Datasets[0] to override).
func RunFig4(c Config) (*Fig4Result, error) {
	c = c.withDefaults()
	name := "orkut"
	if len(c.Datasets) == 1 {
		name = c.Datasets[0]
	}
	d, truth, err := c.loadDataset(name)
	if err != nil {
		return nil, err
	}
	methods, err := Build(MethodSpec{
		MemoryBits: c.MemoryBits, VirtualM: c.VirtualM,
		NumUsers: d.NumUsers(), Seed: c.Seed,
	}, c.methodsOr(AllMethods))
	if err != nil {
		return nil, err
	}
	for _, e := range d.Edges {
		for _, mt := range methods {
			mt.Observe(e.User, e.Item)
		}
	}
	res := &Fig4Result{
		Dataset: name,
		Pairs:   make(map[string][]metrics.Pair, len(methods)),
		ARE:     make(map[string]float64, len(methods)),
	}
	for _, mt := range methods {
		pairs := make([]metrics.Pair, 0, truth.NumUsers())
		truth.Users(func(u uint64, card int) {
			pairs = append(pairs, metrics.Pair{Actual: card, Estimate: mt.Estimate(u)})
		})
		res.Pairs[mt.Name] = pairs
		res.ARE[mt.Name] = metrics.AvgRelativeError(pairs)
	}
	return res, nil
}

// Table renders a log-binned summary of each method's scatter (mean estimate
// per actual-cardinality bin) plus the ARE.
func (r *Fig4Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 4 (%s): estimated vs actual cardinality", r.Dataset),
		"method", "actual (bin mean)", "mean estimate", "users")
	names := sortedKeys(r.Pairs)
	for _, name := range names {
		type acc struct {
			sumAct, sumEst float64
			n              int
		}
		bins := map[int]*acc{}
		for _, p := range r.Pairs[name] {
			if p.Actual <= 0 {
				continue
			}
			b := int(math.Floor(math.Log10(float64(p.Actual)) * 4))
			a := bins[b]
			if a == nil {
				a = &acc{}
				bins[b] = a
			}
			a.sumAct += float64(p.Actual)
			a.sumEst += p.Estimate
			a.n++
		}
		idxs := make([]int, 0, len(bins))
		for b := range bins {
			idxs = append(idxs, b)
		}
		sort.Ints(idxs)
		for _, b := range idxs {
			a := bins[b]
			t.AddRow(name, a.sumAct/float64(a.n), a.sumEst/float64(a.n), a.n)
		}
	}
	return t
}

// ---------------------------------------------------------------- Figure 5

// Fig5Result holds the RSE curves for every dataset and method.
type Fig5Result struct {
	// Curves[dataset][method] is the binned RSE curve.
	Curves map[string]map[string][]metrics.RSEBin
}

// RunFig5 regenerates the RSE-vs-cardinality curves of Fig. 5 for every
// configured dataset.
func RunFig5(c Config) (*Fig5Result, error) {
	c = c.withDefaults()
	res := &Fig5Result{Curves: make(map[string]map[string][]metrics.RSEBin)}
	for _, name := range c.Datasets {
		d, truth, err := c.loadDataset(name)
		if err != nil {
			return nil, err
		}
		methods, err := Build(MethodSpec{
			MemoryBits: c.MemoryBits, VirtualM: c.VirtualM,
			NumUsers: d.NumUsers(), Seed: c.Seed,
		}, c.methodsOr(Fig5Methods))
		if err != nil {
			return nil, err
		}
		for _, e := range d.Edges {
			for _, mt := range methods {
				mt.Observe(e.User, e.Item)
			}
		}
		byMethod := make(map[string][]metrics.RSEBin, len(methods))
		for _, mt := range methods {
			pairs := make([]metrics.Pair, 0, truth.NumUsers())
			truth.Users(func(u uint64, card int) {
				pairs = append(pairs, metrics.Pair{Actual: card, Estimate: mt.Estimate(u)})
			})
			byMethod[mt.Name] = metrics.RSEBinned(pairs, c.BinsPerDecade)
		}
		res.Curves[name] = byMethod
	}
	return res, nil
}

// Table renders every curve point.
func (r *Fig5Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 5: RSE vs cardinality",
		"dataset", "method", "cardinality (bin mean)", "users", "RSE")
	for _, ds := range sortedKeys(r.Curves) {
		for _, mt := range sortedKeys(r.Curves[ds]) {
			for _, b := range r.Curves[ds][mt] {
				t.AddRow(ds, mt, b.MeanCard, b.Count, b.RSE)
			}
		}
	}
	return t
}

// ---------------------------------------------------------------- Figure 6

// Fig6Point is one method's detection quality at one evaluation instant.
type Fig6Point struct {
	Method string
	Minute int
	FNR    float64
	FPR    float64
}

// Fig6Result holds the over-time detection curves of Fig. 6.
type Fig6Result struct {
	Dataset string
	Delta   float64
	Points  []Fig6Point
}

// RunFig6 regenerates the super-spreader-over-time experiment of Fig. 6:
// the sanjose stream is replayed in 60 equal slices ("minutes" of the
// one-hour trace); after each slice every method's tracked per-user counters
// are scored against the exact spreader set at that instant.
func RunFig6(c Config) (*Fig6Result, error) {
	c = c.withDefaults()
	name := "sanjose"
	if len(c.Datasets) == 1 {
		name = c.Datasets[0]
	}
	cfg, err := datagen.PaperConfig(name, c.Scale, c.Seed)
	if err != nil {
		return nil, err
	}
	d := datagen.Generate(cfg)
	methods, err := Build(MethodSpec{
		MemoryBits: c.MemoryBits, VirtualM: c.VirtualM,
		NumUsers: d.NumUsers(), Seed: c.Seed,
	}, c.methodsOr(Fig5Methods))
	if err != nil {
		return nil, err
	}
	truth := exact.NewTracker()
	// Tracked per-user counters, refreshed on each arrival (the paper's
	// streaming adaptation for CSE/vHLL/LPC/HLL++; FreeBS/FreeRS maintain
	// theirs natively).
	counters := make([]map[uint64]float64, len(methods))
	for i := range counters {
		counters[i] = make(map[uint64]float64)
	}
	const minutes = 60
	delta := c.effectiveDelta()
	res := &Fig6Result{Dataset: name, Delta: delta}
	edges := d.Edges
	for minute := 1; minute <= minutes; minute++ {
		lo := len(edges) * (minute - 1) / minutes
		hi := len(edges) * minute / minutes
		for _, e := range edges[lo:hi] {
			truth.Observe(e.User, e.Item)
			for i, mt := range methods {
				mt.Observe(e.User, e.Item)
				counters[i][e.User] = mt.TrackedEstimate(e.User)
			}
		}
		for i, mt := range methods {
			ctr := counters[i]
			counts := superspreader.Evaluate(func(u uint64) float64 { return ctr[u] }, truth, delta)
			res.Points = append(res.Points, Fig6Point{
				Method: mt.Name,
				Minute: minute,
				FNR:    counts.FNR(),
				FPR:    counts.FPR(),
			})
		}
	}
	return res, nil
}

// Table renders the over-time curves.
func (r *Fig6Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 6 (%s): super-spreader detection over time, delta=%g", r.Dataset, r.Delta),
		"minute", "method", "FNR", "FPR")
	for _, p := range r.Points {
		t.AddRow(p.Minute, p.Method, p.FNR, p.FPR)
	}
	return t
}

// ---------------------------------------------------------------- Table II

// Table2Row is one (dataset, method) detection summary.
type Table2Row struct {
	Dataset string
	Method  string
	FNR     float64
	FPR     float64
	// RangeExceeded marks the paper's "N/A" condition: the dataset's
	// spreader threshold lies beyond the method's estimation range, so the
	// method cannot report any spreader (CSE on twitter/orkut in Table II).
	RangeExceeded bool
}

// Table2Result holds the all-datasets detection summary of Table II.
type Table2Result struct {
	Delta float64
	Rows  []Table2Row
}

// RunTable2 regenerates Table II: end-of-stream FNR/FPR for every dataset
// and method.
func RunTable2(c Config) (*Table2Result, error) {
	c = c.withDefaults()
	delta := c.effectiveDelta()
	res := &Table2Result{Delta: delta}
	for _, name := range c.Datasets {
		d, truth, err := c.loadDataset(name)
		if err != nil {
			return nil, err
		}
		methods, err := Build(MethodSpec{
			MemoryBits: c.MemoryBits, VirtualM: c.VirtualM,
			NumUsers: d.NumUsers(), Seed: c.Seed,
		}, c.methodsOr(Fig5Methods))
		if err != nil {
			return nil, err
		}
		for _, e := range d.Edges {
			for _, mt := range methods {
				mt.Observe(e.User, e.Item)
			}
		}
		threshold := delta * float64(truth.TotalCardinality())
		for _, mt := range methods {
			counts := superspreader.Evaluate(mt.Estimate, truth, delta)
			row := Table2Row{
				Dataset: name,
				Method:  mt.Name,
				FNR:     counts.FNR(),
				FPR:     counts.FPR(),
			}
			// CSE's estimation range is m·ln m; when the threshold is out of
			// range the method reports an empty set (the paper's N/A).
			if mt.Name == NameCSE && threshold > cse.MaxEstimateFor(c.VirtualM) {
				row.RangeExceeded = true
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Table renders Table II.
func (r *Table2Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Table II: super-spreader detection, delta=%g", r.Delta),
		"dataset", "method", "FNR", "FPR")
	for _, row := range r.Rows {
		if row.RangeExceeded {
			t.AddRow(row.Dataset, row.Method, "N/A", "N/A")
			continue
		}
		t.AddRow(row.Dataset, row.Method, row.FNR, row.FPR)
	}
	return t
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
