package window

import (
	"sync"
	"testing"
	"time"
)

// gen is a minimal generation type: it records how many edges it absorbed.
type gen struct{ edges int }

func newRing(k int, opts ...Option) *Ring[*gen] {
	return New(k, func() *gen { return &gen{} }, opts...)
}

func feed(r *Ring[*gen], n int) {
	r.Feed(uint64(n), func(g *gen) { g.edges += n })
}

func liveEdges(r *Ring[*gen]) []int {
	var out []int
	r.View(func(live []*gen) {
		for _, g := range live {
			out = append(out, g.edges)
		}
	})
	return out
}

func TestRingGrowsToKThenDrops(t *testing.T) {
	r := newRing(3)
	if r.K() != 3 || r.Live() != 1 || r.Epoch() != 0 {
		t.Fatalf("fresh ring k=%d live=%d epoch=%d", r.K(), r.Live(), r.Epoch())
	}
	feed(r, 10)
	r.Rotate()
	feed(r, 20)
	r.Rotate()
	feed(r, 30)
	if got := liveEdges(r); len(got) != 3 || got[0] != 30 || got[1] != 20 || got[2] != 10 {
		t.Fatalf("live = %v, want [30 20 10]", got)
	}
	r.Rotate() // the 10-edge generation ages out
	if got := liveEdges(r); len(got) != 3 || got[0] != 0 || got[1] != 30 || got[2] != 20 {
		t.Fatalf("live after overflow = %v, want [0 30 20]", got)
	}
	if r.Epoch() != 3 {
		t.Fatalf("epoch = %d", r.Epoch())
	}
}

func TestRingByEdgesBoundary(t *testing.T) {
	r := newRing(2, WithBoundary(ByEdges{N: 10}))
	feed(r, 9)
	if r.Epoch() != 0 {
		t.Fatal("rotated early")
	}
	feed(r, 1)
	if r.Epoch() != 1 || r.EdgesInEpoch() != 0 {
		t.Fatalf("epoch=%d edges=%d after hitting the boundary", r.Epoch(), r.EdgesInEpoch())
	}
	// A batch far past the boundary still rotates at most once, and all its
	// edges belong to the generation current at call start.
	feed(r, 35)
	if r.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2 (one rotation per feed)", r.Epoch())
	}
	if got := liveEdges(r); got[0] != 0 || got[1] != 35 {
		t.Fatalf("live = %v, want the whole batch in one generation", got)
	}
}

func TestRingByDurationBoundaryAndTick(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	r := newRing(2, WithBoundary(ByDuration{D: time.Minute}), WithClock(clock))
	feed(r, 5)
	if r.Tick() {
		t.Fatal("ticked before the epoch elapsed")
	}
	now = now.Add(time.Minute)
	if !r.Tick() {
		t.Fatal("tick at the boundary must rotate")
	}
	if r.Epoch() != 1 {
		t.Fatalf("epoch = %d", r.Epoch())
	}
	// Feeding also notices an elapsed duration, without a Tick.
	now = now.Add(2 * time.Minute)
	feed(r, 1)
	if r.Epoch() != 2 {
		t.Fatalf("epoch = %d after feeding past the boundary", r.Epoch())
	}
}

func TestRingManualNeverRotates(t *testing.T) {
	r := newRing(2)
	feed(r, 1_000_000)
	if r.Tick() || r.Epoch() != 0 {
		t.Fatal("manual ring rotated on its own")
	}
}

func TestRingSnapshotAndAdopt(t *testing.T) {
	r := newRing(3)
	feed(r, 7)
	r.Rotate()
	feed(r, 8)
	gens, epoch, inEpoch := r.Snapshot()
	if epoch != 1 || inEpoch != 8 || len(gens) != 2 || gens[0].edges != 8 || gens[1].edges != 7 {
		t.Fatalf("snapshot gens=%v epoch=%d edges=%d", gens, epoch, inEpoch)
	}
	// Snapshot is a copy of the headers: rotating afterwards must not alter it.
	r.Rotate()
	if len(gens) != 2 {
		t.Fatal("snapshot aliased the ring's slice")
	}

	fresh := newRing(3)
	if err := fresh.Adopt(gens, epoch, inEpoch); err != nil {
		t.Fatal(err)
	}
	if fresh.EdgesInEpoch() != 8 {
		t.Fatalf("adopted edges-in-epoch = %d", fresh.EdgesInEpoch())
	}
	if got := liveEdges(fresh); len(got) != 2 || got[0] != 8 || got[1] != 7 {
		t.Fatalf("adopted live = %v", got)
	}
	if fresh.Epoch() != 1 {
		t.Fatalf("adopted epoch = %d", fresh.Epoch())
	}

	// Invariant violations are rejected without touching the ring.
	if err := fresh.Adopt(gens, 5, 0); err == nil {
		t.Fatal("2 live generations at epoch 5 of a k=3 ring accepted")
	}
	ifaceRing := New(3, func() any { return &gen{} })
	if err := ifaceRing.Adopt([]any{&gen{}, nil}, 1, 0); err == nil {
		t.Fatal("nil generation accepted")
	}
	if got := liveEdges(fresh); got[0] != 8 || got[1] != 7 {
		t.Fatal("failed Adopt mutated the ring")
	}
}

func TestRingPanics(t *testing.T) {
	mustPanic(t, func() { New(1, func() *gen { return &gen{} }) })
	mustPanic(t, func() { New[*gen](2, nil) })
	mustPanic(t, func() { New(2, func() any { return nil }) })
	calls := 0
	r := New(2, func() any {
		calls++
		if calls > 1 {
			return nil
		}
		return &gen{}
	})
	mustPanic(t, func() { r.Rotate() })
}

// TestRingFeedRotateRace is the -race guard for the tentpole: batches,
// rotations, ticks, and views interleave from many goroutines, and the
// per-generation edge totals must still add up exactly — a torn batch or a
// lost update would break the sum.
func TestRingFeedRotateRace(t *testing.T) {
	r := newRing(4, WithBoundary(ByEdges{N: 500}))
	const workers, perWorker, batch = 8, 300, 7
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				feed(r, batch)
				if i%50 == 0 {
					r.Tick()
				}
				if i%97 == 0 {
					r.View(func(live []*gen) {
						for _, g := range live {
							_ = g.edges
						}
					})
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Rotate()
		}
	}()
	wg.Wait()
	<-done
	// Every fed edge landed in exactly one generation; most have aged out,
	// but the live ones must hold whole batches (edges ≡ 0 mod batch would
	// not hold after boundary rotations, so just check non-negative totals
	// and that the epoch advanced).
	if r.Epoch() < 50 {
		t.Fatalf("epoch = %d, want >= 50 explicit rotations", r.Epoch())
	}
	total := 0
	for _, e := range liveEdges(r) {
		if e < 0 {
			t.Fatalf("negative generation total %d", e)
		}
		total += e
	}
	if total%batch != 0 {
		t.Fatalf("live total %d is not a whole number of %d-edge batches: a batch was torn", total, batch)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
