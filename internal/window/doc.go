// Package window provides the generation ring that makes time a first-class
// dimension of the estimators: k generations of an arbitrary sketch type are
// kept live at once, every observation feeds the newest generation, and an
// epoch boundary — driven by wall time, edge count, or an explicit tick —
// retires the oldest. A query that sums (or merges) the live generations
// therefore covers between k−1 and k epochs of history, so the window slop
// of the classic two-generation scheme (up to 100% extra history) drops to
// 1/(k−1) for a k-generation ring.
//
// The ring is deliberately ignorant of what a generation is: it is generic
// over the element type and exposes its state only through callbacks run
// under the ring's lock (Feed for the newest generation, View/Snapshot for
// all live ones). That lock is the windowing concurrency contract: a batch
// fed through Feed is attributed to the epoch current when the call started
// and can never be torn across generations by a concurrent Rotate or Tick.
//
// Rotation policy is pluggable through the Boundary interface (Manual,
// ByEdges, ByDuration) and the Clock function type, so tests drive epochs
// deterministically while production deployments rotate on wall time.
package window
